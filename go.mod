module lethe

go 1.22
