// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding harness experiment once per
// b.N and reports domain-specific metrics through b.ReportMetric, so
// `go test -bench=. -benchmem` prints the paper's quantities alongside Go's
// timing. The per-experiment index lives in DESIGN.md; paper-vs-measured
// values are recorded in EXPERIMENTS.md.
package lethe_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lethe"
	"lethe/internal/costmodel"
	"lethe/internal/harness"
	"lethe/internal/vfs"
	"lethe/internal/workload"
)

// benchCfg is the default scaled-down experiment configuration (see
// harness.Quick for the geometry rationale).
func benchCfg() harness.Config {
	cfg := harness.Quick()
	// Trim for bench cadence: every experiment still spans 3 disk levels.
	cfg.KeySpace = 24000
	cfg.Ops = 20000
	cfg.BufferBytes = 2048
	return cfg
}

// BenchmarkTable2CostModel evaluates the analytical model (Table 2, E1).
func BenchmarkTable2CostModel(b *testing.B) {
	p := costmodel.Reference()
	for i := 0; i < b.N; i++ {
		for _, pol := range []costmodel.Policy{costmodel.Leveling, costmodel.Tiering} {
			rows := p.Table2(pol)
			if len(rows) != 13 {
				b.Fatal("table 2 must have 13 rows")
			}
		}
	}
	lev := p.Table2(costmodel.Leveling)
	// Row 12: secondary range delete speedup = h.
	b.ReportMetric(lev[11].Values[costmodel.SoA]/lev[11].Values[costmodel.Lethe], "srd-speedup")
	b.ReportMetric(lev[5].Values[costmodel.SoA], "soa-persistence-s")
	b.ReportMetric(lev[5].Values[costmodel.Lethe], "lethe-persistence-s")
}

// BenchmarkFig6A_SpaceAmp reproduces Fig. 6A (E2): space amplification at
// 10% deletes, baseline vs Lethe.
func BenchmarkFig6A_SpaceAmp(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.DeleteSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunDeleteSweep(cfg, []float64{0.10})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case "RocksDB":
			b.ReportMetric(r.SpaceAmp, "spaceamp-rocksdb")
		case "Lethe/25%":
			b.ReportMetric(r.SpaceAmp, "spaceamp-lethe25")
		}
	}
}

// BenchmarkFig6B_CompactionCount reproduces Fig. 6B (E3).
func BenchmarkFig6B_CompactionCount(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.DeleteSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunDeleteSweep(cfg, []float64{0.02})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case "RocksDB":
			b.ReportMetric(float64(r.Compactions), "compactions-rocksdb")
		case "Lethe/25%":
			b.ReportMetric(float64(r.Compactions), "compactions-lethe25")
		}
	}
}

// BenchmarkFig6C_BytesCompacted reproduces Fig. 6C (E4).
func BenchmarkFig6C_BytesCompacted(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.DeleteSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunDeleteSweep(cfg, []float64{0.06})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case "RocksDB":
			b.ReportMetric(r.DataWrittenMB, "writtenMB-rocksdb")
		case "Lethe/50%":
			b.ReportMetric(r.DataWrittenMB, "writtenMB-lethe50")
		}
	}
}

// BenchmarkFig6D_ReadThroughput reproduces Fig. 6D (E5).
func BenchmarkFig6D_ReadThroughput(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.DeleteSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunDeleteSweep(cfg, []float64{0.10})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case "RocksDB":
			b.ReportMetric(r.ReadThroughput, "reads/s-rocksdb")
		case "Lethe/25%":
			b.ReportMetric(r.ReadThroughput, "reads/s-lethe25")
		}
	}
}

// BenchmarkFig6E_TombstoneAge reproduces Fig. 6E (E6): the tombstone age
// distribution and Dth compliance.
func BenchmarkFig6E_TombstoneAge(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.TombstoneAgeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunTombstoneAges(cfg, 0.10)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == "Lethe/25%" && r.Age == cfg.Runtime(cfg.Ops) {
			b.ReportMetric(float64(r.Cumulative), "tombstones-lethe25")
			b.ReportMetric(r.MaxAge.Seconds(), "maxage-s-lethe25")
		}
		if r.System == "RocksDB" && r.Age == cfg.Runtime(cfg.Ops) {
			b.ReportMetric(float64(r.Cumulative), "tombstones-rocksdb")
		}
	}
}

// BenchmarkFig6F_WriteAmpOverTime reproduces Fig. 6F (E7).
func BenchmarkFig6F_WriteAmpOverTime(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.WriteAmpRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunWriteAmpOverTime(cfg, 0.25, 0.75, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].NormalizedBytes, "normalized-first")
	b.ReportMetric(rows[len(rows)-1].NormalizedBytes, "normalized-last")
}

// BenchmarkFig6G_Scaling reproduces Fig. 6G (E8): latency vs data size.
func BenchmarkFig6G_Scaling(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunScaling(cfg, []int{cfg.Ops / 4, cfg.Ops})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == "Lethe" {
			b.ReportMetric(float64(r.MixedLatency.Microseconds()), "mixed-us-lethe")
		} else {
			b.ReportMetric(float64(r.MixedLatency.Microseconds()), "mixed-us-rocksdb")
		}
	}
}

// BenchmarkFig6H_FullPageDrops reproduces Fig. 6H (E9).
func BenchmarkFig6H_FullPageDrops(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.FullPageDropRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunFullPageDrops(cfg, []int{1, 16}, []float64{0.05, 0.25})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.TilePages == 16 && r.SelectivityPct == 25 {
			b.ReportMetric(r.FullDropPct, "fulldrop%-h16")
		}
		if r.TilePages == 1 && r.SelectivityPct == 25 {
			b.ReportMetric(r.FullDropPct, "fulldrop%-h1")
		}
	}
}

// BenchmarkFig6I_LookupVsTileSize reproduces Fig. 6I (E10).
func BenchmarkFig6I_LookupVsTileSize(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.LookupCostRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunLookupVsTileSize(cfg, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.TilePages {
		case 1:
			b.ReportMetric(r.NonZeroIOs, "lookup-io-h1")
		case 8:
			b.ReportMetric(r.NonZeroIOs, "lookup-io-h8")
		}
	}
}

// BenchmarkFig6J_OptimalLayout reproduces Fig. 6J (E11).
func BenchmarkFig6J_OptimalLayout(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.OptimalLayoutRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunOptimalLayout(cfg, []int{1, 8}, []float64{0.05}, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.TilePages {
		case 1:
			b.ReportMetric(r.AvgIOsPerOp, "io/op-h1")
		case 8:
			b.ReportMetric(r.AvgIOsPerOp, "io/op-h8")
		}
	}
}

// BenchmarkFig6K_CPUvsIO reproduces Fig. 6K (E12).
func BenchmarkFig6K_CPUvsIO(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.CPUIORow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunCPUvsIO(cfg, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.TilePages {
		case 1:
			b.ReportMetric(r.SRDIOTime.Seconds()*1000, "srd-ms-h1")
		case 8:
			b.ReportMetric(r.SRDIOTime.Seconds()*1000, "srd-ms-h8")
			b.ReportMetric(r.HashTime.Seconds()*1000, "hash-ms-h8")
		}
	}
}

// BenchmarkFig6L_Correlation reproduces Fig. 6L (E13).
func BenchmarkFig6L_Correlation(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.CorrelationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunCorrelation(cfg, []int{1, 8}, []float64{0, 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Correlation == 0 && r.TilePages == 8 {
			b.ReportMetric(r.SRDCostIOs, "srd-io-h8-uncorr")
		}
		if r.Correlation == 1 && r.TilePages == 1 {
			b.ReportMetric(r.FullDropPct, "fulldrop%-h1-corr")
		}
	}
}

// BenchmarkFig1B_Frontier reproduces Fig. 1B (E14): the persistence
// latency/cost frontier.
func BenchmarkFig1B_Frontier(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.FrontierRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunFrontier(cfg, 0.06, []float64{0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.System {
		case "state-of-the-art + full compaction":
			b.ReportMetric(r.PeakCompactionMB, "peakMB-fullcomp")
		case "Lethe":
			b.ReportMetric(r.PeakCompactionMB, "peakMB-lethe")
			b.ReportMetric(r.MaxObservedAge.Seconds(), "maxage-s-lethe")
		}
	}
}

// BenchmarkBlindDeletes reproduces the §4.1.5 blind-delete mitigation (E15).
func BenchmarkBlindDeletes(b *testing.B) {
	cfg := benchCfg()
	var rows []harness.BlindDeleteRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunBlindDeletes(cfg, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.TombstonesSuppressed > 0 {
			b.ReportMetric(float64(r.TombstonesSuppressed), "suppressed")
			b.ReportMetric(float64(r.LiveTombstones), "tombstones-with-probe")
		} else {
			b.ReportMetric(float64(r.LiveTombstones), "tombstones-no-probe")
		}
	}
}

// BenchmarkReadDuringCompaction measures Get latency while a concurrent
// writer continuously forces flushes and compactions — the workload the
// background maintenance pipeline exists for. The "background" variant
// serves reads from pinned version snapshots while workers compact; the
// "synchronous" variant runs the seed engine's model, where compactions
// execute inside the writer's critical section and a Get arriving mid-
// compaction waits for the whole merge. Compare the reported max-get-µs:
// synchronous mode's worst case tracks the largest compaction, background
// mode's does not.
func BenchmarkReadDuringCompaction(b *testing.B) {
	for _, mode := range []struct {
		name string
		sync bool
	}{{"background", false}, {"synchronous", true}} {
		b.Run(mode.name, func(b *testing.B) {
			db, err := lethe.Open(lethe.Options{
				InMemory:    true,
				DisableWAL:  true,
				BufferBytes: 32 << 10,
				PageSize:    1024,
				FilePages:   8,
				SizeRatio:   4,

				DisableBackgroundMaintenance: mode.sync,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			key := func(i int) []byte { return []byte(fmt.Sprintf("k%07d", i)) }
			val := bytes.Repeat([]byte("x"), 128)
			const keySpace = 20000
			for i := 0; i < keySpace; i++ {
				if err := db.Put(key(i), lethe.DeleteKey(i), val); err != nil {
					b.Fatal(err)
				}
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := keySpace; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if err := db.Put(key(i%keySpace), lethe.DeleteKey(i), val); err != nil {
						b.Error(err)
						return
					}
				}
			}()

			rng := rand.New(rand.NewSource(42))
			var worst, total time.Duration
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := key(rng.Intn(keySpace))
				t0 := time.Now()
				if _, err := db.Get(k); err != nil && err != lethe.ErrNotFound {
					b.Fatal(err)
				}
				d := time.Since(t0)
				total += d
				if d > worst {
					worst = d
				}
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			b.ReportMetric(float64(worst.Microseconds()), "max-get-us")
			if b.N > 0 {
				b.ReportMetric(float64(total.Microseconds())/float64(b.N), "avg-get-us")
			}
		})
	}
}

// BenchmarkCompactionInterference measures Get tail latency while a
// concurrent writer drives continuous flush and compaction churn, with and
// without the maintenance I/O rate limiter (Options.CompactionRateBytes).
// The injected filesystem models a shared storage device: every sstable
// page write holds the device for 1ms (a ~4MB/s write path) and every page
// read for 50µs, so unthrottled compaction bursts queue reads behind
// maintenance I/O exactly the way a real SSD's write pressure inflates
// read tails. The rate
// limiter paces maintenance writes at the vfs layer, leaving device slots
// for forereads — compare the reported p99-get-us across the two variants
// (numbers in BENCH.md).
func BenchmarkCompactionInterference(b *testing.B) {
	for _, cfg := range []struct {
		name string
		rate int64
	}{
		{"unlimited", 0},
		{"rate-1MB", 1 << 20},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			// device serializes sstable I/O; holding it is the modeled
			// device service time (a ~4MB/s write path, so unthrottled
			// maintenance saturates it while 1MB/s leaves it mostly idle).
			var device sync.Mutex
			fs := vfs.NewInject(vfs.NewMem(), func(op vfs.Op, name string) error {
				if !strings.HasSuffix(name, ".sst") {
					return nil
				}
				switch op {
				case vfs.OpWrite:
					device.Lock()
					time.Sleep(time.Millisecond)
					device.Unlock()
				case vfs.OpRead:
					device.Lock()
					time.Sleep(50 * time.Microsecond)
					device.Unlock()
				}
				return nil
			})
			db, err := lethe.Open(lethe.Options{
				Storage:             lethe.StorageOptions{FS: fs},
				DisableWAL:          true,
				BufferBytes:         64 << 10,
				PageSize:            4096,
				FilePages:           16,
				SizeRatio:           4,
				CompactionWorkers:   2,
				CompactionRateBytes: cfg.rate,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			key := func(i int) []byte { return []byte(fmt.Sprintf("k%07d", i)) }
			val := bytes.Repeat([]byte("x"), 2048)
			const keySpace = 2000
			for i := 0; i < keySpace; i++ {
				if err := db.Put(key(i), lethe.DeleteKey(i), val); err != nil {
					b.Fatal(err)
				}
			}

			// One churn writer applying batched puts: high maintenance byte
			// demand (well above the rate cap) from a single goroutine, so
			// the interference channel is the modeled device, not CPU
			// contention with the measured reader.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := keySpace; ; i += 32 {
					select {
					case <-stop:
						return
					default:
					}
					batch := lethe.NewBatch()
					for j := 0; j < 32; j++ {
						batch.Put(key((i+j)%keySpace), lethe.DeleteKey(i+j), val)
					}
					if err := db.Apply(batch); err != nil {
						b.Error(err)
						return
					}
				}
			}()

			rng := rand.New(rand.NewSource(42))
			lat := make([]time.Duration, 0, b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := key(rng.Intn(keySpace))
				t0 := time.Now()
				if _, err := db.Get(k); err != nil && err != lethe.ErrNotFound {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			if len(lat) > 0 {
				sorted := append([]time.Duration(nil), lat...)
				sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
				pct := func(p float64) time.Duration {
					i := int(p * float64(len(sorted)-1))
					return sorted[i]
				}
				b.ReportMetric(float64(pct(0.50).Microseconds()), "p50-get-us")
				b.ReportMetric(float64(pct(0.99).Microseconds()), "p99-get-us")
				b.ReportMetric(float64(sorted[len(sorted)-1].Microseconds()), "max-get-us")
			}
			rs := db.RuntimeStats()
			b.ReportMetric(rs.ThrottleWaitTime.Seconds()*1000, "throttle-ms")
		})
	}
}

// BenchmarkEngineOps measures raw engine operation costs (not a paper
// figure; a regression guard for the reproduction itself).
func BenchmarkEngineOps(b *testing.B) {
	cfg := benchCfg()
	env, err := harness.NewEnv(cfg, harness.LetheSystem("Lethe", time.Hour, 4),
		workloadYCSB())
	if err != nil {
		b.Fatal(err)
	}
	defer env.Close()
	if err := env.Preload(cfg.KeySpace / 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := env.Apply(env.Gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// workloadYCSB returns the paper's YCSB-A variant mix for BenchmarkEngineOps.
func workloadYCSB() workload.Config {
	return workload.Config{Mix: workload.YCSBAWithDeletes(0.05)}
}

// BenchmarkAblationModes compares the full Lethe policy (DD trigger + SD
// selection) against the ModeLetheSO ablation (DD trigger + the baseline's
// overlap-driven selection) — isolating how much of FADE's effect comes from
// the trigger versus the file picking (the design choice DESIGN.md §4.5
// calls out).
func BenchmarkAblationModes(b *testing.B) {
	cfg := benchCfg()
	runtime := cfg.Runtime(cfg.Ops)
	for _, mode := range []struct {
		name string
		sys  harness.System
	}{
		{"lethe-DD-SD", harness.LetheSystem("Lethe", runtime/4, 1)},
		{"lethe-DD-SO", func() harness.System {
			s := harness.LetheSystem("LetheSO", runtime/4, 1)
			s.Mode = lethe.ModeLetheSO
			return s
		}()},
		{"baseline-SO", harness.Baseline()},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				env, err := harness.NewEnv(cfg, mode.sys, workload.Config{
					Mix:          workload.Mix{Inserts: 940, PointDeletes: 60},
					FreshInserts: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := env.Run(cfg.Ops); err != nil {
					b.Fatal(err)
				}
				st := env.DB.Stats()
				b.ReportMetric(float64(st.TotalBytesWritten)/(1<<20), "writtenMB")
				b.ReportMetric(float64(st.LivePointTombstones), "tombstones")
				b.ReportMetric(env.DB.MaxTombstoneAge().Seconds(), "maxage-s")
				env.Close()
			}
		})
	}
}

// BenchmarkAblationTiering compares leveling and tiering under the same
// delete-heavy workload (Table 2's two columns, measured).
func BenchmarkAblationTiering(b *testing.B) {
	cfg := benchCfg()
	for _, tiered := range []bool{false, true} {
		name := "leveling"
		if tiered {
			name = "tiering"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := harness.LetheSystem("Lethe", cfg.Runtime(cfg.Ops)/2, 1)
				sys.Tiering = tiered
				env, err := harness.NewEnv(cfg, sys, workload.Config{
					Mix:          workload.Mix{Inserts: 940, PointDeletes: 60},
					FreshInserts: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				io0 := env.FS.Stats.Snapshot()
				if err := env.Run(cfg.Ops); err != nil {
					b.Fatal(err)
				}
				d := env.FS.Stats.Snapshot().Sub(io0)
				b.ReportMetric(float64(d.PagesWritten), "pages-written")
				b.ReportMetric(float64(d.PagesRead), "pages-read")
				env.Close()
			}
		})
	}
}

// hexShardBoundaries splits the "%02x"-prefixed benchmark key space evenly
// across n shards — the boundaries must match the key distribution, which
// is exactly the Options.ShardBoundaries contract (DefaultShardBoundaries
// assumes uniform raw leading bytes, not hex text).
func hexShardBoundaries(n int) [][]byte {
	if n <= 1 {
		return nil
	}
	bounds := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		bounds = append(bounds, []byte(fmt.Sprintf("%02x", 256*i/n)))
	}
	return bounds
}

// hexShardKey spreads keys uniformly over the hex-prefix space (0x9e37 is
// odd, so i*0x9e37 mod 256 is a bijection over any 256 consecutive i).
func hexShardKey(i int) []byte {
	return []byte(fmt.Sprintf("%02x-%09d", (i*0x9e37)%256, i))
}

// BenchmarkShardedPuts measures aggregate write throughput at 16 writer
// goroutines across shard counts. The in-memory filesystem injects a 150µs
// latency per sstable page write, modeling device write bandwidth — the
// resource a single maintenance pipeline serializes on. With one shard,
// every flush and compaction pays that latency in one pipeline and writers
// stall behind it; with n shards the pipelines overlap their device time,
// so throughput scales until the CPU (or the device's real aggregate
// bandwidth) saturates. The WAL stays enabled: each shard syncs and rotates
// its own segments in its own directory.
func BenchmarkShardedPuts(b *testing.B) {
	val := bytes.Repeat([]byte("x"), 2048)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			fs := vfs.NewInject(vfs.NewMem(), func(op vfs.Op, name string) error {
				if op == vfs.OpWrite && strings.HasSuffix(name, ".sst") {
					time.Sleep(150 * time.Microsecond)
				}
				return nil
			})
			db, err := lethe.Open(lethe.Options{
				Storage:         lethe.StorageOptions{FS: fs},
				Shards:          shards,
				ShardBoundaries: hexShardBoundaries(shards),
				BufferBytes:     256 << 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()

			const goroutines = 16
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := g; i < b.N; i += goroutines {
						if err := db.Put(hexShardKey(i), lethe.DeleteKey(i), val); err != nil {
							b.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			b.StopTimer()
			st := db.Stats()
			b.ReportMetric(float64(st.WriteStalls), "stalls")
			b.ReportMetric(float64(st.Flushes), "flushes")
		})
	}
}

// BenchmarkShardedScan measures the cross-shard merging scan: a full scan
// must stream every shard's entries in one globally key-ordered pass, and a
// short scan must stay lazy (reading ~100 keys' worth of pages no matter
// how many shards exist). No injected latency here — this measures the
// merge machinery itself.
func BenchmarkShardedScan(b *testing.B) {
	const keys = 20000
	val := bytes.Repeat([]byte("x"), 64)
	for _, shards := range []int{1, 2, 4, 8} {
		for _, mode := range []string{"full", "first100"} {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mode), func(b *testing.B) {
				db, err := lethe.Open(lethe.Options{
					InMemory:        true,
					DisableWAL:      true,
					Shards:          shards,
					ShardBoundaries: hexShardBoundaries(shards),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				for i := 0; i < keys; i++ {
					if err := db.Put(hexShardKey(i), lethe.DeleteKey(i), val); err != nil {
						b.Fatal(err)
					}
				}
				// Flush so the scans run against sstables: an unflushed
				// buffer would dominate every scan's setup (the memtable
				// range is materialized at iterator construction).
				if err := db.Flush(); err != nil {
					b.Fatal(err)
				}
				if err := db.Maintain(); err != nil {
					b.Fatal(err)
				}
				limit := keys + 1
				if mode == "first100" {
					limit = 100
				}
				b.ResetTimer()
				total := 0
				for i := 0; i < b.N; i++ {
					n := 0
					err := db.Scan(nil, nil, func(k []byte, d lethe.DeleteKey, v []byte) bool {
						n++
						return n < limit
					})
					if err != nil {
						b.Fatal(err)
					}
					total += n
				}
				b.StopTimer()
				if b.N > 0 {
					b.ReportMetric(float64(total)/float64(b.N), "keys/op")
				}
				b.ReportMetric(float64(db.Stats().BytesOnDisk), "bytes-on-disk")
			})
		}
	}
}

// BenchmarkConcurrentPuts measures write throughput under concurrency for
// the group-commit pipeline (SyncGrouped) versus the serialized per-commit
// path (SyncAlways) at 1, 4, and 16 writer goroutines. The filesystem is
// in-memory with a 50µs injected latency per WAL sync, modeling a fast NVMe
// fsync — without it MemFS syncs are free and the comparison measures only
// lock traffic. Reported alongside ns/op: syncs/op (how well the group
// commit amortizes the sync) and batches/group (the grouping factor).
func BenchmarkConcurrentPuts(b *testing.B) {
	policies := []struct {
		name   string
		policy lethe.WALSyncPolicy
	}{
		{"grouped", lethe.SyncGrouped},
		{"always", lethe.SyncAlways},
	}
	for _, goroutines := range []int{1, 4, 16} {
		for _, pol := range policies {
			b.Run(fmt.Sprintf("goroutines=%d/%s", goroutines, pol.name), func(b *testing.B) {
				fs := vfs.NewInject(vfs.NewMem(), func(op vfs.Op, name string) error {
					if op == vfs.OpSync && strings.HasPrefix(name, "wal") {
						time.Sleep(50 * time.Microsecond)
					}
					return nil
				})
				db, err := lethe.Open(lethe.Options{
					Storage:     lethe.StorageOptions{FS: fs},
					WALSync:     pol.policy,
					BufferBytes: 4 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()
				val := bytes.Repeat([]byte("x"), 100)
				key := func(i int) []byte { return []byte(fmt.Sprintf("k%09d", i)) }

				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for i := g; i < b.N; i += goroutines {
							if err := db.Put(key(i), lethe.DeleteKey(i), val); err != nil {
								b.Error(err)
								return
							}
						}
					}(g)
				}
				wg.Wait()
				b.StopTimer()

				st := db.Stats()
				if b.N > 0 {
					b.ReportMetric(float64(st.WALSyncs)/float64(b.N), "syncs/op")
				}
				if st.CommitGroups > 0 {
					b.ReportMetric(float64(st.CommitBatches)/float64(st.CommitGroups), "batches/group")
				}
			})
		}
	}
}

// BenchmarkIteratorFirstK is the streaming-iterator acceptance benchmark:
// iterate the first K entries of an unbounded NewIter over databases of
// increasing size. Before the lazy cursor, NewIter materialized the whole
// range, so bytes/op grew linearly with database size; now the cursor reads
// only what the loop consumes, and B/op must stay flat as dbsize grows
// 16-fold. Run with -benchmem to see it.
func BenchmarkIteratorFirstK(b *testing.B) {
	const k = 100
	val := bytes.Repeat([]byte("x"), 64)
	for _, size := range []int{4000, 16000, 64000} {
		b.Run(fmt.Sprintf("dbsize=%d", size), func(b *testing.B) {
			db, err := lethe.Open(lethe.Options{InMemory: true, DisableWAL: true})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < size; i++ {
				if err := db.Put(hexShardKey(i), lethe.DeleteKey(i), val); err != nil {
					b.Fatal(err)
				}
			}
			// Flush so iteration runs against sstables; an unflushed buffer
			// is copied at cursor construction and would scale with size.
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := db.Maintain(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				it, err := db.NewIter(nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for ; n < k && it.Next(); n++ {
				}
				if n != k {
					b.Fatalf("iterated %d of %d", n, k)
				}
				if err := it.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(db.Stats().BytesOnDisk), "bytes-on-disk")
		})
	}
}

// BenchmarkSnapshotReads measures the snapshot read path on a sharded
// database: pinning a whole-database snapshot (every shard, one pass) and
// serving a point Get plus a short consistent scan from it, per op. This is
// the price of cross-shard read consistency — compare with the raw Get/Scan
// numbers in BenchmarkEngineOps and BenchmarkShardedScan.
func BenchmarkSnapshotReads(b *testing.B) {
	const keys = 20000
	val := bytes.Repeat([]byte("x"), 64)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db, err := lethe.Open(lethe.Options{
				InMemory:        true,
				DisableWAL:      true,
				Shards:          shards,
				ShardBoundaries: hexShardBoundaries(shards),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < keys; i++ {
				if err := db.Put(hexShardKey(i), lethe.DeleteKey(i), val); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := db.Maintain(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap, err := db.NewSnapshot()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := snap.Get(hexShardKey(i % keys)); err != nil {
					b.Fatal(err)
				}
				n := 0
				if err := snap.Scan(nil, nil, func(k []byte, d lethe.DeleteKey, v []byte) bool {
					n++
					return n < 100
				}); err != nil {
					b.Fatal(err)
				}
				if err := snap.Release(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(db.Stats().BytesOnDisk), "bytes-on-disk")
		})
	}
}

// BenchmarkTieredColdScan measures full-scan throughput against the remote
// tier: the tree's cold levels live on a vfs.RemoteFS modeling a 100MB/s
// link with 100us per-op latency, blocks are sized at 64KiB so each remote
// read amortizes the latency, and the iterator's one-tile read-ahead keeps
// the next fetch in flight while the current tile is consumed. No page
// cache, so every scan is genuinely cold. Reported alongside ns/op:
// remote-mb-per-s (achieved streaming rate over the remote device) and
// link-util-pct (that rate as a percentage of the modeled bandwidth — the
// read-ahead's report card; the PR8 target is >=80).
func BenchmarkTieredColdScan(b *testing.B) {
	const (
		keys      = 10000
		linkBytes = 100 << 20
		latency   = 100 * time.Microsecond
	)
	val := bytes.Repeat([]byte("x"), 512)
	local, remoteDev := vfs.NewMem(), vfs.NewMem()
	remote := vfs.NewRemote(remoteDev, vfs.RemoteConfig{
		Latency:              latency,
		BandwidthBytesPerSec: linkBytes,
	})
	db, err := lethe.Open(lethe.Options{
		Storage: lethe.StorageOptions{
			FS:             local,
			RemoteFS:       remote,
			Placement:      lethe.PlacementPolicy{LocalLevels: 1},
			BlockSizeBytes: 64 << 10,
		},
		DisableWAL:                   true,
		DisableBackgroundMaintenance: true,
		BufferBytes:                  256 << 10,
		SizeRatio:                    4,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < keys; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%08d", i)), lethe.DeleteKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		b.Fatal(err)
	}
	st := db.Stats()
	if st.Tier.RemoteFiles == 0 {
		b.Fatal("setup left nothing on the remote tier")
	}
	readBefore := st.Tier.RemoteBytesRead
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := db.Scan(nil, nil, func(k []byte, d lethe.DeleteKey, v []byte) bool {
			n++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != keys {
			b.Fatalf("scan saw %d of %d keys", n, keys)
		}
	}
	elapsed := b.Elapsed()
	b.StopTimer()
	remoteRead := db.Stats().Tier.RemoteBytesRead - readBefore
	if elapsed > 0 && remoteRead > 0 {
		mbps := float64(remoteRead) / elapsed.Seconds() / (1 << 20)
		b.ReportMetric(mbps, "remote-mb-per-s")
		b.ReportMetric(100*float64(remoteRead)/(elapsed.Seconds()*float64(linkBytes)), "link-util-pct")
	}
	b.ReportMetric(float64(db.Stats().Tier.RemoteBytes), "remote-bytes")
}

// BenchmarkTieredHotGet prices what tiering costs the hot path: point Gets
// over a recently-written working set, on a local-only database versus one
// whose cold levels live on a modeled remote device. The hot set sits in
// the local level both times (flush output is always local and the working
// set hasn't cooled), so the tiered configuration should answer within ~2x
// of local-only — the slack covers Bloom-negative probes brushing past the
// remote level's filters, never remote I/O on the hit path.
func BenchmarkTieredHotGet(b *testing.B) {
	const (
		coldKeys = 10000
		hotKeys  = 1000
	)
	val := bytes.Repeat([]byte("x"), 512)
	for _, tier := range []string{"local", "tiered"} {
		b.Run(tier, func(b *testing.B) {
			local := vfs.NewMem()
			storage := lethe.StorageOptions{FS: local, BlockSizeBytes: 64 << 10}
			if tier == "tiered" {
				storage.RemoteFS = vfs.NewRemote(vfs.NewMem(), vfs.RemoteConfig{
					Latency:              100 * time.Microsecond,
					BandwidthBytesPerSec: 100 << 20,
				})
				storage.Placement = lethe.PlacementPolicy{LocalLevels: 1}
			}
			db, err := lethe.Open(lethe.Options{
				Storage:                      storage,
				DisableWAL:                   true,
				DisableBackgroundMaintenance: true,
				BufferBytes:                  256 << 10,
				SizeRatio:                    4,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < coldKeys; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%08d", i)), lethe.DeleteKey(i), val); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := db.Maintain(); err != nil {
				b.Fatal(err)
			}
			// Rewrite the hot working set so its newest versions land in
			// the (always local) flush output.
			for i := 0; i < hotKeys; i++ {
				if err := db.Put([]byte(fmt.Sprintf("key-%08d", i)), lethe.DeleteKey(coldKeys+i), val); err != nil {
					b.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				b.Fatal(err)
			}
			if tier == "tiered" && db.Stats().Tier.RemoteFiles == 0 {
				b.Fatal("tiered setup left nothing on the remote tier")
			}
			readBefore := db.Stats().Tier.RemoteBytesRead
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := []byte(fmt.Sprintf("key-%08d", i%hotKeys))
				if _, err := db.Get(k); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(db.Stats().Tier.RemoteBytesRead-readBefore)/float64(b.N), "remote-bytes/op")
		})
	}
}

// BenchmarkCompactionThroughput measures full-tree merge throughput over a
// cold remote tier at one versus four subcompactions. The remote device is
// latency-only (no bandwidth cap), modeling an object store where concurrent
// request streams overlap their round trips: a serial merge pays one round
// trip per tile read back-to-back, while four key-range subcompactions keep
// four reads in flight. Each timed iteration rewrites every key, flushes,
// full-tree-compacts (the cold merge under test), then lets maintenance
// migrate the output run back to the remote tier so the next iteration is
// cold again. The merge-mb-per-s metric is merge bytes over merge wall time
// (Stats().CompactionTime), so the rebuild scaffolding does not dilute it;
// the PR 9 gate is parallel-4 at >=2x serial.
func BenchmarkCompactionThroughput(b *testing.B) {
	const keys = 600
	val := bytes.Repeat([]byte("x"), 2048)
	for _, bc := range []struct {
		name string
		subs int
	}{{"serial", 1}, {"parallel-4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			local, remoteDev := vfs.NewMem(), vfs.NewMem()
			remote := vfs.NewRemote(remoteDev, vfs.RemoteConfig{Latency: 8 * time.Millisecond})
			storage := lethe.StorageOptions{
				FS:             local,
				RemoteFS:       remote,
				Placement:      lethe.PlacementPolicy{LocalLevels: 1},
				BlockSizeBytes: 64 << 10,
			}
			// Build the initial cold tree synchronously so both variants
			// start from an identical, fully-migrated state.
			sdb, err := lethe.Open(lethe.Options{
				Storage:                      storage,
				DisableWAL:                   true,
				DisableBackgroundMaintenance: true,
				BufferBytes:                  128 << 10,
				SizeRatio:                    4,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < keys; i++ {
				if err := sdb.Put([]byte(fmt.Sprintf("key-%08d", i)), lethe.DeleteKey(i), val); err != nil {
					b.Fatal(err)
				}
			}
			if err := sdb.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := sdb.Maintain(); err != nil {
				b.Fatal(err)
			}
			if err := sdb.Close(); err != nil {
				b.Fatal(err)
			}
			db, err := lethe.Open(lethe.Options{
				Storage:           storage,
				DisableWAL:        true,
				CompactionWorkers: 4,
				Subcompactions:    bc.subs,
				BufferBytes:       128 << 10,
				SizeRatio:         4,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			if db.Stats().Tier.RemoteFiles == 0 {
				b.Fatal("setup left nothing on the remote tier")
			}
			var mergedMB, mergeSecs float64
			var fanned int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < keys; k++ {
					if err := db.Put([]byte(fmt.Sprintf("key-%08d", k)), lethe.DeleteKey(keys*i+k), val); err != nil {
						b.Fatal(err)
					}
				}
				if err := db.Flush(); err != nil {
					b.Fatal(err)
				}
				// Settle: drain the saturation compactions the rewrite
				// triggered (local, latency-free — not the merge under test)
				// and let the repair wave cool their outputs onto the remote
				// tier, so the measured merge reads everything cold.
				if err := db.Maintain(); err != nil {
					b.Fatal(err)
				}
				st0 := db.Stats()
				if err := db.FullTreeCompact(); err != nil {
					b.Fatal(err)
				}
				st := db.Stats()
				mergedMB += float64(st.CompactionBytesRead+st.CompactionBytesWritten-
					st0.CompactionBytesRead-st0.CompactionBytesWritten) / (1 << 20)
				mergeSecs += (st.CompactionTime - st0.CompactionTime).Seconds()
				fanned += st.Subcompactions - st0.Subcompactions
				// Re-cool the merged run for the next iteration.
				if err := db.Maintain(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if mergeSecs > 0 {
				b.ReportMetric(mergedMB/mergeSecs, "merge-mb-per-s")
			}
			if bc.subs > 1 && fanned == 0 {
				b.Fatal("parallel variant never fanned out")
			}
		})
	}
}

// BenchmarkColdMigration measures the placement-repair wave that carries a
// freshly compacted run from the local tier out to a latency-only remote
// device, serial versus batched copies. Each timed iteration rewrites the
// keys, compacts the tree into a local last-level run, then drives
// maintenance until placement is quiescent — the migration under test. The
// migrate-mb-per-s metric is Stats().Tier bytes over migration wall time, so
// it isolates the copy pipeline: batched copies overlap their per-file round
// trips where the serial wave pays them one at a time.
func BenchmarkColdMigration(b *testing.B) {
	const keys = 600
	val := bytes.Repeat([]byte("x"), 2048)
	for _, bc := range []struct {
		name string
		subs int
	}{{"serial", 1}, {"parallel-4", 4}} {
		b.Run(bc.name, func(b *testing.B) {
			local, remoteDev := vfs.NewMem(), vfs.NewMem()
			remote := vfs.NewRemote(remoteDev, vfs.RemoteConfig{Latency: 8 * time.Millisecond})
			db, err := lethe.Open(lethe.Options{
				Storage: lethe.StorageOptions{
					FS:             local,
					RemoteFS:       remote,
					Placement:      lethe.PlacementPolicy{LocalLevels: 1},
					BlockSizeBytes: 64 << 10,
				},
				DisableWAL:        true,
				CompactionWorkers: 4,
				Subcompactions:    bc.subs,
				BufferBytes:       128 << 10,
				SizeRatio:         4,
				// Small sstables so each repair wave moves several files:
				// the batched copy path overlaps their per-file round
				// trips, the serial wave pays them one by one.
				FilePages: 64,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			st0 := db.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < keys; k++ {
					if err := db.Put([]byte(fmt.Sprintf("key-%08d", k)), lethe.DeleteKey(keys*i+k), val); err != nil {
						b.Fatal(err)
					}
				}
				if err := db.Flush(); err != nil {
					b.Fatal(err)
				}
				// Pull the whole tree into one local last-level run, then
				// let maintenance migrate it out — the cold copy wave.
				if err := db.FullTreeCompact(); err != nil {
					b.Fatal(err)
				}
				if err := db.Maintain(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := db.Stats()
			if st.Tier.Migrations == st0.Tier.Migrations {
				b.Fatal("no migrations ran")
			}
			migratedMB := float64(st.Tier.MigratedBytes-st0.Tier.MigratedBytes) / (1 << 20)
			migrateSecs := (st.Tier.MigrationTime - st0.Tier.MigrationTime).Seconds()
			if migrateSecs > 0 {
				b.ReportMetric(migratedMB/migrateSecs, "migrate-mb-per-s")
			}
		})
	}
}
