// Command lethe is a small interactive shell over a Lethe database, for
// poking at the engine: puts, gets, deletes (point, range, and secondary
// range), scans, and statistics.
//
// Usage:
//
//	lethe [-path DIR] [-dth DURATION] [-h TILEPAGES] [-sync] [-compaction-workers N] [-subcompactions K] [-wal-sync grouped|always|never] [-shards N] [-memory-budget BYTES] [-compaction-rate BYTES/S] [-local-levels N] [-remote-latency DURATION] [-remote-bandwidth BYTES/S]
//
// -local-levels N > 0 enables tiered storage: the first N disk levels (plus
// the WAL and manifest) stay on the local filesystem, colder levels live on
// a remote tier. With -path the remote tier is the directory DIR-remote;
// in-memory databases model it in memory. -remote-latency and
// -remote-bandwidth wrap the remote tier in a modeled device (per-op round
// trip and link bandwidth cap; 0 = free), so cold-read behavior is
// observable without real remote hardware. The stats command reports the
// per-tier file populations, migration totals, and remote traffic.
//
// -shards N range-partitions the database over N independent LSM instances
// (see the sharding guidance in the lethe package's tuning.go); an existing
// database reopens with its recorded shard count regardless of the flag.
// The layout is not fixed for life: the reshard subcommand (below) splits
// and merges shards online, and -auto-reshard enables the load-driven
// balancer, which watches per-shard write stalls and footprint and splits
// hot shards (merging cold adjacent pairs back) by itself. Both require
// background maintenance — they are rejected under -sync. The stats command
// prints one pressure line per shard (stalls, memtable bytes, disk bytes,
// space-amp operands) plus the cumulative reshard counters.
// All shards share one maintenance runtime: -compaction-workers sizes its
// global worker pool, -subcompactions lets a single compaction or migration
// job fan out into up to K key-range subcompactions borrowing slots from
// that pool (see "Compaction parallelism" in the lethe package's tuning.go),
// -memory-budget bounds total memtable bytes across shards (0 = unlimited),
// and -compaction-rate caps maintenance write I/O in bytes per second
// (0 = unlimited). The stats command reports the runtime's queue depth,
// stall time, throttle time, and subcompaction fan-out.
//
// -wal-sync selects the commit durability policy: "grouped" (default)
// batches concurrent commits through the group-commit pipeline with one WAL
// sync per group, "always" syncs every commit individually on the
// serialized path, "never" defers durability to the OS. The stats command
// reports the pipeline's grouping factor and sync counts.
//
// Commands (one per line):
//
//	put <key> <deletekey> <value>
//	get <key>
//	del <key>
//	rangedel <start> <end>
//	srd <dlo> <dhi>
//	scan [start [end]]
//	dscan <dlo> <dhi>
//	snap | release
//	reshard split <shard> [boundary] | reshard merge <shard>
//	stats | levels | verify | flush | maintain | compactall | quit
//
// Run non-interactively with a positional subcommand:
//
//	lethe -path DIR verify
//	lethe -path DIR reshard split <shard> [boundary]
//	lethe -path DIR reshard merge <shard>
//
// verify walks every live sstable in every shard, validating footer and
// metadata checksums, per-block CRCs, and index ordering, prints per-shard
// totals, and exits non-zero if any file is corrupt — the post-crash
// integrity check the CI recovery job runs after fault injection.
//
// reshard split divides the shard at routing position <shard> in two, at
// the given boundary key or (omitted) at a delete-tile fence chosen to
// byte-balance the halves; reshard merge folds shards <shard> and <shard>+1
// into one. Both run the online protocol — sstable-level handoff, bounded
// straddler rewrites, crash-safe manifest swap — and print the resulting
// layout. The same verbs work inside the shell as "reshard split ..." and
// "reshard merge ...".
//
// snap pins a point-in-time snapshot of every shard; while one is held,
// get, scan, and dscan are served from it — concurrent writes, flushes,
// and compactions are invisible — until release drops it (or snap replaces
// it). The scan output is streamed from a lazy cursor either way, so
// scanning a huge range stays cheap to abandon.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lethe"
	"lethe/internal/vfs"
)

// bytesPerSec renders a bandwidth flag value for the startup banner.
func bytesPerSec(n int64) string {
	if n == 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%dB/s", n)
}

func main() {
	path := flag.String("path", "", "database directory (default: in-memory)")
	dth := flag.Duration("dth", time.Hour, "delete persistence threshold (0 = baseline mode)")
	tiles := flag.Int("h", 4, "delete tile granularity (pages per tile)")
	syncMaint := flag.Bool("sync", false, "run flushes and compactions inline (no background workers)")
	workers := flag.Int("compaction-workers", 0, "shared maintenance pool size across all shards (0 = default)")
	subcompactions := flag.Int("subcompactions", 0, "max key-range subcompactions per compaction job, borrowed from the worker pool (0 = serial)")
	memBudget := flag.Int64("memory-budget", 0, "total memtable bytes across shards before writers stall (0 = unlimited)")
	compRate := flag.Int64("compaction-rate", 0, "maintenance write I/O cap in bytes/second (0 = unlimited)")
	walSync := flag.String("wal-sync", "grouped", "WAL sync policy: grouped, always, or never")
	shards := flag.Int("shards", 1, "range shards (independent LSM instances; >1 requires background maintenance)")
	autoReshard := flag.Bool("auto-reshard", false, "enable the load-driven balancer (splits hot shards, merges cold pairs; requires background maintenance)")
	localLevels := flag.Int("local-levels", 0, "disk levels kept on the local tier (0 = tiering disabled)")
	remoteLatency := flag.Duration("remote-latency", 0, "modeled per-operation round trip of the remote tier (0 = free)")
	remoteBandwidth := flag.Int64("remote-bandwidth", 0, "modeled remote link bandwidth in bytes/second (0 = unlimited)")
	flag.Parse()

	var policy lethe.WALSyncPolicy
	switch *walSync {
	case "grouped":
		policy = lethe.SyncGrouped
	case "always":
		policy = lethe.SyncAlways
	case "never":
		policy = lethe.SyncNever
	default:
		fmt.Fprintf(os.Stderr, "unknown -wal-sync %q (want grouped, always, or never)\n", *walSync)
		os.Exit(1)
	}

	opts := lethe.Options{Dth: *dth, TilePages: *tiles,
		DisableBackgroundMaintenance: *syncMaint, CompactionWorkers: *workers,
		Subcompactions: *subcompactions,
		WALSync:        policy, Shards: *shards,
		MemoryBudget: *memBudget, CompactionRateBytes: *compRate,
		AutoReshard: *autoReshard}
	if *path == "" {
		opts.InMemory = true
		fmt.Println("in-memory database (use -path to persist)")
	} else {
		opts.Path = *path
	}
	if *localLevels > 0 {
		var remoteDev vfs.FS
		if *path == "" {
			remoteDev = vfs.NewMem()
		} else {
			osfs, err := vfs.NewOS(*path + "-remote")
			if err != nil {
				fmt.Fprintln(os.Stderr, "open remote tier:", err)
				os.Exit(1)
			}
			remoteDev = osfs
		}
		opts.Storage.RemoteFS = vfs.NewRemote(remoteDev, vfs.RemoteConfig{
			Latency:              *remoteLatency,
			BandwidthBytesPerSec: *remoteBandwidth,
		})
		opts.Storage.Placement = lethe.PlacementPolicy{LocalLevels: *localLevels}
		fmt.Printf("tiered: %d local level(s), remote latency %v bandwidth %s\n",
			*localLevels, *remoteLatency, bytesPerSec(*remoteBandwidth))
	} else if *remoteLatency != 0 || *remoteBandwidth != 0 {
		fmt.Fprintln(os.Stderr, "-remote-latency/-remote-bandwidth require -local-levels > 0")
		os.Exit(1)
	}
	db, err := lethe.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer db.Close()

	if flag.NArg() > 0 {
		switch cmd := flag.Arg(0); cmd {
		case "verify":
			if !runVerify(db) {
				db.Close()
				os.Exit(1)
			}
		case "reshard":
			if err := runReshard(db, flag.Args()[1:]); err != nil {
				fmt.Fprintln(os.Stderr, "reshard:", err)
				db.Close()
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown subcommand %q (want verify or reshard)\n", cmd)
			db.Close()
			os.Exit(1)
		}
		return
	}

	sh := &shell{db: db, tiered: *localLevels > 0}
	defer sh.dropSnapshot()
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		if done := sh.execute(strings.Fields(sc.Text())); done {
			return
		}
		fmt.Print("> ")
	}
}

// runReshard executes "reshard split <shard> [boundary]" or
// "reshard merge <shard>" and prints the resulting layout.
func runReshard(db *lethe.DB, args []string) error {
	usage := fmt.Errorf("usage: reshard split <shard> [boundary] | reshard merge <shard>")
	if len(args) < 2 {
		return usage
	}
	shard, err := strconv.Atoi(args[1])
	if err != nil {
		return fmt.Errorf("shard %q: %w", args[1], err)
	}
	switch args[0] {
	case "split":
		var boundary []byte
		if len(args) > 2 {
			boundary = []byte(args[2])
		}
		if err := db.SplitShard(shard, boundary); err != nil {
			return err
		}
	case "merge":
		if err := db.MergeShards(shard); err != nil {
			return err
		}
	default:
		return usage
	}
	rs := db.ReshardStats()
	fmt.Printf("layout: %d shards at epoch %d (handed off %d files, rewrote %d straddlers / %dB, %d manifest ops)\n",
		db.ShardCount(), rs.Epoch, rs.FilesHandedOff, rs.StraddlerRewrites,
		rs.StraddlerRewriteBytes, rs.ManifestOps)
	return nil
}

// runVerify walks every live sstable, prints per-shard totals, and reports
// whether the database is clean.
func runVerify(db *lethe.DB) (ok bool) {
	vs, err := db.VerifyTables()
	for _, s := range vs.Shards {
		status := "ok"
		if s.Err != nil {
			status = fmt.Sprintf("CORRUPT (%d files)", s.CorruptFiles)
		}
		fmt.Printf("shard %d: files=%d blocks=%d (dropped %d) entries=%d bytes=%d %s\n",
			s.Shard, s.Files, s.Blocks, s.DroppedBlocks, s.Entries, s.Bytes, status)
	}
	fmt.Printf("total: files=%d blocks=%d (dropped %d) entries=%d bytes=%d\n",
		vs.Files, vs.Blocks, vs.DroppedBlocks, vs.Entries, vs.Bytes)
	if err != nil {
		fmt.Printf("verification FAILED: %v\n", err)
		return false
	}
	fmt.Println("verification passed")
	return true
}

// shell holds the interactive state: the database plus, between snap and
// release, the pinned snapshot reads are served from.
type shell struct {
	db   *lethe.DB
	snap *lethe.Snapshot
	// tiered notes that a remote tier is configured, so the stats command
	// prints the tier section even before anything has migrated.
	tiered bool
}

func (sh *shell) dropSnapshot() {
	if sh.snap != nil {
		sh.snap.Release()
		sh.snap = nil
	}
}

func (sh *shell) execute(args []string) (quit bool) {
	db := sh.db
	if len(args) == 0 {
		return false
	}
	fail := func(err error) {
		fmt.Println("error:", err)
	}
	parseD := func(s string) lethe.DeleteKey {
		v, _ := strconv.ParseUint(s, 10, 64)
		return lethe.DeleteKey(v)
	}
	switch args[0] {
	case "put":
		if len(args) < 4 {
			fmt.Println("usage: put <key> <deletekey> <value>")
			return false
		}
		if err := db.Put([]byte(args[1]), parseD(args[2]), []byte(strings.Join(args[3:], " "))); err != nil {
			fail(err)
		}
	case "get":
		if len(args) != 2 {
			fmt.Println("usage: get <key>")
			return false
		}
		var (
			v   []byte
			d   lethe.DeleteKey
			err error
		)
		if sh.snap != nil {
			v, d, err = sh.snap.GetWithDeleteKey([]byte(args[1]))
		} else {
			v, d, err = db.GetWithDeleteKey([]byte(args[1]))
		}
		switch {
		case errors.Is(err, lethe.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			fail(err)
		default:
			fmt.Printf("%s (deletekey=%d)\n", v, d)
		}
	case "del":
		if len(args) != 2 {
			fmt.Println("usage: del <key>")
			return false
		}
		if err := db.Delete([]byte(args[1])); err != nil {
			fail(err)
		}
	case "rangedel":
		if len(args) != 3 {
			fmt.Println("usage: rangedel <start> <end>")
			return false
		}
		if err := db.RangeDelete([]byte(args[1]), []byte(args[2])); err != nil {
			fail(err)
		}
	case "srd":
		if len(args) != 3 {
			fmt.Println("usage: srd <dlo> <dhi>")
			return false
		}
		st, err := db.SecondaryRangeDelete(parseD(args[1]), parseD(args[2]))
		if err != nil {
			fail(err)
			return false
		}
		fmt.Printf("dropped %d entries (%d full page drops, %d partial, %d pages skipped by fences)\n",
			st.EntriesDropped, st.FullPageDrops, st.PartialPageDrops, st.PagesUntouched)
	case "scan":
		var start, end []byte
		if len(args) > 1 {
			start = []byte(args[1])
		}
		if len(args) > 2 {
			end = []byte(args[2])
		}
		scan := db.Scan
		if sh.snap != nil {
			scan = sh.snap.Scan
		}
		n := 0
		err := scan(start, end, func(k []byte, d lethe.DeleteKey, v []byte) bool {
			fmt.Printf("%s = %s (deletekey=%d)\n", k, v, d)
			n++
			return n < 100
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("(%d entries)\n", n)
	case "dscan":
		if len(args) != 3 {
			fmt.Println("usage: dscan <dlo> <dhi>")
			return false
		}
		dscan := db.SecondaryRangeScan
		if sh.snap != nil {
			dscan = sh.snap.SecondaryRangeScan
		}
		items, err := dscan(parseD(args[1]), parseD(args[2]))
		if err != nil {
			fail(err)
			return false
		}
		for _, it := range items {
			fmt.Printf("%s = %s (deletekey=%d)\n", it.Key, it.Value, it.DKey)
		}
		fmt.Printf("(%d entries)\n", len(items))
	case "stats":
		st := db.Stats()
		if n := db.ShardCount(); n > 1 {
			fmt.Printf("shards=%d (aggregated below; per-shard entries:", n)
			for _, ss := range db.ShardStats() {
				fmt.Printf(" %d", ss.TreeEntries+ss.BufferEntries)
			}
			fmt.Println(")")
		}
		fmt.Printf("entries=%d buffer=%d tombstones=%d\n", st.TreeEntries, st.BufferEntries, st.LivePointTombstones)
		fmt.Printf("flushes=%d compactions=%d (ttl=%d sat=%d trivial=%d full-tree=%d)\n",
			st.Flushes, st.Compactions, st.CompactionsTTL, st.CompactionsSaturation,
			st.TrivialMoves, st.FullTreeCompactions)
		fmt.Printf("written: flush=%dB compaction=%dB total=%dB (w-amp %.2f)\n",
			st.BytesFlushed, st.CompactionBytesWritten, st.TotalBytesWritten, st.WriteAmplification())
		fmt.Printf("page drops: full=%d partial=%d; blind deletes suppressed=%d\n",
			st.FullPageDrops, st.PartialPageDrops, st.BlindDeletesSuppressed)
		fmt.Printf("pipeline: queued-buffers=%d bg-flushes=%d bg-compactions=%d stalls=%d (%v)\n",
			st.ImmutableBuffers, st.BackgroundFlushes, st.BackgroundCompactions,
			st.WriteStalls, st.WriteStallTime)
		fmt.Printf("subcompactions: run=%d max-width=%d merge-time=%v throughput=%.1fMB/s\n",
			st.Subcompactions, st.MaxMergeWidth, st.CompactionTime, st.CompactionThroughputMBps)
		groupFactor := 0.0
		if st.CommitGroups > 0 {
			groupFactor = float64(st.CommitBatches) / float64(st.CommitGroups)
		}
		fmt.Printf("commit: groups=%d batches=%d entries=%d (%.2f batches/group, max %d) queue=%d wal-syncs=%d published-seq=%d\n",
			st.CommitGroups, st.CommitBatches, st.CommitEntries, groupFactor,
			st.MaxCommitGroupBatches, st.CommitQueueDepth, st.WALSyncs, st.LastPublishedSeq)
		fmt.Printf("max tombstone age: %v (TTLs: %v)\n", db.MaxTombstoneAge(), db.TTLs())
		if t := st.Tier; sh.tiered || t.RemoteFiles > 0 || t.Migrations > 0 {
			fmt.Printf("tier: local=%d files/%dB remote=%d files/%dB migrations=%d (%dB, %.1fMB/s)\n",
				t.LocalFiles, t.LocalBytes, t.RemoteFiles, t.RemoteBytes,
				t.Migrations, t.MigratedBytes, t.MigrationMBps)
			fmt.Printf("tier remote io: reads=%d (%dB) writes=%d (%dB)\n",
				t.RemoteReadOps, t.RemoteBytesRead, t.RemoteWriteOps, t.RemoteBytesWritten)
		}
		if n := db.ShardCount(); n > 1 || db.ShardEpoch() > 0 {
			for _, p := range db.ShardPressures() {
				amp := "n/a"
				if p.SpaceAmpUnique > 0 {
					amp = fmt.Sprintf("%.3f (%dB/%dB)",
						float64(p.SpaceAmpTotal)/float64(p.SpaceAmpUnique)-1, p.SpaceAmpTotal, p.SpaceAmpUnique)
				}
				fmt.Printf("shard %d (id %d): stalls=%d (%v) memtable=%dB imm=%d disk=%dB space-amp=%s\n",
					p.Shard, p.ID, p.WriteStalls, p.WriteStallTime,
					p.MemtableBytes, p.ImmutableBuffers, p.BytesOnDisk, amp)
			}
			rst := db.ReshardStats()
			fmt.Printf("reshard: epoch=%d splits=%d merges=%d handed-off=%d rewrites=%d (%dB) manifest-ops=%d\n",
				rst.Epoch, rst.Splits, rst.Merges, rst.FilesHandedOff,
				rst.StraddlerRewrites, rst.StraddlerRewriteBytes, rst.ManifestOps)
		}
		if rs := db.RuntimeStats(); rs.Workers > 0 {
			fmt.Printf("runtime: workers=%d running=%d (max %d) queue=%d jobs(flush=%d compact=%d) subcompactions=%d (max parallel %d)\n",
				rs.Workers, rs.RunningJobs, rs.MaxRunningJobs, rs.QueueDepth, rs.FlushJobs, rs.CompactionJobs,
				rs.SubcompactionsRun, rs.MaxMergeParallelism)
			fmt.Printf("runtime memory: used=%dB budget=%dB stalls=%d (%v stalled)\n",
				rs.MemoryUsed, rs.MemoryBudget, rs.MemoryStalls, rs.MemoryStallTime)
			fmt.Printf("runtime io: rate=%dB/s throttled=%v; cache %d/%dB hits=%d misses=%d\n",
				rs.CompactionRateBytes, rs.ThrottleWaitTime, rs.CacheUsed, rs.CacheCapacity, rs.CacheHits, rs.CacheMisses)
		}
	case "levels":
		for i, l := range db.Stats().Levels {
			fmt.Printf("L%d: runs=%d files=%d bytes=%d entries=%d tombstones=%d\n",
				i+1, l.Runs, l.Files, l.LiveBytes, l.Entries, l.PointTombstones)
		}
	case "verify":
		runVerify(db)
	case "flush":
		if err := db.Flush(); err != nil {
			fail(err)
		}
	case "maintain":
		if err := db.Maintain(); err != nil {
			fail(err)
		}
	case "compactall":
		if err := db.FullTreeCompact(); err != nil {
			fail(err)
		}
	case "reshard":
		if err := runReshard(db, args[1:]); err != nil {
			fail(err)
		}
	case "snap":
		sh.dropSnapshot()
		snap, err := db.NewSnapshot()
		if err != nil {
			fail(err)
			return false
		}
		sh.snap = snap
		fmt.Println("snapshot pinned: get/scan/dscan serve this view until release")
	case "release":
		if sh.snap == nil {
			fmt.Println("no snapshot held")
			return false
		}
		sh.dropSnapshot()
		fmt.Println("snapshot released")
	case "quit", "exit":
		return true
	default:
		fmt.Println("commands: put get del rangedel srd scan dscan snap release reshard stats levels verify flush maintain compactall quit")
	}
	return false
}
