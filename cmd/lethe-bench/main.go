// Command lethe-bench regenerates the paper's tables and figures. Each
// experiment prints the rows the corresponding panel of Fig. 6 (or Fig. 1B /
// Table 2) plots.
//
// Usage:
//
//	lethe-bench [-scale quick|paper] <experiment>
//
// Experiments: table2, fig6a-d, fig6e, fig6f, fig6g, fig6h, fig6i, fig6j,
// fig6k, fig6l, fig1b, blind, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"lethe/internal/costmodel"
	"lethe/internal/harness"
)

func main() {
	scale := flag.String("scale", "quick", "experiment scale: quick or paper")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lethe-bench [-scale quick|paper] <experiment>\n\n")
		fmt.Fprintf(os.Stderr, "experiments:\n")
		fmt.Fprintf(os.Stderr, "  table2   analytical cost model (Table 2)\n")
		fmt.Fprintf(os.Stderr, "  fig6a-d  space amp, compactions, bytes written, read throughput vs %%deletes\n")
		fmt.Fprintf(os.Stderr, "  fig6e    tombstone age distribution\n")
		fmt.Fprintf(os.Stderr, "  fig6f    normalized bytes written over time\n")
		fmt.Fprintf(os.Stderr, "  fig6g    latency vs data size\n")
		fmt.Fprintf(os.Stderr, "  fig6h    %%full page drops vs SRD selectivity\n")
		fmt.Fprintf(os.Stderr, "  fig6i    lookup cost vs delete-tile granularity\n")
		fmt.Fprintf(os.Stderr, "  fig6j    optimal layout vs SRD selectivity\n")
		fmt.Fprintf(os.Stderr, "  fig6k    CPU (hashing) vs I/O trade-off\n")
		fmt.Fprintf(os.Stderr, "  fig6l    sort/delete key correlation effects\n")
		fmt.Fprintf(os.Stderr, "  fig1b    delete persistence latency/cost frontier\n")
		fmt.Fprintf(os.Stderr, "  blind    blind-delete suppression\n")
		fmt.Fprintf(os.Stderr, "  all      everything above\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := harness.Quick()
	if *scale == "paper" {
		// Closer to the paper's data volume; minutes, not seconds.
		cfg.KeySpace = 1 << 17
		cfg.Ops = 400_000
		cfg.ValueSize = 128
		cfg.BufferBytes = 128 * 1024
		cfg.FilePages = 64
		cfg.SizeRatio = 10
	}

	if err := run(flag.Arg(0), cfg); err != nil {
		fmt.Fprintln(os.Stderr, "lethe-bench:", err)
		os.Exit(1)
	}
}

func run(exp string, cfg harness.Config) error {
	out := os.Stdout
	hdr := func(title string) { fmt.Fprintf(out, "\n=== %s ===\n", title) }
	switch exp {
	case "table2":
		hdr("Table 2 — analytical cost model")
		p := costmodel.Reference()
		fmt.Fprint(out, costmodel.Format(costmodel.Leveling, p.Table2(costmodel.Leveling)))
		fmt.Fprint(out, costmodel.Format(costmodel.Tiering, p.Table2(costmodel.Tiering)))
	case "fig6a-d":
		hdr("Fig. 6A–D — delete sweep")
		rows, err := harness.RunDeleteSweep(cfg, []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10})
		if err != nil {
			return err
		}
		harness.PrintDeleteSweep(out, rows)
	case "fig6e":
		hdr("Fig. 6E — tombstone age distribution")
		rows, err := harness.RunTombstoneAges(cfg, 0.10)
		if err != nil {
			return err
		}
		harness.PrintTombstoneAges(out, rows)
	case "fig6f":
		hdr("Fig. 6F — normalized bytes written over time (Dth = runtime/15, paper's worst case)")
		rows, err := harness.RunWriteAmpOverTime(cfg, 0.06, 1.0/15, 5)
		if err != nil {
			return err
		}
		harness.PrintWriteAmp(out, rows)
		hdr("Fig. 6F' — amortizing regime (25% deletes, Dth = 75% of runtime)")
		rows, err = harness.RunWriteAmpOverTime(cfg, 0.25, 0.75, 5)
		if err != nil {
			return err
		}
		harness.PrintWriteAmp(out, rows)
	case "fig6g":
		hdr("Fig. 6G — latency vs data size")
		rows, err := harness.RunScaling(cfg, []int{cfg.Ops / 8, cfg.Ops / 4, cfg.Ops / 2, cfg.Ops})
		if err != nil {
			return err
		}
		harness.PrintScaling(out, rows)
	case "fig6h":
		hdr("Fig. 6H — %full page drops")
		rows, err := harness.RunFullPageDrops(cfg, []int{1, 4, 8, 16, 32},
			[]float64{0.01, 0.02, 0.03, 0.04, 0.05})
		if err != nil {
			return err
		}
		harness.PrintFullPageDrops(out, rows)
	case "fig6i":
		hdr("Fig. 6I — lookup cost vs delete-tile granularity")
		rows, err := harness.RunLookupVsTileSize(cfg, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		harness.PrintLookupCost(out, rows)
	case "fig6j":
		hdr("Fig. 6J — optimal storage layout")
		rows, err := harness.RunOptimalLayout(cfg, []int{1, 2, 4, 8, 16},
			[]float64{0.01, 0.03, 0.05}, 1000)
		if err != nil {
			return err
		}
		harness.PrintOptimalLayout(out, rows)
	case "fig6k":
		hdr("Fig. 6K — CPU vs I/O trade-off")
		rows, err := harness.RunCPUvsIO(cfg, []int{1, 2, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		harness.PrintCPUIO(out, rows)
	case "fig6l":
		hdr("Fig. 6L — sort/delete key correlation")
		rows, err := harness.RunCorrelation(cfg, []int{1, 2, 4, 8, 16, 32}, []float64{0, 1})
		if err != nil {
			return err
		}
		harness.PrintCorrelation(out, rows)
	case "fig1b":
		hdr("Fig. 1B — persistence latency/cost frontier")
		rows, err := harness.RunFrontier(cfg, 0.06, []float64{1.0 / 6, 0.25, 0.5})
		if err != nil {
			return err
		}
		harness.PrintFrontier(out, rows)
	case "blind":
		hdr("Blind-delete suppression (§4.1.5)")
		rows, err := harness.RunBlindDeletes(cfg, 2000)
		if err != nil {
			return err
		}
		harness.PrintBlindDeletes(out, rows)
	case "all":
		for _, e := range []string{"table2", "fig6a-d", "fig6e", "fig6f", "fig6g",
			"fig6h", "fig6i", "fig6j", "fig6k", "fig6l", "fig1b", "blind"} {
			if err := run(e, cfg); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q (try: all)", exp)
	}
	return nil
}
