// Command benchjson converts `go test -bench` output into a stable JSON
// document and an optional Markdown summary table — the format the CI
// perf-trajectory job archives (BENCH_PR3.json and successors) so benchmark
// numbers can be compared across PRs by machines, not eyeballs.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem . | benchjson -json BENCH.json -md
//
// Repeated runs of a benchmark (from -count=N) are averaged; the JSON
// records the run count per benchmark. Custom b.ReportMetric units are kept
// under "metrics". Lines that are not benchmark results are ignored, so the
// whole `go test` output can be piped in unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result accumulates the runs of one benchmark.
type result struct {
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// accum sums values before the final averaging divide.
type accum struct {
	runs int
	sums map[string]float64 // unit -> summed value
}

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	jsonOut := flag.String("json", "", "write the JSON document to this file")
	md := flag.Bool("md", false, "print a Markdown summary table to stdout")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	byName, order, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(order) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found"))
	}

	results := make(map[string]result, len(byName))
	for name, a := range byName {
		res := result{Runs: a.runs, Metrics: map[string]float64{}}
		for unit, sum := range a.sums {
			avg := sum / float64(a.runs)
			switch unit {
			case "ns/op":
				res.NsPerOp = avg
			case "B/op":
				res.BytesPerOp = avg
			case "allocs/op":
				res.AllocsPerOp = avg
			default:
				res.Metrics[unit] = avg
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		results[name] = res
	}

	if *jsonOut != "" {
		doc, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(doc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *md {
		printMarkdown(os.Stdout, results, order)
	}
}

// parse reads gobench output, returning per-name accumulators and the first-
// appearance order of the names.
func parse(r io.Reader) (map[string]*accum, []string, error) {
	byName := map[string]*accum{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName[-P] N value unit [value unit]...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. "Benchmarking..." chatter
		}
		name := fields[0]
		a := byName[name]
		if a == nil {
			a = &accum{sums: map[string]float64{}}
			byName[name] = a
			order = append(order, name)
		}
		a.runs++
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			a.sums[fields[i+1]] += v
		}
	}
	return byName, order, sc.Err()
}

// printMarkdown emits a summary table in first-appearance order, with any
// custom metrics inlined in the last column.
func printMarkdown(w io.Writer, results map[string]result, order []string) {
	fmt.Fprintln(w, "### Benchmark trajectory")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| benchmark | runs | ns/op | B/op | allocs/op | metrics |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---|")
	for _, name := range order {
		r := results[name]
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var metrics []string
		for _, k := range keys {
			metrics = append(metrics, fmt.Sprintf("%s=%.4g", k, r.Metrics[k]))
		}
		fmt.Fprintf(w, "| %s | %d | %.0f | %.0f | %.0f | %s |\n",
			name, r.Runs, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, strings.Join(metrics, ", "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
