// Command benchjson converts `go test -bench` output into a stable JSON
// document and an optional Markdown summary table — the format the CI
// perf-trajectory job archives (BENCH_PR3.json and successors) so benchmark
// numbers can be compared across PRs by machines, not eyeballs.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem . | benchjson -json BENCH.json -md
//
// Repeated runs of a benchmark (from -count=N) are averaged; the JSON
// records the run count per benchmark. Custom b.ReportMetric units are kept
// under "metrics". Lines that are not benchmark results are ignored, so the
// whole `go test` output can be piped in unfiltered.
//
// With -baseline PREV.json (a previous -json output, e.g. the committed
// BENCH_PR6.json), a "versus baseline" Markdown section is appended diffing
// ns/op, B/op, and allocs/op per benchmark, and every regression past
// -threshold percent (default 20) emits a GitHub Actions ::warning::
// annotation on stderr — the CI bench-regression gate. Memory columns are
// diffed only when both sides have them (runs without -benchmem, or
// baselines predating it, show "—"). The gate warns instead of failing: CI
// runner noise must not block merges, but regressions must be visible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result accumulates the runs of one benchmark.
type result struct {
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// accum sums values before the final averaging divide.
type accum struct {
	runs int
	sums map[string]float64 // unit -> summed value
}

func main() {
	in := flag.String("in", "", "input file (default: stdin)")
	jsonOut := flag.String("json", "", "write the JSON document to this file")
	md := flag.Bool("md", false, "print a Markdown summary table to stdout")
	baseline := flag.String("baseline", "", "baseline JSON (a previous -json output) to diff ns/op, B/op, and allocs/op against")
	threshold := flag.Float64("threshold", 20, "regression warning threshold in percent (with -baseline)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	byName, order, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(order) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found"))
	}

	results := make(map[string]result, len(byName))
	for name, a := range byName {
		res := result{Runs: a.runs, Metrics: map[string]float64{}}
		for unit, sum := range a.sums {
			avg := sum / float64(a.runs)
			switch unit {
			case "ns/op":
				res.NsPerOp = avg
			case "B/op":
				res.BytesPerOp = avg
			case "allocs/op":
				res.AllocsPerOp = avg
			default:
				res.Metrics[unit] = avg
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		results[name] = res
	}

	if *jsonOut != "" {
		doc, err := json.MarshalIndent(map[string]any{"benchmarks": results}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(doc, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if *md {
		printMarkdown(os.Stdout, results, order)
	}
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			// Warn-only gate: a missing or unreadable baseline must not turn
			// it into a hard CI failure — annotate and skip the diff.
			fmt.Fprintf(os.Stderr, "::warning title=Bench baseline missing::%v — regression diff skipped\n", err)
		} else {
			// The table joins the -md output (the CI job redirects stdout
			// into the step summary); the ::warning:: annotations go to
			// stderr so they land in the job log, where the Actions runner
			// scans them.
			printDiff(os.Stdout, os.Stderr, results, base, order, *threshold)
		}
	}
}

// loadBaseline reads a previous -json output.
func loadBaseline(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks map[string]result `json:"benchmarks"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("decode baseline %s: %w", path, err)
	}
	return doc.Benchmarks, nil
}

// diffMetrics are the columns printDiff compares against the baseline. All
// three share the regression threshold: more allocations per op is a
// regression exactly like more nanoseconds per op.
var diffMetrics = []struct {
	unit string
	get  func(result) float64
}{
	{"ns/op", func(r result) float64 { return r.NsPerOp }},
	{"B/op", func(r result) float64 { return r.BytesPerOp }},
	{"allocs/op", func(r result) float64 { return r.AllocsPerOp }},
}

// printDiff emits a Markdown section comparing ns/op, B/op, and allocs/op
// against the baseline, flagging regressions past the threshold, and a
// GitHub Actions ::warning:: command per flagged benchmark+metric so the
// job page surfaces them. A metric missing on either side (a run without
// -benchmem, or a baseline predating the memory columns) renders as "—" and
// is never flagged. The gate warns rather than fails: benchmark noise on
// shared CI runners must not block merges, but regressions must be
// impossible to miss.
func printDiff(w, warnw io.Writer, results, base map[string]result, order []string, threshold float64) {
	fmt.Fprintln(w)
	fmt.Fprintf(w, "### Versus baseline (warn at +%.0f%% ns/op, B/op, allocs/op)\n", threshold)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| benchmark | ns/op | B/op | allocs/op |")
	fmt.Fprintln(w, "|---|---:|---:|---:|")
	var regressions []string
	for _, name := range order {
		cur := results[name]
		b, inBase := base[name]
		cells := make([]string, 0, len(diffMetrics))
		for _, m := range diffMetrics {
			cv, bv := m.get(cur), m.get(b)
			switch {
			case !inBase || bv <= 0:
				if cv <= 0 {
					cells = append(cells, "—")
				} else {
					cells = append(cells, fmt.Sprintf("%.0f (new)", cv))
				}
			case cv <= 0:
				cells = append(cells, fmt.Sprintf("%.0f -> —", bv))
			default:
				delta := (cv - bv) / bv * 100
				marker := ""
				if delta > threshold {
					marker = " ⚠️"
					regressions = append(regressions,
						fmt.Sprintf("%s: %.0f -> %.0f %s (%+.1f%%)", name, bv, cv, m.unit, delta))
				}
				cells = append(cells, fmt.Sprintf("%.0f -> %.0f (%+.1f%%)%s", bv, cv, delta, marker))
			}
		}
		fmt.Fprintf(w, "| %s | %s |\n", name, strings.Join(cells, " | "))
	}
	var removed []string
	for name := range base {
		if _, ok := results[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "| %s | %.0f -> removed | — | — |\n", name, base[name].NsPerOp)
	}
	fmt.Fprintln(w)
	if len(regressions) == 0 {
		fmt.Fprintf(w, "No regressions past %.0f%% (ns/op, B/op, allocs/op).\n", threshold)
		return
	}
	fmt.Fprintf(w, "%d benchmark metric(s) regressed past %.0f%% — see the job log annotations.\n",
		len(regressions), threshold)
	sort.Strings(regressions)
	for _, r := range regressions {
		// GitHub Actions annotation: shows on the workflow run page.
		fmt.Fprintf(warnw, "::warning title=Benchmark regression::%s\n", r)
	}
}

// parse reads gobench output, returning per-name accumulators and the first-
// appearance order of the names.
func parse(r io.Reader) (map[string]*accum, []string, error) {
	byName := map[string]*accum{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName[-P] N value unit [value unit]...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // e.g. "Benchmarking..." chatter
		}
		name := stripProcsSuffix(fields[0])
		a := byName[name]
		if a == nil {
			a = &accum{sums: map[string]float64{}}
			byName[name] = a
			order = append(order, name)
		}
		a.runs++
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			a.sums[fields[i+1]] += v
		}
	}
	return byName, order, sc.Err()
}

// stripProcsSuffix removes the trailing "-GOMAXPROCS" go test appends to
// benchmark names (absent when GOMAXPROCS=1). Names must be portable across
// machines with different core counts, or a baseline recorded on one
// machine never matches a run on another and the regression diff reports
// everything as new/removed instead of comparing.
//
// Constraint this imposes on the suite: a sub-benchmark name must not end
// in "-<number>" (e.g. "buf-512"), since a GOMAXPROCS=1 run would have it
// wrongly stripped and collide with a sibling. Spell such variants
// "buf=512" instead.
func stripProcsSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// printMarkdown emits a summary table in first-appearance order, with any
// custom metrics inlined in the last column.
func printMarkdown(w io.Writer, results map[string]result, order []string) {
	fmt.Fprintln(w, "### Benchmark trajectory")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| benchmark | runs | ns/op | B/op | allocs/op | metrics |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---|")
	for _, name := range order {
		r := results[name]
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var metrics []string
		for _, k := range keys {
			metrics = append(metrics, fmt.Sprintf("%s=%.4g", k, r.Metrics[k]))
		}
		fmt.Fprintf(w, "| %s | %d | %.0f | %.0f | %.0f | %s |\n",
			name, r.Runs, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, strings.Join(metrics, ", "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
