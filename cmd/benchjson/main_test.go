package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lethe
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedPuts/shards=1-16         	   20000	    900000 ns/op	       152.0 flushes	       150.0 stalls
BenchmarkShardedPuts/shards=1-16         	   20000	    950000 ns/op	       148.0 flushes	       154.0 stalls
BenchmarkShardedPuts/shards=4-16         	   20000	    350000 ns/op	       152.0 flushes	       137.0 stalls
BenchmarkConcurrentPuts/goroutines=16/grouped-16 	   10000	     91043 ns/op	      15.97 batches/group	         0.06300 syncs/op	     512 B/op	       9 allocs/op
PASS
ok  	lethe	79.275s
`

func TestParse(t *testing.T) {
	byName, order, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("parsed %d benchmarks: %v", len(order), order)
	}
	if order[0] != "BenchmarkShardedPuts/shards=1" {
		t.Fatalf("order[0] = %s (the -GOMAXPROCS suffix must be stripped)", order[0])
	}

	a := byName["BenchmarkShardedPuts/shards=1"]
	if a.runs != 2 {
		t.Fatalf("runs = %d, want 2 (count-averaged)", a.runs)
	}
	if got := a.sums["ns/op"] / float64(a.runs); got != 925000 {
		t.Fatalf("averaged ns/op = %v", got)
	}
	if got := a.sums["flushes"] / float64(a.runs); got != 150 {
		t.Fatalf("averaged flushes = %v", got)
	}

	c := byName["BenchmarkConcurrentPuts/goroutines=16/grouped"]
	if c.runs != 1 {
		t.Fatalf("runs = %d", c.runs)
	}
	if c.sums["B/op"] != 512 || c.sums["allocs/op"] != 9 {
		t.Fatalf("memory columns: %v", c.sums)
	}
	if c.sums["batches/group"] != 15.97 {
		t.Fatalf("custom metric: %v", c.sums["batches/group"])
	}
}

func TestStripProcsSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":                   "BenchmarkFoo",
		"BenchmarkFoo":                     "BenchmarkFoo",
		"BenchmarkFoo/rate-2MB-16":         "BenchmarkFoo/rate-2MB",
		"BenchmarkFoo/rate-2MB":            "BenchmarkFoo/rate-2MB", // GOMAXPROCS=1: no suffix, non-numeric tail kept
		"BenchmarkCompaction/unlimited-4":  "BenchmarkCompaction/unlimited",
		"BenchmarkShardedPuts/shards=1-16": "BenchmarkShardedPuts/shards=1",
	}
	for in, want := range cases {
		if got := stripProcsSuffix(in); got != want {
			t.Fatalf("stripProcsSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPrintDiff(t *testing.T) {
	results := map[string]result{
		"BenchA": {NsPerOp: 1300, BytesPerOp: 512, AllocsPerOp: 9},  // ns/op +30%: regression
		"BenchB": {NsPerOp: 900, BytesPerOp: 1000, AllocsPerOp: 30}, // allocs/op +200%: regression
		"BenchC": {NsPerOp: 500},                                    // new
		"BenchE": {NsPerOp: 1000},                                   // memory columns absent on both sides
	}
	base := map[string]result{
		"BenchA": {NsPerOp: 1000, BytesPerOp: 512, AllocsPerOp: 9},
		"BenchB": {NsPerOp: 1000, BytesPerOp: 1024, AllocsPerOp: 10},
		"BenchD": {NsPerOp: 700}, // removed
		"BenchE": {NsPerOp: 1000},
	}
	var out, warn strings.Builder
	printDiff(&out, &warn, results, base, []string{"BenchA", "BenchB", "BenchC", "BenchE"}, 20)

	table := out.String()
	for _, want := range []string{
		"| BenchA | 1000 -> 1300 (+30.0%) ⚠️ | 512 -> 512 (+0.0%) | 9 -> 9 (+0.0%) |",
		"| BenchB | 1000 -> 900 (-10.0%) | 1024 -> 1000 (-2.3%) | 10 -> 30 (+200.0%) ⚠️ |",
		"| BenchC | 500 (new) | — | — |",
		"| BenchD | 700 -> removed | — | — |",
		"| BenchE | 1000 -> 1000 (+0.0%) | — | — |",
		"2 benchmark metric(s) regressed past 20%",
	} {
		if !strings.Contains(table, want) {
			t.Fatalf("diff table missing %q in:\n%s", want, table)
		}
	}
	warnings := warn.String()
	if !strings.Contains(warnings, "::warning title=Benchmark regression::BenchA: 1000 -> 1300 ns/op (+30.0%)") {
		t.Fatalf("ns/op warning annotation missing in:\n%s", warnings)
	}
	if !strings.Contains(warnings, "::warning title=Benchmark regression::BenchB: 10 -> 30 allocs/op (+200.0%)") {
		t.Fatalf("allocs/op warning annotation missing in:\n%s", warnings)
	}
	if strings.Contains(warnings, "B/op") {
		t.Fatal("non-regressed metric must not be flagged")
	}

	// No regressions: the table says so and no annotations are emitted.
	out.Reset()
	warn.Reset()
	printDiff(&out, &warn, map[string]result{"BenchB": {NsPerOp: 900, BytesPerOp: 1000, AllocsPerOp: 10}},
		base, []string{"BenchB"}, 20)
	if !strings.Contains(out.String(), "No regressions past 20% (ns/op, B/op, allocs/op)") {
		t.Fatalf("missing all-clear line:\n%s", out.String())
	}
	if warn.Len() != 0 {
		t.Fatalf("unexpected warnings: %s", warn.String())
	}
}
