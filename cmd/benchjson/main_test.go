package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lethe
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkShardedPuts/shards=1-16         	   20000	    900000 ns/op	       152.0 flushes	       150.0 stalls
BenchmarkShardedPuts/shards=1-16         	   20000	    950000 ns/op	       148.0 flushes	       154.0 stalls
BenchmarkShardedPuts/shards=4-16         	   20000	    350000 ns/op	       152.0 flushes	       137.0 stalls
BenchmarkConcurrentPuts/goroutines=16/grouped-16 	   10000	     91043 ns/op	      15.97 batches/group	         0.06300 syncs/op	     512 B/op	       9 allocs/op
PASS
ok  	lethe	79.275s
`

func TestParse(t *testing.T) {
	byName, order, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("parsed %d benchmarks: %v", len(order), order)
	}
	if order[0] != "BenchmarkShardedPuts/shards=1-16" {
		t.Fatalf("order[0] = %s", order[0])
	}

	a := byName["BenchmarkShardedPuts/shards=1-16"]
	if a.runs != 2 {
		t.Fatalf("runs = %d, want 2 (count-averaged)", a.runs)
	}
	if got := a.sums["ns/op"] / float64(a.runs); got != 925000 {
		t.Fatalf("averaged ns/op = %v", got)
	}
	if got := a.sums["flushes"] / float64(a.runs); got != 150 {
		t.Fatalf("averaged flushes = %v", got)
	}

	c := byName["BenchmarkConcurrentPuts/goroutines=16/grouped-16"]
	if c.runs != 1 {
		t.Fatalf("runs = %d", c.runs)
	}
	if c.sums["B/op"] != 512 || c.sums["allocs/op"] != 9 {
		t.Fatalf("memory columns: %v", c.sums)
	}
	if c.sums["batches/group"] != 15.97 {
		t.Fatalf("custom metric: %v", c.sums["batches/group"])
	}
}
