// Tiered: run the tree across a fast local device and a slow cheap remote
// one, and watch data migrate as it cools.
//
// Storage.RemoteFS splits the level hierarchy: the WAL and the first
// Placement.LocalLevels levels stay local, colder levels live remote.
// Compaction migrates runs across the boundary as they move down the tree;
// the manifest records each run's tier, so a reopen reproduces the split.
// Here the remote side is a vfs.RemoteFS — an in-memory device wrapped in a
// latency/bandwidth model — so the example is self-contained and the cost
// of cold reads is visible without real hardware.
package main

import (
	"fmt"
	"log"
	"time"

	"lethe"
	"lethe/internal/vfs"
)

func main() {
	local := vfs.NewMem()
	// Model the cold tier as a 100MB/s link with 500us per-op latency —
	// a cheap network volume, give or take.
	remote := vfs.NewRemote(vfs.NewMem(), vfs.RemoteConfig{
		Latency:              500 * time.Microsecond,
		BandwidthBytesPerSec: 100 << 20,
	})

	db, err := lethe.Open(lethe.Options{
		Storage: lethe.StorageOptions{
			FS:       local,
			RemoteFS: remote,
			// Keep one level local: flushes and the hottest data at
			// memory speed, everything colder on the modeled link.
			Placement: lethe.PlacementPolicy{LocalLevels: 1},
			// A cache softens repeat reads against the remote tier;
			// remote blocks get admission preference.
			CacheBytes: 4 << 20,
		},
		BufferBytes: 64 << 10,
		SizeRatio:   4,
		Dth:         24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load enough that compaction pushes runs past the local level.
	const n = 20_000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("row-%08d", i)
		if err := db.Put([]byte(key), lethe.DeleteKey(i), []byte("payload")); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := db.Maintain(); err != nil { // drain maintenance: placement reaches its fixpoint
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("tiers: %d local files (%d KiB), %d remote files (%d KiB)\n",
		st.Tier.LocalFiles, st.Tier.LocalBytes>>10,
		st.Tier.RemoteFiles, st.Tier.RemoteBytes>>10)
	fmt.Printf("migrations: %d runs, %d KiB copied across the boundary\n",
		st.Tier.Migrations, st.Tier.MigratedBytes>>10)

	// A cold full scan streams the remote level with read-ahead: the
	// iterator fetches the next tile while the caller consumes the current
	// one, so throughput tracks the modeled bandwidth, not the latency.
	start := time.Now()
	seen := 0
	if err := db.Scan(nil, nil, func(_ []byte, _ lethe.DeleteKey, _ []byte) bool {
		seen++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	st = db.Stats()
	fmt.Printf("cold scan: %d rows in %v (%d KiB read from remote)\n",
		seen, time.Since(start).Round(time.Millisecond), st.Tier.RemoteBytesRead>>10)

	// Hot keys keep local latency: recent writes sit in the local level,
	// and the cache holds on to whatever remote blocks the scan warmed.
	if _, err := db.Get([]byte(fmt.Sprintf("row-%08d", n-1))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hot get served")
}
