// Quickstart: open an in-memory Lethe database, write, read, delete, scan.
package main

import (
	"fmt"
	"log"
	"time"

	"lethe"
)

func main() {
	// A Lethe database with a 24-hour delete persistence guarantee: every
	// delete is physically purged from storage within Dth of being issued.
	db, err := lethe.Open(lethe.Options{
		InMemory: true,
		Dth:      24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Put(key, deleteKey, value): deleteKey is the secondary attribute
	// (here a creation timestamp) that secondary range deletes select on.
	now := lethe.DeleteKey(time.Now().Unix())
	if err := db.Put([]byte("user:1001"), now, []byte(`{"name":"ada"}`)); err != nil {
		log.Fatal(err)
	}
	if err := db.Put([]byte("user:1002"), now, []byte(`{"name":"grace"}`)); err != nil {
		log.Fatal(err)
	}

	value, err := db.Get([]byte("user:1001"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1001 = %s\n", value)

	// Point delete: inserts a tombstone that FADE guarantees to persist
	// within Dth.
	if err := db.Delete([]byte("user:1001")); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Get([]byte("user:1001")); err == lethe.ErrNotFound {
		fmt.Println("user:1001 deleted")
	}

	// Range scan over what's left.
	err = db.Scan([]byte("user:"), []byte("user:~"), func(k []byte, _ lethe.DeleteKey, v []byte) bool {
		fmt.Printf("scan: %s = %s\n", k, v)
		return true
	})
	if err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("flushes=%d compactions=%d tree-entries=%d\n",
		st.Flushes, st.Compactions, st.TreeEntries)
}
