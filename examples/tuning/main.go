// Tuning demonstrates Eq. 3 (§4.2.6): choosing the delete-tile granularity h
// from the workload composition, including the paper's own worked example
// (§4.3: a 400GB database where h ≈ 100 is optimal), and shows how the
// optimum shifts as reads or deletes dominate.
package main

import (
	"fmt"

	"lethe"
)

func main() {
	// The paper's worked example: 400GB database, 4KB pages, and between
	// two secondary range deletes: 50M point queries, 10K short range
	// queries, FPR ≈ 0.02, L = log_T(N/B) ≈ 8 levels.
	pagesInDB := 400e9 / 4096
	params := lethe.TuningParams{
		Entries:           pagesInDB, // expressed as N/B units
		EntriesPerPage:    1,
		FalsePositiveRate: 0.02,
		Levels:            8,
	}
	paper := lethe.WorkloadProfile{
		EmptyPointLookups:     25e6,
		PointLookups:          25e6,
		ShortRangeLookups:     1e4,
		SecondaryRangeDeletes: 1,
	}
	fmt.Printf("paper's worked example (§4.3): optimal h = %d (paper: ≈100)\n\n",
		lethe.OptimalTileSize(params, paper))

	fmt.Println("how the optimum moves with the workload:")
	fmt.Printf("%-44s %8s\n", "workload", "h*")
	rows := []struct {
		name string
		w    lethe.WorkloadProfile
	}{
		{"no secondary deletes at all", lethe.WorkloadProfile{PointLookups: 1e6}},
		{"1 SRD per 100M point lookups", lethe.WorkloadProfile{
			PointLookups: 50e6, EmptyPointLookups: 50e6, SecondaryRangeDeletes: 1}},
		{"1 SRD per 50M point lookups (paper)", paper},
		{"1 SRD per 5M point lookups", lethe.WorkloadProfile{
			PointLookups: 2.5e6, EmptyPointLookups: 2.5e6,
			ShortRangeLookups: 1e3, SecondaryRangeDeletes: 1}},
		{"range-scan heavy (1M short ranges per SRD)", lethe.WorkloadProfile{
			PointLookups: 1e6, ShortRangeLookups: 1e6, SecondaryRangeDeletes: 1}},
		{"delete-dominated archive (reads rare)", lethe.WorkloadProfile{
			PointLookups: 1e3, SecondaryRangeDeletes: 1}},
	}
	for _, r := range rows {
		fmt.Printf("%-44s %8d\n", r.name, lethe.OptimalTileSize(params, r.w))
	}

	fmt.Println("\nh = 1 is the classical LSM layout (fastest reads, full-tree")
	fmt.Println("compaction for secondary deletes); larger h trades bounded read")
	fmt.Println("overhead for secondary deletes that drop whole pages without I/O.")
}
