// Streamscan: iterate a huge key range with bounded memory, and serve a
// consistent multi-read report from one pinned snapshot while writers keep
// going.
//
// The two read primitives this demonstrates:
//
//   - DB.NewIter is a lazy cursor: it pins a fixed view up front but reads
//     pages only as you consume entries, so walking the first rows of a
//     million-key range costs a few pages, not a copy of the range.
//     Close it promptly — the pins keep obsolete sstables on disk.
//
//   - DB.NewSnapshot pins every shard's read state in one pass; Get, Scan,
//     and NewIter against the snapshot all observe that single point-in-time
//     view, no matter what concurrent writers do meanwhile.
package main

import (
	"fmt"
	"log"

	"lethe"
)

func main() {
	db, err := lethe.Open(lethe.Options{InMemory: true, Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A "large" range: a quarter million ordered events.
	const n = 250_000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("event-%08d", i)
		if err := db.Put([]byte(key), lethe.DeleteKey(i), []byte("payload")); err != nil {
			log.Fatal(err)
		}
	}

	// Stream the range: only what the loop consumes is read. Abandoning
	// the cursor after ten entries reads roughly ten entries' worth of
	// pages, regardless of n.
	it, err := db.NewIter([]byte("event-"), nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 10 && it.Next(); i++ {
		fmt.Printf("streamed %s\n", it.Key())
	}
	// SeekGE skips ahead without touching the keys in between.
	it.SeekGE([]byte("event-00200000"))
	if it.Next() {
		fmt.Printf("after seek: %s\n", it.Key())
	}
	if err := it.Close(); err != nil { // release the pins right away
		log.Fatal(err)
	}

	// A consistent report: pin one snapshot, then mix Scan and Get freely.
	// The concurrent overwrite below is invisible to both.
	snap, err := db.NewSnapshot()
	if err != nil {
		log.Fatal(err)
	}
	defer snap.Release()

	if err := db.Put([]byte("event-00000000"), 0, []byte("rewritten")); err != nil {
		log.Fatal(err)
	}

	count := 0
	if err := snap.Scan([]byte("event-"), []byte("event-00000100"), func(k []byte, d lethe.DeleteKey, v []byte) bool {
		count++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	v, err := snap.Get([]byte("event-00000000")) // agrees with the scan above
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d events in range, first = %s\n", count, v)

	live, err := db.Get([]byte("event-00000000")) // the live view moved on
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live:     first = %s\n", live)
}
