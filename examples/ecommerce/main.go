// Ecommerce reproduces the paper's Scenario 1 (EComp, §1): an order store
// sorted by order id that must honor right-to-be-forgotten requests with a
// hard persistence deadline.
//
// A user-deletion request becomes point and range deletes on the sort key;
// FADE's TTL-driven compactions guarantee the data is physically gone within
// Dth, which the example verifies by inspecting tombstone ages after
// advancing the (simulated) clock.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"lethe"
)

func orderKey(user, order int) []byte {
	// Orders cluster by user so one user's history is a contiguous range.
	return []byte(fmt.Sprintf("order/%05d/%07d", user, order))
}

func main() {
	clock := lethe.NewManualClock(time.Unix(1_700_000_000, 0))
	const dth = 6 * time.Hour // the privacy SLA: deletes persist within 6h

	db, err := lethe.Open(lethe.Options{
		InMemory:    true,
		Clock:       clock,
		Dth:         dth,
		BufferBytes: 8 << 10,
		PageSize:    1 << 10,
		FilePages:   16,
		SizeRatio:   10,
		DisableWAL:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Years of order history for 40 users.
	fmt.Println("ingesting order history...")
	for user := 0; user < 40; user++ {
		for order := 0; order < 200; order++ {
			ts := lethe.DeleteKey(clock.Now().Unix())
			payload := []byte(fmt.Sprintf(`{"user":%d,"order":%d,"total":%d}`, user, order, order*7))
			if err := db.Put(orderKey(user, order), ts, payload); err != nil {
				log.Fatal(err)
			}
			clock.Advance(time.Second)
		}
	}

	// User 17 invokes the right to be forgotten: one range delete covers
	// their whole clustered history.
	fmt.Println("user 17 requests deletion (GDPR article 17)...")
	requested := clock.Now()
	if err := db.RangeDelete(orderKey(17, 0), orderKey(17, 1<<24)); err != nil {
		log.Fatal(err)
	}

	// The data is logically gone immediately.
	if _, err := db.Get(orderKey(17, 42)); !errors.Is(err, lethe.ErrNotFound) {
		log.Fatalf("order 17/42 still readable: %v", err)
	}

	// Physical persistence: the store keeps serving new orders while FADE's
	// TTL-driven compactions push the tombstones to the last level within
	// the SLA.
	nextOrder := 200
	for elapsed := time.Duration(0); elapsed < dth; elapsed += 30 * time.Minute {
		clock.Advance(30 * time.Minute)
		for user := 0; user < 40; user += 8 { // ongoing traffic
			ts := lethe.DeleteKey(clock.Now().Unix())
			if err := db.Put(orderKey(user, nextOrder), ts, []byte(`{"new":true}`)); err != nil {
				log.Fatal(err)
			}
		}
		nextOrder++
		if err := db.Maintain(); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		log.Fatal(err)
	}

	oldest := db.MaxTombstoneAge()
	fmt.Printf("SLA check %v after the request:\n", clock.Now().Sub(requested))
	fmt.Printf("  oldest tombstone in the tree: %v (Dth = %v)\n", oldest, dth)
	if oldest > dth {
		log.Fatal("SLA violated: tombstone older than Dth survives")
	}
	st := db.Stats()
	fmt.Printf("  ttl-compactions=%d tombstones-persisted=%d range-covered=%d\n",
		st.CompactionsTTL, st.TombstonesDropped, st.RangeCovered)

	// Everyone else's data is intact.
	if _, err := db.Get(orderKey(16, 42)); err != nil {
		log.Fatal("neighbor data lost!")
	}
	fmt.Println("  user 16's orders intact; user 17 physically forgotten ✓")
}
