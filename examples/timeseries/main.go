// Timeseries reproduces the paper's Scenario 2 (DComp, §1): operational
// documents stored by document id but expired by creation timestamp — the
// sort key and the delete key are different attributes.
//
// The paper's engineers ("they may keep data for 30 days, and daily delete
// data that turned 31-days old") would need a full-tree compaction per day on
// a classical LSM engine. With KiWi's delete tiles the daily purge becomes
// page drops guided by in-memory delete fences, and this example counts
// exactly how many pages were dropped without any I/O.
package main

import (
	"fmt"
	"log"
	"time"

	"lethe"
)

const (
	retentionDays = 7
	docsPerDay    = 400
)

func docKey(id int) []byte { return []byte(fmt.Sprintf("doc:%08x", id*2654435761%(1<<30))) }

func day(d int) lethe.DeleteKey { return lethe.DeleteKey(d) }

func main() {
	clock := lethe.NewManualClock(time.Unix(1_700_000_000, 0))
	db, err := lethe.Open(lethe.Options{
		InMemory:    true,
		Clock:       clock,
		TilePages:   8, // delete tiles of 8 pages (tune with OptimalTileSize)
		BufferBytes: 8 << 10,
		PageSize:    1 << 10,
		FilePages:   32,
		DisableWAL:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Simulate three weeks of operation with a rolling 7-day retention.
	var totalDropped, totalFull, totalPartial int
	nextID := 0
	for d := 0; d < 21; d++ {
		// Ingest today's documents: sort key is the document id (what the
		// application reads by), delete key is the creation day.
		for i := 0; i < docsPerDay; i++ {
			payload := []byte(fmt.Sprintf(`{"day":%d,"seq":%d}`, d, i))
			if err := db.Put(docKey(nextID), day(d), payload); err != nil {
				log.Fatal(err)
			}
			nextID++
		}
		clock.Advance(24 * time.Hour)

		// Daily retention purge: drop everything older than 7 days. No
		// full-tree compaction — just page drops.
		if d >= retentionDays {
			cutoff := d - retentionDays + 1
			st, err := db.SecondaryRangeDelete(0, day(cutoff))
			if err != nil {
				log.Fatal(err)
			}
			totalDropped += st.EntriesDropped
			totalFull += st.FullPageDrops
			totalPartial += st.PartialPageDrops
			fmt.Printf("day %2d: purged %5d docs (full page drops: %3d, partial: %3d, fences skipped: %d pages)\n",
				d, st.EntriesDropped, st.FullPageDrops, st.PartialPageDrops, st.PagesUntouched)
		}
	}

	// Verify the retention invariant via a timestamp-indexed scan (also
	// served by the delete fences).
	live, err := db.SecondaryRangeScan(0, day(999))
	if err != nil {
		log.Fatal(err)
	}
	oldest := lethe.DeleteKey(1 << 62)
	for _, item := range live {
		if item.DKey < oldest {
			oldest = item.DKey
		}
	}
	fmt.Printf("\nafter 21 days: %d live docs, oldest day=%d (retention %d days)\n",
		len(live), oldest, retentionDays)
	fmt.Printf("purged %d docs total; %d pages dropped with zero I/O, %d edge pages rewritten\n",
		totalDropped, totalFull, totalPartial)
	engineStats := db.Stats()
	if engineStats.FullTreeCompactions != 0 {
		log.Fatal("a full-tree compaction happened — KiWi should have prevented this")
	}
	fmt.Println("full-tree compactions: 0 ✓")
}
