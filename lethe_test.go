package lethe

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"lethe/internal/vfs"
)

func TestPublicAPIBasics(t *testing.T) {
	db, err := Open(Options{InMemory: true, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := db.Put([]byte("k1"), 100, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("k1"))
	if err != nil || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("get: %q %v", v, err)
	}
	v, d, err := db.GetWithDeleteKey([]byte("k1"))
	if err != nil || d != 100 || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("get with dkey: %q %d %v", v, d, err)
	}
	if err := db.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestOpenRequiresLocation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without location must fail")
	}
}

func TestOpenOnDisk(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("persist"), 1, []byte("me")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Path: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	v, err := db2.Get([]byte("persist"))
	if err != nil || string(v) != "me" {
		t.Fatalf("reopened: %q %v", v, err)
	}
}

func TestDthImpliesLetheMode(t *testing.T) {
	clock := NewManualClock(time.Unix(1e6, 0))
	db, err := Open(Options{
		InMemory: true, Dth: time.Minute, Clock: clock, DisableWAL: true,
		BufferBytes: 1 << 12, PageSize: 256, FilePages: 4, SizeRatio: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.TTLs(); len(got) == 0 || got[len(got)-1] != time.Minute {
		t.Fatalf("Dth must configure TTLs: %v", got)
	}
}

func TestEndToEndScenario(t *testing.T) {
	// The DComp scenario: documents keyed by id, deleted by timestamp.
	clock := NewManualClock(time.Unix(1e6, 0))
	db, err := Open(Options{
		InMemory: true, Clock: clock, TilePages: 4, Dth: time.Hour,
		BufferBytes: 1 << 12, PageSize: 256, FilePages: 4, SizeRatio: 4,
		DisableWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	for day := 0; day < 10; day++ {
		for i := 0; i < 50; i++ {
			key := []byte(fmt.Sprintf("doc-%02d-%03d", day, i))
			if err := db.Put(key, DeleteKey(day), []byte("payload")); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Retention: drop days 0-4.
	st, err := db.SecondaryRangeDelete(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesDropped != 250 {
		t.Fatalf("dropped %d", st.EntriesDropped)
	}
	count := 0
	db.Scan(nil, nil, func(_ []byte, d DeleteKey, _ []byte) bool {
		if d < 5 {
			t.Fatalf("entry with d=%d survived", d)
		}
		count++
		return true
	})
	if count != 250 {
		t.Fatalf("survivors: %d", count)
	}
	// Secondary range scan finds the survivors by timestamp.
	items, err := db.SecondaryRangeScan(5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 100 {
		t.Fatalf("scan found %d items", len(items))
	}
}

func TestStatsExposed(t *testing.T) {
	db, _ := Open(Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 11, PageSize: 256, FilePages: 4})
	defer db.Close()
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), DeleteKey(i), bytes.Repeat([]byte{'x'}, 32))
	}
	st := db.Stats()
	if st.Flushes == 0 || st.TotalBytesWritten == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := db.SpaceAmp(); err != nil {
		t.Fatal(err)
	}
	if db.NumLevels() == 0 {
		t.Fatal("levels")
	}
	_ = db.TombstoneAges()
	_ = db.MaxTombstoneAge()
}

func TestCountingFSIntegration(t *testing.T) {
	counting := vfs.NewCounting(vfs.NewMem(), 256)
	db, err := Open(Options{Storage: StorageOptions{FS: counting}, DisableWAL: true,
		BufferBytes: 1 << 11, PageSize: 256, FilePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), 0, bytes.Repeat([]byte{'x'}, 32))
	}
	db.Flush()
	if counting.Stats.Snapshot().PagesWritten == 0 {
		t.Fatal("I/O accounting must see engine writes")
	}
}

func TestOptimalTileSize(t *testing.T) {
	// The paper's worked example (§4.3): 400GB / 4KB pages, 50M point
	// queries and 10K short ranges per SRD, FPR 0.02, L = log_10(400GB/4KB)
	// → h ≈ 102... ≈ 100.
	pages := 400e9 / 4096.0
	p := TuningParams{
		Entries:           pages * 1, // N/B expressed via one entry per page unit
		EntriesPerPage:    1,
		FalsePositiveRate: 0.02,
		Levels:            8,
	}
	w := WorkloadProfile{
		EmptyPointLookups:     25e6,
		PointLookups:          25e6,
		ShortRangeLookups:     1e4,
		SecondaryRangeDeletes: 1,
	}
	h := OptimalTileSize(p, w)
	if h < 80 || h > 120 {
		t.Fatalf("worked example: h = %d, want ≈100", h)
	}

	// No secondary deletes → classical layout.
	if OptimalTileSize(p, WorkloadProfile{PointLookups: 1}) != 1 {
		t.Fatal("h must be 1 without SRDs")
	}
	// Read-free workload → cap at page count.
	free := OptimalTileSize(TuningParams{Entries: 100, EntriesPerPage: 10},
		WorkloadProfile{SecondaryRangeDeletes: 1})
	if free != 10 {
		t.Fatalf("read-free h = %d", free)
	}
	// Heavier read pressure → smaller h.
	wHeavy := w
	wHeavy.ShortRangeLookups *= 100
	if OptimalTileSize(p, wHeavy) >= h {
		t.Fatal("more reads must shrink h")
	}
	// Degenerate inputs.
	if OptimalTileSize(TuningParams{}, w) != 1 {
		t.Fatal("empty params")
	}
}
