// Online shard split and merge: the layout-change half of the sharding
// design (see shard.go for the persistent layout and lethe.go for the
// routing table the operations swap).
//
// A split hands a frozen shard's sstables off at file granularity: the cut
// is chosen at an existing delete-tile boundary (or supplied by the caller),
// files that lie entirely on one side are renamed into the child's
// directory untouched, and only files straddling the cut are rewritten —
// one bounded clip per side. A merge is the inverse, folding two adjacent
// shards' trees into one directory; files whose range tombstones cross the
// old boundary, or whose numbers collide between the two donors (an
// sstable's footer number is its identity within an instance, so a merged
// tree cannot hold two files with one number), are re-clipped, everything
// else is renamed.
//
// Durability follows a write-ahead intent protocol. The RESHARD record
// (shard.go) is written before the first cross-directory effect and lists
// every planned rename plus the directories involved; the SHARDS manifest
// rename is the commit point. Order of operations:
//
//	freeze writes -> drain -> flush -> pause maintenance -> export handoff
//	-> write RESHARD intent -> clip straddlers into child dirs
//	-> commit child MANIFESTs (creates the child dirs) -> rename files
//	-> open children (maintenance held) -> commit SHARDS   <- commit point
//	-> swap routing table -> resume children -> retire donors
//	-> delete donor dirs -> delete intent
//
// A crash before the SHARDS commit rolls back at the next Open (renames
// reversed, child output deleted); a crash after rolls forward (donor
// leftovers deleted). Reads are served throughout — only writes to the
// shard being reshaped wait, and only for the duration of the protocol.
package lethe

import (
	"errors"
	"fmt"
	"sort"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/lsm"
	"lethe/internal/manifest"
	"lethe/internal/runtime"
	"lethe/internal/vfs"
)

// reshardController adapts the DB to the balancer's view of it: cheap
// pressure samples in, split/merge proposals out.
type reshardController struct {
	db *DB
}

func (c *reshardController) ShardPressures() []runtime.ShardPressure {
	// The cheap path: skip the space-amplification operands, which cost a
	// tree scan per shard — too much for a periodic tick.
	return c.db.shardPressures(false)
}

func (c *reshardController) Reshard(p runtime.ReshardProposal) error {
	switch p.Kind {
	case runtime.ReshardSplit:
		return c.db.SplitShard(p.Shard, nil)
	case runtime.ReshardMerge:
		return c.db.MergeShards(p.Shard)
	}
	return fmt.Errorf("lethe: unknown reshard proposal kind %d", p.Kind)
}

// shardPressures samples per-shard load in routing order.
func (db *DB) shardPressures(includeSpaceAmp bool) []runtime.ShardPressure {
	t := db.table.Load()
	out := make([]runtime.ShardPressure, len(t.shards))
	for i, h := range t.shards {
		s := h.db.Stats()
		p := runtime.ShardPressure{
			Shard:            i,
			ID:               h.id,
			WriteStalls:      s.WriteStalls,
			WriteStallTime:   s.WriteStallTime,
			MemtableBytes:    s.MemtableBytes,
			ImmutableBuffers: s.ImmutableBuffers,
			BytesOnDisk:      s.BytesOnDisk,
			SpaceAmpTotal:    -1,
			SpaceAmpUnique:   -1,
		}
		if includeSpaceAmp {
			if tb, u, err := h.db.SpaceAmpParts(); err == nil {
				p.SpaceAmpTotal, p.SpaceAmpUnique = tb, u
			}
		}
		out[i] = p
	}
	return out
}

// errSyncReshard is the rejection for resharding without a maintenance pool.
func errSyncReshard() error {
	return fmt.Errorf("%w: resharding requires background maintenance (synchronous mode keeps its layout)", ErrShardLayout)
}

// rewriteJob is one planned straddler clip: copy the live content of srcNum
// restricted to [lo, hi) into dstPrefix under a fresh file number.
type rewriteJob struct {
	src       *lsm.DB
	srcNum    uint64
	lo, hi    []byte
	dstPrefix string
	dstNum    uint64
	// written is false when nothing survived the clip (the slot is dropped
	// from the child manifest; the number is wasted, which manifests allow).
	written bool
}

// fileSlot is one position in an assembled child run: either a moved file
// (job nil, num unchanged) or a rewrite output (materialized only if the
// clip wrote anything).
type fileSlot struct {
	num    uint64
	remote bool
	job    *rewriteJob
}

// materializeLevels turns planned slots into manifest levels, dropping
// empty rewrite outputs, empty runs, and trailing empty levels, and
// collecting the remote-tier membership of the moved files (rewrite outputs
// are always written locally).
func materializeLevels(slots [][][]fileSlot) (levels [][][]uint64, remote []uint64) {
	levels = make([][][]uint64, len(slots))
	for l, runs := range slots {
		for _, run := range runs {
			var files []uint64
			for _, s := range run {
				if s.job != nil && !s.job.written {
					continue
				}
				files = append(files, s.num)
				if s.remote {
					remote = append(remote, s.num)
				}
			}
			if len(files) > 0 {
				levels[l] = append(levels[l], files)
			}
		}
	}
	for len(levels) > 0 && len(levels[len(levels)-1]) == 0 {
		levels = levels[:len(levels)-1]
	}
	return levels, remote
}

// reshardTxn tracks a reshard's applied effects so a failure before the
// SHARDS commit can undo exactly what happened. The on-disk RESHARD intent
// is the crash-safe twin of this struct; rollback here is the fast path for
// in-process failures.
type reshardTxn struct {
	db        *DB
	in        *reshardIntent
	performed []reshardMove
	children  []*lsm.DB
}

// runRewrites executes the straddler clips, returning the bytes written.
func (tx *reshardTxn) runRewrites(jobs []*rewriteJob) (int64, error) {
	var bytes int64
	for _, j := range jobs {
		n, written, err := j.src.RewriteClip(j.srcNum, j.lo, j.hi, tx.db.rootFS,
			j.dstPrefix+lsm.FileName(j.dstNum), j.dstNum)
		if err != nil {
			return bytes, fmt.Errorf("lethe: reshard rewrite of %s: %w", lsm.FileName(j.srcNum), err)
		}
		j.written = written
		bytes += n
	}
	return bytes, nil
}

// moveAll performs the planned renames, recording each success for rollback.
func (tx *reshardTxn) moveAll(moves []reshardMove) error {
	for _, mv := range moves {
		mfs := tx.db.rootFS
		if mv.Remote {
			mfs = tx.db.remoteFS
		}
		if err := mfs.Rename(mv.From, mv.To); err != nil {
			return fmt.Errorf("lethe: reshard move %s: %w", mv.From, err)
		}
		tx.performed = append(tx.performed, mv)
	}
	return nil
}

// open opens the shard-<id>/ child instance with maintenance held; the
// caller resumes it after the routing epoch commits, so a freshly installed
// shard cannot start compacting before it is reachable.
func (tx *reshardTxn) open(id int) (*lsm.DB, error) {
	c, err := tx.db.openShardInstance(id)
	if err != nil {
		return nil, fmt.Errorf("lethe: open shard %d: %w", id, err)
	}
	tx.children = append(tx.children, c)
	return c, nil
}

// rollback undoes every effect applied so far — children closed, renames
// reversed, child-directory output deleted — and removes the intent only if
// the cleanup fully succeeded (otherwise the next Open finishes it).
func (tx *reshardTxn) rollback(cause error) error {
	errs := []error{cause}
	clean := true
	for _, c := range tx.children {
		if err := c.Close(); err != nil && !errors.Is(err, ErrClosed) {
			errs = append(errs, err)
		}
	}
	for i := len(tx.performed) - 1; i >= 0; i-- {
		mv := tx.performed[i]
		mfs := tx.db.rootFS
		if mv.Remote {
			mfs = tx.db.remoteFS
		}
		if fileExists(mfs, mv.To) && !fileExists(mfs, mv.From) {
			if err := mfs.Rename(mv.To, mv.From); err != nil {
				errs = append(errs, err)
				clean = false
			}
		}
	}
	for _, dir := range tx.in.NewDirs {
		if err := removeEngineFiles(tx.db.rootFS, dir); err != nil {
			errs = append(errs, err)
			clean = false
		}
		if tx.db.remoteFS != nil {
			if err := removeEngineFiles(tx.db.remoteFS, dir); err != nil {
				errs = append(errs, err)
				clean = false
			}
		}
	}
	if clean {
		if err := tx.db.rootFS.Remove(reshardIntentName); err != nil && !errors.Is(err, vfs.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// openShardInstance opens the shard-<id>/ engine instance with maintenance
// held.
func (db *DB) openShardInstance(id int) (*lsm.DB, error) {
	prefix := shardDirPrefix(id)
	var rfs vfs.FS
	if db.remoteFS != nil {
		rfs = vfs.NewPrefix(db.remoteFS, prefix)
	}
	io := db.makeInner(vfs.NewPrefix(db.rootFS, prefix), rfs)
	io.HoldMaintenance = true
	return lsm.Open(io)
}

// retireDonors closes the handed-off instances, deletes their directories,
// and removes the intent record. It runs after the SHARDS commit, so a
// failure here leaves the intent in place and the next Open rolls the
// cleanup forward; the reshard itself has already succeeded.
func (db *DB) retireDonors(in *reshardIntent, donors ...*shardHandle) {
	clean := true
	for _, h := range donors {
		if err := h.db.Close(); err != nil && !errors.Is(err, ErrClosed) {
			clean = false
		}
	}
	for _, dir := range in.OldDirs {
		if err := removeEngineFiles(db.rootFS, dir); err != nil {
			clean = false
		}
		if db.remoteFS != nil {
			if err := removeEngineFiles(db.remoteFS, dir); err != nil {
				clean = false
			}
		}
	}
	if clean {
		if err := db.rootFS.Remove(reshardIntentName); err != nil && !errors.Is(err, vfs.ErrNotExist) {
			// Harmless: recovery re-runs an idempotent roll-forward.
			_ = err
		}
	}
}

// splitSides reports which sides of cut hold any of f's content — entries
// (by the [MinS, MaxS] bounds) or range tombstone spans. A file on exactly
// one side moves whole; a file on both is a straddler and is clipped.
func splitSides(f lsm.HandoffFile, cut []byte) (left, right bool) {
	if f.NumEntries > 0 {
		if base.CompareUserKeys(f.MinS, cut) < 0 {
			left = true
		}
		if base.CompareUserKeys(f.MaxS, cut) >= 0 {
			right = true
		}
	}
	for _, rt := range f.RangeTombstones {
		if base.CompareUserKeys(rt.Start, cut) < 0 {
			left = true
		}
		if rt.End == nil || base.CompareUserKeys(rt.End, cut) > 0 {
			right = true
		}
	}
	return left, right
}

// pickSplitCut chooses a split boundary at an existing delete-tile fence,
// byte-balancing the two sides, constrained strictly inside (lower, upper)
// and strictly above the shard's smallest live key — a cut at the minimum
// would put every entry in one child and hand the balancer back the exact
// hotspot it tried to break up. Nil when no tile key qualifies (the shard's
// keys are indistinguishable at tile granularity — nothing to split).
func pickSplitCut(ho lsm.Handoff, lower, upper []byte) []byte {
	var minKey []byte
	note := func(k []byte) {
		if k != nil && (minKey == nil || base.CompareUserKeys(k, minKey) < 0) {
			minKey = k
		}
	}
	for _, runs := range ho.Levels {
		for _, run := range runs {
			for _, f := range run {
				if f.NumEntries > 0 {
					note(f.MinS)
				}
				for _, rt := range f.RangeTombstones {
					note(rt.Start)
				}
			}
		}
	}
	inside := func(k []byte) bool {
		if len(k) == 0 {
			return false
		}
		if minKey == nil || base.CompareUserKeys(k, minKey) <= 0 {
			return false
		}
		if lower != nil && base.CompareUserKeys(k, lower) <= 0 {
			return false
		}
		if upper != nil && base.CompareUserKeys(k, upper) >= 0 {
			return false
		}
		return true
	}
	var bounds []compaction.Boundary
	var cand [][]byte
	for _, runs := range ho.Levels {
		for _, run := range runs {
			for _, f := range run {
				for _, ts := range f.Tiles {
					bounds = append(bounds, compaction.Boundary{Key: ts.MinS, Bytes: ts.Bytes})
					if inside(ts.MinS) {
						cand = append(cand, ts.MinS)
					}
				}
			}
		}
	}
	if len(cand) == 0 {
		return nil
	}
	for _, c := range compaction.PartitionKeys(bounds, 2) {
		if inside(c) {
			return append([]byte(nil), c...)
		}
	}
	// The byte-balanced cut fell on or outside the shard's own bounds (skew
	// piles the bytes at one end); fall back to the median qualifying tile
	// key.
	sort.Slice(cand, func(i, j int) bool { return base.CompareUserKeys(cand[i], cand[j]) < 0 })
	return append([]byte(nil), cand[len(cand)/2]...)
}

// SplitShard splits the shard at routing position shard into two at
// boundary, or — when boundary is nil — at a delete-tile fence chosen to
// byte-balance the halves. The split is an sstable-level handoff: files
// entirely on one side of the cut move between directories by rename, and
// only straddling files are rewritten (clipped once per side). New writes
// route to the children the moment the layout commits; writes to the shard
// being split wait (they are admitted by the next routing epoch), reads and
// writes to other shards proceed throughout, and in-flight iterators and
// snapshots finish on the epoch they pinned.
//
// Splitting a database opened without Shards converts it online from a
// single root-directory instance into a two-shard layout. Rejected with
// ErrShardLayout in synchronous mode (no maintenance pool), for an
// out-of-range shard, for a boundary outside the shard's key range, and
// when no tile boundary exists to cut at.
func (db *DB) SplitShard(shard int, boundary []byte) error {
	if db.rt == nil {
		return errSyncReshard()
	}
	db.reshardMu.Lock()
	defer db.reshardMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	t := db.table.Load()
	if shard < 0 || shard >= len(t.shards) {
		return fmt.Errorf("%w: split shard %d of %d", ErrShardLayout, shard, len(t.shards))
	}
	if len(t.shards)+1 > maxShards {
		return fmt.Errorf("%w: split would exceed the maximum %d shards", ErrShardLayout, maxShards)
	}
	var lower, upper []byte
	if shard > 0 {
		lower = t.boundaries[shard-1]
	}
	if shard < len(t.boundaries) {
		upper = t.boundaries[shard]
	}
	if boundary != nil {
		if len(boundary) == 0 ||
			(lower != nil && base.CompareUserKeys(boundary, lower) <= 0) ||
			(upper != nil && base.CompareUserKeys(boundary, upper) >= 0) {
			return fmt.Errorf("%w: split boundary %q outside shard %d's key range", ErrShardLayout, boundary, shard)
		}
		boundary = append([]byte(nil), boundary...)
	}
	h := t.shards[shard]

	// Freeze: new writes to this shard wait for the next epoch; admitted
	// ones drain. Reads are untouched.
	h.setState(shardFrozen)
	h.waitWriters()
	unfreeze := func(err error) error {
		h.setState(shardActive)
		return err
	}
	if err := h.db.Flush(); err != nil {
		return unfreeze(fmt.Errorf("lethe: split flush: %w", err))
	}
	h.db.PauseMaintenance()
	unpause := func(err error) error {
		h.db.ResumeMaintenance()
		return unfreeze(err)
	}
	ho, err := h.db.ExportHandoff()
	if err != nil {
		return unpause(fmt.Errorf("lethe: split handoff: %w", err))
	}
	cut := boundary
	if cut == nil {
		if cut = pickSplitCut(ho, lower, upper); cut == nil {
			return unpause(fmt.Errorf("%w: shard %d has no tile boundary strictly inside its key range to split at", ErrShardLayout, shard))
		}
	}

	// Build the successor layout. Splitting the rooted single instance
	// allocates the very first persistent IDs; otherwise the children take
	// fresh IDs spliced in at the donor's position.
	old := db.layout
	var nl *shardLayout
	var leftID, rightID int
	if old == nil {
		leftID, rightID = 0, 1
		nl = &shardLayout{epoch: 1, nextShardID: 2, ids: []int{0, 1}, boundaries: [][]byte{cut}}
	} else {
		leftID, rightID = old.nextShardID, old.nextShardID+1
		ids := make([]int, 0, len(old.ids)+1)
		ids = append(ids, old.ids[:shard]...)
		ids = append(ids, leftID, rightID)
		ids = append(ids, old.ids[shard+1:]...)
		bs := make([][]byte, 0, len(old.boundaries)+1)
		bs = append(bs, old.boundaries[:shard]...)
		bs = append(bs, cut)
		bs = append(bs, old.boundaries[shard:]...)
		nl = &shardLayout{epoch: old.epoch + 1, nextShardID: old.nextShardID + 2, ids: ids, boundaries: bs}
	}
	leftPrefix, rightPrefix := shardDirPrefix(leftID), shardDirPrefix(rightID)

	// Classify every file against the cut and plan the handoff. Within a
	// run files are disjoint and S-ordered, so at most one file per run
	// straddles; substituting its clips in place preserves run order.
	next := ho.NextFileNum
	var moves []reshardMove
	var jobs []*rewriteJob
	straddlers := 0
	leftSlots := make([][][]fileSlot, len(ho.Levels))
	rightSlots := make([][][]fileSlot, len(ho.Levels))
	for l, runs := range ho.Levels {
		for _, run := range runs {
			var lrun, rrun []fileSlot
			for _, f := range run {
				goLeft, goRight := splitSides(f, cut)
				switch {
				case goLeft && goRight:
					straddlers++
					lj := &rewriteJob{src: h.db, srcNum: f.Num, hi: cut, dstPrefix: leftPrefix, dstNum: next}
					next++
					rj := &rewriteJob{src: h.db, srcNum: f.Num, lo: cut, dstPrefix: rightPrefix, dstNum: next}
					next++
					jobs = append(jobs, lj, rj)
					lrun = append(lrun, fileSlot{num: lj.dstNum, job: lj})
					rrun = append(rrun, fileSlot{num: rj.dstNum, job: rj})
					// The straddling source stays behind and is deleted with
					// the donor directory after commit.
				case goLeft:
					moves = append(moves, reshardMove{
						From: h.prefix + lsm.FileName(f.Num), To: leftPrefix + lsm.FileName(f.Num), Remote: f.Remote})
					lrun = append(lrun, fileSlot{num: f.Num, remote: f.Remote})
				case goRight:
					moves = append(moves, reshardMove{
						From: h.prefix + lsm.FileName(f.Num), To: rightPrefix + lsm.FileName(f.Num), Remote: f.Remote})
					rrun = append(rrun, fileSlot{num: f.Num, remote: f.Remote})
				default:
					// No live content on either side; dies with the donor.
				}
			}
			if len(lrun) > 0 {
				leftSlots[l] = append(leftSlots[l], lrun)
			}
			if len(rrun) > 0 {
				rightSlots[l] = append(rightSlots[l], rrun)
			}
		}
	}

	in := &reshardIntent{
		Version:  1,
		Kind:     "split",
		NewEpoch: nl.epoch,
		Moves:    moves,
		NewDirs:  []string{leftPrefix, rightPrefix},
		OldDirs:  []string{h.prefix},
	}
	if err := saveReshardIntent(db.rootFS, in); err != nil {
		return unpause(fmt.Errorf("lethe: split intent: %w", err))
	}
	tx := &reshardTxn{db: db, in: in}

	rewriteBytes, err := tx.runRewrites(jobs)
	if err != nil {
		return unpause(tx.rollback(err))
	}
	// Children inherit the donor's sequence frontier, so handed-off entries
	// stay below every post-split write, and share one file-number space so
	// a later merge mostly avoids renumbering. Committing the child
	// MANIFESTs before the renames also creates the child directories —
	// renames do not.
	leftLv, leftRemote := materializeLevels(leftSlots)
	rightLv, rightRemote := materializeLevels(rightSlots)
	if err := manifest.NewStore(vfs.NewPrefix(db.rootFS, leftPrefix), "MANIFEST").Commit(&manifest.State{
		NextFileNum: next, LastSeq: ho.LastSeq, Levels: leftLv, Remote: leftRemote,
	}); err != nil {
		return unpause(tx.rollback(fmt.Errorf("lethe: split left manifest: %w", err)))
	}
	if err := manifest.NewStore(vfs.NewPrefix(db.rootFS, rightPrefix), "MANIFEST").Commit(&manifest.State{
		NextFileNum: next, LastSeq: ho.LastSeq, Levels: rightLv, Remote: rightRemote,
	}); err != nil {
		return unpause(tx.rollback(fmt.Errorf("lethe: split right manifest: %w", err)))
	}
	if err := tx.moveAll(moves); err != nil {
		return unpause(tx.rollback(err))
	}
	leftDB, err := tx.open(leftID)
	if err != nil {
		return unpause(tx.rollback(err))
	}
	rightDB, err := tx.open(rightID)
	if err != nil {
		return unpause(tx.rollback(err))
	}
	if err := saveShardManifest(db.rootFS, nl); err != nil {
		return unpause(tx.rollback(fmt.Errorf("lethe: split commit: %w", err)))
	}

	// Committed. Swap the routing table; everything after this is cleanup
	// that crash recovery can redo.
	leftH := &shardHandle{id: leftID, prefix: leftPrefix, db: leftDB}
	rightH := &shardHandle{id: rightID, prefix: rightPrefix, db: rightDB}
	shards := make([]*shardHandle, 0, len(t.shards)+1)
	shards = append(shards, t.shards[:shard]...)
	shards = append(shards, leftH, rightH)
	shards = append(shards, t.shards[shard+1:]...)
	db.layout = nl
	db.table.Store(&routingTable{epoch: nl.epoch, boundaries: nl.boundaries, shards: shards})

	leftDB.ResumeMaintenance()
	rightDB.ResumeMaintenance()
	h.setState(shardRetired)

	db.reshardStats.splits.Add(1)
	db.reshardStats.filesHandedOff.Add(int64(len(moves)))
	db.reshardStats.straddlerRewrites.Add(int64(straddlers))
	db.reshardStats.straddlerRewriteBytes.Add(rewriteBytes)
	db.reshardStats.manifestOps.Add(3)

	db.retireDonors(in, h)
	return nil
}

// MergeShards merges the shards at routing positions shard and shard+1 into
// one, removing the boundary between them. Both donors' files move into the
// merged directory by rename; a file is rewritten only when a range
// tombstone crosses the old boundary (the two shards number sequences
// independently, so an unclipped tombstone could outrank the other side's
// newer entries) or when its file number collides with one kept by the
// other donor. The donors' runs stay separate runs of the merged tree —
// they are key-disjoint, so ordinary compaction folds them together later.
//
// Rejected with ErrShardLayout in synchronous mode and for an out-of-range
// position. The same availability contract as SplitShard applies: only
// writes to the two shards being merged wait for the new epoch.
func (db *DB) MergeShards(shard int) error {
	if db.rt == nil {
		return errSyncReshard()
	}
	db.reshardMu.Lock()
	defer db.reshardMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	t := db.table.Load()
	if shard < 0 || shard+1 >= len(t.shards) {
		return fmt.Errorf("%w: merge shards %d+%d of %d", ErrShardLayout, shard, shard+1, len(t.shards))
	}
	old := db.layout // non-nil: two routable shards imply a layout
	L, R := t.shards[shard], t.shards[shard+1]
	m := t.boundaries[shard]

	L.setState(shardFrozen)
	R.setState(shardFrozen)
	L.waitWriters()
	R.waitWriters()
	unfreeze := func(err error) error {
		L.setState(shardActive)
		R.setState(shardActive)
		return err
	}
	if err := L.db.Flush(); err != nil {
		return unfreeze(fmt.Errorf("lethe: merge flush: %w", err))
	}
	if err := R.db.Flush(); err != nil {
		return unfreeze(fmt.Errorf("lethe: merge flush: %w", err))
	}
	L.db.PauseMaintenance()
	R.db.PauseMaintenance()
	unpause := func(err error) error {
		L.db.ResumeMaintenance()
		R.db.ResumeMaintenance()
		return unfreeze(err)
	}
	hoL, err := L.db.ExportHandoff()
	if err != nil {
		return unpause(fmt.Errorf("lethe: merge handoff: %w", err))
	}
	hoR, err := R.db.ExportHandoff()
	if err != nil {
		return unpause(fmt.Errorf("lethe: merge handoff: %w", err))
	}

	newID := old.nextShardID
	newPrefix := shardDirPrefix(newID)
	ids := make([]int, 0, len(old.ids)-1)
	ids = append(ids, old.ids[:shard]...)
	ids = append(ids, newID)
	ids = append(ids, old.ids[shard+2:]...)
	bs := make([][]byte, 0, len(old.boundaries)-1)
	bs = append(bs, old.boundaries[:shard]...)
	bs = append(bs, old.boundaries[shard+1:]...)
	nl := &shardLayout{epoch: old.epoch + 1, nextShardID: old.nextShardID + 1, ids: ids, boundaries: bs}

	next := hoL.NextFileNum
	if hoR.NextFileNum > next {
		next = hoR.NextFileNum
	}
	lastSeq := hoL.LastSeq
	if hoR.LastSeq > lastSeq {
		lastSeq = hoR.LastSeq
	}

	nLevels := len(hoL.Levels)
	if len(hoR.Levels) > nLevels {
		nLevels = len(hoR.Levels)
	}
	slots := make([][][]fileSlot, nLevels)
	var moves []reshardMove
	var jobs []*rewriteJob
	rewrites := 0
	leftNums := map[uint64]bool{}
	// addSide plans one donor's files: [lo, hi) is the donor's own key range
	// relative to the merge boundary, so the clip both detects and repairs
	// boundary-crossing tombstones. collide is the set of numbers the other
	// (already planned) side kept.
	addSide := func(ho lsm.Handoff, donor *shardHandle, lo, hi []byte, collide, keep map[uint64]bool) {
		for l, runs := range ho.Levels {
			for _, run := range runs {
				var srun []fileSlot
				for _, f := range run {
					needsClip := false
					for _, rt := range f.RangeTombstones {
						if lo != nil && base.CompareUserKeys(rt.Start, lo) < 0 {
							needsClip = true
						}
						if hi != nil && (rt.End == nil || base.CompareUserKeys(rt.End, hi) > 0) {
							needsClip = true
						}
					}
					if needsClip || (collide != nil && collide[f.Num]) {
						rewrites++
						j := &rewriteJob{src: donor.db, srcNum: f.Num, lo: lo, hi: hi, dstPrefix: newPrefix, dstNum: next}
						next++
						jobs = append(jobs, j)
						srun = append(srun, fileSlot{num: j.dstNum, job: j})
					} else {
						moves = append(moves, reshardMove{
							From: donor.prefix + lsm.FileName(f.Num), To: newPrefix + lsm.FileName(f.Num), Remote: f.Remote})
						srun = append(srun, fileSlot{num: f.Num, remote: f.Remote})
						if keep != nil {
							keep[f.Num] = true
						}
					}
				}
				if len(srun) > 0 {
					slots[l] = append(slots[l], srun)
				}
			}
		}
	}
	addSide(hoL, L, nil, m, nil, leftNums)
	addSide(hoR, R, m, nil, leftNums, nil)

	in := &reshardIntent{
		Version:  1,
		Kind:     "merge",
		NewEpoch: nl.epoch,
		Moves:    moves,
		NewDirs:  []string{newPrefix},
		OldDirs:  []string{L.prefix, R.prefix},
	}
	if err := saveReshardIntent(db.rootFS, in); err != nil {
		return unpause(fmt.Errorf("lethe: merge intent: %w", err))
	}
	tx := &reshardTxn{db: db, in: in}

	rewriteBytes, err := tx.runRewrites(jobs)
	if err != nil {
		return unpause(tx.rollback(err))
	}
	lv, remote := materializeLevels(slots)
	if err := manifest.NewStore(vfs.NewPrefix(db.rootFS, newPrefix), "MANIFEST").Commit(&manifest.State{
		NextFileNum: next, LastSeq: lastSeq, Levels: lv, Remote: remote,
	}); err != nil {
		return unpause(tx.rollback(fmt.Errorf("lethe: merge manifest: %w", err)))
	}
	if err := tx.moveAll(moves); err != nil {
		return unpause(tx.rollback(err))
	}
	merged, err := tx.open(newID)
	if err != nil {
		return unpause(tx.rollback(err))
	}
	if err := saveShardManifest(db.rootFS, nl); err != nil {
		return unpause(tx.rollback(fmt.Errorf("lethe: merge commit: %w", err)))
	}

	nh := &shardHandle{id: newID, prefix: newPrefix, db: merged}
	shards := make([]*shardHandle, 0, len(t.shards)-1)
	shards = append(shards, t.shards[:shard]...)
	shards = append(shards, nh)
	shards = append(shards, t.shards[shard+2:]...)
	db.layout = nl
	db.table.Store(&routingTable{epoch: nl.epoch, boundaries: nl.boundaries, shards: shards})

	merged.ResumeMaintenance()
	L.setState(shardRetired)
	R.setState(shardRetired)

	db.reshardStats.merges.Add(1)
	db.reshardStats.filesHandedOff.Add(int64(len(moves)))
	db.reshardStats.straddlerRewrites.Add(int64(rewrites))
	db.reshardStats.straddlerRewriteBytes.Add(rewriteBytes)
	db.reshardStats.manifestOps.Add(2)

	db.retireDonors(in, L, R)
	return nil
}
