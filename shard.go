// Range sharding: a sharded DB is a router over independent LSM instances,
// each with its own memory buffer, WAL directory, manifest, version set, and
// flush/compaction/commit pipeline. The sort-key space is partitioned by
// boundary keys: shard i holds every key in [boundary[i-1], boundary[i]) (the
// first and last ranges are unbounded below and above). Point operations
// route to exactly one shard, so under concurrency the shards' write
// pipelines and maintenance workers proceed independently; range scans merge
// the per-shard streams lazily (iterator.go); secondary range deletes and
// scans fan out to every shard, because the delete key D is not part of the
// partitioning key.
//
// The layout is a first-class, versioned, mutable object. Each layout carries
// an epoch; the in-memory router (lethe.go's routingTable) is swapped
// atomically when the layout changes, and in-flight iterators and snapshots
// finish on the epoch they started on, exactly as readers finish on a pinned
// LSM version. On disk the layout lives in the SHARDS manifest at the
// filesystem root, replaced via temp+rename; shard directories are named by
// persistent shard IDs (shard-<id>/), never reused across epochs, so an old
// and a new layout never collide on disk. A split or merge (reshard.go)
// writes a RESHARD intent record before moving any file and deletes it after
// the new SHARDS manifest commits; recoverReshard below rolls an interrupted
// reshard forward or back at Open, so a crash anywhere in the protocol
// reopens as exactly the old or exactly the new epoch.
//
// The initial boundaries come from Options.ShardBoundaries (or
// DefaultShardBoundaries); afterwards the layout evolves online via
// DB.SplitShard/DB.MergeShards, the `lethe reshard` subcommand, or the
// automatic balancer (Options.AutoReshard). Reopening with a conflicting
// explicit Options.Shards count is still an error — the manifest, not the
// options, owns the layout.
package lethe

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"lethe/internal/base"
	"lethe/internal/lsm"
	"lethe/internal/vfs"
)

// shardManifestName is the file at the root of a sharded database recording
// its partitioning. Single-shard databases created with Shards <= 1 never
// create it, so their on-disk layout is unchanged from the unsharded engine;
// a database merged down to one shard keeps it (the data lives in a shard
// directory, not at the root).
const shardManifestName = "SHARDS"

// reshardIntentName is the write-ahead record for an in-flight shard split
// or merge (see reshard.go and recoverReshard).
const reshardIntentName = "RESHARD"

// maxShards bounds the shard count: beyond a few dozen shards per process
// the per-shard buffers and worker goroutines cost more than the parallelism
// returns (see the guidance in tuning.go).
const maxShards = 256

// shardManifestVersion is the current SHARDS encoding. Version 1 (PR 8)
// recorded only boundaries; version 2 adds the layout epoch and persistent
// shard IDs. Version-1 files are still readable: they decode as epoch 1 with
// IDs equal to routing positions, which matches how their directories were
// named.
const shardManifestVersion = 2

// shardManifest is the persisted form of the partitioning. Keys are
// JSON-encoded (base64 for the raw bytes), matching the engine manifest's
// encoding choice.
type shardManifest struct {
	Version int
	// Epoch increments on every layout change; readers of the routing table
	// observe it via DB.ShardEpoch.
	Epoch uint64 `json:",omitempty"`
	// ShardIDs[i] is the persistent identity of the shard at routing
	// position i; its directory is shard-<id>/. NextShardID is the lowest
	// never-allocated ID.
	ShardIDs    []int `json:",omitempty"`
	NextShardID int   `json:",omitempty"`
	Boundaries  [][]byte
}

// shardLayout is the decoded, validated layout: len(ids) == len(boundaries)+1
// shards in routing order.
type shardLayout struct {
	epoch       uint64
	nextShardID int
	ids         []int
	boundaries  [][]byte
}

func (l *shardLayout) manifest() *shardManifest {
	return &shardManifest{
		Version:     shardManifestVersion,
		Epoch:       l.epoch,
		ShardIDs:    l.ids,
		NextShardID: l.nextShardID,
		Boundaries:  l.boundaries,
	}
}

// loadShardManifest reads and validates the SHARDS file; the boolean reports
// whether one existed. Every structural defect — unknown version, unsorted,
// duplicate or empty boundary keys, ID/boundary arity mismatch, out-of-range
// or duplicate IDs — is rejected with ErrShardLayout rather than installed
// as a nonsense routing table.
func loadShardManifest(fs vfs.FS) (*shardLayout, bool, error) {
	f, err := fs.Open(shardManifestName)
	if errors.Is(err, vfs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("lethe: open shard manifest: %w", err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, false, fmt.Errorf("lethe: shard manifest size: %w", err)
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, false, fmt.Errorf("lethe: read shard manifest: %w", err)
		}
	}
	var m shardManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false, fmt.Errorf("lethe: decode shard manifest: %w", err)
	}
	if err := validateBoundaries(m.Boundaries); err != nil {
		return nil, false, fmt.Errorf("%w (shard manifest): %w", ErrShardLayout, err)
	}
	if len(m.Boundaries)+1 > maxShards {
		return nil, false, fmt.Errorf("%w (shard manifest): %d shards exceeds the maximum %d",
			ErrShardLayout, len(m.Boundaries)+1, maxShards)
	}
	l := &shardLayout{boundaries: m.Boundaries}
	switch m.Version {
	case 1:
		// Version 1 predates epochs and persistent IDs: directories were
		// named by routing position, so position == identity.
		n := len(m.Boundaries) + 1
		l.epoch = 1
		l.nextShardID = n
		l.ids = make([]int, n)
		for i := range l.ids {
			l.ids[i] = i
		}
	case 2:
		if len(m.ShardIDs) != len(m.Boundaries)+1 {
			return nil, false, fmt.Errorf("%w (shard manifest): %d shard IDs for %d boundaries",
				ErrShardLayout, len(m.ShardIDs), len(m.Boundaries))
		}
		if m.Epoch == 0 {
			return nil, false, fmt.Errorf("%w (shard manifest): epoch 0", ErrShardLayout)
		}
		seen := make(map[int]bool, len(m.ShardIDs))
		for _, id := range m.ShardIDs {
			if id < 0 || id >= m.NextShardID {
				return nil, false, fmt.Errorf("%w (shard manifest): shard ID %d outside [0, %d)",
					ErrShardLayout, id, m.NextShardID)
			}
			if seen[id] {
				return nil, false, fmt.Errorf("%w (shard manifest): duplicate shard ID %d", ErrShardLayout, id)
			}
			seen[id] = true
		}
		l.epoch = m.Epoch
		l.nextShardID = m.NextShardID
		l.ids = m.ShardIDs
	default:
		return nil, false, fmt.Errorf("%w (shard manifest): unknown version %d", ErrShardLayout, m.Version)
	}
	return l, true, nil
}

// saveShardManifest writes the SHARDS file via temp + rename, the same
// atomic-replace pattern the engine manifest uses. This is the commit point
// of a reshard: a crash strictly before the rename reopens on the old
// layout, strictly after on the new one.
func saveShardManifest(fs vfs.FS, l *shardLayout) error {
	data, err := json.Marshal(l.manifest())
	if err != nil {
		return fmt.Errorf("lethe: encode shard manifest: %w", err)
	}
	tmp := shardManifestName + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("lethe: create shard manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("lethe: write shard manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lethe: sync shard manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lethe: close shard manifest: %w", err)
	}
	if err := fs.Rename(tmp, shardManifestName); err != nil {
		return fmt.Errorf("lethe: install shard manifest: %w", err)
	}
	return nil
}

// validateBoundaries checks that boundary keys are non-empty and strictly
// increasing — the invariant shard routing depends on.
func validateBoundaries(boundaries [][]byte) error {
	for i, b := range boundaries {
		if len(b) == 0 {
			return fmt.Errorf("shard boundary %d is empty", i)
		}
		if i > 0 && bytes.Compare(boundaries[i-1], b) >= 0 {
			return fmt.Errorf("shard boundaries not strictly increasing at %d", i)
		}
	}
	return nil
}

// DefaultShardBoundaries splits the key space into n ranges of equal width
// over the first two key bytes — the right default for keys whose leading
// bytes are uniformly distributed (hashed or random prefixes). Keys
// clustered under a common prefix (e.g. all starting with "user-") land in
// one shard under this split; pass Options.ShardBoundaries matched to the
// real key distribution instead (see the sharding guidance in tuning.go), or
// let the balancer split the hot shard at a tile boundary once traffic
// reveals the distribution.
func DefaultShardBoundaries(n int) [][]byte {
	if n <= 1 {
		return nil
	}
	bounds := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		v := (i << 16) / n // boundary in the 16-bit prefix space
		bounds = append(bounds, []byte{byte(v >> 8), byte(v)})
	}
	return bounds
}

// shardIndex returns the shard owning key: the number of boundaries at or
// below it.
func shardIndex(boundaries [][]byte, key []byte) int {
	return sort.Search(len(boundaries), func(i int) bool {
		return base.CompareUserKeys(key, boundaries[i]) < 0
	})
}

// shardRange returns the inclusive index range of shards overlapping
// [start, end) (nil = unbounded). Both bounds set with start >= end is the
// caller's degenerate case; this still returns lo <= hi so fan-out loops
// touch at most one shard.
func shardRange(boundaries [][]byte, start, end []byte) (lo, hi int) {
	lo, hi = 0, len(boundaries)
	if start != nil {
		lo = shardIndex(boundaries, start)
	}
	if end != nil {
		hi = shardIndex(boundaries, end)
		// end is exclusive: when it sits exactly on a boundary the shard
		// above it contains no qualifying keys.
		if hi > 0 && base.CompareUserKeys(end, boundaries[hi-1]) == 0 {
			hi--
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// aggregateStats folds per-shard engine stats into one engine-wide view:
// counters and populations sum, per-level stats sum level-wise (levels align
// across shards since every shard runs the same geometry), and peak gauges
// take the maximum. LastPublishedSeq sums the per-shard frontiers — shards
// number their sequences independently, so only the total is meaningful
// engine-wide; use DB.ShardStats for the exact per-shard frontiers.
func aggregateStats(per []lsm.Stats) lsm.Stats {
	var agg lsm.Stats
	for _, s := range per {
		for len(agg.Levels) < len(s.Levels) {
			agg.Levels = append(agg.Levels, lsm.LevelStats{})
		}
		for i, l := range s.Levels {
			agg.Levels[i].Runs += l.Runs
			agg.Levels[i].Files += l.Files
			agg.Levels[i].LiveBytes += l.LiveBytes
			agg.Levels[i].BytesOnDisk += l.BytesOnDisk
			agg.Levels[i].Entries += l.Entries
			agg.Levels[i].PointTombstones += l.PointTombstones
			agg.Levels[i].RangeTombstones += l.RangeTombstones
		}
		agg.TreeEntries += s.TreeEntries
		agg.BufferEntries += s.BufferEntries
		agg.LivePointTombstones += s.LivePointTombstones
		agg.BytesOnDisk += s.BytesOnDisk
		agg.Compactions += s.Compactions
		agg.CompactionsTTL += s.CompactionsTTL
		agg.CompactionsSaturation += s.CompactionsSaturation
		agg.FullTreeCompactions += s.FullTreeCompactions
		agg.TrivialMoves += s.TrivialMoves
		agg.Flushes += s.Flushes
		if s.MaxCompactionBytes > agg.MaxCompactionBytes {
			agg.MaxCompactionBytes = s.MaxCompactionBytes
		}
		agg.BytesFlushed += s.BytesFlushed
		agg.CompactionBytesRead += s.CompactionBytesRead
		agg.CompactionBytesWritten += s.CompactionBytesWritten
		agg.TotalBytesWritten += s.TotalBytesWritten
		agg.UserBytesWritten += s.UserBytesWritten
		agg.EntriesDroppedObsolete += s.EntriesDroppedObsolete
		agg.TombstonesDropped += s.TombstonesDropped
		agg.RangeCovered += s.RangeCovered
		agg.BlindDeletesSuppressed += s.BlindDeletesSuppressed
		agg.FullPageDrops += s.FullPageDrops
		agg.PartialPageDrops += s.PartialPageDrops
		agg.SRDEntriesDropped += s.SRDEntriesDropped
		agg.ImmutableBuffers += s.ImmutableBuffers
		agg.MemtableBytes += s.MemtableBytes
		agg.WriteStalls += s.WriteStalls
		agg.WriteStallTime += s.WriteStallTime
		agg.BackgroundFlushes += s.BackgroundFlushes
		agg.BackgroundCompactions += s.BackgroundCompactions
		agg.Subcompactions += s.Subcompactions
		if s.MaxMergeWidth > agg.MaxMergeWidth {
			agg.MaxMergeWidth = s.MaxMergeWidth
		}
		agg.CompactionTime += s.CompactionTime
		agg.CommitGroups += s.CommitGroups
		agg.CommitBatches += s.CommitBatches
		agg.CommitEntries += s.CommitEntries
		if s.MaxCommitGroupBatches > agg.MaxCommitGroupBatches {
			agg.MaxCommitGroupBatches = s.MaxCommitGroupBatches
		}
		agg.CommitQueueDepth += s.CommitQueueDepth
		agg.WALSyncs += s.WALSyncs
		agg.LastPublishedSeq += s.LastPublishedSeq
		// Tier populations and traffic are per-shard (each instance wraps
		// its own prefixed slice of the remote filesystem), so they sum.
		agg.Tier.LocalFiles += s.Tier.LocalFiles
		agg.Tier.LocalBytes += s.Tier.LocalBytes
		agg.Tier.RemoteFiles += s.Tier.RemoteFiles
		agg.Tier.RemoteBytes += s.Tier.RemoteBytes
		agg.Tier.Migrations += s.Tier.Migrations
		agg.Tier.MigratedBytes += s.Tier.MigratedBytes
		agg.Tier.MigrationTime += s.Tier.MigrationTime
		agg.Tier.RemoteReadOps += s.Tier.RemoteReadOps
		agg.Tier.RemoteBytesRead += s.Tier.RemoteBytesRead
		agg.Tier.RemoteWriteOps += s.Tier.RemoteWriteOps
		agg.Tier.RemoteBytesWritten += s.Tier.RemoteBytesWritten
		// The page cache is shared: every shard reports the same cache, so
		// the aggregate takes the maximum rather than summing — summing
		// would claim Shards x the real budget.
		if s.CacheCapacity > agg.CacheCapacity {
			agg.CacheCapacity = s.CacheCapacity
		}
		if s.CacheUsed > agg.CacheUsed {
			agg.CacheUsed = s.CacheUsed
		}
		if s.CacheHits > agg.CacheHits {
			agg.CacheHits = s.CacheHits
		}
		if s.CacheMisses > agg.CacheMisses {
			agg.CacheMisses = s.CacheMisses
		}
	}
	// Derived rates are recomputed from the summed operands: averaging
	// per-shard ratios would weight idle shards incorrectly. Shard merge
	// windows can overlap in wall time, so these are per-merge-second
	// bandwidths, not host-level aggregates.
	if secs := agg.CompactionTime.Seconds(); secs > 0 {
		agg.CompactionThroughputMBps = float64(agg.CompactionBytesRead+agg.CompactionBytesWritten) / (1 << 20) / secs
	}
	if secs := agg.Tier.MigrationTime.Seconds(); secs > 0 {
		agg.Tier.MigrationMBps = float64(agg.Tier.MigratedBytes) / (1 << 20) / secs
	}
	return agg
}

// resolveShardLayout decides the partitioning at Open time: after rolling an
// interrupted reshard forward or back, an existing shard manifest wins (the
// database reopens exactly as it was written, even if Options now asks for
// synchronous mode); otherwise the requested count and boundaries apply,
// with sharding forced off under a manual clock or
// DisableBackgroundMaintenance so the paper harness's deterministic
// single-instance execution is preserved bit-for-bit. A nil layout means the
// database is (and stays) a single instance rooted at the filesystem root.
func resolveShardLayout(fs, remoteFS vfs.FS, opts Options) (*shardLayout, error) {
	if err := recoverReshard(fs, remoteFS); err != nil {
		return nil, err
	}
	l, ok, err := loadShardManifest(fs)
	if err != nil {
		return nil, err
	}
	if ok {
		if opts.Shards > 1 && opts.Shards != len(l.ids) {
			return nil, fmt.Errorf(
				"%w: database has %d shards, Options.Shards asks for %d (the manifest owns the layout; use online resharding via SplitShard/MergeShards)",
				ErrShardLayout, len(l.ids), opts.Shards)
		}
		return l, nil
	}
	n := opts.Shards
	if n <= 1 {
		return nil, nil
	}
	if n > maxShards {
		return nil, fmt.Errorf("%w: Options.Shards %d exceeds the maximum %d", ErrShardLayout, n, maxShards)
	}
	_, manual := opts.Clock.(*base.ManualClock)
	if manual || opts.DisableBackgroundMaintenance {
		// Synchronous mode is the deterministic single-instance execution
		// model; a router over n pipelines has nothing to pipeline there.
		return nil, nil
	}
	// A single-instance database never writes a SHARDS manifest, so "no
	// manifest" alone cannot distinguish a fresh filesystem from an
	// existing unsharded one — and opening the latter sharded would shadow
	// all of its root-level data behind empty shard directories. Refuse;
	// open it unsharded and use SplitShard to shard it online.
	if exists, err := unshardedEngineExists(fs); err != nil {
		return nil, err
	} else if exists {
		return nil, fmt.Errorf(
			"%w: filesystem holds an unsharded database; Options.Shards > 1 would shadow it (open unsharded and use online resharding via SplitShard)",
			ErrShardLayout)
	}
	boundaries := opts.ShardBoundaries
	if boundaries == nil {
		boundaries = DefaultShardBoundaries(n)
	}
	if len(boundaries) != n-1 {
		return nil, fmt.Errorf("%w: Options.ShardBoundaries has %d keys, want Shards-1 = %d",
			ErrShardLayout, len(boundaries), n-1)
	}
	if err := validateBoundaries(boundaries); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrShardLayout, err)
	}
	// Deep-copy before persisting so later caller mutations can't skew
	// routing.
	cp := make([][]byte, len(boundaries))
	for i, b := range boundaries {
		cp[i] = append([]byte(nil), b...)
	}
	l = &shardLayout{epoch: 1, nextShardID: n, ids: make([]int, n), boundaries: cp}
	for i := range l.ids {
		l.ids[i] = i
	}
	if err := saveShardManifest(fs, l); err != nil {
		return nil, err
	}
	return l, nil
}

// shardDirPrefix names the directory of the shard with persistent ID id.
func shardDirPrefix(id int) string { return fmt.Sprintf("shard-%d/", id) }

// unshardedEngineExists reports whether the filesystem's root holds files
// of a single-instance engine (manifest, sstables, or WAL segments outside
// any shard directory).
func unshardedEngineExists(fs vfs.FS) (bool, error) {
	names, err := fs.List()
	if err != nil {
		return false, fmt.Errorf("lethe: list filesystem: %w", err)
	}
	for _, n := range names {
		if strings.ContainsRune(n, '/') {
			continue // inside a directory, not a root-level engine file
		}
		if n == "MANIFEST" || strings.HasSuffix(n, ".sst") || strings.HasSuffix(n, ".wal") {
			return true, nil
		}
	}
	return false, nil
}

// ---------------------------------------------------------------------------
// Reshard intent record and crash recovery

// reshardMove is one planned cross-directory file rename. Remote moves
// happen on the remote filesystem (the slow tier mirrors the shard-directory
// structure).
type reshardMove struct {
	From, To string
	Remote   bool
}

// reshardIntent is the write-ahead record of a split or merge. It is written
// (temp+rename) before the first cross-directory effect and removed after
// the post-commit cleanup, so at any crash point it describes every file
// that may have moved and every directory that may hold partial output.
// Recovery decides direction by comparing the SHARDS epoch on disk against
// NewEpoch: the layout swap is the commit point.
type reshardIntent struct {
	Version  int
	Kind     string // "split" or "merge", informational
	NewEpoch uint64
	Moves    []reshardMove
	// NewDirs are the child directory prefixes (rollback deletes their
	// contents); OldDirs are the donor prefixes (roll-forward deletes
	// theirs). "" means the filesystem root, where only engine files —
	// MANIFEST, sstables, WAL segments — are touched.
	NewDirs []string
	OldDirs []string
}

func saveReshardIntent(fs vfs.FS, in *reshardIntent) error {
	data, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("lethe: encode reshard intent: %w", err)
	}
	tmp := reshardIntentName + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("lethe: create reshard intent: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("lethe: write reshard intent: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lethe: sync reshard intent: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lethe: close reshard intent: %w", err)
	}
	if err := fs.Rename(tmp, reshardIntentName); err != nil {
		return fmt.Errorf("lethe: install reshard intent: %w", err)
	}
	return nil
}

func loadReshardIntent(fs vfs.FS) (*reshardIntent, bool, error) {
	f, err := fs.Open(reshardIntentName)
	if errors.Is(err, vfs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("lethe: open reshard intent: %w", err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, false, fmt.Errorf("lethe: reshard intent size: %w", err)
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, false, fmt.Errorf("lethe: read reshard intent: %w", err)
		}
	}
	var in reshardIntent
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, false, fmt.Errorf("lethe: decode reshard intent: %w", err)
	}
	if in.NewEpoch == 0 && len(in.Moves) == 0 && len(in.NewDirs) == 0 {
		// A zero record (e.g. truncated-to-empty temp caught mid-crash)
		// carries no effects to undo; treat as absent after removal.
		if err := fs.Remove(reshardIntentName); err != nil && !errors.Is(err, vfs.ErrNotExist) {
			return nil, false, err
		}
		return nil, false, nil
	}
	return &in, true, nil
}

// fileExists probes fs for name.
func fileExists(fs vfs.FS, name string) bool {
	f, err := fs.Open(name)
	if err != nil {
		return false
	}
	f.Close()
	return true
}

// removeEngineFiles deletes the engine files under dirPrefix — every file
// when dirPrefix names a shard directory, or only root-level engine files
// (MANIFEST, *.sst, *.wal and their temps; never SHARDS or RESHARD) when
// dirPrefix is "". Missing files are fine: recovery re-runs this.
func removeEngineFiles(fs vfs.FS, dirPrefix string) error {
	names, err := fs.List()
	if err != nil {
		return fmt.Errorf("lethe: list filesystem: %w", err)
	}
	for _, n := range names {
		if dirPrefix == "" {
			if strings.ContainsRune(n, '/') {
				continue
			}
			base := n
			if !(base == "MANIFEST" || base == "MANIFEST.tmp" ||
				strings.HasSuffix(base, ".sst") || strings.HasSuffix(base, ".wal")) {
				continue
			}
		} else if !strings.HasPrefix(n, dirPrefix) {
			continue
		}
		if err := fs.Remove(n); err != nil && !errors.Is(err, vfs.ErrNotExist) {
			return fmt.Errorf("lethe: remove %s: %w", n, err)
		}
	}
	if dirPrefix != "" {
		// With its files gone, drop the per-shard directory itself.
		// Best-effort only: MemFS has no directory entries, and a real
		// directory holding a stray foreign file is left in place rather
		// than failing the retirement.
		_ = fs.Remove(strings.TrimSuffix(dirPrefix, "/"))
	}
	return nil
}

// recoverReshard completes or undoes a reshard interrupted by a crash. The
// SHARDS manifest is the commit point: if its epoch has reached the
// intent's NewEpoch the reshard happened and only donor-side cleanup can be
// missing (roll forward); otherwise the new layout never committed, so any
// renames are reversed and child-directory output deleted (roll back).
// Every step is idempotent — a crash during recovery just recovers again.
func recoverReshard(fs, remoteFS vfs.FS) error {
	in, ok, err := loadReshardIntent(fs)
	if err != nil || !ok {
		return err
	}
	var curEpoch uint64
	if l, ok, err := loadShardManifest(fs); err != nil {
		return err
	} else if ok {
		curEpoch = l.epoch
	}
	if curEpoch >= in.NewEpoch {
		// Roll forward: the new layout is live; finish deleting the donors'
		// leftovers (straddler sources, old MANIFEST and WAL).
		for _, dir := range in.OldDirs {
			if err := removeEngineFiles(fs, dir); err != nil {
				return err
			}
			if remoteFS != nil {
				if err := removeEngineFiles(remoteFS, dir); err != nil {
					return err
				}
			}
		}
	} else {
		// Roll back: reverse whichever renames happened, then delete the
		// partial child output.
		for i := len(in.Moves) - 1; i >= 0; i-- {
			mv := in.Moves[i]
			mfs := fs
			if mv.Remote {
				if remoteFS == nil {
					return fmt.Errorf("%w: reshard intent moves remote files but no remote filesystem is configured", ErrShardLayout)
				}
				mfs = remoteFS
			}
			if fileExists(mfs, mv.To) && !fileExists(mfs, mv.From) {
				if err := mfs.Rename(mv.To, mv.From); err != nil {
					return fmt.Errorf("lethe: reshard rollback rename %s: %w", mv.To, err)
				}
			}
		}
		for _, dir := range in.NewDirs {
			if err := removeEngineFiles(fs, dir); err != nil {
				return err
			}
			if remoteFS != nil {
				if err := removeEngineFiles(remoteFS, dir); err != nil {
					return err
				}
			}
		}
	}
	if err := fs.Remove(reshardIntentName); err != nil && !errors.Is(err, vfs.ErrNotExist) {
		return err
	}
	return nil
}
