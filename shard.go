// Range sharding: a sharded DB is a router over Options.Shards independent
// LSM instances, each with its own memory buffer, WAL directory, manifest,
// version set, and flush/compaction/commit pipeline. The sort-key space is
// partitioned by Shards-1 boundary keys: shard i holds every key in
// [boundary[i-1], boundary[i]) (the first and last ranges are unbounded
// below and above). Point operations route to exactly one shard, so under
// concurrency the shards' write pipelines and maintenance workers proceed
// independently; range scans merge the per-shard streams lazily
// (iterator.go); secondary range deletes and scans fan out to every shard,
// because the delete key D is not part of the partitioning key.
//
// The boundaries are chosen once, when the database is created — by
// Options.ShardBoundaries, or DefaultShardBoundaries when unset — and are
// recorded in a shard manifest (the SHARDS file) at the filesystem root so a
// reopen routes exactly as the writer did. Resharding an existing database
// is not supported: reopening with a conflicting explicit shard count is an
// error.
package lethe

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"lethe/internal/base"
	"lethe/internal/lsm"
	"lethe/internal/vfs"
)

// shardManifestName is the file at the root of a sharded database recording
// its partitioning. Single-shard databases never create it, so their on-disk
// layout is unchanged from the unsharded engine.
const shardManifestName = "SHARDS"

// maxShards bounds Options.Shards: beyond a few dozen shards per process the
// per-shard buffers and worker goroutines cost more than the parallelism
// returns (see the guidance in tuning.go).
const maxShards = 256

// shardManifest is the persisted form of the partitioning. Boundaries are
// JSON-encoded (base64 for the raw key bytes), matching the engine
// manifest's encoding choice.
type shardManifest struct {
	Version    int
	Boundaries [][]byte
}

// loadShardManifest reads the SHARDS file; the boolean reports whether one
// existed.
func loadShardManifest(fs vfs.FS) (*shardManifest, bool, error) {
	f, err := fs.Open(shardManifestName)
	if errors.Is(err, vfs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("lethe: open shard manifest: %w", err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, false, fmt.Errorf("lethe: shard manifest size: %w", err)
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return nil, false, fmt.Errorf("lethe: read shard manifest: %w", err)
		}
	}
	var m shardManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false, fmt.Errorf("lethe: decode shard manifest: %w", err)
	}
	if err := validateBoundaries(m.Boundaries); err != nil {
		return nil, false, fmt.Errorf("%w (shard manifest): %w", ErrShardLayout, err)
	}
	return &m, true, nil
}

// saveShardManifest writes the SHARDS file via temp + rename, the same
// atomic-replace pattern the engine manifest uses.
func saveShardManifest(fs vfs.FS, m *shardManifest) error {
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("lethe: encode shard manifest: %w", err)
	}
	tmp := shardManifestName + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("lethe: create shard manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("lethe: write shard manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("lethe: sync shard manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lethe: close shard manifest: %w", err)
	}
	if err := fs.Rename(tmp, shardManifestName); err != nil {
		return fmt.Errorf("lethe: install shard manifest: %w", err)
	}
	return nil
}

// validateBoundaries checks that boundary keys are non-empty and strictly
// increasing — the invariant shard routing depends on.
func validateBoundaries(boundaries [][]byte) error {
	for i, b := range boundaries {
		if len(b) == 0 {
			return fmt.Errorf("shard boundary %d is empty", i)
		}
		if i > 0 && bytes.Compare(boundaries[i-1], b) >= 0 {
			return fmt.Errorf("shard boundaries not strictly increasing at %d", i)
		}
	}
	return nil
}

// DefaultShardBoundaries splits the key space into n ranges of equal width
// over the first two key bytes — the right default for keys whose leading
// bytes are uniformly distributed (hashed or random prefixes). Keys
// clustered under a common prefix (e.g. all starting with "user-") land in
// one shard under this split; pass Options.ShardBoundaries matched to the
// real key distribution instead (see the sharding guidance in tuning.go).
func DefaultShardBoundaries(n int) [][]byte {
	if n <= 1 {
		return nil
	}
	bounds := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		v := (i << 16) / n // boundary in the 16-bit prefix space
		bounds = append(bounds, []byte{byte(v >> 8), byte(v)})
	}
	return bounds
}

// shardIndex returns the shard owning key: the number of boundaries at or
// below it.
func shardIndex(boundaries [][]byte, key []byte) int {
	return sort.Search(len(boundaries), func(i int) bool {
		return base.CompareUserKeys(key, boundaries[i]) < 0
	})
}

// shardRange returns the inclusive index range of shards overlapping
// [start, end) (nil = unbounded). Both bounds set with start >= end is the
// caller's degenerate case; this still returns lo <= hi so fan-out loops
// touch at most one shard.
func shardRange(boundaries [][]byte, start, end []byte) (lo, hi int) {
	lo, hi = 0, len(boundaries)
	if start != nil {
		lo = shardIndex(boundaries, start)
	}
	if end != nil {
		hi = shardIndex(boundaries, end)
		// end is exclusive: when it sits exactly on a boundary the shard
		// above it contains no qualifying keys.
		if hi > 0 && base.CompareUserKeys(end, boundaries[hi-1]) == 0 {
			hi--
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// aggregateStats folds per-shard engine stats into one engine-wide view:
// counters and populations sum, per-level stats sum level-wise (levels align
// across shards since every shard runs the same geometry), and peak gauges
// take the maximum. LastPublishedSeq sums the per-shard frontiers — shards
// number their sequences independently, so only the total is meaningful
// engine-wide; use DB.ShardStats for the exact per-shard frontiers.
func aggregateStats(per []lsm.Stats) lsm.Stats {
	var agg lsm.Stats
	for _, s := range per {
		for len(agg.Levels) < len(s.Levels) {
			agg.Levels = append(agg.Levels, lsm.LevelStats{})
		}
		for i, l := range s.Levels {
			agg.Levels[i].Runs += l.Runs
			agg.Levels[i].Files += l.Files
			agg.Levels[i].LiveBytes += l.LiveBytes
			agg.Levels[i].BytesOnDisk += l.BytesOnDisk
			agg.Levels[i].Entries += l.Entries
			agg.Levels[i].PointTombstones += l.PointTombstones
			agg.Levels[i].RangeTombstones += l.RangeTombstones
		}
		agg.TreeEntries += s.TreeEntries
		agg.BufferEntries += s.BufferEntries
		agg.LivePointTombstones += s.LivePointTombstones
		agg.BytesOnDisk += s.BytesOnDisk
		agg.Compactions += s.Compactions
		agg.CompactionsTTL += s.CompactionsTTL
		agg.CompactionsSaturation += s.CompactionsSaturation
		agg.FullTreeCompactions += s.FullTreeCompactions
		agg.TrivialMoves += s.TrivialMoves
		agg.Flushes += s.Flushes
		if s.MaxCompactionBytes > agg.MaxCompactionBytes {
			agg.MaxCompactionBytes = s.MaxCompactionBytes
		}
		agg.BytesFlushed += s.BytesFlushed
		agg.CompactionBytesRead += s.CompactionBytesRead
		agg.CompactionBytesWritten += s.CompactionBytesWritten
		agg.TotalBytesWritten += s.TotalBytesWritten
		agg.UserBytesWritten += s.UserBytesWritten
		agg.EntriesDroppedObsolete += s.EntriesDroppedObsolete
		agg.TombstonesDropped += s.TombstonesDropped
		agg.RangeCovered += s.RangeCovered
		agg.BlindDeletesSuppressed += s.BlindDeletesSuppressed
		agg.FullPageDrops += s.FullPageDrops
		agg.PartialPageDrops += s.PartialPageDrops
		agg.SRDEntriesDropped += s.SRDEntriesDropped
		agg.ImmutableBuffers += s.ImmutableBuffers
		agg.WriteStalls += s.WriteStalls
		agg.WriteStallTime += s.WriteStallTime
		agg.BackgroundFlushes += s.BackgroundFlushes
		agg.BackgroundCompactions += s.BackgroundCompactions
		agg.Subcompactions += s.Subcompactions
		if s.MaxMergeWidth > agg.MaxMergeWidth {
			agg.MaxMergeWidth = s.MaxMergeWidth
		}
		agg.CompactionTime += s.CompactionTime
		agg.CommitGroups += s.CommitGroups
		agg.CommitBatches += s.CommitBatches
		agg.CommitEntries += s.CommitEntries
		if s.MaxCommitGroupBatches > agg.MaxCommitGroupBatches {
			agg.MaxCommitGroupBatches = s.MaxCommitGroupBatches
		}
		agg.CommitQueueDepth += s.CommitQueueDepth
		agg.WALSyncs += s.WALSyncs
		agg.LastPublishedSeq += s.LastPublishedSeq
		// Tier populations and traffic are per-shard (each instance wraps
		// its own prefixed slice of the remote filesystem), so they sum.
		agg.Tier.LocalFiles += s.Tier.LocalFiles
		agg.Tier.LocalBytes += s.Tier.LocalBytes
		agg.Tier.RemoteFiles += s.Tier.RemoteFiles
		agg.Tier.RemoteBytes += s.Tier.RemoteBytes
		agg.Tier.Migrations += s.Tier.Migrations
		agg.Tier.MigratedBytes += s.Tier.MigratedBytes
		agg.Tier.MigrationTime += s.Tier.MigrationTime
		agg.Tier.RemoteReadOps += s.Tier.RemoteReadOps
		agg.Tier.RemoteBytesRead += s.Tier.RemoteBytesRead
		agg.Tier.RemoteWriteOps += s.Tier.RemoteWriteOps
		agg.Tier.RemoteBytesWritten += s.Tier.RemoteBytesWritten
		// The page cache is shared: every shard reports the same cache, so
		// the aggregate takes the maximum rather than summing — summing
		// would claim Shards x the real budget.
		if s.CacheCapacity > agg.CacheCapacity {
			agg.CacheCapacity = s.CacheCapacity
		}
		if s.CacheUsed > agg.CacheUsed {
			agg.CacheUsed = s.CacheUsed
		}
		if s.CacheHits > agg.CacheHits {
			agg.CacheHits = s.CacheHits
		}
		if s.CacheMisses > agg.CacheMisses {
			agg.CacheMisses = s.CacheMisses
		}
	}
	// Derived rates are recomputed from the summed operands: averaging
	// per-shard ratios would weight idle shards incorrectly. Shard merge
	// windows can overlap in wall time, so these are per-merge-second
	// bandwidths, not host-level aggregates.
	if secs := agg.CompactionTime.Seconds(); secs > 0 {
		agg.CompactionThroughputMBps = float64(agg.CompactionBytesRead+agg.CompactionBytesWritten) / (1 << 20) / secs
	}
	if secs := agg.Tier.MigrationTime.Seconds(); secs > 0 {
		agg.Tier.MigrationMBps = float64(agg.Tier.MigratedBytes) / (1 << 20) / secs
	}
	return agg
}

// resolveShardLayout decides the partitioning at Open time: an existing
// shard manifest wins (the database reopens exactly as it was written, even
// if Options now asks for synchronous mode); otherwise the requested count
// and boundaries apply, with sharding forced off under a manual clock or
// DisableBackgroundMaintenance so the paper harness's deterministic
// single-instance execution is preserved bit-for-bit.
func resolveShardLayout(fs vfs.FS, opts Options) (boundaries [][]byte, fromManifest bool, err error) {
	m, ok, err := loadShardManifest(fs)
	if err != nil {
		return nil, false, err
	}
	if ok {
		if opts.Shards > 1 && opts.Shards != len(m.Boundaries)+1 {
			return nil, false, fmt.Errorf(
				"%w: database has %d shards, Options.Shards asks for %d (resharding is not supported)",
				ErrShardLayout, len(m.Boundaries)+1, opts.Shards)
		}
		return m.Boundaries, true, nil
	}
	n := opts.Shards
	if n <= 1 {
		return nil, false, nil
	}
	if n > maxShards {
		return nil, false, fmt.Errorf("%w: Options.Shards %d exceeds the maximum %d", ErrShardLayout, n, maxShards)
	}
	_, manual := opts.Clock.(*base.ManualClock)
	if manual || opts.DisableBackgroundMaintenance {
		// Synchronous mode is the deterministic single-instance execution
		// model; a router over n pipelines has nothing to pipeline there.
		return nil, false, nil
	}
	// A single-instance database never writes a SHARDS manifest, so "no
	// manifest" alone cannot distinguish a fresh filesystem from an
	// existing unsharded one — and opening the latter sharded would shadow
	// all of its root-level data behind empty shard directories. Refuse.
	if exists, err := unshardedEngineExists(fs); err != nil {
		return nil, false, err
	} else if exists {
		return nil, false, fmt.Errorf(
			"%w: filesystem holds an unsharded database; Options.Shards > 1 would shadow it (resharding is not supported)",
			ErrShardLayout)
	}
	boundaries = opts.ShardBoundaries
	if boundaries == nil {
		boundaries = DefaultShardBoundaries(n)
	}
	if len(boundaries) != n-1 {
		return nil, false, fmt.Errorf("%w: Options.ShardBoundaries has %d keys, want Shards-1 = %d",
			ErrShardLayout, len(boundaries), n-1)
	}
	if err := validateBoundaries(boundaries); err != nil {
		return nil, false, fmt.Errorf("%w: %w", ErrShardLayout, err)
	}
	// Deep-copy before persisting so later caller mutations can't skew
	// routing.
	cp := make([][]byte, len(boundaries))
	for i, b := range boundaries {
		cp[i] = append([]byte(nil), b...)
	}
	if err := saveShardManifest(fs, &shardManifest{Version: 1, Boundaries: cp}); err != nil {
		return nil, false, err
	}
	return cp, false, nil
}

// shardDirPrefix names shard i's directory inside the root filesystem.
func shardDirPrefix(i int) string { return fmt.Sprintf("shard-%d/", i) }

// unshardedEngineExists reports whether the filesystem's root holds files
// of a single-instance engine (manifest, sstables, or WAL segments outside
// any shard directory).
func unshardedEngineExists(fs vfs.FS) (bool, error) {
	names, err := fs.List()
	if err != nil {
		return false, fmt.Errorf("lethe: list filesystem: %w", err)
	}
	for _, n := range names {
		if strings.ContainsRune(n, '/') {
			continue // inside a directory, not a root-level engine file
		}
		if n == "MANIFEST" || strings.HasSuffix(n, ".sst") || strings.HasSuffix(n, ".wal") {
			return true, nil
		}
	}
	return false, nil
}
