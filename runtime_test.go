// Tests for the shared cross-shard runtime: the global worker pool, the
// unified page cache budget, the memory budget's cross-shard stall gate,
// the compaction I/O rate limiter, and clean shutdown ordering.
package lethe

import (
	stdruntime "runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lethe/internal/vfs"
)

// TestSharedCacheBudget is the regression test for the CacheBytes-times-
// Shards memory blowout: total page-cache capacity must equal the
// configured budget regardless of shard count, in both the aggregated
// engine stats and the runtime stats.
func TestSharedCacheBudget(t *testing.T) {
	const budget = 1 << 20
	for _, shards := range []int{1, 4, 8} {
		db, err := Open(Options{
			InMemory:    true,
			DisableWAL:  true,
			Shards:      shards,
			Storage:     StorageOptions{CacheBytes: budget},
			BufferBytes: 4 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Populate every shard and read back so the cache sees traffic.
		for i := 0; i < 2000; i++ {
			if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if _, err := db.Get(shardKey(i)); err != nil {
				t.Fatal(err)
			}
		}
		st := db.Stats()
		if st.CacheCapacity != budget {
			t.Fatalf("shards=%d: aggregated CacheCapacity = %d, want the whole-DB budget %d",
				shards, st.CacheCapacity, budget)
		}
		if st.CacheUsed > budget {
			t.Fatalf("shards=%d: CacheUsed %d exceeds budget %d", shards, st.CacheUsed, budget)
		}
		if st.CacheHits+st.CacheMisses == 0 {
			t.Fatalf("shards=%d: cache saw no lookups", shards)
		}
		rs := db.RuntimeStats()
		if rs.CacheCapacity != budget {
			t.Fatalf("shards=%d: runtime CacheCapacity = %d, want %d", shards, rs.CacheCapacity, budget)
		}
		// Per-shard stats each report the one shared cache, not a private
		// slice of it.
		for i, ss := range db.ShardStats() {
			if ss.CacheCapacity != budget {
				t.Fatalf("shard %d reports capacity %d, want the shared %d", i, ss.CacheCapacity, budget)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGlobalWorkerPool verifies the acceptance criterion: with Shards=N the
// total maintenance concurrency equals CompactionWorkers — the pool is
// global, not per shard — and the background goroutine count does not scale
// with the shard count.
func TestGlobalWorkerPool(t *testing.T) {
	goroutines := func() int {
		stdruntime.GC()
		time.Sleep(10 * time.Millisecond)
		return stdruntime.NumGoroutine()
	}
	open := func(shards int) *DB {
		db, err := Open(Options{
			InMemory:          true,
			DisableWAL:        true,
			Shards:            shards,
			CompactionWorkers: 2,
			BufferBytes:       8 << 10,
			SizeRatio:         4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	before := goroutines()
	db := open(8)
	grew := goroutines() - before
	// Workers + flush lane + ticker + slack: with per-shard pipelines this
	// would be at least 8 flush workers + 8 schedulers.
	if grew > 6 {
		t.Fatalf("8-shard open grew goroutines by %d; the pool must not scale with shards", grew)
	}

	// Drive real churn and confirm the concurrency high-water mark honors
	// the pool size.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < 4000; i += 8 {
				if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	rs := db.RuntimeStats()
	if rs.Workers != 2 {
		t.Fatalf("Workers = %d, want the configured 2", rs.Workers)
	}
	if rs.MaxRunningCompactions > 2 {
		t.Fatalf("MaxRunningCompactions = %d, exceeds the 2-worker pool", rs.MaxRunningCompactions)
	}
	if rs.MaxRunningJobs > 3 {
		t.Fatalf("MaxRunningJobs = %d, exceeds 2 workers + the flush lane", rs.MaxRunningJobs)
	}
	if rs.FlushJobs == 0 {
		t.Fatal("the shared pool executed no flushes under churn")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSharedSchedulerStress exercises the shared scheduler under -race:
// 8 shards on a 2-worker pool with concurrent puts and scans across shards
// during flush and compaction churn.
func TestSharedSchedulerStress(t *testing.T) {
	db, err := Open(Options{
		InMemory:          true,
		DisableWAL:        true,
		Shards:            8,
		CompactionWorkers: 2,
		BufferBytes:       8 << 10,
		SizeRatio:         4,
		Storage:           StorageOptions{CacheBytes: 256 << 10},
		MemoryBudget:      512 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		readers = 4
		perG    = 800
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < writers*perG; i += writers {
				if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
					t.Error(err)
					return
				}
				if i%97 == 0 {
					if err := db.Delete(shardKey(i)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Cross-shard merging scan plus point reads.
				n := 0
				err := db.Scan(nil, nil, func(k []byte, d DeleteKey, v []byte) bool {
					n++
					return n < 200
				})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Get(shardKey(r * 13)); err != nil && err != ErrNotFound {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	// Readers run alongside the writers for a while, then stop; wg then
	// joins both groups.
	time.AfterFunc(100*time.Millisecond, func() { close(stop) })
	wg.Wait()
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	// Verify survivors: every key not deleted must be present.
	for i := 0; i < writers*perG; i++ {
		_, err := db.Get(shardKey(i))
		if i%97 == 0 {
			if err != ErrNotFound {
				t.Fatalf("key %d: deleted key resurfaced (err=%v)", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNoJobRunsAfterClose is the clean-shutdown ordering test: after Close
// returns, the shared pool must never execute another job for that database
// — observed as filesystem writes after the close flag is raised.
func TestNoJobRunsAfterClose(t *testing.T) {
	for round := 0; round < 5; round++ {
		var closed atomic.Bool
		var lateOps atomic.Int64
		fs := vfs.NewInject(vfs.NewMem(), func(op vfs.Op, name string) error {
			if closed.Load() && (op == vfs.OpCreate || op == vfs.OpWrite) &&
				strings.HasSuffix(name, ".sst") {
				lateOps.Add(1)
			}
			return nil
		})
		db, err := Open(Options{
			Storage:           StorageOptions{FS: fs},
			DisableWAL:        true,
			Shards:            4,
			CompactionWorkers: 2,
			BufferBytes:       8 << 10,
			SizeRatio:         4,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Enough writes that flushes and compactions are in flight at
		// Close time.
		for i := 0; i < 3000; i++ {
			if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		closed.Store(true)
		time.Sleep(20 * time.Millisecond) // a straggler job would write now
		if n := lateOps.Load(); n != 0 {
			t.Fatalf("round %d: %d sstable writes after Close returned", round, n)
		}
	}
}

// TestMemoryBudgetCrossShardStall verifies the global gate with per-shard
// fairness: a hot shard driven over its fair share stalls (and the stall is
// accounted), while a cold shard's writes are admitted throughout.
func TestMemoryBudgetCrossShardStall(t *testing.T) {
	// Slow flushes down so the hot shard's backlog outruns the pool.
	fs := vfs.NewInject(vfs.NewMem(), func(op vfs.Op, name string) error {
		if op == vfs.OpWrite && strings.HasSuffix(name, ".sst") {
			time.Sleep(200 * time.Microsecond)
		}
		return nil
	})
	db, err := Open(Options{
		Storage:           StorageOptions{FS: fs},
		DisableWAL:        true,
		Shards:            4,
		CompactionWorkers: 1,
		BufferBytes:       1 << 20, // buffers rotate above the budget's share
		MemoryBudget:      256 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Hot shard: hammer one key range (shard of byte 0x00 prefix).
	hotKey := func(i int) []byte {
		return append([]byte{0x00}, []byte(shardVal(i))...)
	}
	coldKey := func(i int) []byte {
		return append([]byte{0xF0}, []byte(shardVal(i))...)
	}
	val := make([]byte, 2048)
	var coldMax atomic.Int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 600; i++ {
			if err := db.Put(hotKey(i), DeleteKey(i), val); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			start := time.Now()
			if err := db.Put(coldKey(i), DeleteKey(i), make([]byte, 32)); err != nil {
				t.Error(err)
				return
			}
			if d := time.Since(start).Nanoseconds(); d > coldMax.Load() {
				coldMax.Store(d)
			}
		}
	}()
	wg.Wait()
	rs := db.RuntimeStats()
	if rs.MemoryStalls == 0 {
		t.Fatal("hot shard never stalled on the memory budget")
	}
	if rs.MemoryStallTime <= 0 {
		t.Fatal("stall time not accounted")
	}
	// Fairness: the cold shard (far under its share) must not have been
	// gated for anything near the hot shard's cumulative stall.
	if max := time.Duration(coldMax.Load()); max > time.Second {
		t.Fatalf("cold-shard write took %v — starved by the hot shard's stall", max)
	}
}

// TestCompactionRateLimiterThrottles verifies maintenance writes are paced
// (throttle time accrues) and that foreground correctness is unaffected.
func TestCompactionRateLimiterThrottles(t *testing.T) {
	db, err := Open(Options{
		InMemory:            true,
		DisableWAL:          true,
		BufferBytes:         16 << 10,
		SizeRatio:           4,
		CompactionRateBytes: 2 << 20, // 2 MiB/s: a few hundred KiB of churn must throttle
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := make([]byte, 1024)
	for i := 0; i < 3000; i++ {
		if err := db.Put(shardKey(i%500), DeleteKey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	rs := db.RuntimeStats()
	if rs.CompactionRateBytes != 2<<20 {
		t.Fatalf("CompactionRateBytes = %d", rs.CompactionRateBytes)
	}
	if rs.ThrottleWaitTime <= 0 {
		t.Fatal("maintenance churn above the rate cap must accrue throttle time")
	}
	for i := 0; i < 500; i++ {
		if _, err := db.Get(shardKey(i)); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

// TestSharedCacheBudgetSyncReopen covers the runtime-less corner: a sharded
// database reopened in synchronous mode (the shard manifest wins over the
// requested mode) must still share one CacheBytes-sized cache across
// shards, not build Shards private full-size caches.
func TestSharedCacheBudgetSyncReopen(t *testing.T) {
	const budget = 1 << 20
	fs := vfs.NewMem()
	db, err := Open(Options{Storage: StorageOptions{FS: fs, CacheBytes: budget}, Shards: 4, BufferBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(Options{
		Storage: StorageOptions{FS: fs, CacheBytes: budget}, BufferBytes: 4 << 10,
		DisableBackgroundMaintenance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.ShardCount() != 4 {
		t.Fatalf("reopen kept %d shards, want 4", db.ShardCount())
	}
	for i := 0; i < 500; i++ {
		if _, err := db.Get(shardKey(i)); err != nil {
			t.Fatalf("key %d after sync reopen: %v", i, err)
		}
	}
	st := db.Stats()
	if st.CacheCapacity != budget {
		t.Fatalf("sync-reopened sharded DB: CacheCapacity = %d, want the shared %d",
			st.CacheCapacity, budget)
	}
	for i, ss := range db.ShardStats() {
		if ss.CacheCapacity != budget {
			t.Fatalf("shard %d: private capacity %d, want the one shared cache of %d",
				i, ss.CacheCapacity, budget)
		}
	}
	if used := st.CacheUsed; used > budget {
		t.Fatalf("CacheUsed %d exceeds the whole-DB budget %d", used, budget)
	}
}

// TestFlushNotDelayedByLostWakeup guards the notify protocol: Flush seals
// the buffer and kicks the pool while still holding the engine lock, so a
// worker's poll can race the lock and find nothing. The contention retry
// must re-poll within milliseconds — without it the flush sat until the
// 500ms maintenance tick.
func TestFlushNotDelayedByLostWakeup(t *testing.T) {
	db, err := Open(Options{InMemory: true, DisableWAL: true, BufferBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for round := 0; round < 10; round++ {
		for i := 0; i < 50; i++ {
			if err := db.Put(shardKey(round*50+i), DeleteKey(i), shardVal(i)); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d > 250*time.Millisecond {
			t.Fatalf("round %d: Flush of a tiny buffer took %v — lost wakeup waited for the tick", round, d)
		}
	}
}

// TestRuntimeStatsSynchronousMode: no runtime exists in synchronous mode;
// the stats are zero and nothing panics.
func TestRuntimeStatsSynchronousMode(t *testing.T) {
	db, err := Open(Options{InMemory: true, DisableBackgroundMaintenance: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if rs := db.RuntimeStats(); rs != (RuntimeStats{}) {
		t.Fatalf("synchronous mode reported runtime stats: %+v", rs)
	}
}
