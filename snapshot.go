package lethe

import (
	"sort"
	"sync/atomic"

	"lethe/internal/base"
	"lethe/internal/lsm"
)

// Snapshot is a pinned, point-in-time view of the whole database. It is
// created by DB.NewSnapshot, which pins every shard's refcounted read state
// in one pass, so — unlike issuing independent Gets and Scans, each of
// which pins per-shard states at slightly different instants — every read
// served from one Snapshot observes the same fixed view: a Get after a
// Scan sees exactly the states the scan saw, on every shard. Later writes,
// flushes, and compactions are invisible until Release.
//
// Snapshots are cheap (per shard: one bounded buffer copy plus reference-
// count bumps, no I/O) and block nothing: writers and the maintenance
// pipeline proceed; sstables the snapshot pins are deleted once the last
// holder releases them. Hold snapshots for the duration of a read, not for
// the lifetime of the process — a long-lived snapshot keeps every file it
// pins on disk.
//
// One caveat carried over from the engine's delete design:
// SecondaryRangeDelete is physical (it edits sealed buffers and sstable
// pages in place, per the paper), so entries it removes from those
// disappear from existing snapshots too. Only entries still in the mutable
// buffer at snapshot time are immune — the snapshot holds a frozen copy of
// that buffer, which the delete cannot reach.
//
// A Snapshot is safe for concurrent reads; Release must not race other
// method calls.
type Snapshot struct {
	db     *DB
	shards []*lsm.Snapshot
	// boundaries is the routing geometry captured at pin time. A snapshot
	// outlives routing epochs: a split or merge committing after creation
	// must not change which pinned shard serves a key, so reads route by
	// this frozen copy, never by the live table.
	boundaries [][]byte
	released   atomic.Bool
}

// NewSnapshot pins the current read state of every shard, in one pass
// against a single routing epoch, and returns a consistent point-in-time
// view served by the Snapshot's Get, Scan, NewIter, and SecondaryRangeScan.
// A concurrent shard split or merge neither blocks this call nor disturbs
// the returned snapshot — it keeps reading the epoch it pinned. The caller
// must Release it.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	for {
		if db.closed.Load() {
			return nil, ErrClosed
		}
		t := db.table.Load()
		shards := make([]*lsm.Snapshot, len(t.shards))
		var err error
		for i, h := range t.shards {
			var sn *lsm.Snapshot
			if sn, err = h.db.NewSnapshot(); err != nil {
				for j := 0; j < i; j++ {
					shards[j].Release()
				}
				break
			}
			shards[i] = sn
		}
		if err != nil {
			// A shard retired mid-pin by a concurrent reshard: no pins
			// survive, so retry pins everything against the new epoch.
			if db.retryRead(err, t) {
				continue
			}
			return nil, err
		}
		return &Snapshot{db: db, shards: shards, boundaries: t.boundaries}, nil
	}
}

// Get returns the value stored for key as of the snapshot, or ErrNotFound.
func (s *Snapshot) Get(key []byte) ([]byte, error) {
	v, _, err := s.GetWithDeleteKey(key)
	return v, err
}

// GetWithDeleteKey also returns the entry's secondary delete key.
func (s *Snapshot) GetWithDeleteKey(key []byte) ([]byte, DeleteKey, error) {
	if s.released.Load() {
		return nil, 0, ErrReadOnlySnapshot
	}
	i := 0
	if len(s.shards) > 1 {
		i = shardIndex(s.boundaries, key)
	}
	return s.shards[i].Get(key)
}

// Scan visits every live pair with start <= key < end (nil end = unbounded)
// in key order, as of the snapshot, until fn returns false.
func (s *Snapshot) Scan(start, end []byte, fn func(key []byte, dkey DeleteKey, value []byte) bool) error {
	it, err := s.NewIter(start, end)
	if err != nil {
		return err
	}
	defer it.Close()
	for it.Next() {
		if !fn(it.Key(), it.DeleteKey(), it.Value()) {
			break
		}
	}
	return it.Close()
}

// NewIter returns a streaming iterator over [start, end) of the snapshot.
// The iterator borrows the snapshot's pins — close it before releasing the
// snapshot. Unlike DB.NewIter's, its SeekGE is absolute: backward seeks
// reopen earlier shards from the still-held pins.
func (s *Snapshot) NewIter(start, end []byte) (*Iterator, error) {
	if s.released.Load() {
		return nil, ErrReadOnlySnapshot
	}
	if start != nil && end != nil && base.CompareUserKeys(start, end) >= 0 {
		return &Iterator{exhausted: true, owned: true, cur: 0, hi: -1}, nil
	}
	lo, hi := 0, len(s.shards)-1
	if start != nil || end != nil {
		lo, hi = shardRange(s.boundaries, start, end)
	}
	a := iterAllocPool.Get().(*iterAlloc)
	return &Iterator{
		a:          a,
		snaps:      s.shards, // borrowed: never recycled into a
		boundaries: s.boundaries,
		owned:      false,
		start:      a.setStart(start),
		end:        a.setEnd(end),
		cur:        lo,
		hi:         hi,
	}, nil
}

// SecondaryRangeScan returns the snapshot's live entries with lo <= D < hi,
// served by the delete fences and verified against the same pinned state.
// Results are sorted by delete key, then sort key, exactly as
// DB.SecondaryRangeScan sorts them.
func (s *Snapshot) SecondaryRangeScan(lo, hi DeleteKey) ([]Item, error) {
	if s.released.Load() {
		return nil, ErrReadOnlySnapshot
	}
	var items []Item
	for _, sn := range s.shards {
		entries, err := sn.SecondaryRangeScan(lo, hi)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			items = append(items, Item{Key: e.Key.UserKey, DKey: e.DKey, Value: e.Value})
		}
	}
	sortSecondaryItems(items)
	return items, nil
}

// sortSecondaryItems orders secondary-scan results deterministically: by
// delete key, then sort key. Both the sharded fan-out (whose natural order
// would otherwise change with shard layout) and the single-instance path
// (whose natural order follows fence traversal) funnel through it.
func sortSecondaryItems(items []Item) {
	sort.Slice(items, func(i, j int) bool {
		if items[i].DKey != items[j].DKey {
			return items[i].DKey < items[j].DKey
		}
		return base.CompareUserKeys(items[i].Key, items[j].Key) < 0
	})
}

// Release drops every shard's pin, letting obsolete sstables the snapshot
// was holding be deleted. Idempotent; reads after Release fail.
func (s *Snapshot) Release() error {
	if s.released.Swap(true) {
		return nil
	}
	var first error
	for _, sn := range s.shards {
		if err := sn.Release(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
