package lethe

import (
	"errors"
	"sync"

	"lethe/internal/base"
	"lethe/internal/lsm"
)

// ErrIteratorClosed is the sticky error an Iterator reports when Next or
// SeekGE is called after Close. The guard exists because closing recycles
// the cursor's internal state into a pool: a use-after-Close returns false
// and surfaces this error instead of touching recycled state.
var ErrIteratorClosed = errors.New("lethe: iterator used after Close")

// iterAlloc is the poolable part of a cursor: the per-shard pin slice and
// the key scratch buffers. Iterators acquire one at creation and recycle it
// at Close, so steady-state open/iterate/close cycles reuse the same
// allocations. The Iterator handle itself is deliberately NOT pooled — a
// handle is cheap, and recycling it would make a double Close (or any stale
// reference) tear down whatever cursor reused it; recycling only the inner
// state keeps Close idempotent and use-after-Close inert.
type iterAlloc struct {
	snaps                     []*lsm.Snapshot
	startBuf, endBuf, seekBuf []byte
}

var iterAllocPool = sync.Pool{New: func() interface{} { return new(iterAlloc) }}

// setStart copies k into the reusable start scratch (nil stays nil —
// unbounded).
func (a *iterAlloc) setStart(k []byte) []byte {
	if k == nil {
		return nil
	}
	a.startBuf = append(a.startBuf[:0], k...)
	return a.startBuf
}

// setEnd copies k into the reusable end scratch (nil stays nil — unbounded).
func (a *iterAlloc) setEnd(k []byte) []byte {
	if k == nil {
		return nil
	}
	a.endBuf = append(a.endBuf[:0], k...)
	return a.endBuf
}

// recycle clears the pin references and returns the alloc to the pool. Byte
// scratch keeps its capacity (bytes pin nothing).
func (a *iterAlloc) recycle() {
	for i := range a.snaps {
		a.snaps[i] = nil
	}
	iterAllocPool.Put(a)
}

// Streaming cross-shard iteration.
//
// Iterator is a lazy cursor over the merged, tombstone-resolved view of a
// key range: each shard contributes an lsm.ScanIter (a pull-based stream
// over that shard's pinned snapshot), and because shard key ranges are
// disjoint and ordered, the cross-shard merge is a concatenation — the
// cursor drains shard i completely before touching shard i+1. Shard
// snapshots are all pinned when the iterator (or its parent Snapshot) is
// created, so the view is fixed up front; the per-shard scan machinery,
// including its I/O, is opened lazily — a cursor abandoned after ten keys
// reads roughly ten keys' worth of pages from the first shard and never
// opens the others. Memory stays bounded regardless of range size: nothing
// is materialized beyond each shard's in-buffer range copy and one decoded
// tile per run.
//
// An iterator from DB.NewIter owns its pins and releases each shard's as
// the cursor moves past it (and the rest on Close), so obsolete sstables
// can be deleted mid-iteration; an iterator from Snapshot.NewIter borrows
// the snapshot's pins, which live until Snapshot.Release.

// Iterator walks a fixed snapshot of a key range in ascending key order,
// streaming entries on demand. It starts positioned before the first item:
//
//	it, err := db.NewIter(nil, nil)
//	if err != nil { ... }
//	defer it.Close()
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
//	if err := it.Close(); err != nil { ... }
//
// Validity contract: the slices returned by Key and Value are views into
// the engine's pooled read buffers — they are valid only until the next
// Next, SeekGE, or Close call. Copy them (CloneBytes) to retain them.
// Iterators must be Closed — an unclosed iterator pins its snapshot's
// sstables, keeping obsolete files on disk. Close is idempotent, and Next or
// SeekGE after Close returns false with ErrIteratorClosed sticky in Error,
// rather than touching the recycled cursor state. An Iterator is not safe
// for concurrent use.
type Iterator struct {
	// a is the pooled cursor state; nil once Close has recycled it (and for
	// degenerate empty-range iterators, which never allocate one).
	a *iterAlloc
	// snaps is indexed by shard; only [cur, hi] are non-nil. Owned pins are
	// cleared as shards are exhausted. For owned iterators it aliases
	// a.snaps; for borrowed ones it is the parent Snapshot's slice.
	snaps      []*lsm.Snapshot
	boundaries [][]byte
	owned      bool
	start, end []byte
	cur, hi    int
	it         *lsm.ScanIter
	// pendingSeek defers a SeekGE into a shard whose scan isn't open yet,
	// preserving laziness: SeekGE immediately followed by Close opens
	// nothing.
	pendingSeek []byte
	key         []byte
	dkey        DeleteKey
	value       []byte
	valid       bool
	exhausted   bool
	closed      bool
	err         error
}

// NewIter returns a streaming iterator over live keys in [start, end) (nil
// end = unbounded; an empty or inverted range yields an empty iterator).
// Every overlapping shard's read state is pinned here, in one pass, against
// a single routing epoch, so the iterator observes a fixed view regardless
// of concurrent writes and layout changes — a reshard committing after the
// pins are taken does not disturb an open iterator; see the Iterator
// documentation for the contract. The caller must Close it.
func (db *DB) NewIter(start, end []byte) (*Iterator, error) {
	if start != nil && end != nil && base.CompareUserKeys(start, end) >= 0 {
		// Empty range: an exhausted cursor pinning nothing. owned keeps
		// SeekGE from trying to revive it into shards it never pinned.
		return &Iterator{exhausted: true, owned: true, cur: 0, hi: -1}, nil
	}
	for {
		if db.closed.Load() {
			return nil, ErrClosed
		}
		t := db.table.Load()
		lo, hi := 0, len(t.shards)-1
		if start != nil || end != nil {
			lo, hi = shardRange(t.boundaries, start, end)
		}
		a := iterAllocPool.Get().(*iterAlloc)
		if cap(a.snaps) < len(t.shards) {
			a.snaps = make([]*lsm.Snapshot, len(t.shards))
		} else {
			a.snaps = a.snaps[:len(t.shards)]
			for i := range a.snaps {
				a.snaps[i] = nil
			}
		}
		snaps := a.snaps
		var err error
		for i := lo; i <= hi; i++ {
			var sn *lsm.Snapshot
			if sn, err = t.shards[i].db.NewScanSnapshot(start, end); err != nil {
				for j := lo; j < i; j++ {
					snaps[j].Release()
					snaps[j] = nil
				}
				break
			}
			snaps[i] = sn
		}
		if err != nil {
			a.recycle()
			// A shard retired by a concurrent reshard before we pinned it:
			// re-resolve against the new table. No pins survive, so the
			// retry re-pins everything at one epoch.
			if db.retryRead(err, t) {
				continue
			}
			return nil, err
		}
		return &Iterator{
			a:          a,
			snaps:      snaps,
			boundaries: t.boundaries,
			owned:      true,
			start:      a.setStart(start),
			end:        a.setEnd(end),
			cur:        lo,
			hi:         hi,
		}, nil
	}
}

// CloneBytes returns a copy of b that stays valid indefinitely. Use it to
// retain an Iterator's Key or Value beyond the next Next, SeekGE, or Close —
// the raw slices are views into pooled buffers and do not survive those
// calls.
func CloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// Next advances to the next item, returning false when exhausted or on
// error (check Error or Close). After a false return the iterator remains
// exhausted. Calling Next after Close returns false and makes
// ErrIteratorClosed sticky: the cursor state was recycled at Close and is
// never touched again.
func (it *Iterator) Next() bool {
	it.valid = false
	if it.closed {
		if it.err == nil {
			it.err = ErrIteratorClosed
		}
		return false
	}
	if it.exhausted || it.err != nil {
		return false
	}
	for {
		if it.it == nil {
			if it.cur > it.hi {
				it.exhausted = true
				return false
			}
			si, err := it.snaps[it.cur].NewScanIter(it.start, it.end)
			if err != nil {
				it.err = err
				return false
			}
			if it.pendingSeek != nil {
				si.SeekGE(it.pendingSeek)
				it.pendingSeek = nil
			}
			it.it = si
		}
		e, ok := it.it.Next()
		if ok {
			it.key, it.dkey, it.value = e.Key.UserKey, e.DKey, e.Value
			it.valid = true
			return true
		}
		if !it.closeCurrentShard() {
			return false
		}
		it.cur++
	}
}

// closeCurrentShard retires the open shard scan, releasing the shard's pin
// when this iterator owns it. Returns false when the scan ended in error.
func (it *Iterator) closeCurrentShard() bool {
	err := it.it.Close()
	it.it = nil
	if it.owned && it.snaps[it.cur] != nil {
		if rerr := it.snaps[it.cur].Release(); rerr != nil && err == nil {
			err = rerr
		}
		it.snaps[it.cur] = nil
	}
	if err != nil {
		it.err = err
		return false
	}
	return true
}

// SeekGE repositions the cursor so the next Next returns the first entry
// with key >= key (clamped into [start, end)). On an iterator from
// Snapshot.NewIter seeks are absolute — backward seeks reopen earlier
// shards from the snapshot's pins, and a seek can revive an exhausted
// iterator. On an iterator from DB.NewIter, shards the cursor has passed
// have had their pins released, so seeks are forward-only: a backward
// target is clamped to the current shard's range, and an exhausted
// iterator stays exhausted.
func (it *Iterator) SeekGE(key []byte) {
	it.valid = false
	if it.closed {
		if it.err == nil {
			it.err = ErrIteratorClosed
		}
		return
	}
	if it.err != nil {
		return
	}
	if it.start != nil && base.CompareUserKeys(key, it.start) < 0 {
		key = it.start
	}
	lo := 0
	if it.start != nil {
		lo, _ = shardRange(it.boundaries, it.start, it.end)
	}
	target := shardIndex(it.boundaries, key)
	if target < lo {
		target = lo
	}
	if target > it.hi {
		// Past the last overlapping shard: exhaust.
		if it.it != nil {
			it.closeCurrentShard()
		}
		it.cur = it.hi + 1
		it.exhausted = true
		return
	}
	if it.owned && target < it.cur {
		target = it.cur // earlier shards' pins are gone: forward-only
	}
	if it.exhausted {
		if it.owned {
			return
		}
		it.exhausted = false
	}
	// Copy the seek key into the reusable scratch: the scan machinery
	// retains it (as a lower bound) until the next seek overwrites it.
	it.a.seekBuf = append(it.a.seekBuf[:0], key...)
	key = it.a.seekBuf
	if target == it.cur && it.it != nil {
		it.it.SeekGE(key)
		return
	}
	if it.it != nil && !it.closeCurrentShard() {
		return
	}
	// Skip over shards the seek jumps past, releasing owned pins promptly.
	if it.owned {
		for i := it.cur; i < target; i++ {
			if it.snaps[i] != nil {
				if err := it.snaps[i].Release(); err != nil && it.err == nil {
					it.err = err
				}
				it.snaps[i] = nil
			}
		}
	}
	it.cur = target
	it.pendingSeek = key
}

// Valid reports whether the iterator is positioned on an item.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current sort key. Only valid after a true Next; the slice
// is valid until the next Next or SeekGE call.
func (it *Iterator) Key() []byte { return it.key }

// DeleteKey returns the current entry's secondary delete key.
func (it *Iterator) DeleteKey() DeleteKey { return it.dkey }

// Value returns the current value; the slice is valid until the next Next
// or SeekGE call.
func (it *Iterator) Value() []byte { return it.value }

// Error returns the first error the iteration encountered, if any.
func (it *Iterator) Error() error { return it.err }

// Close releases every pin the iterator still holds, recycles the cursor
// state into the pool, and returns the first error the iteration
// encountered. Idempotent. Closing promptly matters twice over: the pins
// keep obsolete sstables alive on disk, and the recycled state is what
// makes the next iterator allocation-free.
func (it *Iterator) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	it.valid = false
	if it.it != nil {
		if err := it.it.Close(); err != nil && it.err == nil {
			it.err = err
		}
		it.it = nil
	}
	if it.owned {
		for i, sn := range it.snaps {
			if sn != nil {
				if err := sn.Release(); err != nil && it.err == nil {
					it.err = err
				}
				it.snaps[i] = nil
			}
		}
	}
	// Drop every view before the pool hands the state to the next cursor.
	// Key/value slices the caller captured without CloneBytes are invalid
	// from here on, per the contract.
	it.snaps = nil
	it.boundaries = nil
	it.start, it.end, it.pendingSeek = nil, nil, nil
	it.key, it.value = nil, nil
	if it.a != nil {
		a := it.a
		it.a = nil
		a.recycle()
	}
	return it.err
}
