package lethe

// Iterator walks a snapshot of a key range in ascending key order. It is
// created by DB.NewIter, which materializes the merged view (buffer + every
// run, tombstones applied) under the engine lock; iteration itself is then
// lock-free and unaffected by concurrent writes — a consistent snapshot of
// the moment the iterator was created.
type Iterator struct {
	items []Item
	pos   int // position of the item Next will move onto, 1-based after first Next
}

// NewIter returns an iterator over live keys in [start, end) (nil end =
// unbounded). The iterator starts positioned before the first item:
//
//	it, err := db.NewIter(nil, nil)
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
func (db *DB) NewIter(start, end []byte) (*Iterator, error) {
	var items []Item
	err := db.inner.Scan(start, end, func(k []byte, d DeleteKey, v []byte) bool {
		items = append(items, Item{
			Key:   append([]byte(nil), k...),
			DKey:  d,
			Value: append([]byte(nil), v...),
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return &Iterator{items: items}, nil
}

// Next advances to the next item, returning false when exhausted. After a
// false return the iterator is invalid for good.
func (it *Iterator) Next() bool {
	if it.pos >= len(it.items) {
		it.pos = len(it.items) + 1 // past-the-end: Valid() turns false
		return false
	}
	it.pos++
	return true
}

// Valid reports whether the iterator is positioned on an item.
func (it *Iterator) Valid() bool { return it.pos >= 1 && it.pos <= len(it.items) }

// Key returns the current sort key. Only valid after a true Next.
func (it *Iterator) Key() []byte { return it.items[it.pos-1].Key }

// DeleteKey returns the current entry's secondary delete key.
func (it *Iterator) DeleteKey() DeleteKey { return it.items[it.pos-1].DKey }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.items[it.pos-1].Value }

// Len returns the total number of items in the snapshot.
func (it *Iterator) Len() int { return len(it.items) }
