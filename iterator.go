package lethe

import (
	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/lsm"
)

// Cross-shard merging scans.
//
// A sharded database serves Scan and NewIter with a lazy k-way merge over
// per-shard scan streams: each overlapping shard contributes an
// lsm.ScanIter (a pull-based, tombstone-resolved stream pinning that
// shard's snapshot), and compaction.NewMergeIter — the same machinery every
// compaction and single-instance scan runs on — interleaves them in key
// order. Shard ranges are disjoint, so the merge degenerates to
// concatenation in shard order, but the heap keeps the code oblivious to
// boundary placement. Entries stream on demand: a scan abandoned after ten
// keys reads roughly ten keys' worth of pages from one shard, regardless of
// shard count.

// shardMergeIter is the merged cross-shard stream. Close releases every
// shard's pinned snapshot.
type shardMergeIter struct {
	iters  []*lsm.ScanIter
	merged compaction.Iterator
}

// newShardMergeIter opens per-shard scan iterators for the shards
// overlapping [start, end) and merges them. The per-shard snapshots are
// taken as this returns, in shard order; the merge itself is lazy.
func (db *DB) newShardMergeIter(start, end []byte) (*shardMergeIter, error) {
	lo, hi := 0, len(db.shards)-1
	if start != nil || end != nil {
		lo, hi = shardRange(db.boundaries, start, end)
	}
	it := &shardMergeIter{}
	inputs := make([]compaction.Iterator, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		si, err := db.shards[i].NewScanIter(start, end)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.iters = append(it.iters, si)
		inputs = append(inputs, si)
	}
	it.merged = compaction.NewMergeIter(compaction.MergeConfig{}, inputs...)
	return it, nil
}

// Next returns the next live entry across all shards in ascending key
// order.
func (it *shardMergeIter) Next() (base.Entry, bool) { return it.merged.Next() }

// Close releases every shard's snapshot, returning the first error from the
// underlying streams. Idempotent.
func (it *shardMergeIter) Close() error {
	var first error
	for _, si := range it.iters {
		if err := si.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Iterator walks a snapshot of a key range in ascending key order. It is
// created by DB.NewIter, which materializes the merged view (buffer + every
// run, tombstones applied; all shards, merged in key order, when sharded)
// as of the moment the iterator was created; iteration itself is then
// lock-free and unaffected by concurrent writes.
type Iterator struct {
	items []Item
	pos   int // position of the item Next will move onto, 1-based after first Next
}

// NewIter returns an iterator over live keys in [start, end) (nil end =
// unbounded; an empty or inverted range yields an empty iterator). The
// iterator starts positioned before the first item:
//
//	it, err := db.NewIter(nil, nil)
//	for it.Next() {
//	    use(it.Key(), it.Value())
//	}
func (db *DB) NewIter(start, end []byte) (*Iterator, error) {
	var items []Item
	err := db.Scan(start, end, func(k []byte, d DeleteKey, v []byte) bool {
		items = append(items, Item{
			Key:   append([]byte(nil), k...),
			DKey:  d,
			Value: append([]byte(nil), v...),
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	return &Iterator{items: items}, nil
}

// Next advances to the next item, returning false when exhausted. After a
// false return the iterator is invalid for good.
func (it *Iterator) Next() bool {
	if it.pos >= len(it.items) {
		it.pos = len(it.items) + 1 // past-the-end: Valid() turns false
		return false
	}
	it.pos++
	return true
}

// Valid reports whether the iterator is positioned on an item.
func (it *Iterator) Valid() bool { return it.pos >= 1 && it.pos <= len(it.items) }

// Key returns the current sort key. Only valid after a true Next.
func (it *Iterator) Key() []byte { return it.items[it.pos-1].Key }

// DeleteKey returns the current entry's secondary delete key.
func (it *Iterator) DeleteKey() DeleteKey { return it.items[it.pos-1].DKey }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.items[it.pos-1].Value }

// Len returns the total number of items in the snapshot.
func (it *Iterator) Len() int { return len(it.items) }
