package lethe

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lethe/internal/vfs"
)

// writeShardManifestRaw installs a crafted SHARDS file.
func writeShardManifestRaw(t *testing.T, fs vfs.FS, m interface{}) {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(shardManifestName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardManifestRejectsCorrupt: every structural defect in a SHARDS file
// must surface as ErrShardLayout at load, not as a nonsense routing table.
func TestShardManifestRejectsCorrupt(t *testing.T) {
	cases := []struct {
		name string
		m    shardManifest
	}{
		{"unknown version", shardManifest{Version: 99, Boundaries: [][]byte{{0x80}}}},
		{"unsorted boundaries", shardManifest{Version: 1, Boundaries: [][]byte{{0x80}, {0x40}}}},
		{"duplicate boundaries", shardManifest{Version: 1, Boundaries: [][]byte{{0x80}, {0x80}}}},
		{"empty boundary", shardManifest{Version: 1, Boundaries: [][]byte{{}}}},
		{"epoch zero", shardManifest{Version: 2, ShardIDs: []int{0, 1}, NextShardID: 2, Boundaries: [][]byte{{0x80}}}},
		{"id arity mismatch", shardManifest{Version: 2, Epoch: 3, ShardIDs: []int{0}, NextShardID: 1, Boundaries: [][]byte{{0x80}}}},
		{"duplicate ids", shardManifest{Version: 2, Epoch: 3, ShardIDs: []int{1, 1}, NextShardID: 2, Boundaries: [][]byte{{0x80}}}},
		{"id out of range", shardManifest{Version: 2, Epoch: 3, ShardIDs: []int{0, 7}, NextShardID: 2, Boundaries: [][]byte{{0x80}}}},
	}
	for _, c := range cases {
		fs := vfs.NewMem()
		writeShardManifestRaw(t, fs, c.m)
		if _, _, err := loadShardManifest(fs); !errors.Is(err, ErrShardLayout) {
			t.Errorf("%s: err = %v, want ErrShardLayout", c.name, err)
		}
		// The same defect must also refuse a full Open.
		if _, err := Open(Options{Storage: StorageOptions{FS: fs}}); !errors.Is(err, ErrShardLayout) {
			t.Errorf("%s: Open err = %v, want ErrShardLayout", c.name, err)
		}
	}

	// Garbage bytes are a decode error, not a layout.
	fs := vfs.NewMem()
	f, err := fs.Create(shardManifestName)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("not json")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, _, err := loadShardManifest(fs); err == nil {
		t.Error("garbage manifest loaded without error")
	}
}

func fillShards(t testing.TB, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func checkShards(t testing.TB, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		v, err := db.Get(shardKey(i))
		if err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("key %d: %q %v", i, v, err)
		}
	}
}

// TestSplitShardBasic: split a loaded shard, verify routing, epoch, stats,
// continued writability, and a clean reopen on the new layout.
func TestSplitShardBasic(t *testing.T) {
	fs := vfs.NewMem()
	db := openSharded(t, fs, 2)
	defer db.Close()
	const n = 2500
	fillShards(t, db, n)

	epoch := db.ShardEpoch()
	if err := db.SplitShard(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.ShardCount(); got != 3 {
		t.Fatalf("ShardCount = %d, want 3", got)
	}
	if got := db.ShardEpoch(); got != epoch+1 {
		t.Fatalf("ShardEpoch = %d, want %d", got, epoch+1)
	}
	rs := db.ReshardStats()
	if rs.Splits != 1 || rs.Epoch != epoch+1 {
		t.Fatalf("ReshardStats = %+v", rs)
	}
	if rs.FilesHandedOff == 0 && rs.StraddlerRewrites == 0 {
		t.Fatal("split moved nothing")
	}
	// No leftover intent, and no stale root engine files.
	if fileExists(fs, reshardIntentName) {
		t.Fatal("RESHARD intent survived a completed split")
	}
	checkShards(t, db, n)

	// The new layout accepts writes and routes them correctly.
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), []byte(fmt.Sprintf("v2-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Storage: StorageOptions{FS: fs}, BufferBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.ShardCount(); got != 3 {
		t.Fatalf("reopened ShardCount = %d, want 3", got)
	}
	if got := db2.ShardEpoch(); got != epoch+1 {
		t.Fatalf("reopened ShardEpoch = %d, want %d", got, epoch+1)
	}
	for i := 0; i < n; i++ {
		v, err := db2.Get(shardKey(i))
		if err != nil || string(v) != fmt.Sprintf("v2-%06d", i) {
			t.Fatalf("key %d after reopen: %q %v", i, v, err)
		}
	}
}

// TestRootedSplit: splitting a database opened without Shards converts it
// online from the root-directory layout into a sharded one.
func TestRootedSplit(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open(Options{Storage: StorageOptions{FS: fs}, BufferBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 1500
	fillShards(t, db, n)
	if db.ShardCount() != 1 || db.ShardEpoch() != 0 {
		t.Fatalf("unsharded baseline: count=%d epoch=%d", db.ShardCount(), db.ShardEpoch())
	}

	if err := db.SplitShard(0, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.ShardCount(); got != 2 {
		t.Fatalf("ShardCount = %d, want 2", got)
	}
	if got := db.ShardEpoch(); got != 1 {
		t.Fatalf("ShardEpoch = %d, want 1", got)
	}
	checkShards(t, db, n)
	// The root engine files must be gone: the data lives in shard dirs now.
	if fileExists(fs, "MANIFEST") {
		t.Fatal("root MANIFEST survived the rooted split")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Storage: StorageOptions{FS: fs}, BufferBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.ShardCount(); got != 2 {
		t.Fatalf("reopened ShardCount = %d, want 2", got)
	}
	checkShards(t, db2, n)
}

// TestMergeShardsBasic: merge adjacent shards repeatedly down to one,
// verifying data and reopen at each layout.
func TestMergeShardsBasic(t *testing.T) {
	fs := vfs.NewMem()
	db := openSharded(t, fs, 4)
	defer db.Close()
	const n = 400
	fillShards(t, db, n)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	epoch := db.ShardEpoch()
	for want := 3; want >= 1; want-- {
		if err := db.MergeShards(0); err != nil {
			t.Fatal(err)
		}
		if got := db.ShardCount(); got != want {
			t.Fatalf("ShardCount = %d, want %d", got, want)
		}
		checkShards(t, db, n)
	}
	if got := db.ShardEpoch(); got != epoch+3 {
		t.Fatalf("ShardEpoch = %d, want %d", got, epoch+3)
	}
	rs := db.ReshardStats()
	if rs.Merges != 3 {
		t.Fatalf("Merges = %d, want 3", rs.Merges)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Storage: StorageOptions{FS: fs}, BufferBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.ShardCount(); got != 1 {
		t.Fatalf("reopened ShardCount = %d, want 1", got)
	}
	checkShards(t, db2, n)
}

// TestSplitHandoffNoRewrite: a split whose cut falls between whole sstables
// hands every file off by rename — zero straddler rewrites. This is the
// tile-aligned fast path the design promises.
func TestSplitHandoffNoRewrite(t *testing.T) {
	fs := vfs.NewMem()
	db := openSharded(t, fs, 2)
	defer db.Close()
	// Two flushed files in shard 0, key-disjoint around 0x20.
	low := func(i int) []byte { return []byte{0x10, byte(i)} }
	high := func(i int) []byte { return []byte{0x30, byte(i)} }
	for i := 0; i < 50; i++ {
		if err := db.Put(low(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.Put(high(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	if err := db.SplitShard(0, []byte{0x20}); err != nil {
		t.Fatal(err)
	}
	rs := db.ReshardStats()
	if rs.StraddlerRewrites != 0 || rs.StraddlerRewriteBytes != 0 {
		t.Fatalf("aligned split rewrote %d files (%d bytes); want pure handoff",
			rs.StraddlerRewrites, rs.StraddlerRewriteBytes)
	}
	if rs.FilesHandedOff < 2 {
		t.Fatalf("FilesHandedOff = %d, want >= 2", rs.FilesHandedOff)
	}
	for i := 0; i < 50; i++ {
		if v, err := db.Get(low(i)); err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("low %d: %q %v", i, v, err)
		}
		if v, err := db.Get(high(i)); err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("high %d: %q %v", i, v, err)
		}
	}
}

// TestRangeDeleteAcrossReshard: primary and secondary range deletes keep
// their semantics across layout changes — tombstones laid down before a
// split still shadow across the cut, and deletes issued on the new layout
// span the new boundaries.
func TestRangeDeleteAcrossReshard(t *testing.T) {
	fs := vfs.NewMem()
	db := openSharded(t, fs, 2)
	defer db.Close()
	const n = 1500
	fillShards(t, db, n)

	// A range delete crossing what will become the split cut.
	if err := db.RangeDelete([]byte{0x20}, []byte{0x60}); err != nil {
		t.Fatal(err)
	}
	if err := db.SplitShard(0, nil); err != nil {
		t.Fatal(err)
	}
	inPrimary := func(i int) bool { b := byte(i * 37); return b >= 0x20 && b < 0x60 }
	for i := 0; i < n; i++ {
		v, err := db.Get(shardKey(i))
		if inPrimary(i) {
			if err != ErrNotFound {
				t.Fatalf("key %d should be range-deleted: %q %v", i, v, err)
			}
		} else if err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("key %d: %q %v", i, v, err)
		}
	}

	// A secondary range delete issued on the post-split layout.
	if _, err := db.SecondaryRangeDelete(100, 200); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, err := db.Get(shardKey(i))
		if inPrimary(i) || (i >= 100 && i < 200) {
			if err != ErrNotFound {
				t.Fatalf("key %d should be deleted: %q %v", i, v, err)
			}
		} else if err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("key %d: %q %v", i, v, err)
		}
	}

	// And a primary range delete crossing the new cut, then a merge back.
	if err := db.RangeDelete([]byte{0x60}, []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	if err := db.MergeShards(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b := byte(i * 37)
		v, err := db.Get(shardKey(i))
		if inPrimary(i) || (i >= 100 && i < 200) || (b >= 0x60 && b < 0x90) {
			if err != ErrNotFound {
				t.Fatalf("key %d should be deleted after merge: %q %v", i, v, err)
			}
		} else if err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("key %d after merge: %q %v", i, v, err)
		}
	}
}

// TestBatchAcrossEpochChange: a batch admitted on epoch N that collides
// with a layout swap must apply exactly once — never half against epoch N,
// half re-applied against N+1. Each batch range-deletes the whole space and
// rewrites every key; after Apply returns, every key must carry that
// batch's value, whatever resharding happened mid-flight.
func TestBatchAcrossEpochChange(t *testing.T) {
	fs := vfs.NewMem()
	db := openSharded(t, fs, 2)
	defer db.Close()
	// Filler spread across the key space gives the concurrent splits real
	// tile boundaries to cut at; its integrity is not checked here (the
	// batches' range deletes overlap some of it).
	fillShards(t, db, 2000)
	const nk = 24
	keys := make([][]byte, nk)
	for i := range keys {
		keys[i] = []byte{byte(i * 255 / nk), byte(i)}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Churn the layout; individual failures (nothing to split at,
			// bounds raced) are fine — the epoch still advances often.
			if c := db.ShardCount(); c < 5 {
				_ = db.SplitShard(i%c, nil)
			} else {
				_ = db.MergeShards(0)
			}
		}
	}()

	for r := 0; r < 40; r++ {
		b := NewBatch()
		b.RangeDelete([]byte{0x00}, []byte{0xff, 0xff})
		val := []byte(fmt.Sprintf("round-%03d", r))
		for i, k := range keys {
			b.Put(k, DeleteKey(i), val)
		}
		if err := db.Apply(b); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		for i, k := range keys {
			v, err := db.Get(k)
			if err != nil || !bytes.Equal(v, val) {
				t.Fatalf("round %d key %d: %q %v (half-applied batch)", r, i, v, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestReshardCrashSafety sweeps a fault point across every filesystem
// operation of a shard split: after the "crash" (all subsequent I/O fails,
// the handle is abandoned), reopening the underlying store must land on
// exactly the old or the new layout — never between — with every key
// readable.
func TestReshardCrashSafety(t *testing.T) {
	errInjected := errors.New("injected reshard fault")
	const n = 600
	for fault := int64(1); fault < 3000; fault++ {
		mem := vfs.NewMem()
		var armed atomic.Bool
		var ops atomic.Int64
		inj := vfs.NewInject(mem, func(op vfs.Op, name string) error {
			if !armed.Load() {
				return nil
			}
			if ops.Add(1) > fault {
				return errInjected
			}
			return nil
		})
		db, err := Open(Options{Storage: StorageOptions{FS: inj}, Shards: 2, BufferBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		fillShards(t, db, n)
		oldEpoch := db.ShardEpoch()
		armed.Store(true)
		splitErr := db.SplitShard(0, nil)
		fired := ops.Load() > fault
		// Crash: abandon the handle with the disk dead (armed stays true, so
		// the zombie instance can never touch mem again), reopen the store.
		db2, err := Open(Options{Storage: StorageOptions{FS: mem}, BufferBytes: 16 << 10})
		if err != nil {
			t.Fatalf("fault=%d: reopen after crash: %v (split err: %v)", fault, err, splitErr)
		}
		epoch, count := db2.ShardEpoch(), db2.ShardCount()
		switch {
		case epoch == oldEpoch && count == 2: // rolled back
		case epoch == oldEpoch+1 && count == 3: // rolled forward
		default:
			t.Fatalf("fault=%d: recovered to epoch %d with %d shards (old epoch %d); split err: %v",
				fault, epoch, count, oldEpoch, splitErr)
		}
		if fileExists(mem, reshardIntentName) {
			t.Fatalf("fault=%d: RESHARD intent survived recovery", fault)
		}
		for i := 0; i < n; i++ {
			v, err := db2.Get(shardKey(i))
			if err != nil || !bytes.Equal(v, shardVal(i)) {
				t.Fatalf("fault=%d: key %d after recovery: %q %v", fault, i, v, err)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("fault=%d: close: %v", fault, err)
		}
		if splitErr == nil && !fired {
			// The whole split ran fault-free: the sweep has covered every
			// operation the protocol performs.
			return
		}
	}
	t.Fatal("fault sweep never reached a fault-free split")
}

// TestReshardTransientFaultRollback sweeps a one-shot fault (the disk heals
// immediately after) across the split protocol's cross-directory effects:
// the in-process rollback must undo the partial split, leave the handle on
// the old epoch with every key readable and writable, and a retry must then
// succeed.
func TestReshardTransientFaultRollback(t *testing.T) {
	errInjected := errors.New("injected transient fault")
	const n = 600
	for fault := int64(1); fault < 500; fault++ {
		mem := vfs.NewMem()
		var armed atomic.Bool
		var ops atomic.Int64
		// Count only the split's own cross-directory effects: the intent and
		// SHARDS records, anything in the (deterministically numbered) child
		// directories shard-2/ and shard-3/, and file moves out of the
		// donors. Donor-internal maintenance is left alone so the fault
		// cannot poison the donor engine itself.
		inj := vfs.NewInject(mem, func(op vfs.Op, name string) error {
			if !armed.Load() {
				return nil
			}
			interesting := strings.HasPrefix(name, "shard-2/") || strings.HasPrefix(name, "shard-3/") ||
				strings.HasPrefix(name, "SHARDS") || strings.HasPrefix(name, "RESHARD") ||
				(op == vfs.OpRename && strings.HasSuffix(name, ".sst"))
			if !interesting {
				return nil
			}
			if ops.Add(1) == fault {
				return errInjected
			}
			return nil
		})
		db, err := Open(Options{Storage: StorageOptions{FS: inj}, Shards: 2, BufferBytes: 4 << 10})
		if err != nil {
			t.Fatal(err)
		}
		fillShards(t, db, n)
		oldEpoch := db.ShardEpoch()
		armed.Store(true)
		splitErr := db.SplitShard(0, nil)
		armed.Store(false)
		if splitErr == nil {
			// Either the fault landed in the post-commit cleanup phase, where
			// failures are tolerated (the intent stays and the next Open
			// finishes the cleanup), or it never fired at all — in which case
			// the sweep has covered every operation.
			fired := ops.Load() >= fault
			if got := db.ShardCount(); got != 3 {
				t.Fatalf("fault=%d: split succeeded with ShardCount %d", fault, got)
			}
			checkShards(t, db, n)
			if err := db.Close(); err != nil {
				t.Fatalf("fault=%d: close: %v", fault, err)
			}
			if !fired {
				return
			}
			continue
		}
		if !errors.Is(splitErr, errInjected) {
			t.Fatalf("fault=%d: split failed with %v, want the injected fault", fault, splitErr)
		}
		if epoch, count := db.ShardEpoch(), db.ShardCount(); epoch != oldEpoch || count != 2 {
			t.Fatalf("fault=%d: rollback left epoch %d with %d shards", fault, epoch, count)
		}
		checkShards(t, db, n)
		if err := db.Put(shardKey(0), 0, shardVal(0)); err != nil {
			t.Fatalf("fault=%d: write after rollback: %v", fault, err)
		}
		// The disk is healthy again (one-shot fault): a retry must succeed.
		if err := db.SplitShard(0, nil); err != nil {
			t.Fatalf("fault=%d: retry split: %v", fault, err)
		}
		if got := db.ShardCount(); got != 3 {
			t.Fatalf("fault=%d: retry ShardCount = %d", fault, got)
		}
		checkShards(t, db, n)
		if err := db.Close(); err != nil {
			t.Fatalf("fault=%d: close: %v", fault, err)
		}
	}
	t.Fatal("fault sweep never reached a fault-free split")
}

// TestReshardStress: concurrent puts, gets, and scans race repeated splits
// and merges. Run under -race in CI with -count=10.
func TestReshardStress(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open(Options{Storage: StorageOptions{FS: fs}, Shards: 2, BufferBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	const n = 2000
	fillShards(t, db, n)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (i*7 + w*13) % n
				switch i % 3 {
				case 0:
					if err := db.Put(shardKey(k), DeleteKey(k), shardVal(k)); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				case 1:
					if v, err := db.Get(shardKey(k)); err != nil || !bytes.Equal(v, shardVal(k)) {
						t.Errorf("get %d: %q %v", k, v, err)
						return
					}
				case 2:
					it, err := db.NewIter(nil, nil)
					if err != nil {
						t.Errorf("iter: %v", err)
						return
					}
					for j := 0; j < 20 && it.Next(); j++ {
					}
					if err := it.Close(); err != nil {
						t.Errorf("iter close: %v", err)
						return
					}
				}
			}
		}(w)
	}

	reshards := 0
	for round := 0; round < 4 && !t.Failed(); round++ {
		for s := 0; s < db.ShardCount(); s++ {
			if db.SplitShard(s, nil) == nil {
				reshards++
				break
			}
		}
		if db.ShardCount() > 1 && db.MergeShards(0) == nil {
			reshards++
		}
	}
	close(stop)
	wg.Wait()
	if reshards < 2 {
		t.Fatalf("only %d reshards completed", reshards)
	}
	checkShards(t, db, n)
}

// TestReshardRejectedInSyncMode: without a maintenance pool there is no one
// to run the protocol; the layout is fixed.
func TestReshardRejectedInSyncMode(t *testing.T) {
	db, err := Open(Options{Storage: StorageOptions{FS: vfs.NewMem()}, DisableBackgroundMaintenance: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.SplitShard(0, nil); !errors.Is(err, ErrShardLayout) {
		t.Fatalf("sync split: %v, want ErrShardLayout", err)
	}
	if err := db.MergeShards(0); !errors.Is(err, ErrShardLayout) {
		t.Fatalf("sync merge: %v, want ErrShardLayout", err)
	}
}

// TestAutoReshardSplitsHotShard: with AutoReshard on, sustained write
// pressure (tiny buffer, single immutable slot) must stall writers, trip
// the balancer's stall-delta signal, and split the hot shard without any
// manual call.
func TestAutoReshardSplitsHotShard(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open(Options{
		Storage:             StorageOptions{FS: fs},
		BufferBytes:         4 << 10,
		MaxImmutableBuffers: 1,
		AutoReshard:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	deadline := time.Now().Add(30 * time.Second)
	i := 0
	for db.ShardCount() == 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no automatic split after %d writes; pressures: %+v, stats: %+v",
				i, db.ShardPressures(), db.ReshardStats())
		}
		k := i % 4096
		if err := db.Put(shardKey(k), DeleteKey(k), shardVal(k)); err != nil {
			t.Fatal(err)
		}
		i++
	}
	if rs := db.ReshardStats(); rs.Splits < 1 || rs.Epoch < 1 {
		t.Fatalf("ReshardStats after auto split: %+v", rs)
	}
	// The freshly split database still reads its own writes.
	for k := 0; k < 4096 && k < i; k++ {
		if v, err := db.Get(shardKey(k)); err != nil || !bytes.Equal(v, shardVal(k)) {
			t.Fatalf("key %d after auto split: %q %v", k, v, err)
		}
	}
}

// BenchmarkReshardConvergence starts one overloaded shard under AutoReshard
// and drives skewed writes until the balancer has split its way out, then
// compares the post-convergence write throughput against the same workload
// on a statically provisioned 4-shard database. converged-pct is the ratio
// (100 = parity with static); splits, rewrite bytes, and manifest ops show
// that split cost is dominated by manifest operations, not data rewriting.
func BenchmarkReshardConvergence(b *testing.B) {
	const (
		writers = 4
		valSize = 64
		runFor  = 3 * time.Second
		tail    = time.Second
	)
	val := bytes.Repeat([]byte{0xab}, valSize)
	// Skewed keys: 80% of writes land in the hot quarter of the key space.
	key := func(r *rand.Rand, buf []byte) []byte {
		hi := byte(r.Intn(256))
		if r.Intn(5) > 0 {
			hi = byte(r.Intn(64))
		}
		buf[0], buf[1], buf[2] = hi, byte(r.Intn(256)), byte(r.Intn(256))
		return buf
	}
	// run drives the skewed workload for runFor and returns the number of
	// puts completed in the final tail window — the post-convergence rate.
	run := func(db *DB) int64 {
		var total atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := rand.New(rand.NewSource(int64(42 + w)))
				buf := make([]byte, 3)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if err := db.Put(key(r, buf), DeleteKey(r.Intn(1000)), val); err != nil {
						b.Error(err)
						return
					}
					total.Add(1)
				}
			}(w)
		}
		time.Sleep(runFor - tail)
		before := total.Load()
		time.Sleep(tail)
		tailOps := total.Load() - before
		close(stop)
		wg.Wait()
		return tailOps
	}

	for i := 0; i < b.N; i++ {
		auto, err := Open(Options{
			Storage:             StorageOptions{FS: vfs.NewMem()},
			BufferBytes:         8 << 10,
			MaxImmutableBuffers: 1,
			AutoReshard:         true,
		})
		if err != nil {
			b.Fatal(err)
		}
		autoTail := run(auto)
		rs := auto.ReshardStats()
		shards := auto.ShardCount()
		auto.Close()

		static, err := Open(Options{
			Storage:             StorageOptions{FS: vfs.NewMem()},
			BufferBytes:         8 << 10,
			MaxImmutableBuffers: 1,
			Shards:              4,
		})
		if err != nil {
			b.Fatal(err)
		}
		staticTail := run(static)
		static.Close()

		if staticTail > 0 {
			b.ReportMetric(100*float64(autoTail)/float64(staticTail), "converged-pct")
		}
		b.ReportMetric(float64(shards), "final-shards")
		b.ReportMetric(float64(rs.Splits), "splits")
		b.ReportMetric(float64(rs.StraddlerRewriteBytes), "straddle-rewrite-B")
		b.ReportMetric(float64(rs.ManifestOps), "manifest-ops")
	}
}
