package lethe

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lethe/internal/vfs"
)

// TestStorageOptionsConflict: a field set both flat (deprecated) and inside
// Storage is a configuration error, not a precedence question.
func TestStorageOptionsConflict(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"fs", Options{FS: vfs.NewMem(), Storage: StorageOptions{FS: vfs.NewMem()}},
			"Options.FS and Options.Storage.FS"},
		{"block", Options{InMemory: true, BlockSizeBytes: 512,
			Storage: StorageOptions{BlockSizeBytes: 1024}},
			"Options.BlockSizeBytes and Options.Storage.BlockSizeBytes"},
		{"cache", Options{InMemory: true, CacheBytes: 1 << 20,
			Storage: StorageOptions{CacheBytes: 1 << 20}},
			"Options.CacheBytes and Options.Storage.CacheBytes"},
		{"placement-without-remote", Options{InMemory: true,
			Storage: StorageOptions{Placement: PlacementPolicy{LocalLevels: 2}}},
			"Storage.RemoteFS is nil"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestStorageOptionsAliases: the deprecated flat fields keep working and
// mean exactly what their Storage counterparts do.
func TestStorageOptionsAliases(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open(Options{FS: fs, BlockSizeBytes: 1024, CacheBytes: 1 << 20,
		DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen via the Storage form against the same filesystem.
	db2, err := Open(Options{Storage: StorageOptions{FS: fs, BlockSizeBytes: 1024,
		CacheBytes: 1 << 20}, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k")); err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("get after alias/Storage reopen: %q %v", v, err)
	}
}

// TestErrorSentinels: every documented failure mode is checkable with
// errors.Is against the exported sentinels.
func TestErrorSentinels(t *testing.T) {
	db, err := Open(Options{InMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: want ErrNotFound, got %v", err)
	}

	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Get([]byte("k")); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("released snapshot: want ErrReadOnlySnapshot, got %v", err)
	}
	if _, err := snap.NewIter(nil, nil); !errors.Is(err, ErrReadOnlySnapshot) {
		t.Fatalf("released snapshot iter: want ErrReadOnlySnapshot, got %v", err)
	}

	if err := db.Put([]byte("k"), 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	it, err := db.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Fatal("closed iterator advanced")
	}
	if !errors.Is(it.Error(), ErrIteratorClosed) {
		t.Fatalf("closed iterator: want ErrIteratorClosed, got %v", it.Error())
	}

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), 1, []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put on closed DB: want ErrClosed, got %v", err)
	}

	// Shard-layout rejections all wrap ErrShardLayout.
	if _, err := Open(Options{InMemory: true, Shards: 3,
		ShardBoundaries: [][]byte{[]byte("b"), []byte("a")}}); !errors.Is(err, ErrShardLayout) {
		t.Fatalf("bad boundaries: want ErrShardLayout, got %v", err)
	}
	if _, err := Open(Options{InMemory: true, Shards: maxShards + 1}); !errors.Is(err, ErrShardLayout) {
		t.Fatalf("too many shards: want ErrShardLayout, got %v", err)
	}
}

// TestTieredPublicAPI drives the tiered configuration end to end through
// the public surface: a modeled remote device, background maintenance,
// migration, stats, and reopen.
func TestTieredPublicAPI(t *testing.T) {
	local := vfs.NewMem()
	remoteDev := vfs.NewMem()
	remote := vfs.NewRemote(remoteDev, vfs.RemoteConfig{
		Latency:              50 * time.Microsecond,
		BandwidthBytesPerSec: 64 << 20,
	})
	open := func() *DB {
		db, err := Open(Options{
			Storage: StorageOptions{
				FS:        local,
				RemoteFS:  remote,
				Placement: PlacementPolicy{LocalLevels: 1},
			},
			BufferBytes: 8 << 10,
			SizeRatio:   4,
			DisableWAL:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	const n = 2000
	val := bytes.Repeat([]byte{'v'}, 64)
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%06d", i)), DeleteKey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Tier.RemoteFiles == 0 {
		t.Fatal("no files on the remote tier after maintenance")
	}
	if st.Tier.RemoteBytesWritten == 0 {
		t.Fatal("remote tier populated but no write traffic accounted")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open()
	defer db2.Close()
	st2 := db2.Stats()
	if st2.Tier.RemoteFiles != st.Tier.RemoteFiles {
		t.Fatalf("remote population changed across reopen: %d -> %d",
			st.Tier.RemoteFiles, st2.Tier.RemoteFiles)
	}
	for i := 0; i < n; i += 97 {
		v, err := db2.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("get %d after tiered reopen: %v", i, err)
		}
	}
	// A full scan must stream every key back from both tiers.
	seen := 0
	if err := db2.Scan(nil, nil, func(k []byte, _ DeleteKey, _ []byte) bool {
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Fatalf("tiered scan saw %d of %d keys", seen, n)
	}
}

// TestTieredShardedPublicAPI: each shard mirrors the tier split under its
// own prefix of the shared remote filesystem, and the aggregate stats sum
// the per-shard tier populations.
func TestTieredShardedPublicAPI(t *testing.T) {
	local, remote := vfs.NewMem(), vfs.NewMem()
	db, err := Open(Options{
		Storage: StorageOptions{
			FS:        local,
			RemoteFS:  remote,
			Placement: PlacementPolicy{LocalLevels: 1},
		},
		Shards:      2,
		BufferBytes: 8 << 10,
		SizeRatio:   4,
		DisableWAL:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	val := bytes.Repeat([]byte{'v'}, 64)
	for i := 0; i < 4000; i++ {
		// Spread keys across the full byte range so both shards fill.
		k := []byte{byte(i * 37), byte(i >> 8), byte(i)}
		if err := db.Put(k, DeleteKey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	agg := db.Stats()
	if agg.Tier.RemoteFiles == 0 {
		t.Fatal("sharded tiered DB placed nothing remote")
	}
	var sum int
	for _, s := range db.ShardStats() {
		sum += s.Tier.RemoteFiles
	}
	if sum != agg.Tier.RemoteFiles {
		t.Fatalf("aggregate RemoteFiles %d != per-shard sum %d", agg.Tier.RemoteFiles, sum)
	}
	// The remote filesystem must only hold files under shard prefixes.
	names, err := remote.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".sst") && !strings.HasPrefix(name, "shard-") {
			t.Fatalf("remote sstable %q outside any shard directory", name)
		}
	}
}
