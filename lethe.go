// Package lethe is a tunable delete-aware LSM-tree storage engine, a
// from-scratch Go reproduction of "Lethe: A Tunable Delete-Aware LSM Engine"
// (Sarkar, Papon, Staratzis, Athanassoulis — SIGMOD 2020).
//
// Lethe extends the classical LSM design with two components:
//
//   - FADE, a family of delete-aware compaction strategies that guarantee
//     every delete is persisted within a user-supplied threshold Dth by
//     assigning exponentially increasing time-to-live budgets to the tree's
//     levels and compacting files whose tombstones exceed them.
//
//   - KiWi, the Key Weaving Storage Layout: files are divided into delete
//     tiles of h pages; tiles are sorted on the sort key S while the pages
//     inside a tile are sorted on a secondary delete key D (entries within a
//     page stay sorted on S). Secondary range deletes ("drop everything
//     older than 30 days") then drop whole pages guided by in-memory delete
//     fences — no full-tree compaction.
//
// The baseline configuration (Mode BaselineSO, TilePages 1, Dth 0) behaves
// like a classical leveled LSM engine and is what the paper compares
// against.
//
// Basic usage:
//
//	db, err := lethe.Open(lethe.Options{InMemory: true, Dth: 24 * time.Hour})
//	...
//	db.Put([]byte("order-1042"), lethe.DeleteKey(time.Now().Unix()), payload)
//	value, err := db.Get([]byte("order-1042"))
//	db.SecondaryRangeDelete(0, lethe.DeleteKey(cutoff.Unix())) // purge old rows
package lethe

import (
	"errors"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/lsm"
	"lethe/internal/vfs"
)

// DeleteKey is the secondary delete key D attached to every entry —
// typically a creation timestamp. Secondary range deletes select on it.
type DeleteKey = base.DeleteKey

// Mode selects the compaction policy family.
type Mode = compaction.Mode

// The available compaction modes.
const (
	// ModeBaseline is the state-of-the-art configuration: saturation
	// triggers, min-overlap file selection, no persistence guarantee.
	ModeBaseline = compaction.ModeBaseline
	// ModeLethe enables FADE: TTL triggers with delete-driven selection.
	ModeLethe = compaction.ModeLethe
	// ModeLetheSO is the ablation combining FADE's trigger with the
	// baseline's overlap-driven selection.
	ModeLetheSO = compaction.ModeLetheSO
)

// Errors re-exported from the engine.
var (
	ErrNotFound = lsm.ErrNotFound
	ErrClosed   = lsm.ErrClosed
)

// WALSyncPolicy selects when commits sync the write-ahead log; see the
// constants below and the Options.WALSync documentation.
type WALSyncPolicy = lsm.WALSyncPolicy

// The available WAL sync policies.
const (
	// SyncGrouped (default) batches concurrent commits through the
	// group-commit pipeline and issues one sync per group: per-commit
	// durability at amortized cost.
	SyncGrouped = lsm.SyncGrouped
	// SyncAlways appends and syncs each commit individually, bypassing
	// group commit — the serialized path, maximal isolation, lowest
	// throughput.
	SyncAlways = lsm.SyncAlways
	// SyncNever defers durability to the OS and WAL segment rotation;
	// recently acknowledged groups may be lost whole on a crash.
	SyncNever = lsm.SyncNever
)

// Clock abstracts time for deterministic testing; see NewManualClock.
type Clock = base.Clock

// NewManualClock returns a manually advanced clock for tests and
// simulations.
func NewManualClock(start time.Time) *base.ManualClock { return base.NewManualClock(start) }

// Options configures a database.
type Options struct {
	// Path is the directory for on-disk databases. Ignored when InMemory.
	Path string
	// InMemory keeps everything in an in-memory filesystem — the substrate
	// all experiments run on.
	InMemory bool
	// Dth is the delete persistence threshold FADE enforces. Zero disables
	// the guarantee (baseline behavior).
	Dth time.Duration
	// TilePages is h, the number of pages per delete tile (1 = classical
	// layout; the paper's Table 1 reference uses 16). Use OptimalTileSize
	// to derive it from a workload profile.
	TilePages int
	// Mode selects the compaction policy family; defaults to ModeLethe
	// when Dth > 0, else ModeBaseline.
	Mode Mode
	// SizeRatio is T (default 10).
	SizeRatio int
	// BufferBytes is the memory buffer capacity M (default 2MiB = 512
	// pages of 4KiB).
	BufferBytes int
	// PageSize is the disk page size (default 4096).
	PageSize int
	// FilePages is the number of pages per sstable (default 256).
	FilePages int
	// BloomBitsPerKey sizes the Bloom filters (default 10).
	BloomBitsPerKey int
	// Tiering selects tiered merging instead of leveling.
	Tiering bool
	// SuppressBlindDeletes enables the filter pre-probe on Delete (§4.1.5).
	SuppressBlindDeletes bool
	// DisableWAL turns off write-ahead logging.
	DisableWAL bool
	// WALSync selects the commit-path durability policy: SyncGrouped (the
	// default) amortizes one sync per commit group, SyncAlways syncs every
	// commit individually on the serialized path, SyncNever defers
	// durability to the OS. See the tuning notes in tuning.go. Ignored when
	// DisableWAL is set.
	WALSync WALSyncPolicy
	// Clock overrides the time source (tests/simulations).
	Clock Clock
	// FS overrides the filesystem entirely (advanced; takes precedence over
	// Path/InMemory). Wrap with vfs.NewCounting to measure I/O.
	FS vfs.FS
	// CoverageEstimator estimates the key-domain fraction covered by a
	// primary range delete, used to weight range tombstones in FADE's file
	// selection.
	CoverageEstimator func(start, end []byte) float64
	// CacheBytes bounds the decoded-page cache shared across the tree's
	// files (RocksDB's block cache analogue). Zero disables it.
	CacheBytes int64
	// Seed fixes internal randomness for reproducibility.
	Seed int64
	// DisableBackgroundMaintenance turns off the background flush and
	// compaction pipeline: maintenance then runs inline inside the writing
	// goroutine, exactly as the paper's single-threaded experiments do. It
	// is forced on when a manual clock is injected via Clock, so
	// deterministic simulations stay deterministic without further
	// configuration.
	DisableBackgroundMaintenance bool
	// MaxImmutableBuffers bounds the queue of sealed buffers awaiting
	// background flush; writers stall (with stall metrics in Stats) while
	// the queue is full. Default 2. Ignored in synchronous mode.
	MaxImmutableBuffers int
	// CompactionWorkers is the number of compactions the background
	// scheduler may run concurrently. Default 1. Ignored in synchronous
	// mode.
	CompactionWorkers int
}

// DB is a Lethe database handle. It is safe for concurrent use.
//
// Reads never block behind maintenance: Get, Scan, NewIter, and
// SecondaryRangeScan take a refcounted snapshot of the tree under a brief
// internal lock and then run against immutable state, so a compaction or
// flush in flight cannot stall them. Writes flow through a group-commit
// pipeline: concurrent commits are batched into one WAL write and (per
// WALSync) one sync, with memory-buffer inserts running concurrently and
// sequence numbers published in submission order — see Stats().CommitGroups
// and friends for the batching it achieves. When the background flush queue
// is saturated, writers stall until the flush worker catches up (see
// Stats().WriteStalls). With DisableBackgroundMaintenance — automatic under
// a manual clock — commits serialize on the engine lock and all maintenance
// runs inline inside the writing goroutine, preserving the paper's
// deterministic single-threaded execution.
type DB struct {
	inner *lsm.DB
}

// Open creates or reopens a database.
func Open(opts Options) (*DB, error) {
	fs := opts.FS
	if fs == nil {
		if opts.InMemory {
			fs = vfs.NewMem()
		} else if opts.Path != "" {
			osfs, err := vfs.NewOS(opts.Path)
			if err != nil {
				return nil, err
			}
			fs = osfs
		} else {
			return nil, errors.New("lethe: set Path, InMemory, or FS")
		}
	}
	mode := opts.Mode
	if mode == ModeBaseline && opts.Dth > 0 {
		mode = ModeLethe
	}
	inner, err := lsm.Open(lsm.Options{
		FS:                   fs,
		Clock:                opts.Clock,
		SizeRatio:            opts.SizeRatio,
		BufferBytes:          opts.BufferBytes,
		PageSize:             opts.PageSize,
		FilePages:            opts.FilePages,
		TilePages:            opts.TilePages,
		BloomBitsPerKey:      opts.BloomBitsPerKey,
		Mode:                 mode,
		Dth:                  opts.Dth,
		Tiering:              opts.Tiering,
		SuppressBlindDeletes: opts.SuppressBlindDeletes,
		DisableWAL:           opts.DisableWAL,
		WALSync:              opts.WALSync,
		CoverageEstimator:    opts.CoverageEstimator,
		CacheBytes:           opts.CacheBytes,
		Seed:                 opts.Seed,

		DisableBackgroundMaintenance: opts.DisableBackgroundMaintenance,
		MaxImmutableBuffers:          opts.MaxImmutableBuffers,
		CompactionWorkers:            opts.CompactionWorkers,
	})
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// Put inserts or updates key with the given secondary delete key and value.
func (db *DB) Put(key []byte, dkey DeleteKey, value []byte) error {
	return db.inner.Put(key, dkey, value)
}

// Get returns the value stored for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	v, _, err := db.inner.Get(key)
	return v, err
}

// GetWithDeleteKey also returns the entry's secondary delete key.
func (db *DB) GetWithDeleteKey(key []byte) ([]byte, DeleteKey, error) {
	return db.inner.Get(key)
}

// Delete removes key (a point delete on the sort key).
func (db *DB) Delete(key []byte) error { return db.inner.Delete(key) }

// RangeDelete removes every key in [start, end) (a primary range delete).
func (db *DB) RangeDelete(start, end []byte) error { return db.inner.RangeDelete(start, end) }

// SecondaryRangeDelete removes every entry whose delete key lies in
// [lo, hi), using KiWi's page drops instead of a full-tree compaction. See
// SRDStats for what it did. Intended for write-once data keyed by creation
// time (the paper's DComp scenario); see the engine documentation for the
// multi-version caveat.
func (db *DB) SecondaryRangeDelete(lo, hi DeleteKey) (SRDStats, error) {
	st, err := db.inner.SecondaryRangeDelete(lo, hi)
	return SRDStats{
		FullPageDrops:    st.FullDrops,
		PartialPageDrops: st.PartialDrops,
		EntriesDropped:   st.EntriesDropped,
		PagesUntouched:   st.PagesUntouched,
	}, err
}

// SRDStats reports the work a secondary range delete performed.
type SRDStats struct {
	// FullPageDrops is the number of pages dropped without any I/O.
	FullPageDrops int
	// PartialPageDrops is the number of edge pages filtered in place.
	PartialPageDrops int
	// EntriesDropped is the number of entries removed.
	EntriesDropped int
	// PagesUntouched is the number of pages the delete fences excluded.
	PagesUntouched int
}

// Scan visits every live pair with start <= key < end (nil end = unbounded)
// in key order until fn returns false.
func (db *DB) Scan(start, end []byte, fn func(key []byte, dkey DeleteKey, value []byte) bool) error {
	return db.inner.Scan(start, end, fn)
}

// SecondaryRangeScan returns live entries with lo <= D < hi, served by the
// delete fences.
func (db *DB) SecondaryRangeScan(lo, hi DeleteKey) ([]Item, error) {
	entries, err := db.inner.SecondaryRangeScan(lo, hi)
	if err != nil {
		return nil, err
	}
	items := make([]Item, len(entries))
	for i, e := range entries {
		items[i] = Item{Key: e.Key.UserKey, DKey: e.DKey, Value: e.Value}
	}
	return items, nil
}

// Item is one key-value pair returned by secondary scans.
type Item struct {
	Key   []byte
	DKey  DeleteKey
	Value []byte
}

// Flush forces the memory buffer to disk.
func (db *DB) Flush() error { return db.inner.Flush() }

// Maintain runs compactions until no trigger (saturation or TTL expiry)
// fires. In synchronous mode writes invoke it automatically; call it after
// advancing a manual clock. In background mode it kicks the workers and
// blocks until the maintenance pipeline is quiescent — useful as a barrier
// in tests and batch jobs.
func (db *DB) Maintain() error { return db.inner.Maintain() }

// FullTreeCompact merges the entire tree into its last level — the
// baseline's (expensive) way to persist deletes.
func (db *DB) FullTreeCompact() error { return db.inner.FullTreeCompact() }

// Close flushes and releases the database.
func (db *DB) Close() error { return db.inner.Close() }

// Stats returns engine statistics.
func (db *DB) Stats() lsm.Stats { return db.inner.Stats() }

// SpaceAmp measures the current space amplification (full scan; a
// diagnostic, not a hot-path call).
func (db *DB) SpaceAmp() (float64, error) { return db.inner.SpaceAmp() }

// TombstoneAges returns the per-file tombstone age distribution.
func (db *DB) TombstoneAges() []lsm.TombstoneAgeBucket { return db.inner.TombstoneAges() }

// MaxTombstoneAge returns the oldest tombstone age in the tree.
func (db *DB) MaxTombstoneAge() time.Duration { return db.inner.MaxTombstoneAge() }

// NumLevels returns the current number of disk levels.
func (db *DB) NumLevels() int { return db.inner.NumLevels() }

// TTLs returns the cumulative per-level TTL thresholds FADE currently
// enforces.
func (db *DB) TTLs() []time.Duration { return db.inner.TTLs() }

// Batch collects operations for atomic application: either all of a synced
// batch's operations survive a crash or (for an unsynced tail) a prefix in
// submission order — never an interleaving.
type Batch struct {
	ops []lsm.BatchOp
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put queues an insert/update.
func (b *Batch) Put(key []byte, dkey DeleteKey, value []byte) *Batch {
	b.ops = append(b.ops, lsm.BatchOp{Kind: base.KindSet,
		Key: append([]byte(nil), key...), DKey: dkey, Value: append([]byte(nil), value...)})
	return b
}

// Delete queues a point delete.
func (b *Batch) Delete(key []byte) *Batch {
	b.ops = append(b.ops, lsm.BatchOp{Kind: base.KindDelete, Key: append([]byte(nil), key...)})
	return b
}

// RangeDelete queues a primary range delete on [start, end).
func (b *Batch) RangeDelete(start, end []byte) *Batch {
	b.ops = append(b.ops, lsm.BatchOp{Kind: base.KindRangeDelete,
		Key: append([]byte(nil), start...), EndKey: append([]byte(nil), end...)})
	return b
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Apply applies the batch atomically and clears it.
func (db *DB) Apply(b *Batch) error {
	err := db.inner.ApplyBatch(b.ops)
	if err == nil {
		b.ops = b.ops[:0]
	}
	return err
}
