// Package lethe is a tunable delete-aware LSM-tree storage engine, a
// from-scratch Go reproduction of "Lethe: A Tunable Delete-Aware LSM Engine"
// (Sarkar, Papon, Staratzis, Athanassoulis — SIGMOD 2020).
//
// Lethe extends the classical LSM design with two components:
//
//   - FADE, a family of delete-aware compaction strategies that guarantee
//     every delete is persisted within a user-supplied threshold Dth by
//     assigning exponentially increasing time-to-live budgets to the tree's
//     levels and compacting files whose tombstones exceed them.
//
//   - KiWi, the Key Weaving Storage Layout: files are divided into delete
//     tiles of h pages; tiles are sorted on the sort key S while the pages
//     inside a tile are sorted on a secondary delete key D (entries within a
//     page stay sorted on S). Secondary range deletes ("drop everything
//     older than 30 days") then drop whole pages guided by in-memory delete
//     fences — no full-tree compaction.
//
// The baseline configuration (Mode BaselineSO, TilePages 1, Dth 0) behaves
// like a classical leveled LSM engine and is what the paper compares
// against.
//
// Basic usage:
//
//	db, err := lethe.Open(lethe.Options{InMemory: true, Dth: 24 * time.Hour})
//	...
//	db.Put([]byte("order-1042"), lethe.DeleteKey(time.Now().Unix()), payload)
//	value, err := db.Get([]byte("order-1042"))
//	db.SecondaryRangeDelete(0, lethe.DeleteKey(cutoff.Unix())) // purge old rows
package lethe

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/lsm"
	"lethe/internal/runtime"
	"lethe/internal/sstable"
	"lethe/internal/vfs"
)

// RuntimeStats describes the shared maintenance runtime: the global worker
// pool, queue, memory budget, I/O rate limiter, and page cache that span
// every shard. See DB.RuntimeStats.
type RuntimeStats = runtime.Stats

// DeleteKey is the secondary delete key D attached to every entry —
// typically a creation timestamp. Secondary range deletes select on it.
type DeleteKey = base.DeleteKey

// Mode selects the compaction policy family.
type Mode = compaction.Mode

// The available compaction modes.
const (
	// ModeBaseline is the state-of-the-art configuration: saturation
	// triggers, min-overlap file selection, no persistence guarantee.
	ModeBaseline = compaction.ModeBaseline
	// ModeLethe enables FADE: TTL triggers with delete-driven selection.
	ModeLethe = compaction.ModeLethe
	// ModeLetheSO is the ablation combining FADE's trigger with the
	// baseline's overlap-driven selection.
	ModeLetheSO = compaction.ModeLetheSO
)

// Error contract: every error a public DB, Snapshot, or Iterator method
// returns is one of the sentinels below (or wraps one), so callers branch
// with errors.Is rather than string matching:
//
//   - ErrNotFound — Get on a key that does not exist or was deleted.
//   - ErrClosed — any operation on a closed DB.
//   - ErrReadOnlySnapshot — reads on a Snapshot after Release.
//   - ErrIteratorClosed — Iterator use after Close (iterator.go).
//   - ErrCorruption — integrity failures from VerifyTables and reads.
//   - ErrShardLayout — invalid shard configuration at Open (bad boundary
//     keys, a shard count conflicting with the database's recorded layout,
//     sharding over an existing unsharded filesystem) and invalid reshard
//     requests (SplitShard/MergeShards with an out-of-range shard, a
//     boundary outside the shard's key range, or on a synchronous-mode
//     database, which has no maintenance pool to reshard with).
//
// Configuration mistakes caught by Open (missing filesystem, conflicting
// deprecated aliases) return plain descriptive errors; everything reachable
// at runtime maps to a sentinel.
var (
	ErrNotFound = lsm.ErrNotFound
	ErrClosed   = lsm.ErrClosed
	// ErrReadOnlySnapshot is returned by reads on a released Snapshot: the
	// view is gone, not merely stale.
	ErrReadOnlySnapshot = lsm.ErrSnapshotReleased
	// ErrShardLayout is wrapped by every shard-layout rejection at Open and
	// by rejected SplitShard/MergeShards requests.
	ErrShardLayout = errors.New("lethe: invalid shard layout")
)

// WALSyncPolicy selects when commits sync the write-ahead log; see the
// constants below and the Options.WALSync documentation.
type WALSyncPolicy = lsm.WALSyncPolicy

// The available WAL sync policies.
const (
	// SyncGrouped (default) batches concurrent commits through the
	// group-commit pipeline and issues one sync per group: per-commit
	// durability at amortized cost.
	SyncGrouped = lsm.SyncGrouped
	// SyncAlways appends and syncs each commit individually, bypassing
	// group commit — the serialized path, maximal isolation, lowest
	// throughput.
	SyncAlways = lsm.SyncAlways
	// SyncNever defers durability to the OS and WAL segment rotation;
	// recently acknowledged groups may be lost whole on a crash.
	SyncNever = lsm.SyncNever
)

// Clock abstracts time for deterministic testing; see NewManualClock.
type Clock = base.Clock

// PlacementPolicy decides which levels of the tree live on the local tier
// and which on StorageOptions.RemoteFS. See "Tiered storage" in tuning.go.
type PlacementPolicy = lsm.PlacementPolicy

// SSTable format versions for StorageOptions.SSTableFormat.
const (
	// SSTableFormatV1 is the original fixed-page KiWi layout.
	SSTableFormatV1 = sstable.FormatV1
	// SSTableFormatV2 (the default) is the block layout: prefix
	// compression, restart points, per-block checksums.
	SSTableFormatV2 = sstable.FormatV2
)

// StorageOptions groups everything about where and how bytes land: the
// filesystems, the local/remote tier split, the on-disk block geometry, and
// the page-cache budget. The zero value means "local only, defaults
// throughout".
type StorageOptions struct {
	// FS overrides the filesystem entirely (advanced; takes precedence
	// over Options.Path/InMemory). Wrap with vfs.NewCounting to measure
	// I/O.
	FS vfs.FS
	// RemoteFS, when non-nil, enables tiered placement: levels at or past
	// Placement.LocalLevels keep their sstables here while the WAL, the
	// manifest, and the hot levels stay on the local filesystem. Wrap it
	// in a vfs.RemoteFS to model a remote device's latency and bandwidth.
	// Compaction migrates runs across the boundary as they move down the
	// tree; a run's tier is recorded in the manifest and survives reopen.
	// See "Tiered storage" in tuning.go.
	RemoteFS vfs.FS
	// Placement assigns levels to tiers; meaningful only with RemoteFS.
	// The zero value keeps one level local.
	Placement PlacementPolicy
	// BlockSizeBytes is the target encoded size of an sstable data block
	// (default: the page size, preserving the classical per-read cost).
	// Larger blocks compress and scan better; smaller blocks cost less
	// I/O and decode per point lookup. See "Block size" in tuning.go.
	BlockSizeBytes int
	// CacheBytes bounds the decoded-page cache (RocksDB's block cache
	// analogue). This is a whole-database budget: with Shards > 1 every
	// shard shares one cache. Zero disables it.
	CacheBytes int64
	// SSTableFormat pins the format version new sstables are written with
	// (SSTableFormatV2 when zero). Only compatibility tests set it;
	// readers always open both formats.
	SSTableFormat int
}

// NewManualClock returns a manually advanced clock for tests and
// simulations.
func NewManualClock(start time.Time) *base.ManualClock { return base.NewManualClock(start) }

// Options configures a database.
type Options struct {
	// Path is the directory for on-disk databases. Ignored when InMemory.
	Path string
	// InMemory keeps everything in an in-memory filesystem — the substrate
	// all experiments run on.
	InMemory bool
	// Dth is the delete persistence threshold FADE enforces. Zero disables
	// the guarantee (baseline behavior).
	Dth time.Duration
	// TilePages is h, the number of pages per delete tile (1 = classical
	// layout; the paper's Table 1 reference uses 16). Use OptimalTileSize
	// to derive it from a workload profile.
	TilePages int
	// Mode selects the compaction policy family; defaults to ModeLethe
	// when Dth > 0, else ModeBaseline.
	Mode Mode
	// SizeRatio is T (default 10).
	SizeRatio int
	// BufferBytes is the memory buffer capacity M (default 2MiB = 512
	// pages of 4KiB).
	BufferBytes int
	// PageSize is the disk page size (default 4096).
	PageSize int
	// FilePages is the number of pages per sstable (default 256).
	FilePages int
	// BlockSizeBytes is the target encoded size of an sstable data block.
	//
	// Deprecated: use Storage.BlockSizeBytes. Setting both is an error.
	BlockSizeBytes int
	// BloomBitsPerKey sizes the Bloom filters (default 10).
	BloomBitsPerKey int
	// Tiering selects tiered merging instead of leveling.
	Tiering bool
	// SuppressBlindDeletes enables the filter pre-probe on Delete (§4.1.5).
	SuppressBlindDeletes bool
	// DisableWAL turns off write-ahead logging.
	DisableWAL bool
	// WALSync selects the commit-path durability policy: SyncGrouped (the
	// default) amortizes one sync per commit group, SyncAlways syncs every
	// commit individually on the serialized path, SyncNever defers
	// durability to the OS. See the tuning notes in tuning.go. Ignored when
	// DisableWAL is set.
	WALSync WALSyncPolicy
	// Clock overrides the time source (tests/simulations).
	Clock Clock
	// FS overrides the filesystem entirely.
	//
	// Deprecated: use Storage.FS. Setting both is an error.
	FS vfs.FS
	// Storage groups the filesystem, tiering, block geometry, and cache
	// configuration. The flat FS, BlockSizeBytes, and CacheBytes fields
	// remain as deprecated aliases; Open resolves them into Storage and
	// rejects an Options value that sets a field both ways.
	Storage StorageOptions
	// CoverageEstimator estimates the key-domain fraction covered by a
	// primary range delete, used to weight range tombstones in FADE's file
	// selection.
	CoverageEstimator func(start, end []byte) float64
	// CacheBytes bounds the decoded-page cache.
	//
	// Deprecated: use Storage.CacheBytes. Setting both is an error.
	CacheBytes int64
	// Seed fixes internal randomness for reproducibility.
	Seed int64
	// DisableBackgroundMaintenance turns off the background flush and
	// compaction pipeline: maintenance then runs inline inside the writing
	// goroutine, exactly as the paper's single-threaded experiments do. It
	// is forced on when a manual clock is injected via Clock, so
	// deterministic simulations stay deterministic without further
	// configuration.
	DisableBackgroundMaintenance bool
	// MaxImmutableBuffers bounds the queue of sealed buffers awaiting
	// background flush; writers stall (with stall metrics in Stats) while
	// the queue is full. Default 2. Ignored in synchronous mode.
	MaxImmutableBuffers int
	// CompactionWorkers sizes the shared maintenance pool: the number of
	// goroutines executing compactions across the whole database (plus one
	// dedicated flush lane, so a flush never waits behind a long merge).
	// With Shards > 1 the pool is global — shards feed one priority queue
	// (flushes first, then compactions by FADE urgency across shards)
	// rather than each spawning its own workers, so the maintenance
	// goroutine count never scales with the shard count. Default 1.
	// Ignored in synchronous mode.
	CompactionWorkers int
	// Subcompactions caps how many key-range subcompactions a single
	// compaction (or tier-migration) job may fan out into. A job splits its
	// input key space at existing delete-tile boundaries into byte-balanced
	// subranges and merges them concurrently, concatenating the outputs in
	// key order — semantically identical to the serial merge, just faster on
	// a multi-core host. The extra pipelines borrow slots from the
	// CompactionWorkers pool, so total merge parallelism across all shards
	// never exceeds the pool size and the CompactionRateBytes limiter still
	// paces aggregate maintenance I/O; under a busy pool a job shrinks its
	// fan-out instead of oversubscribing. Default 1 (serial jobs). Ignored
	// in synchronous mode, which stays strictly serial and deterministic.
	// See "Compaction parallelism" in tuning.go.
	Subcompactions int
	// MemoryBudget bounds the total memtable bytes (mutable buffers plus
	// sealed buffers awaiting flush) across all shards. When the sum
	// exceeds it, writers to shards at or above their fair share
	// (MemoryBudget/Shards) stall until the shared pool flushes the
	// backlog; writers to under-share shards proceed, so one hot shard
	// cannot starve the others. Zero disables the budget (each shard is
	// then bounded only by its own BufferBytes and MaxImmutableBuffers).
	// Ignored in synchronous mode. See DB.RuntimeStats for stall metrics.
	MemoryBudget int64
	// CompactionRateBytes caps maintenance write I/O — flush and
	// compaction sstable builds, across all shards — in bytes per second
	// via a token bucket at the filesystem layer, so background merges
	// stop trampling foreground read latency on a shared device. Foreground
	// WAL appends and reads are never throttled. Zero means unlimited.
	// Ignored in synchronous mode. See DB.RuntimeStats for throttle time.
	CompactionRateBytes int64
	// Shards partitions the database by sort-key range into this many
	// independent LSM instances, each with its own buffer, WAL directory,
	// and maintenance pipeline (see shard.go and the guidance in tuning.go).
	// Default 1 (no sharding; the layout and behavior are then identical to
	// the unsharded engine). Forced to 1 under a manual clock or
	// DisableBackgroundMaintenance when creating a database; an existing
	// database always reopens with the shard count recorded in its shard
	// manifest, and asking for a different explicit count is an error.
	Shards int
	// ShardBoundaries supplies the Shards-1 boundary keys splitting the
	// key space (strictly increasing; shard i spans [boundary[i-1],
	// boundary[i])). Nil uses DefaultShardBoundaries, which assumes
	// uniformly distributed leading key bytes — supply boundaries matched
	// to the real key distribution for clustered key spaces. Ignored when
	// reopening (the shard manifest's recorded boundaries win).
	ShardBoundaries [][]byte
	// AutoReshard enables the load-driven balancer: a maintenance-pool
	// policy that samples per-shard pressure (write stalls, memtable bytes,
	// on-disk footprint) on the runtime's tick and splits a persistently
	// stalling shard at a delete-tile boundary — or merges an adjacent pair
	// of idle, small shards — through the same job scheduler compactions
	// use. Splits are sstable-level handoffs: only files straddling the cut
	// are rewritten. Ignored in synchronous mode (which always keeps its
	// layout) and off by default; DB.SplitShard/DB.MergeShards and the
	// `lethe reshard` subcommand reshard manually either way. See
	// "Resharding" in tuning.go.
	AutoReshard bool
}

// DB is a Lethe database handle. It is safe for concurrent use.
//
// Reads never block behind maintenance: Get, Scan, NewIter, and
// SecondaryRangeScan take a refcounted snapshot of the tree under a brief
// internal lock and then run against immutable state, so a compaction or
// flush in flight cannot stall them. Each such call pins its own snapshot;
// when several reads must agree with each other — a Get that must see
// exactly what a Scan saw, across every shard — take a DB.NewSnapshot and
// issue them against it. Range reads stream: NewIter returns a lazy cursor
// (see iterator.go) whose memory is bounded regardless of range size and
// whose Close releases its pins promptly, so obsolete sstables can be
// deleted even while long scans are in flight. Writes flow through a group-commit
// pipeline: concurrent commits are batched into one WAL write and (per
// WALSync) one sync, with memory-buffer inserts running concurrently and
// sequence numbers published in submission order — see Stats().CommitGroups
// and friends for the batching it achieves. When the background flush queue
// is saturated, writers stall until the shared maintenance pool catches up (see
// Stats().WriteStalls). With DisableBackgroundMaintenance — automatic under
// a manual clock — commits serialize on the engine lock and all maintenance
// runs inline inside the writing goroutine, preserving the paper's
// deterministic single-threaded execution.
//
// With Options.Shards > 1 the handle routes over range-partitioned engine
// instances: point operations go to exactly one shard, Scan and NewIter
// merge per-shard streams lazily in key order, and secondary range
// operations fan out to every shard (the delete key is not part of the
// partitioning key). Everything above holds per shard; cross-shard
// operations are not atomic as a unit — each shard's guarantees apply to
// its portion.
//
// The shard layout is mutable at runtime (SplitShard, MergeShards, the
// balancer behind Options.AutoReshard): routing goes through an
// epoch-stamped table swapped atomically when the layout changes. Per-shard
// atomicity semantics during a reshard: point operations and per-shard
// sub-batches remain atomic — a write either lands entirely in the shard
// that owned its key when it was admitted, or (if that shard froze first)
// waits and lands entirely in the epoch-N+1 shard that owns it after the
// swap; it is never torn across epochs. Cross-shard fan-outs (RangeDelete,
// SecondaryRangeDelete, Apply) that collide with a concurrent layout swap
// restart against the new table, re-applying only idempotent or
// not-yet-applied portions, so each point op still applies exactly once.
// Iterators and snapshots opened before a swap finish on the table they
// pinned — a reshard moves sstables between directories without touching
// their contents, and the donor shard's files outlive its retirement for as
// long as any reader pins them.
type DB struct {
	// table is the current routing epoch: boundaries plus one handle per
	// shard. Swapped atomically by reshard.go; readers Load it once per
	// operation and never observe a mix of epochs.
	table atomic.Pointer[routingTable]
	// closed latches on Close. The table is never swapped afterwards, which
	// is what lets read retry loops distinguish "shard retired by reshard"
	// (table changed — retry) from "database closed" (give up).
	closed atomic.Bool
	// reshardMu serializes layout changes (splits, merges, Close) without
	// touching any per-operation path.
	reshardMu sync.Mutex
	// layout is the persistent layout behind table; nil when the database
	// is a single instance rooted at the filesystem root. Guarded by
	// reshardMu.
	layout *shardLayout
	// rootFS/remoteFS are the database-root filesystems (not
	// shard-prefixed); reshard moves files across shard directories through
	// them. makeInner builds a child instance's options for a given pair of
	// shard-prefixed filesystems.
	rootFS    vfs.FS
	remoteFS  vfs.FS
	makeInner func(shardFS, shardRemoteFS vfs.FS) lsm.Options
	// rt is the shared maintenance runtime every shard registers with: one
	// worker pool, page cache, memory budget, and I/O rate limiter for the
	// whole database. Nil in synchronous mode, where maintenance runs
	// inline in the writing goroutine and the layout is immutable.
	rt *runtime.Runtime
	// sharedCache is the explicit shared page cache used only when a
	// sharded database reopens in synchronous mode (rt == nil); child
	// instances opened by a reshard must share it too.
	sharedCache *sstable.PageCache
	// balancer is the AutoReshard policy registered with rt, nil unless
	// enabled; balancerID is its runtime source ID for Deregister.
	balancer   *runtime.Balancer
	balancerID int

	reshardStats reshardCounters
}

// reshardCounters accumulates reshard work; see ReshardStats.
type reshardCounters struct {
	splits                atomic.Int64
	merges                atomic.Int64
	filesHandedOff        atomic.Int64
	straddlerRewrites     atomic.Int64
	straddlerRewriteBytes atomic.Int64
	manifestOps           atomic.Int64
}

// routingTable is one immutable routing epoch: shard i owns
// [boundaries[i-1], boundaries[i]). A single-instance database is a
// one-shard table with no boundaries.
type routingTable struct {
	epoch      uint64
	boundaries [][]byte
	shards     []*shardHandle
}

// index routes a key to its owning shard position.
func (t *routingTable) index(key []byte) int {
	if len(t.shards) == 1 {
		return 0
	}
	return shardIndex(t.boundaries, key)
}

// Handle lifecycle states, held in the high half of shardHandle.word.
const (
	shardActive uint32 = iota
	// shardFrozen: a reshard is draining the shard; new writes wait for the
	// next routing table instead of entering.
	shardFrozen
	// shardRetired: the shard's data has been handed off and its instance
	// is closing. Only reached after a successful layout swap.
	shardRetired
)

// shardHandle pairs one engine instance with its routing identity and a
// write gate. word packs the lifecycle state (high 32 bits) with the count
// of in-flight write operations (low 32 bits), so freezing the shard and
// draining its writers is one atomic protocol with no per-write lock.
// Reads bypass the gate entirely: they pin LSM read state internally, and a
// read that loses the race with retirement observes ErrClosed and retries
// on the new table.
type shardHandle struct {
	// id is the persistent shard identity (directory shard-<id>/), -1 for a
	// single instance rooted at the filesystem root.
	id     int
	prefix string
	db     *lsm.DB
	word   atomic.Uint64
}

// enter admits a write; false means the shard is frozen or retired and the
// caller should reload the routing table.
func (h *shardHandle) enter() bool {
	for {
		w := h.word.Load()
		if uint32(w>>32) != shardActive {
			return false
		}
		if h.word.CompareAndSwap(w, w+1) {
			return true
		}
	}
}

// exit releases enter.
func (h *shardHandle) exit() { h.word.Add(^uint64(0)) }

// setState replaces the lifecycle state, preserving the writer count.
func (h *shardHandle) setState(s uint32) {
	for {
		w := h.word.Load()
		if h.word.CompareAndSwap(w, uint64(s)<<32|(w&0xffffffff)) {
			return
		}
	}
}

// waitWriters blocks until every admitted write has exited. Writes are
// short (a WAL append plus a memtable insert, or a stall bounded by the
// flush lane, which keeps running during a reshard), so this spins gently.
func (h *shardHandle) waitWriters() {
	for h.word.Load()&0xffffffff != 0 {
		time.Sleep(50 * time.Microsecond)
	}
}

// waitTableChange is the backoff between routing-table reload attempts for
// writes aimed at a frozen shard.
func waitTableChange() { time.Sleep(200 * time.Microsecond) }

// enterWrite routes key to its owning shard and admits a write, retrying
// across layout swaps. The caller must h.exit() after the write.
func (db *DB) enterWrite(key []byte) (*shardHandle, error) {
	for {
		if db.closed.Load() {
			return nil, ErrClosed
		}
		t := db.table.Load()
		h := t.shards[t.index(key)]
		if h.enter() {
			return h, nil
		}
		waitTableChange()
	}
}

// retryRead reports whether a failed per-shard read should be retried on a
// fresh routing table: the shard was retired by a reshard (table changed)
// rather than the database being closed.
func (db *DB) retryRead(err error, t *routingTable) bool {
	return errors.Is(err, ErrClosed) && !db.closed.Load() && db.table.Load() != t
}

// resolveStorage merges the Storage group with the deprecated flat aliases.
// A field set both ways is a configuration conflict, not a precedence
// question — Open refuses rather than silently preferring one.
func (o Options) resolveStorage() (StorageOptions, error) {
	s := o.Storage
	if o.FS != nil {
		if s.FS != nil {
			return s, errors.New("lethe: both Options.FS and Options.Storage.FS are set")
		}
		s.FS = o.FS
	}
	if o.BlockSizeBytes != 0 {
		if s.BlockSizeBytes != 0 {
			return s, errors.New("lethe: both Options.BlockSizeBytes and Options.Storage.BlockSizeBytes are set")
		}
		s.BlockSizeBytes = o.BlockSizeBytes
	}
	if o.CacheBytes != 0 {
		if s.CacheBytes != 0 {
			return s, errors.New("lethe: both Options.CacheBytes and Options.Storage.CacheBytes are set")
		}
		s.CacheBytes = o.CacheBytes
	}
	if s.RemoteFS == nil && s.Placement.LocalLevels != 0 {
		return s, errors.New("lethe: Storage.Placement is set but Storage.RemoteFS is nil")
	}
	return s, nil
}

// Open creates or reopens a database.
func Open(opts Options) (*DB, error) {
	storage, err := opts.resolveStorage()
	if err != nil {
		return nil, err
	}
	fs := storage.FS
	if fs == nil {
		if opts.InMemory {
			fs = vfs.NewMem()
		} else if opts.Path != "" {
			osfs, err := vfs.NewOS(opts.Path)
			if err != nil {
				return nil, err
			}
			fs = osfs
		} else {
			return nil, errors.New("lethe: set Path, InMemory, or Storage.FS")
		}
	}
	mode := opts.Mode
	if mode == ModeBaseline && opts.Dth > 0 {
		mode = ModeLethe
	}
	layout, err := resolveShardLayout(fs, storage.RemoteFS, opts)
	if err != nil {
		return nil, err
	}
	// One maintenance runtime for the whole database: every shard shares
	// its worker pool, page cache, memory budget, and I/O rate limiter.
	// Synchronous mode (explicit, or forced by a manual clock) runs
	// maintenance inline and constructs none.
	var rt *runtime.Runtime
	_, manual := opts.Clock.(*base.ManualClock)
	if !opts.DisableBackgroundMaintenance && !manual {
		rt = runtime.New(runtime.Config{
			Workers:             opts.CompactionWorkers,
			CacheBytes:          storage.CacheBytes,
			MemoryBudget:        opts.MemoryBudget,
			CompactionRateBytes: opts.CompactionRateBytes,
		})
	}
	closeRT := func() {
		if rt != nil {
			rt.Close()
		}
	}
	// A sharded database reopened in synchronous mode (the shard manifest
	// wins over the requested mode) has no runtime to share the page cache
	// through; give the shards one shared cache directly so CacheBytes
	// stays a whole-database budget in that corner too.
	var sharedCache *sstable.PageCache
	if rt == nil && layout != nil {
		sharedCache = sstable.NewPageCache(storage.CacheBytes)
	}
	innerOpts := func(shardFS, shardRemoteFS vfs.FS) lsm.Options {
		return lsm.Options{
			FS:                   shardFS,
			RemoteFS:             shardRemoteFS,
			Placement:            storage.Placement,
			Clock:                opts.Clock,
			SizeRatio:            opts.SizeRatio,
			BufferBytes:          opts.BufferBytes,
			PageSize:             opts.PageSize,
			FilePages:            opts.FilePages,
			TilePages:            opts.TilePages,
			BlockSizeBytes:       storage.BlockSizeBytes,
			SSTableFormat:        storage.SSTableFormat,
			BloomBitsPerKey:      opts.BloomBitsPerKey,
			Mode:                 mode,
			Dth:                  opts.Dth,
			Tiering:              opts.Tiering,
			SuppressBlindDeletes: opts.SuppressBlindDeletes,
			DisableWAL:           opts.DisableWAL,
			WALSync:              opts.WALSync,
			CoverageEstimator:    opts.CoverageEstimator,
			CacheBytes:           storage.CacheBytes,
			Seed:                 opts.Seed,

			DisableBackgroundMaintenance: opts.DisableBackgroundMaintenance,
			MaxImmutableBuffers:          opts.MaxImmutableBuffers,
			Subcompactions:               opts.Subcompactions,
			Runtime:                      rt,
			Cache:                        sharedCache,
		}
	}
	db := &DB{
		rootFS:      fs,
		remoteFS:    storage.RemoteFS,
		makeInner:   innerOpts,
		rt:          rt,
		sharedCache: sharedCache,
		layout:      layout,
	}
	var handles []*shardHandle
	if layout == nil {
		// Single instance: the engine owns the filesystem root directly,
		// byte-identical to the unsharded layout. It still routes through a
		// one-handle table so SplitShard can shard it online.
		inner, err := lsm.Open(innerOpts(fs, storage.RemoteFS))
		if err != nil {
			closeRT()
			return nil, err
		}
		handles = []*shardHandle{{id: -1, prefix: "", db: inner}}
		db.table.Store(&routingTable{epoch: 0, shards: handles})
	} else {
		handles = make([]*shardHandle, 0, len(layout.ids))
		for _, id := range layout.ids {
			prefix := shardDirPrefix(id)
			// The remote tier mirrors the local shard layout: each instance
			// gets the same shard-directory prefix over the remote
			// filesystem.
			var shardRemote vfs.FS
			if storage.RemoteFS != nil {
				shardRemote = vfs.NewPrefix(storage.RemoteFS, prefix)
			}
			inner, err := lsm.Open(innerOpts(vfs.NewPrefix(fs, prefix), shardRemote))
			if err != nil {
				for _, h := range handles {
					h.db.Close()
				}
				closeRT()
				return nil, err
			}
			handles = append(handles, &shardHandle{id: id, prefix: prefix, db: inner})
		}
		db.table.Store(&routingTable{
			epoch:      layout.epoch,
			boundaries: layout.boundaries,
			shards:     handles,
		})
	}
	if rt != nil && opts.AutoReshard {
		db.balancer = runtime.NewBalancer(&reshardController{db: db}, runtime.BalancerConfig{})
		db.balancerID = rt.Register(db.balancer)
	}
	return db, nil
}

// ShardCount returns the number of range shards (1 when unsharded).
func (db *DB) ShardCount() int { return len(db.table.Load().shards) }

// ShardEpoch returns the current routing epoch: 0 for a single instance
// rooted at the filesystem root, otherwise the SHARDS manifest epoch, which
// increments on every split or merge.
func (db *DB) ShardEpoch() uint64 { return db.table.Load().epoch }

// ShardBoundaries returns a copy of the boundary keys partitioning the
// shards (nil when unsharded).
func (db *DB) ShardBoundaries() [][]byte {
	t := db.table.Load()
	if len(t.boundaries) == 0 {
		return nil
	}
	out := make([][]byte, len(t.boundaries))
	for i, b := range t.boundaries {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// Put inserts or updates key with the given secondary delete key and value.
func (db *DB) Put(key []byte, dkey DeleteKey, value []byte) error {
	h, err := db.enterWrite(key)
	if err != nil {
		return err
	}
	defer h.exit()
	return h.db.Put(key, dkey, value)
}

// Get returns the value stored for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	v, _, err := db.GetWithDeleteKey(key)
	return v, err
}

// GetWithDeleteKey also returns the entry's secondary delete key.
func (db *DB) GetWithDeleteKey(key []byte) ([]byte, DeleteKey, error) {
	for {
		t := db.table.Load()
		v, dk, err := t.shards[t.index(key)].db.Get(key)
		if err != nil && db.retryRead(err, t) {
			continue
		}
		return v, dk, err
	}
}

// Delete removes key (a point delete on the sort key).
func (db *DB) Delete(key []byte) error {
	h, err := db.enterWrite(key)
	if err != nil {
		return err
	}
	defer h.exit()
	return h.db.Delete(key)
}

// RangeDelete removes every key in [start, end) (a primary range delete).
// On a sharded database the tombstone is applied per overlapping shard in
// key order; each shard's portion is atomic, the whole is not. A layout
// swap mid-fan-out restarts the delete against the new table — re-applying
// a range tombstone is idempotent, so the restart only re-covers keys.
func (db *DB) RangeDelete(start, end []byte) error {
	for {
		if db.closed.Load() {
			return ErrClosed
		}
		t := db.table.Load()
		lo, hi := shardRange(t.boundaries, start, end)
		stale := false
		for i := lo; i <= hi; i++ {
			h := t.shards[i]
			if !h.enter() {
				stale = true
				break
			}
			err := h.db.RangeDelete(start, end)
			h.exit()
			if err != nil {
				return err
			}
		}
		if !stale {
			return nil
		}
		waitTableChange()
	}
}

// SecondaryRangeDelete removes every entry whose delete key lies in
// [lo, hi), using KiWi's page drops instead of a full-tree compaction. See
// SRDStats for what it did. Intended for write-once data keyed by creation
// time (the paper's DComp scenario); see the engine documentation for the
// multi-version caveat.
//
// Partial application: the delete key is orthogonal to the sort-key
// partitioning, so the delete fans out to every shard, in shard order, and
// each shard's portion applies independently. If shard k's delete fails,
// shards 0..k-1 are fully applied, shard k may be partially applied (its
// counts in the breakdown cover the work done before the failure), and
// shards after k are untouched — the error is returned alongside the stats
// accumulated so far, and SRDStats.Shards records exactly how far the
// fan-out got (one entry per shard reached, the last carrying the error).
// Re-issuing the same delete after a failure is safe: the operation is
// idempotent for a fixed [lo, hi).
//
// A layout swap mid-fan-out restarts the delete against the new table,
// resetting the aggregate: shards re-visited after the restart report only
// residual work (the delete is idempotent), so the returned stats describe
// the final pass.
func (db *DB) SecondaryRangeDelete(lo, hi DeleteKey) (SRDStats, error) {
restart:
	for {
		if db.closed.Load() {
			return SRDStats{}, ErrClosed
		}
		t := db.table.Load()
		var agg SRDStats
		for i, h := range t.shards {
			if !h.enter() {
				waitTableChange()
				continue restart
			}
			st, err := h.db.SecondaryRangeDelete(lo, hi)
			h.exit()
			agg.FullPageDrops += st.FullDrops
			agg.PartialPageDrops += st.PartialDrops
			agg.EntriesDropped += st.EntriesDropped
			agg.PagesUntouched += st.PagesUntouched
			agg.Shards = append(agg.Shards, ShardSRDStats{
				Shard:            i,
				FullPageDrops:    st.FullDrops,
				PartialPageDrops: st.PartialDrops,
				EntriesDropped:   st.EntriesDropped,
				PagesUntouched:   st.PagesUntouched,
				Err:              err,
			})
			if err != nil {
				return agg, err
			}
		}
		return agg, nil
	}
}

// SRDStats reports the work a secondary range delete performed.
type SRDStats struct {
	// FullPageDrops is the number of pages dropped without any I/O.
	FullPageDrops int
	// PartialPageDrops is the number of edge pages filtered in place.
	PartialPageDrops int
	// EntriesDropped is the number of entries removed.
	EntriesDropped int
	// PagesUntouched is the number of pages the delete fences excluded.
	PagesUntouched int
	// Shards is the per-shard breakdown, in shard (key-range) order,
	// mirroring DB.ShardStats: one entry per shard the fan-out reached. On
	// success it has ShardCount entries; after a mid-loop failure it stops
	// at the failing shard (whose Err is set), and later shards — untouched
	// by the delete — are absent. Unsharded databases get a single entry.
	Shards []ShardSRDStats
}

// ShardSRDStats is one shard's portion of a secondary range delete.
type ShardSRDStats struct {
	// Shard is the shard index (key-range order, as in ShardStats).
	Shard int
	// FullPageDrops, PartialPageDrops, EntriesDropped, and PagesUntouched
	// mirror the aggregate fields, scoped to this shard. For a failed shard
	// they count the work completed before the error.
	FullPageDrops    int
	PartialPageDrops int
	EntriesDropped   int
	PagesUntouched   int
	// Err is the error this shard's delete returned, nil on success. At
	// most the last entry of SRDStats.Shards has it set.
	Err error
}

// Scan visits every live pair with start <= key < end (nil end = unbounded)
// in key order until fn returns false. An empty or inverted range (both
// bounds set, start >= end) visits nothing. On a sharded database every
// overlapping shard's read state is pinned in one pass as the scan opens,
// so the whole scan observes one fixed view; the per-shard streams are then
// merged lazily in key order (see iterator.go), opening each shard's scan
// machinery only when the cursor reaches it. For a Get that must agree with
// a Scan, take a DB.NewSnapshot and issue both against it.
func (db *DB) Scan(start, end []byte, fn func(key []byte, dkey DeleteKey, value []byte) bool) error {
	for {
		t := db.table.Load()
		if len(t.shards) > 1 {
			break
		}
		// Single shard: run directly against the instance. ErrClosed here can
		// only come from the pin attempt (once the scan's read state is
		// pinned, retirement cannot revoke it), so a retry never re-visits
		// keys.
		err := t.shards[0].db.Scan(start, end, fn)
		if err != nil && db.retryRead(err, t) {
			continue
		}
		return err
	}
	it, err := db.NewIter(start, end)
	if err != nil {
		return err
	}
	defer it.Close()
	for it.Next() {
		if !fn(it.Key(), it.DeleteKey(), it.Value()) {
			break
		}
	}
	return it.Close()
}

// SecondaryRangeScan returns live entries with lo <= D < hi, served by the
// delete fences. On a sharded database every shard is consulted (D is not
// the partitioning key). Results are sorted deterministically — by delete
// key, then sort key — on both the sharded and single-instance paths, so
// the order never depends on shard layout or fence traversal order.
func (db *DB) SecondaryRangeScan(lo, hi DeleteKey) ([]Item, error) {
	for {
		t := db.table.Load()
		var items []Item
		retry := false
		for _, h := range t.shards {
			entries, err := h.db.SecondaryRangeScan(lo, hi)
			if err != nil {
				if db.retryRead(err, t) {
					retry = true
					break
				}
				return nil, err
			}
			for _, e := range entries {
				items = append(items, Item{Key: e.Key.UserKey, DKey: e.DKey, Value: e.Value})
			}
		}
		if retry {
			continue
		}
		sortSecondaryItems(items)
		return items, nil
	}
}

// Item is one key-value pair returned by secondary scans.
type Item struct {
	Key   []byte
	DKey  DeleteKey
	Value []byte
}

// eachShard runs fn on every shard of the current routing table. A shard
// retired by a concurrent reshard (ErrClosed while the table moved on)
// restarts the sweep against the new table — fn must be idempotent, which
// flush and compaction barriers are. Other errors are collected
// first-error-wins without stopping the sweep.
func (db *DB) eachShard(fn func(*lsm.DB) error) error {
	for {
		if db.closed.Load() {
			return ErrClosed
		}
		t := db.table.Load()
		var first error
		stale := false
		for _, h := range t.shards {
			if err := fn(h.db); err != nil {
				if db.retryRead(err, t) {
					stale = true
					break
				}
				if first == nil {
					first = err
				}
			}
		}
		if !stale {
			return first
		}
		waitTableChange()
	}
}

// Flush forces every shard's memory buffer to disk.
func (db *DB) Flush() error {
	return db.eachShard(func(s *lsm.DB) error { return s.Flush() })
}

// Maintain runs compactions until no trigger (saturation or TTL expiry)
// fires, on every shard. In synchronous mode writes invoke it
// automatically; call it after advancing a manual clock. In background mode
// it kicks the workers and blocks until every shard's maintenance pipeline
// is quiescent — useful as a barrier in tests and batch jobs.
func (db *DB) Maintain() error {
	return db.eachShard(func(s *lsm.DB) error { return s.Maintain() })
}

// FullTreeCompact merges each shard's entire tree into its last level — the
// baseline's (expensive) way to persist deletes.
func (db *DB) FullTreeCompact() error {
	return db.eachShard(func(s *lsm.DB) error { return s.FullTreeCompact() })
}

// Close flushes and releases every shard, then stops the shared maintenance
// runtime, returning the first error. Once closed latches, the routing table
// never changes again — which is what lets concurrent retry loops terminate.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return ErrClosed
	}
	// Serialize with any in-flight reshard; none can start afterwards (both
	// SplitShard and MergeShards re-check closed under reshardMu).
	db.reshardMu.Lock()
	defer db.reshardMu.Unlock()
	if db.balancer != nil {
		db.rt.Deregister(db.balancer, db.balancerID)
	}
	if db.rt != nil {
		// Stop pacing maintenance I/O first: each shard's Close drains its
		// in-flight flushes and compactions, and shutdown must not wait
		// out their rate-limiter debt.
		db.rt.ReleaseLimiter()
	}
	var first error
	for _, h := range db.table.Load().shards {
		if err := h.db.Close(); err != nil && first == nil {
			first = err
		}
	}
	if db.rt != nil {
		db.rt.Close()
	}
	return first
}

// RuntimeStats returns the shared maintenance runtime's statistics: worker
// pool occupancy, global queue depth, memory-budget stalls, rate-limiter
// throttle time, and the shared page cache. The zero value is returned in
// synchronous mode, which has no runtime.
func (db *DB) RuntimeStats() RuntimeStats {
	if db.rt == nil {
		return RuntimeStats{}
	}
	return db.rt.Stats()
}

// Stats returns engine statistics. For a sharded database the counters are
// aggregated across shards (peaks take the per-shard maximum; sequence
// frontiers sum, since shards number sequences independently); ShardStats
// exposes the per-shard breakdown.
func (db *DB) Stats() lsm.Stats {
	t := db.table.Load()
	if len(t.shards) == 1 {
		return t.shards[0].db.Stats()
	}
	out := make([]lsm.Stats, len(t.shards))
	for i, h := range t.shards {
		out[i] = h.db.Stats()
	}
	return aggregateStats(out)
}

// ShardStats returns each shard's statistics, in shard (key-range) order.
// For an unsharded database it holds the single instance's stats.
func (db *DB) ShardStats() []lsm.Stats {
	t := db.table.Load()
	out := make([]lsm.Stats, len(t.shards))
	for i, h := range t.shards {
		out[i] = h.db.Stats()
	}
	return out
}

// VerifyStats aggregates a whole-database integrity walk, with the
// per-shard breakdown the `lethe verify` subcommand reports.
type VerifyStats struct {
	// Files, Blocks, DroppedBlocks, Entries, Bytes, and CorruptFiles total
	// the walk across every shard; see lsm.VerifyResult for the fields.
	lsm.VerifyResult
	// Shards is the per-shard breakdown in shard (key-range) order. Err
	// carries that shard's joined per-file corruption errors, nil when clean.
	Shards []ShardVerifyStats
}

// ShardVerifyStats is one shard's portion of a verification walk.
type ShardVerifyStats struct {
	Shard int
	lsm.VerifyResult
	Err error
}

// ErrCorruption is the typed error wrapped by every integrity failure —
// checksum mismatches, malformed blocks, inconsistent footers or fences.
// Test with errors.Is.
var ErrCorruption = lsm.ErrCorruption

// VerifyTables walks every live sstable in every shard and verifies footer
// and metadata checksums, per-block CRCs, index ordering, and full block
// decodes. It runs on pinned snapshots and never blocks reads or writes. All
// shards are walked even after a corruption hit; the returned error joins
// every corrupt file's failure (each wrapping ErrCorruption).
func (db *DB) VerifyTables() (VerifyStats, error) {
	var out VerifyStats
	var errs []error
	t := db.table.Load()
	for i, h := range t.shards {
		vr, err := h.db.VerifyTables()
		out.Files += vr.Files
		out.Blocks += vr.Blocks
		out.DroppedBlocks += vr.DroppedBlocks
		out.Entries += vr.Entries
		out.Bytes += vr.Bytes
		out.CorruptFiles += vr.CorruptFiles
		out.Shards = append(out.Shards, ShardVerifyStats{Shard: i, VerifyResult: vr, Err: err})
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		}
	}
	return out, errors.Join(errs...)
}

// SpaceAmp measures the current space amplification (full scan; a
// diagnostic, not a hot-path call). Sharded: the byte totals are summed
// across shards before forming the ratio.
func (db *DB) SpaceAmp() (float64, error) {
	for {
		t := db.table.Load()
		if len(t.shards) == 1 {
			a, err := t.shards[0].db.SpaceAmp()
			if err != nil && db.retryRead(err, t) {
				continue
			}
			return a, err
		}
		var total, unique int64
		retry := false
		for _, h := range t.shards {
			tb, u, err := h.db.SpaceAmpParts()
			if err != nil {
				if db.retryRead(err, t) {
					retry = true
					break
				}
				return 0, err
			}
			total += tb
			unique += u
		}
		if retry {
			continue
		}
		if unique == 0 {
			return 0, nil
		}
		return float64(total-unique) / float64(unique), nil
	}
}

// TombstoneAges returns the per-file tombstone age distribution across all
// shards.
func (db *DB) TombstoneAges() []lsm.TombstoneAgeBucket {
	t := db.table.Load()
	if len(t.shards) == 1 {
		return t.shards[0].db.TombstoneAges()
	}
	var out []lsm.TombstoneAgeBucket
	for _, h := range t.shards {
		out = append(out, h.db.TombstoneAges()...)
	}
	return out
}

// MaxTombstoneAge returns the oldest tombstone age anywhere in the
// database.
func (db *DB) MaxTombstoneAge() time.Duration {
	var max time.Duration
	for _, h := range db.table.Load().shards {
		if a := h.db.MaxTombstoneAge(); a > max {
			max = a
		}
	}
	return max
}

// NumLevels returns the current number of disk levels (the deepest shard's
// when sharded).
func (db *DB) NumLevels() int {
	max := 0
	for _, h := range db.table.Load().shards {
		if n := h.db.NumLevels(); n > max {
			max = n
		}
	}
	return max
}

// TTLs returns the cumulative per-level TTL thresholds FADE currently
// enforces. Shards share one configuration; the deepest shard's thresholds
// are returned (level TTLs depend only on Dth, T, and tree height).
func (db *DB) TTLs() []time.Duration {
	var out []time.Duration
	for _, h := range db.table.Load().shards {
		if t := h.db.TTLs(); len(t) > len(out) {
			out = t
		}
	}
	return out
}

// Batch collects operations for atomic application: either all of a synced
// batch's operations survive a crash or (for an unsynced tail) a prefix in
// submission order — never an interleaving.
type Batch struct {
	ops []lsm.BatchOp
}

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Put queues an insert/update.
func (b *Batch) Put(key []byte, dkey DeleteKey, value []byte) *Batch {
	b.ops = append(b.ops, lsm.BatchOp{Kind: base.KindSet,
		Key: append([]byte(nil), key...), DKey: dkey, Value: append([]byte(nil), value...)})
	return b
}

// Delete queues a point delete.
func (b *Batch) Delete(key []byte) *Batch {
	b.ops = append(b.ops, lsm.BatchOp{Kind: base.KindDelete, Key: append([]byte(nil), key...)})
	return b
}

// RangeDelete queues a primary range delete on [start, end).
func (b *Batch) RangeDelete(start, end []byte) *Batch {
	b.ops = append(b.ops, lsm.BatchOp{Kind: base.KindRangeDelete,
		Key: append([]byte(nil), start...), EndKey: append([]byte(nil), end...)})
	return b
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

// Apply applies the batch atomically and clears it. On a sharded database
// the batch is split by owning shard, preserving per-key operation order:
// each shard's sub-batch is atomic, but a batch spanning shards is not
// atomic as a whole (a crash can persist one shard's portion and not
// another's).
//
// A batch admitted on routing epoch N that collides with a layout swap
// (a shard frozen mid-fan-out) resumes against epoch N+1 applying only the
// not-yet-applied remainder: point operations carry an applied bit, and a
// range delete carries a watermark — shards apply in ascending key order, so
// its unapplied portion is exactly the keys at or above the first shard that
// refused admission. The watermark matters for correctness, not just
// economy: re-applying a range delete over a same-batch Put that already
// landed would give the tombstone a higher sequence number and wrongly
// delete the Put.
func (db *DB) Apply(b *Batch) error {
	// Pre-validate every op so deterministic rejections (the same ones
	// lsm.ApplyBatch raises) surface before any shard's sub-batch commits —
	// otherwise a bad op in a later shard would leave earlier shards
	// applied while the unsharded path rejects the whole batch untouched.
	for _, op := range b.ops {
		switch op.Kind {
		case base.KindSet, base.KindDelete:
		case base.KindRangeDelete:
			if base.CompareUserKeys(op.Key, op.EndKey) >= 0 {
				return fmt.Errorf("lethe: batch range delete [%q, %q) is empty", op.Key, op.EndKey)
			}
		default:
			return fmt.Errorf("lethe: unsupported batch op kind %v", op.Kind)
		}
	}
	// applied marks point ops done (exactly-once across retries); watermark
	// is a range-delete op's resume key (nil = none applied yet); rdDone
	// marks a range delete fully applied.
	var (
		applied   []bool
		watermark [][]byte
		rdDone    []bool
	)
	for {
		if db.closed.Load() {
			return ErrClosed
		}
		t := db.table.Load()
		n := len(t.shards)
		if n == 1 && applied == nil {
			// Common case: one shard, no partial progress — hand the batch
			// over whole.
			h := t.shards[0]
			if !h.enter() {
				waitTableChange()
				continue
			}
			err := h.db.ApplyBatch(b.ops)
			h.exit()
			if err == nil {
				b.ops = b.ops[:0]
			}
			return err
		}
		if applied == nil {
			applied = make([]bool, len(b.ops))
			watermark = make([][]byte, len(b.ops))
			rdDone = make([]bool, len(b.ops))
		}
		split := make([][]lsm.BatchOp, n)
		members := make([][]int, n)
		rdHi := make([]int, len(b.ops))
		pending := false
		for j, op := range b.ops {
			if op.Kind == base.KindRangeDelete {
				if rdDone[j] {
					continue
				}
				start := op.Key
				if len(start) == 0 {
					start = nil
				}
				if watermark[j] != nil && base.CompareUserKeys(watermark[j], start) > 0 {
					start = watermark[j]
				}
				end := op.EndKey
				if base.CompareUserKeys(start, end) >= 0 {
					rdDone[j] = true
					continue
				}
				clipped := op
				clipped.Key = start
				lo, hi := shardRange(t.boundaries, start, end)
				rdHi[j] = hi
				for i := lo; i <= hi; i++ {
					split[i] = append(split[i], clipped)
					members[i] = append(members[i], j)
				}
				pending = true
				continue
			}
			if applied[j] {
				continue
			}
			i := t.index(op.Key)
			split[i] = append(split[i], op)
			members[i] = append(members[i], j)
			pending = true
		}
		if !pending {
			b.ops = b.ops[:0]
			return nil
		}
		stale := false
		for i := 0; i < n; i++ {
			if len(split[i]) == 0 {
				continue
			}
			h := t.shards[i]
			if !h.enter() {
				stale = true
				break
			}
			err := h.db.ApplyBatch(split[i])
			h.exit()
			if err != nil {
				return err
			}
			for _, j := range members[i] {
				if b.ops[j].Kind == base.KindRangeDelete {
					if i == rdHi[j] {
						rdDone[j] = true
					} else {
						watermark[j] = t.boundaries[i]
					}
				} else {
					applied[j] = true
				}
			}
		}
		if !stale {
			b.ops = b.ops[:0]
			return nil
		}
		waitTableChange()
	}
}

// ReshardStats summarizes online reshard activity since Open. Epoch is the
// current routing epoch; the counters accumulate across every split and
// merge this handle executed.
type ReshardStats struct {
	// Epoch is the live routing epoch (0 for a single instance rooted at the
	// filesystem root).
	Epoch uint64
	// Splits and Merges count completed layout changes.
	Splits int64
	Merges int64
	// FilesHandedOff counts sstables moved between shard directories without
	// a rewrite; StraddlerRewrites/StraddlerRewriteBytes count the files that
	// straddled a cut and the bytes written re-clipping them.
	FilesHandedOff        int64
	StraddlerRewrites     int64
	StraddlerRewriteBytes int64
	// ManifestOps counts durable manifest commits (child MANIFESTs plus the
	// SHARDS swap) — the fixed cost of a reshard.
	ManifestOps int64
}

// ReshardStats reports reshard activity; see ReshardStats (type).
func (db *DB) ReshardStats() ReshardStats {
	return ReshardStats{
		Epoch:                 db.table.Load().epoch,
		Splits:                db.reshardStats.splits.Load(),
		Merges:                db.reshardStats.merges.Load(),
		FilesHandedOff:        db.reshardStats.filesHandedOff.Load(),
		StraddlerRewrites:     db.reshardStats.straddlerRewrites.Load(),
		StraddlerRewriteBytes: db.reshardStats.straddlerRewriteBytes.Load(),
		ManifestOps:           db.reshardStats.manifestOps.Load(),
	}
}

// ShardPressure is one shard's load sample: write stalls, memtable
// footprint, disk footprint, and space-amplification operands. It is the
// balancer's input; `lethe stats` prints one line per shard from it.
type ShardPressure = runtime.ShardPressure

// ShardPressures samples every shard's pressure, in shard (key-range)
// order, including the space-amplification operands (which cost a tree scan
// per shard — this is the diagnostic path; the balancer's periodic sampling
// skips them).
func (db *DB) ShardPressures() []ShardPressure {
	return db.shardPressures(true)
}
