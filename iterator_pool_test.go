package lethe

// Pooled read-path regression tests: the PR6 zero-alloc work recycles
// cursor state (iterAlloc, lsm.ScanIter frames, merge heaps) through
// sync.Pools, so these tests pin the behaviors that make pooling safe —
// Close idempotency, the use-after-Close guard, the CloneBytes validity
// contract, and reuse under concurrency (run with -race, as CI does).

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func poolTestDB(t *testing.T, shards int) *DB {
	t.Helper()
	opts := Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 12, PageSize: 256, FilePages: 4}
	if shards > 1 {
		opts.Shards = shards
		boundaries := make([][]byte, 0, shards-1)
		for i := 1; i < shards; i++ {
			boundaries = append(boundaries, []byte(fmt.Sprintf("k%03d", i*100)))
		}
		opts.ShardBoundaries = boundaries
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for i := 0; i < shards*100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), DeleteKey(i),
			[]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Flush half the data to sstables so iteration exercises both the
	// memtable and the pooled sstable cursor frames.
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards*100; i += 2 {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), DeleteKey(i),
			[]byte(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestIteratorCloseIdempotent locks in the use-after-Close contract: Close
// may be called any number of times, and Next/SeekGE after Close return
// false with ErrIteratorClosed sticky instead of touching cursor state that
// the pool may already have handed to another iterator.
func TestIteratorCloseIdempotent(t *testing.T) {
	db := poolTestDB(t, 1)
	it, err := db.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Next() {
		t.Fatal("expected at least one entry")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if it.Next() {
		t.Fatal("Next after Close returned true")
	}
	if !errors.Is(it.Error(), ErrIteratorClosed) {
		t.Fatalf("Error after use-after-Close = %v, want ErrIteratorClosed", it.Error())
	}
	it.SeekGE([]byte("k050")) // must not panic or reposition
	if it.Next() {
		t.Fatal("Next after SeekGE-after-Close returned true")
	}
	if it.Valid() {
		t.Fatal("closed iterator reports Valid")
	}

	// Open a new iterator immediately: it may reuse the recycled state, and
	// must be completely unaffected by the dead handle above.
	it2, err := db.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	if !it2.Next() {
		t.Fatalf("fresh iterator after recycle: %v", it2.Error())
	}
	if string(it2.Key()) != "k000" {
		t.Fatalf("fresh iterator first key = %q", it2.Key())
	}

	// The degenerate empty-range iterator has no pooled state but honors the
	// same contract.
	empty, err := db.NewIter([]byte("z"), []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Next() {
		t.Fatal("empty-range iterator yielded an entry")
	}
	if err := empty.Close(); err != nil {
		t.Fatal(err)
	}
	if err := empty.Close(); err != nil {
		t.Fatalf("second Close on empty iterator: %v", err)
	}
	if empty.Next() || !errors.Is(empty.Error(), ErrIteratorClosed) {
		t.Fatalf("empty iterator use-after-Close: next=%v err=%v", false, empty.Error())
	}
}

// TestSnapshotIteratorCloseLeavesPins verifies that closing a borrowed
// (Snapshot.NewIter) iterator recycles only the cursor state — the
// snapshot's own pins stay live and keep serving reads.
func TestSnapshotIteratorCloseLeavesPins(t *testing.T) {
	db := poolTestDB(t, 2)
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	it, err := snap.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !it.Next() {
		t.Fatalf("snapshot iterator empty: %v", it.Error())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	// The snapshot must still serve reads from its (un-released) pins.
	if _, err := snap.Get([]byte("k001")); err != nil {
		t.Fatalf("snapshot Get after iterator Close: %v", err)
	}
	it2, err := snap.NewIter([]byte("k100"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	if !it2.Next() || string(it2.Key()) != "k100" {
		t.Fatalf("second snapshot iterator: valid=%v key=%q err=%v",
			it2.Valid(), it2.Key(), it2.Error())
	}
}

// TestIteratorCloneBytesAliasing is the aliasing regression test for the
// view-returning read path: Key/Value slices are views into pooled buffers
// (valid only until the next Next/SeekGE/Close), and CloneBytes is the
// supported way to retain them. Clones taken during one iteration must
// compare equal after arbitrary later cursor activity, including pool reuse
// by subsequent iterators.
func TestIteratorCloneBytesAliasing(t *testing.T) {
	db := poolTestDB(t, 2)
	type pair struct{ k, v []byte }
	var cloned []pair
	it, err := db.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for it.Next() {
		cloned = append(cloned, pair{CloneBytes(it.Key()), CloneBytes(it.Value())})
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if len(cloned) != 200 {
		t.Fatalf("iterated %d entries, want 200", len(cloned))
	}

	// Churn the pools: several full open/iterate/close cycles reuse the
	// recycled cursor state and overwrite its scratch buffers.
	for round := 0; round < 3; round++ {
		it2, err := db.NewIter(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for it2.Next() {
		}
		if err := it2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The clones survived; re-iterate and compare.
	it3, err := db.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it3.Close()
	for i := 0; it3.Next(); i++ {
		if !bytes.Equal(cloned[i].k, it3.Key()) || !bytes.Equal(cloned[i].v, it3.Value()) {
			t.Fatalf("clone %d diverged: key %q/%q value %q/%q",
				i, cloned[i].k, it3.Key(), cloned[i].v, it3.Value())
		}
	}

	// CloneBytes(nil) stays nil — callers can clone unconditionally.
	if CloneBytes(nil) != nil {
		t.Fatal("CloneBytes(nil) != nil")
	}
}

// TestIteratorPoolReuseStress hammers the pooled read path from many
// goroutines — concurrent open/iterate/seek/close across shards, mixed with
// snapshot cursors, point Gets (the cached read-handle path), and writes
// that force read-state transitions. Run under -race (as CI does) it checks
// that recycled cursors and the shared read handle never leak state between
// concurrent users; single-threaded it still verifies ordering and values.
func TestIteratorPoolReuseStress(t *testing.T) {
	db := poolTestDB(t, 4)
	const goroutines = 8
	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch (g + r) % 4 {
				case 0: // full scan, verify ascending order
					it, err := db.NewIter(nil, nil)
					if err != nil {
						errs <- err
						return
					}
					var prev []byte
					for it.Next() {
						if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
							it.Close()
							errs <- fmt.Errorf("order violation: %q then %q", prev, it.Key())
							return
						}
						prev = CloneBytes(it.Key())
					}
					if err := it.Close(); err != nil {
						errs <- err
						return
					}
				case 1: // bounded scan with a seek, abandoned early
					it, err := db.NewIter([]byte("k050"), []byte("k350"))
					if err != nil {
						errs <- err
						return
					}
					it.SeekGE([]byte(fmt.Sprintf("k%03d", 100+r)))
					for n := 0; n < 10 && it.Next(); n++ {
					}
					if err := it.Close(); err != nil {
						errs <- err
						return
					}
				case 2: // snapshot cursor + point reads from the same snapshot
					snap, err := db.NewSnapshot()
					if err != nil {
						errs <- err
						return
					}
					it, err := snap.NewIter(nil, nil)
					if err != nil {
						snap.Release()
						errs <- err
						return
					}
					for n := 0; n < 25 && it.Next(); n++ {
					}
					if err := it.Close(); err != nil {
						snap.Release()
						errs <- err
						return
					}
					if err := snap.Release(); err != nil {
						errs <- err
						return
					}
				case 3: // writes + Gets: churn the cached read handle
					key := []byte(fmt.Sprintf("k%03d", (g*37+r)%400))
					if err := db.Put(key, DeleteKey(r), []byte("stress")); err != nil {
						errs <- err
						return
					}
					if _, err := db.Get(key); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
