package lethe

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"lethe/internal/vfs"
)

// vfsNewCountingForTest returns a fresh counting in-memory filesystem.
func vfsNewCountingForTest() *vfs.CountingFS { return vfs.NewCounting(vfs.NewMem(), 256) }

// TestPublicWALRecovery exercises the public API with the WAL enabled,
// simulating a crash (no Close) and reopening.
func TestPublicWALRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Path: dir, BufferBytes: 1 << 14, PageSize: 512, FilePages: 8}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%03d", i)), DeleteKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete([]byte("k007")); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon the handle without Close.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get([]byte("k003")); err != nil {
		t.Fatalf("recovered read: %v", err)
	}
	if _, err := db2.Get([]byte("k007")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("recovered delete: %v", err)
	}
}

// TestPublicTiering drives the tiered policy through the public API.
func TestPublicTiering(t *testing.T) {
	db, err := Open(Options{
		InMemory: true, Tiering: true, DisableWAL: true,
		BufferBytes: 1 << 11, PageSize: 256, FilePages: 4, SizeRatio: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%04d", i%100)), 0,
			[]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("k%04d", i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		want := fmt.Sprintf("v%d", 400+i)
		if string(v) != want {
			t.Fatalf("key %d: got %s want %s", i, v, want)
		}
	}
	st := db.Stats()
	if st.Levels[0].Runs == 0 && len(st.Levels) < 2 {
		t.Fatalf("tiering should build runs: %+v", st.Levels)
	}
}

// TestPublicBlindDeleteSuppression checks the pre-probe through the API.
func TestPublicBlindDeleteSuppression(t *testing.T) {
	db, err := Open(Options{
		InMemory: true, SuppressBlindDeletes: true, DisableWAL: true,
		BufferBytes: 1 << 11, PageSize: 256, FilePages: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("real%03d", i)), 0, []byte("v"))
	}
	for i := 0; i < 50; i++ {
		if err := db.Delete([]byte(fmt.Sprintf("ghost%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := db.Stats().BlindDeletesSuppressed; got < 45 {
		t.Fatalf("suppressed only %d", got)
	}
}

// TestOptionsDefaultsMirrorTable1 pins the default configuration to the
// paper's Table 1 reference values (E16).
func TestOptionsDefaultsMirrorTable1(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	db, err := Open(Options{InMemory: true, Clock: clock, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Table 1: T = 10, page 4KB, buffer P = 512 pages, BFs 10 bits/entry.
	// Observable via behavior: one flush should happen only after ~2MB.
	payload := bytes.Repeat([]byte{'x'}, 1024) // E ≈ 1KB entries
	for i := 0; i < 1000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%08d", i)), 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.Flushes != 0 {
		t.Fatalf("buffer flushed after only ~1MB: %+v", st.Flushes)
	}
	for i := 1000; i < 2200; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%08d", i)), 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.Flushes == 0 {
		t.Fatal("buffer must flush past 2MB (M = P·B·E)")
	}
}

// TestFullTreeCompactPublic verifies the baseline escape hatch.
func TestFullTreeCompactPublic(t *testing.T) {
	db, _ := Open(Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 11, PageSize: 256, FilePages: 4})
	defer db.Close()
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), 0, []byte("v"))
	}
	for i := 0; i < 300; i += 3 {
		db.Delete([]byte(fmt.Sprintf("k%04d", i)))
	}
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.FullTreeCompactions != 1 || st.LivePointTombstones != 0 {
		t.Fatalf("after full compaction: %+v", st)
	}
	if st.MaxCompactionBytes == 0 {
		t.Fatal("peak compaction must be recorded")
	}
}

// TestPageCacheSpeedsReads verifies the engine-level cache wiring: repeated
// point lookups on a cached working set stop doing I/O.
func TestPageCacheSpeedsReads(t *testing.T) {
	counting := vfsNewCountingForTest()
	db, err := Open(Options{Storage: StorageOptions{FS: counting, CacheBytes: 1 << 20},
		DisableWAL: true, BufferBytes: 1 << 12, PageSize: 256, FilePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 400; i++ {
		db.Put([]byte(fmt.Sprintf("k%05d", i)), DeleteKey(i), []byte("v"))
	}
	db.Flush()
	// Warm the cache.
	for i := 0; i < 400; i++ {
		db.Get([]byte(fmt.Sprintf("k%05d", i)))
	}
	before := counting.Stats.Snapshot()
	for i := 0; i < 400; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("k%05d", i))); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	delta := counting.Stats.Snapshot().Sub(before)
	if delta.PagesRead != 0 {
		t.Fatalf("warm reads still did %d page I/Os", delta.PagesRead)
	}
}
