package lethe

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lethe/internal/vfs"
)

// TestSnapshotConsistentAcrossShardsUnderWriters is the headline snapshot
// guarantee: a pinned snapshot never observes later writes, flushes, or
// compactions on any shard, and Get-after-Scan on one snapshot agrees with
// what the scan saw. Run under -race in CI.
func TestSnapshotConsistentAcrossShardsUnderWriters(t *testing.T) {
	const n = 400
	db := openSharded(t, vfs.NewMem(), 4)
	defer db.Close()
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Overwrite existing keys and add new ones, across shards.
				db.Put(shardKey((i*13+w)%n), DeleteKey(9999), []byte("overwritten"))
				db.Put(append([]byte{byte(i * 31)}, []byte(fmt.Sprintf("new-%d-%d", w, i))...), 1, []byte("late"))
				db.Delete(shardKey((i*7 + w + n/2) % n))
				if i%50 == 0 {
					db.Flush()
				}
			}
		}(w)
	}

	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	// A key deterministically born after the snapshot: it must be live in
	// the DB but invisible to the snapshot, every round.
	postKey := []byte("post-snapshot-key")
	if err := db.Put(postKey, 1, []byte("late")); err != nil {
		t.Fatal(err)
	}

	// Capture the snapshot's view once; it is the ground truth below.
	type pair struct {
		d DeleteKey
		v []byte
	}
	ref := map[string]pair{}
	var order [][]byte
	if err := snap.Scan(nil, nil, func(k []byte, d DeleteKey, v []byte) bool {
		key := append([]byte(nil), k...)
		ref[string(key)] = pair{d, append([]byte(nil), v...)}
		order = append(order, key)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("snapshot scan saw nothing")
	}

	// While writers churn and maintenance runs, the snapshot must not move.
	for round := 0; round < 8; round++ {
		db.Flush()
		if round%3 == 0 {
			db.Maintain()
		}
		i := 0
		if err := snap.Scan(nil, nil, func(k []byte, d DeleteKey, v []byte) bool {
			if i >= len(order) {
				t.Errorf("round %d: extra key %q", round, k)
				return false
			}
			want := ref[string(order[i])]
			if !bytes.Equal(k, order[i]) || d != want.d || !bytes.Equal(v, want.v) {
				t.Errorf("round %d: entry %d changed: %q/%d/%q", round, i, k, d, v)
				return false
			}
			i++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if i != len(order) {
			t.Fatalf("round %d: snapshot scan shrank to %d of %d", round, i, len(order))
		}
		// Get after Scan, same snapshot: every key the scan saw reads back
		// identically, on whichever shard it lives.
		for j := 0; j < len(order); j += 37 {
			k := order[j]
			v, d, err := snap.GetWithDeleteKey(k)
			if err != nil {
				t.Fatalf("round %d: snapshot get %q: %v", round, k, err)
			}
			want := ref[string(k)]
			if d != want.d || !bytes.Equal(v, want.v) {
				t.Fatalf("round %d: get %q = %q/%d, scan saw %q/%d", round, k, v, d, want.v, want.d)
			}
		}
		// Keys born after the snapshot stay invisible — even though the
		// live DB serves them.
		if _, err := db.Get(postKey); err != nil {
			t.Fatalf("round %d: post-snapshot key not live: %v", round, err)
		}
		if _, err := snap.Get(postKey); !errors.Is(err, ErrNotFound) {
			t.Fatalf("round %d: post-snapshot key visible (err=%v)", round, err)
		}
	}

	close(stop)
	wg.Wait()
	if err := snap.Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Get(shardKey(0)); err == nil {
		t.Fatal("get on released snapshot succeeded")
	}
}

// listSST returns the sstable file names on fs with the given path prefix.
func listSST(t *testing.T, fs vfs.FS, prefix string) map[string]bool {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	for _, n := range names {
		if strings.HasPrefix(n, prefix) && strings.HasSuffix(n, ".sst") {
			out[n] = true
		}
	}
	return out
}

// TestIteratorCloseReleasesObsoleteFiles: an early Close drains the
// iterator's pins so sstables obsoleted by a compaction that ran
// mid-iteration are deleted from the filesystem right away.
func TestIteratorCloseReleasesObsoleteFiles(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open(Options{Storage: StorageOptions{FS: fs}, BufferBytes: 1 << 12, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), DeleteKey(i), bytes.Repeat([]byte("v"), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	before := listSST(t, fs, "")
	if len(before) == 0 {
		t.Fatal("no sstables on disk")
	}

	it, err := db.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // partially consume, pinning the version
		if !it.Next() {
			t.Fatal("iterator exhausted early")
		}
	}
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	// The compaction's inputs are obsolete but pinned by the iterator.
	held := 0
	for name := range before {
		if listSST(t, fs, "")[name] {
			held++
		}
	}
	if held == 0 {
		t.Fatal("obsolete inputs deleted while the iterator pinned them")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	after := listSST(t, fs, "")
	for name := range before {
		if after[name] {
			t.Fatalf("obsolete sstable %s survived iterator Close", name)
		}
	}
	// The data is intact in the compacted files.
	count := 0
	if err := db.Scan(nil, nil, func([]byte, DeleteKey, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 500 {
		t.Fatalf("post-compaction scan: %d keys", count)
	}
}

// TestIteratorReleasesShardPinsMidIteration: an owned cross-shard iterator
// drops each shard's pin as the cursor exhausts it, so one long scan does
// not hold every shard's obsolete files until Close.
func TestIteratorReleasesShardPinsMidIteration(t *testing.T) {
	const n = 300
	fs := vfs.NewMem()
	db, err := Open(Options{Storage: StorageOptions{FS: fs}, Shards: 2, BufferBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	shard0Before := listSST(t, fs, "shard-0/")
	shard1Before := listSST(t, fs, "shard-1/")
	if len(shard0Before) == 0 || len(shard1Before) == 0 {
		t.Fatalf("sstables per shard: %d / %d", len(shard0Before), len(shard1Before))
	}
	boundary := db.ShardBoundaries()[0]

	it, err := db.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// Drain shard 0: advance until the cursor yields a shard-1 key.
	for it.Next() {
		if bytes.Compare(it.Key(), boundary) >= 0 {
			break
		}
	}
	if !it.Valid() {
		t.Fatal("never reached shard 1")
	}
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	// Shard 0's pin was released when the cursor moved past it: its
	// obsolete inputs are gone. Shard 1's are still pinned.
	now := listSST(t, fs, "")
	for name := range shard0Before {
		if now[name] {
			t.Fatalf("shard-0 obsolete file %s still pinned after cursor passed it", name)
		}
	}
	held := 0
	for name := range shard1Before {
		if now[name] {
			held++
		}
	}
	if held == 0 {
		t.Fatal("shard-1 files deleted while the cursor reads them")
	}
	// Natural exhaustion releases the last shard without Close.
	for it.Next() {
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	now = listSST(t, fs, "")
	for name := range shard1Before {
		if now[name] {
			t.Fatalf("shard-1 obsolete file %s survived exhaustion", name)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIterDegenerateRanges: empty and inverted ranges on the new
// cursor, from both DB.NewIter and Snapshot.NewIter, yield clean empty
// iterators; SeekGE on them stays exhausted.
func TestSnapshotIterDegenerateRanges(t *testing.T) {
	db := openSharded(t, vfs.NewMem(), 4)
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put(shardKey(i), DeleteKey(i), shardVal(i))
	}
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	lo, hi := []byte{0x10}, []byte{0xf0}
	for name, bounds := range map[string][2][]byte{
		"inverted": {hi, lo},
		"empty":    {lo, lo},
	} {
		for src, open := range map[string]func(start, end []byte) (*Iterator, error){
			"db":   db.NewIter,
			"snap": snap.NewIter,
		} {
			it, err := open(bounds[0], bounds[1])
			if err != nil {
				t.Fatalf("%s/%s: %v", src, name, err)
			}
			if it.Next() || it.Valid() {
				t.Errorf("%s/%s: not empty", src, name)
			}
			it.SeekGE(lo)
			if it.Next() {
				t.Errorf("%s/%s: SeekGE revived an empty-range iterator", src, name)
			}
			if err := it.Close(); err != nil {
				t.Errorf("%s/%s: close: %v", src, name, err)
			}
		}
	}

	// A snapshot iterator's SeekGE is absolute: backward seeks work.
	it, err := snap.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var first []byte
	if !it.Next() {
		t.Fatal("empty snapshot")
	}
	first = append(first, it.Key()...)
	for it.Next() { // exhaust
	}
	it.SeekGE([]byte{0}) // revive from the snapshot's pins
	if !it.Next() || !bytes.Equal(it.Key(), first) {
		t.Fatalf("backward seek: got %q, want %q", it.Key(), first)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSecondaryRangeScanDeterministicOrder: results are sorted by delete
// key then sort key on sharded, unsharded, and snapshot paths — the order
// must not leak the shard layout.
func TestSecondaryRangeScanDeterministicOrder(t *testing.T) {
	check := func(t *testing.T, items []Item, wantLen int) {
		t.Helper()
		if len(items) != wantLen {
			t.Fatalf("%d items, want %d", len(items), wantLen)
		}
		for i := 1; i < len(items); i++ {
			a, b := items[i-1], items[i]
			if a.DKey > b.DKey || (a.DKey == b.DKey && bytes.Compare(a.Key, b.Key) >= 0) {
				t.Fatalf("items[%d..%d] out of order: (%d,%x) then (%d,%x)",
					i-1, i, a.DKey, a.Key, b.DKey, b.Key)
			}
		}
	}
	const n = 200
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := openSharded(t, vfs.NewMem(), shards)
			defer db.Close()
			for i := 0; i < n; i++ {
				// Delete keys run counter to shard order: shard-order
				// concatenation would interleave them.
				if err := db.Put(shardKey(i), DeleteKey(n-i), shardVal(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			items, err := db.SecondaryRangeScan(1, DeleteKey(n+1))
			if err != nil {
				t.Fatal(err)
			}
			check(t, items, n)

			snap, err := db.NewSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Release()
			items, err = snap.SecondaryRangeScan(1, DeleteKey(n+1))
			if err != nil {
				t.Fatal(err)
			}
			check(t, items, n)
		})
	}
}

// TestSecondaryRangeDeletePartialFailure: when one shard's delete fails
// mid-fan-out, the per-shard breakdown records exactly how far it got, and
// the documented partial-application semantics hold (earlier shards
// applied, later shards untouched).
func TestSecondaryRangeDeletePartialFailure(t *testing.T) {
	const n = 400
	errInjected := errors.New("injected srd read fault")
	var armed atomic.Bool
	base := vfs.NewMem()
	fs := vfs.NewInject(base, func(op vfs.Op, name string) error {
		if armed.Load() && op == vfs.OpRead &&
			strings.HasPrefix(name, "shard-2/") && strings.HasSuffix(name, ".sst") {
			return errInjected
		}
		return nil
	})
	db, err := Open(Options{Storage: StorageOptions{FS: fs}, Shards: 4, BufferBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Alternating delete keys make every page a partial drop, so the
	// delete must read pages — the injected fault's trigger.
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(1+i%2), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	armed.Store(true)
	st, err := db.SecondaryRangeDelete(1, 2)
	armed.Store(false)
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want the injected fault", err)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("breakdown reached %d shards, want 3 (0, 1, failing 2)", len(st.Shards))
	}
	for i, ss := range st.Shards {
		if ss.Shard != i {
			t.Fatalf("breakdown[%d].Shard = %d", i, ss.Shard)
		}
		if i < 2 {
			if ss.Err != nil {
				t.Fatalf("shard %d recorded error %v", i, ss.Err)
			}
			if ss.EntriesDropped == 0 {
				t.Fatalf("shard %d dropped nothing", i)
			}
		}
	}
	if !errors.Is(st.Shards[2].Err, errInjected) {
		t.Fatalf("failing shard's Err = %v", st.Shards[2].Err)
	}
	sum := 0
	for _, ss := range st.Shards {
		sum += ss.EntriesDropped
	}
	if sum != st.EntriesDropped {
		t.Fatalf("breakdown sums to %d, aggregate says %d", sum, st.EntriesDropped)
	}

	// Earlier shards applied; the shards after the failure are untouched:
	// their dkey=1 entries are still readable.
	items, err := db.SecondaryRangeScan(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	bounds := db.ShardBoundaries()
	perShard := make([]int, 4)
	for _, it := range items {
		perShard[shardIndex(bounds, it.Key)]++
	}
	if perShard[0] != 0 || perShard[1] != 0 {
		t.Fatalf("applied shards still hold entries: %v", perShard)
	}
	if perShard[3] == 0 {
		t.Fatalf("untouched shard lost its entries: %v", perShard)
	}
	// Retrying after the fault clears finishes the job.
	if _, err := db.SecondaryRangeDelete(1, 2); err != nil {
		t.Fatal(err)
	}
	items, err = db.SecondaryRangeScan(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("%d dkey=1 entries survived the retried delete", len(items))
	}
}
