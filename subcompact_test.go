// Tests for parallel subcompactions at the engine level: reader safety under
// a fanned-out full-tree compaction across shards, and the guarantee that
// synchronous (manual-clock) mode ignores Subcompactions entirely so
// deterministic runs stay bit-for-bit identical at any setting.
package lethe

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestParallelFullTreeCompactWithConcurrentReaders hammers a 4-shard DB with
// point reads, scans, and snapshot reads while a fanned-out FullTreeCompact
// runs; meant for -race. Readers must always observe committed values.
func TestParallelFullTreeCompactWithConcurrentReaders(t *testing.T) {
	db, err := Open(Options{
		InMemory:          true,
		DisableWAL:        true,
		Shards:            4,
		CompactionWorkers: 4,
		Subcompactions:    4,
		BufferBytes:       8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i = (i + 7) % n {
				select {
				case <-stop:
					return
				default:
				}
				v, err := db.Get(shardKey(i))
				if err != nil || !bytes.Equal(v, shardVal(i)) {
					fail <- fmt.Errorf("get %d during compaction: %q %v", i, v, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			seen := 0
			err := db.Scan(nil, nil, func(k []byte, dk DeleteKey, v []byte) bool {
				seen++
				return true
			})
			if err != nil {
				fail <- fmt.Errorf("scan during compaction: %v", err)
				return
			}
			if seen != n {
				fail <- fmt.Errorf("scan during compaction saw %d keys, want %d", seen, n)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := db.NewSnapshot()
			if err != nil {
				fail <- fmt.Errorf("snapshot during compaction: %v", err)
				return
			}
			for i := 0; i < n; i += 101 {
				v, err := snap.Get(shardKey(i))
				if err != nil || !bytes.Equal(v, shardVal(i)) {
					fail <- fmt.Errorf("snapshot get %d during compaction: %q %v", i, v, err)
					snap.Release()
					return
				}
			}
			if err := snap.Release(); err != nil {
				fail <- fmt.Errorf("snapshot release: %v", err)
				return
			}
		}
	}()

	for round := 0; round < 3; round++ {
		if err := db.FullTreeCompact(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	for i := 0; i < n; i++ {
		v, err := db.Get(shardKey(i))
		if err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("get %d after compaction: %q %v", i, v, err)
		}
	}
	if rs := db.RuntimeStats(); rs.MaxMergeParallelism > 4 {
		t.Fatalf("merge parallelism %d exceeded the 4-worker pool", rs.MaxMergeParallelism)
	}
}

// TestManualClockSerialEquivalence runs the same operation sequence under a
// manual clock at Subcompactions 1 and 4 and requires bit-identical trees:
// synchronous mode never fans out, so determinism is preserved at any
// setting.
func TestManualClockSerialEquivalence(t *testing.T) {
	build := func(k int) (*DB, func() error) {
		clock := NewManualClock(time.Unix(1e6, 0))
		db, err := Open(Options{
			InMemory:       true,
			DisableWAL:     true,
			Shards:         2,
			Subcompactions: k,
			Clock:          clock,
			BufferBytes:    4 << 10,
			Seed:           1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1200; i++ {
			if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
				t.Fatal(err)
			}
			if i%7 == 6 {
				if err := db.Delete(shardKey(i - 3)); err != nil {
					t.Fatal(err)
				}
			}
			clock.Advance(time.Second)
		}
		// shardKey prefixes a hash byte, so range-delete over the raw ordered
		// key space instead; it spans whatever shards those bytes land in.
		if err := db.RangeDelete([]byte{0x20}, []byte{0x60}); err != nil {
			t.Fatal(err)
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := db.Maintain(); err != nil {
			t.Fatal(err)
		}
		if err := db.FullTreeCompact(); err != nil {
			t.Fatal(err)
		}
		return db, db.Close
	}

	serial, closeSerial := build(1)
	fanned, closeFanned := build(4)
	defer closeSerial()
	defer closeFanned()

	// Physical structure: every shard's level layout — run, file, entry, and
	// tombstone counts — must match exactly.
	ss, fs := serial.ShardStats(), fanned.ShardStats()
	if len(ss) != len(fs) {
		t.Fatalf("shard counts diverge: %d vs %d", len(ss), len(fs))
	}
	for i := range ss {
		if !reflect.DeepEqual(ss[i].Levels, fs[i].Levels) {
			t.Fatalf("shard %d level structure diverges:\nK=1: %+v\nK=4: %+v",
				i, ss[i].Levels, fs[i].Levels)
		}
	}

	// Logical content: identical scans, key for key.
	type kv struct {
		k, v string
		d    DeleteKey
	}
	collect := func(db *DB) []kv {
		var out []kv
		if err := db.Scan(nil, nil, func(k []byte, dk DeleteKey, v []byte) bool {
			out = append(out, kv{string(k), string(v), dk})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(serial), collect(fanned)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("scan contents diverge: %d vs %d entries", len(a), len(b))
	}
}
