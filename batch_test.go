package lethe

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestBatchBasics(t *testing.T) {
	db, err := Open(Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 12, PageSize: 256, FilePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	b := NewBatch().
		Put([]byte("a"), 1, []byte("va")).
		Put([]byte("b"), 2, []byte("vb")).
		Delete([]byte("a")).
		Put([]byte("c"), 3, []byte("vc"))
	if b.Len() != 4 {
		t.Fatalf("len = %d", b.Len())
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("batch must clear after apply")
	}
	// Later ops in the batch supersede earlier ones.
	if _, err := db.Get([]byte("a")); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete inside batch must win over the earlier put")
	}
	if v, _ := db.Get([]byte("b")); string(v) != "vb" {
		t.Fatalf("b = %q", v)
	}
	if v, _ := db.Get([]byte("c")); string(v) != "vc" {
		t.Fatalf("c = %q", v)
	}
}

func TestBatchRangeDelete(t *testing.T) {
	db, _ := Open(Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 12, PageSize: 256, FilePages: 4})
	defer db.Close()
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), 0, []byte("v"))
	}
	b := NewBatch().RangeDelete([]byte("k010"), []byte("k020")).Put([]byte("k015"), 0, []byte("back"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 20; i++ {
		v, err := db.Get([]byte(fmt.Sprintf("k%03d", i)))
		if i == 15 {
			if err != nil || string(v) != "back" {
				t.Fatalf("k015: %q %v", v, err)
			}
			continue
		}
		if !errors.Is(err, ErrNotFound) {
			t.Fatalf("k%03d survived the batched range delete", i)
		}
	}
	// Invalid range surfaces an error and applies nothing new.
	bad := NewBatch().RangeDelete([]byte("z"), []byte("a"))
	if err := db.Apply(bad); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestBatchRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Path: dir, BufferBytes: 1 << 14, PageSize: 512, FilePages: 8}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch()
	for i := 0; i < 30; i++ {
		b.Put([]byte(fmt.Sprintf("k%03d", i)), DeleteKey(i), []byte("v"))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close); the batch was synced so it must fully recover.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 30; i++ {
		if _, err := db2.Get([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatalf("batched key %d lost: %v", i, err)
		}
	}
}

// TestBatchModelEquivalence drives random batches against a map model.
func TestBatchModelEquivalence(t *testing.T) {
	db, _ := Open(Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 11, PageSize: 256, FilePages: 4, SizeRatio: 4})
	defer db.Close()
	model := map[int]string{}
	rng := rand.New(rand.NewSource(17))
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%04d", i)) }

	for round := 0; round < 60; round++ {
		b := NewBatch()
		for j := 0; j < rng.Intn(20)+1; j++ {
			i := rng.Intn(200)
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v-%d-%d", round, j)
				b.Put(key(i), DeleteKey(i), []byte(v))
				model[i] = v
			case 2:
				b.Delete(key(i))
				delete(model, i)
			}
		}
		if err := db.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		v, err := db.Get(key(i))
		want, live := model[i]
		if !live {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("key %d: want gone, got %q %v", i, v, err)
			}
			continue
		}
		if err != nil || string(v) != want {
			t.Fatalf("key %d: got %q/%v want %q", i, v, err, want)
		}
	}
}
