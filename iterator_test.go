package lethe

import (
	"errors"
	"fmt"
	"testing"
)

func TestIteratorSnapshot(t *testing.T) {
	db, err := Open(Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 12, PageSize: 256, FilePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), DeleteKey(i), []byte(fmt.Sprintf("v%d", i)))
	}
	it, err := db.NewIter([]byte("k010"), []byte("k020"))
	if err != nil {
		t.Fatal(err)
	}
	if it.Valid() {
		t.Fatal("fresh iterator is before the first item")
	}
	if it.Len() != 10 {
		t.Fatalf("len = %d", it.Len())
	}
	// Writes after creation are invisible: a snapshot.
	db.Put([]byte("k015x"), 0, []byte("new"))
	db.Delete([]byte("k012"))

	want := 10
	got := 0
	for it.Next() {
		k := string(it.Key())
		if k == "k015x" {
			t.Fatal("post-snapshot write visible")
		}
		if !it.Valid() {
			t.Fatal("valid inside iteration")
		}
		if it.DeleteKey() != DeleteKey(10+got) {
			t.Fatalf("dkey at %s: %d", k, it.DeleteKey())
		}
		got++
	}
	if got != want {
		t.Fatalf("iterated %d items", got)
	}
	if it.Next() {
		t.Fatal("exhausted iterator must stay exhausted")
	}
	if it.Valid() {
		t.Fatal("exhausted iterator is not valid")
	}
	// The live view reflects the later writes.
	if _, err := db.Get([]byte("k012")); !errors.Is(err, ErrNotFound) {
		t.Fatal("live delete lost")
	}
}

func TestIteratorEmptyRange(t *testing.T) {
	db, _ := Open(Options{InMemory: true, DisableWAL: true})
	defer db.Close()
	it, err := db.NewIter([]byte("a"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() || it.Len() != 0 {
		t.Fatal("empty range iterates nothing")
	}
}
