package lethe

import (
	"errors"
	"fmt"
	"testing"
)

func TestIteratorSnapshot(t *testing.T) {
	db, err := Open(Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 12, PageSize: 256, FilePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), DeleteKey(i), []byte(fmt.Sprintf("v%d", i)))
	}
	it, err := db.NewIter([]byte("k010"), []byte("k020"))
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.Valid() {
		t.Fatal("fresh iterator is before the first item")
	}
	// Writes after creation are invisible: a snapshot.
	db.Put([]byte("k015x"), 0, []byte("new"))
	db.Delete([]byte("k012"))

	want := 10
	got := 0
	for it.Next() {
		k := string(it.Key())
		if k == "k015x" {
			t.Fatal("post-snapshot write visible")
		}
		if !it.Valid() {
			t.Fatal("valid inside iteration")
		}
		if it.DeleteKey() != DeleteKey(10+got) {
			t.Fatalf("dkey at %s: %d", k, it.DeleteKey())
		}
		got++
	}
	if got != want {
		t.Fatalf("iterated %d items", got)
	}
	if it.Next() {
		t.Fatal("exhausted iterator must stay exhausted")
	}
	if it.Valid() {
		t.Fatal("exhausted iterator is not valid")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	// The live view reflects the later writes.
	if _, err := db.Get([]byte("k012")); !errors.Is(err, ErrNotFound) {
		t.Fatal("live delete lost")
	}
}

func TestIteratorEmptyRange(t *testing.T) {
	db, _ := Open(Options{InMemory: true, DisableWAL: true})
	defer db.Close()
	it, err := db.NewIter([]byte("a"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Fatal("empty range iterates nothing")
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorSeekGE(t *testing.T) {
	db, err := Open(Options{InMemory: true, DisableWAL: true,
		BufferBytes: 1 << 12, PageSize: 256, FilePages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), DeleteKey(i), []byte("v"))
	}

	it, err := db.NewIter(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()

	// Seek before reading anything.
	it.SeekGE([]byte("k150"))
	if !it.Next() || string(it.Key()) != "k150" {
		t.Fatalf("seek to k150 landed on %q", it.Key())
	}
	// Seek between keys lands on the next one.
	it.SeekGE([]byte("k160x"))
	if !it.Next() || string(it.Key()) != "k161" {
		t.Fatalf("seek to k160x landed on %q", it.Key())
	}
	// Seek past the end exhausts.
	it.SeekGE([]byte("z"))
	if it.Next() {
		t.Fatalf("seek past end yielded %q", it.Key())
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}

	// Bounded iterator clamps seeks to its range.
	it2, err := db.NewIter([]byte("k050"), []byte("k060"))
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	it2.SeekGE([]byte("k000"))
	if !it2.Next() || string(it2.Key()) != "k050" {
		t.Fatalf("clamped seek landed on %q", it2.Key())
	}
	it2.SeekGE([]byte("k059x"))
	if it2.Next() {
		t.Fatalf("seek past bound yielded %q", it2.Key())
	}
	if err := it2.Close(); err != nil {
		t.Fatal(err)
	}
}
