package lethe_test

import (
	"fmt"
	"time"

	"lethe"
)

// ExampleOpen shows the minimal lifecycle: open, write, read, close.
func ExampleOpen() {
	db, err := lethe.Open(lethe.Options{InMemory: true, DisableWAL: true})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put([]byte("greeting"), lethe.DeleteKey(time.Now().Unix()), []byte("hello"))
	v, _ := db.Get([]byte("greeting"))
	fmt.Println(string(v))
	// Output: hello
}

// ExampleDB_SecondaryRangeDelete demonstrates a retention purge on the
// secondary delete key without a full-tree compaction.
func ExampleDB_SecondaryRangeDelete() {
	db, _ := lethe.Open(lethe.Options{InMemory: true, DisableWAL: true, TilePages: 4})
	defer db.Close()

	// Documents keyed by id, expiring by day-of-creation.
	for day := 0; day < 10; day++ {
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("doc-%02d-%02d", day, i)
			db.Put([]byte(key), lethe.DeleteKey(day), []byte("payload"))
		}
	}
	// Retention: drop everything older than day 7.
	stats, _ := db.SecondaryRangeDelete(0, 7)
	fmt.Println("entries dropped:", stats.EntriesDropped)

	live := 0
	db.Scan(nil, nil, func([]byte, lethe.DeleteKey, []byte) bool { live++; return true })
	fmt.Println("entries live:", live)
	// Output:
	// entries dropped: 140
	// entries live: 60
}

// ExampleDB_NewIter iterates a consistent snapshot of a key range.
func ExampleDB_NewIter() {
	db, _ := lethe.Open(lethe.Options{InMemory: true, DisableWAL: true})
	defer db.Close()
	for _, k := range []string{"ant", "bee", "cat", "dog"} {
		db.Put([]byte(k), 0, []byte("animal"))
	}
	it, _ := db.NewIter([]byte("b"), []byte("d"))
	defer it.Close()
	for it.Next() {
		fmt.Println(string(it.Key()))
	}
	// Output:
	// bee
	// cat
}

// ExampleOptimalTileSize reproduces the paper's §4.3 worked example.
func ExampleOptimalTileSize() {
	h := lethe.OptimalTileSize(lethe.TuningParams{
		Entries:           400e9 / 4096, // 400GB of 4KB pages, one unit per page
		EntriesPerPage:    1,
		FalsePositiveRate: 0.02,
		Levels:            8,
	}, lethe.WorkloadProfile{
		EmptyPointLookups:     25e6,
		PointLookups:          25e6,
		ShortRangeLookups:     1e4,
		SecondaryRangeDeletes: 1,
	})
	fmt.Println(h > 50 && h < 150) // the paper derives h ≈ 100
	// Output: true
}

// ExampleBatch applies several operations atomically.
func ExampleBatch() {
	db, _ := lethe.Open(lethe.Options{InMemory: true, DisableWAL: true})
	defer db.Close()

	b := lethe.NewBatch().
		Put([]byte("a"), 1, []byte("va")).
		Put([]byte("b"), 2, []byte("vb")).
		Delete([]byte("a"))
	db.Apply(b)

	_, errA := db.Get([]byte("a"))
	vb, _ := db.Get([]byte("b"))
	fmt.Println(errA == lethe.ErrNotFound, string(vb))
	// Output: true vb
}
