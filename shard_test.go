package lethe

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"lethe/internal/vfs"
)

// shardKey spreads keys across the full byte space so the default
// boundaries distribute them over every shard.
func shardKey(i int) []byte {
	return append([]byte{byte(i * 37)}, []byte(fmt.Sprintf("key-%06d", i))...)
}

func shardVal(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

func openSharded(t *testing.T, fs vfs.FS, shards int) *DB {
	t.Helper()
	db, err := Open(Options{Storage: StorageOptions{FS: fs}, Shards: shards, BufferBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDefaultShardBoundaries(t *testing.T) {
	if got := DefaultShardBoundaries(1); got != nil {
		t.Fatalf("n=1: %v, want nil", got)
	}
	for _, n := range []int{2, 3, 4, 8, 16, 256} {
		bounds := DefaultShardBoundaries(n)
		if len(bounds) != n-1 {
			t.Fatalf("n=%d: %d boundaries", n, len(bounds))
		}
		if err := validateBoundaries(bounds); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestShardRouting(t *testing.T) {
	// Keys at, below, and above each boundary land in the right shard.
	bounds := DefaultShardBoundaries(4) // 0x4000, 0x8000, 0xc000
	cases := []struct {
		key  []byte
		want int
	}{
		{[]byte{0x00}, 0},
		{[]byte{0x3f, 0xff, 0xff}, 0},
		{[]byte{0x40, 0x00}, 1}, // exactly on the boundary: upper shard
		{[]byte{0x40}, 0},       // prefix of the boundary sorts before it
		{[]byte{0x7f}, 1},
		{[]byte{0x80, 0x00}, 2},
		{[]byte{0xc0, 0x00}, 3},
		{[]byte{0xff, 0xff}, 3},
	}
	for _, c := range cases {
		if got := shardIndex(bounds, c.key); got != c.want {
			t.Errorf("shardIndex(%x) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestShardedBasicOps(t *testing.T) {
	const n = 300
	db := openSharded(t, vfs.NewMem(), 4)
	defer db.Close()
	if db.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", db.ShardCount())
	}
	if len(db.ShardBoundaries()) != 3 {
		t.Fatalf("boundaries: %d", len(db.ShardBoundaries()))
	}

	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, d, err := db.GetWithDeleteKey(shardKey(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(v, shardVal(i)) || d != DeleteKey(i) {
			t.Fatalf("get %d: %q %d", i, v, d)
		}
	}

	// Every shard holds part of the data.
	per := db.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats: %d", len(per))
	}
	total := 0
	for i, s := range per {
		held := s.TreeEntries + s.BufferEntries
		if held == 0 {
			t.Errorf("shard %d holds nothing", i)
		}
		total += held
	}
	if total != n {
		t.Fatalf("entries across shards = %d, want %d", total, n)
	}
	agg := db.Stats()
	if agg.TreeEntries+agg.BufferEntries != n {
		t.Fatalf("aggregate entries = %d, want %d", agg.TreeEntries+agg.BufferEntries, n)
	}

	// Deletes route to the owning shard.
	for i := 0; i < n; i += 3 {
		if err := db.Delete(shardKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		_, err := db.Get(shardKey(i))
		if i%3 == 0 && err != ErrNotFound {
			t.Fatalf("deleted key %d: err=%v", i, err)
		}
		if i%3 != 0 && err != nil {
			t.Fatalf("kept key %d: %v", i, err)
		}
	}
}

func TestShardedScanMergesInKeyOrder(t *testing.T) {
	const n = 500
	db := openSharded(t, vfs.NewMem(), 5)
	defer db.Close()

	var keys [][]byte
	for i := 0; i < n; i++ {
		k := shardKey(i)
		keys = append(keys, k)
		if err := db.Put(k, DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })

	collect := func(start, end []byte) [][]byte {
		t.Helper()
		var got [][]byte
		prev := []byte(nil)
		err := db.Scan(start, end, func(k []byte, d DeleteKey, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("scan out of order: %x then %x", prev, k)
			}
			prev = append([]byte(nil), k...)
			got = append(got, prev)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	// Full scan crosses every shard in key order.
	got := collect(nil, nil)
	if len(got) != n {
		t.Fatalf("full scan: %d keys, want %d", len(got), n)
	}
	for i := range got {
		if !bytes.Equal(got[i], keys[i]) {
			t.Fatalf("scan[%d] = %x, want %x", i, got[i], keys[i])
		}
	}

	// A bounded scan spanning shard boundaries returns exactly the keys in
	// range.
	start, end := keys[n/5], keys[4*n/5]
	got = collect(start, end)
	want := keys[n/5 : 4*n/5]
	if len(got) != len(want) {
		t.Fatalf("bounded scan: %d keys, want %d", len(got), len(want))
	}

	// Early termination stops the merge.
	count := 0
	if err := db.Scan(nil, nil, func(k []byte, d DeleteKey, v []byte) bool {
		count++
		return count < 7
	}); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("early stop after %d keys", count)
	}

	// NewIter sees the same merged order.
	it, err := db.NewIter(start, end)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	iterated := 0
	for ; it.Next(); iterated++ {
		if !bytes.Equal(it.Key(), want[iterated]) {
			t.Fatalf("iter[%d] = %x, want %x", iterated, it.Key(), want[iterated])
		}
	}
	if iterated != len(want) {
		t.Fatalf("iter yielded %d keys, want %d", iterated, len(want))
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScanDegenerateRange is the regression test for empty/inverted scan
// ranges: they must return an empty result, not panic or scan everything —
// on both the single-instance and sharded paths.
func TestScanDegenerateRange(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := openSharded(t, vfs.NewMem(), shards)
			defer db.Close()
			for i := 0; i < 200; i++ {
				if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
					t.Fatal(err)
				}
			}
			lo, hi := shardKey(3), shardKey(200)
			for name, bounds := range map[string][2][]byte{
				"inverted":     {hi, lo},
				"empty":        {lo, lo},
				"empty-string": {lo, []byte{}},
			} {
				if bytes.Compare(bounds[0], bounds[1]) < 0 {
					t.Fatalf("%s: test bounds not degenerate", name)
				}
				n := 0
				if err := db.Scan(bounds[0], bounds[1], func(k []byte, d DeleteKey, v []byte) bool {
					n++
					return true
				}); err != nil {
					t.Fatalf("%s: scan: %v", name, err)
				}
				if n != 0 {
					t.Errorf("%s: scan visited %d keys, want 0", name, n)
				}
				it, err := db.NewIter(bounds[0], bounds[1])
				if err != nil {
					t.Fatalf("%s: iter: %v", name, err)
				}
				if it.Next() || it.Valid() {
					t.Errorf("%s: iterator not empty", name)
				}
				if err := it.Close(); err != nil {
					t.Errorf("%s: close: %v", name, err)
				}
			}
		})
	}
}

func TestShardedRangeDeleteSpansShards(t *testing.T) {
	const n = 400
	db := openSharded(t, vfs.NewMem(), 4)
	defer db.Close()
	var keys [][]byte
	for i := 0; i < n; i++ {
		k := shardKey(i)
		keys = append(keys, k)
		if err := db.Put(k, DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })

	// Delete the middle half of the key space — spans at least two shards.
	start, end := keys[n/4], keys[3*n/4]
	if err := db.RangeDelete(start, end); err != nil {
		t.Fatal(err)
	}
	survivors := 0
	if err := db.Scan(nil, nil, func(k []byte, d DeleteKey, v []byte) bool {
		if bytes.Compare(k, start) >= 0 && bytes.Compare(k, end) < 0 {
			t.Fatalf("key %x survived range delete", k)
		}
		survivors++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if survivors != n-n/2 {
		t.Fatalf("%d survivors, want %d", survivors, n-n/2)
	}
}

func TestShardedSecondaryRangeOps(t *testing.T) {
	const n = 400
	db := openSharded(t, vfs.NewMem(), 4)
	defer db.Close()
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// The secondary scan fans out to every shard and finds every D in
	// range.
	items, err := db.SecondaryRangeScan(100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 200 {
		t.Fatalf("secondary scan: %d items, want 200", len(items))
	}
	seen := map[uint64]bool{}
	for _, it := range items {
		if it.DKey < 100 || it.DKey >= 300 {
			t.Fatalf("item D=%d outside range", it.DKey)
		}
		if seen[uint64(it.DKey)] {
			t.Fatalf("duplicate D=%d across shards", it.DKey)
		}
		seen[uint64(it.DKey)] = true
	}

	// The secondary delete drops exactly the D range, shard-wide.
	st, err := db.SecondaryRangeDelete(100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesDropped != 200 {
		t.Fatalf("EntriesDropped = %d, want 200", st.EntriesDropped)
	}
	for i := 0; i < n; i++ {
		_, err := db.Get(shardKey(i))
		inRange := i >= 100 && i < 300
		if inRange && err != ErrNotFound {
			t.Fatalf("dropped key %d still readable: %v", i, err)
		}
		if !inRange && err != nil {
			t.Fatalf("kept key %d: %v", i, err)
		}
	}
}

func TestShardedBatchApply(t *testing.T) {
	db := openSharded(t, vfs.NewMem(), 4)
	defer db.Close()
	for i := 0; i < 100; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}

	var keys [][]byte
	for i := 0; i < 100; i++ {
		keys = append(keys, shardKey(i))
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })

	// One batch: a cross-shard range delete, then point ops — the puts come
	// after the range delete in the batch, so they must survive it even
	// when their keys fall inside the deleted range.
	b := NewBatch()
	b.RangeDelete(keys[10], keys[30]) // spans shards
	b.Put(shardKey(1000), 1000, shardVal(1000))
	b.Put(shardKey(1), 1, []byte("updated"))
	b.Delete(shardKey(2))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("batch not cleared: %d ops", b.Len())
	}

	if v, err := db.Get(shardKey(1000)); err != nil || !bytes.Equal(v, shardVal(1000)) {
		t.Fatalf("new key: %q %v", v, err)
	}
	if v, err := db.Get(shardKey(1)); err != nil || string(v) != "updated" {
		t.Fatalf("updated key: %q %v", v, err)
	}
	if _, err := db.Get(shardKey(2)); err != ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
	for _, k := range keys[10:30] {
		if bytes.Equal(k, shardKey(1)) || bytes.Equal(k, shardKey(2)) {
			continue // rewritten (or re-deleted) after the range delete
		}
		if _, err := db.Get(k); err != ErrNotFound {
			t.Fatalf("range-deleted key %x: %v", k, err)
		}
	}
}

// TestShardedBatchApplyRejectsBadOpWhole: a deterministic validation error
// anywhere in a cross-shard batch must reject the whole batch before any
// shard commits, matching the unsharded path's all-or-nothing behavior.
func TestShardedBatchApplyRejectsBadOpWhole(t *testing.T) {
	db := openSharded(t, vfs.NewMem(), 4)
	defer db.Close()

	b := NewBatch()
	b.Put(shardKey(0), 1, shardVal(0))
	b.RangeDelete([]byte{0xf0}, []byte{0xf0}) // empty range: invalid
	if err := db.Apply(b); err == nil {
		t.Fatal("empty-range batch accepted")
	}
	if b.Len() != 2 {
		t.Fatalf("failed batch cleared: %d ops", b.Len())
	}
	if _, err := db.Get(shardKey(0)); err != ErrNotFound {
		t.Fatalf("rejected batch partially applied: %v", err)
	}
}

// TestShardedReopen writes across shards, closes, reopens from the shard
// manifest, and verifies routing, data, and the resharding guard.
func TestShardedReopen(t *testing.T) {
	const n = 300
	fs := vfs.NewMem()
	db := openSharded(t, fs, 4)
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 5 {
		if err := db.Delete(shardKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.SecondaryRangeDelete(200, 250); err != nil {
		t.Fatal(err)
	}
	wantBounds := db.ShardBoundaries()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen without specifying Shards: the manifest decides.
	db2, err := Open(Options{Storage: StorageOptions{FS: fs}, BufferBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.ShardCount() != 4 {
		t.Fatalf("reopened ShardCount = %d, want 4", db2.ShardCount())
	}
	gotBounds := db2.ShardBoundaries()
	if len(gotBounds) != len(wantBounds) {
		t.Fatalf("boundaries count %d != %d", len(gotBounds), len(wantBounds))
	}
	for i := range gotBounds {
		if !bytes.Equal(gotBounds[i], wantBounds[i]) {
			t.Fatalf("boundary %d changed across reopen", i)
		}
	}
	for i := 0; i < n; i++ {
		v, err := db2.Get(shardKey(i))
		deleted := i%5 == 0 || (i >= 200 && i < 250)
		if deleted {
			if err != ErrNotFound {
				t.Fatalf("key %d should be deleted: %v", i, err)
			}
			continue
		}
		if err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("key %d after reopen: %q %v", i, v, err)
		}
	}

	// Asking for a different explicit shard count is a resharding error.
	if _, err := Open(Options{Storage: StorageOptions{FS: fs}, Shards: 2}); err == nil ||
		!strings.Contains(err.Error(), "resharding") {
		t.Fatalf("conflicting shard count: err=%v", err)
	}
}

// TestUnshardedReopenWithShardsRejected: an unsharded database has no
// SHARDS manifest, so opening it with Shards > 1 must be refused — a fresh
// sharded layout would shadow all root-level data behind empty shards.
func TestUnshardedReopenWithShardsRejected(t *testing.T) {
	fs := vfs.NewMem()
	db, err := Open(Options{Storage: StorageOptions{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Options{Storage: StorageOptions{FS: fs}, Shards: 4}); err == nil ||
		!strings.Contains(err.Error(), "unsharded") {
		t.Fatalf("sharded open over unsharded data: err=%v", err)
	}

	// Reopening unsharded still works and sees the data.
	db2, err := Open(Options{Storage: StorageOptions{FS: fs}})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("data after rejected open: %q %v", v, err)
	}
}

// TestShardedWALReplayLandsInCorrectShards simulates a crash (the handle is
// abandoned without Close) and verifies each shard's WAL replays into that
// shard on reopen.
func TestShardedWALReplayLandsInCorrectShards(t *testing.T) {
	const n = 120
	fs := vfs.NewMem()
	db := openSharded(t, fs, 4)
	for i := 0; i < n; i++ {
		if err := db.Put(shardKey(i), DeleteKey(i), shardVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce the pipelines so the abandoned handle stays inert, then
	// "crash": reopen over the same filesystem without closing.
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Storage: StorageOptions{FS: fs}, BufferBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", db2.ShardCount())
	}
	for i := 0; i < n; i++ {
		v, err := db2.Get(shardKey(i))
		if err != nil || !bytes.Equal(v, shardVal(i)) {
			t.Fatalf("key %d after crash-reopen: %q %v", i, v, err)
		}
	}
	// Replay must restore each shard's own data: no shard may be empty and
	// the totals must match (routing during recovery happens implicitly,
	// because each shard replays only its own WAL directory).
	total := 0
	for i, s := range db2.ShardStats() {
		held := s.TreeEntries + s.BufferEntries
		if held == 0 {
			t.Errorf("shard %d empty after recovery", i)
		}
		total += held
	}
	if total != n {
		t.Fatalf("recovered %d entries, want %d", total, n)
	}
}

// TestShardsForcedSingle: under a manual clock or synchronous maintenance,
// a new database must stay single-instance so the paper harness's
// deterministic execution is unchanged.
func TestShardsForcedSingle(t *testing.T) {
	cases := map[string]Options{
		"manual-clock": {InMemory: true, Shards: 4,
			Clock: NewManualClock(time.Unix(1e6, 0))},
		"sync-maintenance": {InMemory: true, Shards: 4,
			DisableBackgroundMaintenance: true},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			db, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if db.ShardCount() != 1 {
				t.Fatalf("ShardCount = %d, want 1", db.ShardCount())
			}
			if err := db.Put([]byte("k"), 1, []byte("v")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestShardOptionValidation(t *testing.T) {
	if _, err := Open(Options{InMemory: true, Shards: maxShards + 1}); err == nil {
		t.Fatal("oversized shard count accepted")
	}
	if _, err := Open(Options{InMemory: true, Shards: 4,
		ShardBoundaries: [][]byte{[]byte("a")}}); err == nil {
		t.Fatal("wrong boundary count accepted")
	}
	if _, err := Open(Options{InMemory: true, Shards: 3,
		ShardBoundaries: [][]byte{[]byte("b"), []byte("a")}}); err == nil {
		t.Fatal("unsorted boundaries accepted")
	}
	// Custom boundaries route as specified.
	db, err := Open(Options{InMemory: true, Shards: 2,
		ShardBoundaries: [][]byte{[]byte("m")}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Put([]byte("apple"), 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("zebra"), 2, []byte("v")); err != nil {
		t.Fatal(err)
	}
	per := db.ShardStats()
	if got := per[0].BufferEntries + per[0].TreeEntries; got != 1 {
		t.Fatalf("shard 0 holds %d entries, want 1", got)
	}
	if got := per[1].BufferEntries + per[1].TreeEntries; got != 1 {
		t.Fatalf("shard 1 holds %d entries, want 1", got)
	}
}
