// This file holds the engine's tuning knobs and guidance: the paper's
// optimal delete-tile size (Eq. 3) and the write-path durability policy.
//
// # Tuning the write path: Options.WALSync
//
// The commit pipeline batches concurrent writers into leader-committed
// groups (one WAL write per group), and WALSync decides how the sync cost is
// paid:
//
//   - SyncGrouped (default): one sync per group, issued before any member is
//     acknowledged. Every acknowledged write is durable, and under
//     concurrency the sync cost is divided across the group — at 16 writers
//     the engine typically issues far fewer than one sync per ten commits
//     (watch Stats().WALSyncs versus Stats().CommitBatches). This is the
//     right choice for almost every durable workload.
//
//   - SyncAlways: each commit appends and syncs individually on a serialized
//     path. Throughput degrades to one device sync per write — use it only
//     when commits must not share fate with neighbors in a group (a torn
//     group record drops the whole group on replay).
//
//   - SyncNever: no commit-path sync; group records still reach the file on
//     every commit and sealed segments sync at rotation, so a crash loses at
//     most the OS-buffered tail of the live segment, in whole-group units.
//     Highest throughput; use when the workload can replay recent writes.
//
// Batches (DB.Apply) already amortize WAL I/O within one writer; WALSync
// governs amortization across writers.

package lethe

import "math"

// WorkloadProfile describes a workload's composition as relative operation
// frequencies, following §4.2.6's notation. Only ratios matter; the values
// need not sum to 1.
type WorkloadProfile struct {
	// EmptyPointLookups is f_EPQ, point queries with zero result.
	EmptyPointLookups float64
	// PointLookups is f_PQ, point queries with non-zero result.
	PointLookups float64
	// ShortRangeLookups is f_SRQ.
	ShortRangeLookups float64
	// LongRangeLookups is f_LRQ (does not affect h; long ranges amortize).
	LongRangeLookups float64
	// SecondaryRangeDeletes is f_SRD.
	SecondaryRangeDeletes float64
	// Inserts is f_I (does not affect h).
	Inserts float64
}

// TuningParams are the system parameters entering Eq. 3.
type TuningParams struct {
	// Entries is N, the entry count.
	Entries float64
	// EntriesPerPage is B.
	EntriesPerPage float64
	// FalsePositiveRate is the Bloom filters' FPR.
	FalsePositiveRate float64
	// Levels is L, the number of disk levels.
	Levels float64
}

// OptimalTileSize solves Eq. 3 (§4.2.6) for the largest delete-tile
// granularity h whose lookup penalty is still paid for by the secondary
// range delete savings:
//
//	h ≤ (N/B) / ( (f_EPQ+f_PQ)/f_SRD · FPR + f_SRQ/f_SRD · L )
//
// It returns at least 1 (the classical layout). A workload without
// secondary range deletes gets h = 1: tiles only cost there.
func OptimalTileSize(p TuningParams, w WorkloadProfile) int {
	if w.SecondaryRangeDeletes <= 0 || p.Entries <= 0 || p.EntriesPerPage <= 0 {
		return 1
	}
	pointTerm := (w.EmptyPointLookups + w.PointLookups) / w.SecondaryRangeDeletes * p.FalsePositiveRate
	rangeTerm := w.ShortRangeLookups / w.SecondaryRangeDeletes * p.Levels
	denom := pointTerm + rangeTerm
	if denom <= 0 {
		// No read pressure at all: the tile can span the whole file, but
		// cap at the page count to stay meaningful.
		return int(math.Max(1, p.Entries/p.EntriesPerPage))
	}
	h := p.Entries / p.EntriesPerPage / denom
	if h < 1 {
		return 1
	}
	return int(h)
}
