// This file holds the engine's tuning knobs and guidance: the paper's
// optimal delete-tile size (Eq. 3) and the write-path durability policy.
//
// # Tuning the write path: Options.WALSync
//
// The commit pipeline batches concurrent writers into leader-committed
// groups (one WAL write per group), and WALSync decides how the sync cost is
// paid:
//
//   - SyncGrouped (default): one sync per group, issued before any member is
//     acknowledged. Every acknowledged write is durable, and under
//     concurrency the sync cost is divided across the group — at 16 writers
//     the engine typically issues far fewer than one sync per ten commits
//     (watch Stats().WALSyncs versus Stats().CommitBatches). This is the
//     right choice for almost every durable workload.
//
//   - SyncAlways: each commit appends and syncs individually on a serialized
//     path. Throughput degrades to one device sync per write — use it only
//     when commits must not share fate with neighbors in a group (a torn
//     group record drops the whole group on replay).
//
//   - SyncNever: no commit-path sync; group records still reach the file on
//     every commit and sealed segments sync at rotation, so a crash loses at
//     most the OS-buffered tail of the live segment, in whole-group units.
//     Highest throughput; use when the workload can replay recent writes.
//
// Batches (DB.Apply) already amortize WAL I/O within one writer; WALSync
// governs amortization across writers.
//
// # Scaling out the engine: Shards, the shared runtime, and its budgets
//
// Options.Shards splits the key space into n independent engines (shard.go)
// and so parallelizes everything that is per-instance serial: the memory
// buffer's insert lock, the WAL append stream and its syncs, and the commit
// pipeline's leader. It is the right knob when a single pipeline's serial
// capacity is the ceiling — the classic symptoms are write stalls
// (Stats().WriteStalls climbing) or commit-queue convoys at high writer
// counts. BenchmarkShardedPuts models this with per-page device write
// latency: at 16 writers, 4 shards sustain ~2.7x the aggregate put
// throughput of 1 shard because the shards' write pipelines overlap their
// device time (numbers in BENCH.md).
//
// What sharding does NOT multiply: background resources. Every shard
// registers with one shared maintenance runtime owned by the database
// handle, which provides four global facilities (see DB.RuntimeStats for
// all of their health counters):
//
//   - CompactionWorkers sizes the one worker pool that executes every
//     shard's flushes and compactions. Workers drain a global priority
//     queue — flushes first (a backed-up flush queue stalls writers), then
//     compactions ordered by FADE urgency compared across shards, so the
//     most overdue delete debt anywhere in the database is paid first.
//     A dedicated flush lane (one extra goroutine) guarantees a flush is
//     never queued behind a long merge even at CompactionWorkers=1. Raise
//     the knob when compaction debt accumulates (runs piling up in
//     Stats().Levels) across shards; the maintenance goroutine count stays
//     CompactionWorkers+1 no matter how many shards exist.
//
//   - CacheBytes is the whole-database page-cache budget. Shards share one
//     cache through namespaced handles (no aliasing between shards' file
//     numbers), so 16 shards still use CacheBytes of cache memory, not
//     16x it. Watch Stats().CacheUsed/CacheHits/CacheMisses.
//
//   - MemoryBudget bounds total memtable bytes across shards. When the sum
//     exceeds it, writers to shards at or above their fair share
//     (MemoryBudget/Shards) stall — and the stall seals the hot shard's
//     buffer so the pool can flush it — while under-share shards keep
//     writing: one hot tenant cannot starve the others. Size it at a few
//     multiples of BufferBytes times the shard count you expect to be hot
//     simultaneously; RuntimeStats().MemoryStalls/MemoryStallTime show when
//     it binds.
//
//   - CompactionRateBytes caps maintenance write I/O in bytes/second via a
//     token bucket at the vfs layer. Unthrottled compaction bursts queue
//     foreground reads behind maintenance writes on the device;
//     BenchmarkCompactionInterference measures the effect — the rate
//     limiter trades maintenance progress (and, under sustained overload,
//     writer stalls) for flatter Get tails. Start at 2-4x the sustained
//     user write rate; RuntimeStats().ThrottleWaitTime shows how hard it
//     is braking.
//
// What sharding still costs: n memory buffers and WAL streams; cross-shard
// scans pay a k-way merge (~25% on full scans in BenchmarkShardedScan,
// nothing on point reads, which route directly); SecondaryRangeScan/Delete
// fan out to every shard since D is not the partitioning key; and
// cross-shard batches lose whole-batch atomicity. Workloads dominated by
// scans or secondary range deletes should prefer CompactionWorkers over
// more shards; write-heavy multi-tenant traffic wants shards plus a
// MemoryBudget.
//
// Boundaries are set at creation and recorded in the shard manifest.
// DefaultShardBoundaries assumes uniformly distributed leading key bytes;
// clustered key spaces (common prefixes, zero-padded counters) should pass
// Options.ShardBoundaries quantiles of the real distribution, or every key
// lands in one shard and the others idle. When the initial guess is wrong —
// or the distribution drifts after creation — the layout is not a life
// sentence: see the next section.
//
// # Resharding: SplitShard, MergeShards, and Options.AutoReshard
//
// The shard layout is a versioned object, not a creation-time constant. A
// split freezes one shard, flushes it, and partitions its key range at a
// delete-tile fence; a merge is the inverse. Both commit through an
// epoch-stamped routing table swapped atomically under readers: in-flight
// iterators and snapshots finish on the epoch they pinned, new operations
// route by the new one, and a crash at any point recovers to exactly the
// old or the new layout (reshard_test.go sweeps every fault offset).
//
// The cost model is what makes resharding cheap enough to do online.
// Sstables whose key range lies entirely on one side of the cut are handed
// off by rename — manifest operations, no data movement — so a split's
// cost is a handful of manifest commits plus a bounded rewrite of only the
// files that straddle the cut (at most one per level run, clipped to each
// side). ReshardStats reports the split: FilesHandedOff versus
// StraddlerRewrites/StraddlerRewriteBytes tells you how much of the shard
// moved by pointer versus by copy, and ManifestOps counts the commits.
// Because the cut lands on a tile fence, a well-aged shard splits with
// zero rewrites (TestSplitHandoffNoRewrite); the worst case rewrites one
// file per run.
//
// When to reach for it manually (`lethe -path DIR reshard split/merge`):
// split when one shard absorbs a disproportionate share of writes —
// ShardPressures shows per-shard WriteStalls, memtable backlog, and disk
// bytes, and `lethe stats` prints the same lines — and merge when
// neighboring shards sit idle, since each shard costs a memory buffer and
// a WAL stream even when cold. Pass an explicit boundary to pre-split for
// load you know is coming; pass none to cut at the median tile fence.
//
// Options.AutoReshard runs that judgment as a background policy: the
// balancer samples ShardPressures on the maintenance runtime's tick,
// splits a shard whose write stalls keep climbing while peers' do not,
// and merges the two smallest adjacent shards after a sustained idle
// streak, within [1, 8] shards by default. It is deliberately
// conservative — a split costs a freeze and a flush, so the policy
// requires a persistent signal, not one bad sample. Leave it off for
// benchmarking fixed layouts or when shard count is part of the
// operational contract; BenchmarkReshardConvergence measures how quickly
// an auto-resharded database catches a hand-tuned static layout under
// skew. Synchronous mode (DisableBackgroundMaintenance) keeps Shards=1
// and rejects resharding: a layout change needs the background machinery.
//
// # Compaction parallelism: Options.Subcompactions
//
// CompactionWorkers parallelizes *across* jobs; Subcompactions parallelizes
// *within* one. A single large compaction — a deep-level merge, a
// FullTreeCompact, a placement-repair wave — is otherwise one serial merge
// pipeline, and its duration bounds how fast the engine can pay down
// compaction and delete-persistence debt no matter how many workers idle
// beside it. With Subcompactions = K > 1, a job cuts its input key space at
// delete-tile index boundaries (metadata only, no data reads) into up to K
// byte-balanced subranges, merges them concurrently with each pipeline
// writing its own output files, and concatenates the outputs in key order at
// install. The result is semantically identical to the serial merge — same
// key ranges, same tombstone accounting, same FADE bookkeeping — it just
// finishes sooner; BenchmarkCompactionThroughput measures the speedup.
//
// The budget discipline: subcompactions borrow worker slots, they do not add
// goroutine capacity. A job asks the runtime for K-1 extra slots and fans
// out only as wide as the grant (runningCompactions + borrowed slots never
// exceeds CompactionWorkers, across every shard), so a busy pool degrades a
// job toward serial instead of oversubscribing the host, and the
// CompactionRateBytes token bucket still paces the aggregate write I/O of
// all pipelines together. Tier migrations reuse the same slots to overlap
// their per-file copies, which matters when each copy is paced by a modeled
// remote link: four overlapped transfers fill the link where serial copies
// would idle it between files (BenchmarkColdMigration). Remote compaction
// inputs stream through the same per-tile read-ahead scans use, so a
// cold-tier merge reads at link bandwidth rather than a round trip per
// block.
//
// Sizing: Subcompactions is a cap, clamped to CompactionWorkers; K = 2-4
// with CompactionWorkers ≥ K is where the large-job wins live. Small jobs
// with few distinct tile boundaries split less or not at all — fan-out
// never manufactures empty subranges. Synchronous/manual-clock mode ignores
// the knob entirely: the paper harness stays strictly serial and
// bit-for-bit deterministic. Observability: Stats().Subcompactions,
// MaxMergeWidth, CompactionTime, and CompactionThroughputMBps;
// RuntimeStats().SubcompactionsRun and MaxMergeParallelism;
// Stats().Tier.MigrationMBps for the migration side. `lethe stats` prints
// all three lines.
//
// # Reading at scale: snapshots and streaming iterators
//
// Every read primitive pins a refcounted view and streams from it — none
// materializes its result, so cost tracks what the caller consumes:
//
//   - Point reads (Get) route to one shard and read at most one page per
//     level after Bloom filters and fence pointers have their say. Nothing
//     to tune beyond CacheBytes.
//
//   - Range reads (Scan, NewIter) are lazy cursors: per shard they hold a
//     bounded copy of the buffered range plus one decoded tile per run, so
//     iterating the first K entries of an unbounded range costs K entries'
//     worth of pages — independent of how large the range is
//     (BenchmarkIteratorFirstK measures bytes/op flat across database
//     sizes). Prefer NewIter over Scan-into-a-slice for anything large;
//     use SeekGE to skip, and Close the moment you are done — an open
//     iterator pins its snapshot's sstables, which keeps files a
//     compaction has obsoleted on disk. A cursor from DB.NewIter releases
//     each shard's pin as it passes the shard, so even a full-database
//     scan holds at most one shard's obsolete files at a time.
//
//   - Multi-read consistency costs one DB.NewSnapshot: every shard's read
//     state is pinned in one pass (per shard: a buffer copy bounded by
//     BufferBytes, reference bumps, no I/O), and Get/Scan/NewIter/
//     SecondaryRangeScan against the snapshot all observe that single
//     view. Snapshots block nothing — writers and the maintenance pool
//     proceed — but a held snapshot retains every file it pins, so space
//     amplification grows with snapshot lifetime. Take them per logical
//     read (a report, a backup pass), release promptly, and watch
//     Stats().Levels file counts if you suspect a leaked pin.
//
// SecondaryRangeScan verifies candidates against the same pinned state it
// collected them from and returns results sorted by (delete key, sort key)
// deterministically. SecondaryRangeDelete remains physical: it edits
// sealed buffers and sstable pages in place, so what it removes from those
// vanishes from snapshots taken before it ran (only a snapshot's frozen
// copy of the mutable buffer is immune) — order retention deletes after
// reads that must not observe them.
//
// # Block size: Storage.BlockSizeBytes
//
// Format v2 (internal/sstable/format.go) stores each delete-tile page as a
// variable-length block: entries are prefix-compressed against their
// predecessor, restart points every 16 entries keep in-block binary search
// possible, and each block carries its own CRC. BlockSizeBytes is the target
// *encoded* size at which the writer cuts a block (default: PageSize, so the
// unit of read I/O is unchanged and v2 is purely a footprint win), and it
// trades scans against point reads:
//
//   - Larger blocks compress better (longer runs share prefixes, fewer
//     restart points and per-block headers per entry) and make scans
//     cheaper — one CRC check and one decode amortized over more entries.
//     bytes-on-disk in the benchmark output and Stats().BytesOnDisk track
//     the footprint side of this.
//
//   - Smaller blocks make point Gets cheaper: a lookup reads and checks one
//     whole block per Bloom-positive page, so BlockSizeBytes is the unit of
//     read amplification. With the page cache disabled the Get path does a
//     restart-point binary search over the raw block and decodes at most
//     one 16-entry run, so CPU stays modest either way — the block size
//     mostly prices the I/O and checksum work.
//
// Interaction with delete-tile granularity: a delete tile is TilePages
// blocks, and KiWi's secondary range deletes drop whole blocks whose delete
// fences fall inside the range. The block is therefore also the unit of
// SRD precision — bigger blocks mean coarser drops (more partial-block
// rewrites at range edges), smaller blocks mean more full drops but more
// fence metadata. Workloads leaning on SecondaryRangeDelete should keep
// blocks near the v1 page size they replaced (a few KiB); scan-heavy,
// rarely-deleting workloads can raise BlockSizeBytes toward 32-64KiB for
// the compression win. The paper-experiment harness pins BlockSizeBytes to
// PageSize so the figures keep reasoning in the paper's page units.
//
// # Tiered storage: Storage.RemoteFS and Storage.Placement
//
// Setting Storage.RemoteFS splits the tree across two devices: the WAL, the
// manifest, and the first Placement.LocalLevels disk levels stay on the
// local filesystem, while every colder level keeps its sstables on the
// remote one. The intended shape is a small fast device (NVMe) in front of
// a big cheap one (object store, network volume) — in experiments, wrap the
// remote side in vfs.NewRemote to model its latency and bandwidth.
//
// Placement is a property of data, not of configuration alone: each run's
// tier is recorded in the manifest, so a reopen reproduces the split
// exactly, and reopening a database whose manifest names remote files
// without supplying a RemoteFS is an error rather than a tree with holes.
// Files change tier only by migration — copy to the destination device,
// sync, then a manifest commit that flips the authoritative tier — so a
// crash at any point leaves either the old copy or both, never neither.
// Partial copies a crash strands are swept as orphans at the next open.
//
// Choosing LocalLevels: level sizes grow by SizeRatio, so each extra local
// level multiplies the local footprint by T but also keeps T times more of
// the tree at local latency. Start from the write side — flush output
// (level 0) is always local, and the first compaction levels absorb most
// rewrite traffic, so LocalLevels 1-2 already keeps the churn off the slow
// device; raise it only when the read working set genuinely spans deeper
// levels. Point Gets concentrate on recent data and Bloom filters keep
// cold levels out of most lookups, so a tiered database typically serves
// hot reads at local speed (BenchmarkTieredHotGet tracks this against the
// local-only baseline).
//
// What to expect from cold scans: remote blocks are fetched with
// sequential read-ahead (one tile ahead per iterator), so a full scan of a
// remote level streams at device bandwidth rather than paying the latency
// per block — BenchmarkTieredColdScan measures achieved throughput against
// the modeled link. Remote blocks are also admitted to the page cache with
// admission preference (they survive an eviction scan that would drop a
// same-aged local block), so a cold-read working set warms into the cache
// and stays there. Migrations are background work: they ride the
// maintenance pool at the lowest priority, only when no compaction trigger
// fires, and their bytes are paced by a separate remote token bucket
// (runtime.Config.RemoteRateBytes, defaulting to the compaction rate) so a
// bulk migration cannot starve local flushes of limiter budget.
// Stats().Tier reports the split (files and bytes per tier), the migration
// totals, and the raw remote-device traffic; `lethe stats` prints it.
//
// # GC pressure and buffer reuse
//
// The read hot paths recycle their transient state instead of allocating it
// per operation, so steady-state read traffic puts almost nothing on the
// garbage collector: opening an Iterator reuses a pooled cursor (shard pins,
// seek scratch, per-run sstable frames, and the k-way merge heap all come
// from sync.Pools keyed by Close), point Gets ride a cached per-shard read
// handle that is rebuilt only when the shard's read state actually changes
// (a buffer seal, a flush or compaction installing a new version — between
// transitions, Gets share one pinned handle and allocate only the returned
// value copy), and sstable/memtable decode paths hand out views into pooled
// buffers rather than copies. BenchmarkIteratorFirstK and
// BenchmarkSnapshotReads track this as allocs/op, and CI diffs both against
// the committed baseline (BENCH_PR6.json) exactly like ns/op — an
// accidental per-key allocation is a flagged regression, not silent noise.
//
// The visible consequence is the Iterator validity contract: Key and Value
// return views into those recycled buffers, valid only until the next Next,
// SeekGE, or Close on that iterator. Copy with CloneBytes (or retain the
// value DB.Get returns, which is already a private copy) when a slice must
// outlive the cursor position. Close is the recycle point — it is
// idempotent, and Next/SeekGE after Close return false with
// ErrIteratorClosed sticky rather than touching state the pool may have
// already handed to another cursor. Nothing here needs tuning; the knob-
// shaped advice is simply to Close iterators promptly (which both unpins
// sstables and feeds the pools) and to reach for CloneBytes instead of
// retaining raw views.

package lethe

import "math"

// WorkloadProfile describes a workload's composition as relative operation
// frequencies, following §4.2.6's notation. Only ratios matter; the values
// need not sum to 1.
type WorkloadProfile struct {
	// EmptyPointLookups is f_EPQ, point queries with zero result.
	EmptyPointLookups float64
	// PointLookups is f_PQ, point queries with non-zero result.
	PointLookups float64
	// ShortRangeLookups is f_SRQ.
	ShortRangeLookups float64
	// LongRangeLookups is f_LRQ (does not affect h; long ranges amortize).
	LongRangeLookups float64
	// SecondaryRangeDeletes is f_SRD.
	SecondaryRangeDeletes float64
	// Inserts is f_I (does not affect h).
	Inserts float64
}

// TuningParams are the system parameters entering Eq. 3.
type TuningParams struct {
	// Entries is N, the entry count.
	Entries float64
	// EntriesPerPage is B.
	EntriesPerPage float64
	// FalsePositiveRate is the Bloom filters' FPR.
	FalsePositiveRate float64
	// Levels is L, the number of disk levels.
	Levels float64
}

// OptimalTileSize solves Eq. 3 (§4.2.6) for the largest delete-tile
// granularity h whose lookup penalty is still paid for by the secondary
// range delete savings:
//
//	h ≤ (N/B) / ( (f_EPQ+f_PQ)/f_SRD · FPR + f_SRQ/f_SRD · L )
//
// It returns at least 1 (the classical layout). A workload without
// secondary range deletes gets h = 1: tiles only cost there.
func OptimalTileSize(p TuningParams, w WorkloadProfile) int {
	if w.SecondaryRangeDeletes <= 0 || p.Entries <= 0 || p.EntriesPerPage <= 0 {
		return 1
	}
	pointTerm := (w.EmptyPointLookups + w.PointLookups) / w.SecondaryRangeDeletes * p.FalsePositiveRate
	rangeTerm := w.ShortRangeLookups / w.SecondaryRangeDeletes * p.Levels
	denom := pointTerm + rangeTerm
	if denom <= 0 {
		// No read pressure at all: the tile can span the whole file, but
		// cap at the page count to stay meaningful.
		return int(math.Max(1, p.Entries/p.EntriesPerPage))
	}
	h := p.Entries / p.EntriesPerPage / denom
	if h < 1 {
		return 1
	}
	return int(h)
}
