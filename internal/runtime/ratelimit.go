package runtime

import (
	"sync"
	"time"

	"lethe/internal/metrics"
)

// RateLimiter is a token-bucket pacer for maintenance write I/O, refilled at
// a fixed bytes-per-second rate with a one-second burst. Writers may run the
// bucket into debt (a large page write is never blocked forever) and then
// sleep the debt off, so sustained maintenance throughput converges on the
// configured rate while foreground reads see the device between the paced
// writes. It implements vfs.Limiter.
type RateLimiter struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time

	// released, once closed, disables all pacing: a database shutting down
	// must not wait out the debt of in-flight paced writes (at a low
	// configured rate that could be minutes), so Close releases the
	// limiter before draining jobs and they finish at device speed.
	released    chan struct{}
	releaseOnce sync.Once

	waitNanos metrics.Counter
}

// NewRateLimiter builds a limiter for the given rate; nil (no limiting)
// when the rate is zero or negative.
func NewRateLimiter(bytesPerSec int64) *RateLimiter {
	if bytesPerSec <= 0 {
		return nil
	}
	r := float64(bytesPerSec)
	return &RateLimiter{rate: r, burst: r, tokens: r, last: time.Now(),
		released: make(chan struct{})}
}

// WaitN consumes n bytes of budget, sleeping until the bucket's debt is
// repaid or the limiter is released. Nil-safe: a nil limiter never waits.
func (l *RateLimiter) WaitN(n int) {
	if l == nil || n <= 0 {
		return
	}
	select {
	case <-l.released:
		return
	default:
	}
	l.mu.Lock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	l.tokens -= float64(n)
	var wait time.Duration
	if l.tokens < 0 {
		wait = time.Duration(-l.tokens / l.rate * float64(time.Second))
	}
	l.mu.Unlock()
	if wait > 0 {
		start := time.Now()
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-t.C:
		case <-l.released:
		}
		// Account the time actually waited: a Release may have cut the
		// sleep short, and ThrottleWaitTime must not overstate it.
		l.waitNanos.Add(time.Since(start).Nanoseconds())
	}
}

// Release permanently disables pacing and wakes current waiters; used at
// shutdown so in-flight maintenance drains at device speed.
func (l *RateLimiter) Release() {
	if l == nil {
		return
	}
	l.releaseOnce.Do(func() { close(l.released) })
}

// Rate returns the configured bytes-per-second cap.
func (l *RateLimiter) Rate() int64 {
	if l == nil {
		return 0
	}
	return int64(l.rate)
}

// WaitTime returns the cumulative time writers have spent throttled.
func (l *RateLimiter) WaitTime() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.waitNanos.Load())
}
