package runtime

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeSource offers a fixed queue of jobs, recording execution order.
type fakeSource struct {
	mu   sync.Mutex
	jobs []*Job
}

func (s *fakeSource) OfferJob(flushOnly bool) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return nil, false
	}
	if flushOnly && s.jobs[0].Kind != JobFlush {
		return nil, false
	}
	j := s.jobs[0]
	s.jobs = s.jobs[1:]
	orig := j
	return &Job{
		Kind:     orig.Kind,
		Priority: orig.Priority,
		Run:      orig.Run,
		Cancel: func() {
			// Requeue at the front: a canceled claim stays available.
			s.mu.Lock()
			s.jobs = append([]*Job{orig}, s.jobs...)
			s.mu.Unlock()
		},
	}, false
}

func (s *fakeSource) MaintenanceTick() {}

func (s *fakeSource) PendingJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWorkerPoolBound verifies the pool never runs more than Workers jobs at
// once, across sources.
func TestWorkerPoolBound(t *testing.T) {
	rt := New(Config{Workers: 2})
	defer rt.Close()
	var cur, max, done atomic.Int64
	mkJob := func() *Job {
		return &Job{Kind: JobCompaction, Run: func() {
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			done.Add(1)
		}}
	}
	for i := 0; i < 4; i++ {
		src := &fakeSource{}
		for j := 0; j < 3; j++ {
			src.jobs = append(src.jobs, mkJob())
		}
		rt.Register(src)
	}
	rt.Notify()
	waitUntil(t, func() bool { return done.Load() == 12 })
	if got := max.Load(); got > 2 {
		t.Fatalf("observed %d concurrent compactions, pool is 2", got)
	}
	if st := rt.Stats(); st.MaxRunningCompactions > st.Workers {
		t.Fatalf("stats: max running compactions %d > workers %d",
			st.MaxRunningCompactions, st.Workers)
	}
}

// TestCompactionPriorityOrder verifies the cross-source priority ordering
// on a single general worker: the higher-scored source's compaction runs
// first regardless of registration order.
func TestCompactionPriorityOrder(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	var mu sync.Mutex
	var order []string
	record := func(name string) func() {
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			// Let every source's offer be on the table for the next pick.
			time.Sleep(5 * time.Millisecond)
		}
	}
	a := &fakeSource{jobs: []*Job{
		{Kind: JobCompaction, Priority: 1.5, Run: record("compact-low")},
	}}
	b := &fakeSource{jobs: []*Job{
		{Kind: JobCompaction, Priority: 9.0, Run: record("compact-high")},
	}}
	rt.Register(a)
	rt.Register(b)
	rt.Notify()
	waitUntil(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(order) == 2
	})
	if order[0] != "compact-high" || order[1] != "compact-low" {
		t.Fatalf("execution order %v, want [compact-high compact-low]", order)
	}
	if st := rt.Stats(); st.CompactionJobs != 2 {
		t.Fatalf("job counters: compactions=%d", st.CompactionJobs)
	}
}

// TestFlushLaneBypassesBusyWorkers verifies a flush is picked up while
// every general worker is stuck inside a long merge — the dedicated flush
// lane exists so writers never wait a full compaction for their flush.
func TestFlushLaneBypassesBusyWorkers(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	compacting := make(chan struct{})
	release := make(chan struct{})
	flushed := make(chan struct{})
	src := &fakeSource{jobs: []*Job{
		{Kind: JobCompaction, Run: func() {
			close(compacting)
			<-release
		}},
	}}
	rt.Register(src)
	rt.Notify()
	<-compacting // the only general worker is now inside the merge
	src.mu.Lock()
	src.jobs = append(src.jobs, &Job{Kind: JobFlush, Run: func() { close(flushed) }})
	src.mu.Unlock()
	rt.Notify()
	select {
	case <-flushed: // the flush lane ran it while the merge is still going
	case <-time.After(5 * time.Second):
		close(release)
		t.Fatal("flush waited behind a long compaction; flush lane did not pick it up")
	}
	close(release)
	if st := rt.Stats(); st.FlushJobs != 1 || st.CompactionJobs != 1 {
		t.Fatalf("job counters: flushes=%d compactions=%d", st.FlushJobs, st.CompactionJobs)
	}
}

// TestCloseStopsScheduling verifies no job starts after Close returns.
func TestCloseStopsScheduling(t *testing.T) {
	rt := New(Config{Workers: 2, TickInterval: time.Millisecond})
	var started atomic.Int64
	src := &fakeSource{}
	for i := 0; i < 50; i++ {
		src.jobs = append(src.jobs, &Job{Kind: JobCompaction, Run: func() {
			started.Add(1)
			time.Sleep(time.Millisecond)
		}})
	}
	rt.Register(src)
	rt.Notify()
	time.Sleep(5 * time.Millisecond)
	rt.Close()
	after := started.Load()
	time.Sleep(20 * time.Millisecond)
	if got := started.Load(); got != after {
		t.Fatalf("%d jobs started after Close returned", got-after)
	}
}

// TestMemoryBudgetFairness verifies the cross-shard gate: with the database
// over budget, the over-share shard stalls and an under-share shard is
// admitted immediately.
func TestMemoryBudgetFairness(t *testing.T) {
	rt := New(Config{Workers: 1, MemoryBudget: 1000})
	defer rt.Close()
	hot := rt.Register(&fakeSource{})
	cold := rt.Register(&fakeSource{})
	rt.SetMemoryUsage(hot, 1100) // over budget, all of it the hot shard's
	rt.SetMemoryUsage(cold, 10)

	// Cold shard: under fair share (500), admitted without blocking.
	if err := rt.AdmitMemory(cold, func() error { return nil }); err != nil {
		t.Fatal(err)
	}

	// Hot shard: stalls until its usage drains below fair share.
	admitted := make(chan error, 1)
	go func() {
		admitted <- rt.AdmitMemory(hot, func() error { return nil })
	}()
	select {
	case <-admitted:
		t.Fatal("over-share shard admitted while over budget")
	case <-time.After(20 * time.Millisecond):
	}
	rt.SetMemoryUsage(hot, 100) // flush drained it
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer not released after usage dropped")
	}
	st := rt.Stats()
	if st.MemoryStalls != 1 {
		t.Fatalf("MemoryStalls = %d, want 1", st.MemoryStalls)
	}
	if st.MemoryStallTime <= 0 {
		t.Fatal("MemoryStallTime must be positive after a stall")
	}
}

// TestMemoryBudgetAbort verifies the progress callback's error aborts a
// stalled writer (the close path).
func TestMemoryBudgetAbort(t *testing.T) {
	rt := New(Config{Workers: 1, MemoryBudget: 100})
	defer rt.Close()
	id := rt.Register(&fakeSource{})
	rt.SetMemoryUsage(id, 500)
	errClosed := errors.New("closed")
	var calls atomic.Int64
	admitted := make(chan error, 1)
	go func() {
		admitted <- rt.AdmitMemory(id, func() error {
			if calls.Add(1) >= 2 {
				return errClosed
			}
			return nil
		})
	}()
	// Second progress check happens on the next wake.
	time.Sleep(5 * time.Millisecond)
	rt.WakeMemoryWaiters()
	select {
	case err := <-admitted:
		if !errors.Is(err, errClosed) {
			t.Fatalf("err = %v, want %v", err, errClosed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled writer not aborted")
	}
}

// TestRateLimiterPaces verifies the token bucket converges on the configured
// rate once the burst is spent, and accounts its wait time.
func TestRateLimiterPaces(t *testing.T) {
	l := NewRateLimiter(1 << 20) // 1 MiB/s, 1 MiB burst
	l.WaitN(1 << 20)             // spend the initial burst, no wait
	start := time.Now()
	l.WaitN(100 << 10) // 100 KiB of debt ≈ 98ms at 1 MiB/s
	elapsed := time.Since(start)
	if elapsed < 50*time.Millisecond {
		t.Fatalf("100KiB past burst at 1MiB/s took only %v", elapsed)
	}
	if l.WaitTime() <= 0 {
		t.Fatal("WaitTime must account the sleep")
	}
	var nilLim *RateLimiter
	nilLim.WaitN(1 << 30) // nil limiter never waits
	if nilLim.Rate() != 0 || nilLim.WaitTime() != 0 {
		t.Fatal("nil limiter reports zeroes")
	}
	nilLim.Release()
}

// TestRateLimiterRelease verifies Release wakes an in-flight waiter and
// disables pacing for later calls — shutdown must not wait out token debt.
func TestRateLimiterRelease(t *testing.T) {
	l := NewRateLimiter(1024) // 1 KiB/s: a 1 MiB write owes ~17 minutes
	done := make(chan struct{})
	go func() {
		l.WaitN(1 << 20)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter enter its sleep
	start := time.Now()
	l.Release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Release did not wake the paced writer")
	}
	if time.Since(start) > time.Second {
		t.Fatal("released waiter took too long to wake")
	}
	start = time.Now()
	l.WaitN(1 << 20) // post-release writes are unpaced
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("released limiter still paces")
	}
}

// TestStatsQueueDepth verifies PendingJobs aggregation.
func TestStatsQueueDepth(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer rt.Close()
	block := make(chan struct{})
	src := &fakeSource{jobs: []*Job{
		{Kind: JobCompaction, Run: func() { <-block }},
		{Kind: JobCompaction, Run: func() {}},
		{Kind: JobCompaction, Run: func() {}},
	}}
	rt.Register(src)
	rt.Notify()
	waitUntil(t, func() bool { return rt.Stats().RunningJobs == 1 })
	if st := rt.Stats(); st.QueueDepth != 2 {
		t.Fatalf("QueueDepth = %d, want 2 (one running, two queued)", st.QueueDepth)
	}
	close(block)
}

// TestMergeSlotBorrowing exercises the subcompaction slot ledger: grants are
// capped by the free worker budget, shrink as slots are consumed, and
// releases restore capacity while the high-water mark records the peak.
func TestMergeSlotBorrowing(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer rt.Close()

	if got := rt.Workers(); got != 4 {
		t.Fatalf("Workers() = %d, want 4", got)
	}
	if got := rt.AcquireMergeSlots(3); got != 3 {
		t.Fatalf("first acquire = %d, want 3", got)
	}
	// Only one worker's worth of budget remains: a request for three more is
	// trimmed, not queued.
	if got := rt.AcquireMergeSlots(3); got != 1 {
		t.Fatalf("second acquire = %d, want 1", got)
	}
	// Pool exhausted: further requests get zero, and the caller is expected
	// to merge serially.
	if got := rt.AcquireMergeSlots(1); got != 0 {
		t.Fatalf("acquire on exhausted pool = %d, want 0", got)
	}
	if got := rt.Stats().MaxMergeParallelism; got != 4 {
		t.Fatalf("MaxMergeParallelism = %d, want 4", got)
	}

	rt.ReleaseMergeSlots(2)
	if got := rt.AcquireMergeSlots(5); got != 2 {
		t.Fatalf("acquire after release = %d, want 2", got)
	}
	rt.ReleaseMergeSlots(4)

	// Zero and negative requests are no-ops.
	if got := rt.AcquireMergeSlots(0); got != 0 {
		t.Fatalf("acquire(0) = %d, want 0", got)
	}
	if got := rt.AcquireMergeSlots(-1); got != 0 {
		t.Fatalf("acquire(-1) = %d, want 0", got)
	}

	rt.CountSubcompactions(4)
	rt.CountSubcompactions(2)
	s := rt.Stats()
	if s.SubcompactionsRun != 6 {
		t.Fatalf("SubcompactionsRun = %d, want 6", s.SubcompactionsRun)
	}
	if s.MaxMergeParallelism != 4 {
		t.Fatalf("MaxMergeParallelism after release = %d, want 4 (high-water)", s.MaxMergeParallelism)
	}
}
