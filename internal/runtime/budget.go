package runtime

import (
	"sync"
	"time"

	"lethe/internal/metrics"
)

// memoryBudget implements the global memtable budget: every shard reports
// its memtable footprint (mutable buffer plus sealed flush queue), and
// writers are gated when the sum exceeds the budget. Fairness rule: only a
// shard at or above its fair share (budget / registered shards) stalls, so
// one hot shard's backlog cannot starve writes to cold shards — the hot
// shard's own flushes are what release the gate.
type memoryBudget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int64 // 0 disables the budget
	used  int64
	per   map[int]int64

	stalls     metrics.Counter
	stallNanos metrics.Counter
}

func (b *memoryBudget) init(total int64) {
	b.total = total
	b.per = make(map[int]int64)
	b.cond = sync.NewCond(&b.mu)
}

func (b *memoryBudget) register(id int) {
	b.mu.Lock()
	b.per[id] = 0
	b.mu.Unlock()
}

// drop releases a deregistered shard's share (its memory is on its way to
// disk or gone with the instance).
func (b *memoryBudget) drop(id int) {
	b.mu.Lock()
	b.used -= b.per[id]
	delete(b.per, id)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// set records a shard's current footprint. Called under the shard's engine
// lock; b.mu is a leaf lock, so the ordering is engine lock -> b.mu only.
// Updates for ids that were never registered — or have already dropped
// (a closing shard's final inline flush reports after Deregister) — are
// ignored, so a dead shard cannot resurrect its budget entry.
func (b *memoryBudget) set(id int, bytes int64) {
	b.mu.Lock()
	if old, ok := b.per[id]; ok {
		b.per[id] = bytes
		b.used += bytes - old
		if bytes < old {
			b.cond.Broadcast()
		}
	}
	b.mu.Unlock()
}

// overLocked reports whether shard id must stall: the database is over
// budget and this shard holds at least its fair share.
func (b *memoryBudget) overLocked(id int) bool {
	if b.total <= 0 || b.used <= b.total {
		return false
	}
	n := int64(len(b.per))
	if n <= 0 {
		n = 1
	}
	return b.per[id] >= b.total/n
}

// admit blocks the calling writer while overLocked holds. progress runs
// outside b.mu on every stall check (the caller may take engine locks in
// it); a non-nil return aborts the wait with that error.
func (b *memoryBudget) admit(id int, progress func() error) error {
	if b.total <= 0 {
		return nil
	}
	b.mu.Lock()
	if !b.overLocked(id) {
		b.mu.Unlock()
		return nil
	}
	b.stalls.Add(1)
	start := time.Now()
	defer func() { b.stallNanos.Add(time.Since(start).Nanoseconds()) }()
	for {
		b.mu.Unlock()
		if err := progress(); err != nil {
			return err
		}
		b.mu.Lock()
		if !b.overLocked(id) {
			break
		}
		b.cond.Wait()
	}
	b.mu.Unlock()
	return nil
}

// usage returns the configured budget and the current global footprint.
func (b *memoryBudget) usage() (total, used int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total, b.used
}

func (b *memoryBudget) wakeAll() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}
