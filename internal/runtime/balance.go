package runtime

// Load-driven shard balancing. The Balancer is a maintenance Source like an
// LSM instance: the runtime's ticker drives its sampling, and split/merge
// work flows through the same OfferJob/claim protocol as flushes and
// compactions — there is no second scheduler. The split signal is write
// stalls (a shard whose flush queue backs up between samples is hotter than
// its share of the worker pool can absorb); the merge signal is a pair of
// adjacent shards that have stayed idle and small for many samples, so
// collapsing them costs little and frees routing-table and per-shard
// overhead.
//
// The Balancer never touches the routing table itself: it proposes, and the
// ReshardController (the lethe router) executes under its own locking. At
// most one proposal is armed or in flight at a time — resharding changes
// the very signals being sampled, so the policy re-observes before acting
// again.

import (
	"fmt"
	"sync"
	"time"
)

// ShardPressure is one shard's load sample, in routing order.
type ShardPressure struct {
	// Shard is the routing position; ID is the persistent shard identity
	// (stable across layout epochs), which the balancer keys its history by.
	Shard int
	ID    int
	// WriteStalls/WriteStallTime are cumulative; the balancer differences
	// them between samples.
	WriteStalls    int64
	WriteStallTime time.Duration
	// MemtableBytes and ImmutableBuffers are instantaneous write-path
	// pressure; BytesOnDisk is the shard's physical footprint.
	MemtableBytes    int64
	ImmutableBuffers int
	BytesOnDisk      int64
	// SpaceAmpTotal/SpaceAmpUnique are the operands of the space
	// amplification ratio (total/unique-1); -1 when not sampled (the
	// balancer's cheap path skips them — computing unique bytes scans the
	// tree).
	SpaceAmpTotal  int64
	SpaceAmpUnique int64
}

// ReshardKind discriminates proposal types.
type ReshardKind int

const (
	ReshardSplit ReshardKind = iota
	ReshardMerge
)

// ReshardProposal asks the controller to split Shard (at a boundary of its
// choosing) or to merge Shard with Shard+1. Shard is a routing position at
// proposal time; the controller revalidates against the current table.
type ReshardProposal struct {
	Kind   ReshardKind
	Shard  int
	Reason string
}

// ReshardController executes proposals. ShardPressures must be cheap (it is
// called from the maintenance ticker); Reshard may block for the duration
// of a split or merge and runs on a pool worker.
type ReshardController interface {
	ShardPressures() []ShardPressure
	Reshard(ReshardProposal) error
}

// BalancerConfig tunes the policy. Zero values take the defaults noted.
type BalancerConfig struct {
	// MaxShards caps splits (default 8); MinShards floors merges (default 1).
	MaxShards int
	MinShards int
	// SplitStallDelta is the number of new write stalls between two samples
	// that marks a shard hot enough to split (default 1).
	SplitStallDelta int64
	// MergeIdleSamples is how many consecutive samples a shard must go
	// without a new stall before it counts as cold (default 8).
	MergeIdleSamples int
	// MergeMaxBytes bounds the combined footprint (disk + memtable) of a
	// mergeable pair (default 8 MiB) — merging big shards would re-create
	// the hotspot a split just relieved.
	MergeMaxBytes int64
}

func (c BalancerConfig) withDefaults() BalancerConfig {
	if c.MaxShards <= 0 {
		c.MaxShards = 8
	}
	if c.MinShards <= 0 {
		c.MinShards = 1
	}
	if c.SplitStallDelta <= 0 {
		c.SplitStallDelta = 1
	}
	if c.MergeIdleSamples <= 0 {
		c.MergeIdleSamples = 8
	}
	if c.MergeMaxBytes <= 0 {
		c.MergeMaxBytes = 8 << 20
	}
	return c
}

// Balancer samples shard pressure on the maintenance tick and arms at most
// one split/merge proposal, offered to the pool as a JobReshard.
type Balancer struct {
	ctl ReshardController
	cfg BalancerConfig

	mu         sync.Mutex
	armed      *ReshardProposal
	inFlight   bool
	lastStalls map[int]int64 // shard ID -> cumulative stalls at last sample
	idle       map[int]int   // shard ID -> consecutive stall-free samples
	proposals  int64
	failures   int64
	lastErr    error
}

// NewBalancer builds a Balancer; register it with Runtime.Register to start
// receiving ticks.
func NewBalancer(ctl ReshardController, cfg BalancerConfig) *Balancer {
	return &Balancer{
		ctl:        ctl,
		cfg:        cfg.withDefaults(),
		lastStalls: make(map[int]int64),
		idle:       make(map[int]int),
	}
}

// OfferJob implements Source. A reshard is never offered to the flush lane.
func (b *Balancer) OfferJob(flushOnly bool) (*Job, bool) {
	if flushOnly {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.armed == nil || b.inFlight {
		return nil, false
	}
	p := *b.armed
	b.inFlight = true
	return &Job{
		Kind: JobReshard,
		Run:  func() { b.run(p) },
		Cancel: func() {
			b.mu.Lock()
			b.inFlight = false
			b.mu.Unlock()
		},
	}, false
}

func (b *Balancer) run(p ReshardProposal) {
	err := b.ctl.Reshard(p)
	b.mu.Lock()
	b.inFlight = false
	b.armed = nil
	if err != nil {
		b.failures++
		b.lastErr = err
	}
	b.mu.Unlock()
}

// PendingJobs implements Source.
func (b *Balancer) PendingJobs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.armed != nil && !b.inFlight {
		return 1
	}
	return 0
}

// MaintenanceTick implements Source: sample pressure, update per-shard
// history, and arm a proposal if the policy fires.
func (b *Balancer) MaintenanceTick() {
	ps := b.ctl.ShardPressures()
	if len(ps) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()

	newStalls := make(map[int]int64, len(ps))
	hot, hotDelta := -1, int64(0)
	for _, p := range ps {
		prev, seen := b.lastStalls[p.ID]
		newStalls[p.ID] = p.WriteStalls
		var delta int64
		if seen {
			delta = p.WriteStalls - prev
		}
		// A shard fresh out of a split has no history: its first sample only
		// establishes a baseline, which doubles as a cool-down between
		// layout changes.
		if seen && delta == 0 {
			b.idle[p.ID]++
		} else {
			b.idle[p.ID] = 0
		}
		if delta > hotDelta {
			hot, hotDelta = p.Shard, delta
		}
	}
	b.lastStalls = newStalls

	if b.armed != nil || b.inFlight {
		return
	}
	if hot >= 0 && hotDelta >= b.cfg.SplitStallDelta && len(ps) < b.cfg.MaxShards {
		b.armed = &ReshardProposal{
			Kind:   ReshardSplit,
			Shard:  hot,
			Reason: fmt.Sprintf("%d new write stalls since last sample", hotDelta),
		}
		b.proposals++
		return
	}
	if len(ps) <= b.cfg.MinShards {
		return
	}
	for i := 0; i+1 < len(ps); i++ {
		l, r := ps[i], ps[i+1]
		if b.idle[l.ID] < b.cfg.MergeIdleSamples || b.idle[r.ID] < b.cfg.MergeIdleSamples {
			continue
		}
		if l.BytesOnDisk+l.MemtableBytes+r.BytesOnDisk+r.MemtableBytes > b.cfg.MergeMaxBytes {
			continue
		}
		b.armed = &ReshardProposal{
			Kind:   ReshardMerge,
			Shard:  i,
			Reason: fmt.Sprintf("shards %d+%d idle %d samples", i, i+1, b.cfg.MergeIdleSamples),
		}
		// Reset the pair's idle history so a failed merge does not re-arm
		// every tick.
		b.idle[l.ID], b.idle[r.ID] = 0, 0
		b.proposals++
		return
	}
}

// BalancerStats is a point-in-time view of the policy's activity.
type BalancerStats struct {
	Proposals int64
	Failures  int64
	Armed     bool
	InFlight  bool
	LastErr   error
}

// Stats reports the policy's activity counters.
func (b *Balancer) Stats() BalancerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BalancerStats{
		Proposals: b.proposals,
		Failures:  b.failures,
		Armed:     b.armed != nil,
		InFlight:  b.inFlight,
		LastErr:   b.lastErr,
	}
}
