// Package runtime provides the shared cross-shard maintenance runtime: one
// worker pool, one page cache, one memtable memory budget, and one
// compaction I/O rate limiter for all LSM instances of a database.
//
// Range sharding (shard.go in the root package) multiplies every engine
// instance's background resources by the shard count: without a shared
// runtime a 16-shard database burns 16x the configured cache memory and 16x
// the maintenance goroutines, and FADE's priorities are only ever compared
// within one shard. Production LSM engines (the RocksDB baseline the paper
// benchmarks against) instead share one block cache, one compaction thread
// pool, and one write-buffer budget across all column families; Runtime is
// that layer here.
//
// The scheduler is pull-based: shards register as Sources, and each of the
// pool's Workers goroutines repeatedly asks every source for its best ready
// job (a claimed flush, or the top FADE-scored compaction), runs the
// globally best offer, and cancels the rest. Flushes always outrank
// compactions — a stalled flush queue blocks writers, while a deferred
// compaction only defers read amplification — and compactions order by
// their cross-shard priority score; a dedicated flush lane (one extra
// goroutine that only runs flushes) guarantees a flush is picked up even
// while every general worker is inside a long merge. A periodic tick
// drives time-based maintenance (TTL expiry, WAL age) even when the write
// path is idle.
//
// Synchronous mode (DisableBackgroundMaintenance, forced under a manual
// clock) never constructs a Runtime: flushes and compactions run inline in
// the writing goroutine, preserving the paper harness's deterministic
// execution bit for bit.
package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"lethe/internal/metrics"
	"lethe/internal/sstable"
)

// defaultTickInterval bounds how long the runtime sleeps between time-driven
// trigger re-evaluations (TTL expiry and WAL tombstone age fire as time
// passes even while the write path is idle).
const defaultTickInterval = 500 * time.Millisecond

// JobKind discriminates maintenance job classes for scheduling priority.
type JobKind int

const (
	// JobFlush drains one sealed memtable to disk. Flushes always schedule
	// ahead of everything else: a backed-up flush queue stalls writers.
	JobFlush JobKind = iota
	// JobReshard splits a hot shard or merges a cold adjacent pair. Reshard
	// jobs are rare and relieve pressure at the routing layer, so they
	// schedule ahead of compactions but never displace a flush. They occupy
	// a compaction slot while running.
	JobReshard
	// JobCompaction merges on-disk runs, ordered across shards by Priority.
	JobCompaction
)

// Job is one claimed unit of maintenance work offered by a Source. Exactly
// one of Run and Cancel is invoked: Run executes the work (blocking until
// it completes), Cancel releases the source-side claim without running.
type Job struct {
	Kind JobKind
	// Priority orders compactions across shards (higher first); FADE's
	// TTL-expired picks score above every saturation pick. Ignored for
	// flushes, which outrank all compactions by kind.
	Priority float64
	Run      func()
	Cancel   func()
}

// Source is one registered producer of maintenance work — an LSM instance
// (shard). Implementations must be safe for concurrent use.
type Source interface {
	// OfferJob returns the source's best ready job with its claim taken
	// (conflicting work will not be offered again until the job runs or is
	// canceled), or nil when the source has nothing ready. With flushOnly
	// set (the flush lane asking), only a flush may be returned, and
	// compaction picking must be skipped entirely — not claimed and
	// canceled. retry reports transient contention (the source could not
	// be examined this round, e.g. its engine lock was held): the caller
	// schedules a near-term re-poll instead of waiting for the next kick.
	OfferJob(flushOnly bool) (job *Job, retry bool)
	// MaintenanceTick performs periodic time-driven maintenance checks; it
	// must not block on long I/O.
	MaintenanceTick()
	// PendingJobs estimates how many jobs the source could offer right now,
	// for queue-depth reporting.
	PendingJobs() int
}

// Config sizes a Runtime. The zero value of any field selects its default.
type Config struct {
	// Workers is the size of the shared maintenance pool: the number of
	// compaction-capable goroutines across every shard (default 1). One
	// extra flush-only lane goroutine is always added on top.
	Workers int
	// CacheBytes bounds the shared decoded-page cache for the whole
	// database, regardless of shard count. Zero disables caching.
	CacheBytes int64
	// MemoryBudget bounds the total memtable bytes (mutable and sealed)
	// across all shards; writers of over-share shards stall when the sum
	// exceeds it. Zero disables the budget.
	MemoryBudget int64
	// CompactionRateBytes caps maintenance write I/O (flush and compaction
	// sstable builds) in bytes per second via a token bucket. Zero means
	// unlimited.
	CompactionRateBytes int64
	// RemoteRateBytes caps maintenance write I/O against the remote storage
	// tier (cold-level compaction outputs and tier migrations) with its own
	// token bucket, so a remote migration draining slowly through a modeled
	// remote device never consumes the local bucket's tokens and stalls a
	// flush. Zero inherits CompactionRateBytes (same cap, separate bucket).
	RemoteRateBytes int64
	// TickInterval overrides the periodic maintenance tick (tests).
	TickInterval time.Duration
}

// Runtime is the shared maintenance layer. One Runtime is owned by the
// sharded database handle and passed to every shard; a standalone engine
// opened in background mode creates a private one.
type Runtime struct {
	cache         *sstable.PageCache
	limiter       *RateLimiter
	remoteLimiter *RateLimiter
	budget        memoryBudget

	// notifyC wakes the general workers, flushNotifyC the flush lane: two
	// channels so one lane consuming a token cannot starve the other (a
	// flush-lane wake for compaction-only work would otherwise swallow the
	// general workers' only token, leaving the compaction for the tick).
	notifyC      chan struct{}
	flushNotifyC chan struct{}
	quit         chan struct{}
	wg           sync.WaitGroup
	retryPending atomic.Bool

	mu                    sync.Mutex
	sources               []Source
	closed                bool
	running               int
	maxRunning            int
	runningCompactions    int
	maxRunningCompactions int
	workers               int
	nextSrcID             int
	// mergeSlots counts the extra merge goroutines jobs have borrowed for
	// subcompaction fan-out (AcquireMergeSlots). Borrowed slots come out of
	// the same workers budget the dispatcher schedules compactions against,
	// so runningCompactions + mergeSlots never exceeds workers and total
	// merge parallelism across all shards is bounded by the configured pool
	// size. maxMergeParallelism is that sum's high-water mark.
	mergeSlots          int
	maxMergeParallelism int

	flushJobs      metrics.Counter
	compactionJobs metrics.Counter
	reshardJobs    metrics.Counter
	subcompactions metrics.Counter
}

// New builds a Runtime and starts its worker pool and maintenance ticker.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = defaultTickInterval
	}
	if cfg.RemoteRateBytes <= 0 {
		cfg.RemoteRateBytes = cfg.CompactionRateBytes
	}
	rt := &Runtime{
		cache:         sstable.NewPageCache(cfg.CacheBytes),
		limiter:       NewRateLimiter(cfg.CompactionRateBytes),
		remoteLimiter: NewRateLimiter(cfg.RemoteRateBytes),
		notifyC:       make(chan struct{}, 1),
		flushNotifyC:  make(chan struct{}, 1),
		quit:          make(chan struct{}),
		workers:       cfg.Workers,
	}
	rt.budget.init(cfg.MemoryBudget)
	// Workers compaction-capable goroutines plus one dedicated flush lane:
	// with a single-worker pool a long merge would otherwise block every
	// flush behind it, stalling writers for the full merge duration (the
	// regression a per-shard flush worker never had). The lane runs only
	// flushes, so compaction concurrency stays exactly Workers.
	rt.wg.Add(cfg.Workers + 2)
	for i := 0; i < cfg.Workers; i++ {
		go rt.worker(false)
	}
	go rt.worker(true)
	go rt.ticker(cfg.TickInterval)
	return rt
}

// CacheHandle allocates a namespaced view of the shared page cache for one
// shard (nil when caching is disabled).
func (rt *Runtime) CacheHandle() *sstable.CacheHandle { return rt.cache.Handle() }

// Cache returns the shared page cache (nil when caching is disabled).
func (rt *Runtime) Cache() *sstable.PageCache { return rt.cache }

// Limiter returns the local-tier maintenance I/O rate limiter (nil when
// unlimited).
func (rt *Runtime) Limiter() *RateLimiter { return rt.limiter }

// RemoteLimiter returns the remote-tier maintenance I/O rate limiter (nil
// when unlimited). It is a separate bucket from Limiter so remote-tier
// writes are accounted — and capped — independently of local ones.
func (rt *Runtime) RemoteLimiter() *RateLimiter { return rt.remoteLimiter }

// Workers returns the configured compaction pool size — the global merge
// parallelism budget subcompaction fan-out borrows from.
func (rt *Runtime) Workers() int { return rt.workers }

// AcquireMergeSlots grants up to want extra merge slots to a job that wants
// to fan its merge out into parallel key-range subcompactions, returning how
// many it got (possibly zero — the caller then merges serially or narrower).
// Concurrency is borrowed, not added: slots come out of the same Workers
// budget the dispatcher schedules compactions against, so running compaction
// jobs plus borrowed slots never exceed Workers no matter how many shards
// fan out at once. Pair every grant with ReleaseMergeSlots.
func (rt *Runtime) AcquireMergeSlots(want int) int {
	if want <= 0 {
		return 0
	}
	rt.mu.Lock()
	free := rt.workers - rt.runningCompactions - rt.mergeSlots
	if free < 0 {
		free = 0
	}
	if want > free {
		want = free
	}
	rt.mergeSlots += want
	if p := rt.runningCompactions + rt.mergeSlots; p > rt.maxMergeParallelism {
		rt.maxMergeParallelism = p
	}
	rt.mu.Unlock()
	return want
}

// ReleaseMergeSlots returns n borrowed merge slots to the pool and nudges
// the workers: a compaction held back by the parallelism gate in takeJob may
// now be dispatchable.
func (rt *Runtime) ReleaseMergeSlots(n int) {
	if n <= 0 {
		return
	}
	rt.mu.Lock()
	rt.mergeSlots -= n
	if rt.mergeSlots < 0 {
		rt.mergeSlots = 0
	}
	rt.mu.Unlock()
	rt.Notify()
}

// CountSubcompactions records the pipelines of one fanned-out merge (a job
// split K ways reports K).
func (rt *Runtime) CountSubcompactions(n int) { rt.subcompactions.Add(int64(n)) }

// Register adds a source to the scheduler and returns its id for memory
// accounting.
func (rt *Runtime) Register(s Source) int {
	rt.mu.Lock()
	rt.sources = append(rt.sources, s)
	id := rt.nextSrcID
	rt.nextSrcID++
	rt.mu.Unlock()
	rt.budget.register(id)
	rt.Notify()
	return id
}

// Deregister removes a source: the scheduler stops polling it and its
// memory-budget share is released. Jobs the source already has running are
// unaffected — the caller waits for them on its own state.
func (rt *Runtime) Deregister(s Source, id int) {
	rt.mu.Lock()
	for i, x := range rt.sources {
		if x == s {
			rt.sources = append(rt.sources[:i], rt.sources[i+1:]...)
			break
		}
	}
	rt.mu.Unlock()
	rt.budget.drop(id)
}

// Notify nudges the worker pool: some source may have work. Non-blocking
// and safe to call while holding engine locks.
func (rt *Runtime) Notify() {
	select {
	case rt.notifyC <- struct{}{}:
	default:
	}
	select {
	case rt.flushNotifyC <- struct{}{}:
	default:
	}
}

// scheduleRetry re-notifies the pool shortly: a source was skipped under
// transient lock contention, and no event may arrive to retry it (the
// contender could have been the very kick that woke us). Coalesced so a
// storm of contended polls arms at most one timer.
func (rt *Runtime) scheduleRetry() {
	if !rt.retryPending.CompareAndSwap(false, true) {
		return
	}
	time.AfterFunc(time.Millisecond, func() {
		rt.retryPending.Store(false)
		rt.Notify()
	})
}

// SetMemoryUsage records a source's current memtable footprint (mutable
// buffer plus sealed queue) for the global budget.
func (rt *Runtime) SetMemoryUsage(id int, bytes int64) { rt.budget.set(id, bytes) }

// AdmitMemory gates a writer on the global memtable budget: it blocks while
// the database is over budget AND the writer's shard is at or above its fair
// share (budget / registered shards), so one hot shard stalls without
// starving the cold ones. progress is invoked once per stall check outside
// the budget lock: it reports a terminal engine error (aborting the wait)
// and may free memory (sealing the hot buffer so a flush can drain it).
func (rt *Runtime) AdmitMemory(id int, progress func() error) error {
	return rt.budget.admit(id, progress)
}

// WakeMemoryWaiters re-evaluates all budget stalls (engine close or error).
func (rt *Runtime) WakeMemoryWaiters() { rt.budget.wakeAll() }

// Close stops the worker pool and ticker, waiting for in-flight jobs to
// finish. Sources must be deregistered (or idle) first.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	rt.mu.Unlock()
	close(rt.quit)
	rt.limiter.Release() // in-flight paced writes drain at device speed
	rt.remoteLimiter.Release()
	rt.budget.wakeAll()
	rt.wg.Wait()
}

// ReleaseLimiter permanently disables maintenance I/O pacing — called by a
// closing database before it drains in-flight jobs, which must not wait
// out their token debt (minutes at a low configured rate) just to shut
// down.
func (rt *Runtime) ReleaseLimiter() {
	rt.limiter.Release()
	rt.remoteLimiter.Release()
}

// worker is one goroutine of the shared pool: wake on notify, then drain the
// globally best jobs until none remain. The flushOnly worker is the flush
// lane — it never runs compactions, so a flush is always picked up even
// while every general worker is inside a long merge.
func (rt *Runtime) worker(flushOnly bool) {
	defer rt.wg.Done()
	wake := rt.notifyC
	if flushOnly {
		wake = rt.flushNotifyC
	}
	for {
		select {
		case <-rt.quit:
			return
		case <-wake:
		}
		for {
			job := rt.takeJob(flushOnly)
			if job == nil {
				break
			}
			// A sibling may find more ready work while this job runs.
			rt.Notify()
			job.Run()
			rt.mu.Lock()
			rt.running--
			if job.Kind != JobFlush {
				// Reshard jobs borrow a compaction slot too.
				rt.runningCompactions--
			}
			rt.mu.Unlock()
		}
	}
}

// takeJob collects one offer per source, keeps the globally best (flushes
// first, then priority), and cancels the rest. Claims are released outside
// rt.mu — Cancel may take engine locks and drop version references.
func (rt *Runtime) takeJob(flushOnly bool) *Job {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	// Borrowed subcompaction slots count against the same budget as running
	// compaction jobs: once the sum reaches Workers, poll flush-only so an
	// idle worker cannot push merge parallelism past the configured pool
	// size. Flushes stay exempt — that is the flush lane's guarantee.
	if rt.runningCompactions+rt.mergeSlots >= rt.workers {
		flushOnly = true
	}
	var offers []*Job
	contended := false
	haveFlush := false
	for _, s := range rt.sources {
		// Once some source offered a flush no compaction can win the
		// round; poll the rest flush-only so their pickers don't run (and
		// claim) merges that would be canceled immediately.
		j, retry := s.OfferJob(flushOnly || haveFlush)
		if retry {
			contended = true
		}
		if j != nil {
			offers = append(offers, j)
			if j.Kind == JobFlush {
				haveFlush = true
			}
		}
	}
	best := -1
	for i, j := range offers {
		if best < 0 || betterJob(j, offers[best]) {
			best = i
		}
	}
	var job *Job
	if best >= 0 {
		job = offers[best]
		rt.running++
		if rt.running > rt.maxRunning {
			rt.maxRunning = rt.running
		}
		switch job.Kind {
		case JobFlush:
			rt.flushJobs.Add(1)
		default:
			if job.Kind == JobReshard {
				rt.reshardJobs.Add(1)
			} else {
				rt.compactionJobs.Add(1)
			}
			rt.runningCompactions++
			if rt.runningCompactions > rt.maxRunningCompactions {
				rt.maxRunningCompactions = rt.runningCompactions
			}
			if p := rt.runningCompactions + rt.mergeSlots; p > rt.maxMergeParallelism {
				rt.maxMergeParallelism = p
			}
		}
	}
	rt.mu.Unlock()
	for i, j := range offers {
		if i != best {
			j.Cancel()
		}
	}
	if job == nil && contended {
		rt.scheduleRetry()
	}
	return job
}

// betterJob orders offers by kind rank (flush, then reshard, then
// compaction — the JobKind ordinal), then higher priority within a kind.
func betterJob(a, b *Job) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Priority > b.Priority
}

// ticker drives the periodic maintenance pass.
func (rt *Runtime) ticker(interval time.Duration) {
	defer rt.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-t.C:
		}
		rt.mu.Lock()
		srcs := append([]Source(nil), rt.sources...)
		rt.mu.Unlock()
		for _, s := range srcs {
			s.MaintenanceTick()
		}
		rt.Notify()
	}
}

// Stats is a snapshot of the runtime's health: the shared pool, the memory
// budget, the rate limiter, and the shared cache.
type Stats struct {
	// Workers is the compaction pool size (the dedicated flush lane is one
	// more goroutine on top). RunningJobs counts jobs executing now, of
	// any kind, and MaxRunningJobs their high-water mark (at most
	// Workers+1); MaxRunningCompactions never exceeds Workers.
	Workers               int
	RunningJobs           int
	MaxRunningJobs        int
	MaxRunningCompactions int
	// QueueDepth estimates the maintenance jobs ready across all shards
	// that no worker has picked up yet.
	QueueDepth int
	// FlushJobs, CompactionJobs, and ReshardJobs count jobs the pool has
	// dispatched, by kind.
	FlushJobs      int64
	CompactionJobs int64
	ReshardJobs    int64
	// SubcompactionsRun counts the bounded key-range merge pipelines run by
	// jobs that fanned out (a job split K ways adds K; serial merges add
	// nothing). MaxMergeParallelism is the high-water mark of concurrent
	// merge work — running compaction jobs plus borrowed subcompaction
	// slots — and never exceeds Workers.
	SubcompactionsRun   int64
	MaxMergeParallelism int

	// MemoryBudget/MemoryUsed describe the global memtable budget;
	// MemoryStalls counts writers gated by it and MemoryStallTime their
	// cumulative wait.
	MemoryBudget    int64
	MemoryUsed      int64
	MemoryStalls    int64
	MemoryStallTime time.Duration

	// CompactionRateBytes is the configured write cap (0 = unlimited);
	// ThrottleWaitTime is the cumulative time maintenance writers spent
	// paced by it. The Remote pair reports the independent remote-tier
	// bucket, so migration pressure is visible separately from local flush
	// and compaction pacing.
	CompactionRateBytes    int64
	ThrottleWaitTime       time.Duration
	RemoteRateBytes        int64
	RemoteThrottleWaitTime time.Duration

	// Cache occupancy and efficiency of the shared page cache.
	CacheCapacity int64
	CacheUsed     int64
	CacheHits     int64
	CacheMisses   int64
}

// Stats returns a point-in-time snapshot.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	s := Stats{
		Workers:               rt.workers,
		RunningJobs:           rt.running,
		MaxRunningJobs:        rt.maxRunning,
		MaxRunningCompactions: rt.maxRunningCompactions,
		FlushJobs:             rt.flushJobs.Load(),
		CompactionJobs:        rt.compactionJobs.Load(),
		ReshardJobs:           rt.reshardJobs.Load(),
		SubcompactionsRun:     rt.subcompactions.Load(),
		MaxMergeParallelism:   rt.maxMergeParallelism,
	}
	srcs := append([]Source(nil), rt.sources...)
	rt.mu.Unlock()
	for _, src := range srcs {
		s.QueueDepth += src.PendingJobs()
	}
	s.MemoryBudget, s.MemoryUsed = rt.budget.usage()
	s.MemoryStalls = rt.budget.stalls.Load()
	s.MemoryStallTime = time.Duration(rt.budget.stallNanos.Load())
	if rt.limiter != nil {
		s.CompactionRateBytes = rt.limiter.Rate()
		s.ThrottleWaitTime = rt.limiter.WaitTime()
	}
	if rt.remoteLimiter != nil {
		s.RemoteRateBytes = rt.remoteLimiter.Rate()
		s.RemoteThrottleWaitTime = rt.remoteLimiter.WaitTime()
	}
	if rt.cache != nil {
		s.CacheCapacity = rt.cache.Capacity()
		s.CacheUsed = rt.cache.UsedBytes()
		s.CacheHits = rt.cache.Hits.Load()
		s.CacheMisses = rt.cache.Misses.Load()
	}
	return s
}
