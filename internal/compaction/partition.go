package compaction

import (
	"sort"

	"lethe/internal/base"
)

// Boundary is one candidate cut point for range-partitioning a compaction's
// input key space: an existing block-index boundary (a delete tile's first
// sort key) together with the live input bytes that start there. Cutting only
// at boundaries that already exist in the inputs' indexes keeps partitioning
// metadata-only — no data pages are read to choose subranges.
type Boundary struct {
	Key   []byte
	Bytes int64
}

// PartitionKeys cuts the key space described by bounds into at most k
// subranges of roughly equal input bytes, returning the cut keys in strictly
// increasing order (at most k-1 of them). Subrange i is the half-open
// interval [cuts[i-1], cuts[i]), the first unbounded below and the last
// unbounded above, so the subranges tile the whole key space and every user
// key — and with it every version of that key — falls in exactly one.
//
// Fewer than k-1 cuts come back when the inputs have too few distinct
// boundaries (a tiny compaction) or when the byte distribution is so skewed
// that several targets collapse onto one boundary; callers shrink their
// fan-out to len(cuts)+1 rather than run empty subcompactions.
func PartitionKeys(bounds []Boundary, k int) [][]byte {
	if k <= 1 || len(bounds) < 2 {
		return nil
	}
	// Order the boundaries and coalesce duplicate keys (the same tile fence
	// can open a tile in several input files) so cumulative byte positions
	// are well defined.
	sorted := append([]Boundary(nil), bounds...)
	sort.Slice(sorted, func(i, j int) bool {
		return base.CompareUserKeys(sorted[i].Key, sorted[j].Key) < 0
	})
	merged := sorted[:1]
	for _, b := range sorted[1:] {
		if base.CompareUserKeys(b.Key, merged[len(merged)-1].Key) == 0 {
			merged[len(merged)-1].Bytes += b.Bytes
		} else {
			merged = append(merged, b)
		}
	}
	var total int64
	for _, b := range merged {
		total += b.Bytes
	}
	if total <= 0 {
		return nil
	}
	// Walk the boundaries once, snapping each byte target j*total/k to the
	// first boundary whose cumulative position reaches it. before tracks the
	// bytes strictly below merged[idx].Key; a cut is taken only when it puts
	// nonzero bytes both behind it (past the previous cut) and ahead of it,
	// so no subrange is ever empty by construction.
	cuts := make([][]byte, 0, k-1)
	before := merged[0].Bytes
	idx := 1
	var prevCum int64
	for j := 1; j < k && idx < len(merged); j++ {
		target := total * int64(j) / int64(k)
		for idx < len(merged) && before < target {
			before += merged[idx].Bytes
			idx++
		}
		if idx >= len(merged) || before <= prevCum || before >= total {
			continue
		}
		cuts = append(cuts, merged[idx].Key)
		prevCum = before
		before += merged[idx].Bytes
		idx++
	}
	return cuts
}
