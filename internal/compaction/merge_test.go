package compaction

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lethe/internal/base"
)

func e(key string, seq base.SeqNum, kind base.Kind, val string) base.Entry {
	return base.MakeEntry([]byte(key), seq, kind, 0, []byte(val))
}

func drain(t *testing.T, m *MergeIter) []base.Entry {
	t.Helper()
	var out []base.Entry
	for {
		entry, ok := m.Next()
		if !ok {
			break
		}
		out = append(out, entry)
	}
	if err := m.Error(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMergeConsolidatesDuplicates(t *testing.T) {
	newer := NewSliceIter([]base.Entry{e("a", 10, base.KindSet, "new"), e("c", 11, base.KindSet, "c")})
	older := NewSliceIter([]base.Entry{e("a", 5, base.KindSet, "old"), e("b", 6, base.KindSet, "b")})
	m := NewMergeIter(MergeConfig{}, newer, older)
	out := drain(t, m)
	if len(out) != 3 {
		t.Fatalf("merged %d entries: %v", len(out), out)
	}
	if string(out[0].Value) != "new" {
		t.Fatalf("newest version must win: %v", out[0])
	}
	st := m.Stats()
	if st.ObsoleteDropped != 1 || st.EntriesIn != 4 || st.EntriesOut != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMergeTombstoneShadowsAndPersists(t *testing.T) {
	upper := NewSliceIter([]base.Entry{e("k", 20, base.KindDelete, "")})
	lower := NewSliceIter([]base.Entry{e("k", 3, base.KindSet, "v")})

	// Intermediate level: tombstone retained, value dropped.
	m := NewMergeIter(MergeConfig{LastLevel: false}, upper, lower)
	out := drain(t, m)
	if len(out) != 1 || out[0].Key.Kind() != base.KindDelete {
		t.Fatalf("intermediate merge: %v", out)
	}

	// Last level: tombstone discarded too — the delete is persisted.
	upper2 := NewSliceIter([]base.Entry{e("k", 20, base.KindDelete, "")})
	lower2 := NewSliceIter([]base.Entry{e("k", 3, base.KindSet, "v")})
	m2 := NewMergeIter(MergeConfig{LastLevel: true}, upper2, lower2)
	out2 := drain(t, m2)
	if len(out2) != 0 {
		t.Fatalf("last-level merge: %v", out2)
	}
	if m2.Stats().TombstonesDropped != 1 {
		t.Fatalf("stats: %+v", m2.Stats())
	}
}

func TestMergeSeqTieBreakBySource(t *testing.T) {
	// Identical (key, seq) in two inputs: the earlier (newer) source wins.
	a := NewSliceIter([]base.Entry{e("k", 5, base.KindSet, "from-a")})
	b := NewSliceIter([]base.Entry{e("k", 5, base.KindSet, "from-b")})
	out := drain(t, NewMergeIter(MergeConfig{}, a, b))
	if len(out) != 1 || string(out[0].Value) != "from-a" {
		t.Fatalf("tie-break: %v", out)
	}
}

func TestMergeRangeTombstoneApplication(t *testing.T) {
	input := NewSliceIter([]base.Entry{
		e("a", 1, base.KindSet, "va"),
		e("b", 2, base.KindSet, "vb"),
		e("c", 99, base.KindSet, "vc"), // newer than the tombstone: survives
		e("d", 3, base.KindSet, "vd"),
	})
	cfg := MergeConfig{RangeTombstones: []base.RangeTombstone{
		{Start: []byte("b"), End: []byte("d"), Seq: 50},
	}}
	m := NewMergeIter(cfg, input)
	out := drain(t, m)
	var keys []string
	for _, entry := range out {
		keys = append(keys, string(entry.Key.UserKey))
	}
	want := []string{"a", "c", "d"}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", keys, want)
	}
	if m.Stats().RangeCovered != 1 {
		t.Fatalf("stats: %+v", m.Stats())
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	m := NewMergeIter(MergeConfig{}, NewSliceIter(nil), NewSliceIter(nil))
	if out := drain(t, m); len(out) != 0 {
		t.Fatalf("empty merge produced %v", out)
	}
	m2 := NewMergeIter(MergeConfig{})
	if out := drain(t, m2); len(out) != 0 {
		t.Fatal("no-input merge must be empty")
	}
}

// Property: merging k random sorted streams equals deduplicating the sorted
// union by newest sequence number.
func TestMergeQuickEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nSrc := 1 + rng.Intn(5)
		type versioned struct {
			key string
			seq base.SeqNum
		}
		var model = map[string]base.Entry{}
		var inputs []Iterator
		seq := base.SeqNum(1000) // newest source gets the biggest seqs
		for s := 0; s < nSrc; s++ {
			n := rng.Intn(30)
			seen := map[string]bool{}
			var entries []base.Entry
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("k%02d", rng.Intn(20))
				if seen[key] {
					continue
				}
				seen[key] = true
				entry := e(key, seq, base.KindSet, fmt.Sprintf("s%d", s))
				entries = append(entries, entry)
				if _, ok := model[key]; !ok {
					model[key] = entry // first (newest) source wins
				}
			}
			seq -= 100 // deeper sources are older
			sort.Slice(entries, func(i, j int) bool {
				return base.CompareUserKeys(entries[i].Key.UserKey, entries[j].Key.UserKey) < 0
			})
			inputs = append(inputs, NewSliceIter(entries))
		}
		m := NewMergeIter(MergeConfig{}, inputs...)
		got := map[string]base.Entry{}
		var prev []byte
		for {
			entry, ok := m.Next()
			if !ok {
				break
			}
			if prev != nil && base.CompareUserKeys(prev, entry.Key.UserKey) >= 0 {
				return false // output must be strictly sorted
			}
			prev = append([]byte(nil), entry.Key.UserKey...)
			got[string(entry.Key.UserKey)] = entry
		}
		if len(got) != len(model) {
			return false
		}
		for k, want := range model {
			g, ok := got[k]
			if !ok || string(g.Value) != string(want.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// nonSeeker hides SliceIter's SeekGE, modeling an input that only supports
// the forward-drain fallback.
type nonSeeker struct{ it *SliceIter }

func (n *nonSeeker) Next() (base.Entry, bool) { return n.it.Next() }
func (n *nonSeeker) Error() error             { return n.it.Error() }

func TestMergeIterSeekGE(t *testing.T) {
	entries := func(keys ...string) []base.Entry {
		var out []base.Entry
		for i, k := range keys {
			out = append(out, e(k, base.SeqNum(i+1), base.KindSet, "v-"+k))
		}
		return out
	}
	for _, wrap := range []struct {
		name  string
		build func(es []base.Entry) Iterator
	}{
		{"seeker", func(es []base.Entry) Iterator { return NewSliceIter(es) }},
		{"non-seeker", func(es []base.Entry) Iterator { return &nonSeeker{it: NewSliceIter(es)} }},
	} {
		t.Run(wrap.name, func(t *testing.T) {
			m := NewMergeIter(MergeConfig{},
				wrap.build(entries("a", "c", "e", "g")),
				wrap.build(entries("b", "d", "f")))
			// Seek to the very first key before consuming anything: the
			// buffered heads still qualify and must not be lost.
			m.SeekGE([]byte("a"))
			e, ok := m.Next()
			if !ok || string(e.Key.UserKey) != "a" {
				t.Fatalf("SeekGE(a) lost the buffered head: %q ok=%v", e.Key.UserKey, ok)
			}
			// Forward seek lands on the first key >= target across inputs.
			m.SeekGE([]byte("d"))
			for _, want := range []string{"d", "e", "f", "g"} {
				e, ok := m.Next()
				if !ok || string(e.Key.UserKey) != want {
					t.Fatalf("after SeekGE(d): got %q ok=%v, want %q", e.Key.UserKey, ok, want)
				}
			}
			if _, ok := m.Next(); ok {
				t.Fatal("merge not exhausted")
			}
			if err := m.Error(); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Absolute (backward) seek on all-Seeker inputs.
	m := NewMergeIter(MergeConfig{}, NewSliceIter(entries("a", "b", "c")))
	m.SeekGE([]byte("c"))
	if e, ok := m.Next(); !ok || string(e.Key.UserKey) != "c" {
		t.Fatalf("forward seek: %q ok=%v", e.Key.UserKey, ok)
	}
	m.SeekGE([]byte("a"))
	if e, ok := m.Next(); !ok || string(e.Key.UserKey) != "a" {
		t.Fatalf("backward seek: %q ok=%v", e.Key.UserKey, ok)
	}
}
