package compaction

import (
	"math"
	"time"

	"lethe/internal/base"
	"lethe/internal/sstable"
)

// Mode selects the compaction policy family.
type Mode int

const (
	// ModeBaseline is the state of the art (the paper's "RocksDB" role):
	// saturation-driven trigger, overlap-driven file selection (SO). It
	// never looks at tombstone metadata and gives no persistence guarantee.
	ModeBaseline Mode = iota
	// ModeLethe is FADE: TTL-expiry preempts saturation (DD); saturation-
	// driven compactions use delete-driven selection (SD). This is the
	// configuration the paper evaluates as "Lethe".
	ModeLethe
	// ModeLetheSO is an ablation: FADE's TTL trigger, but saturation-driven
	// compactions keep the baseline's overlap-driven selection — isolates
	// the trigger's contribution from the selection's.
	ModeLetheSO
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline-SO"
	case ModeLethe:
		return "lethe-DD/SD"
	case ModeLetheSO:
		return "lethe-DD/SO"
	default:
		return "unknown"
	}
}

// TriggerKind records why a compaction fired.
type TriggerKind int

const (
	// TriggerSaturation means the level exceeded its capacity.
	TriggerSaturation TriggerKind = iota
	// TriggerTTL means a file's tombstones exceeded the level's cumulative
	// time-to-live (FADE's delete-driven trigger).
	TriggerTTL
)

// String implements fmt.Stringer.
func (t TriggerKind) String() string {
	if t == TriggerTTL {
		return "ttl"
	}
	return "saturation"
}

// LevelTTLs computes the cumulative per-level TTL thresholds D[i] from the
// delete persistence threshold Dth, the size ratio T, and the number of disk
// levels L (§4.1.2): d_0 = Dth·(T−1)/(T^L−1), d_i = T·d_{i−1}; D[i] = Σ d_j.
// A tombstone at level i must be compacted onward once its age exceeds D[i],
// which guarantees it reaches (and is discarded at) the last level within
// Dth. Recomputed whenever the tree height changes — the "Updating d_i" step
// in Fig. 4.
func LevelTTLs(dth time.Duration, sizeRatio, levels int) []time.Duration {
	if levels <= 0 {
		return nil
	}
	t := float64(sizeRatio)
	var d0 float64
	if sizeRatio <= 1 {
		d0 = dth.Seconds() / float64(levels)
	} else {
		d0 = dth.Seconds() * (t - 1) / (math.Pow(t, float64(levels)) - 1)
	}
	out := make([]time.Duration, levels)
	cum := 0.0
	di := d0
	for i := 0; i < levels; i++ {
		cum += di
		out[i] = time.Duration(cum * float64(time.Second))
		di *= t
	}
	// Guard against floating point drift: the last cumulative threshold is
	// exactly Dth.
	out[levels-1] = dth
	return out
}

// FileRef identifies one file inside the tree structure.
type FileRef struct {
	// Level is the disk level index (0 = first disk level).
	Level int
	// Run is the run index within the level (0 = newest).
	Run int
	// Index is the file's position within the run.
	Index int
	// Meta is the file's metadata.
	Meta *sstable.Meta
}

// Tree is the picker's read-only view of the LSM structure.
type Tree struct {
	// Levels[l][r] lists run r of level l, S-ordered.
	Levels [][][]*sstable.Meta
	// CapacityBytes[l] is the nominal capacity of level l (M·T^(l+1)).
	CapacityBytes []int64
	// LiveBytes[l] is the current live byte count of level l.
	LiveBytes []int64
	// TreeEntries is the total number of entries in the tree (for the rd_f
	// estimate inside b_f).
	TreeEntries int
	// TieredRunLimit, when positive, switches the saturation trigger to
	// tiering semantics: a level saturates when it accumulates this many
	// runs (the size ratio T), rather than when it exceeds its byte
	// capacity.
	TieredRunLimit int
}

// saturated reports whether level l needs a saturation-driven compaction.
func (tree *Tree) saturated(l int) bool {
	if tree.TieredRunLimit > 0 {
		return len(tree.Levels[l]) >= tree.TieredRunLimit
	}
	return tree.LiveBytes[l] > tree.CapacityBytes[l]
}

// Decision is the picker's output: which level to compact and which file(s)
// of that level to use as the compaction's upper input.
type Decision struct {
	Trigger TriggerKind
	Level   int
	// Files are the chosen source files. For the first disk level (which
	// holds overlapping runs, as RocksDB's L0 does) the picker returns the
	// whole level.
	Files []FileRef
}

// Pick decides whether a compaction is needed and what it should compact,
// per §4.1.4. TTL expiry takes priority over saturation ("FADE triggers a
// compaction in a level that has at least one file with expired TTL
// regardless of its saturation"); ties among levels choose the smaller
// level; ties among files follow the per-mode rules.
func Pick(tree *Tree, mode Mode, ttls []time.Duration, now time.Time) (Decision, bool) {
	if mode != ModeBaseline {
		if d, ok := pickTTL(tree, ttls, now); ok {
			return d, true
		}
	}
	return pickSaturation(tree, mode, now)
}

// pickTTL finds the smallest level containing an expired file and selects
// the expired file with the oldest tombstone (DD: delete-driven trigger,
// delete-driven selection; ties by most tombstones).
func pickTTL(tree *Tree, ttls []time.Duration, now time.Time) (Decision, bool) {
	for l := 0; l < len(tree.Levels); l++ {
		if l >= len(ttls) {
			break
		}
		var best *FileRef
		for r, run := range tree.Levels[l] {
			for i, meta := range run {
				if !meta.HasTombstones() {
					continue
				}
				if meta.AMax(now) <= ttls[l] {
					continue
				}
				ref := FileRef{Level: l, Run: r, Index: i, Meta: meta}
				if best == nil || ddBetter(meta, best.Meta) {
					cp := ref
					best = &cp
				}
			}
		}
		if best != nil {
			if l == 0 {
				// First disk level: runs overlap; compact the whole level.
				return Decision{Trigger: TriggerTTL, Level: 0, Files: levelRefs(tree, 0)}, true
			}
			return Decision{Trigger: TriggerTTL, Level: l, Files: []FileRef{*best}}, true
		}
	}
	return Decision{}, false
}

// ddBetter reports whether a should be preferred over b under DD selection:
// older oldest-tombstone wins; ties by more point tombstones.
func ddBetter(a, b *sstable.Meta) bool {
	if !a.OldestTombstone.Equal(b.OldestTombstone) {
		return a.OldestTombstone.Before(b.OldestTombstone)
	}
	return a.NumPointTombstones > b.NumPointTombstones
}

// pickSaturation finds the smallest saturated level and selects files by the
// mode's saturation-time strategy: SO (min overlap — ties by most
// tombstones) for the baseline, SD (max b — ties by oldest tombstone) for
// Lethe.
func pickSaturation(tree *Tree, mode Mode, _ time.Time) (Decision, bool) {
	for l := 0; l < len(tree.Levels); l++ {
		if !tree.saturated(l) {
			continue
		}
		if levelFileCount(tree, l) == 0 {
			continue
		}
		if l == 0 || tree.TieredRunLimit > 0 {
			// The first disk level's runs overlap (and under tiering every
			// saturation merges the whole level), so the whole level is the
			// compaction input.
			return Decision{Trigger: TriggerSaturation, Level: l, Files: levelRefs(tree, l)}, true
		}
		var best *FileRef
		var bestOverlap int64
		useSD := false
		if mode == ModeLethe {
			// SD is meaningful only when some file carries delete weight;
			// with no tombstones anywhere in the level, Lethe behaves
			// exactly like the state of the art ("in the absence of
			// deletes, Lethe performs compactions triggered by
			// level-saturation, choosing files with minimal overlap").
			for _, run := range tree.Levels[l] {
				for _, meta := range run {
					if meta.EstimatedInvalidated(tree.TreeEntries) > 0 {
						useSD = true
					}
				}
			}
		}
		for r, run := range tree.Levels[l] {
			for i, meta := range run {
				ref := FileRef{Level: l, Run: r, Index: i, Meta: meta}
				if useSD {
					if best == nil || sdBetter(meta, best.Meta, tree.TreeEntries) {
						cp := ref
						best = &cp
					}
				} else { // SO: ModeBaseline, ModeLetheSO, or SD fallback
					ov := overlapBytes(tree, l+1, meta)
					if best == nil || ov < bestOverlap ||
						(ov == bestOverlap && meta.NumPointTombstones > best.Meta.NumPointTombstones) {
						cp := ref
						best = &cp
						bestOverlap = ov
					}
				}
			}
		}
		return Decision{Trigger: TriggerSaturation, Level: l, Files: []FileRef{*best}}, true
	}
	return Decision{}, false
}

// sdBetter reports whether a beats b under SD selection: larger estimated
// invalidation count b_f wins; ties by older oldest-tombstone.
func sdBetter(a, b *sstable.Meta, treeEntries int) bool {
	ba, bb := a.EstimatedInvalidated(treeEntries), b.EstimatedInvalidated(treeEntries)
	if ba != bb {
		return ba > bb
	}
	at, bt := a.OldestTombstone, b.OldestTombstone
	switch {
	case at.IsZero():
		return false
	case bt.IsZero():
		return true
	default:
		return at.Before(bt)
	}
}

// overlapBytes sums the sizes of files in targetLevel overlapping meta's S
// range — SO's minimization objective.
func overlapBytes(tree *Tree, targetLevel int, meta *sstable.Meta) int64 {
	if targetLevel >= len(tree.Levels) {
		return 0
	}
	var total int64
	for _, run := range tree.Levels[targetLevel] {
		for _, m := range run {
			if Overlaps(meta, m) {
				total += m.Size
			}
		}
	}
	return total
}

// Overlaps reports whether two files' S ranges intersect.
func Overlaps(a, b *sstable.Meta) bool {
	if len(a.MinS) == 0 && len(a.MaxS) == 0 {
		return false
	}
	if len(b.MinS) == 0 && len(b.MaxS) == 0 {
		return false
	}
	return base.CompareUserKeys(a.MinS, b.MaxS) <= 0 && base.CompareUserKeys(b.MinS, a.MaxS) <= 0
}

func levelRefs(tree *Tree, l int) []FileRef {
	var refs []FileRef
	for r, run := range tree.Levels[l] {
		for i, meta := range run {
			refs = append(refs, FileRef{Level: l, Run: r, Index: i, Meta: meta})
		}
	}
	return refs
}

func levelFileCount(tree *Tree, l int) int {
	n := 0
	for _, run := range tree.Levels[l] {
		n += len(run)
	}
	return n
}
