package compaction

import (
	"testing"
	"time"

	"lethe/internal/sstable"
)

func meta(minS, maxS string, size int64, tombs int, oldest time.Time) *sstable.Meta {
	m := &sstable.Meta{
		MinS:               []byte(minS),
		MaxS:               []byte(maxS),
		Size:               size,
		NumEntries:         int(size / 10),
		NumPointTombstones: tombs,
		OldestTombstone:    oldest,
	}
	return m
}

func TestLevelTTLs(t *testing.T) {
	dth := 100 * time.Second
	ttls := LevelTTLs(dth, 10, 3)
	if len(ttls) != 3 {
		t.Fatalf("levels: %v", ttls)
	}
	// d0 = 100·9/999 ≈ 0.9009s; D = [0.9, 9.9, 100].
	if ttls[2] != dth {
		t.Fatalf("last cumulative TTL must equal Dth: %v", ttls[2])
	}
	if !(ttls[0] < ttls[1] && ttls[1] < ttls[2]) {
		t.Fatalf("cumulative TTLs must ascend: %v", ttls)
	}
	d0 := ttls[0].Seconds()
	d1 := ttls[1].Seconds() - d0
	if d1/d0 < 9.9 || d1/d0 > 10.1 {
		t.Fatalf("d_i must grow by T: d0=%f d1=%f", d0, d1)
	}

	// T = 1 degenerates to equal slices.
	eq := LevelTTLs(90*time.Second, 1, 3)
	if eq[0] != 30*time.Second || eq[2] != 90*time.Second {
		t.Fatalf("T=1 TTLs: %v", eq)
	}
	if LevelTTLs(time.Second, 10, 0) != nil {
		t.Fatal("zero levels")
	}
}

func TestPickSaturationSO(t *testing.T) {
	now := time.Unix(1000, 0)
	// Level 2 (index 1) over capacity; file "c..d" overlaps nothing below,
	// file "a..b" overlaps a big file below: SO must choose "c..d".
	tree := &Tree{
		Levels: [][][]*sstable.Meta{
			{},
			{{meta("a", "b", 100, 0, time.Time{}), meta("c", "d", 100, 0, time.Time{})}},
			{{meta("a", "b", 500, 0, time.Time{})}},
		},
		CapacityBytes: []int64{1000, 150, 10000},
		LiveBytes:     []int64{0, 200, 500},
	}
	d, ok := Pick(tree, ModeBaseline, nil, now)
	if !ok || d.Trigger != TriggerSaturation || d.Level != 1 {
		t.Fatalf("decision: %+v ok=%v", d, ok)
	}
	if len(d.Files) != 1 || string(d.Files[0].Meta.MinS) != "c" {
		t.Fatalf("SO must pick the min-overlap file: %+v", d.Files)
	}
}

func TestPickSaturationSOTieBreakByTombstones(t *testing.T) {
	now := time.Unix(1000, 0)
	// Both files overlap nothing; the one with more tombstones wins the tie.
	tree := &Tree{
		Levels: [][][]*sstable.Meta{
			{},
			{{meta("a", "b", 100, 1, now), meta("c", "d", 100, 7, now)}},
		},
		CapacityBytes: []int64{1000, 150},
		LiveBytes:     []int64{0, 200},
	}
	d, ok := Pick(tree, ModeBaseline, nil, now)
	if !ok || d.Files[0].Meta.NumPointTombstones != 7 {
		t.Fatalf("tie-break: %+v", d)
	}
}

func TestPickSaturationSD(t *testing.T) {
	now := time.Unix(1000, 0)
	// SD (ModeLethe saturation path) picks the file with the highest b.
	tree := &Tree{
		Levels: [][][]*sstable.Meta{
			{},
			{{meta("a", "b", 100, 2, now.Add(-time.Hour)), meta("c", "d", 100, 9, now)}},
		},
		CapacityBytes: []int64{1000, 150},
		LiveBytes:     []int64{0, 200},
		TreeEntries:   1000,
	}
	d, ok := Pick(tree, ModeLethe, []time.Duration{time.Hour * 100, time.Hour * 100}, now)
	if !ok || d.Trigger != TriggerSaturation {
		t.Fatalf("decision: %+v", d)
	}
	if d.Files[0].Meta.NumPointTombstones != 9 {
		t.Fatalf("SD must pick max-b file: %+v", d.Files[0].Meta)
	}
}

func TestPickSDTieBreakByOldestTombstone(t *testing.T) {
	now := time.Unix(10000, 0)
	older := now.Add(-2 * time.Hour)
	tree := &Tree{
		Levels: [][][]*sstable.Meta{
			{},
			{{meta("a", "b", 100, 5, older), meta("c", "d", 100, 5, now.Add(-time.Minute))}},
		},
		CapacityBytes: []int64{1000, 150},
		LiveBytes:     []int64{0, 200},
	}
	d, ok := Pick(tree, ModeLethe, []time.Duration{time.Hour * 999, time.Hour * 999}, now)
	if !ok || !d.Files[0].Meta.OldestTombstone.Equal(older) {
		t.Fatalf("SD tie-break: %+v", d)
	}
}

func TestPickTTLPreemptsSaturation(t *testing.T) {
	now := time.Unix(100000, 0)
	expired := now.Add(-time.Hour)
	// Level 3 (index 2) has an expired file; level 2 is saturated. TTL wins,
	// and among levels with expired files the smallest level is chosen.
	tree := &Tree{
		Levels: [][][]*sstable.Meta{
			{},
			{{meta("a", "b", 500, 0, time.Time{})}},
			{{meta("a", "b", 100, 3, expired), meta("c", "d", 100, 1, now.Add(-time.Second))}},
		},
		CapacityBytes: []int64{1000, 100, 100000},
		LiveBytes:     []int64{0, 500, 200},
	}
	ttls := []time.Duration{time.Minute, 10 * time.Minute, 30 * time.Minute}
	d, ok := Pick(tree, ModeLethe, ttls, now)
	if !ok || d.Trigger != TriggerTTL || d.Level != 2 {
		t.Fatalf("decision: %+v ok=%v", d, ok)
	}
	if len(d.Files) != 1 || d.Files[0].Meta.NumPointTombstones != 3 {
		t.Fatalf("DD must pick the expired file: %+v", d.Files)
	}

	// Baseline ignores TTLs entirely.
	d, ok = Pick(tree, ModeBaseline, ttls, now)
	if !ok || d.Trigger != TriggerSaturation || d.Level != 1 {
		t.Fatalf("baseline decision: %+v", d)
	}
}

func TestPickTTLSelectsOldestTombstone(t *testing.T) {
	now := time.Unix(100000, 0)
	oldest := now.Add(-3 * time.Hour)
	tree := &Tree{
		Levels: [][][]*sstable.Meta{
			{},
			{{meta("a", "b", 100, 1, now.Add(-2*time.Hour)), meta("c", "d", 100, 1, oldest)}},
		},
		CapacityBytes: []int64{1000, 100000},
		LiveBytes:     []int64{0, 200},
	}
	d, ok := Pick(tree, ModeLethe, []time.Duration{time.Minute, time.Hour}, now)
	if !ok || d.Trigger != TriggerTTL {
		t.Fatalf("decision: %+v", d)
	}
	if !d.Files[0].Meta.OldestTombstone.Equal(oldest) {
		t.Fatalf("DD must prefer the oldest tombstone: %+v", d.Files[0].Meta)
	}
}

func TestPickFirstLevelCompactsWholeLevel(t *testing.T) {
	now := time.Unix(1000, 0)
	tree := &Tree{
		Levels: [][][]*sstable.Meta{
			{{meta("a", "m", 100, 0, time.Time{})}, {meta("b", "z", 100, 0, time.Time{})}},
		},
		CapacityBytes: []int64{100},
		LiveBytes:     []int64{200},
	}
	d, ok := Pick(tree, ModeBaseline, nil, now)
	if !ok || d.Level != 0 || len(d.Files) != 2 {
		t.Fatalf("first level decision: %+v", d)
	}
}

func TestPickNothingToDo(t *testing.T) {
	tree := &Tree{
		Levels:        [][][]*sstable.Meta{{{meta("a", "b", 10, 0, time.Time{})}}},
		CapacityBytes: []int64{1000},
		LiveBytes:     []int64{10},
	}
	if _, ok := Pick(tree, ModeLethe, []time.Duration{time.Hour}, time.Unix(0, 1)); ok {
		t.Fatal("no trigger should fire")
	}
}

func TestOverlaps(t *testing.T) {
	a := meta("b", "d", 0, 0, time.Time{})
	cases := []struct {
		minS, maxS string
		want       bool
	}{
		{"a", "b", true},  // touches start
		{"d", "e", true},  // touches end
		{"c", "c", true},  // inside
		{"a", "a", false}, // before
		{"e", "f", false}, // after
		{"a", "z", true},  // contains
	}
	for _, c := range cases {
		b := meta(c.minS, c.maxS, 0, 0, time.Time{})
		if got := Overlaps(a, b); got != c.want {
			t.Errorf("Overlaps([b,d],[%s,%s]) = %v want %v", c.minS, c.maxS, got, c.want)
		}
		if got := Overlaps(b, a); got != c.want {
			t.Errorf("Overlaps symmetric ([%s,%s]) = %v", c.minS, c.maxS, got)
		}
	}
	empty := &sstable.Meta{}
	if Overlaps(empty, a) || Overlaps(a, empty) {
		t.Error("empty file overlaps nothing")
	}
}

func TestModeAndTriggerStrings(t *testing.T) {
	if ModeBaseline.String() == "" || ModeLethe.String() == "" || ModeLetheSO.String() == "" ||
		Mode(99).String() != "unknown" {
		t.Fatal("mode strings")
	}
	if TriggerTTL.String() != "ttl" || TriggerSaturation.String() != "saturation" {
		t.Fatal("trigger strings")
	}
}
