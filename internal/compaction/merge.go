// Package compaction implements the sort-merge machinery and the FADE
// compaction policies (§4.1): the saturation- and TTL-driven triggers and the
// SO / SD / DD file selection strategies with the paper's tie-breaking rules.
package compaction

import (
	"container/heap"
	"sort"

	"lethe/internal/base"
)

// Iterator yields entries in strictly increasing (userKey, -seq) order.
// sstable.Iter and slice-backed iterators both satisfy it.
type Iterator interface {
	Next() (base.Entry, bool)
	Error() error
}

// Seeker is an Iterator that can reposition itself so the next Next returns
// the first entry with user key >= key. Seeks are absolute: a Seeker may be
// repositioned backward as well as forward. MergeIter propagates SeekGE to
// inputs implementing it and falls back to draining forward otherwise, so a
// merge whose inputs are all Seekers supports absolute seeks end to end.
type Seeker interface {
	SeekGE(key []byte)
}

// SliceIter iterates a pre-sorted in-memory entry slice (used for memtable
// flushes and in tests).
type SliceIter struct {
	entries []base.Entry
	pos     int
}

// NewSliceIter wraps entries, which must already be sorted.
func NewSliceIter(entries []base.Entry) *SliceIter {
	return &SliceIter{entries: entries}
}

// Next implements Iterator.
func (it *SliceIter) Next() (base.Entry, bool) {
	if it.pos >= len(it.entries) {
		return base.Entry{}, false
	}
	e := it.entries[it.pos]
	it.pos++
	return e, true
}

// Error implements Iterator.
func (it *SliceIter) Error() error { return nil }

// SeekGE implements Seeker: the next Next returns the first entry with user
// key >= key.
func (it *SliceIter) SeekGE(key []byte) {
	it.pos = sort.Search(len(it.entries), func(i int) bool {
		return base.CompareUserKeys(it.entries[i].Key.UserKey, key) >= 0
	})
}

// ---------------------------------------------------------------------------
// K-way merge

type mergeItem struct {
	entry base.Entry
	src   int // input index; lower index = newer source, breaks seq ties
}

type mergeHeap []mergeItem

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	if c := base.CompareUserKeys(h[i].entry.Key.UserKey, h[j].entry.Key.UserKey); c != 0 {
		return c < 0
	}
	si, sj := h[i].entry.Key.SeqNum(), h[j].entry.Key.SeqNum()
	if si != sj {
		return si > sj // newer first
	}
	return h[i].src < h[j].src
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MergeConfig controls what the merging iterator drops.
type MergeConfig struct {
	// LastLevel marks a compaction whose output is the tree's last level
	// and whose inputs include every run of that level: point and range
	// tombstones are discarded after doing their work (§3.1.1: "a tombstone
	// is discarded during its compaction with the last level").
	LastLevel bool
	// RangeTombstones are all range tombstones from the compaction's inputs;
	// entries they cover (older sequence numbers within the range) are
	// dropped during the merge.
	RangeTombstones []base.RangeTombstone
}

// MergeStats reports what a merge consolidated, feeding the engine's write-
// amplification and delete-persistence accounting.
type MergeStats struct {
	// EntriesIn counts entries pulled from the inputs.
	EntriesIn int
	// EntriesOut counts entries emitted.
	EntriesOut int
	// ObsoleteDropped counts older versions superseded by newer entries.
	ObsoleteDropped int
	// TombstonesDropped counts point tombstones discarded at the last level.
	TombstonesDropped int
	// RangeCovered counts entries dropped because a range tombstone covered
	// them.
	RangeCovered int
}

// MergeIter merges k inputs, consolidating duplicate user keys (newest
// version wins), applying range tombstones, and discarding tombstones at the
// last level.
type MergeIter struct {
	h     mergeHeap
	srcs  []Iterator
	cfg   MergeConfig
	stats MergeStats
	err   error
}

// NewMergeIter builds a merging iterator over the inputs. Input index order
// breaks sequence-number ties: inputs must be passed newest-source-first.
func NewMergeIter(cfg MergeConfig, inputs ...Iterator) *MergeIter {
	m := &MergeIter{srcs: inputs, cfg: cfg}
	for i, src := range inputs {
		if e, ok := src.Next(); ok {
			m.h = append(m.h, mergeItem{entry: e, src: i})
		} else if err := src.Error(); err != nil {
			m.err = err
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *MergeIter) advance(src int) {
	if e, ok := m.srcs[src].Next(); ok {
		heap.Push(&m.h, mergeItem{entry: e, src: src})
	} else if err := m.srcs[src].Error(); err != nil && m.err == nil {
		m.err = err
	}
}

func (m *MergeIter) coveredByRange(e base.Entry) bool {
	for _, rt := range m.cfg.RangeTombstones {
		if rt.Covers(e.Key.UserKey, e.Key.SeqNum()) {
			return true
		}
	}
	return false
}

// Next returns the next surviving entry of the merge.
func (m *MergeIter) Next() (base.Entry, bool) {
	for m.err == nil && len(m.h) > 0 {
		top := m.h[0].entry
		src := m.h[0].src
		heap.Pop(&m.h)
		m.advance(src)
		m.stats.EntriesIn++

		// Swallow older versions of the same user key.
		for len(m.h) > 0 && base.CompareUserKeys(m.h[0].entry.Key.UserKey, top.Key.UserKey) == 0 {
			s := m.h[0].src
			heap.Pop(&m.h)
			m.advance(s)
			m.stats.EntriesIn++
			m.stats.ObsoleteDropped++
		}

		if m.coveredByRange(top) {
			m.stats.RangeCovered++
			continue
		}
		if top.Key.Kind() == base.KindDelete && m.cfg.LastLevel {
			// The tombstone has consumed everything it shadows; at the last
			// level it is persisted (discarded).
			m.stats.TombstonesDropped++
			continue
		}
		m.stats.EntriesOut++
		return top, true
	}
	return base.Entry{}, false
}

// SeekGE repositions the merge so the next Next returns the first surviving
// entry with user key >= key. Inputs implementing Seeker are repositioned
// absolutely (backward seeks included; their buffered heap entries are
// stale and discarded); other inputs are drained forward until they reach
// key — starting from their buffered heap entry, which is their next
// unconsumed position — so a merge over non-Seeker inputs supports only
// forward seeks.
func (m *MergeIter) SeekGE(key []byte) {
	// Remember each source's buffered (pulled but unreturned) entry before
	// resetting the heap: for a forward-drained source that entry is still
	// pending and may itself satisfy the seek.
	buffered := make(map[int]base.Entry, len(m.h))
	for _, it := range m.h {
		buffered[it.src] = it.entry
	}
	m.h = m.h[:0]
	for i, src := range m.srcs {
		if s, ok := src.(Seeker); ok {
			s.SeekGE(key)
			if e, ok := src.Next(); ok {
				m.h = append(m.h, mergeItem{entry: e, src: i})
			} else if err := src.Error(); err != nil && m.err == nil {
				m.err = err
			}
			continue
		}
		if e, ok := buffered[i]; ok && base.CompareUserKeys(e.Key.UserKey, key) >= 0 {
			m.h = append(m.h, mergeItem{entry: e, src: i})
			continue
		}
		for {
			e, ok := src.Next()
			if !ok {
				if err := src.Error(); err != nil && m.err == nil {
					m.err = err
				}
				break
			}
			if base.CompareUserKeys(e.Key.UserKey, key) >= 0 {
				m.h = append(m.h, mergeItem{entry: e, src: i})
				break
			}
		}
	}
	heap.Init(&m.h)
}

// Error returns the first input error.
func (m *MergeIter) Error() error { return m.err }

// Stats returns the merge's consolidation counters (valid after the iterator
// is exhausted).
func (m *MergeIter) Stats() MergeStats { return m.stats }
