// Package compaction implements the sort-merge machinery and the FADE
// compaction policies (§4.1): the saturation- and TTL-driven triggers and the
// SO / SD / DD file selection strategies with the paper's tie-breaking rules.
package compaction

import (
	"sort"

	"lethe/internal/base"
)

// Iterator yields entries in strictly increasing (userKey, -seq) order.
// sstable.Iter and slice-backed iterators both satisfy it.
type Iterator interface {
	Next() (base.Entry, bool)
	Error() error
}

// Seeker is an Iterator that can reposition itself so the next Next returns
// the first entry with user key >= key. Seeks are absolute: a Seeker may be
// repositioned backward as well as forward. MergeIter propagates SeekGE to
// inputs implementing it and falls back to draining forward otherwise, so a
// merge whose inputs are all Seekers supports absolute seeks end to end.
type Seeker interface {
	SeekGE(key []byte)
}

// SliceIter iterates a pre-sorted in-memory entry slice (used for memtable
// flushes and in tests).
type SliceIter struct {
	entries []base.Entry
	pos     int
}

// NewSliceIter wraps entries, which must already be sorted.
func NewSliceIter(entries []base.Entry) *SliceIter {
	return &SliceIter{entries: entries}
}

// Reset re-targets it at entries (which must already be sorted), rewinding to
// the start. It lets a pooled frame be reused without reallocating.
func (it *SliceIter) Reset(entries []base.Entry) {
	it.entries = entries
	it.pos = 0
}

// Next implements Iterator.
func (it *SliceIter) Next() (base.Entry, bool) {
	if it.pos >= len(it.entries) {
		return base.Entry{}, false
	}
	e := it.entries[it.pos]
	it.pos++
	return e, true
}

// Error implements Iterator.
func (it *SliceIter) Error() error { return nil }

// SeekGE implements Seeker: the next Next returns the first entry with user
// key >= key.
func (it *SliceIter) SeekGE(key []byte) {
	it.pos = sort.Search(len(it.entries), func(i int) bool {
		return base.CompareUserKeys(it.entries[i].Key.UserKey, key) >= 0
	})
}

// ---------------------------------------------------------------------------
// K-way merge

type mergeItem struct {
	entry base.Entry
	src   int // input index; lower index = newer source, breaks seq ties
}

// mergeHeap is a hand-rolled min-heap over mergeItems. container/heap is
// deliberately not used: its interface{}-typed Push/Pop box one mergeItem per
// call, which on the read hot path costs two heap allocations per merged key.
// The typed sift operations below allocate nothing.
type mergeHeap []mergeItem

func (h mergeHeap) less(i, j int) bool {
	if c := base.CompareUserKeys(h[i].entry.Key.UserKey, h[j].entry.Key.UserKey); c != 0 {
		return c < 0
	}
	si, sj := h[i].entry.Key.SeqNum(), h[j].entry.Key.SeqNum()
	if si != sj {
		return si > sj // newer first
	}
	return h[i].src < h[j].src
}

func (h mergeHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h mergeHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		j := l
		if r := l + 1; r < n && h.less(r, l) {
			j = r
		}
		if !h.less(j, i) {
			return
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

func (h mergeHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h *mergeHeap) push(it mergeItem) {
	*h = append(*h, it)
	h.siftUp(len(*h) - 1)
}

// popTop removes the minimum element (which the caller has already read from
// (*h)[0]). The vacated slot is zeroed so the shrunk heap does not pin the
// popped entry's backing buffers.
func (h *mergeHeap) popTop() {
	old := *h
	n := len(old) - 1
	old[0] = old[n]
	old[n] = mergeItem{}
	*h = old[:n]
	(*h).siftDown(0)
}

// MergeConfig controls what the merging iterator drops.
type MergeConfig struct {
	// LastLevel marks a compaction whose output is the tree's last level
	// and whose inputs include every run of that level: point and range
	// tombstones are discarded after doing their work (§3.1.1: "a tombstone
	// is discarded during its compaction with the last level").
	LastLevel bool
	// RangeTombstones are all range tombstones from the compaction's inputs;
	// entries they cover (older sequence numbers within the range) are
	// dropped during the merge.
	RangeTombstones []base.RangeTombstone
}

// MergeStats reports what a merge consolidated, feeding the engine's write-
// amplification and delete-persistence accounting.
type MergeStats struct {
	// EntriesIn counts entries pulled from the inputs.
	EntriesIn int
	// EntriesOut counts entries emitted.
	EntriesOut int
	// ObsoleteDropped counts older versions superseded by newer entries.
	ObsoleteDropped int
	// TombstonesDropped counts point tombstones discarded at the last level.
	TombstonesDropped int
	// RangeCovered counts entries dropped because a range tombstone covered
	// them.
	RangeCovered int
}

// MergeIter merges k inputs, consolidating duplicate user keys (newest
// version wins), applying range tombstones, and discarding tombstones at the
// last level. Steady-state advancement allocates nothing: heap nodes live in
// a reusable slice and SeekGE reuses a scratch buffer instead of building a
// map per call. A MergeIter may be embedded by value and re-initialized in
// place with Init, retaining its allocated capacity across uses.
type MergeIter struct {
	h     mergeHeap
	srcs  []Iterator
	cfg   MergeConfig
	stats MergeStats
	err   error
	// seek is SeekGE's scratch for each source's buffered (pulled but
	// unreturned) entry, reused across calls.
	seek []mergeItem
}

// NewMergeIter builds a merging iterator over the inputs. Input index order
// breaks sequence-number ties: inputs must be passed newest-source-first.
func NewMergeIter(cfg MergeConfig, inputs ...Iterator) *MergeIter {
	m := &MergeIter{}
	m.Init(cfg, inputs)
	return m
}

// Init (re)initializes m in place over inputs, priming the heap with each
// input's first entry. Previously allocated heap and scratch capacity is
// retained, so a pooled MergeIter's steady state stays allocation-free.
func (m *MergeIter) Init(cfg MergeConfig, inputs []Iterator) {
	m.cfg = cfg
	m.srcs = inputs
	m.stats = MergeStats{}
	m.err = nil
	m.h = m.h[:0]
	for i, src := range inputs {
		if e, ok := src.Next(); ok {
			m.h = append(m.h, mergeItem{entry: e, src: i})
		} else if err := src.Error(); err != nil {
			m.err = err
		}
	}
	m.h.init()
}

// Reset drops the buffered state and input references so a pooled MergeIter
// does not pin entry buffers or iterators between uses. Capacity is retained
// for the next Init.
func (m *MergeIter) Reset() {
	for i := range m.h {
		m.h[i] = mergeItem{}
	}
	m.h = m.h[:0]
	for i := range m.seek {
		m.seek[i] = mergeItem{}
	}
	m.seek = m.seek[:0]
	m.srcs = nil
	m.cfg = MergeConfig{}
	m.stats = MergeStats{}
	m.err = nil
}

func (m *MergeIter) advance(src int) {
	if e, ok := m.srcs[src].Next(); ok {
		m.h.push(mergeItem{entry: e, src: src})
	} else if err := m.srcs[src].Error(); err != nil && m.err == nil {
		m.err = err
	}
}

func (m *MergeIter) coveredByRange(e base.Entry) bool {
	for _, rt := range m.cfg.RangeTombstones {
		if rt.Covers(e.Key.UserKey, e.Key.SeqNum()) {
			return true
		}
	}
	return false
}

// Next returns the next surviving entry of the merge.
func (m *MergeIter) Next() (base.Entry, bool) {
	for m.err == nil && len(m.h) > 0 {
		top := m.h[0].entry
		src := m.h[0].src
		m.h.popTop()
		m.advance(src)
		m.stats.EntriesIn++

		// Swallow older versions of the same user key.
		for len(m.h) > 0 && base.CompareUserKeys(m.h[0].entry.Key.UserKey, top.Key.UserKey) == 0 {
			s := m.h[0].src
			m.h.popTop()
			m.advance(s)
			m.stats.EntriesIn++
			m.stats.ObsoleteDropped++
		}

		if m.coveredByRange(top) {
			m.stats.RangeCovered++
			continue
		}
		if top.Key.Kind() == base.KindDelete && m.cfg.LastLevel {
			// The tombstone has consumed everything it shadows; at the last
			// level it is persisted (discarded).
			m.stats.TombstonesDropped++
			continue
		}
		m.stats.EntriesOut++
		return top, true
	}
	return base.Entry{}, false
}

// SeekGE repositions the merge so the next Next returns the first surviving
// entry with user key >= key. Inputs implementing Seeker are repositioned
// absolutely (backward seeks included; their buffered heap entries are
// stale and discarded); other inputs are drained forward until they reach
// key — starting from their buffered heap entry, which is their next
// unconsumed position — so a merge over non-Seeker inputs supports only
// forward seeks.
func (m *MergeIter) SeekGE(key []byte) {
	// Remember each source's buffered (pulled but unreturned) entry before
	// resetting the heap: for a forward-drained source that entry is still
	// pending and may itself satisfy the seek.
	m.seek = append(m.seek[:0], m.h...)
	m.h = m.h[:0]
	for i, src := range m.srcs {
		if s, ok := src.(Seeker); ok {
			s.SeekGE(key)
			if e, ok := src.Next(); ok {
				m.h = append(m.h, mergeItem{entry: e, src: i})
			} else if err := src.Error(); err != nil && m.err == nil {
				m.err = err
			}
			continue
		}
		buffered, have := m.buffered(i)
		if have && base.CompareUserKeys(buffered.Key.UserKey, key) >= 0 {
			m.h = append(m.h, mergeItem{entry: buffered, src: i})
			continue
		}
		for {
			e, ok := src.Next()
			if !ok {
				if err := src.Error(); err != nil && m.err == nil {
					m.err = err
				}
				break
			}
			if base.CompareUserKeys(e.Key.UserKey, key) >= 0 {
				m.h = append(m.h, mergeItem{entry: e, src: i})
				break
			}
		}
	}
	m.h.init()
}

// buffered returns the scratch-saved heap entry of source src, if any. The
// heap holds at most one entry per source, so a linear scan over at most k
// items replaces the per-call map the old implementation allocated.
func (m *MergeIter) buffered(src int) (base.Entry, bool) {
	for i := range m.seek {
		if m.seek[i].src == src {
			return m.seek[i].entry, true
		}
	}
	return base.Entry{}, false
}

// Error returns the first input error.
func (m *MergeIter) Error() error { return m.err }

// Stats returns the merge's consolidation counters (valid after the iterator
// is exhausted).
func (m *MergeIter) Stats() MergeStats { return m.stats }
