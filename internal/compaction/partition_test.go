package compaction

import (
	"bytes"
	"fmt"
	"testing"
)

func pkey(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }

func checkStrictlyIncreasing(t *testing.T, cuts [][]byte) {
	t.Helper()
	for i := 1; i < len(cuts); i++ {
		if bytes.Compare(cuts[i-1], cuts[i]) >= 0 {
			t.Fatalf("cuts not strictly increasing: %q then %q", cuts[i-1], cuts[i])
		}
	}
}

func TestPartitionKeysUniform(t *testing.T) {
	// 8 equal-weight boundaries split 4 ways must cut at every second
	// boundary, giving four 200-byte subranges.
	var bounds []Boundary
	for i := 0; i < 8; i++ {
		bounds = append(bounds, Boundary{Key: pkey(i), Bytes: 100})
	}
	cuts := PartitionKeys(bounds, 4)
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts, want 3: %q", len(cuts), cuts)
	}
	checkStrictlyIncreasing(t, cuts)
	for i, want := range []int{2, 4, 6} {
		if !bytes.Equal(cuts[i], pkey(want)) {
			t.Fatalf("cut %d = %q, want %q", i, cuts[i], pkey(want))
		}
	}
}

func TestPartitionKeysDuplicateBoundaries(t *testing.T) {
	// The same fence appearing in several files coalesces; cuts stay
	// strictly increasing.
	var bounds []Boundary
	for file := 0; file < 3; file++ {
		for i := 0; i < 6; i++ {
			bounds = append(bounds, Boundary{Key: pkey(i), Bytes: 50})
		}
	}
	cuts := PartitionKeys(bounds, 3)
	checkStrictlyIncreasing(t, cuts)
	if len(cuts) == 0 || len(cuts) > 2 {
		t.Fatalf("got %d cuts, want 1..2", len(cuts))
	}
}

func TestPartitionKeysSkewed(t *testing.T) {
	// All bytes in the first boundary: no cut can balance anything, so the
	// partitioner must not return cuts that create empty subranges on both
	// sides — at most one cut directly after the heavy boundary.
	bounds := []Boundary{
		{Key: pkey(0), Bytes: 1000},
		{Key: pkey(1), Bytes: 0},
		{Key: pkey(2), Bytes: 0},
		{Key: pkey(3), Bytes: 0},
	}
	cuts := PartitionKeys(bounds, 4)
	checkStrictlyIncreasing(t, cuts)
	if len(cuts) > 1 {
		t.Fatalf("skewed input produced %d cuts, want <=1: %q", len(cuts), cuts)
	}
}

func TestPartitionKeysDegenerate(t *testing.T) {
	if cuts := PartitionKeys(nil, 4); cuts != nil {
		t.Fatalf("nil bounds: got %q", cuts)
	}
	if cuts := PartitionKeys([]Boundary{{Key: pkey(0), Bytes: 10}}, 4); cuts != nil {
		t.Fatalf("single boundary: got %q", cuts)
	}
	many := []Boundary{{Key: pkey(0), Bytes: 10}, {Key: pkey(1), Bytes: 10}}
	if cuts := PartitionKeys(many, 1); cuts != nil {
		t.Fatalf("k=1: got %q", cuts)
	}
	zero := []Boundary{{Key: pkey(0)}, {Key: pkey(1)}}
	if cuts := PartitionKeys(zero, 4); cuts != nil {
		t.Fatalf("zero bytes: got %q", cuts)
	}
}

func TestPartitionKeysBalance(t *testing.T) {
	// 100 boundaries of varying weight split 4 ways: each subrange's byte
	// share must land within 2x of the ideal quarter (cuts snap to existing
	// boundaries, so perfect balance is not required — gross imbalance is a
	// bug).
	var bounds []Boundary
	var total int64
	for i := 0; i < 100; i++ {
		b := int64(50 + (i*37)%100)
		bounds = append(bounds, Boundary{Key: pkey(i), Bytes: b})
		total += b
	}
	cuts := PartitionKeys(bounds, 4)
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts, want 3", len(cuts))
	}
	checkStrictlyIncreasing(t, cuts)
	shares := make([]int64, len(cuts)+1)
	for _, b := range bounds {
		i := 0
		for i < len(cuts) && bytes.Compare(b.Key, cuts[i]) >= 0 {
			i++
		}
		shares[i] += b.Bytes
	}
	ideal := total / 4
	for i, s := range shares {
		if s > 2*ideal || s < ideal/2 {
			t.Fatalf("subrange %d holds %d bytes, ideal %d: shares %v", i, s, ideal, shares)
		}
	}
}
