package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"lethe/internal/base"
)

func blockEntries(n int) []base.Entry {
	entries := make([]base.Entry, n)
	for i := range entries {
		entries[i] = base.MakeEntry(
			[]byte(fmt.Sprintf("user/%04d/profile", i)), base.SeqNum(i+1), base.KindSet,
			base.DeleteKey(i*3), []byte(fmt.Sprintf("value-%04d", i)))
	}
	return entries
}

func TestBlockRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 15, 16, 17, 100, 500} {
		entries := blockEntries(n)
		sealed := encodeBlock(entries)
		payload, err := openPage(sealed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeBlock(payload)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d entries", n, len(got))
		}
		for i := range entries {
			if !bytes.Equal(got[i].Key.UserKey, entries[i].Key.UserKey) ||
				got[i].Key.Trailer != entries[i].Key.Trailer ||
				got[i].DKey != entries[i].DKey ||
				!bytes.Equal(got[i].Value, entries[i].Value) {
				t.Fatalf("n=%d entry %d: got %+v want %+v", n, i, got[i], entries[i])
			}
		}
		if _, err := validateBlock(sealed); err != nil {
			t.Fatalf("n=%d: validate: %v", n, err)
		}
	}
}

func TestBlockCompression(t *testing.T) {
	// Keys sharing long prefixes must encode smaller than their flat form.
	entries := blockEntries(200)
	sealed := encodeBlock(entries)
	flat := 0
	for _, e := range entries {
		flat += encodedEntrySize(e)
	}
	if len(sealed) >= flat {
		t.Fatalf("block of %d bytes did not beat flat encoding of %d bytes", len(sealed), flat)
	}
}

func TestBlockSeekGE(t *testing.T) {
	entries := blockEntries(100)
	sealed := encodeBlock(entries)
	payload, err := openPage(sealed)
	if err != nil {
		t.Fatal(err)
	}
	// Exact hits.
	for i := 0; i < 100; i += 7 {
		e, ok, err := blockSeekGE(payload, entries[i].Key.UserKey)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !bytes.Equal(e.Key.UserKey, entries[i].Key.UserKey) || !bytes.Equal(e.Value, entries[i].Value) {
			t.Fatalf("seek %q: got %+v ok=%v", entries[i].Key.UserKey, e, ok)
		}
	}
	// Between keys: lands on the successor.
	e, ok, err := blockSeekGE(payload, []byte("user/0041/profile!"))
	if err != nil || !ok || string(e.Key.UserKey) != "user/0042/profile" {
		t.Fatalf("seek between: %+v ok=%v err=%v", e, ok, err)
	}
	// Before the first key.
	e, ok, err = blockSeekGE(payload, []byte("a"))
	if err != nil || !ok || string(e.Key.UserKey) != "user/0000/profile" {
		t.Fatalf("seek before start: %+v ok=%v err=%v", e, ok, err)
	}
	// Past the last key.
	if _, ok, err := blockSeekGE(payload, []byte("zzz")); ok || err != nil {
		t.Fatalf("seek past end: ok=%v err=%v", ok, err)
	}
}

func TestV2WriterAcceptsOversizeEntry(t *testing.T) {
	// A single entry larger than the block target gets its own block.
	opts := testOpts(1)
	huge := base.MakeEntry([]byte("k"), 1, base.KindSet, 0, bytes.Repeat([]byte{'v'}, 4*opts.BlockSizeBytes))
	r, _ := buildFile(t, opts, []base.Entry{huge}, nil)
	defer r.Close()
	got, ok, err := r.Get([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("oversize entry lookup: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got.Value, huge.Value) {
		t.Fatal("oversize entry value mismatch")
	}
}

func TestV2FileSmallerThanV1(t *testing.T) {
	// The acceptance criterion at file granularity: same entries, same
	// geometry, measurably fewer bytes on disk under v2.
	entries := seqEntries(2000, func(i int) base.DeleteKey { return base.DeleteKey(i % 97) })
	v1opts := testOpts(4)
	v1opts.FormatVersion = FormatV1
	v1, _ := buildFile(t, v1opts, entries, nil)
	defer v1.Close()
	v2, _ := buildFile(t, testOpts(4), entries, nil)
	defer v2.Close()
	if v2.Meta.Size >= v1.Meta.Size {
		t.Fatalf("v2 file %d bytes >= v1 file %d bytes", v2.Meta.Size, v1.Meta.Size)
	}
	t.Logf("v1 %d bytes, v2 %d bytes (%.1f%% smaller)",
		v1.Meta.Size, v2.Meta.Size, 100*(1-float64(v2.Meta.Size)/float64(v1.Meta.Size)))
}
