package sstable

import (
	"container/list"
	"sync"
	"sync/atomic"

	"lethe/internal/base"
	"lethe/internal/metrics"
)

// PageCache is a shared LRU cache of decoded data pages, the engine's
// analogue of RocksDB's block cache (the paper's experiments run with the
// block cache enabled). Pages are keyed by (namespace, file number, page
// index): the namespace comes from a CacheHandle, so independent LSM
// instances — the shards of one database — can share a single cache (one
// whole-database memory budget) even though each numbers its files from
// zero. Within a namespace file numbers are never reused, so stale entries
// can only linger until evicted, never alias. Partial page drops invalidate
// their page explicitly.
type PageCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	lru      *list.List // front = most recent
	items    map[pageKey]*list.Element

	nextNS atomic.Uint64

	// Hits and Misses count lookups for cache-efficiency reporting.
	Hits, Misses metrics.Counter
}

type pageKey struct {
	ns   uint64
	file uint64
	page int
}

// CacheHandle is one client's namespaced view of a shared PageCache. Every
// reader of one LSM instance uses that instance's handle, so two shards'
// files with the same number occupy distinct cache keys. A nil handle (from
// a nil or disabled cache) is valid and caches nothing.
type CacheHandle struct {
	c  *PageCache
	ns uint64
}

// Handle allocates a fresh namespace on the cache. Returns nil for a nil
// cache, so callers can pass the result around without nil checks.
func (c *PageCache) Handle() *CacheHandle {
	if c == nil {
		return nil
	}
	return &CacheHandle{c: c, ns: c.nextNS.Add(1)}
}

// Cache returns the underlying shared cache (nil for a nil handle).
func (h *CacheHandle) Cache() *PageCache {
	if h == nil {
		return nil
	}
	return h.c
}

func (h *CacheHandle) get(file uint64, page int) ([]base.Entry, bool) {
	if h == nil {
		return nil, false
	}
	return h.c.get(h.ns, file, page)
}

func (h *CacheHandle) put(file uint64, page int, entries []base.Entry, preferred bool) {
	if h != nil {
		h.c.put(h.ns, file, page, entries, preferred)
	}
}

func (h *CacheHandle) invalidate(file uint64, page int) {
	if h != nil {
		h.c.invalidate(h.ns, file, page)
	}
}

type pageEntry struct {
	key     pageKey
	entries []base.Entry
	bytes   int64
	// preferred marks a page whose miss is expensive to repay — one read
	// from the remote storage tier. Eviction gives such pages a second
	// chance: the first time one reaches the LRU tail it is demoted and
	// recycled to the front instead of evicted, so a burst of cheap local
	// fills cannot flush the remote working set.
	preferred bool
}

// NewPageCache creates a cache bounded to capacity bytes of decoded entry
// payload. A nil cache (or capacity <= 0) disables caching.
func NewPageCache(capacity int64) *PageCache {
	if capacity <= 0 {
		return nil
	}
	return &PageCache{
		capacity: capacity,
		lru:      list.New(),
		items:    make(map[pageKey]*list.Element),
	}
}

func entriesBytes(entries []base.Entry) int64 {
	var n int64
	for _, e := range entries {
		n += int64(e.Size())
	}
	return n
}

// get returns the cached page, if present.
func (c *PageCache) get(ns, file uint64, page int) ([]base.Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[pageKey{ns, file, page}]
	if !ok {
		c.Misses.Add(1)
		return nil, false
	}
	c.lru.MoveToFront(el)
	c.Hits.Add(1)
	return el.Value.(*pageEntry).entries, true
}

// put inserts a decoded page, evicting LRU pages as needed. preferred pages
// (remote-tier reads) survive one trip to the LRU tail before becoming
// eviction candidates.
func (c *PageCache) put(ns, file uint64, page int, entries []base.Entry, preferred bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := pageKey{ns, file, page}
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		if preferred {
			el.Value.(*pageEntry).preferred = true
		}
		return
	}
	pe := &pageEntry{key: key, entries: entries, bytes: entriesBytes(entries), preferred: preferred}
	if pe.bytes > c.capacity {
		return // never cache something bigger than the whole budget
	}
	c.items[key] = c.lru.PushFront(pe)
	c.used += pe.bytes
	for c.used > c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*pageEntry)
		if victim.preferred {
			// Second chance: demote and recycle to the front. The loop
			// terminates because each pass either evicts an entry or
			// permanently clears a preferred bit.
			victim.preferred = false
			c.lru.MoveToFront(back)
			continue
		}
		c.lru.Remove(back)
		delete(c.items, victim.key)
		c.used -= victim.bytes
	}
}

// invalidate removes a page (after an in-place rewrite or drop).
func (c *PageCache) invalidate(ns, file uint64, page int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[pageKey{ns, file, page}]; ok {
		victim := el.Value.(*pageEntry)
		c.lru.Remove(el)
		delete(c.items, victim.key)
		c.used -= victim.bytes
	}
}

// UsedBytes reports the current cache occupancy.
func (c *PageCache) UsedBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity reports the configured byte budget (0 for a nil cache).
func (c *PageCache) Capacity() int64 {
	if c == nil {
		return 0
	}
	return c.capacity
}
