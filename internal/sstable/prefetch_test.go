package sstable

import (
	"bytes"
	"fmt"
	"testing"

	"lethe/internal/base"
)

func prefetchTestEntries(n int) []base.Entry {
	entries := make([]base.Entry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, base.MakeEntry([]byte(fmt.Sprintf("k%05d", i)),
			base.SeqNum(i+1), base.KindSet, base.DeleteKey(i), []byte(fmt.Sprintf("v%05d", i))))
	}
	return entries
}

// TestRemoteIterReadAhead verifies a remote-marked reader's iterator yields
// exactly the same sequence as a local one — the read-ahead is a latency
// optimization, never a semantic change — across plain scans, seeks into
// the middle of the file, and Reset reuse.
func TestRemoteIterReadAhead(t *testing.T) {
	entries := prefetchTestEntries(300)
	r, _ := buildFile(t, testOpts(4), entries, nil)
	defer r.Close()
	r.SetRemote(true)

	it := r.NewIter()
	i := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if string(e.Key.UserKey) != string(entries[i].Key.UserKey) {
			t.Fatalf("entry %d = %q, want %q", i, e.Key.UserKey, entries[i].Key.UserKey)
		}
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != len(entries) {
		t.Fatalf("scan yielded %d entries, want %d", i, len(entries))
	}

	// Seek against an in-flight prefetch: the stale read-ahead must be
	// discarded, not consumed for the wrong tile.
	it.SeekGE([]byte("k00150"))
	e, ok := it.Next()
	if !ok || string(e.Key.UserKey) != "k00150" {
		t.Fatalf("after seek: %q ok=%v", e.Key.UserKey, ok)
	}
	it.SeekGE([]byte("k00000"))
	e, ok = it.Next()
	if !ok || string(e.Key.UserKey) != "k00000" {
		t.Fatalf("after rewind seek: %q ok=%v", e.Key.UserKey, ok)
	}

	// Reset drains the in-flight read-ahead and the iterator stays usable.
	it.Reset(r)
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != len(entries) {
		t.Fatalf("scan after Reset yielded %d entries, want %d", n, len(entries))
	}
}

// TestRemoteReaderCachesPreferred verifies remote-tier pages enter the
// shared cache with admission preference.
func TestRemoteReaderCachesPreferred(t *testing.T) {
	entries := prefetchTestEntries(50)
	r, _ := buildFile(t, testOpts(2), entries, nil)
	defer r.Close()
	cache := NewPageCache(1 << 20)
	r.SetCache(cache.Handle())
	r.SetRemote(true)
	if _, ok, err := r.Get([]byte("k00010")); !ok || err != nil {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	cache.mu.Lock()
	defer cache.mu.Unlock()
	found := false
	for _, el := range cache.items {
		if el.Value.(*pageEntry).preferred {
			found = true
		}
	}
	if !found {
		t.Fatal("no cached page carries the preferred bit after a remote read")
	}
}

func TestReaderCopyToMatchesFileBytes(t *testing.T) {
	entries := prefetchTestEntries(100)
	r, fs := buildFile(t, testOpts(2), entries, nil)
	defer r.Close()
	var out bytes.Buffer
	n, err := r.CopyTo(&out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, _ := f.Size()
	if n != size {
		t.Fatalf("CopyTo wrote %d bytes, file has %d", n, size)
	}
	want := make([]byte, size)
	if _, err := f.ReadAt(want, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("CopyTo bytes differ from file contents")
	}
	// The copy opens as a valid sstable and serves the same data.
	fs2 := out.Bytes()
	_ = fs2
	g, err := fs.Create("copy.sst")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(out.Bytes()); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenReader(g)
	if err != nil {
		t.Fatalf("copied file does not open: %v", err)
	}
	defer r2.Close()
	if _, ok, err := r2.Get([]byte("k00042")); !ok || err != nil {
		t.Fatalf("copied file get: ok=%v err=%v", ok, err)
	}
}
