package sstable

import (
	"fmt"
	"testing"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

func TestPageCacheBasics(t *testing.T) {
	c := NewPageCache(1 << 20)
	entries := []base.Entry{base.MakeEntry([]byte("k"), 1, base.KindSet, 0, []byte("v"))}
	if _, ok := c.get(1, 0); ok {
		t.Fatal("empty cache can't hit")
	}
	c.put(1, 0, entries)
	got, ok := c.get(1, 0)
	if !ok || len(got) != 1 {
		t.Fatal("cached page must be returned")
	}
	if c.Hits.Load() != 1 || c.Misses.Load() != 1 {
		t.Fatalf("hit/miss accounting: %d/%d", c.Hits.Load(), c.Misses.Load())
	}
	c.invalidate(1, 0)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("invalidated page must be gone")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("used bytes after invalidate: %d", c.UsedBytes())
	}
}

func TestPageCacheEviction(t *testing.T) {
	// Each entry ≈ 1+8+8+1 = 18 bytes; budget fits ~5 pages of 2 entries.
	c := NewPageCache(180)
	page := func(i int) []base.Entry {
		return []base.Entry{
			base.MakeEntry([]byte{byte(i)}, 1, base.KindSet, 0, []byte("v")),
			base.MakeEntry([]byte{byte(i), 1}, 2, base.KindSet, 0, []byte("w")),
		}
	}
	for i := 0; i < 10; i++ {
		c.put(1, i, page(i))
	}
	if c.UsedBytes() > 180 {
		t.Fatalf("over budget: %d", c.UsedBytes())
	}
	// The most recent pages survive; the earliest were evicted.
	if _, ok := c.get(1, 9); !ok {
		t.Fatal("most recent page must survive")
	}
	if _, ok := c.get(1, 0); ok {
		t.Fatal("oldest page must be evicted")
	}
	// An over-budget page is never cached.
	huge := make([]base.Entry, 0, 64)
	for i := 0; i < 64; i++ {
		huge = append(huge, base.MakeEntry([]byte{byte(i)}, 1, base.KindSet, 0, make([]byte, 16)))
	}
	c.put(2, 0, huge)
	if _, ok := c.get(2, 0); ok {
		t.Fatal("oversized page must not be cached")
	}
}

func TestNilPageCacheIsNoop(t *testing.T) {
	var c *PageCache // nil
	c.put(1, 0, nil)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("nil cache hits nothing")
	}
	c.invalidate(1, 0)
	if c.UsedBytes() != 0 {
		t.Fatal("nil cache has no bytes")
	}
	if NewPageCache(0) != nil {
		t.Fatal("zero capacity must disable the cache")
	}
}

func TestReaderServesFromCache(t *testing.T) {
	counting := vfs.NewCounting(vfs.NewMem(), 256)
	f, _ := counting.Create("000001.sst")
	w := NewWriter(f, testOpts(2))
	for i := 0; i < 100; i++ {
		w.Add(base.MakeEntry([]byte(fmt.Sprintf("k%05d", i)), base.SeqNum(i+1),
			base.KindSet, base.DeleteKey(i), []byte("v")))
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cache := NewPageCache(1 << 20)
	r.SetCache(cache)

	// First read: I/O. Second read of the same key: cache, no I/O.
	if _, ok, _ := r.Get([]byte("k00042")); !ok {
		t.Fatal("key missing")
	}
	before := counting.Stats.Snapshot()
	if _, ok, _ := r.Get([]byte("k00042")); !ok {
		t.Fatal("key missing on second read")
	}
	delta := counting.Stats.Snapshot().Sub(before)
	if delta.ReadOps != 0 {
		t.Fatalf("cached read performed %d I/Os", delta.ReadOps)
	}
	if cache.Hits.Load() == 0 {
		t.Fatal("cache must register hits")
	}

	// After a partial drop the rewritten page is re-read, not served stale.
	stats, _, err := r.ApplySecondaryRangeDelete(40, 45, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDropped == 0 {
		t.Fatal("setup: drop must hit")
	}
	for i := 40; i < 45; i++ {
		if _, ok, _ := r.Get([]byte(fmt.Sprintf("k%05d", i))); ok {
			t.Fatalf("dropped key %d served (stale cache?)", i)
		}
	}
}
