package sstable

import (
	"fmt"
	"testing"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

func TestPageCacheBasics(t *testing.T) {
	c := NewPageCache(1 << 20)
	h := c.Handle()
	entries := []base.Entry{base.MakeEntry([]byte("k"), 1, base.KindSet, 0, []byte("v"))}
	if _, ok := h.get(1, 0); ok {
		t.Fatal("empty cache can't hit")
	}
	h.put(1, 0, entries, false)
	got, ok := h.get(1, 0)
	if !ok || len(got) != 1 {
		t.Fatal("cached page must be returned")
	}
	if c.Hits.Load() != 1 || c.Misses.Load() != 1 {
		t.Fatalf("hit/miss accounting: %d/%d", c.Hits.Load(), c.Misses.Load())
	}
	h.invalidate(1, 0)
	if _, ok := h.get(1, 0); ok {
		t.Fatal("invalidated page must be gone")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("used bytes after invalidate: %d", c.UsedBytes())
	}
}

func TestPageCacheEviction(t *testing.T) {
	// Each entry ≈ 1+8+8+1 = 18 bytes; budget fits ~5 pages of 2 entries.
	c := NewPageCache(180)
	h := c.Handle()
	page := func(i int) []base.Entry {
		return []base.Entry{
			base.MakeEntry([]byte{byte(i)}, 1, base.KindSet, 0, []byte("v")),
			base.MakeEntry([]byte{byte(i), 1}, 2, base.KindSet, 0, []byte("w")),
		}
	}
	for i := 0; i < 10; i++ {
		h.put(1, i, page(i), false)
	}
	if c.UsedBytes() > 180 {
		t.Fatalf("over budget: %d", c.UsedBytes())
	}
	// The most recent pages survive; the earliest were evicted.
	if _, ok := h.get(1, 9); !ok {
		t.Fatal("most recent page must survive")
	}
	if _, ok := h.get(1, 0); ok {
		t.Fatal("oldest page must be evicted")
	}
	// An over-budget page is never cached.
	huge := make([]base.Entry, 0, 64)
	for i := 0; i < 64; i++ {
		huge = append(huge, base.MakeEntry([]byte{byte(i)}, 1, base.KindSet, 0, make([]byte, 16)))
	}
	h.put(2, 0, huge, false)
	if _, ok := h.get(2, 0); ok {
		t.Fatal("oversized page must not be cached")
	}
}

// TestPageCachePreferredAdmission verifies remote-tier pages get a second
// chance at the LRU tail: a burst of non-preferred fills evicts other
// non-preferred pages first, and a preferred page survives one full
// eviction pass before becoming a victim.
func TestPageCachePreferredAdmission(t *testing.T) {
	page := func(i int) []base.Entry {
		return []base.Entry{
			base.MakeEntry([]byte{byte(i)}, 1, base.KindSet, 0, []byte("v")),
		}
	}
	// Capacity for exactly two pages.
	c := NewPageCache(2 * entriesBytes(page(0)))
	h := c.Handle()
	h.put(1, 0, page(0), true)  // the remote page, oldest
	h.put(1, 1, page(1), false) // a younger local page
	// Pressure: plain LRU would evict page 0 first. The second chance
	// demotes it to the front instead, making page 1 the victim.
	h.put(1, 2, page(2), false)
	if _, ok := h.get(1, 0); !ok {
		t.Fatal("preferred page evicted on its first trip to the LRU tail")
	}
	if _, ok := h.get(1, 1); ok {
		t.Fatal("non-preferred page must be the eviction victim")
	}
	// Demoted now; further pressure without touching it evicts it. (The
	// gets above moved page 0 to the front, so it takes two more fills to
	// reach the tail again.)
	h.put(1, 3, page(3), false)
	h.put(1, 4, page(4), false)
	if _, ok := h.get(1, 0); ok {
		t.Fatal("demoted preferred page must eventually be evictable")
	}
}

// TestCacheHandleNamespaces verifies two handles on one cache never alias:
// shards number their files independently, so file 1 page 0 means different
// bytes in each shard.
func TestCacheHandleNamespaces(t *testing.T) {
	c := NewPageCache(1 << 20)
	h1, h2 := c.Handle(), c.Handle()
	pageA := []base.Entry{base.MakeEntry([]byte("a"), 1, base.KindSet, 0, []byte("va"))}
	pageB := []base.Entry{base.MakeEntry([]byte("b"), 1, base.KindSet, 0, []byte("vb"))}
	h1.put(1, 0, pageA, false)
	if _, ok := h2.get(1, 0); ok {
		t.Fatal("handle 2 must not see handle 1's page under the same (file, page) key")
	}
	h2.put(1, 0, pageB, false)
	got1, _ := h1.get(1, 0)
	got2, _ := h2.get(1, 0)
	if string(got1[0].Key.UserKey) != "a" || string(got2[0].Key.UserKey) != "b" {
		t.Fatalf("namespaced pages aliased: %q / %q", got1[0].Key.UserKey, got2[0].Key.UserKey)
	}
	// Invalidation is namespaced too.
	h1.invalidate(1, 0)
	if _, ok := h2.get(1, 0); !ok {
		t.Fatal("invalidating handle 1's page must not evict handle 2's")
	}
}

func TestNilPageCacheIsNoop(t *testing.T) {
	var c *PageCache // nil
	h := c.Handle()
	if h != nil {
		t.Fatal("nil cache must yield a nil handle")
	}
	h.put(1, 0, nil, false)
	if _, ok := h.get(1, 0); ok {
		t.Fatal("nil cache hits nothing")
	}
	h.invalidate(1, 0)
	if c.UsedBytes() != 0 {
		t.Fatal("nil cache has no bytes")
	}
	if NewPageCache(0) != nil {
		t.Fatal("zero capacity must disable the cache")
	}
}

func TestReaderServesFromCache(t *testing.T) {
	counting := vfs.NewCounting(vfs.NewMem(), 256)
	f, _ := counting.Create("000001.sst")
	w := NewWriter(f, testOpts(2))
	for i := 0; i < 100; i++ {
		w.Add(base.MakeEntry([]byte(fmt.Sprintf("k%05d", i)), base.SeqNum(i+1),
			base.KindSet, base.DeleteKey(i), []byte("v")))
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	cache := NewPageCache(1 << 20)
	r.SetCache(cache.Handle())

	// First read: I/O. Second read of the same key: cache, no I/O.
	if _, ok, _ := r.Get([]byte("k00042")); !ok {
		t.Fatal("key missing")
	}
	before := counting.Stats.Snapshot()
	if _, ok, _ := r.Get([]byte("k00042")); !ok {
		t.Fatal("key missing on second read")
	}
	delta := counting.Stats.Snapshot().Sub(before)
	if delta.ReadOps != 0 {
		t.Fatalf("cached read performed %d I/Os", delta.ReadOps)
	}
	if cache.Hits.Load() == 0 {
		t.Fatal("cache must register hits")
	}

	// After a partial drop the rewritten page is re-read, not served stale.
	stats, _, err := r.ApplySecondaryRangeDelete(40, 45, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDropped == 0 {
		t.Fatal("setup: drop must hit")
	}
	for i := 40; i < 45; i++ {
		if _, ok, _ := r.Get([]byte(fmt.Sprintf("k%05d", i))); ok {
			t.Fatalf("dropped key %d served (stale cache?)", i)
		}
	}
}
