package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"lethe/internal/base"
)

// VerifyStats summarizes one file's integrity walk.
type VerifyStats struct {
	// Blocks is the number of live data blocks/pages checked.
	Blocks int
	// DroppedBlocks is the number of blocks skipped because a secondary
	// range delete removed them.
	DroppedBlocks int
	// Entries is the total number of entries decoded across live blocks.
	Entries int
	// Bytes is the total sealed size of the live blocks checked.
	Bytes int64
}

// VerifyIntegrity re-reads the file from disk and checks everything the
// format promises: footer magic/version and (v2) meta-block CRC, meta-block
// decode, index ordering (tiles disjoint and ascending on S, block offsets
// inside the data region), every live block's CRC, entry framing, in-block
// S-order, and agreement between each block's contents and its metadata
// (entry count, S fences). Any failure wraps ErrCorruption.
//
// It deliberately does not trust the state loaded at open time: `lethe
// verify` runs it against files that may have been damaged since.
func (r *Reader) VerifyIntegrity() (VerifyStats, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var vs VerifyStats

	// Footer and meta block, re-read and re-checked from disk.
	size, err := r.f.Size()
	if err != nil {
		return vs, fmt.Errorf("sstable: verify size: %w", err)
	}
	if size < FooterSize {
		return vs, fmt.Errorf("sstable: verify: file too small (%d bytes): %w", size, ErrCorruption)
	}
	var magicBuf [8]byte
	if _, err := r.f.ReadAt(magicBuf[:], size-8); err != nil && err != io.EOF {
		return vs, fmt.Errorf("sstable: verify footer magic: %w", err)
	}
	var metaOff, metaLen uint64
	var metaCRC uint32
	format := 0
	switch magic := binary.LittleEndian.Uint64(magicBuf[:]); magic {
	case Magic:
		format = FormatV1
		footer := make([]byte, FooterSize)
		if _, err := r.f.ReadAt(footer, size-FooterSize); err != nil && err != io.EOF {
			return vs, fmt.Errorf("sstable: verify footer: %w", err)
		}
		metaOff = binary.LittleEndian.Uint64(footer[0:8])
		metaLen = binary.LittleEndian.Uint64(footer[8:16])
		if metaOff+metaLen+FooterSize != uint64(size) {
			return vs, fmt.Errorf("sstable: verify: inconsistent footer: %w", ErrCorruption)
		}
	case MagicV2:
		if size < FooterSizeV2 {
			return vs, fmt.Errorf("sstable: verify: file too small for v2 footer: %w", ErrCorruption)
		}
		footer := make([]byte, FooterSizeV2)
		if _, err := r.f.ReadAt(footer, size-FooterSizeV2); err != nil && err != io.EOF {
			return vs, fmt.Errorf("sstable: verify footer: %w", err)
		}
		metaOff = binary.LittleEndian.Uint64(footer[0:8])
		metaLen = binary.LittleEndian.Uint64(footer[8:16])
		metaCRC = binary.LittleEndian.Uint32(footer[16:20])
		if v := binary.LittleEndian.Uint32(footer[20:24]); v != FormatV2 {
			return vs, fmt.Errorf("sstable: verify: unknown format version %d: %w", v, ErrCorruption)
		}
		format = FormatV2
		if metaOff+metaLen+FooterSizeV2 != uint64(size) {
			return vs, fmt.Errorf("sstable: verify: inconsistent footer: %w", ErrCorruption)
		}
	default:
		return vs, fmt.Errorf("sstable: verify: bad magic %x: %w", magic, ErrCorruption)
	}
	metaBlock := make([]byte, metaLen)
	if _, err := r.f.ReadAt(metaBlock, int64(metaOff)); err != nil && err != io.EOF {
		return vs, fmt.Errorf("sstable: verify meta block: %w", err)
	}
	if format >= FormatV2 {
		if got := crc32.Checksum(metaBlock, crc32.MakeTable(crc32.Castagnoli)); got != metaCRC {
			return vs, fmt.Errorf("sstable: verify: meta block checksum mismatch: %w", ErrCorruption)
		}
	}
	meta, tiles, _, err := decodeMetaBlock(metaBlock, format)
	if err != nil {
		return vs, err
	}

	// Index ordering: tiles disjoint and ascending on S, block fences inside
	// their tile, offsets inside the data region. (Block offsets are not
	// monotone in v2 — partial drops relocate — but must stay in bounds.)
	for ti := range tiles {
		t := &tiles[ti]
		if base.CompareUserKeys(t.MinS, t.MaxS) > 0 {
			return vs, fmt.Errorf("sstable: verify: tile %d fence inverted: %w", ti, ErrCorruption)
		}
		if ti > 0 && base.CompareUserKeys(tiles[ti-1].MaxS, t.MinS) >= 0 {
			return vs, fmt.Errorf("sstable: verify: tiles %d and %d overlap on S: %w", ti-1, ti, ErrCorruption)
		}
		for pi := range t.Pages {
			pm := &t.Pages[pi]
			if pm.Dropped {
				vs.DroppedBlocks++
				continue
			}
			if base.CompareUserKeys(pm.MinS, t.MinS) < 0 || base.CompareUserKeys(pm.MaxS, t.MaxS) > 0 {
				return vs, fmt.Errorf("sstable: verify: block %d.%d fences escape tile: %w", ti, pi, ErrCorruption)
			}
			if pm.Offset < 0 || pm.Offset+int64(pm.Bytes) > int64(metaOff) {
				return vs, fmt.Errorf("sstable: verify: block %d.%d spans [%d,%d) outside data region [0,%d): %w",
					ti, pi, pm.Offset, pm.Offset+int64(pm.Bytes), metaOff, ErrCorruption)
			}

			sealed := make([]byte, pm.Bytes)
			if _, err := r.f.ReadAt(sealed, pm.Offset); err != nil && err != io.EOF {
				return vs, fmt.Errorf("sstable: verify read block %d.%d: %w", ti, pi, err)
			}
			count, err := r.verifyBlock(format, sealed, pm)
			if err != nil {
				return vs, fmt.Errorf("sstable: verify block %d.%d: %w", ti, pi, err)
			}
			vs.Blocks++
			vs.Entries += count
			vs.Bytes += int64(pm.Bytes)
		}
	}
	if vs.Entries != meta.NumEntries {
		return vs, fmt.Errorf("sstable: verify: live blocks hold %d entries, meta says %d: %w",
			vs.Entries, meta.NumEntries, ErrCorruption)
	}
	return vs, nil
}

// verifyBlock checks one sealed block against its descriptor.
func (r *Reader) verifyBlock(format int, sealed []byte, pm *PageMeta) (int, error) {
	var entries []base.Entry
	if format >= FormatV2 {
		if _, err := validateBlock(sealed); err != nil {
			return 0, err
		}
		payload, err := openPage(sealed)
		if err != nil {
			return 0, err
		}
		if entries, err = decodeBlock(payload); err != nil {
			return 0, err
		}
	} else {
		payload, err := openPage(sealed)
		if err != nil {
			return 0, err
		}
		count, rest, err := base.Uvarint(payload)
		if err != nil {
			return 0, err
		}
		entries = make([]base.Entry, 0, count)
		for i := uint64(0); i < count; i++ {
			var e base.Entry
			if e, rest, err = base.DecodeEntry(rest); err != nil {
				return 0, err
			}
			entries = append(entries, e)
		}
		for i := 1; i < len(entries); i++ {
			if base.CompareUserKeys(entries[i-1].Key.UserKey, entries[i].Key.UserKey) >= 0 {
				return 0, fmt.Errorf("page keys out of order at entry %d: %w", i, ErrCorruption)
			}
		}
	}
	if len(entries) != pm.Count {
		return 0, fmt.Errorf("block holds %d entries, meta says %d: %w", len(entries), pm.Count, ErrCorruption)
	}
	if format >= FormatV2 {
		keyBytes := 0
		for i := range entries {
			keyBytes += len(entries[i].Key.UserKey)
		}
		if keyBytes != pm.KeyBytes {
			return 0, fmt.Errorf("block holds %d key bytes, meta says %d: %w", keyBytes, pm.KeyBytes, ErrCorruption)
		}
	}
	if len(entries) > 0 {
		if base.CompareUserKeys(entries[0].Key.UserKey, pm.MinS) != 0 ||
			base.CompareUserKeys(entries[len(entries)-1].Key.UserKey, pm.MaxS) != 0 {
			return 0, fmt.Errorf("block fences disagree with contents: %w", ErrCorruption)
		}
	}
	return len(entries), nil
}
