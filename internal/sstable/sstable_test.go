package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

var testClock = base.NewManualClock(time.Unix(1_000_000, 0))

func testOpts(h int) WriterOptions {
	return WriterOptions{
		FileNum:         1,
		PageSize:        256,
		BlockSizeBytes:  256,
		TilePages:       h,
		BloomBitsPerKey: 10,
		Clock:           testClock,
	}
}

// buildFile writes entries (must be S-sorted) into a fresh MemFS file and
// returns a reader over it.
func buildFile(t *testing.T, opts WriterOptions, entries []base.Entry, rts []base.RangeTombstone) (*Reader, *vfs.MemFS) {
	t.Helper()
	fs := vfs.NewMem()
	f, err := fs.Create("000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, opts)
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	for _, rt := range rts {
		if err := w.AddRangeTombstone(rt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open("000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(g)
	if err != nil {
		t.Fatal(err)
	}
	return r, fs
}

func seqEntries(n int, dkeyOf func(i int) base.DeleteKey) []base.Entry {
	entries := make([]base.Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = base.MakeEntry(
			[]byte(fmt.Sprintf("key-%05d", i)), base.SeqNum(i+1), base.KindSet,
			dkeyOf(i), []byte(fmt.Sprintf("val-%05d", i)))
	}
	return entries
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, h := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("h=%d", h), func(t *testing.T) {
			entries := seqEntries(100, func(i int) base.DeleteKey { return base.DeleteKey(i * 7 % 100) })
			r, _ := buildFile(t, testOpts(h), entries, nil)
			defer r.Close()

			if r.Meta.NumEntries != 100 {
				t.Fatalf("NumEntries = %d", r.Meta.NumEntries)
			}
			if string(r.Meta.MinS) != "key-00000" || string(r.Meta.MaxS) != "key-00099" {
				t.Fatalf("S bounds: %q..%q", r.Meta.MinS, r.Meta.MaxS)
			}
			for _, e := range entries {
				got, ok, err := r.Get(e.Key.UserKey)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("h=%d: %q not found", h, e.Key.UserKey)
				}
				if !bytes.Equal(got.Value, e.Value) || got.DKey != e.DKey {
					t.Fatalf("h=%d: %q: got %v", h, e.Key.UserKey, got)
				}
			}
			// Missing keys.
			for _, k := range []string{"key-99999", "aaa", "zzz", "key-0005"} {
				if _, ok, _ := r.Get([]byte(k)); ok {
					t.Fatalf("phantom key %q", k)
				}
			}
		})
	}
}

func TestKiWiLayoutInvariants(t *testing.T) {
	// The weave (§4.2.1): tiles disjoint and ordered on S; pages within a
	// tile ordered on D (by their fences); entries within a page sorted on S.
	entries := seqEntries(200, func(i int) base.DeleteKey { return base.DeleteKey((i * 37) % 1000) })
	r, _ := buildFile(t, testOpts(4), entries, nil)
	defer r.Close()

	if len(r.Tiles) < 2 {
		t.Fatalf("want multiple tiles, got %d", len(r.Tiles))
	}
	for ti := range r.Tiles {
		tile := &r.Tiles[ti]
		if ti > 0 && base.CompareUserKeys(r.Tiles[ti-1].MaxS, tile.MinS) >= 0 {
			t.Fatalf("tiles %d and %d overlap in S", ti-1, ti)
		}
		if len(tile.Pages) > 4+1 {
			t.Fatalf("tile %d has %d pages, want ≈h=4", ti, len(tile.Pages))
		}
		for pi := range tile.Pages {
			pm := &tile.Pages[pi]
			// Pages within a tile ordered on D.
			if pi > 0 && tile.Pages[pi-1].MaxD > pm.MinD && pm.ValueCount > 0 && tile.Pages[pi-1].ValueCount > 0 {
				t.Fatalf("tile %d: pages %d,%d out of D order (%d > %d)",
					ti, pi-1, pi, tile.Pages[pi-1].MaxD, pm.MinD)
			}
			// Entries within a page sorted on S.
			page, err := r.readPage(tile, pi)
			if err != nil {
				t.Fatal(err)
			}
			for j := 1; j < len(page); j++ {
				if base.CompareUserKeys(page[j-1].Key.UserKey, page[j].Key.UserKey) >= 0 {
					t.Fatalf("tile %d page %d: entries out of S order", ti, pi)
				}
			}
			// Page D fences are truthful.
			for _, e := range page {
				if e.Key.Kind() != base.KindSet {
					continue
				}
				if e.DKey < pm.MinD || e.DKey > pm.MaxD {
					t.Fatalf("entry D=%d outside page fence [%d,%d]", e.DKey, pm.MinD, pm.MaxD)
				}
			}
		}
	}
}

func TestH1IsClassicalLayout(t *testing.T) {
	// With h = 1 every tile is one page and the whole file is S-sorted, so
	// consecutive pages must be S-disjoint and D fences vary freely.
	entries := seqEntries(100, func(i int) base.DeleteKey { return base.DeleteKey(i % 13) })
	r, _ := buildFile(t, testOpts(1), entries, nil)
	defer r.Close()
	for ti := range r.Tiles {
		if len(r.Tiles[ti].Pages) != 1 {
			t.Fatalf("h=1 tile %d has %d pages", ti, len(r.Tiles[ti].Pages))
		}
	}
}

func TestIterFullScan(t *testing.T) {
	for _, h := range []int{1, 4, 16} {
		entries := seqEntries(300, func(i int) base.DeleteKey { return base.DeleteKey((i * 101) % 997) })
		r, _ := buildFile(t, testOpts(h), entries, nil)
		it := r.NewIter()
		i := 0
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			want := fmt.Sprintf("key-%05d", i)
			if string(e.Key.UserKey) != want {
				t.Fatalf("h=%d pos %d: got %q want %q", h, i, e.Key.UserKey, want)
			}
			i++
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
		if i != 300 {
			t.Fatalf("h=%d: scanned %d entries", h, i)
		}
		r.Close()
	}
}

func TestIterSeekGE(t *testing.T) {
	entries := seqEntries(100, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, _ := buildFile(t, testOpts(4), entries, nil)
	defer r.Close()

	it := r.NewIter()
	it.SeekGE([]byte("key-00042"))
	e, ok := it.Next()
	if !ok || string(e.Key.UserKey) != "key-00042" {
		t.Fatalf("seek exact: %v %v", e, ok)
	}

	it.SeekGE([]byte("key-00042x")) // between keys
	e, ok = it.Next()
	if !ok || string(e.Key.UserKey) != "key-00043" {
		t.Fatalf("seek between: %v %v", e, ok)
	}

	it.SeekGE([]byte("zzz")) // past the end
	if _, ok := it.Next(); ok {
		t.Fatal("seek past end must exhaust")
	}

	it.SeekGE([]byte("")) // before the start
	e, ok = it.Next()
	if !ok || string(e.Key.UserKey) != "key-00000" {
		t.Fatalf("seek before start: %v %v", e, ok)
	}
}

func TestRangeTombstoneBlock(t *testing.T) {
	rts := []base.RangeTombstone{
		{Start: []byte("a"), End: []byte("m"), Seq: 500, DKey: base.DeleteKey(testClock.Now().UnixNano())},
		{Start: []byte("x"), End: []byte("z"), Seq: 600, DKey: base.DeleteKey(testClock.Now().UnixNano())},
	}
	entries := seqEntries(10, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, _ := buildFile(t, testOpts(2), entries, rts)
	defer r.Close()

	if r.Meta.NumRangeTombstones != 2 {
		t.Fatalf("NumRangeTombstones = %d", r.Meta.NumRangeTombstones)
	}
	if len(r.RangeTombstones) != 2 {
		t.Fatalf("decoded %d range tombstones", len(r.RangeTombstones))
	}
	got := r.RangeTombstones[0]
	if string(got.Start) != "a" || string(got.End) != "m" || got.Seq != 500 {
		t.Fatalf("rt[0] = %+v", got)
	}
	if r.Meta.OldestTombstone.IsZero() {
		t.Fatal("range tombstone must set OldestTombstone")
	}
}

func TestTombstoneMetadata(t *testing.T) {
	now := testClock.Now()
	older := now.Add(-time.Hour)
	entries := []base.Entry{
		base.MakeEntry([]byte("a"), 1, base.KindSet, 5, []byte("v")),
		base.MakeEntry([]byte("b"), 2, base.KindDelete, base.DeleteKey(now.UnixNano()), nil),
		base.MakeEntry([]byte("c"), 3, base.KindDelete, base.DeleteKey(older.UnixNano()), nil),
		base.MakeEntry([]byte("d"), 4, base.KindSet, 9, []byte("v")),
	}
	r, _ := buildFile(t, testOpts(2), entries, nil)
	defer r.Close()

	if r.Meta.NumPointTombstones != 2 {
		t.Fatalf("NumPointTombstones = %d", r.Meta.NumPointTombstones)
	}
	if !r.Meta.OldestTombstone.Equal(older) {
		t.Fatalf("OldestTombstone = %v want %v", r.Meta.OldestTombstone, older)
	}
	if got := r.Meta.AMax(now); got != time.Hour {
		t.Fatalf("AMax = %v", got)
	}
	// b_f = p_f when there are no range tombstones.
	if got := r.Meta.EstimatedInvalidated(1000); got != 2 {
		t.Fatalf("b = %f", got)
	}
	// D fences must cover only value entries (5 and 9), not tombstone
	// timestamps.
	if r.Meta.MinD != 5 || r.Meta.MaxD != 9 {
		t.Fatalf("file D fence [%d,%d]", r.Meta.MinD, r.Meta.MaxD)
	}
}

func TestAMaxWithoutTombstones(t *testing.T) {
	entries := seqEntries(5, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, _ := buildFile(t, testOpts(1), entries, nil)
	defer r.Close()
	if r.Meta.HasTombstones() {
		t.Fatal("no tombstones expected")
	}
	if got := r.Meta.AMax(testClock.Now()); got != 0 {
		t.Fatalf("AMax = %v, want 0 for tombstone-free file", got)
	}
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("x.sst")
	w := NewWriter(f, testOpts(2))
	if err := w.Add(base.MakeEntry([]byte("b"), 1, base.KindSet, 0, nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(base.MakeEntry([]byte("a"), 2, base.KindSet, 0, nil)); err == nil {
		t.Fatal("out-of-order key accepted")
	}
	if err := w.Add(base.MakeEntry([]byte("b"), 3, base.KindSet, 0, nil)); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if err := w.Add(base.MakeEntry([]byte("c"), 1, base.KindRangeDelete, 0, []byte("d"))); err == nil {
		t.Fatal("range tombstone through Add accepted")
	}
}

func TestWriterRejectsOversizeEntry(t *testing.T) {
	// v1 pages are fixed-size, so an entry that cannot fit one page is an
	// error; v2 blocks are variable-length and give it a block of its own.
	fs := vfs.NewMem()
	f, _ := fs.Create("x.sst")
	opts := testOpts(1)
	opts.FormatVersion = FormatV1
	w := NewWriter(f, opts)
	huge := base.MakeEntry([]byte("k"), 1, base.KindSet, 0, bytes.Repeat([]byte{'v'}, 4096))
	if err := w.Add(huge); err == nil {
		t.Fatal("oversize entry accepted by v1 writer")
	}
}

func TestEmptyFile(t *testing.T) {
	r, _ := buildFile(t, testOpts(2), nil, nil)
	defer r.Close()
	if r.Meta.NumEntries != 0 || r.Meta.NumPages != 0 {
		t.Fatalf("meta: %+v", r.Meta)
	}
	if _, ok, _ := r.Get([]byte("any")); ok {
		t.Fatal("empty file can't contain keys")
	}
	it := r.NewIter()
	if _, ok := it.Next(); ok {
		t.Fatal("empty file iterates nothing")
	}
}

func TestOpenReaderCorruption(t *testing.T) {
	fs := vfs.NewMem()
	// Too small.
	f, _ := fs.Create("small")
	f.Write([]byte("tiny"))
	if _, err := OpenReader(f); err == nil {
		t.Fatal("tiny file accepted")
	}
	// Bad magic.
	g, _ := fs.Create("badmagic")
	g.Write(make([]byte, 100))
	if _, err := OpenReader(g); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDoubleFinish(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("x.sst")
	w := NewWriter(f, testOpts(1))
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("double finish accepted")
	}
	if err := w.Add(base.MakeEntry([]byte("a"), 1, base.KindSet, 0, nil)); err == nil {
		t.Fatal("Add after Finish accepted")
	}
}

func TestMetaBlockRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(300)
		h := 1 << rng.Intn(5)
		entries := seqEntries(n, func(i int) base.DeleteKey { return base.DeleteKey(rng.Intn(10000)) })
		sort.Slice(entries, func(i, j int) bool {
			return base.CompareUserKeys(entries[i].Key.UserKey, entries[j].Key.UserKey) < 0
		})
		r, _ := buildFile(t, testOpts(h), entries, nil)
		if r.Meta.NumEntries != n {
			t.Fatalf("trial %d: entries %d != %d", trial, r.Meta.NumEntries, n)
		}
		total := 0
		for ti := range r.Tiles {
			for pi := range r.Tiles[ti].Pages {
				total += r.Tiles[ti].Pages[pi].Count
			}
		}
		if total != n {
			t.Fatalf("trial %d: page counts sum to %d", trial, total)
		}
		r.Close()
	}
}

func TestPageChecksumDetectsCorruption(t *testing.T) {
	entries := seqEntries(50, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, fs := buildFile(t, testOpts(2), entries, nil)
	r.Close()

	// Flip one byte inside the first data page.
	f, _ := fs.Open("000001.sst")
	b := make([]byte, 1)
	f.ReadAt(b, 10)
	b[0] ^= 0xff
	f.WriteAt(b, 10)

	r2, err := OpenReader(f)
	if err != nil {
		t.Fatal(err) // meta block is intact; open succeeds
	}
	defer r2.Close()
	// Any access touching the corrupt page must fail with ErrCorrupt.
	sawCorrupt := false
	for _, e := range entries {
		_, _, err := r2.Get(e.Key.UserKey)
		if err != nil {
			if !errors.Is(err, base.ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("corruption went undetected")
	}
	it := r2.NewIter()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if it.Error() == nil {
		t.Fatal("iterator must surface page corruption")
	}
}
