package sstable

import (
	"fmt"

	"lethe/internal/base"
	"lethe/internal/bloom"
)

// SRDStats reports what a secondary range delete did to one file — the
// quantities behind Fig. 6H (fraction of full page drops) and the I/O
// accounting of Fig. 6K/6L.
type SRDStats struct {
	// FullDrops is the number of pages removed without any I/O.
	FullDrops int
	// PartialDrops is the number of edge pages read, filtered, and
	// rewritten in place.
	PartialDrops int
	// EntriesDropped is the number of value entries deleted.
	EntriesDropped int
	// PagesUntouched is the number of live pages whose delete fences proved
	// they hold no qualifying entries.
	PagesUntouched int
}

// ApplySecondaryRangeDelete removes every value entry with lo <= D < hi from
// the file, per §4.2.2: pages fully covered by the range (as proven by their
// delete fences) are dropped without being read; edge pages — at most the
// boundary pages of each tile's D order — are read, filtered, and rewritten
// in place. The metadata block is rewritten afterwards so the file stays
// self-describing. The updated Meta is returned.
func (r *Reader) ApplySecondaryRangeDelete(lo, hi base.DeleteKey, bitsPerKey int) (SRDStats, *Meta, error) {
	var stats SRDStats
	if hi <= lo {
		return stats, r.Meta, nil
	}
	// Exclude concurrent lookups/scans on this file: pages and their
	// descriptors are rewritten in place.
	r.mu.Lock()
	defer r.mu.Unlock()
	for ti := range r.Tiles {
		tile := &r.Tiles[ti]
		for pi := range tile.Pages {
			pm := &tile.Pages[pi]
			switch {
			case pm.Dropped || pm.ValueCount == 0:
				continue
			case pm.MaxD < lo || pm.MinD >= hi:
				// Delete fences prove no overlap.
				stats.PagesUntouched++
				continue
			case pm.MinD >= lo && pm.MaxD < hi && pm.ValueCount == pm.Count:
				// Fully covered pure-value page: full page drop, zero I/O.
				stats.EntriesDropped += pm.ValueCount
				r.cache.invalidate(r.Meta.FileNum, tile.FirstPage+pi)
				if r.Meta.Format >= FormatV2 {
					r.Meta.DeadBytes += int64(pm.Bytes)
				}
				pm.Dropped = true
				pm.Count = 0
				pm.ValueCount = 0
				pm.Bytes = 0
				pm.KeyBytes = 0
				pm.Filter = nil
				stats.FullDrops++
			default:
				// Edge page (or page mixing tombstones with values): read,
				// filter, rewrite in place.
				dropped, err := r.partialDrop(tile, pi, lo, hi, bitsPerKey)
				if err != nil {
					return stats, r.Meta, err
				}
				stats.EntriesDropped += dropped
				if dropped > 0 {
					stats.PartialDrops++
				} else {
					stats.PagesUntouched++
				}
			}
		}
	}
	if stats.FullDrops+stats.PartialDrops > 0 {
		if err := r.recomputeFileMeta(); err != nil {
			return stats, r.Meta, err
		}
		if err := r.rewriteMetaBlock(); err != nil {
			return stats, r.Meta, err
		}
	}
	return stats, r.Meta, nil
}

// partialDrop filters one page in place, returning how many entries it
// removed.
func (r *Reader) partialDrop(tile *TileMeta, pi int, lo, hi base.DeleteKey, bitsPerKey int) (int, error) {
	entries, err := r.readPage(tile, pi)
	if err != nil {
		return 0, err
	}
	kept := entries[:0]
	removed := 0
	for _, e := range entries {
		if e.Key.Kind() == base.KindSet && e.DKey >= lo && e.DKey < hi {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed == 0 {
		return 0, nil
	}
	pm := &tile.Pages[pi]
	if len(kept) == 0 {
		// The page emptied out: it becomes a drop (but it already cost a
		// read; it is still counted as a partial drop by the caller).
		r.cache.invalidate(r.Meta.FileNum, tile.FirstPage+pi)
		if r.Meta.Format >= FormatV2 {
			r.Meta.DeadBytes += int64(pm.Bytes)
		}
		pm.Dropped = true
		pm.Count = 0
		pm.ValueCount = 0
		pm.Bytes = 0
		pm.KeyBytes = 0
		pm.Filter = nil
		return removed, nil
	}

	// Re-encode the surviving entries (already in S order since we preserved
	// their order) in the file's format.
	newPM := PageMeta{
		Count:  len(kept),
		Offset: pm.Offset,
		MinS:   append([]byte(nil), kept[0].Key.UserKey...),
		MaxS:   append([]byte(nil), kept[len(kept)-1].Key.UserKey...),
		MinD:   ^base.DeleteKey(0),
	}
	keys := make([][]byte, 0, len(kept))
	var buf []byte
	if r.Meta.Format < FormatV2 {
		buf = base.AppendUvarint(nil, uint64(len(kept)))
	}
	for _, e := range kept {
		if r.Meta.Format < FormatV2 {
			buf = base.AppendEntry(buf, e)
		} else {
			newPM.KeyBytes += len(e.Key.UserKey)
		}
		keys = append(keys, e.Key.UserKey)
		switch e.Key.Kind() {
		case base.KindDelete:
			newPM.HasTombstone = true
		case base.KindSet:
			newPM.ValueCount++
			if e.DKey < newPM.MinD {
				newPM.MinD = e.DKey
			}
			if e.DKey > newPM.MaxD {
				newPM.MaxD = e.DKey
			}
		}
	}
	if newPM.ValueCount == 0 {
		newPM.MinD, newPM.MaxD = 0, 0
	}
	newPM.Filter = bloom.New(keys, bitsPerKey)

	if r.Meta.Format < FormatV2 {
		buf = sealPage(buf)
		newPM.Bytes = len(buf)
		padded := make([]byte, r.Meta.PageSize)
		copy(padded, buf)
		if _, err := r.f.WriteAt(padded, pm.Offset); err != nil {
			return 0, fmt.Errorf("sstable: rewrite page: %w", err)
		}
	} else {
		// Dropping an entry can lengthen its successor's unshared suffix, so
		// a shrunken entry set does not guarantee a shorter block. Overwrite
		// in place when the new block fits the old footprint; otherwise
		// relocate it to the end of the data region (the old bytes become
		// dead space either way).
		sealed := encodeBlock(kept)
		newPM.Bytes = len(sealed)
		if len(sealed) <= pm.Bytes {
			r.Meta.DeadBytes += int64(pm.Bytes - len(sealed))
		} else {
			newPM.Offset = r.Meta.DataEnd
			r.Meta.DataEnd += int64(len(sealed))
			r.Meta.DeadBytes += int64(pm.Bytes)
		}
		if _, err := r.f.WriteAt(sealed, newPM.Offset); err != nil {
			return 0, fmt.Errorf("sstable: rewrite block: %w", err)
		}
	}
	r.cache.invalidate(r.Meta.FileNum, tile.FirstPage+pi)
	tile.Pages[pi] = newPM
	return removed, nil
}

// recomputeFileMeta refreshes the file-level aggregates from the surviving
// page metadata after drops.
func (r *Reader) recomputeFileMeta() error {
	m := r.Meta
	m.NumEntries = 0
	m.NumPointTombstones = 0
	first := true
	for ti := range r.Tiles {
		for pi := range r.Tiles[ti].Pages {
			pm := &r.Tiles[ti].Pages[pi]
			if pm.Dropped {
				continue
			}
			m.NumEntries += pm.Count
			m.NumPointTombstones += pm.Count - pm.ValueCount
			if pm.ValueCount > 0 {
				if first || pm.MinD < m.MinD {
					m.MinD = pm.MinD
				}
				if first || pm.MaxD > m.MaxD {
					m.MaxD = pm.MaxD
				}
				first = false
			}
		}
	}
	if first {
		m.MinD, m.MaxD = 0, 0
	}
	return nil
}

// rewriteMetaBlock re-serializes the metadata block — at its fixed offset
// past the page array in v1 (data pages are untouched by drops), at the
// current end of the data region in v2 (relocated blocks may have extended
// it) — and truncates the file behind the new footer.
func (r *Reader) rewriteMetaBlock() error {
	metaOff := int64(r.Meta.NumPages) * int64(r.Meta.PageSize)
	if r.Meta.Format >= FormatV2 {
		metaOff = r.Meta.DataEnd
	}
	metaBlock := encodeMetaBlock(r.Meta, r.Tiles, r.RangeTombstones)
	footer := appendFooter(nil, r.Meta.Format, metaOff, metaBlock)
	if _, err := r.f.WriteAt(append(metaBlock, footer...), metaOff); err != nil {
		return fmt.Errorf("sstable: rewrite meta block: %w", err)
	}
	newSize := metaOff + int64(len(metaBlock)) + int64(len(footer))
	if err := r.f.Truncate(newSize); err != nil {
		return fmt.Errorf("sstable: truncate after meta rewrite: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("sstable: sync after meta rewrite: %w", err)
	}
	r.Meta.Size = newSize
	return nil
}

// LiveBytesOf returns the file's live byte count (size minus dropped pages).
func (r *Reader) LiveBytesOf() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return LiveBytes(r.Meta, r.Tiles)
}

// CountDropped returns how many pages of the file have been dropped.
func (r *Reader) CountDropped() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for ti := range r.Tiles {
		for pi := range r.Tiles[ti].Pages {
			if r.Tiles[ti].Pages[pi].Dropped {
				n++
			}
		}
	}
	return n
}
