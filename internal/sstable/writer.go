package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"lethe/internal/base"
	"lethe/internal/bloom"
	"lethe/internal/vfs"
)

// pageHeaderReserve is the space reserved in each page for the checksum and
// the entry-count varint.
const pageHeaderReserve = 9

// WriterOptions configures sstable construction.
type WriterOptions struct {
	// FileNum is the engine-assigned file number.
	FileNum uint64
	// FormatVersion selects the on-disk format: FormatV1 or FormatV2.
	// Zero means FormatV2 — new files get the block format unless a test
	// (or a mixed-version scenario) explicitly pins v1.
	FormatVersion int
	// PageSize is the byte size of each data page (the paper's disk page).
	// v2 files record it for I/O accounting but place blocks by offset.
	PageSize int
	// BlockSizeBytes is the target encoded size of a v2 data block
	// (DefaultBlockSize when zero). Ignored by v1, which uses PageSize.
	BlockSizeBytes int
	// TilePages is h, the target number of pages per delete tile. h = 1
	// yields the classical layout.
	TilePages int
	// BloomBitsPerKey sizes the per-page Bloom filters (paper default: 10).
	BloomBitsPerKey int
	// Clock stamps CreatedAt.
	Clock base.Clock
	// CoverageEstimator estimates the fraction of the key domain covered by
	// [start, end) — the "system-wide histogram" of §4.1.3 used to estimate
	// rd_f. Nil means range tombstones contribute zero to b_f.
	CoverageEstimator func(start, end []byte) float64
}

func (o *WriterOptions) withDefaults() WriterOptions {
	opts := *o
	if opts.FormatVersion == 0 {
		opts.FormatVersion = FormatV2
	}
	if opts.PageSize == 0 {
		opts.PageSize = 4096
	}
	if opts.BlockSizeBytes == 0 {
		opts.BlockSizeBytes = DefaultBlockSize
	}
	if opts.TilePages == 0 {
		opts.TilePages = 1
	}
	if opts.BloomBitsPerKey == 0 {
		opts.BloomBitsPerKey = 10
	}
	if opts.Clock == nil {
		opts.Clock = base.RealClock{}
	}
	return opts
}

// Writer builds one sstable. Entries must be added in strictly increasing
// sort-key order (the engine guarantees per-file key uniqueness: flushes
// come from a single-version buffer and compactions consolidate duplicates).
type Writer struct {
	f    vfs.File
	opts WriterOptions

	tileBuf   []base.Entry // current tile's entries, S-ordered
	tileBytes int

	tiles    []TileMeta
	rts      []base.RangeTombstone
	pageOff  int64 // next page/block write offset
	numPages int
	bw       blockWriter // reused across v2 blocks

	meta     Meta
	lastKey  []byte
	sawValue bool
	finished bool
	err      error
}

// NewWriter starts writing an sstable to f.
func NewWriter(f vfs.File, opts WriterOptions) *Writer {
	o := opts.withDefaults()
	w := &Writer{f: f, opts: o}
	w.meta = Meta{
		FileNum:   o.FileNum,
		Format:    o.FormatVersion,
		PageSize:  o.PageSize,
		TilePages: o.TilePages,
		MinSeq:    base.MaxSeqNum,
	}
	if o.FormatVersion >= FormatV2 {
		w.meta.BlockSize = o.BlockSizeBytes
	}
	return w
}

func encodedEntrySize(e base.Entry) int {
	return len(base.AppendEntry(nil, e))
}

// pageBudget is the target payload bytes per page (v1) or block (v2). Both
// tile partitioning and the flat-encoded entry-size estimate use it; v2
// prefix compression only makes blocks land under the target, never over.
func (w *Writer) pageBudget() int {
	if w.opts.FormatVersion >= FormatV2 {
		return w.opts.BlockSizeBytes
	}
	return w.opts.PageSize - pageHeaderReserve
}

// Add appends an entry (value or point tombstone). Keys must be strictly
// increasing.
func (w *Writer) Add(e base.Entry) error {
	if w.err != nil {
		return w.err
	}
	if w.finished {
		return fmt.Errorf("sstable: Add after Finish")
	}
	if e.Key.Kind() == base.KindRangeDelete {
		return fmt.Errorf("sstable: range tombstones must use AddRangeTombstone")
	}
	if w.lastKey != nil && base.CompareUserKeys(e.Key.UserKey, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order: %q after %q", e.Key.UserKey, w.lastKey)
	}
	e = e.Clone()
	w.lastKey = e.Key.UserKey

	sz := encodedEntrySize(e)
	budget := w.opts.TilePages * w.pageBudget()
	if w.opts.FormatVersion < FormatV2 && sz > w.pageBudget() {
		// v1 pages are fixed-size, so an entry must fit in one page. v2
		// blocks are variable-length: an oversize entry gets its own block.
		return fmt.Errorf("sstable: entry of %d bytes exceeds page size %d", sz, w.opts.PageSize)
	}
	if len(w.tileBuf) > 0 && w.tileBytes+sz > budget {
		if err := w.flushTile(); err != nil {
			return err
		}
	}
	w.tileBuf = append(w.tileBuf, e)
	w.tileBytes += sz
	return nil
}

// AddRangeTombstone records a range tombstone in the file's range tombstone
// block. Order does not matter.
func (w *Writer) AddRangeTombstone(rt base.RangeTombstone) error {
	if w.err != nil {
		return w.err
	}
	if w.finished {
		return fmt.Errorf("sstable: AddRangeTombstone after Finish")
	}
	rt = base.RangeTombstone{
		Start: append([]byte(nil), rt.Start...),
		End:   append([]byte(nil), rt.End...),
		Seq:   rt.Seq,
		DKey:  rt.DKey,
	}
	w.rts = append(w.rts, rt)
	w.meta.NumRangeTombstones++
	w.observeTombstoneTime(time.Unix(0, int64(rt.DKey)))
	if rt.Seq < w.meta.MinSeq {
		w.meta.MinSeq = rt.Seq
	}
	if rt.Seq > w.meta.MaxSeq {
		w.meta.MaxSeq = rt.Seq
	}
	if w.opts.CoverageEstimator != nil {
		w.meta.RangeCoverage += w.opts.CoverageEstimator(rt.Start, rt.End)
	}
	return nil
}

func (w *Writer) observeTombstoneTime(t time.Time) {
	if w.meta.OldestTombstone.IsZero() || t.Before(w.meta.OldestTombstone) {
		w.meta.OldestTombstone = t
	}
}

// flushTile weaves the buffered entries into delete-tile form and writes the
// tile's pages: entries are ordered by D across the tile's pages, and each
// page is internally re-sorted on S (§4.2.1).
func (w *Writer) flushTile() error {
	if len(w.tileBuf) == 0 {
		return nil
	}
	entries := w.tileBuf
	tile := TileMeta{
		FirstPage: w.numPages,
		MinS:      entries[0].Key.UserKey,
		MaxS:      entries[len(entries)-1].Key.UserKey,
	}

	// Order the tile's entries by delete key. Tombstones carry insertion
	// timestamps in DKey, so they cluster together; pages containing them
	// are flagged and never fully dropped.
	byD := make([]base.Entry, len(entries))
	copy(byD, entries)
	sort.SliceStable(byD, func(i, j int) bool { return byD[i].DKey < byD[j].DKey })

	// Partition into ~h pages balanced by entry count, respecting the page
	// byte budget.
	h := w.opts.TilePages
	targetCount := (len(byD) + h - 1) / h
	budget := w.pageBudget()
	var page []base.Entry
	var pageBytes int
	flushPage := func() error {
		if len(page) == 0 {
			return nil
		}
		if err := w.writePage(&tile, page); err != nil {
			return err
		}
		page = page[:0]
		pageBytes = 0
		return nil
	}
	for _, e := range byD {
		sz := encodedEntrySize(e)
		if len(page) > 0 && (len(page) >= targetCount || pageBytes+sz > budget) {
			if err := flushPage(); err != nil {
				return err
			}
		}
		page = append(page, e)
		pageBytes += sz
	}
	if err := flushPage(); err != nil {
		return err
	}

	w.tiles = append(w.tiles, tile)
	w.tileBuf = w.tileBuf[:0]
	w.tileBytes = 0
	return nil
}

// writePage sorts one page's entries on S, encodes them in the file's
// format (v1: flat count-prefixed page padded to PageSize; v2: prefix-
// compressed block written back to back), and records its metadata in the
// tile.
func (w *Writer) writePage(tile *TileMeta, entries []base.Entry) error {
	sort.Slice(entries, func(i, j int) bool {
		return base.CompareUserKeys(entries[i].Key.UserKey, entries[j].Key.UserKey) < 0
	})
	var buf []byte
	if w.opts.FormatVersion < FormatV2 {
		buf = base.AppendUvarint(nil, uint64(len(entries)))
	} else {
		w.bw.reset()
	}
	pm := PageMeta{
		Count:  len(entries),
		Offset: w.pageOff,
		MinS:   append([]byte(nil), entries[0].Key.UserKey...),
		MaxS:   append([]byte(nil), entries[len(entries)-1].Key.UserKey...),
		MinD:   ^base.DeleteKey(0),
	}
	keys := make([][]byte, 0, len(entries))
	for _, e := range entries {
		if w.opts.FormatVersion < FormatV2 {
			buf = base.AppendEntry(buf, e)
		} else {
			w.bw.add(e)
			pm.KeyBytes += len(e.Key.UserKey)
		}
		keys = append(keys, e.Key.UserKey)
		switch e.Key.Kind() {
		case base.KindDelete:
			pm.HasTombstone = true
			w.meta.NumPointTombstones++
			w.observeTombstoneTime(time.Unix(0, int64(e.DKey)))
		case base.KindSet:
			pm.ValueCount++
			if e.DKey < pm.MinD {
				pm.MinD = e.DKey
			}
			if e.DKey > pm.MaxD {
				pm.MaxD = e.DKey
			}
			if !w.sawValue || e.DKey < w.meta.MinD {
				w.meta.MinD = e.DKey
			}
			if !w.sawValue || e.DKey > w.meta.MaxD {
				w.meta.MaxD = e.DKey
			}
			w.sawValue = true
		}
		seq := e.Key.SeqNum()
		if seq < w.meta.MinSeq {
			w.meta.MinSeq = seq
		}
		if seq > w.meta.MaxSeq {
			w.meta.MaxSeq = seq
		}
		w.meta.NumEntries++
	}
	if pm.ValueCount == 0 {
		pm.MinD, pm.MaxD = 0, 0 // tombstone-only page: no meaningful D fence
	}
	pm.Filter = bloom.New(keys, w.opts.BloomBitsPerKey)

	if w.opts.FormatVersion < FormatV2 {
		buf = sealPage(buf)
		pm.Bytes = len(buf)
		if pm.Bytes > w.opts.PageSize {
			return fmt.Errorf("sstable: page payload %d exceeds page size %d", pm.Bytes, w.opts.PageSize)
		}
		padded := make([]byte, w.opts.PageSize)
		copy(padded, buf)
		if _, err := w.f.Write(padded); err != nil {
			w.err = fmt.Errorf("sstable: write page: %w", err)
			return w.err
		}
		w.pageOff += int64(w.opts.PageSize)
	} else {
		sealed := sealPage(w.bw.finish())
		pm.Bytes = len(sealed)
		if _, err := w.f.Write(sealed); err != nil {
			w.err = fmt.Errorf("sstable: write block: %w", err)
			return w.err
		}
		w.pageOff += int64(len(sealed))
	}
	tile.Pages = append(tile.Pages, pm)
	w.numPages++
	return nil
}

// Finish flushes the final tile, writes the metadata block and footer, and
// syncs the file. It returns the file's metadata.
func (w *Writer) Finish() (*Meta, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.finished {
		return nil, fmt.Errorf("sstable: double Finish")
	}
	w.finished = true
	if err := w.flushTile(); err != nil {
		return nil, err
	}
	w.meta.NumPages = w.numPages
	w.meta.CreatedAt = w.opts.Clock.Now()
	if len(w.tiles) > 0 {
		w.meta.MinS = append([]byte(nil), w.tiles[0].MinS...)
		w.meta.MaxS = append([]byte(nil), w.tiles[len(w.tiles)-1].MaxS...)
	}
	// Fold range tombstone spans into the file's S bounds so compactions
	// that pick overlapping files see the tombstones' reach; this preserves
	// the per-key invariant that shallower levels hold newer data.
	for _, rt := range w.rts {
		if w.meta.MinS == nil || base.CompareUserKeys(rt.Start, w.meta.MinS) < 0 {
			w.meta.MinS = append([]byte(nil), rt.Start...)
		}
		if w.meta.MaxS == nil || base.CompareUserKeys(rt.End, w.meta.MaxS) > 0 {
			w.meta.MaxS = append([]byte(nil), rt.End...)
		}
	}
	if w.meta.MinSeq == base.MaxSeqNum && w.meta.MaxSeq == 0 {
		w.meta.MinSeq = 0 // empty file
	}

	w.meta.DataEnd = w.pageOff
	metaBlock := encodeMetaBlock(&w.meta, w.tiles, w.rts)
	if _, err := w.f.Write(metaBlock); err != nil {
		return nil, fmt.Errorf("sstable: write meta block: %w", err)
	}
	footer := appendFooter(nil, w.opts.FormatVersion, w.pageOff, metaBlock)
	if _, err := w.f.Write(footer); err != nil {
		return nil, fmt.Errorf("sstable: write footer: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return nil, fmt.Errorf("sstable: sync: %w", err)
	}
	w.meta.Size = w.pageOff + int64(len(metaBlock)) + int64(len(footer))
	metaCopy := w.meta
	return &metaCopy, nil
}

// appendFooter serializes the version-appropriate footer for a meta block
// written at metaOff. The v2 footer carries a CRC of the meta block and an
// explicit version field; see the package doc for the versioning rules.
func appendFooter(dst []byte, format int, metaOff int64, metaBlock []byte) []byte {
	dst = base.AppendUint64(dst, uint64(metaOff))
	dst = base.AppendUint64(dst, uint64(len(metaBlock)))
	if format < FormatV2 {
		return base.AppendUint64(dst, Magic)
	}
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(metaBlock, crc32.MakeTable(crc32.Castagnoli)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(format))
	return base.AppendUint64(dst, MagicV2)
}

// sealPage prefixes a page payload with its CRC32-Castagnoli checksum, so
// readers detect torn or corrupted pages.
func sealPage(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out, crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	copy(out[4:], payload)
	return out
}

// openPage verifies and strips a sealed page's checksum.
func openPage(page []byte) ([]byte, error) {
	if len(page) < 4 {
		return nil, fmt.Errorf("sstable: page too short: %w", base.ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(page)
	payload := page[4:]
	if crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)) != want {
		return nil, fmt.Errorf("sstable: page checksum mismatch: %w", base.ErrCorrupt)
	}
	return payload, nil
}
