package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"lethe/internal/base"
)

// FuzzBlockRoundTrip drives the v2 block codec from both ends with one input:
//
//   - Interpreted as a corpus of entries, building a block and decoding it
//     back must reproduce the input exactly, and validateBlock must accept
//     the sealed bytes.
//   - Interpreted as a raw sealed block, decoding, validating, and seeking
//     must never panic or return wrong data — at worst a typed error.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte("seed"))
	f.Add(encodeBlock(blockEntries(40)))
	f.Add(bytes.Repeat([]byte{0}, 64))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: arbitrary bytes as a sealed block. Must not panic.
		if payload, err := openPage(data); err == nil {
			if entries, err := decodeBlock(payload); err == nil {
				// Whatever decoded must survive a re-encode round trip.
				sealed := encodeBlock(entries)
				p2, err := openPage(sealed)
				if err != nil {
					t.Fatalf("re-open re-encoded block: %v", err)
				}
				got, err := decodeBlock(p2)
				if err != nil {
					t.Fatalf("re-decode re-encoded block: %v", err)
				}
				if len(got) != len(entries) {
					t.Fatalf("re-encode changed count: %d != %d", len(got), len(entries))
				}
			}
			var probe []byte
			if len(payload) > 0 {
				probe = payload[:len(payload)/2]
			}
			if _, _, err := blockSeekGE(payload, probe); err != nil && !errors.Is(err, ErrCorruption) {
				t.Fatalf("blockSeekGE: unexpected error %v", err)
			}
		}
		_, _ = validateBlock(data)

		// Direction 2: derive a sorted entry corpus from the bytes, build a
		// block, and require an exact round trip.
		entries := fuzzEntries(data)
		if len(entries) == 0 {
			return
		}
		sealed := encodeBlock(entries)
		if _, err := validateBlock(sealed); err != nil {
			t.Fatalf("built block fails validation: %v", err)
		}
		payload, err := openPage(sealed)
		if err != nil {
			t.Fatalf("built block fails CRC: %v", err)
		}
		got, err := decodeBlock(payload)
		if err != nil {
			t.Fatalf("built block fails decode: %v", err)
		}
		if len(got) != len(entries) {
			t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
		}
		for i := range entries {
			if !bytes.Equal(got[i].Key.UserKey, entries[i].Key.UserKey) ||
				got[i].Key.Trailer != entries[i].Key.Trailer ||
				got[i].DKey != entries[i].DKey ||
				!bytes.Equal(got[i].Value, entries[i].Value) {
				t.Fatalf("entry %d mismatch: got %+v want %+v", i, got[i], entries[i])
			}
			e, ok, err := blockSeekGE(payload, entries[i].Key.UserKey)
			if err != nil || !ok || !bytes.Equal(e.Key.UserKey, entries[i].Key.UserKey) {
				t.Fatalf("seek built key %q: ok=%v err=%v", entries[i].Key.UserKey, ok, err)
			}
		}
	})
}

// fuzzEntries deterministically derives a strictly S-ordered entry corpus
// from raw fuzz bytes: chunks become key suffixes under a shared prefix, the
// ordinal prefix keeps them sorted and unique.
func fuzzEntries(data []byte) []base.Entry {
	var entries []base.Entry
	for i := 0; len(data) > 0 && i < 300; i++ {
		n := int(data[0])%7 + 1
		if n > len(data) {
			n = len(data)
		}
		chunk := data[:n]
		data = data[n:]
		var ord [4]byte
		binary.BigEndian.PutUint32(ord[:], uint32(i))
		key := append(append([]byte("fz/"), ord[:]...), chunk...)
		kind := base.KindSet
		if len(chunk)%5 == 0 {
			kind = base.KindDelete
		}
		entries = append(entries, base.MakeEntry(
			key, base.SeqNum(i+1), kind, base.DeleteKey(int(chunk[0])), chunk))
	}
	return entries
}
