// Package sstable implements the on-disk sorted-run file format, including
// the paper's Key Weaving Storage Layout (KiWi, §4.2).
//
// Two format versions exist. Writers emit v2 by default; readers open both,
// so databases written before the block format reopen in place and mixed-
// version trees compact forward naturally (compaction output is always v2).
//
// # Format v1 (fixed pages)
//
// A v1 file is a sequence of fixed-size data pages followed by a metadata
// block and a 24-byte footer:
//
//	[page 0][page 1]...[page n-1][meta block][footer v1]
//
//	footer v1: metaOffset(8) | metaLen(8) | Magic(8)
//
// Page i lives at byte offset i*PageSize; each page is CRC-prefixed and
// padded to PageSize. Every entry stores its full key (base.AppendEntry).
//
// # Format v2 (prefix-compressed blocks)
//
// A v2 file replaces the fixed pages with variable-length data blocks,
// written back to back and addressed by explicit (Offset, Len) pairs in the
// metadata — the block index:
//
//	[block 0][block 1]...[block n-1][meta block][footer v2]
//
//	footer v2: metaOffset(8) | metaLen(8) | metaCRC(4) | version(4) | MagicV2(8)
//
// Each block is a CRC32-C-prefixed payload of prefix-compressed entries with
// restart points (see block.go for the entry framing and in-block layout).
// The block index is woven into the tile metadata: each PageMeta carries the
// block's Offset and encoded length (Bytes) alongside its first key (MinS),
// so the v1 "page index" and the v2 "block index of (FirstKey, Offset, Len)"
// are the same structure. Each descriptor also records the block's decoded
// key-byte total (KeyBytes), letting readers size the read buffer and key
// arena in a single allocation. Blocks target Meta.BlockSize encoded bytes
// (DefaultBlockSize unless tuned); a single entry larger than the target
// gets a block of its own rather than an error.
//
// The meta block itself is covered by the footer's metaCRC, and the footer
// carries an explicit format version so future revisions can extend the
// footer without guessing from its length.
//
// # Footer versioning rules
//
// The last 8 bytes of a file always hold a magic number, which selects the
// footer size and format: Magic → 24-byte v1 footer, MagicV2 → 32-byte v2
// footer whose version field must equal FormatV2. Unknown magics and
// unknown versions fail with ErrCorruption. New versions must introduce a
// new magic (or bump the version field under MagicV2 with the same footer
// size) — never reinterpret existing footer bytes.
//
// # Shared structure (both versions)
//
// Pages (v1) and blocks (v2) are grouped into delete tiles of
// (approximately) h units each. The weave (§4.2.1): files within a level
// are sorted on the sort key S, delete tiles within a file are sorted on S,
// blocks *within a tile* are sorted on the delete key D, and entries within
// a block are sorted on S. With h = 1 the layout degenerates to the
// classical fully-S-sorted file, which is the baseline ("RocksDB")
// configuration. FADE and SecondaryRangeDelete operate on this logical
// structure only, so their semantics are identical across versions.
//
// The metadata block holds, per tile, a fence pointer on S and, per block, a
// delete fence on D plus a block-granularity Bloom filter on S (§4.2.3).
// Range tombstones live in their own section of the metadata block, as in
// RocksDB's range tombstone block. The footer records where the meta block
// starts so it can be rewritten when secondary range deletes drop or shrink
// blocks (§4.2.2): v1 rewrites it in place after the fixed page array; v2
// rewrites it at Meta.DataEnd, past the live data region.
//
// Tombstone timestamps: point and range tombstones store their insertion
// wall-clock time (unix nanoseconds) in the entry's DKey field — a tombstone
// has no meaningful secondary delete key of its own, and FADE needs the
// insertion time to compute the file's a_max (age of oldest tombstone,
// §4.1.3). Block-level D fences are computed over value entries only, and
// any block containing a tombstone is never eligible for a full block drop.
package sstable

import (
	"fmt"
	"time"

	"lethe/internal/base"
	"lethe/internal/bloom"
)

// Magic identifies a format-v1 Lethe sstable footer.
const Magic uint64 = 0x4c657468654b6957 // "LetheKiW"

// MagicV2 identifies a format-v2 footer (versioned, with a meta-block CRC).
const MagicV2 uint64 = 0x4c65746865426c6b // "LetheBlk"

// FooterSize is the fixed byte length of the v1 footer:
// metaOffset(8) + metaLen(8) + magic(8).
const FooterSize = 24

// FooterSizeV2 is the fixed byte length of the v2 footer:
// metaOffset(8) + metaLen(8) + metaCRC(4) + version(4) + magic(8).
const FooterSizeV2 = 32

// Format versions. The footer magic (plus, for v2, the footer's version
// field) selects which one a file uses; see the package doc for the rules.
const (
	// FormatV1 is the original fixed-page KiWi layout.
	FormatV1 = 1
	// FormatV2 is the block layout: prefix-compressed variable-length
	// blocks with restart points, addressed by (Offset, Len).
	FormatV2 = 2
)

// DefaultBlockSize is the target encoded size of a v2 data block when the
// writer is not given an explicit BlockSizeBytes.
const DefaultBlockSize = 16 << 10

// ErrCorruption is the typed error wrapped by every corruption failure in
// this package — bad CRCs, malformed framing, unknown magics or versions,
// inconsistent metadata. It aliases base.ErrCorrupt so errors.Is matches
// corruption surfaced from any layer of the engine.
var ErrCorruption = base.ErrCorrupt

// PageMeta describes one data page.
type PageMeta struct {
	// Count is the number of entries encoded in the page.
	Count int
	// ValueCount is the number of value (non-tombstone) entries; pages are
	// eligible for full drops only when ValueCount == Count.
	ValueCount int
	// Bytes is the encoded length of the page's sealed payload. In v1 it is
	// <= PageSize (the page is padded to PageSize on disk); in v2 it is the
	// exact on-disk length of the block.
	Bytes int
	// Offset is the byte offset of the page's sealed payload in the file. In
	// v1 it is implied by position ((FirstPage+i)*PageSize) and filled in at
	// decode time; in v2 it is explicit — blocks are variable-length and may
	// be relocated by partial drops.
	Offset int64
	// KeyBytes is the total decoded user-key length of the page's entries
	// (v2 only; zero in v1). Prefix-compressed keys must be materialized at
	// decode time, so the reader sizes one read+arena buffer exactly from
	// Bytes+KeyBytes and the decode allocates nothing beyond it.
	KeyBytes int
	// MinD and MaxD fence the delete keys of the page's value entries
	// (meaningless when the page holds only tombstones).
	MinD, MaxD base.DeleteKey
	// HasTombstone marks pages containing point tombstones; such pages are
	// never fully dropped by secondary range deletes.
	HasTombstone bool
	// Dropped marks pages removed by a full page drop; their data is gone.
	Dropped bool
	// MinS and MaxS bound the page's sort keys.
	MinS, MaxS []byte
	// Filter is the page's Bloom filter over sort keys.
	Filter bloom.Filter
}

// TileMeta describes one delete tile: a run of consecutive pages that is
// fenced on S at tile granularity and on D at page granularity.
type TileMeta struct {
	// FirstPage is the index of the tile's first page in the file.
	FirstPage int
	// Pages holds the tile's page descriptors in D order.
	Pages []PageMeta
	// MinS and MaxS bound the tile's sort keys (the S fence pointer).
	MinS, MaxS []byte
}

// Meta is the file-level metadata: everything FADE and the read path need
// without touching data pages. It doubles as the manifest's file descriptor.
type Meta struct {
	// FileNum is the engine-assigned file number (also in the file name).
	FileNum uint64
	// Format is the file's format version (FormatV1 or FormatV2), derived
	// from the footer at open time; it is not stored in the meta block.
	Format int
	// PageSize is the fixed byte size of each data page (v1). v2 files
	// record the PageSize they were configured with for I/O accounting, but
	// block placement does not depend on it.
	PageSize int
	// BlockSize is the target encoded block size (v2 only; zero in v1).
	BlockSize int
	// DataEnd is the end of the data region (v2 only): the offset one past
	// the last byte holding block data, where the meta block is written.
	// Blocks relocated by partial drops extend it.
	DataEnd int64
	// DeadBytes counts bytes of abandoned block space (v2 only): fully
	// dropped blocks plus slack left behind by in-place shrinks and
	// relocations. LiveBytes subtracts it from Size.
	DeadBytes int64
	// TilePages is the h the file was written with (target pages per tile).
	TilePages int
	// NumPages is the total number of data pages.
	NumPages int
	// NumEntries counts all entries including point tombstones.
	NumEntries int
	// NumPointTombstones counts point tombstones (RocksDB num_deletes).
	NumPointTombstones int
	// NumRangeTombstones counts range tombstones in the tombstone block.
	NumRangeTombstones int
	// RangeCoverage sums the [start,end) span fractions of the file's range
	// tombstones relative to the key domain, as estimated by the writer's
	// histogram surrogate; the engine multiplies it by the tree's entry
	// count to estimate rd_f (§4.1.3).
	RangeCoverage float64
	// MinS and MaxS bound the file's sort keys.
	MinS, MaxS []byte
	// MinD and MaxD bound the file's value-entry delete keys.
	MinD, MaxD base.DeleteKey
	// MinSeq and MaxSeq bound the file's sequence numbers.
	MinSeq, MaxSeq base.SeqNum
	// OldestTombstone is the insertion time of the file's oldest point or
	// range tombstone (zero when the file has none). FADE's a_max is
	// clock.Now() minus this.
	OldestTombstone time.Time
	// CreatedAt is when the file was written (or last compacted into being).
	CreatedAt time.Time
	// Size is the total file length in bytes.
	Size int64
}

// HasTombstones reports whether the file contains any tombstone.
func (m *Meta) HasTombstones() bool {
	return m.NumPointTombstones > 0 || m.NumRangeTombstones > 0
}

// AMax returns the age of the file's oldest tombstone at time now — the
// a_max of §4.1.3. Files without tombstones have a_max = 0.
func (m *Meta) AMax(now time.Time) time.Duration {
	if !m.HasTombstones() || m.OldestTombstone.IsZero() {
		return 0
	}
	return now.Sub(m.OldestTombstone)
}

// EstimatedInvalidated returns b_f = p_f + rd_f (§4.1.3): the exact point
// tombstone count plus the histogram-estimated number of tree entries
// invalidated by the file's range tombstones, given the tree's total entry
// count.
func (m *Meta) EstimatedInvalidated(treeEntries int) float64 {
	return float64(m.NumPointTombstones) + m.RangeCoverage*float64(treeEntries)
}

// LiveBytes returns the file size minus the space of dropped pages; the
// space-amplification accounting uses it. It requires the tile metadata.
func LiveBytes(m *Meta, tiles []TileMeta) int64 {
	if m.Format >= FormatV2 {
		// v2 tracks abandoned block space directly: full drops and the
		// slack left by partial-drop shrinks/relocations.
		return m.Size - m.DeadBytes
	}
	live := m.Size
	for _, t := range tiles {
		for _, p := range t.Pages {
			if p.Dropped {
				live -= int64(m.PageSize)
			}
		}
	}
	return live
}

// ---------------------------------------------------------------------------
// Meta block encoding

// appendPageMeta serializes one page descriptor. v2 additionally records the
// block's explicit file offset (v1 offsets are implied by page position, and
// gating the field keeps v1 meta blocks byte-identical to older writers).
func appendPageMeta(dst []byte, p *PageMeta, format int) []byte {
	dst = base.AppendUvarint(dst, uint64(p.Count))
	dst = base.AppendUvarint(dst, uint64(p.ValueCount))
	dst = base.AppendUvarint(dst, uint64(p.Bytes))
	dst = base.AppendUvarint(dst, uint64(p.MinD))
	dst = base.AppendUvarint(dst, uint64(p.MaxD))
	var flags uint64
	if p.HasTombstone {
		flags |= 1
	}
	if p.Dropped {
		flags |= 2
	}
	dst = base.AppendUvarint(dst, flags)
	dst = base.AppendBytes(dst, p.MinS)
	dst = base.AppendBytes(dst, p.MaxS)
	dst = base.AppendBytes(dst, p.Filter)
	if format >= FormatV2 {
		dst = base.AppendUvarint(dst, uint64(p.Offset))
		dst = base.AppendUvarint(dst, uint64(p.KeyBytes))
	}
	return dst
}

func decodePageMeta(b []byte, format int) (PageMeta, []byte, error) {
	var p PageMeta
	var v uint64
	var err error
	if v, b, err = base.Uvarint(b); err != nil {
		return p, nil, err
	}
	p.Count = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return p, nil, err
	}
	p.ValueCount = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return p, nil, err
	}
	p.Bytes = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return p, nil, err
	}
	p.MinD = base.DeleteKey(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return p, nil, err
	}
	p.MaxD = base.DeleteKey(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return p, nil, err
	}
	p.HasTombstone = v&1 != 0
	p.Dropped = v&2 != 0
	var s []byte
	if s, b, err = base.Bytes(b); err != nil {
		return p, nil, err
	}
	p.MinS = append([]byte(nil), s...)
	if s, b, err = base.Bytes(b); err != nil {
		return p, nil, err
	}
	p.MaxS = append([]byte(nil), s...)
	if s, b, err = base.Bytes(b); err != nil {
		return p, nil, err
	}
	p.Filter = append(bloom.Filter(nil), s...)
	if format >= FormatV2 {
		if v, b, err = base.Uvarint(b); err != nil {
			return p, nil, err
		}
		p.Offset = int64(v)
		if v, b, err = base.Uvarint(b); err != nil {
			return p, nil, err
		}
		p.KeyBytes = int(v)
	}
	return p, b, nil
}

func appendRangeTombstone(dst []byte, rt base.RangeTombstone) []byte {
	dst = base.AppendBytes(dst, rt.Start)
	dst = base.AppendBytes(dst, rt.End)
	dst = base.AppendUvarint(dst, uint64(rt.Seq))
	dst = base.AppendUvarint(dst, uint64(rt.DKey))
	return dst
}

func decodeRangeTombstone(b []byte) (base.RangeTombstone, []byte, error) {
	var rt base.RangeTombstone
	var s []byte
	var err error
	if s, b, err = base.Bytes(b); err != nil {
		return rt, nil, err
	}
	rt.Start = append([]byte(nil), s...)
	if s, b, err = base.Bytes(b); err != nil {
		return rt, nil, err
	}
	rt.End = append([]byte(nil), s...)
	var v uint64
	if v, b, err = base.Uvarint(b); err != nil {
		return rt, nil, err
	}
	rt.Seq = base.SeqNum(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return rt, nil, err
	}
	rt.DKey = base.DeleteKey(v)
	return rt, b, nil
}

// encodeMetaBlock serializes the file metadata, tiles, and range tombstones.
// m.Format selects the encoding; FormatV1 output is byte-identical to what
// pre-v2 writers produced, FormatV2 appends the block-layout fields.
func encodeMetaBlock(m *Meta, tiles []TileMeta, rts []base.RangeTombstone) []byte {
	var dst []byte
	dst = base.AppendUvarint(dst, m.FileNum)
	dst = base.AppendUvarint(dst, uint64(m.PageSize))
	dst = base.AppendUvarint(dst, uint64(m.TilePages))
	dst = base.AppendUvarint(dst, uint64(m.NumPages))
	dst = base.AppendUvarint(dst, uint64(m.NumEntries))
	dst = base.AppendUvarint(dst, uint64(m.NumPointTombstones))
	dst = base.AppendUvarint(dst, uint64(m.NumRangeTombstones))
	dst = base.AppendUint64(dst, uint64(m.RangeCoverage*(1<<32)))
	dst = base.AppendBytes(dst, m.MinS)
	dst = base.AppendBytes(dst, m.MaxS)
	dst = base.AppendUvarint(dst, uint64(m.MinD))
	dst = base.AppendUvarint(dst, uint64(m.MaxD))
	dst = base.AppendUvarint(dst, uint64(m.MinSeq))
	dst = base.AppendUvarint(dst, uint64(m.MaxSeq))
	dst = base.AppendUint64(dst, uint64(m.OldestTombstone.UnixNano()))
	dst = base.AppendUint64(dst, uint64(m.CreatedAt.UnixNano()))
	if m.Format >= FormatV2 {
		dst = base.AppendUvarint(dst, uint64(m.BlockSize))
		dst = base.AppendUvarint(dst, uint64(m.DataEnd))
		dst = base.AppendUvarint(dst, uint64(m.DeadBytes))
	}

	dst = base.AppendUvarint(dst, uint64(len(tiles)))
	for i := range tiles {
		t := &tiles[i]
		dst = base.AppendUvarint(dst, uint64(t.FirstPage))
		dst = base.AppendBytes(dst, t.MinS)
		dst = base.AppendBytes(dst, t.MaxS)
		dst = base.AppendUvarint(dst, uint64(len(t.Pages)))
		for j := range t.Pages {
			dst = appendPageMeta(dst, &t.Pages[j], m.Format)
		}
	}
	dst = base.AppendUvarint(dst, uint64(len(rts)))
	for _, rt := range rts {
		dst = appendRangeTombstone(dst, rt)
	}
	return dst
}

// decodeMetaBlock parses what encodeMetaBlock wrote. format comes from the
// footer (which is the sole authority on the file's version) and is stamped
// into the returned Meta.
func decodeMetaBlock(b []byte, format int) (*Meta, []TileMeta, []base.RangeTombstone, error) {
	fail := func(err error) (*Meta, []TileMeta, []base.RangeTombstone, error) {
		return nil, nil, nil, fmt.Errorf("sstable: meta block: %w", err)
	}
	m := &Meta{Format: format}
	var v uint64
	var err error
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.FileNum = v
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.PageSize = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.TilePages = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.NumPages = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.NumEntries = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.NumPointTombstones = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.NumRangeTombstones = int(v)
	if v, b, err = base.Uint64(b); err != nil {
		return fail(err)
	}
	m.RangeCoverage = float64(v) / (1 << 32)
	var s []byte
	if s, b, err = base.Bytes(b); err != nil {
		return fail(err)
	}
	m.MinS = append([]byte(nil), s...)
	if s, b, err = base.Bytes(b); err != nil {
		return fail(err)
	}
	m.MaxS = append([]byte(nil), s...)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.MinD = base.DeleteKey(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.MaxD = base.DeleteKey(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.MinSeq = base.SeqNum(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	m.MaxSeq = base.SeqNum(v)
	if v, b, err = base.Uint64(b); err != nil {
		return fail(err)
	}
	m.OldestTombstone = time.Unix(0, int64(v))
	if v, b, err = base.Uint64(b); err != nil {
		return fail(err)
	}
	m.CreatedAt = time.Unix(0, int64(v))
	if format >= FormatV2 {
		if v, b, err = base.Uvarint(b); err != nil {
			return fail(err)
		}
		m.BlockSize = int(v)
		if v, b, err = base.Uvarint(b); err != nil {
			return fail(err)
		}
		m.DataEnd = int64(v)
		if v, b, err = base.Uvarint(b); err != nil {
			return fail(err)
		}
		m.DeadBytes = int64(v)
	}

	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	tiles := make([]TileMeta, v)
	for i := range tiles {
		t := &tiles[i]
		if v, b, err = base.Uvarint(b); err != nil {
			return fail(err)
		}
		t.FirstPage = int(v)
		if s, b, err = base.Bytes(b); err != nil {
			return fail(err)
		}
		t.MinS = append([]byte(nil), s...)
		if s, b, err = base.Bytes(b); err != nil {
			return fail(err)
		}
		t.MaxS = append([]byte(nil), s...)
		if v, b, err = base.Uvarint(b); err != nil {
			return fail(err)
		}
		t.Pages = make([]PageMeta, v)
		for j := range t.Pages {
			if t.Pages[j], b, err = decodePageMeta(b, format); err != nil {
				return fail(err)
			}
			if format < FormatV2 {
				// v1 page offsets are positional; materialize them so the
				// read path addresses both formats uniformly.
				t.Pages[j].Offset = int64(t.FirstPage+j) * int64(m.PageSize)
			}
		}
	}
	if v, b, err = base.Uvarint(b); err != nil {
		return fail(err)
	}
	rts := make([]base.RangeTombstone, v)
	for i := range rts {
		if rts[i], b, err = decodeRangeTombstone(b); err != nil {
			return fail(err)
		}
	}
	if len(b) != 0 {
		return fail(base.ErrCorrupt)
	}
	return m, tiles, rts, nil
}
