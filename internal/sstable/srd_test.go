package sstable

import (
	"fmt"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

// reopen re-opens the file from fs to verify the rewritten metadata block is
// durable and self-describing.
func reopen(t *testing.T, fs *vfs.MemFS) *Reader {
	t.Helper()
	f, err := fs.Open("000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSRDFullAndPartialDrops(t *testing.T) {
	// Entries with D == i: delete D in [100, 300) from 1000 entries.
	entries := seqEntries(1000, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, fs := buildFile(t, testOpts(8), entries, nil)

	stats, meta, err := r.ApplySecondaryRangeDelete(100, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDropped != 200 {
		t.Fatalf("dropped %d entries, want 200", stats.EntriesDropped)
	}
	if stats.FullDrops == 0 {
		t.Fatal("expected some full page drops")
	}
	if meta.NumEntries != 800 {
		t.Fatalf("NumEntries = %d", meta.NumEntries)
	}
	r.Close()

	// Reopen from disk: drops must have persisted.
	r2 := reopen(t, fs)
	defer r2.Close()
	if r2.Meta.NumEntries != 800 {
		t.Fatalf("reopened NumEntries = %d", r2.Meta.NumEntries)
	}
	for i := 0; i < 1000; i++ {
		key := []byte(fmt.Sprintf("key-%05d", i))
		_, ok, err := r2.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		wantOK := i < 100 || i >= 300
		if ok != wantOK {
			t.Fatalf("key %d: found=%v want %v", i, ok, wantOK)
		}
	}
	// Iteration skips dropped entries and stays sorted.
	it := r2.NewIter()
	count := 0
	var prev []byte
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if prev != nil && base.CompareUserKeys(prev, e.Key.UserKey) >= 0 {
			t.Fatal("iteration out of order after drops")
		}
		prev = append(prev[:0], e.Key.UserKey...)
		count++
	}
	if count != 800 {
		t.Fatalf("iterated %d entries", count)
	}
}

func TestSRDLiveBytesAccounting(t *testing.T) {
	entries := seqEntries(1000, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, _ := buildFile(t, testOpts(8), entries, nil)
	defer r.Close()
	before := r.LiveBytesOf()
	stats, _, err := r.ApplySecondaryRangeDelete(0, 500, 10)
	if err != nil {
		t.Fatal(err)
	}
	after := r.LiveBytesOf()
	// v1 frees whole fixed pages; v2 frees each dropped block's actual
	// (compressed) footprint, tracked in DeadBytes.
	wantFreed := int64(stats.FullDrops) * int64(r.Meta.PageSize)
	if r.Meta.Format >= FormatV2 {
		wantFreed = r.Meta.DeadBytes
		if wantFreed <= 0 {
			t.Fatal("v2 drops must accumulate DeadBytes")
		}
	}
	// The meta block also shrank, so at least the page space must be freed.
	if before-after < wantFreed {
		t.Fatalf("freed %d bytes, want >= %d", before-after, wantFreed)
	}
	// Every full drop is a dropped page; partial drops may also empty pages.
	if r.CountDropped() < stats.FullDrops {
		t.Fatalf("CountDropped %d < FullDrops %d", r.CountDropped(), stats.FullDrops)
	}
}

func TestSRDFullDropsRequireNoIO(t *testing.T) {
	// Wrap the file in a counting FS to prove full drops don't read pages.
	counting := vfs.NewCounting(vfs.NewMem(), 256)
	f, _ := counting.Create("000001.sst")
	w := NewWriter(f, testOpts(8))
	// All D keys identical: the entire D range is covered; every page is a
	// full drop.
	for i := 0; i < 500; i++ {
		e := base.MakeEntry([]byte(fmt.Sprintf("key-%05d", i)), base.SeqNum(i+1),
			base.KindSet, 50, []byte("v"))
		if err := w.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	before := counting.Stats.Snapshot()
	stats, _, err := r.ApplySecondaryRangeDelete(0, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	delta := counting.Stats.Snapshot().Sub(before)
	if stats.PartialDrops != 0 {
		t.Fatalf("expected only full drops, got %d partials", stats.PartialDrops)
	}
	if stats.EntriesDropped != 500 {
		t.Fatalf("dropped %d", stats.EntriesDropped)
	}
	if delta.ReadOps != 0 {
		t.Fatalf("full drops performed %d reads", delta.ReadOps)
	}
	// Only the meta rewrite writes.
	if delta.WriteOps == 0 {
		t.Fatal("meta rewrite must persist")
	}
}

func TestSRDEdgePagesOnly(t *testing.T) {
	// D keys equal to index; tiles of 4 pages. Delete a narrow range that
	// can only hit edge pages (partial drops), never a whole page.
	entries := seqEntries(400, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, _ := buildFile(t, testOpts(4), entries, nil)
	defer r.Close()

	// Find one page's D span to craft a sub-page range.
	pm := r.Tiles[0].Pages[0]
	if pm.MaxD == pm.MinD {
		t.Skip("degenerate page")
	}
	mid := (pm.MinD + pm.MaxD) / 2
	stats, _, err := r.ApplySecondaryRangeDelete(pm.MinD, mid, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FullDrops != 0 {
		t.Fatalf("sub-page range must not fully drop pages, got %d", stats.FullDrops)
	}
	if stats.PartialDrops == 0 || stats.EntriesDropped == 0 {
		t.Fatalf("expected partial drop, got %+v", stats)
	}
	// Remaining entries still readable.
	got := 0
	it := r.NewIter()
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		got++
	}
	if got != 400-stats.EntriesDropped {
		t.Fatalf("scan found %d, want %d", got, 400-stats.EntriesDropped)
	}
}

func TestSRDProtectsTombstonePages(t *testing.T) {
	now := testClock.Now()
	var entries []base.Entry
	for i := 0; i < 100; i++ {
		kind := base.KindSet
		dkey := base.DeleteKey(50) // all values inside the deleted range
		if i%10 == 0 {
			kind = base.KindDelete
			dkey = base.DeleteKey(now.UnixNano())
		}
		e := base.MakeEntry([]byte(fmt.Sprintf("key-%05d", i)), base.SeqNum(i+1), kind, dkey, []byte("v"))
		if kind == base.KindDelete {
			e.Value = nil
		}
		entries = append(entries, e)
	}
	r, fs := buildFile(t, testOpts(4), entries, nil)
	stats, meta, err := r.ApplySecondaryRangeDelete(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDropped != 90 {
		t.Fatalf("dropped %d values, want 90", stats.EntriesDropped)
	}
	if meta.NumPointTombstones != 10 {
		t.Fatalf("tombstones after SRD = %d, want 10 preserved", meta.NumPointTombstones)
	}
	r.Close()

	// Every tombstone survives on disk.
	r2 := reopen(t, fs)
	defer r2.Close()
	for i := 0; i < 100; i += 10 {
		e, ok, err := r2.Get([]byte(fmt.Sprintf("key-%05d", i)))
		if err != nil || !ok || e.Key.Kind() != base.KindDelete {
			t.Fatalf("tombstone %d lost: %v ok=%v err=%v", i, e, ok, err)
		}
	}
}

func TestSRDEmptyRangeAndMiss(t *testing.T) {
	entries := seqEntries(50, func(i int) base.DeleteKey { return base.DeleteKey(i + 1000) })
	r, _ := buildFile(t, testOpts(2), entries, nil)
	defer r.Close()

	// hi <= lo: no-op.
	stats, _, err := r.ApplySecondaryRangeDelete(10, 10, 10)
	if err != nil || stats.EntriesDropped != 0 {
		t.Fatalf("empty range: %+v %v", stats, err)
	}
	// Range entirely below the file's D span: fences prove no work.
	stats, _, err = r.ApplySecondaryRangeDelete(0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDropped != 0 || stats.FullDrops != 0 || stats.PartialDrops != 0 {
		t.Fatalf("miss range did work: %+v", stats)
	}
	if stats.PagesUntouched == 0 {
		t.Fatal("fences should have been consulted")
	}
}

func TestSRDRepeatedApplication(t *testing.T) {
	// Deleting in several waves (the rolling 1/30-per-day pattern from the
	// paper's introduction) must compose.
	entries := seqEntries(900, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, fs := buildFile(t, testOpts(8), entries, nil)
	total := 0
	for day := 0; day < 3; day++ {
		lo := base.DeleteKey(day * 300)
		hi := lo + 300
		stats, _, err := r.ApplySecondaryRangeDelete(lo, hi, 10)
		if err != nil {
			t.Fatal(err)
		}
		total += stats.EntriesDropped
	}
	if total != 900 {
		t.Fatalf("dropped %d total", total)
	}
	r.Close()
	r2 := reopen(t, fs)
	defer r2.Close()
	if r2.Meta.NumEntries != 0 {
		t.Fatalf("%d entries survive", r2.Meta.NumEntries)
	}
	it := r2.NewIter()
	if _, ok := it.Next(); ok {
		t.Fatal("fully deleted file iterates entries")
	}
}

func TestSRDFullDropFractionGrowsWithH(t *testing.T) {
	// Fig. 6H's mechanism: for a fixed delete selectivity, larger h means a
	// larger fraction of affected pages are full drops.
	fractions := map[int]float64{}
	for _, h := range []int{1, 4, 16} {
		entries := seqEntries(2000, func(i int) base.DeleteKey { return base.DeleteKey((i * 7919) % 2000) })
		r, _ := buildFile(t, testOpts(h), entries, nil)
		stats, _, err := r.ApplySecondaryRangeDelete(0, 500, 10) // 25% selectivity
		if err != nil {
			t.Fatal(err)
		}
		touched := stats.FullDrops + stats.PartialDrops
		if touched == 0 {
			t.Fatalf("h=%d: nothing touched", h)
		}
		fractions[h] = float64(stats.FullDrops) / float64(touched)
		r.Close()
	}
	if !(fractions[16] > fractions[1]) {
		t.Fatalf("full-drop fraction must grow with h: %v", fractions)
	}
}

func TestSRDTombstoneTimestampsNotDeleted(t *testing.T) {
	// A secondary delete range that happens to include tombstone insertion
	// timestamps must still not remove tombstones.
	ts := base.DeleteKey(time.Unix(500, 0).UnixNano())
	entries := []base.Entry{
		base.MakeEntry([]byte("a"), 1, base.KindDelete, ts, nil),
	}
	r, _ := buildFile(t, testOpts(1), entries, nil)
	defer r.Close()
	stats, meta, err := r.ApplySecondaryRangeDelete(0, ^base.DeleteKey(0), 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDropped != 0 || meta.NumPointTombstones != 1 {
		t.Fatalf("tombstone deleted by SRD: %+v", stats)
	}
}
