package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

// buildRandom writes n random entries at tile size h and returns the reader
// plus the model map.
func buildRandom(rng *rand.Rand, n, h int) (*Reader, map[string]base.Entry, error) {
	fs := vfs.NewMem()
	f, _ := fs.Create("q.sst")
	w := NewWriter(f, WriterOptions{
		FileNum: 1, PageSize: 256, TilePages: h, BloomBitsPerKey: 10, Clock: testClock,
	})
	model := map[string]base.Entry{}
	keys := rng.Perm(100000)[:n]
	sort.Ints(keys)
	for i, k := range keys {
		e := base.MakeEntry([]byte(fmt.Sprintf("k%08d", k)), base.SeqNum(i+1),
			base.KindSet, base.DeleteKey(rng.Intn(1<<20)),
			[]byte(fmt.Sprintf("v%d", rng.Intn(1000))))
		if err := w.Add(e); err != nil {
			return nil, nil, err
		}
		model[string(e.Key.UserKey)] = e
	}
	if _, err := w.Finish(); err != nil {
		return nil, nil, err
	}
	r, err := OpenReader(f)
	return r, model, err
}

// Property: for any entry set and tile size, every written key is readable
// with the right value/dkey, scans return exactly the sorted key set, and
// missing keys stay missing.
func TestQuickWriterReaderEquivalence(t *testing.T) {
	f := func(seed int64, nRaw, hRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		h := 1 << (hRaw % 5)
		r, model, err := buildRandom(rng, n, h)
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		defer r.Close()
		for k, want := range model {
			got, ok, err := r.Get([]byte(k))
			if err != nil || !ok || !bytes.Equal(got.Value, want.Value) || got.DKey != want.DKey {
				return false
			}
		}
		if _, ok, _ := r.Get([]byte("zzz-missing")); ok {
			return false
		}
		it := r.NewIter()
		seen := 0
		var prev []byte
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			if prev != nil && base.CompareUserKeys(prev, e.Key.UserKey) >= 0 {
				return false
			}
			prev = append(prev[:0], e.Key.UserKey...)
			seen++
		}
		return it.Error() == nil && seen == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a secondary range delete removes exactly the model's matching
// entries for any range and tile size, and the file's metadata stays
// consistent with its contents after reopening.
func TestQuickSRDEquivalence(t *testing.T) {
	f := func(seed int64, nRaw, hRaw uint8, loRaw, spanRaw uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		h := 1 << (hRaw % 5)
		r, model, err := buildRandom(rng, n, h)
		if err != nil {
			return false
		}
		defer r.Close()
		lo := base.DeleteKey(loRaw % (1 << 20))
		hi := lo + base.DeleteKey(spanRaw%(1<<19))
		stats, meta, err := r.ApplySecondaryRangeDelete(lo, hi, 10)
		if err != nil {
			return false
		}
		wantDropped := 0
		for k, e := range model {
			if e.DKey >= lo && e.DKey < hi {
				wantDropped++
				delete(model, k)
			}
		}
		if stats.EntriesDropped != wantDropped {
			return false
		}
		if meta.NumEntries != len(model) {
			return false
		}
		// Every survivor readable, every victim gone.
		it := r.NewIter()
		live := 0
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			want, exists := model[string(e.Key.UserKey)]
			if !exists || want.DKey != e.DKey {
				return false
			}
			live++
		}
		return it.Error() == nil && live == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the weave invariant holds for any input — pages within each tile
// are non-overlapping and ordered on D (over value entries).
func TestQuickWeaveInvariant(t *testing.T) {
	f := func(seed int64, hRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 << (hRaw%4 + 1) // 2..16
		r, _, err := buildRandom(rng, 150, h)
		if err != nil {
			return false
		}
		defer r.Close()
		for ti := range r.Tiles {
			tile := &r.Tiles[ti]
			for pi := 1; pi < len(tile.Pages); pi++ {
				a, b := &tile.Pages[pi-1], &tile.Pages[pi]
				if a.ValueCount == 0 || b.ValueCount == 0 {
					continue
				}
				if a.MaxD > b.MinD {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
