package sstable

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

// flipByte inverts the byte at off in the named file, in place.
func flipByte(t *testing.T, fs *vfs.MemFS, name string, off int64) {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func tryReopen(t *testing.T, fs *vfs.MemFS) (*Reader, error) {
	t.Helper()
	f, err := fs.Open("000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f)
	if err != nil {
		f.Close()
	}
	return r, err
}

// TestCorruptDataBlock flips one byte inside a data block: every path that
// touches the block — point lookup, full iteration, integrity verification —
// must fail with ErrCorruption, and no path may serve wrong data.
func TestCorruptDataBlock(t *testing.T) {
	entries := seqEntries(500, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, fs := buildFile(t, testOpts(4), entries, nil)
	defer r.Close()
	if len(r.Tiles) < 2 || len(r.Tiles[0].Pages) < 2 {
		t.Fatal("test geometry: want multiple tiles and pages")
	}
	// A byte in the middle of the first block's payload.
	pm := &r.Tiles[0].Pages[0]
	flipByte(t, fs, "000001.sst", pm.Offset+int64(pm.Bytes)/2)

	// The first block holds the smallest keys; its Bloom filter has no false
	// negatives, so Get for its first key must read it and hit the CRC.
	if _, _, err := r.Get(entries[0].Key.UserKey); !errors.Is(err, ErrCorruption) {
		t.Fatalf("Get over corrupt block: err=%v, want ErrCorruption", err)
	}

	// Sweeping every key must never yield a wrong value; keys outside the
	// corrupt block still read fine.
	sawErr := false
	for _, want := range entries {
		e, ok, err := r.Get(want.Key.UserKey)
		if err != nil {
			if !errors.Is(err, ErrCorruption) {
				t.Fatalf("Get %q: %v", want.Key.UserKey, err)
			}
			sawErr = true
			continue
		}
		if ok && !bytes.Equal(e.Value, want.Value) {
			t.Fatalf("corrupt block served wrong data for %q", want.Key.UserKey)
		}
	}
	if !sawErr {
		t.Fatal("no lookup surfaced the corruption")
	}

	// Full iteration crosses the block: it must stop with the typed error.
	it := r.NewIter()
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if !errors.Is(it.Error(), ErrCorruption) {
		t.Fatalf("iterator over corrupt block: err=%v, want ErrCorruption", it.Error())
	}

	if _, err := r.VerifyIntegrity(); !errors.Is(err, ErrCorruption) {
		t.Fatalf("VerifyIntegrity: err=%v, want ErrCorruption", err)
	}
}

// TestCorruptMetaBlock flips one byte in the block index / metadata region:
// the footer's meta checksum must reject the file at open.
func TestCorruptMetaBlock(t *testing.T) {
	entries := seqEntries(200, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, fs := buildFile(t, testOpts(4), entries, nil)
	metaOff := r.Meta.DataEnd
	r.Close()

	flipByte(t, fs, "000001.sst", metaOff+3)
	if r2, err := tryReopen(t, fs); !errors.Is(err, ErrCorruption) {
		if r2 != nil {
			r2.Close()
		}
		t.Fatalf("open with corrupt meta block: err=%v, want ErrCorruption", err)
	}
}

// TestCorruptFooter flips each footer byte in turn: every position — meta
// offset, meta length, meta CRC, version, magic — must make the open fail
// with ErrCorruption.
func TestCorruptFooter(t *testing.T) {
	entries := seqEntries(200, func(i int) base.DeleteKey { return base.DeleteKey(i) })
	r, fs := buildFile(t, testOpts(4), entries, nil)
	size := r.Meta.Size
	r.Close()

	for off := size - FooterSizeV2; off < size; off++ {
		flipByte(t, fs, "000001.sst", off)
		if r2, err := tryReopen(t, fs); !errors.Is(err, ErrCorruption) {
			if r2 != nil {
				r2.Close()
			}
			t.Fatalf("footer byte %d flipped: err=%v, want ErrCorruption", off-(size-FooterSizeV2), err)
		}
		flipByte(t, fs, "000001.sst", off) // restore
	}
	// Restored file opens clean again.
	r2, err := tryReopen(t, fs)
	if err != nil {
		t.Fatalf("restored file: %v", err)
	}
	r2.Close()
}

// TestVerifyIntegrityClean is the positive control: a freshly written file
// passes verification with the expected totals.
func TestVerifyIntegrityClean(t *testing.T) {
	entries := seqEntries(500, func(i int) base.DeleteKey { return base.DeleteKey(i % 31) })
	for _, format := range []int{FormatV1, FormatV2} {
		t.Run(fmt.Sprintf("v%d", format), func(t *testing.T) {
			opts := testOpts(4)
			opts.FormatVersion = format
			r, _ := buildFile(t, opts, entries, nil)
			defer r.Close()
			vs, err := r.VerifyIntegrity()
			if err != nil {
				t.Fatal(err)
			}
			if vs.Entries != len(entries) {
				t.Fatalf("verified %d entries, want %d", vs.Entries, len(entries))
			}
			if vs.Blocks != r.Meta.NumPages {
				t.Fatalf("verified %d blocks, want %d", vs.Blocks, r.Meta.NumPages)
			}
		})
	}
}

// TestV1BackwardCompat writes a file in the legacy page format and serves it
// through the current reader: open, point lookups, iteration, and
// verification must all behave exactly as for v2.
func TestV1BackwardCompat(t *testing.T) {
	entries := seqEntries(300, func(i int) base.DeleteKey { return base.DeleteKey(i * 3 % 101) })
	opts := testOpts(4)
	opts.FormatVersion = FormatV1
	r, fs := buildFile(t, opts, entries, nil)
	r.Close()

	r, err := tryReopen(t, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Meta.Format != FormatV1 {
		t.Fatalf("Format = %d, want v1", r.Meta.Format)
	}
	for _, want := range entries {
		e, ok, err := r.Get(want.Key.UserKey)
		if err != nil || !ok {
			t.Fatalf("v1 Get %q: ok=%v err=%v", want.Key.UserKey, ok, err)
		}
		if !bytes.Equal(e.Value, want.Value) || e.DKey != want.DKey {
			t.Fatalf("v1 Get %q: wrong entry %+v", want.Key.UserKey, e)
		}
	}
	it := r.NewIter()
	n := 0
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if !bytes.Equal(e.Key.UserKey, entries[n].Key.UserKey) {
			t.Fatalf("v1 iter entry %d: got %q want %q", n, e.Key.UserKey, entries[n].Key.UserKey)
		}
		n++
	}
	if err := it.Error(); err != nil || n != len(entries) {
		t.Fatalf("v1 iteration: n=%d err=%v", n, err)
	}
	if _, err := r.VerifyIntegrity(); err != nil {
		t.Fatalf("v1 VerifyIntegrity: %v", err)
	}

	// And a corrupt v1 page is still caught by its page CRC.
	pm := &r.Tiles[0].Pages[0]
	flipByte(t, fs, "000001.sst", pm.Offset+int64(pm.Bytes)/2)
	if _, _, err := r.Get(entries[0].Key.UserKey); !errors.Is(err, ErrCorruption) {
		t.Fatalf("v1 Get over corrupt page: err=%v, want ErrCorruption", err)
	}
}
