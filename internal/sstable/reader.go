package sstable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

// Reader serves lookups and scans over one sstable. The metadata block
// (fences, delete fences, per-page Bloom filters, range tombstones) is held
// in memory, as real engines cache it; only data pages cost I/O.
//
// A Reader is safe for concurrent use. File contents and most metadata are
// immutable after open; the exception is ApplySecondaryRangeDelete, which
// mutates pages and their descriptors in place under the reader's internal
// write lock while lookups, scans, and metadata snapshots hold the read
// lock. A lookup racing a secondary range delete sees each page either
// before or after its drop — never a torn state.
type Reader struct {
	f vfs.File
	// mu guards Meta's mutable aggregates and the Tiles page descriptors
	// against in-place secondary-range-delete rewrites.
	mu    sync.RWMutex
	Meta  *Meta
	Tiles []TileMeta
	// RangeTombstones is the file's range tombstone block. It is immutable
	// after open.
	RangeTombstones []base.RangeTombstone
	// cache, when non-nil, is this instance's namespaced view of the
	// shared decoded-page cache.
	cache *CacheHandle
	// remote marks a file living on the slow storage tier. Its pages enter
	// the cache with admission preference (a remote miss is expensive to
	// repay), and its iterators read the next delete tile ahead while the
	// current one is consumed, hiding per-request latency behind decode and
	// merge work.
	remote bool
}

// SetCache attaches a namespaced handle on the shared page cache (nil
// disables caching).
func (r *Reader) SetCache(c *CacheHandle) { r.cache = c }

// SetRemote marks the file as living on the remote storage tier, enabling
// preferred cache admission and iterator read-ahead.
func (r *Reader) SetRemote(remote bool) { r.remote = remote }

// OpenReader loads the metadata of the sstable stored in f. It opens both
// format versions: the trailing magic selects the footer layout (see the
// package doc's versioning rules), so v1 files written before the block
// format keep working alongside v2 output.
func OpenReader(f vfs.File) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, fmt.Errorf("sstable: size: %w", err)
	}
	if size < FooterSize {
		return nil, fmt.Errorf("sstable: file too small (%d bytes): %w", size, ErrCorruption)
	}
	var magicBuf [8]byte
	if _, err := f.ReadAt(magicBuf[:], size-8); err != nil && err != io.EOF {
		return nil, fmt.Errorf("sstable: read footer magic: %w", err)
	}
	var metaOff, metaLen uint64
	var metaCRC uint32
	format := 0
	switch magic := binary.LittleEndian.Uint64(magicBuf[:]); magic {
	case Magic:
		format = FormatV1
		footer := make([]byte, FooterSize)
		if _, err := f.ReadAt(footer, size-FooterSize); err != nil && err != io.EOF {
			return nil, fmt.Errorf("sstable: read footer: %w", err)
		}
		metaOff = binary.LittleEndian.Uint64(footer[0:8])
		metaLen = binary.LittleEndian.Uint64(footer[8:16])
		if metaOff+metaLen+FooterSize != uint64(size) {
			return nil, fmt.Errorf("sstable: inconsistent footer: %w", ErrCorruption)
		}
	case MagicV2:
		if size < FooterSizeV2 {
			return nil, fmt.Errorf("sstable: file too small for v2 footer (%d bytes): %w", size, ErrCorruption)
		}
		footer := make([]byte, FooterSizeV2)
		if _, err := f.ReadAt(footer, size-FooterSizeV2); err != nil && err != io.EOF {
			return nil, fmt.Errorf("sstable: read footer: %w", err)
		}
		metaOff = binary.LittleEndian.Uint64(footer[0:8])
		metaLen = binary.LittleEndian.Uint64(footer[8:16])
		metaCRC = binary.LittleEndian.Uint32(footer[16:20])
		version := binary.LittleEndian.Uint32(footer[20:24])
		if version != FormatV2 {
			return nil, fmt.Errorf("sstable: unknown format version %d: %w", version, ErrCorruption)
		}
		format = FormatV2
		if metaOff+metaLen+FooterSizeV2 != uint64(size) {
			return nil, fmt.Errorf("sstable: inconsistent footer: %w", ErrCorruption)
		}
	default:
		return nil, fmt.Errorf("sstable: bad magic %x: %w", magic, ErrCorruption)
	}
	metaBlock := make([]byte, metaLen)
	if _, err := f.ReadAt(metaBlock, int64(metaOff)); err != nil && err != io.EOF {
		return nil, fmt.Errorf("sstable: read meta block: %w", err)
	}
	if format >= FormatV2 {
		if got := crc32.Checksum(metaBlock, crc32.MakeTable(crc32.Castagnoli)); got != metaCRC {
			return nil, fmt.Errorf("sstable: meta block checksum mismatch: %w", ErrCorruption)
		}
	}
	meta, tiles, rts, err := decodeMetaBlock(metaBlock, format)
	if err != nil {
		return nil, err
	}
	meta.Size = size
	if format >= FormatV2 && meta.DataEnd != int64(metaOff) {
		return nil, fmt.Errorf("sstable: meta offset %d disagrees with data end %d: %w",
			metaOff, meta.DataEnd, ErrCorruption)
	}
	return &Reader{f: f, Meta: meta, Tiles: tiles, RangeTombstones: rts}, nil
}

// Close releases the underlying file handle.
func (r *Reader) Close() error { return r.f.Close() }

// readPageRaw reads and CRC-checks one page/block's sealed bytes at its
// recorded offset, returning the payload. The buffer carries pm.KeyBytes of
// spare capacity so a v2 decode can materialize every prefix-compressed key
// into the same allocation (decodeBlock uses the payload's tail as its
// arena); pm.KeyBytes is zero for v1.
func (r *Reader) readPageRaw(pm *PageMeta, pi int) ([]byte, error) {
	buf := make([]byte, pm.Bytes, pm.Bytes+pm.KeyBytes)
	if _, err := r.f.ReadAt(buf, pm.Offset); err != nil && err != io.EOF {
		return nil, fmt.Errorf("sstable: read page %d: %w", pi, err)
	}
	payload, err := openPage(buf)
	if err != nil {
		return nil, fmt.Errorf("sstable: page %d: %w", pi, err)
	}
	return payload, nil
}

// decodePagePayload decodes a CRC-verified page/block payload into entries,
// cross-checking the decoded count against the metadata's.
func (r *Reader) decodePagePayload(pm *PageMeta, pi int, payload []byte) ([]base.Entry, error) {
	var entries []base.Entry
	if r.Meta.Format >= FormatV2 {
		var err error
		if entries, err = decodeBlock(payload); err != nil {
			return nil, fmt.Errorf("sstable: block %d: %w", pi, err)
		}
	} else {
		count, rest, err := base.Uvarint(payload)
		if err != nil {
			return nil, fmt.Errorf("sstable: page %d header: %w", pi, err)
		}
		entries = make([]base.Entry, 0, count)
		for i := uint64(0); i < count; i++ {
			var e base.Entry
			e, rest, err = base.DecodeEntry(rest)
			if err != nil {
				return nil, fmt.Errorf("sstable: page %d entry %d: %w", pi, i, err)
			}
			entries = append(entries, e)
		}
	}
	if len(entries) != pm.Count {
		return nil, fmt.Errorf("sstable: page %d holds %d entries, meta says %d: %w",
			pi, len(entries), pm.Count, ErrCorruption)
	}
	return entries, nil
}

// readPage loads and decodes the entries of page index pi. Dropped pages
// yield nil without I/O.
func (r *Reader) readPage(tile *TileMeta, pageInTile int) ([]base.Entry, error) {
	pm := &tile.Pages[pageInTile]
	if pm.Dropped {
		return nil, nil
	}
	pi := tile.FirstPage + pageInTile
	if cached, ok := r.cache.get(r.Meta.FileNum, pi); ok {
		return cached, nil
	}
	payload, err := r.readPageRaw(pm, pi)
	if err != nil {
		return nil, err
	}
	entries, err := r.decodePagePayload(pm, pi, payload)
	if err != nil {
		return nil, err
	}
	r.cache.put(r.Meta.FileNum, pi, entries, r.remote)
	return entries, nil
}

// CopyTo streams the file's current bytes to w, returning the byte count.
// It holds the reader's read lock for the duration, so an in-place
// secondary-range-delete rewrite cannot tear the copy: the bytes written
// are a point-in-time image of the file. Tier migration uses it to build
// the remote replica of a local sstable.
//
// The copy is double-buffered: while one chunk drains into w, the next is
// already being read, so a migration across a modeled remote link overlaps
// the source read with the paced remote write instead of alternating between
// them. The read-ahead goroutine touches only its own buffer and the file
// (ReadAt is concurrent-safe), and every return path drains it first, so the
// whole copy still runs inside this call's read-lock window.
func (r *Reader) CopyTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	size := r.Meta.Size
	const chunk = 1 << 20
	var bufs [2][]byte
	bufs[0] = make([]byte, chunk)
	bufs[1] = make([]byte, chunk)
	type chunkRead struct {
		n   int64
		err error
	}
	reads := make(chan chunkRead, 1)
	readAt := func(buf []byte, off int64) {
		n := int64(len(buf))
		if size-off < n {
			n = size - off
		}
		_, err := r.f.ReadAt(buf[:n], off)
		if err == io.EOF {
			err = nil
		}
		reads <- chunkRead{n: n, err: err}
	}
	var off int64
	cur := 0
	if off < size {
		go readAt(bufs[cur], off)
	}
	for off < size {
		res := <-reads
		if res.err != nil {
			return off, fmt.Errorf("sstable: copy read at %d: %w", off, res.err)
		}
		next := off + res.n
		inflight := next < size
		if inflight {
			go readAt(bufs[1-cur], next)
		}
		if _, err := w.Write(bufs[cur][:res.n]); err != nil {
			if inflight {
				<-reads // the read-ahead must not outlive the lock
			}
			return off, fmt.Errorf("sstable: copy write at %d: %w", off, err)
		}
		off = next
		cur = 1 - cur
	}
	return off, nil
}

// TileSpan describes one delete tile for compaction range partitioning: the
// tile's first sort key and the live (non-dropped) encoded bytes of its
// pages.
type TileSpan struct {
	MinS  []byte
	Bytes int64
}

// TileSpans snapshots the file's tile boundaries and live byte weights under
// the read lock (page descriptors mutate under secondary range deletes). The
// compaction range partitioner cuts a job's key space at these existing
// index boundaries, so choosing subranges reads no data pages.
func (r *Reader) TileSpans() []TileSpan {
	r.mu.RLock()
	defer r.mu.RUnlock()
	spans := make([]TileSpan, 0, len(r.Tiles))
	for ti := range r.Tiles {
		tile := &r.Tiles[ti]
		var live int64
		for pi := range tile.Pages {
			if !tile.Pages[pi].Dropped {
				live += int64(tile.Pages[pi].Bytes)
			}
		}
		spans = append(spans, TileSpan{MinS: tile.MinS, Bytes: live})
	}
	return spans
}

// findTile locates the single tile that may contain key (tiles are disjoint
// and ordered on S). It returns -1 if no tile qualifies.
func (r *Reader) findTile(key []byte) int {
	// First tile whose MaxS >= key.
	i := sort.Search(len(r.Tiles), func(i int) bool {
		return base.CompareUserKeys(r.Tiles[i].MaxS, key) >= 0
	})
	if i == len(r.Tiles) || base.CompareUserKeys(r.Tiles[i].MinS, key) > 0 {
		return -1
	}
	return i
}

// Get looks up key. Per the paper's search algorithm (§4.2.5): locate the
// delete tile via the S fence pointers, then probe each page's Bloom filter
// and read pages whose probe is positive. Within a tile, point lookups rely
// on filters alone — per-page S fences are deliberately not consulted, so
// the lookup cost shape is the model's O(1 + h·FPR).
//
// It returns the entry (which may be a point tombstone — the caller decides
// what a tombstone means at its level) and whether the key was found.
//
// The returned entry is a view: its key and value bytes alias the decoded
// page (possibly shared with the page cache) and must be treated as
// read-only. The bytes stay valid as long as the entry is referenced — page
// buffers are never mutated in place, a secondary range delete re-encodes
// into fresh buffers — so callers that hand data across an API boundary copy
// there (lsm's public Get copies the value), not here. This keeps the point-
// lookup hot path free of per-hit key/value allocations.
func (r *Reader) Get(key []byte) (base.Entry, bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ti := r.findTile(key)
	if ti < 0 {
		return base.Entry{}, false, nil
	}
	tile := &r.Tiles[ti]
	for pi := range tile.Pages {
		pm := &tile.Pages[pi]
		if pm.Dropped {
			continue
		}
		if !pm.Filter.MayContain(key) {
			continue
		}
		if r.cache == nil && r.Meta.Format >= FormatV2 {
			// No cache to populate: search the raw block via its restart
			// points — binary search over whole-key restart entries, then a
			// bounded forward decode — instead of materializing every entry
			// of a block only to binary-search it once.
			payload, err := r.readPageRaw(pm, tile.FirstPage+pi)
			if err != nil {
				return base.Entry{}, false, err
			}
			e, ok, err := blockSeekGE(payload, key)
			if err != nil {
				return base.Entry{}, false, err
			}
			if ok && base.CompareUserKeys(e.Key.UserKey, key) == 0 {
				return e, true, nil
			}
			continue
		}
		entries, err := r.readPage(tile, pi)
		if err != nil {
			return base.Entry{}, false, err
		}
		// Pages are sorted on S: binary search.
		j := sort.Search(len(entries), func(j int) bool {
			return base.CompareUserKeys(entries[j].Key.UserKey, key) >= 0
		})
		if j < len(entries) && base.CompareUserKeys(entries[j].Key.UserKey, key) == 0 {
			return entries[j], true, nil
		}
		// False positive: fall through to the next page of the tile.
	}
	return base.Entry{}, false, nil
}

// ReadPageForScan exposes a single page's entries for delete-fence-guided
// secondary range scans (§4.2.5). The returned entries alias a fresh buffer.
func (r *Reader) ReadPageForScan(tileIdx, pageInTile int) ([]base.Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.readPage(&r.Tiles[tileIdx], pageInTile)
}

// MetaCopy returns a consistent snapshot of the file-level metadata. Use it
// instead of reading Meta fields directly whenever a concurrent secondary
// range delete may be rewriting the file's aggregates.
func (r *Reader) MetaCopy() Meta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return *r.Meta
}

// MayContainKey probes the per-page Bloom filters of the tile covering key —
// CPU only, no I/O. Range tombstones are not consulted: deleting an
// already-range-deleted key is itself blind, so the blind-delete pre-probe
// (§4.1.5) only cares about materialized entries.
func (r *Reader) MayContainKey(key []byte) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ti := r.findTile(key)
	if ti < 0 {
		return false
	}
	tile := &r.Tiles[ti]
	for pi := range tile.Pages {
		pm := &tile.Pages[pi]
		if pm.Dropped {
			continue
		}
		if pm.Filter.MayContain(key) {
			return true
		}
	}
	return false
}

// CollectByDeleteKey returns clones of the value entries whose delete key
// falls in [lo, hi), reading only the pages whose delete fences overlap the
// range (§4.2.5 "Secondary Range Lookups").
func (r *Reader) CollectByDeleteKey(lo, hi base.DeleteKey) ([]base.Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []base.Entry
	for ti := range r.Tiles {
		tile := &r.Tiles[ti]
		for pi := range tile.Pages {
			pm := &tile.Pages[pi]
			if pm.Dropped || pm.ValueCount == 0 || pm.MaxD < lo || pm.MinD >= hi {
				continue
			}
			entries, err := r.readPage(tile, pi)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if e.Key.Kind() == base.KindSet && e.DKey >= lo && e.DKey < hi {
					out = append(out, e.Clone())
				}
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Iterator

// Iter iterates a file's entries in sort-key order. Within each tile the
// pages (D-ordered) are loaded and merged back into S order, which is why a
// short range scan costs O(h) pages per touched tile (§4.2.5).
//
// An exhausted Iter can be re-targeted at another file with Reset, which
// retains the decoded-tile buffer's capacity — the free-list primitive run
// iterators use to stream a run of files through one frame.
type Iter struct {
	r       *Reader
	tileIdx int
	buf     []base.Entry // current tile's entries, S-ordered
	bufPos  int
	err     error
	sorter  tileSorter

	// pf is the in-flight read-ahead of the next tile (remote readers
	// only); pfScratch is a spare entry buffer ping-ponged between the
	// consumer and the next prefetch so steady-state read-ahead reuses two
	// buffers instead of allocating per tile.
	pf        *iterPrefetch
	pfScratch []base.Entry
}

// iterPrefetch is one asynchronous tile load: a goroutine reads and decodes
// every live page of tile `tile` under the reader's read lock, merges them
// into S order, and closes done. The goroutine touches only this struct and
// the reader, so an abandoned prefetch (after a seek or reset) completes
// harmlessly.
type iterPrefetch struct {
	tile int
	done chan struct{}
	buf  []base.Entry
	err  error
}

// tileSorter sorts a tile's entries by S through a plain sort.Interface
// value embedded in the Iter: unlike sort.Slice, which allocates a closure
// and a reflect-based swapper on every call, sorting through a pointer to
// this embedded struct allocates nothing.
type tileSorter struct{ buf []base.Entry }

func (s *tileSorter) Len() int { return len(s.buf) }
func (s *tileSorter) Less(i, j int) bool {
	return base.CompareUserKeys(s.buf[i].Key.UserKey, s.buf[j].Key.UserKey) < 0
}
func (s *tileSorter) Swap(i, j int) { s.buf[i], s.buf[j] = s.buf[j], s.buf[i] }

// NewIter returns an iterator positioned before the first entry.
func (r *Reader) NewIter() *Iter {
	return &Iter{r: r, tileIdx: -1}
}

// Reset re-targets the iterator at r (nil parks it), positioned before the
// first entry. The decoded-tile buffer keeps its capacity — reusing one Iter
// across the files of a run avoids a per-file allocation — but its entries
// are zeroed so a parked frame does not pin the previous file's pages.
func (it *Iter) Reset(r *Reader) {
	if pf := it.pf; pf != nil {
		// Wait out an in-flight read-ahead so it cannot touch the previous
		// reader after the caller releases its pin on the file.
		<-pf.done
		it.pf = nil
	}
	it.r = r
	it.tileIdx = -1
	for i := range it.buf {
		it.buf[i] = base.Entry{}
	}
	it.buf = it.buf[:0]
	for i := range it.pfScratch {
		it.pfScratch[i] = base.Entry{}
	}
	it.pfScratch = it.pfScratch[:0]
	it.sorter.buf = nil
	it.bufPos = 0
	it.err = nil
}

// startPrefetch kicks off the asynchronous load of tile ti, if the reader
// is remote and ti exists. At most one prefetch is in flight per iterator.
func (it *Iter) startPrefetch(ti int) {
	if !it.r.remote || ti < 0 || ti >= len(it.r.Tiles) || it.pf != nil {
		return
	}
	pf := &iterPrefetch{tile: ti, done: make(chan struct{}), buf: it.pfScratch[:0]}
	it.pfScratch = nil
	it.pf = pf
	r := it.r
	go func() {
		defer close(pf.done)
		r.mu.RLock()
		defer r.mu.RUnlock()
		tile := &r.Tiles[ti]
		for pi := range tile.Pages {
			entries, err := r.readPage(tile, pi)
			if err != nil {
				pf.err = err
				return
			}
			pf.buf = append(pf.buf, entries...)
		}
		s := tileSorter{buf: pf.buf}
		sort.Sort(&s)
	}()
}

// takePrefetch consumes a completed read-ahead for tile ti. It returns true
// when the prefetched buffer was adopted as the current tile. A prefetch
// for the wrong tile (the iterator seeked) or one that failed is discarded;
// the caller falls back to the synchronous path, which re-reads and reports
// its own error.
func (it *Iter) takePrefetch(ti int) bool {
	pf := it.pf
	if pf == nil {
		return false
	}
	it.pf = nil
	<-pf.done
	if pf.tile != ti || pf.err != nil {
		if pf.err == nil {
			for i := range pf.buf {
				pf.buf[i] = base.Entry{}
			}
			it.pfScratch = pf.buf[:0]
		}
		return false
	}
	// Adopt the prefetched buffer and recycle the old one into the next
	// prefetch, zeroed so it does not pin the previous tile's pages.
	old := it.buf
	for i := range old {
		old[i] = base.Entry{}
	}
	it.pfScratch = old[:0]
	it.buf = pf.buf
	it.sorter.buf = it.buf
	it.bufPos = 0
	return true
}

// loadTile makes tile ti current: adopt a matching read-ahead if one is in
// flight, otherwise read every live page synchronously and merge them into
// S order. Either way the read-ahead of tile ti+1 is started before
// returning, so a sequential remote scan always has the next tile's pages
// in flight while this one is decoded and consumed.
func (it *Iter) loadTile(ti int) bool {
	if it.takePrefetch(ti) {
		it.startPrefetch(ti + 1)
		return true
	}
	if !it.loadTileSync(ti) {
		return false
	}
	it.startPrefetch(ti + 1)
	return true
}

// loadTileSync is the synchronous tile load path.
func (it *Iter) loadTileSync(ti int) bool {
	it.r.mu.RLock()
	defer it.r.mu.RUnlock()
	tile := &it.r.Tiles[ti]
	it.buf = it.buf[:0]
	for pi := range tile.Pages {
		entries, err := it.r.readPage(tile, pi)
		if err != nil {
			it.err = err
			return false
		}
		it.buf = append(it.buf, entries...)
	}
	it.sorter.buf = it.buf
	sort.Sort(&it.sorter)
	it.bufPos = 0
	return true
}

// Next returns the next entry in S order, or ok=false at the end (check
// Error afterwards).
func (it *Iter) Next() (base.Entry, bool) {
	for {
		if it.err != nil {
			return base.Entry{}, false
		}
		if it.tileIdx >= 0 && it.bufPos < len(it.buf) {
			e := it.buf[it.bufPos]
			it.bufPos++
			return e, true
		}
		it.tileIdx++
		if it.tileIdx >= len(it.r.Tiles) {
			return base.Entry{}, false
		}
		if !it.loadTile(it.tileIdx) {
			return base.Entry{}, false
		}
	}
}

// SeekGE positions the iterator at the first entry with user key >= key.
func (it *Iter) SeekGE(key []byte) {
	it.err = nil
	// First tile whose MaxS >= key. Tile fences are immutable, so this scan
	// needs no lock; loadTile takes the read lock for the page descriptors.
	i := sort.Search(len(it.r.Tiles), func(i int) bool {
		return base.CompareUserKeys(it.r.Tiles[i].MaxS, key) >= 0
	})
	if i == len(it.r.Tiles) {
		it.tileIdx = len(it.r.Tiles)
		it.buf = it.buf[:0]
		it.bufPos = 0
		return
	}
	it.tileIdx = i
	if !it.loadTile(i) {
		return
	}
	it.bufPos = sort.Search(len(it.buf), func(j int) bool {
		return base.CompareUserKeys(it.buf[j].Key.UserKey, key) >= 0
	})
}

// Error returns the first I/O or decode error the iterator hit.
func (it *Iter) Error() error { return it.err }
