package sstable

import (
	"encoding/binary"
	"fmt"

	"lethe/internal/base"
)

// This file implements the format-v2 data block codec: prefix-compressed
// entries with restart points, the in-block binary search that rides them,
// and the full decode used by scans and the block cache.
//
// Block payload layout (the payload is what sealPage wraps with a CRC):
//
//	entry*      prefix-compressed entries, S-ordered
//	restarts    uint32 LE × numRestarts — payload offsets of restart entries
//	numRestarts uint32 LE
//
// Each entry is framed as
//
//	shared   uvarint  bytes shared with the previous entry's user key
//	unshared uvarint  bytes of user key following the shared prefix
//	valueLen uvarint  value length
//	trailer  uvarint  internal-key trailer (seq << 8 | kind)
//	dkey     uvarint  secondary delete key
//	key      unshared bytes of the user key
//	value    valueLen bytes
//
// Every restartInterval-th entry is a restart point: it stores its full key
// (shared = 0), so a reader can binary-search the restart array comparing
// full keys straight out of the raw block, then decode forward at most
// restartInterval entries — no full-block materialization on the point-
// lookup path.

// restartInterval is the number of entries between restart points. Smaller
// values cost index space but shorten the forward decode after a restart
// seek; 16 is the LevelDB/Pebble lineage default.
const restartInterval = 16

// blockTrailerLen is the fixed tail of a block payload: the numRestarts
// uint32. (The restart array itself is variable.)
const blockTrailerLen = 4

// sharedPrefixLen returns the length of the longest common prefix of a and b.
func sharedPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// blockWriter accumulates one prefix-compressed data block.
type blockWriter struct {
	buf      []byte
	restarts []uint32
	n        int
	lastKey  []byte
}

// reset clears the writer for the next block, keeping buffer capacity.
func (w *blockWriter) reset() {
	w.buf = w.buf[:0]
	w.restarts = w.restarts[:0]
	w.n = 0
	w.lastKey = w.lastKey[:0]
}

// add appends one entry. Entries must arrive in ascending user-key order.
func (w *blockWriter) add(e base.Entry) {
	shared := 0
	if w.n%restartInterval == 0 {
		w.restarts = append(w.restarts, uint32(len(w.buf)))
	} else {
		shared = sharedPrefixLen(w.lastKey, e.Key.UserKey)
	}
	unshared := len(e.Key.UserKey) - shared
	w.buf = base.AppendUvarint(w.buf, uint64(shared))
	w.buf = base.AppendUvarint(w.buf, uint64(unshared))
	w.buf = base.AppendUvarint(w.buf, uint64(len(e.Value)))
	w.buf = base.AppendUvarint(w.buf, uint64(e.Key.Trailer))
	w.buf = base.AppendUvarint(w.buf, uint64(e.DKey))
	w.buf = append(w.buf, e.Key.UserKey[shared:]...)
	w.buf = append(w.buf, e.Value...)
	w.lastKey = append(w.lastKey[:0], e.Key.UserKey...)
	w.n++
}

// finish appends the restart array and trailer, returning the payload. The
// writer must be reset before reuse.
func (w *blockWriter) finish() []byte {
	for _, r := range w.restarts {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, r)
	}
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(w.restarts)))
	return w.buf
}

// encodeBlock is the one-shot form used by rewrites: entries (S-ordered) in,
// sealed (CRC-prefixed) block out.
func encodeBlock(entries []base.Entry) []byte {
	var w blockWriter
	for _, e := range entries {
		w.add(e)
	}
	return sealPage(w.finish())
}

// splitBlockPayload separates a payload into its entry region and restart
// array, validating the trailer against the payload length.
func splitBlockPayload(payload []byte) (entries []byte, restarts []byte, numRestarts int, err error) {
	if len(payload) < blockTrailerLen {
		return nil, nil, 0, fmt.Errorf("sstable: block shorter than trailer: %w", ErrCorruption)
	}
	n := int(binary.LittleEndian.Uint32(payload[len(payload)-blockTrailerLen:]))
	restartsLen := n * 4
	if n < 0 || restartsLen+blockTrailerLen > len(payload) {
		return nil, nil, 0, fmt.Errorf("sstable: restart count %d overflows block: %w", n, ErrCorruption)
	}
	entriesEnd := len(payload) - blockTrailerLen - restartsLen
	return payload[:entriesEnd], payload[entriesEnd : len(payload)-blockTrailerLen], n, nil
}

// blockEntryHeader decodes one entry's varint frame starting at b, returning
// the frame fields and the remainder positioned at the key suffix.
func blockEntryHeader(b []byte) (shared, unshared, valueLen int, trailer base.Trailer, dkey base.DeleteKey, rest []byte, err error) {
	var v uint64
	if v, b, err = base.Uvarint(b); err != nil {
		return
	}
	shared = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return
	}
	unshared = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return
	}
	valueLen = int(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return
	}
	trailer = base.Trailer(v)
	if v, b, err = base.Uvarint(b); err != nil {
		return
	}
	dkey = base.DeleteKey(v)
	if shared < 0 || unshared < 0 || valueLen < 0 || unshared+valueLen > len(b) {
		err = fmt.Errorf("sstable: block entry frame overflows block: %w", ErrCorruption)
		return
	}
	rest = b
	return
}

// decodeBlock fully materializes a block payload: every entry's user key is
// assembled into a fresh arena (prefix-compressed keys are not contiguous in
// the raw block), values alias the payload. The returned entries pin both
// the arena and the payload — exactly the shape the page cache stores.
//
// A header-only pre-pass sizes the entry slice and key arena exactly, so the
// decode costs two allocations per block regardless of entry count — scans
// decode every block of every tile they cross, and append-doubling here is
// the difference between 2 and ~10 allocations per block.
func decodeBlock(payload []byte) ([]base.Entry, error) {
	entryBytes, _, _, err := splitBlockPayload(payload)
	if err != nil {
		return nil, err
	}
	count, keyBytes := 0, 0
	for b := entryBytes; len(b) > 0; {
		shared, unshared, valueLen, _, _, rest, err := blockEntryHeader(b)
		if err != nil {
			return nil, err
		}
		count++
		keyBytes += shared + unshared
		b = rest[unshared+valueLen:]
	}
	// Keys are materialized into the payload's spare capacity when the caller
	// provided it (readPageRaw over-allocates by the block's recorded
	// KeyBytes), collapsing the decode to one entry-slice allocation; a bare
	// payload gets a dedicated arena. Either way the arena never regrows.
	arena := payload[len(payload):]
	if cap(arena) < keyBytes {
		arena = make([]byte, 0, keyBytes)
	}
	entries := make([]base.Entry, 0, count)
	var prevKey []byte
	for b := entryBytes; len(b) > 0; {
		shared, unshared, valueLen, trailer, dkey, rest, err := blockEntryHeader(b)
		if err != nil {
			return nil, err
		}
		if shared > len(prevKey) {
			return nil, fmt.Errorf("sstable: shared prefix %d exceeds previous key %d: %w",
				shared, len(prevKey), ErrCorruption)
		}
		arena = append(arena, prevKey[:shared]...)
		arena = append(arena, rest[:unshared]...)
		key := arena[len(arena)-shared-unshared:]
		e := base.Entry{
			Key:   base.InternalKey{UserKey: key, Trailer: trailer},
			DKey:  dkey,
			Value: rest[unshared : unshared+valueLen],
		}
		if !e.Key.Kind().Valid() {
			return nil, fmt.Errorf("sstable: block entry kind invalid: %w", ErrCorruption)
		}
		entries = append(entries, e)
		prevKey = key
		b = rest[unshared+valueLen:]
	}
	return entries, nil
}

// restartKeyAt returns the full user key of the restart entry at payload
// offset off. Restart entries store their whole key (shared must be 0).
func restartKeyAt(entryBytes []byte, off int) ([]byte, error) {
	if off < 0 || off >= len(entryBytes) {
		return nil, fmt.Errorf("sstable: restart offset %d out of range: %w", off, ErrCorruption)
	}
	shared, unshared, _, _, _, rest, err := blockEntryHeader(entryBytes[off:])
	if err != nil {
		return nil, err
	}
	if shared != 0 {
		return nil, fmt.Errorf("sstable: restart entry has shared prefix %d: %w", shared, ErrCorruption)
	}
	return rest[:unshared], nil
}

// blockSeekGE finds the first entry with user key >= key without decoding
// the whole block: binary search over the restart points (whole keys, read
// straight from the raw payload), then a forward decode of at most
// restartInterval entries. The returned entry's key aliases a fresh buffer
// and its value aliases payload.
func blockSeekGE(payload []byte, key []byte) (base.Entry, bool, error) {
	entryBytes, restarts, n, err := splitBlockPayload(payload)
	if err != nil {
		return base.Entry{}, false, err
	}
	if n == 0 {
		return base.Entry{}, false, nil
	}
	// Find the last restart whose key is <= key: binary search for the first
	// restart with key > key, then step back one. Starting at that restart,
	// the target (if present) is reached before the next restart.
	lo, hi := 0, n // invariant: restart[lo-1].key <= key < restart[hi].key
	var searchErr error
	for lo < hi {
		mid := (lo + hi) / 2
		off := int(binary.LittleEndian.Uint32(restarts[mid*4:]))
		rk, err := restartKeyAt(entryBytes, off)
		if err != nil {
			searchErr = err
			break
		}
		if base.CompareUserKeys(rk, key) > 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if searchErr != nil {
		return base.Entry{}, false, searchErr
	}
	start := lo - 1
	if start < 0 {
		start = 0
	}
	pos := int(binary.LittleEndian.Uint32(restarts[start*4:]))
	if pos < 0 || pos > len(entryBytes) {
		return base.Entry{}, false, fmt.Errorf("sstable: restart offset %d out of range: %w", pos, ErrCorruption)
	}
	var keyBuf []byte
	for b := entryBytes[pos:]; len(b) > 0; {
		shared, unshared, valueLen, trailer, dkey, rest, err := blockEntryHeader(b)
		if err != nil {
			return base.Entry{}, false, err
		}
		if shared > len(keyBuf) {
			return base.Entry{}, false, fmt.Errorf("sstable: shared prefix %d exceeds previous key %d: %w",
				shared, len(keyBuf), ErrCorruption)
		}
		keyBuf = append(keyBuf[:shared], rest[:unshared]...)
		if base.CompareUserKeys(keyBuf, key) >= 0 {
			ik := base.InternalKey{UserKey: keyBuf, Trailer: trailer}
			if !ik.Kind().Valid() {
				return base.Entry{}, false, fmt.Errorf("sstable: block entry kind invalid: %w", ErrCorruption)
			}
			return base.Entry{Key: ik, DKey: dkey, Value: rest[unshared : unshared+valueLen]}, true, nil
		}
		b = rest[unshared+valueLen:]
	}
	return base.Entry{}, false, nil
}

// validateBlock structurally checks a sealed block: CRC, restart trailer,
// entry framing, restart offsets landing on entry boundaries, and strict
// S-order. It returns the entry count. verify and the corruption tests use
// it; the read path trusts the CRC and per-entry bounds checks instead.
func validateBlock(sealed []byte) (int, error) {
	payload, err := openPage(sealed)
	if err != nil {
		return 0, err
	}
	entryBytes, restarts, n, err := splitBlockPayload(payload)
	if err != nil {
		return 0, err
	}
	entries, err := decodeBlock(payload)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(entries); i++ {
		if base.CompareUserKeys(entries[i-1].Key.UserKey, entries[i].Key.UserKey) >= 0 {
			return 0, fmt.Errorf("sstable: block keys out of order at entry %d: %w", i, ErrCorruption)
		}
	}
	want := (len(entries) + restartInterval - 1) / restartInterval
	if n != want {
		return 0, fmt.Errorf("sstable: %d restart points for %d entries (want %d): %w",
			n, len(entries), want, ErrCorruption)
	}
	prev := -1
	for i := 0; i < n; i++ {
		off := int(binary.LittleEndian.Uint32(restarts[i*4:]))
		if off <= prev || off >= len(entryBytes) {
			return 0, fmt.Errorf("sstable: restart offset %d not ascending in block: %w", off, ErrCorruption)
		}
		if _, err := restartKeyAt(entryBytes, off); err != nil {
			return 0, err
		}
		prev = off
	}
	return len(entries), nil
}
