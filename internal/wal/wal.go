// Package wal implements the write-ahead log. Every mutation is appended to
// the live segment before it reaches the memory buffer, so the buffer can be
// rebuilt after a crash.
//
// A Manager owns the segments of one engine instance, named and listed
// relative to the filesystem it is given. A range-sharded database runs one
// Manager per shard on a prefixed filesystem, so each shard appends, syncs,
// rotates, and replays its own segment directory ("shard-N/wal-*.wal")
// independently — the append streams of different shards never serialize on
// each other.
//
// Records are group records: one CRC-framed record carries a whole commit
// group (one or more entries) and is written to the file with a single
// buffered Write. The group is the unit of atomicity — a torn record drops
// the entire group on replay, never a prefix of it — which is what the
// engine's group-commit pipeline needs: a crash can lose whole unsynced
// groups but can never interleave or split one.
//
// Format note: the group framing (a count prefix inside the payload)
// replaced the original per-entry payloads and is not
// backward-compatible — a segment written by a pre-group-commit build
// replays as a corrupt tail at its first record. The engine deletes all
// segments after a successful recovery and recreates them on every open, so
// only an upgrade over an unclean shutdown of an old build can encounter
// one; recover with the old build first.
//
// The paper's delete-persistence guarantee (§4.1.5) extends to the WAL: "any
// tombstone retained in the WAL is consistently purged if the WAL is purged
// at a periodicity that is shorter than Dth. Otherwise, we use a dedicated
// routine that checks all live WALs that are older than Dth, copies all live
// records to a new WAL, and discards the records in the older WAL that made
// it to the disk." Manager.PurgeExpired implements that routine.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

// Record framing: [crc32c of payload: 4 bytes][payload length: uvarint][payload].
// The payload is [entry count: uvarint] followed by that many
// base.AppendEntry encodings.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptTail is reported by Replay when it stops at a torn or corrupt
// record; everything before it has been delivered.
var ErrCorruptTail = errors.New("wal: corrupt or torn tail record")

// Writer appends group records to a single WAL segment.
type Writer struct {
	mu      sync.Mutex
	f       vfs.File
	payload []byte // scratch for the record payload, reused across appends
	rec     []byte // scratch for the framed record, reused across appends
	name    string
}

// NewWriter creates the named segment on fs.
func NewWriter(fs vfs.FS, name string) (*Writer, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", name, err)
	}
	return &Writer{f: f, name: name}, nil
}

// Name returns the segment's file name.
func (w *Writer) Name() string { return w.name }

// AppendGroup writes all entries as one CRC-framed record with a single
// buffered file write: the record is assembled in memory and reaches the
// file in one Write call, so a crash leaves either the whole group or a torn
// tail — never a decodable prefix of the group. It does not sync; call Sync
// for durability.
func (w *Writer) AppendGroup(entries []base.Entry) error {
	if len(entries) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	payload := base.AppendUvarint(w.payload[:0], uint64(len(entries)))
	for _, e := range entries {
		payload = base.AppendEntry(payload, e)
	}
	w.payload = payload
	rec := base.AppendUint64(w.rec[:0], uint64(crc32.Checksum(payload, crcTable)))
	rec = rec[:4] // only the low 4 bytes carry the CRC
	rec = base.AppendUvarint(rec, uint64(len(payload)))
	rec = append(rec, payload...)
	w.rec = rec
	if _, err := w.f.Write(rec); err != nil {
		return fmt.Errorf("wal: append group: %w", err)
	}
	return nil
}

// Append writes one entry as a single-member group record.
func (w *Writer) Append(e base.Entry) error {
	return w.AppendGroup([]base.Entry{e})
}

// Sync makes all appended records durable.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// Close syncs and closes the underlying file, so a sealed segment's records
// survive a crash even under a no-sync commit policy.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// Replay reads the named segment and calls fn for every entry of every
// intact group record in order. A torn or corrupt tail ends the replay with
// ErrCorruptTail after delivering all preceding records — a group torn
// mid-record delivers none of its entries (the group is the atomicity unit).
func Replay(fs vfs.FS, name string, fn func(base.Entry) error) error {
	f, err := fs.Open(name)
	if err != nil {
		return fmt.Errorf("wal: open %s: %w", name, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return fmt.Errorf("wal: size %s: %w", name, err)
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil && err != io.EOF {
			return fmt.Errorf("wal: read %s: %w", name, err)
		}
	}
	for len(data) > 0 {
		if len(data) < 4 {
			return ErrCorruptTail
		}
		wantCRC := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		rest := data[4:]
		n, rest, err := base.Uvarint(rest)
		if err != nil || uint64(len(rest)) < n {
			return ErrCorruptTail
		}
		payload := rest[:n]
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return ErrCorruptTail
		}
		count, body, err := base.Uvarint(payload)
		if err != nil {
			return ErrCorruptTail
		}
		for i := uint64(0); i < count; i++ {
			var e base.Entry
			e, body, err = base.DecodeEntry(body)
			if err != nil {
				return ErrCorruptTail
			}
			if err := fn(e.Clone()); err != nil {
				return err
			}
		}
		if len(body) != 0 {
			return ErrCorruptTail
		}
		data = rest[n:]
	}
	return nil
}

// ---------------------------------------------------------------------------
// Manager

// segment tracks one WAL file and its creation time (for Dth ageing).
type segment struct {
	name      string
	createdAt time.Time
}

// Manager owns the set of WAL segments: the live one being appended to and
// sealed ones awaiting flush. It implements rotation (one segment per
// memtable) and the Dth purge routine.
//
// Appends and rotation may race: the commit pipeline appends outside the
// engine lock while sealing a memtable rotates the segment under it. The
// rot lock arbitrates — appends and syncs hold it shared for the duration of
// the file write, rotation and close hold it exclusively — so a rotation can
// never close the writer out from under an in-flight append.
type Manager struct {
	// rot guards the live writer's lifetime. Held shared by AppendGroup and
	// Sync across the file operation; held exclusively by Rotate and Close.
	rot sync.RWMutex
	// mu guards the bookkeeping: segment numbering, the sealed list, and the
	// live segment's creation time.
	mu     sync.Mutex
	fs     vfs.FS
	clock  base.Clock
	prefix string
	next   int
	live   *Writer
	liveAt time.Time
	sealed []segment
}

// NewManager creates a manager writing segments named prefix-NNNNNN.wal.
func NewManager(fs vfs.FS, clock base.Clock, prefix string) (*Manager, error) {
	return NewManagerAt(fs, clock, prefix, 0)
}

// NewManagerAt creates a manager whose first segment uses number next —
// recovery passes a number above any surviving segment to avoid collisions.
func NewManagerAt(fs vfs.FS, clock base.Clock, prefix string, next int) (*Manager, error) {
	m := &Manager{fs: fs, clock: clock, prefix: prefix, next: next}
	if err := m.rotateLocked(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Manager) segName(n int) string {
	return fmt.Sprintf("%s-%06d.wal", m.prefix, n)
}

// AppendGroup writes a commit group to the live segment as one record. It
// holds the rotation lock shared for the duration of the write, so a
// concurrent Rotate cannot close the writer mid-append.
func (m *Manager) AppendGroup(entries []base.Entry) error {
	m.rot.RLock()
	defer m.rot.RUnlock()
	return m.live.AppendGroup(entries)
}

// Append writes a single entry as a one-member group.
func (m *Manager) Append(e base.Entry) error {
	return m.AppendGroup([]base.Entry{e})
}

// Sync flushes the live segment. Like AppendGroup it holds the rotation lock
// shared, so it never races a rotation's close.
func (m *Manager) Sync() error {
	m.rot.RLock()
	defer m.rot.RUnlock()
	return m.live.Sync()
}

// Rotate seals the live segment (it becomes eligible for deletion once its
// memtable flushes) and starts a new one. It returns the sealed segment's
// name. Rotation excludes in-flight appends and syncs via the rotation lock.
func (m *Manager) Rotate() (string, error) {
	m.rot.Lock()
	defer m.rot.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	sealedName := m.live.Name()
	if err := m.live.Close(); err != nil {
		return "", fmt.Errorf("wal: seal %s: %w", sealedName, err)
	}
	m.sealed = append(m.sealed, segment{name: sealedName, createdAt: m.liveAt})
	if err := m.rotateLocked(); err != nil {
		return "", err
	}
	return sealedName, nil
}

// rotateLocked replaces the live writer. Callers hold m.mu (and m.rot
// exclusively when a previous live writer exists).
func (m *Manager) rotateLocked() error {
	w, err := NewWriter(m.fs, m.segName(m.next))
	if err != nil {
		return err
	}
	m.next++
	m.live = w
	m.liveAt = m.clock.Now()
	return nil
}

// Release deletes a sealed segment whose contents have been flushed to an
// sstable and are therefore durable without the log.
func (m *Manager) Release(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, s := range m.sealed {
		if s.name == name {
			m.sealed = append(m.sealed[:i], m.sealed[i+1:]...)
			return m.fs.Remove(name)
		}
	}
	return fmt.Errorf("wal: release unknown segment %s", name)
}

// LiveAge returns how long the live segment has existed.
func (m *Manager) LiveAge() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock.Now().Sub(m.liveAt)
}

// PurgeExpired implements the paper's WAL routine for Dth compliance: every
// live (not yet released) segment older than dth is rewritten — records for
// which isLive returns true are copied into the current live segment, and
// the old segment is discarded. Tombstone records older than Dth thereby
// leave the log. It returns the number of segments rewritten.
func (m *Manager) PurgeExpired(dth time.Duration, isLive func(base.Entry) bool) (int, error) {
	m.mu.Lock()
	now := m.clock.Now()
	var expired []segment
	var keep []segment
	for _, s := range m.sealed {
		if now.Sub(s.createdAt) > dth {
			expired = append(expired, s)
		} else {
			keep = append(keep, s)
		}
	}
	m.sealed = keep
	m.mu.Unlock()

	for _, s := range expired {
		err := Replay(m.fs, s.name, func(e base.Entry) error {
			if isLive(e) {
				return m.Append(e)
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorruptTail) {
			return 0, err
		}
		if err := m.fs.Remove(s.name); err != nil {
			return 0, err
		}
	}
	return len(expired), nil
}

// Close seals and closes the live segment without deleting anything.
func (m *Manager) Close() error {
	m.rot.Lock()
	defer m.rot.Unlock()
	return m.live.Close()
}

// ListSegments returns all WAL segment names currently on fs with the given
// prefix, sorted — used by recovery.
func ListSegments(fs vfs.FS, prefix string) ([]string, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, prefix+"-") && strings.HasSuffix(n, ".wal") {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out, nil
}
