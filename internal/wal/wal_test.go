package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

func entry(key string, seq base.SeqNum, kind base.Kind, val string) base.Entry {
	return base.MakeEntry([]byte(key), seq, kind, base.DeleteKey(seq), []byte(val))
}

func TestWriteReplayRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	w, err := NewWriter(fs, "test.wal")
	if err != nil {
		t.Fatal(err)
	}
	want := []base.Entry{
		entry("a", 1, base.KindSet, "va"),
		entry("b", 2, base.KindDelete, ""),
		entry("c", 3, base.KindRangeDelete, "d"),
		entry("", 4, base.KindSet, ""),
	}
	for _, e := range want {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []base.Entry
	err = Replay(fs, "test.wal", func(e base.Entry) error {
		got = append(got, e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key.Compare(want[i].Key) != 0 || !bytes.Equal(got[i].Value, want[i].Value) ||
			got[i].DKey != want[i].DKey {
			t.Fatalf("entry %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	fs := vfs.NewMem()
	w, _ := NewWriter(fs, "torn.wal")
	w.Append(entry("a", 1, base.KindSet, "va"))
	w.Append(entry("b", 2, base.KindSet, "vb"))
	w.Close()

	f, _ := fs.Open("torn.wal")
	size, _ := f.Size()
	f.Close()

	// Truncate at every possible point inside the second record: replay
	// must deliver the first record and report a corrupt tail.
	full, _ := fs.Open("torn.wal")
	raw := make([]byte, size)
	full.ReadAt(raw, 0)
	full.Close()

	// Find the boundary of the first record by replaying a prefix search.
	for cut := int64(size - 1); cut > 0; cut-- {
		fs2 := vfs.NewMem()
		g, _ := fs2.Create("t.wal")
		g.Write(raw[:cut])
		g.Close()
		var got []string
		err := Replay(fs2, "t.wal", func(e base.Entry) error {
			got = append(got, string(e.Key.UserKey))
			return nil
		})
		if err == nil {
			// A truncation exactly at a record boundary is indistinguishable
			// from a clean log: it must have delivered whole records only.
			if len(got) != 1 || got[0] != "a" {
				t.Fatalf("cut=%d: clean replay delivered %v", cut, got)
			}
			continue
		}
		if !errors.Is(err, ErrCorruptTail) {
			t.Fatalf("cut=%d: want ErrCorruptTail got %v", cut, err)
		}
		for _, k := range got {
			if k != "a" && k != "b" {
				t.Fatalf("cut=%d: bogus entry %q", cut, k)
			}
		}
	}
}

func TestReplayBitFlip(t *testing.T) {
	fs := vfs.NewMem()
	w, _ := NewWriter(fs, "flip.wal")
	w.Append(entry("a", 1, base.KindSet, "va"))
	w.Close()

	f, _ := fs.Open("flip.wal")
	size, _ := f.Size()
	raw := make([]byte, size)
	f.ReadAt(raw, 0)
	// Flip one payload bit.
	raw[size-1] ^= 0x80
	f.WriteAt(raw, 0)
	f.Close()

	err := Replay(fs, "flip.wal", func(base.Entry) error { return nil })
	if !errors.Is(err, ErrCorruptTail) {
		t.Fatalf("want ErrCorruptTail, got %v", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	fs := vfs.NewMem()
	w, _ := NewWriter(fs, "cb.wal")
	w.Append(entry("a", 1, base.KindSet, "va"))
	w.Close()
	sentinel := errors.New("stop")
	err := Replay(fs, "cb.wal", func(base.Entry) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
}

func TestReplayMissingFile(t *testing.T) {
	err := Replay(vfs.NewMem(), "nope.wal", func(base.Entry) error { return nil })
	if !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("want not-exist, got %v", err)
	}
}

func TestManagerRotateRelease(t *testing.T) {
	fs := vfs.NewMem()
	clock := base.NewManualClock(time.Unix(0, 0))
	m, err := NewManager(fs, clock, "db")
	if err != nil {
		t.Fatal(err)
	}
	m.Append(entry("a", 1, base.KindSet, "v"))
	sealed, err := m.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if sealed != "db-000000.wal" {
		t.Fatalf("sealed = %s", sealed)
	}
	m.Append(entry("b", 2, base.KindSet, "v"))

	segs, _ := ListSegments(fs, "db")
	if len(segs) != 2 {
		t.Fatalf("segments: %v", segs)
	}
	if err := m.Release(sealed); err != nil {
		t.Fatal(err)
	}
	segs, _ = ListSegments(fs, "db")
	if len(segs) != 1 || segs[0] != "db-000001.wal" {
		t.Fatalf("segments after release: %v", segs)
	}
	if err := m.Release("bogus"); err == nil {
		t.Fatal("releasing unknown segment must fail")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerLiveAge(t *testing.T) {
	clock := base.NewManualClock(time.Unix(0, 0))
	m, _ := NewManager(vfs.NewMem(), clock, "db")
	clock.Advance(90 * time.Second)
	if got := m.LiveAge(); got != 90*time.Second {
		t.Fatalf("live age = %v", got)
	}
}

func TestPurgeExpired(t *testing.T) {
	fs := vfs.NewMem()
	clock := base.NewManualClock(time.Unix(0, 0))
	m, _ := NewManager(fs, clock, "db")

	// Segment 0 (created at t=0): one live record, one dead record. Sealing
	// happens after 10 minutes, so by purge time it is well past Dth.
	m.Append(entry("live", 1, base.KindSet, "v"))
	m.Append(entry("dead", 2, base.KindDelete, ""))
	clock.Advance(10 * time.Minute)
	if _, err := m.Rotate(); err != nil {
		t.Fatal(err)
	}

	// Segment 1 (created at t=10m) is sealed one minute later: fresh.
	m.Append(entry("recent", 3, base.KindSet, "v"))
	clock.Advance(time.Minute)
	if _, err := m.Rotate(); err != nil {
		t.Fatal(err)
	}

	n, err := m.PurgeExpired(5*time.Minute, func(e base.Entry) bool {
		return e.Key.Kind() == base.KindSet // drop tombstone records
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("purged %d segments, want 1", n)
	}
	// Old segment must be gone.
	segs, _ := ListSegments(fs, "db")
	for _, s := range segs {
		if s == "db-000000.wal" {
			t.Fatal("expired segment still present")
		}
	}
	// The live record must have been copied into the current live segment.
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	var copied []string
	Replay(fs, "db-000002.wal", func(e base.Entry) error {
		copied = append(copied, string(e.Key.UserKey))
		return nil
	})
	if len(copied) != 1 || copied[0] != "live" {
		t.Fatalf("copied records: %v", copied)
	}
}

func TestListSegmentsFiltering(t *testing.T) {
	fs := vfs.NewMem()
	for _, n := range []string{"db-000001.wal", "db-000000.wal", "other-000000.wal", "db-x.sst"} {
		f, _ := fs.Create(n)
		f.Close()
	}
	segs, err := ListSegments(fs, "db")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0] != "db-000000.wal" || segs[1] != "db-000001.wal" {
		t.Fatalf("segments: %v", segs)
	}
}

func TestAppendFailurePropagates(t *testing.T) {
	inject := vfs.NewInject(vfs.NewMem(), vfs.FailAfterOp(vfs.OpWrite, 0, io.ErrShortWrite))
	w, err := NewWriter(inject, "x.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("a", 1, base.KindSet, "v")); err == nil {
		t.Fatal("append must fail under write fault")
	}
}

func TestManyRecords(t *testing.T) {
	fs := vfs.NewMem()
	w, _ := NewWriter(fs, "big.wal")
	const n = 2000
	for i := 0; i < n; i++ {
		if err := w.Append(entry(fmt.Sprintf("k%06d", i), base.SeqNum(i+1), base.KindSet,
			fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	count := 0
	err := Replay(fs, "big.wal", func(e base.Entry) error {
		want := fmt.Sprintf("k%06d", count)
		if string(e.Key.UserKey) != want {
			return fmt.Errorf("record %d: got %q", count, e.Key.UserKey)
		}
		count++
		return nil
	})
	if err != nil || count != n {
		t.Fatalf("replayed %d records, err %v", count, err)
	}
}

// TestAppendGroupReplayRoundTrip verifies a multi-entry group record replays
// every member in order, interleaved with single-entry records.
func TestAppendGroupReplayRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	w, err := NewWriter(fs, "group.wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("solo", 1, base.KindSet, "v1")); err != nil {
		t.Fatal(err)
	}
	group := []base.Entry{
		entry("g-a", 2, base.KindSet, "va"),
		entry("g-b", 3, base.KindDelete, ""),
		entry("g-c", 4, base.KindRangeDelete, "g-d"),
	}
	if err := w.AppendGroup(group); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendGroup(nil); err != nil { // empty group is a no-op
		t.Fatal(err)
	}
	if err := w.Append(entry("tail", 5, base.KindSet, "v5")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []string
	err = Replay(fs, "group.wal", func(e base.Entry) error {
		got = append(got, fmt.Sprintf("%s/%d", e.Key.UserKey, e.Key.SeqNum()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"solo/1", "g-a/2", "g-b/3", "g-c/4", "tail/5"}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %s want %s", i, got[i], want[i])
		}
	}
}

// TestReplayTornGroup truncates a group record at every interior byte: the
// group must be dropped whole (never a prefix of its entries), with the
// preceding record still delivered.
func TestReplayTornGroup(t *testing.T) {
	fs := vfs.NewMem()
	w, _ := NewWriter(fs, "torn-group.wal")
	if err := w.Append(entry("before", 1, base.KindSet, "v")); err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Open("torn-group.wal")
	prefixSize, _ := f.Size()
	f.Close()
	group := []base.Entry{
		entry("g-a", 2, base.KindSet, "va"),
		entry("g-b", 3, base.KindSet, "vb"),
		entry("g-c", 4, base.KindSet, "vc"),
	}
	if err := w.AppendGroup(group); err != nil {
		t.Fatal(err)
	}
	w.Close()

	f, _ = fs.Open("torn-group.wal")
	size, _ := f.Size()
	raw := make([]byte, size)
	f.ReadAt(raw, 0)
	f.Close()

	for cut := size - 1; cut > prefixSize; cut-- {
		fs2 := vfs.NewMem()
		g, _ := fs2.Create("t.wal")
		g.Write(raw[:cut])
		g.Close()
		var got []string
		err := Replay(fs2, "t.wal", func(e base.Entry) error {
			got = append(got, string(e.Key.UserKey))
			return nil
		})
		if !errors.Is(err, ErrCorruptTail) {
			t.Fatalf("cut=%d: want ErrCorruptTail, got %v (delivered %v)", cut, err, got)
		}
		// Atomicity: the torn group must contribute nothing.
		if len(got) != 1 || got[0] != "before" {
			t.Fatalf("cut=%d: torn group leaked entries: %v", cut, got)
		}
	}
}

// TestManagerAppendRotateRace regression-tests the Append/Rotate race: the
// manager used to snapshot the live writer under its lock but write outside
// it, so a concurrent Rotate could close the writer mid-append. Run with
// -race. Every append must succeed and land in some segment.
func TestManagerAppendRotateRace(t *testing.T) {
	fs := vfs.NewMem()
	clock := base.NewManualClock(time.Unix(0, 0))
	m, err := NewManager(fs, clock, "race")
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers   = 4
		perWriter = 200
		rotations = 40
	)
	var wg sync.WaitGroup
	errC := make(chan error, writers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				seq := base.SeqNum(w*perWriter + i + 1)
				if err := m.Append(entry(fmt.Sprintf("k%d-%d", w, i), seq, base.KindSet, "v")); err != nil {
					errC <- fmt.Errorf("append w%d i%d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rotations; i++ {
			if _, err := m.Rotate(); err != nil {
				errC <- fmt.Errorf("rotate %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case err := <-errC:
		t.Fatal(err)
	default:
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Every appended record must be replayable from exactly one segment.
	segs, err := ListSegments(fs, "race")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, s := range segs {
		err := Replay(fs, s, func(e base.Entry) error {
			seen[string(e.Key.UserKey)]++
			return nil
		})
		if err != nil {
			t.Fatalf("replay %s: %v", s, err)
		}
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replayed %d distinct records, want %d", len(seen), writers*perWriter)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("record %s appeared %d times", k, n)
		}
	}
}
