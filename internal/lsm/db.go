package lsm

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/manifest"
	"lethe/internal/memtable"
	"lethe/internal/metrics"
	"lethe/internal/runtime"
	"lethe/internal/sstable"
	"lethe/internal/vfs"
	"lethe/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database is closed")

const manifestName = "MANIFEST"

// DB is the engine. All public methods are safe for concurrent use.
//
// Concurrency model: the tree's disk structure lives in an immutable
// refcounted version (see version.go). Readers (Get, Scan,
// SecondaryRangeScan) acquire a snapshot of the buffer, the flush queue, and
// the current version under a brief db.mu critical section, then run
// entirely outside the lock; a compaction finishing mid-read cannot
// invalidate the files a reader holds, because the reader's version pins
// them until it is released.
//
// Writers go through the group-commit pipeline (commit.go): each writer
// encodes its batch, takes a sequence range at enqueue, and either becomes
// the group leader or waits. The leader drains the queue, performs the
// group's writability check and buffer capture under one brief db.mu
// critical section, writes the whole group to the WAL as a single
// CRC-framed multi-entry record, issues one Sync per Options.WALSync, and
// wakes the group: members apply their own batches to the captured memtable
// concurrently under the skiplist's own lock and publish their sequence
// ranges in enqueue order. db.mu is therefore held only for per-group
// admission, buffer rotation, and version installs — never across WAL I/O
// or memtable inserts. Sealing a buffer waits for the buffer's in-flight
// group applies (memtable.WaitApplies) before rotating the WAL, so a
// flushed sstable always contains every group whose records precede the
// rotation point.
//
// Maintenance runs in the background by default, on the shared runtime's
// worker pool (internal/runtime): the DB registers as a job source, and
// the pool's CompactionWorkers goroutines — shared by every shard of a
// database — poll it for its best ready job. Flushes outrank compactions
// (writers stall, with metrics, when the immutable queue exceeds
// MaxImmutableBuffers, and additionally when the runtime's global memory
// budget is exceeded); compactions carry a FADE-derived priority compared
// across shards. Each job merges outside db.mu and installs its result
// atomically. Setting Options.DisableBackgroundMaintenance — automatic
// when a manual clock is injected — reverts to the paper's synchronous
// mode: the commit pipeline is bypassed for a serialized inline path (as
// it is under SyncAlways), and flushes and compactions run inline inside
// the writing goroutine, preserving the deterministic execution the
// experiments and the reproduction harness depend on.
type DB struct {
	opts Options

	mu     sync.Mutex
	closed bool
	// mem is the mutable buffer; imm holds sealed buffers awaiting flush,
	// oldest first.
	mem *memtable.Memtable
	imm []*flushable
	// current is the installed version of the disk structure.
	current *version
	// rh is the cached point-lookup read handle (version.go): the prebuilt
	// view stack Gets share between read-state transitions. Nil until the
	// first Get after a transition; invalidated by sealMemtableLocked,
	// installVersionLocked, and Close.
	rh    *readHandle
	wal   *wal.Manager
	store *manifest.Store

	// seq is the last assigned sequence number. In pipeline mode it is
	// guarded by cq.mu (assignment happens at enqueue); in synchronous and
	// SyncAlways mode by db.mu. Open and recovery access it single-threaded.
	seq        base.SeqNum
	flushedSeq base.SeqNum // highest seq durable in sstables
	memSeed    int64
	// cache is this instance's namespaced handle on the page cache — shared
	// across every shard when a runtime is attached.
	cache *sstable.CacheHandle
	// maintFS is the filesystem maintenance writes go through: opts.FS
	// wrapped by the runtime's I/O rate limiter when one is configured, so
	// flush and compaction sstable builds are paced while foreground WAL
	// appends and reads are not.
	maintFS vfs.FS

	// Tiered placement (nil/zero when Options.RemoteFS is unset). remoteFS
	// is the remote device wrapped in a CountingFS (remoteIO) so tier
	// traffic is measurable; maintRemoteFS adds the runtime's independent
	// remote-tier rate limiter on top for background writes; dataFS is the
	// vfs.TieredFS both tiers compose into, routing each sstable by the
	// placement registry (tierReg: file name -> present means remote). The
	// registry is loaded from the manifest's Remote list at open and
	// updated before any create or open, so WAL segments, the manifest,
	// and every unregistered name route local.
	remoteFS      vfs.FS
	remoteIO      *vfs.CountingFS
	maintRemoteFS vfs.FS
	dataFS        vfs.FS
	tierReg       sync.Map

	// cq is the commit pipeline's queue (commit.go): pending batches in
	// enqueue order plus the leader-active flag. idle is broadcast when the
	// pipeline goes quiescent (leadership released with an empty queue).
	cq struct {
		mu      sync.Mutex
		idle    *sync.Cond
		pending []*commitBatch
		active  bool
	}
	// published is the ordered sequence-publication frontier; see
	// publishRange. pubCond (on pubMu) wakes batches waiting their turn.
	pubMu     sync.Mutex
	pubCond   *sync.Cond
	published base.SeqNum
	// groupScratch is the leader's reusable buffer for concatenating a
	// group's entries before the WAL write (single leader at a time).
	groupScratch []base.Entry

	nextFileNum atomic.Uint64

	// ttls holds the cumulative per-level TTL thresholds D[i], recomputed
	// after every flush and whenever the tree height changes (§4.1.2).
	ttls []time.Duration

	// Background machinery. Maintenance executes on the shared runtime's
	// worker pool (rt): the runtime polls this instance through the
	// runtime.Source interface (background.go) and runs the claimed jobs.
	// bgCond (on mu) is broadcast on every background state transition:
	// flush completion, compaction completion, pause and resume. Stalled
	// writers, Maintain, Close, and pause waiters all block on it.
	bgStarted   bool
	bgCond      *sync.Cond
	rt          *runtime.Runtime
	ownRT       bool // rt is private to this instance; Close closes it
	srcID       int  // this instance's id in rt's memory budget
	flushActive bool
	inflight    int             // running background compactions
	busyFiles   map[uint64]bool // inputs claimed by in-flight compactions
	busyLevels  map[int]int     // level -> in-flight claim count
	pauseBG     int             // >0: background workers hold off
	bgErr       error           // first background flush/compaction failure

	m internalMetrics
}

// internalMetrics aggregates the engine's counters.
type internalMetrics struct {
	compactions            metrics.Counter
	compactionsTTL         metrics.Counter
	compactionsSaturation  metrics.Counter
	flushes                metrics.Counter
	bytesFlushed           metrics.Counter
	compactionBytesIn      metrics.Counter
	compactionBytesOut     metrics.Counter
	userBytesWritten       metrics.Counter
	entriesDroppedObsolete metrics.Counter
	tombstonesDropped      metrics.Counter
	rangeCovered           metrics.Counter
	blindDeletesSuppressed metrics.Counter
	fullPageDrops          metrics.Counter
	partialPageDrops       metrics.Counter
	srdEntriesDropped      metrics.Counter
	fullTreeCompactions    metrics.Counter
	trivialMoves           metrics.Counter
	maxCompactionBytes     metrics.Gauge

	// Subcompaction fan-out: key-range pipelines run by split jobs, the
	// widest single-job fan-out, and cumulative wall time inside mergeFiles
	// (the compaction-throughput denominator).
	subcompactions  metrics.Counter
	maxMergeWidth   metrics.Gauge
	compactionNanos metrics.Counter

	// Tiered-placement metrics: completed cross-tier migrations, the bytes
	// they copied to the remote device, and cumulative wall time inside
	// executeMigration (the migration-bandwidth denominator).
	tierMigrations    metrics.Counter
	tierMigratedBytes metrics.Counter
	tierMigrateNanos  metrics.Counter

	// Pipeline metrics (background mode).
	writeStalls     metrics.Counter
	writeStallNanos metrics.Counter
	bgFlushes       metrics.Counter
	bgCompactions   metrics.Counter

	// Commit-pipeline metrics: groups committed, member batches and entries
	// (batches/group is the grouping factor), the largest group seen, and
	// commit-path WAL syncs (≪ batches when group commit is working).
	commitGroups   metrics.Counter
	commitBatches  metrics.Counter
	commitEntries  metrics.Counter
	maxCommitGroup metrics.Gauge
	walSyncs       metrics.Counter
}

// Open creates or re-opens a database on opts.FS, replaying any WAL segments
// left by a crash.
func Open(opts Options) (db *DB, err error) {
	o := opts.withDefaults()
	if o.FS == nil {
		return nil, errors.New("lsm: Options.FS is required")
	}
	db = &DB{
		opts:    o,
		store:   manifest.NewStore(o.FS, manifestName),
		memSeed: o.Seed,
		maintFS: o.FS,
		dataFS:  o.FS,
		// srcID is assigned by the runtime at registration (startBackground,
		// after recovery). Until then it must not alias another shard's id:
		// WAL-recovery flushes report memory usage, and id 0 belongs to the
		// first registered shard. The budget ignores unregistered ids.
		srcID: -1,
	}
	// Attach (or build) the maintenance runtime before any file opens: the
	// page cache handle and the throttled maintenance filesystem come from
	// it. Synchronous mode has no runtime — a private cache and unthrottled
	// writes keep the paper's inline execution path bit-for-bit.
	if !o.DisableBackgroundMaintenance {
		if o.Runtime != nil {
			db.rt = o.Runtime
		} else {
			db.rt = runtime.New(runtime.Config{
				Workers:             o.CompactionWorkers,
				CacheBytes:          o.CacheBytes,
				MemoryBudget:        o.MemoryBudget,
				CompactionRateBytes: o.CompactionRateBytes,
			})
			db.ownRT = true
			defer func() {
				if err != nil {
					db.rt.Close()
				}
			}()
		}
		db.cache = db.rt.CacheHandle()
		if lim := db.rt.Limiter(); lim != nil {
			db.maintFS = vfs.NewThrottled(o.FS, lim)
		}
	} else if o.Cache != nil {
		// Synchronous mode with a database-provided shared cache (a sharded
		// DB reopened synchronously): a fresh namespace on it, so the
		// whole-database budget holds without a runtime.
		db.cache = o.Cache.Handle()
	} else {
		db.cache = sstable.NewPageCache(o.CacheBytes).Handle()
	}
	if o.RemoteFS != nil {
		// Tiered placement: count all remote traffic, pace background
		// remote writes with the runtime's independent remote bucket (so a
		// migration cannot starve local flushes of local tokens), and
		// compose both tiers into the TieredFS sstable opens route through.
		db.remoteIO = vfs.NewCounting(o.RemoteFS, o.PageSize)
		db.remoteFS = db.remoteIO
		db.maintRemoteFS = db.remoteFS
		if db.rt != nil {
			if rlim := db.rt.RemoteLimiter(); rlim != nil {
				db.maintRemoteFS = vfs.NewThrottled(db.remoteFS, rlim)
			}
		}
		db.dataFS = vfs.NewTiered(o.FS, db.remoteFS, func(name string) vfs.Tier {
			if _, ok := db.tierReg.Load(name); ok {
				return vfs.TierRemote
			}
			return vfs.TierLocal
		})
	}
	db.bgCond = sync.NewCond(&db.mu)
	db.cq.idle = sync.NewCond(&db.cq.mu)
	db.pubCond = sync.NewCond(&db.pubMu)
	db.mem = memtable.New(db.memSeed)

	state, _, err := db.store.Load()
	if err != nil {
		return nil, err
	}
	db.nextFileNum.Store(state.NextFileNum)
	db.seq = base.SeqNum(state.LastSeq)
	db.flushedSeq = base.SeqNum(state.LastSeq)

	// Tier membership is manifest state: seed the placement registry before
	// any file opens so dataFS routes each sstable to the device it lives
	// on, then drop remote orphans — partial copies left by a crash before
	// the manifest commit that would have made the migration durable.
	remoteSet := state.RemoteSet()
	if db.remoteFS != nil {
		for num := range remoteSet {
			db.tierReg.Store(db.fileName(num), struct{}{})
		}
		if err := db.cleanRemoteOrphans(remoteSet); err != nil {
			return nil, err
		}
	} else if len(remoteSet) > 0 {
		return nil, errors.New("lsm: manifest lists remote-tier files but Options.RemoteFS is unset")
	}
	if err := db.cleanLocalOrphans(state.Levels, remoteSet); err != nil {
		return nil, err
	}

	v := &version{}
	for _, runsIn := range state.Levels {
		var runs []run
		for _, fileNums := range runsIn {
			var r run
			for _, num := range fileNums {
				h, err := db.openFileAt(num, remoteSet[num])
				if err != nil {
					return nil, err
				}
				r = append(r, h)
			}
			runs = append(runs, r)
		}
		v.levels = append(v.levels, runs)
	}
	db.installVersionLocked(v)
	db.recomputeTTLs()

	if err := db.recoverWAL(); err != nil {
		return nil, err
	}
	if !o.DisableWAL {
		mgr, err := wal.NewManagerAt(o.FS, o.Clock, "wal", db.walStartNum())
		if err != nil {
			return nil, err
		}
		db.wal = mgr
	}
	db.published = db.seq
	if !o.DisableBackgroundMaintenance {
		if o.HoldMaintenance {
			// Start paused: startBackground registers with the runtime, and
			// a positive pause count makes OfferJob decline until
			// ResumeMaintenance drops it back to zero.
			db.pauseBG = 1
		}
		db.startBackground()
	}
	return db, nil
}

// FileName returns the canonical sstable file name for a file number. It is
// exported for the resharding orchestrator, which hands files off between
// shard directories by renaming them.
func FileName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

func (db *DB) fileName(num uint64) string { return FileName(num) }

// parseFileName inverts fileName, reporting false for non-sstable names.
func parseFileName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".sst") {
		return 0, false
	}
	num, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
	if err != nil {
		return 0, false
	}
	return num, true
}

// tierFS returns the concrete filesystem of a tier — the device an obsolete
// file must be removed from.
func (db *DB) tierFS(remote bool) vfs.FS {
	if remote {
		return db.remoteFS
	}
	return db.opts.FS
}

// openFileAt opens file num on its tier and returns a handle pinned to that
// tier's concrete filesystem. The placement registry is updated first so a
// concurrent open through dataFS routes consistently.
func (db *DB) openFileAt(num uint64, remote bool) (*fileHandle, error) {
	name := db.fileName(num)
	if remote {
		db.tierReg.Store(name, struct{}{})
	} else {
		// Clear any stale remote claim (a remote→local placement repair
		// leaves both copies alive briefly; routing must prefer the new one).
		db.tierReg.Delete(name)
	}
	f, err := db.dataFS.Open(name)
	if err != nil {
		return nil, fmt.Errorf("lsm: open file %d: %w", num, err)
	}
	r, err := sstable.OpenReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read file %d: %w", num, err)
	}
	r.SetCache(db.cache)
	r.SetRemote(remote)
	return &fileHandle{meta: r.Meta, r: r, fs: db.tierFS(remote), name: name, remote: remote}, nil
}

// cleanRemoteOrphans removes remote-tier sstables the manifest does not
// claim: partial migration copies from a crash between the remote fsync and
// the manifest commit. Local files are never touched here — the local
// original of an interrupted migration is still the live copy.
func (db *DB) cleanRemoteOrphans(remoteSet map[uint64]bool) error {
	names, err := db.remoteFS.List()
	if err != nil {
		return fmt.Errorf("lsm: list remote tier: %w", err)
	}
	for _, name := range names {
		num, ok := parseFileName(name)
		if !ok || remoteSet[num] {
			continue
		}
		if err := db.remoteFS.Remove(name); err != nil {
			return fmt.Errorf("lsm: remove remote orphan %s: %w", name, err)
		}
	}
	return nil
}

// cleanLocalOrphans removes local sstables the manifest does not place on
// the local tier: outputs of a flush, merge, or subcompaction that crashed
// before its install committed (a fanned-out job can leave several siblings'
// partial runs), or the stale local original of a committed local→remote
// migration. The manifest commit is the engine's only durability point —
// flushed-but-uncommitted data is regenerated from the WAL, never read from
// orphaned files — so anything outside the committed local set is garbage.
// Non-sstable names (WAL segments, MANIFEST) do not parse and are skipped.
func (db *DB) cleanLocalOrphans(levels [][][]uint64, remoteSet map[uint64]bool) error {
	localSet := make(map[uint64]bool)
	for _, runs := range levels {
		for _, nums := range runs {
			for _, num := range nums {
				if !remoteSet[num] {
					localSet[num] = true
				}
			}
		}
	}
	names, err := db.opts.FS.List()
	if err != nil {
		return fmt.Errorf("lsm: list local tier: %w", err)
	}
	for _, name := range names {
		num, ok := parseFileName(name)
		if !ok || localSet[num] {
			continue
		}
		if err := db.opts.FS.Remove(name); err != nil {
			return fmt.Errorf("lsm: remove local orphan %s: %w", name, err)
		}
	}
	return nil
}

// recomputeTTLs refreshes the cumulative level TTLs for the current tree
// height. Callers hold db.mu (or are single-threaded during Open).
func (db *DB) recomputeTTLs() {
	if db.opts.Dth <= 0 {
		db.ttls = nil
		return
	}
	levels := len(db.current.levels)
	if levels == 0 {
		levels = 1
	}
	db.ttls = compaction.LevelTTLs(db.opts.Dth, db.opts.SizeRatio, levels)
}

// capacityBytes returns level l's nominal capacity M·T^(l+1) (level 0 of the
// slice is the paper's Level 1).
func (db *DB) capacityBytes(l int) int64 {
	cap := int64(db.opts.BufferBytes)
	for i := 0; i <= l; i++ {
		cap *= int64(db.opts.SizeRatio)
	}
	return cap
}

// liveBytes sums the live (non-dropped) bytes of level l of v, excluding
// files in mask.
func liveBytes(v *version, l int, mask map[uint64]bool) int64 {
	var total int64
	for _, r := range v.levels[l] {
		for _, h := range r {
			if mask[h.meta.FileNum] {
				continue
			}
			total += h.r.LiveBytesOf()
		}
	}
	return total
}

// treeEntries counts live entries across all levels of v (including
// tombstones), excluding files in mask. Callers hold db.mu.
func treeEntries(v *version, mask map[uint64]bool) int {
	n := 0
	v.forEach(func(h *fileHandle) {
		if !mask[h.meta.FileNum] {
			n += h.meta.NumEntries
		}
	})
	return n
}

// Close drains background work, flushes the buffer, and releases all
// resources. In-flight reads holding a version keep their files open until
// they finish.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	db.closed = true
	db.bgCond.Broadcast() // release stalled writers with ErrClosed
	db.mu.Unlock()
	if db.rt != nil {
		db.rt.WakeMemoryWaiters() // budget-stalled writers recheck and fail
	}

	// Wait for the commit pipeline to go idle before touching the WAL:
	// in-flight groups finish (or fail against the closed flag), and any
	// writer arriving later fails its writability check without appending.
	db.drainCommits()

	if db.bgStarted {
		if db.ownRT {
			// Private runtime: nothing else shares the limiter, so release
			// it now — the in-flight jobs waited on below must drain at
			// device speed, not wait out their token debt. A shared
			// runtime's limiter is released by the database handle that
			// owns it, before it closes the shards.
			db.rt.ReleaseLimiter()
		}
		// Leave the shared scheduler: the runtime stops polling this
		// instance (a claim attempt racing the closed flag offers nothing),
		// then in-flight jobs — already claimed before the flag — finish
		// and install. After the wait no job of this instance runs again.
		db.rt.Deregister(db, db.srcID)
		db.mu.Lock()
		for db.flushActive || db.inflight > 0 {
			db.bgCond.Wait()
		}
		db.mu.Unlock()
		if db.ownRT {
			db.rt.Close()
		}
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	first := db.bgErr
	if err := db.flushLocked(); err != nil && first == nil {
		first = err
	}
	if db.wal != nil {
		if err := db.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	// Drop the engine's reference; file readers close as refs drain. The
	// cached read handle holds its own version pin — retire it first so the
	// files do not outlive the database.
	db.invalidateReadHandleLocked()
	old := db.current
	db.current = &version{}
	db.current.refs.Store(1)
	if err := old.unref(); err != nil && first == nil {
		first = err
	}
	return first
}

// commitManifestLocked persists the structure of v together with the current
// sequence and file-number state. Callers hold db.mu.
func (db *DB) commitManifestLocked(v *version) error {
	st := &manifest.State{
		NextFileNum: db.nextFileNum.Load(),
		LastSeq:     uint64(db.flushedSeq),
	}
	for _, runs := range v.levels {
		var lvl [][]uint64
		for _, r := range runs {
			var nums []uint64
			for _, h := range r {
				nums = append(nums, h.meta.FileNum)
				if h.remote {
					st.Remote = append(st.Remote, h.meta.FileNum)
				}
			}
			lvl = append(lvl, nums)
		}
		st.Levels = append(st.Levels, lvl)
	}
	return db.store.Commit(st)
}

// remoteLevel reports whether level index l (0-based slice index) places its
// runs on the remote tier.
func (db *DB) remoteLevel(l int) bool {
	return db.remoteFS != nil && l >= db.opts.Placement.LocalLevels
}

// NumLevels returns the number of allocated disk levels.
func (db *DB) NumLevels() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.current.levels)
}

// TTLs returns the current cumulative per-level TTL thresholds (nil without
// a Dth).
func (db *DB) TTLs() []time.Duration {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]time.Duration(nil), db.ttls...)
}
