package lsm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/manifest"
	"lethe/internal/memtable"
	"lethe/internal/metrics"
	"lethe/internal/sstable"
	"lethe/internal/wal"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("lsm: database is closed")

const manifestName = "MANIFEST"

// fileHandle pairs a file's metadata with an open reader. The reader's Meta
// pointer is shared so secondary range deletes keep both views consistent.
type fileHandle struct {
	meta *sstable.Meta
	r    *sstable.Reader
}

// run is a sequence of S-ordered files forming one sorted run.
type run []*fileHandle

// DB is the engine. All public methods are safe for concurrent use; flushes
// and compactions run synchronously inside the calling goroutine (the
// paper's experiments prioritize compactions over writes), which also makes
// experiments deterministic.
type DB struct {
	opts Options

	mu     sync.Mutex
	closed bool
	mem    *memtable.Memtable
	// levels[l] holds the runs of disk level l+1 (paper numbering), newest
	// run first.
	levels [][]run
	wal    *wal.Manager
	store  *manifest.Store

	nextFileNum uint64
	seq         base.SeqNum
	flushedSeq  base.SeqNum // highest seq durable in sstables
	memSeed     int64
	cache       *sstable.PageCache

	// ttls holds the cumulative per-level TTL thresholds D[i], recomputed
	// after every flush and whenever the tree height changes (§4.1.2).
	ttls []time.Duration

	m internalMetrics
}

// internalMetrics aggregates the engine's counters.
type internalMetrics struct {
	compactions            metrics.Counter
	compactionsTTL         metrics.Counter
	compactionsSaturation  metrics.Counter
	flushes                metrics.Counter
	bytesFlushed           metrics.Counter
	compactionBytesIn      metrics.Counter
	compactionBytesOut     metrics.Counter
	userBytesWritten       metrics.Counter
	entriesDroppedObsolete metrics.Counter
	tombstonesDropped      metrics.Counter
	rangeCovered           metrics.Counter
	blindDeletesSuppressed metrics.Counter
	fullPageDrops          metrics.Counter
	partialPageDrops       metrics.Counter
	srdEntriesDropped      metrics.Counter
	fullTreeCompactions    metrics.Counter
	trivialMoves           metrics.Counter
	maxCompactionBytes     metrics.Gauge
}

// Open creates or re-opens a database on opts.FS, replaying any WAL segments
// left by a crash.
func Open(opts Options) (*DB, error) {
	o := opts.withDefaults()
	if o.FS == nil {
		return nil, errors.New("lsm: Options.FS is required")
	}
	db := &DB{
		opts:    o,
		store:   manifest.NewStore(o.FS, manifestName),
		memSeed: o.Seed,
		cache:   sstable.NewPageCache(o.CacheBytes),
	}
	db.mem = memtable.New(db.memSeed)

	state, _, err := db.store.Load()
	if err != nil {
		return nil, err
	}
	db.nextFileNum = state.NextFileNum
	db.seq = base.SeqNum(state.LastSeq)
	db.flushedSeq = base.SeqNum(state.LastSeq)

	for _, runsIn := range state.Levels {
		var runs []run
		for _, fileNums := range runsIn {
			var r run
			for _, num := range fileNums {
				h, err := db.openFile(num)
				if err != nil {
					return nil, err
				}
				r = append(r, h)
			}
			runs = append(runs, r)
		}
		db.levels = append(db.levels, runs)
	}
	db.recomputeTTLs()

	if err := db.recoverWAL(); err != nil {
		return nil, err
	}
	if !o.DisableWAL {
		mgr, err := wal.NewManagerAt(o.FS, o.Clock, "wal", db.walStartNum())
		if err != nil {
			return nil, err
		}
		db.wal = mgr
	}
	return db, nil
}

func (db *DB) fileName(num uint64) string { return fmt.Sprintf("%06d.sst", num) }

func (db *DB) openFile(num uint64) (*fileHandle, error) {
	f, err := db.opts.FS.Open(db.fileName(num))
	if err != nil {
		return nil, fmt.Errorf("lsm: open file %d: %w", num, err)
	}
	r, err := sstable.OpenReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lsm: read file %d: %w", num, err)
	}
	r.SetCache(db.cache)
	return &fileHandle{meta: r.Meta, r: r}, nil
}

// recomputeTTLs refreshes the cumulative level TTLs for the current tree
// height. Callers hold db.mu (or are single-threaded during Open).
func (db *DB) recomputeTTLs() {
	if db.opts.Dth <= 0 {
		db.ttls = nil
		return
	}
	levels := len(db.levels)
	if levels == 0 {
		levels = 1
	}
	db.ttls = compaction.LevelTTLs(db.opts.Dth, db.opts.SizeRatio, levels)
}

// capacityBytes returns level l's nominal capacity M·T^(l+1) (level 0 of the
// slice is the paper's Level 1).
func (db *DB) capacityBytes(l int) int64 {
	cap := int64(db.opts.BufferBytes)
	for i := 0; i <= l; i++ {
		cap *= int64(db.opts.SizeRatio)
	}
	return cap
}

// liveBytes sums the live (non-dropped) bytes of a level.
func (db *DB) liveBytes(l int) int64 {
	var total int64
	for _, r := range db.levels[l] {
		for _, h := range r {
			total += h.r.LiveBytesOf()
		}
	}
	return total
}

// treeEntries counts live entries across all levels (including tombstones).
func (db *DB) treeEntries() int {
	n := 0
	for _, runs := range db.levels {
		for _, r := range runs {
			for _, h := range r {
				n += h.meta.NumEntries
			}
		}
	}
	return n
}

// Close flushes the buffer and releases all resources.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	for _, runs := range db.levels {
		for _, r := range runs {
			for _, h := range r {
				if err := h.r.Close(); err != nil {
					return err
				}
			}
		}
	}
	if db.wal != nil {
		if err := db.wal.Close(); err != nil {
			return err
		}
	}
	db.closed = true
	return nil
}

// commitManifest persists the current structure. Callers hold db.mu.
func (db *DB) commitManifest() error {
	st := &manifest.State{
		NextFileNum: db.nextFileNum,
		LastSeq:     uint64(db.flushedSeq),
	}
	for _, runs := range db.levels {
		var lvl [][]uint64
		for _, r := range runs {
			var nums []uint64
			for _, h := range r {
				nums = append(nums, h.meta.FileNum)
			}
			lvl = append(lvl, nums)
		}
		st.Levels = append(st.Levels, lvl)
	}
	return db.store.Commit(st)
}

// NumLevels returns the number of allocated disk levels.
func (db *DB) NumLevels() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.levels)
}

// TTLs returns the current cumulative per-level TTL thresholds (nil without
// a Dth).
func (db *DB) TTLs() []time.Duration {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]time.Duration(nil), db.ttls...)
}
