package lsm

import (
	"errors"
	"sort"
	"sync/atomic"

	"lethe/internal/base"
)

// ErrSnapshotReleased is returned by reads on a released Snapshot.
var ErrSnapshotReleased = errors.New("lsm: snapshot released")

// memView is the read-side view of one memory buffer. The live
// *memtable.Memtable satisfies it directly; a Snapshot substitutes a
// frozenMem for the mutable buffer so the view stops moving.
type memView interface {
	// Get returns the buffered entry for key (possibly a tombstone),
	// honoring buffered range tombstones.
	Get(key []byte) (base.Entry, bool)
	// Iter visits buffered point entries in sort-key order until fn
	// returns false.
	Iter(fn func(base.Entry) bool)
	// AppendRange appends the buffered point entries with start <= key <
	// end (nil = unbounded) to buf and returns it — the allocation-free
	// form of a bounded Iter, feeding scan construction's reusable scratch.
	AppendRange(start, end []byte, buf []base.Entry) []base.Entry
	// RangeTombstones returns the buffered range tombstones.
	RangeTombstones() []base.RangeTombstone
}

// frozenMem is an immutable point-in-time copy of a mutable buffer's
// contents: the point entries (sorted on S, possibly bounded to a key range)
// plus every buffered range tombstone. Entry structs are copied shallowly —
// the memtable never mutates the byte slices behind an inserted entry (an
// in-place replace installs a freshly cloned entry), so the frozen view
// stays stable while the live buffer moves on.
type frozenMem struct {
	entries []base.Entry
	rts     []base.RangeTombstone
}

// Get implements memView with the same shadowing rule as memtable.Get: a
// covering range tombstone newer than the point entry (or covering a key
// with no point entry) reads as a delete.
func (f *frozenMem) Get(key []byte) (base.Entry, bool) {
	i := sort.Search(len(f.entries), func(i int) bool {
		return base.CompareUserKeys(f.entries[i].Key.UserKey, key) >= 0
	})
	var e base.Entry
	found := false
	if i < len(f.entries) && base.CompareUserKeys(f.entries[i].Key.UserKey, key) == 0 {
		e, found = f.entries[i], true
	}
	for _, rt := range f.rts {
		if rt.Contains(key) && (!found || rt.Seq > e.Key.SeqNum()) {
			e, found = base.MakeEntry(key, rt.Seq, base.KindDelete, rt.DKey, nil), true
		}
	}
	return e, found
}

// Iter implements memView.
func (f *frozenMem) Iter(fn func(base.Entry) bool) {
	for _, e := range f.entries {
		if !fn(e) {
			return
		}
	}
}

// AppendRange implements memView. (Scan construction prefers slice, which
// shares the frozen entries without copying; this exists for interface
// completeness and for callers that need their own buffer.)
func (f *frozenMem) AppendRange(start, end []byte, buf []base.Entry) []base.Entry {
	return append(buf, f.slice(start, end)...)
}

// RangeTombstones implements memView.
func (f *frozenMem) RangeTombstones() []base.RangeTombstone { return f.rts }

// slice returns the frozen entries with start <= key < end without copying
// — scan construction over a frozen view feeds this straight to a
// SliceIter instead of re-copying the already-bounded, already-sorted data.
func (f *frozenMem) slice(start, end []byte) []base.Entry {
	lo := 0
	if start != nil {
		lo = sort.Search(len(f.entries), func(i int) bool {
			return base.CompareUserKeys(f.entries[i].Key.UserKey, start) >= 0
		})
	}
	hi := len(f.entries)
	if end != nil {
		hi = sort.Search(len(f.entries), func(i int) bool {
			return base.CompareUserKeys(f.entries[i].Key.UserKey, end) >= 0
		})
	}
	if hi < lo {
		hi = lo
	}
	return f.entries[lo:hi]
}

// Snapshot is a pinned point-in-time view of the engine: the mutable
// buffer's contents frozen by copy, the sealed flush-queue buffers (already
// immutable), and the current version with a reference held so no file it
// names is deleted while the snapshot lives. Get, Scan, NewScanIter, and
// SecondaryRangeScan on the snapshot observe exactly this state — later
// writes, flushes, and compactions are invisible — until Release drops the
// pin. Snapshots are cheap: one buffer copy (bounded by BufferBytes, or by
// the scan bounds for NewScanSnapshot) plus reference-count bumps; they
// trigger no I/O and block no writer or maintenance work. Obsolete sstables
// a snapshot still references are deleted when the last holder releases.
//
// Two caveats, both documented on the operations themselves: a snapshot
// taken mid-commit-group may see a batch the group has not fully published
// yet (the same property every read path here has), and
// SecondaryRangeDelete is a physical delete — it edits sealed buffers and
// sstable pages in place, so entries it removes disappear from existing
// snapshots too.
type Snapshot struct {
	views []memView
	v     *version
	// start/end record the bounds a NewScanSnapshot froze; reads outside
	// them are rejected. Both nil for a full NewSnapshot.
	start, end []byte
	released   atomic.Bool
}

// NewSnapshot pins the engine's current read state: every read served from
// the returned Snapshot sees the database exactly as of this call. The
// caller must Release it.
func (db *DB) NewSnapshot() (*Snapshot, error) { return db.newSnapshot(nil, nil) }

// NewScanSnapshot pins the current read state for scans over [start, end)
// only: the mutable buffer is frozen just for that range, so the copy cost
// tracks the range, not the buffer. Reads outside the bounds fail with
// ErrSnapshotOutOfBounds. The caller must Release it.
func (db *DB) NewScanSnapshot(start, end []byte) (*Snapshot, error) {
	return db.newSnapshot(start, end)
}

func (db *DB) newSnapshot(start, end []byte) (*Snapshot, error) {
	rs, err := db.acquireReadState()
	if err != nil {
		return nil, err
	}
	mts := rs.memtables()
	views := make([]memView, len(mts))
	// The head view is the mutable buffer — the only one still receiving
	// writes; freeze its entries and range tombstones atomically (one lock
	// acquisition, so a concurrent range-delete-then-put can't tear the
	// view). The sealed flush-queue buffers behind it are immutable and
	// are referenced directly.
	entries, rts := rs.mem.Capture(start, end)
	views[0] = &frozenMem{entries: entries, rts: rts}
	copy(views[1:], mts[1:])
	return &Snapshot{
		views: views,
		v:     rs.v, // transfer the readState's version reference
		start: append([]byte(nil), start...),
		end:   append([]byte(nil), end...),
	}, nil
}

// ErrSnapshotOutOfBounds is returned by reads outside the key range a
// NewScanSnapshot was taken for.
var ErrSnapshotOutOfBounds = errors.New("lsm: read outside snapshot bounds")

// checkBounds rejects scan ranges not contained in a bounded snapshot's
// frozen range.
func (s *Snapshot) checkBounds(start, end []byte) error {
	if len(s.start) > 0 && (start == nil || base.CompareUserKeys(start, s.start) < 0) {
		return ErrSnapshotOutOfBounds
	}
	if len(s.end) > 0 && (end == nil || base.CompareUserKeys(end, s.end) > 0) {
		return ErrSnapshotOutOfBounds
	}
	return nil
}

// checkKeyBounds rejects point reads outside a bounded snapshot's frozen
// range.
func (s *Snapshot) checkKeyBounds(key []byte) error {
	if len(s.start) > 0 && base.CompareUserKeys(key, s.start) < 0 {
		return ErrSnapshotOutOfBounds
	}
	if len(s.end) > 0 && base.CompareUserKeys(key, s.end) >= 0 {
		return ErrSnapshotOutOfBounds
	}
	return nil
}

// Get returns the value and delete key stored for key as of the snapshot,
// or ErrNotFound.
func (s *Snapshot) Get(key []byte) ([]byte, base.DeleteKey, error) {
	if s.released.Load() {
		return nil, 0, ErrSnapshotReleased
	}
	if err := s.checkKeyBounds(key); err != nil {
		return nil, 0, err
	}
	e, ok, err := getEntry(s.views, s.v, key)
	if err != nil {
		return nil, 0, err
	}
	if !ok || e.Key.Kind() != base.KindSet {
		return nil, 0, ErrNotFound
	}
	return append([]byte(nil), e.Value...), e.DKey, nil
}

// NewScanIter opens a streaming scan over [start, end) of the snapshot. The
// iterator holds its own reference on the pinned state, so closing it and
// releasing the snapshot are independent, in either order.
func (s *Snapshot) NewScanIter(start, end []byte) (*ScanIter, error) {
	if s.released.Load() {
		return nil, ErrSnapshotReleased
	}
	if start != nil && end != nil && base.CompareUserKeys(start, end) >= 0 {
		return emptyScanIter(), nil
	}
	if err := s.checkBounds(start, end); err != nil {
		return nil, err
	}
	v := s.v.ref()
	it := scanIterPool.Get().(*ScanIter)
	it.init(s.views, v, start, end, v)
	return it, nil
}

// Scan visits every live pair of the snapshot with start <= key < end in
// key order until fn returns false.
func (s *Snapshot) Scan(start, end []byte, fn func(key []byte, dkey base.DeleteKey, value []byte) bool) error {
	it, err := s.NewScanIter(start, end)
	if err != nil {
		return err
	}
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if !fn(e.Key.UserKey, e.DKey, e.Value) {
			break
		}
	}
	// Exactly one Close: ScanIters are pooled, and closing a recycled
	// iterator would tear down whatever scan reused it.
	return it.Close()
}

// SecondaryRangeScan returns the snapshot's live entries whose delete key
// falls in [lo, hi), with candidates verified against the same pinned state
// (never against later writes).
func (s *Snapshot) SecondaryRangeScan(lo, hi base.DeleteKey) ([]base.Entry, error) {
	if s.released.Load() {
		return nil, ErrSnapshotReleased
	}
	if len(s.start) > 0 || len(s.end) > 0 {
		return nil, ErrSnapshotOutOfBounds // bounded snapshots serve their scan range only
	}
	return secondaryRangeScanViews(s.views, s.v, lo, hi)
}

// Release drops the snapshot's pin, letting obsolete files it was holding
// be deleted. Idempotent; reads after Release fail with
// ErrSnapshotReleased.
func (s *Snapshot) Release() error {
	if s.released.Swap(true) {
		return nil
	}
	return s.v.unref()
}
