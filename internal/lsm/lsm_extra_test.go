package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/vfs"
	"lethe/internal/wal"
)

// TestWALPurgeHonorsDth verifies §4.1.5's WAL routine: a tombstone sitting
// in a quiet buffer (and its WAL segment) does not outlive Dth once
// maintenance runs.
func TestWALPurgeHonorsDth(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	fs := vfs.NewMem()
	opts := smallOpts(fs, clock)
	opts.Dth = 5 * time.Minute
	db := mustOpen(t, opts)
	defer db.Close()

	// A little data plus one delete, then silence: the buffer never fills.
	for i := 0; i < 10; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Delete(key(3)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(10 * time.Minute) // well past Dth
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	// The quiet buffer was force-flushed so the tombstone left the WAL...
	if got := db.wal.LiveAge(); got > opts.Dth {
		// ...and the new live segment is fresh.
		t.Fatalf("live WAL segment age %v exceeds Dth", got)
	}
	// ...and the delete persisted through the tree too.
	clock.Advance(10 * time.Minute)
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if age := db.MaxTombstoneAge(); age > opts.Dth {
		t.Fatalf("tombstone age %v exceeds Dth after maintenance", age)
	}
	if _, _, err := db.Get(key(3)); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected")
	}
}

// TestRecoveryTornWAL crashes mid-record and verifies every intact record
// recovers.
func TestRecoveryTornWAL(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	fs := vfs.NewMem()
	opts := smallOpts(fs, clock)
	db := mustOpen(t, opts)
	for i := 0; i < 20; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a torn tail: truncate the live WAL segment mid-record.
	segs, err := wal.ListSegments(fs, "wal")
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v err %v", segs, err)
	}
	live := segs[len(segs)-1]
	f, err := fs.Open(live)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	if err := f.Truncate(size - 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2 := mustOpen(t, opts)
	defer db2.Close()
	// All but (at most) the last record must be readable.
	missing := 0
	for i := 0; i < 20; i++ {
		if _, _, err := db2.Get(key(i)); errors.Is(err, ErrNotFound) {
			missing++
		}
	}
	if missing > 1 {
		t.Fatalf("%d records lost to a single torn tail", missing)
	}
}

// TestLetheSOAblation runs the ModeLetheSO ablation: TTL triggers with
// baseline file selection must still enforce Dth.
func TestLetheSOAblation(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.Mode = compaction.ModeLetheSO
	opts.Dth = 10 * time.Minute
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 400; i++ {
		db.Put(key(i), 0, value(i))
	}
	db.Maintain()
	for i := 0; i < 400; i += 10 {
		db.Delete(key(i))
	}
	db.Flush()
	for step := 0; step < 12; step++ {
		clock.Advance(time.Minute)
		if err := db.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	if age := db.MaxTombstoneAge(); age > opts.Dth {
		t.Fatalf("LetheSO: tombstone age %v exceeds Dth", age)
	}
	if db.Stats().CompactionsTTL == 0 {
		t.Fatal("LetheSO must fire TTL compactions")
	}
}

// TestTieringHonorsDth checks FADE under the tiered merge policy.
func TestTieringHonorsDth(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.Tiering = true
	opts.Dth = 10 * time.Minute
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 600; i++ {
		db.Put(key(i), 0, value(i))
	}
	for i := 0; i < 600; i += 6 {
		db.Delete(key(i))
	}
	db.Flush()
	for step := 0; step < 15; step++ {
		clock.Advance(time.Minute)
		if err := db.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	if age := db.MaxTombstoneAge(); age > opts.Dth {
		t.Fatalf("tiering: tombstone age %v exceeds Dth", age)
	}
	for i := 0; i < 600; i += 6 {
		if _, _, err := db.Get(key(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("tiering delete lost for key %d", i)
		}
	}
}

// TestTrivialMoves verifies no-overlap compactions skip I/O entirely.
func TestTrivialMoves(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	counting := vfs.NewCounting(vfs.NewMem(), 256)
	opts := smallOpts(counting, clock)
	opts.Mode = compaction.ModeBaseline
	opts.Dth = 0
	db := mustOpen(t, opts)
	defer db.Close()

	// Narrow key bands so compaction sources rarely overlap deep levels.
	for wave := 0; wave < 8; wave++ {
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("w%02d-%04d", wave, i))
			if err := db.Put(k, 0, value(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := db.Stats()
	if st.TrivialMoves == 0 {
		t.Fatalf("disjoint waves should produce trivial moves: %+v", st)
	}
	// Correctness after moves.
	for wave := 0; wave < 8; wave++ {
		for i := 0; i < 200; i += 37 {
			k := []byte(fmt.Sprintf("w%02d-%04d", wave, i))
			if v, _, err := db.Get(k); err != nil || !bytes.Equal(v, value(i)) {
				t.Fatalf("wave %d key %d: %q %v", wave, i, v, err)
			}
		}
	}
}

// TestStatsLevelAccounting cross-checks Stats against a full scan.
func TestStatsLevelAccounting(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	const n = 500
	for i := 0; i < n; i++ {
		db.Put(key(i), base.DeleteKey(i), value(i))
	}
	db.Flush()
	st := db.Stats()
	sum := 0
	for _, l := range st.Levels {
		sum += l.Entries
		if l.Files < l.Runs {
			t.Fatalf("level accounting: files %d < runs %d", l.Files, l.Runs)
		}
	}
	if sum != st.TreeEntries {
		t.Fatalf("level entries %d != tree entries %d", sum, st.TreeEntries)
	}
	// Scan agrees with TreeEntries (all unique, no tombstones).
	count := 0
	db.Scan(nil, nil, func([]byte, base.DeleteKey, []byte) bool { count++; return true })
	if count != n {
		t.Fatalf("scan %d != inserted %d", count, n)
	}
	if st.MaxCompactionBytes < 0 {
		t.Fatal("peak compaction must be non-negative")
	}
}

// TestSecondaryRangeScanAfterDrops verifies delete fences stay truthful
// after pages have been dropped and rewritten.
func TestSecondaryRangeScanAfterDrops(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.TilePages = 4
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 400; i++ {
		db.Put(key(i), base.DeleteKey(i), value(i))
	}
	if _, err := db.SecondaryRangeDelete(100, 200); err != nil {
		t.Fatal(err)
	}
	got, err := db.SecondaryRangeScan(0, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("post-drop scan: %d entries", len(got))
	}
	for _, e := range got {
		if e.DKey >= 100 && e.DKey < 200 {
			t.Fatalf("dropped range leaked: %v", e)
		}
	}
	// A second delete wave composes.
	if _, err := db.SecondaryRangeDelete(0, 100); err != nil {
		t.Fatal(err)
	}
	got, _ = db.SecondaryRangeScan(0, 400)
	if len(got) != 200 {
		t.Fatalf("after second wave: %d", len(got))
	}
}

// TestCompactionFailureRecovery injects a failure mid-compaction and
// verifies the engine surfaces it and remains readable.
func TestCompactionFailureRecovery(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	mem := vfs.NewMem()
	boom := errors.New("device error")
	armed := false
	inj := vfs.NewInject(mem, func(op vfs.Op, name string) error {
		if armed && op == vfs.OpCreate {
			return boom
		}
		return nil
	})
	opts := smallOpts(inj, clock)
	db := mustOpen(t, opts)

	for i := 0; i < 200; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	armed = true
	// Force pressure: either the flush or the compaction path must hit the
	// injected failure and surface it.
	var failed bool
	for i := 200; i < 400 && !failed; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("unexpected error: %v", err)
			}
			failed = true
		}
	}
	if !failed {
		if err := db.Flush(); err == nil || !errors.Is(err, boom) {
			t.Fatalf("expected injected failure, got %v", err)
		}
	}
	armed = false
	// Previously committed data still readable.
	for i := 0; i < 200; i += 17 {
		if _, _, err := db.Get(key(i)); err != nil {
			t.Fatalf("key %d lost after failed compaction: %v", i, err)
		}
	}
}

// TestGetAfterReopenWithDrops: page drops persist across restarts.
func TestDropsPersistAcrossReopen(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	fs := vfs.NewMem()
	opts := smallOpts(fs, clock)
	opts.TilePages = 4
	db := mustOpen(t, opts)
	for i := 0; i < 300; i++ {
		db.Put(key(i), base.DeleteKey(i), value(i))
	}
	if _, err := db.SecondaryRangeDelete(0, 150); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < 300; i++ {
		_, _, err := db2.Get(key(i))
		if i < 150 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("dropped key %d visible after reopen: %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("key %d lost: %v", i, err)
		}
	}
}

// TestConcurrentAccess hammers the engine from multiple goroutines; run
// with -race to validate the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	done := make(chan error, 8)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 300; i++ {
				k := key(g*1000 + i)
				if err := db.Put(k, base.DeleteKey(i), value(i)); err != nil {
					done <- err
					return
				}
				if i%7 == 0 {
					if err := db.Delete(k); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 300; i++ {
				_, _, err := db.Get(key(g*1000 + i))
				if err != nil && !errors.Is(err, ErrNotFound) {
					done <- err
					return
				}
				if i%50 == 0 {
					db.Scan(key(g*1000), key(g*1000+100),
						func([]byte, base.DeleteKey, []byte) bool { return true })
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Verify survivors.
	for g := 0; g < 4; g++ {
		for i := 0; i < 300; i++ {
			_, _, err := db.Get(key(g*1000 + i))
			if i%7 == 0 {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("g%d i%d: deleted key present: %v", g, i, err)
				}
			} else if err != nil {
				t.Fatalf("g%d i%d: %v", g, i, err)
			}
		}
	}
}
