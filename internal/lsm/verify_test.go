package lsm

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/sstable"
	"lethe/internal/vfs"
)

func TestVerifyTablesClean(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()
	for i := 0; i < 500; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	vr, err := db.VerifyTables()
	if err != nil {
		t.Fatal(err)
	}
	if vr.Files == 0 || vr.Blocks == 0 || vr.Entries == 0 {
		t.Fatalf("empty walk: %+v", vr)
	}
	if vr.CorruptFiles != 0 {
		t.Fatalf("clean database reported %d corrupt files", vr.CorruptFiles)
	}
}

func TestVerifyTablesDetectsCorruption(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	fs := vfs.NewMem()
	db := mustOpen(t, smallOpts(fs, clock))
	defer db.Close()
	for i := 0; i < 500; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the first data block of one live sstable.
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	flipped := false
	for _, name := range names {
		if len(name) < 4 || name[len(name)-4:] != ".sst" {
			continue
		}
		f, err := fs.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], 10); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0xff
		if _, err := f.WriteAt(b[:], 10); err != nil {
			t.Fatal(err)
		}
		f.Close()
		flipped = true
		break
	}
	if !flipped {
		t.Fatal("no sstable on disk to corrupt")
	}
	vr, err := db.VerifyTables()
	if !errors.Is(err, ErrCorruption) {
		t.Fatalf("VerifyTables over corrupt file: err=%v, want ErrCorruption", err)
	}
	if vr.CorruptFiles != 1 {
		t.Fatalf("CorruptFiles = %d, want 1", vr.CorruptFiles)
	}
}

// TestMixedFormatVersions is the upgrade-path regression: a database written
// entirely in the v1 page format reopens under the v2 default, serves every
// read correctly from the old files, and compactions write new files forward
// in v2 — both formats verifying clean side by side.
func TestMixedFormatVersions(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	fs := vfs.NewMem()
	opts := smallOpts(fs, clock)
	opts.SSTableFormat = sstable.FormatV1
	db := mustOpen(t, opts)
	const n = 400
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with the default (v2) write format over the v1 files.
	opts = smallOpts(fs, clock)
	db = mustOpen(t, opts)
	defer db.Close()
	sawV1 := false
	db.current.forEach(func(h *fileHandle) {
		if h.meta.Format < sstable.FormatV2 {
			sawV1 = true
		}
	})
	if !sawV1 {
		t.Fatal("expected surviving v1 files after reopen")
	}
	for i := 0; i < n; i++ {
		v, d, err := db.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) || d != base.DeleteKey(i) {
			t.Fatalf("get %s from v1 file: %q %d %v", key(i), v, d, err)
		}
	}
	if _, err := db.VerifyTables(); err != nil {
		t.Fatalf("verify over v1 files: %v", err)
	}

	// Push more data and compact everything: new output is v2.
	for i := n; i < 2*n; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	db.current.forEach(func(h *fileHandle) {
		if h.meta.Format != sstable.FormatV2 {
			t.Fatalf("post-compaction file %s still format %d", h.name, h.meta.Format)
		}
	})
	for i := 0; i < 2*n; i++ {
		v, _, err := db.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("get %s after upgrade compaction: %q %v", key(i), v, err)
		}
	}
	if vr, err := db.VerifyTables(); err != nil || vr.CorruptFiles != 0 {
		t.Fatalf("verify after upgrade: %+v %v", vr, err)
	}
}
