package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/manifest"
	"lethe/internal/vfs"
)

// runEntries drains a run's files in order, returning every entry.
func runEntries(t *testing.T, outputs run) []base.Entry {
	t.Helper()
	var out []base.Entry
	for _, h := range outputs {
		it := h.r.NewIter()
		for {
			e, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, e.Clone())
		}
		if err := it.Error(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSubcompactionPartitionEquivalence merges the same inputs once serially
// and once split into byte-balanced subranges, and requires identical entry
// sequences, identical tombstone placement, and exactly summing merge stats —
// the invariant that lets a fanned-out job install its concatenated outputs
// as if one pipeline had produced them.
func TestSubcompactionPartitionEquivalence(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	for i := 0; i < 500; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
		if i%5 == 4 {
			if err := db.Delete(key(i - 2)); err != nil {
				t.Fatal(err)
			}
		}
		clock.Advance(time.Second)
	}
	if err := db.RangeDelete(key(100), key(140)); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}

	var inputs run
	db.mu.Lock()
	db.current.forEach(func(h *fileHandle) { inputs = append(inputs, h) })
	db.mu.Unlock()
	if len(inputs) < 4 {
		t.Fatalf("setup built only %d files", len(inputs))
	}
	var rts []base.RangeTombstone
	for _, h := range inputs {
		rts = append(rts, h.r.RangeTombstones...)
	}

	serialOut, serialStats, err := db.mergeRange(inputs, rts, nil, nil, true, nil, db.opts.FS, false)
	if err != nil {
		t.Fatal(err)
	}

	const k = 4
	cuts := partitionInputs(inputs, k)
	if len(cuts) == 0 {
		t.Fatal("partitioner found no cuts in a multi-file tree")
	}
	var splitOut run
	var splitStats compaction.MergeStats
	for i := 0; i <= len(cuts); i++ {
		var start, end []byte
		if i > 0 {
			start = cuts[i-1]
		}
		if i < len(cuts) {
			end = cuts[i]
		}
		out, st, err := db.mergeRange(inputs, rts, start, end, true, nil, db.opts.FS, false)
		if err != nil {
			t.Fatal(err)
		}
		splitOut = append(splitOut, out...)
		splitStats.EntriesIn += st.EntriesIn
		splitStats.EntriesOut += st.EntriesOut
		splitStats.ObsoleteDropped += st.ObsoleteDropped
		splitStats.TombstonesDropped += st.TombstonesDropped
		splitStats.RangeCovered += st.RangeCovered
	}

	if splitStats != serialStats {
		t.Fatalf("stats diverge: serial %+v split %+v", serialStats, splitStats)
	}
	se, pe := runEntries(t, serialOut), runEntries(t, splitOut)
	if len(se) != len(pe) {
		t.Fatalf("entry counts diverge: serial %d split %d", len(se), len(pe))
	}
	for i := range se {
		a, b := se[i], pe[i]
		if !bytes.Equal(a.Key.UserKey, b.Key.UserKey) || a.Key.SeqNum() != b.Key.SeqNum() ||
			a.Key.Kind() != b.Key.Kind() || a.DKey != b.DKey || !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("entry %d diverges: serial %v split %v", i, a.Key, b.Key)
		}
	}
	var st, pt int
	for _, h := range serialOut {
		st += h.meta.NumPointTombstones
	}
	for _, h := range splitOut {
		pt += h.meta.NumPointTombstones
	}
	if st != pt {
		t.Fatalf("tombstone counts diverge: serial %d split %d", st, pt)
	}
}

// TestColdCompactionRemoteLinkUtilization asserts the compaction read path
// keeps a modeled remote link busy: a full-tree compaction whose inputs live
// mostly on the remote tier must stream them through per-tile read-ahead at
// >=80% of the configured link bandwidth, instead of paying a round trip per
// block.
func TestColdCompactionRemoteLinkUtilization(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock utilization bound; race instrumentation slows the CPU side several-fold")
	}
	clock := base.NewManualClock(time.Unix(1e6, 0))
	local := vfs.NewMem()
	const bw = 8 << 20 // 8 MiB/s modeled cold-tier link
	remote := vfs.NewRemote(vfs.NewMem(), vfs.RemoteConfig{
		Latency:              200 * time.Microsecond,
		BandwidthBytesPerSec: bw,
	})
	db := mustOpen(t, Options{
		FS:        local,
		RemoteFS:  remote,
		Placement: PlacementPolicy{LocalLevels: 1},
		Clock:     clock,
		SizeRatio: 4,
		PageSize:  4096,
		// Large blocks so each remote read moves enough payload to amortize
		// the per-request round trip (64KiB at 24MiB/s is ~2.7ms of transfer
		// against 0.2ms of latency).
		BlockSizeBytes: 64 << 10,
		BufferBytes:    64 << 10,
		FilePages:      64,
		TilePages:      4,
		Mode:           compaction.ModeLethe,
		Dth:            time.Hour,
		Seed:           1,
	})
	defer db.Close()

	// Large blocks so each remote read moves enough payload to amortize the
	// per-request round trip (64KiB at 8MiB/s is ~7.8ms of transfer against
	// 0.2ms of latency), and a slow enough link that the merge CPU between
	// reads hides entirely inside the read-ahead window.
	val := bytes.Repeat([]byte("v"), 1024)
	for i := 0; i < 2048; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	tier := db.Stats().Tier
	if tier.RemoteBytes < 1<<20 {
		t.Fatalf("setup: want >=1MiB on the remote tier, got %d", tier.RemoteBytes)
	}

	before := db.Stats().Tier
	start := time.Now()
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	after := db.Stats().Tier
	read := after.RemoteBytesRead - before.RemoteBytesRead
	if read < 1<<20 {
		t.Fatalf("cold compaction read only %d remote bytes", read)
	}
	// Outputs land on the local tier (placement repair migrates them later),
	// so the link carries only input reads; utilization is read traffic over
	// link capacity for the wall time of the job.
	util := float64(read) / (float64(bw) * elapsed.Seconds())
	if util < 0.80 {
		t.Fatalf("remote link utilization %.2f < 0.80 (%d bytes in %v)", util, read, elapsed)
	}
	t.Logf("cold compaction: %d remote bytes in %v, link utilization %.2f", read, elapsed, util)
}

// TestCrashMidSubcompactionSweepsPartialOutputs crashes a fanned-out
// compaction partway through its writes — sibling subcompactions have
// already produced output files the manifest will never reference — and
// verifies reopen (a) recovers every acknowledged write (source runs are
// never lost: the manifest still names them) and (b) sweeps the partial
// outputs, leaving no unreferenced sstable behind on either path.
func TestCrashMidSubcompactionSweepsPartialOutputs(t *testing.T) {
	sawOrphan := false
	for _, failAt := range []int64{2, 5, 10, 20, 40} {
		failAt := failAt
		t.Run(fmt.Sprintf("failAt-%d", failAt), func(t *testing.T) {
			mem := vfs.NewMem()
			boom := errors.New("crash")
			var armed atomic.Bool
			hook := vfs.FailAfter(failAt, boom)
			inj := vfs.NewInject(mem, func(op vfs.Op, name string) error {
				if !armed.Load() {
					return nil
				}
				// Write-path crash only: the merge can still read its inputs.
				if op == vfs.OpRead || op == vfs.OpOpen || op == vfs.OpList || op == vfs.OpClose {
					return nil
				}
				return hook(op, name)
			})
			opts := smallOpts(inj, base.RealClock{})
			opts.DisableWAL = false
			opts.CompactionWorkers = 4
			opts.Subcompactions = 4
			db := mustOpen(t, opts)

			const n = 400
			for i := 0; i < n; i++ {
				if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := db.Maintain(); err != nil {
				t.Fatal(err)
			}

			// Crash the fanned-out merge: FullTreeCompact in background mode
			// splits into subcompactions, and the injected failure kills one
			// pipeline while its siblings may already have written outputs.
			armed.Store(true)
			if err := db.FullTreeCompact(); err == nil {
				t.Logf("compaction survived %d writes; still verifying recovery", failAt)
			}
			armed.Store(false)
			_ = db.Close()

			// A crashed merge must leave stranded outputs in at least one of
			// the failure points, or this test exercises nothing.
			if orphanCount(t, mem) > 0 {
				sawOrphan = true
			}

			opts2 := smallOpts(mem, base.RealClock{})
			opts2.DisableWAL = false
			opts2.DisableBackgroundMaintenance = true
			db2, err := Open(opts2)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer db2.Close()
			for i := 0; i < n; i++ {
				v, _, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(v, value(i)) {
					t.Fatalf("acked key %d lost after crash: %q %v", i, v, err)
				}
			}
			// Every sstable still on the filesystem must be referenced by the
			// recovered version: the partial outputs were swept.
			referenced := make(map[string]bool)
			db2.mu.Lock()
			db2.current.forEach(func(h *fileHandle) { referenced[h.name] = true })
			db2.mu.Unlock()
			names, err := mem.List()
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range names {
				if _, ok := parseFileName(name); ok && !referenced[name] {
					t.Fatalf("unreferenced sstable %s survived reopen", name)
				}
			}
		})
	}
	if !sawOrphan {
		t.Fatal("no failure point stranded a partial output; the sweep was never exercised")
	}
}

// orphanCount counts sstables on fs that the committed manifest does not
// reference — the stranded outputs a crashed merge leaves behind.
func orphanCount(t *testing.T, fs vfs.FS) int {
	t.Helper()
	names, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	// A reopen would sweep the orphans being counted, so read the committed
	// manifest state directly.
	st, _, err := manifest.NewStore(fs, manifestName).Load()
	if err != nil {
		t.Fatal(err)
	}
	live := make(map[uint64]bool)
	for _, runs := range st.Levels {
		for _, nums := range runs {
			for _, num := range nums {
				live[num] = true
			}
		}
	}
	count := 0
	for _, name := range names {
		if num, ok := parseFileName(name); ok && !live[num] {
			count++
		}
	}
	return count
}

// TestBackgroundMigrationBatchesCopies drives a placement-repair wave in
// background mode with subcompaction slots available and verifies the wave
// completes correctly and accounts its bandwidth.
func TestBackgroundMigrationBatchesCopies(t *testing.T) {
	local, remoteDev := vfs.NewMem(), vfs.NewMem()
	remote := vfs.NewRemote(remoteDev, vfs.RemoteConfig{
		Latency:              100 * time.Microsecond,
		BandwidthBytesPerSec: 64 << 20,
	})
	opts := tieredOpts(local, remote, base.RealClock{}, 1)
	opts.CompactionWorkers = 4
	opts.Subcompactions = 4
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 600; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	// FullTreeCompact writes its output run locally regardless of placement;
	// the following maintenance pass must repair it onto the remote tier,
	// batching the copies under the borrowed slots.
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}

	db.mu.Lock()
	for l, runs := range db.current.levels {
		want := db.remoteLevel(l)
		for _, r := range runs {
			for _, h := range r {
				if h.remote != want {
					db.mu.Unlock()
					t.Fatalf("level %d file %06d on wrong tier after repair", l, h.meta.FileNum)
				}
			}
		}
	}
	db.mu.Unlock()

	s := db.Stats()
	if s.Tier.Migrations == 0 {
		t.Fatal("placement repair ran no migrations")
	}
	if s.Tier.MigratedBytes > 0 && s.Tier.MigrationTime <= 0 {
		t.Fatal("migration bytes moved but no migration time accounted")
	}
	if s.Tier.MigrationTime > 0 && s.Tier.MigrationMBps <= 0 {
		t.Fatal("migration time accounted but bandwidth not derived")
	}
}

// TestLocalOrphanSweptAtOpen plants a stray sstable (as a crashed merge
// would) and verifies Open removes it while leaving live files alone.
func TestLocalOrphanSweptAtOpen(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	mem := vfs.NewMem()
	opts := smallOpts(mem, clock)
	db := mustOpen(t, opts)
	for i := 0; i < 200; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	const orphan = "999999.sst"
	f, err := mem.Create(orphan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial compaction output")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	names, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if name == orphan {
			t.Fatal("orphan sstable survived reopen")
		}
	}
	for i := 0; i < 200; i++ {
		v, _, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("live key %d lost to the orphan sweep: %q %v", i, v, err)
		}
	}
}
