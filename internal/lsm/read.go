package lsm

import (
	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/sstable"
)

// ErrNotFound is returned by Get when the key does not exist (or has been
// deleted).
var ErrNotFound = errNotFound{}

type errNotFound struct{}

func (errNotFound) Error() string { return "lsm: key not found" }

// Get returns the current value and delete key for key. The search order is
// the paper's (§2, §4.2.5): memory buffers (mutable first, then the
// immutable-flush queue newest first), then disk levels shallow to deep,
// within a level newest run first; inside a file, tile fence pointers then
// per-page Bloom filters guard page reads. Range tombstones at any level
// shadow older entries.
//
// Get holds db.mu only long enough to snapshot the read state; the lookup
// itself runs outside the lock and is never blocked by a flush or compaction
// in flight.
func (db *DB) Get(key []byte) ([]byte, base.DeleteKey, error) {
	rs, err := db.acquireReadState()
	if err != nil {
		return nil, 0, err
	}
	defer rs.release()
	e, ok, err := getEntry(rs.memtables(), rs.v, key)
	if err != nil {
		return nil, 0, err
	}
	if !ok || e.Key.Kind() != base.KindSet {
		return nil, 0, ErrNotFound
	}
	return append([]byte(nil), e.Value...), e.DKey, nil
}

// getEntry performs the versioned lookup over a set of memory views and a
// pinned version, returning the newest entry for key (possibly a tombstone)
// with range-tombstone shadowing applied. Both the live read path (views
// straight off the readState) and Snapshot.Get (frozen views) funnel here.
func getEntry(views []memView, v *version, key []byte) (base.Entry, bool, error) {
	// maxRTSeq carries the newest covering range tombstone seen so far in
	// the descent. Per-key versions are depth-ordered (shallower = newer),
	// so a tombstone found at or above the entry's level decides.
	var maxRTSeq base.SeqNum
	// Each buffer resolves its own range tombstones; tombstones from newer
	// buffers shadow entries found in older ones.
	for _, mt := range views {
		if e, ok := mt.Get(key); ok {
			if e.Key.SeqNum() < maxRTSeq {
				return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
			}
			return e, true, nil
		}
		for _, rt := range mt.RangeTombstones() {
			if rt.Contains(key) && rt.Seq > maxRTSeq {
				maxRTSeq = rt.Seq
			}
		}
	}
	for _, runs := range v.levels {
		for _, r := range runs {
			for _, h := range r {
				if !handleCoversKey(h, key) {
					continue
				}
				for _, rt := range h.r.RangeTombstones {
					if rt.Contains(key) && rt.Seq > maxRTSeq {
						maxRTSeq = rt.Seq
					}
				}
				e, ok, err := h.r.Get(key)
				if err != nil {
					return base.Entry{}, false, err
				}
				if !ok {
					continue
				}
				if e.Key.SeqNum() < maxRTSeq {
					// A newer range tombstone shadows this entry — and, by
					// the depth invariant, every deeper version too.
					return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
				}
				return e, true, nil
			}
		}
	}
	if maxRTSeq > 0 {
		return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
	}
	return base.Entry{}, false, nil
}

// Scan calls fn for every live key-value pair with start <= key < end (nil
// end = unbounded), in ascending key order, until fn returns false. It
// merges the buffers and every run, applying tombstones, exactly as the
// paper's range lookup does ("sort-merging the qualifying key ranges across
// all runs in the tree"). Like Get, it snapshots the read state under a
// brief db.mu critical section and then streams outside the lock: the
// version pins every file, so compactions finishing mid-scan cannot pull
// pages out from under it.
func (db *DB) Scan(start, end []byte, fn func(key []byte, dkey base.DeleteKey, value []byte) bool) error {
	it, err := db.NewScanIter(start, end)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if !fn(e.Key.UserKey, e.DKey, e.Value) {
			break
		}
	}
	return it.Error()
}

// ScanIter is the pull-based form of Scan: a lazy, merged stream of the live
// entries in [start, end), tombstones already applied, yielding only KindSet
// entries in ascending key order. It pins a read state for its lifetime —
// callers must Close it to release the snapshot. Memory stays bounded
// regardless of range size: the in-memory buffers contribute a bounded copy
// of the scanned range, and each disk run streams through one open file at
// a time (runIter), so iterating the first K entries of an unbounded scan
// costs K entries' worth of pages plus one tile per run, not the range.
//
// ScanIter satisfies compaction.Iterator and compaction.Seeker, so higher
// layers (the sharded engine's cross-shard cursor) can feed ScanIters
// straight into the merging machinery and seek them.
type ScanIter struct {
	start, end []byte
	merged     *compaction.MergeIter
	onClose    func() error
	closed     bool
}

// emptyScanIter returns an exhausted iterator pinning nothing.
func emptyScanIter() *ScanIter {
	return &ScanIter{merged: compaction.NewMergeIter(compaction.MergeConfig{})}
}

// NewScanIter opens a streaming scan over [start, end). A degenerate range
// (start >= end, both bounds set) yields an empty, already-released iterator
// rather than pinning any state.
func (db *DB) NewScanIter(start, end []byte) (*ScanIter, error) {
	if start != nil && end != nil && base.CompareUserKeys(start, end) >= 0 {
		return emptyScanIter(), nil
	}
	rs, err := db.acquireReadState()
	if err != nil {
		return nil, err
	}
	return buildScanIter(rs.memtables(), rs.v, start, end, func() error { rs.release(); return nil }), nil
}

// buildScanIter assembles the merged stream: one bounded in-memory copy per
// buffer view (newest sources first) and one lazy runIter per disk run.
// onClose releases whatever pin keeps views and v alive; it is called
// exactly once, by Close.
func buildScanIter(views []memView, v *version, start, end []byte, onClose func() error) *ScanIter {
	var inputs []compaction.Iterator
	var rts []base.RangeTombstone

	// The buffers go first (newest sources first). Copying just the scanned
	// range keeps the cost proportional to the range, bounded above by the
	// buffer capacity; a frozen view is already an immutable sorted slice,
	// so it is sub-sliced in place rather than copied again.
	for _, mt := range views {
		if f, ok := mt.(*frozenMem); ok {
			inputs = append(inputs, compaction.NewSliceIter(f.slice(start, end)))
			rts = append(rts, f.rts...)
			continue
		}
		var memEntries []base.Entry
		mt.Iter(func(e base.Entry) bool {
			if start != nil && base.CompareUserKeys(e.Key.UserKey, start) < 0 {
				return true
			}
			if end != nil && base.CompareUserKeys(e.Key.UserKey, end) >= 0 {
				return false
			}
			memEntries = append(memEntries, e)
			return true
		})
		inputs = append(inputs, compaction.NewSliceIter(memEntries))
		rts = append(rts, mt.RangeTombstones()...)
	}

	// One lazy iterator per run: files within a run are S-ordered and
	// disjoint, so the run streams them one at a time — the merge holds
	// open one file per run, independent of how many files the range
	// covers. Range tombstones are collected from every file up front
	// (metadata only; a tombstone anchored outside the scanned point-key
	// range can still cover keys inside it).
	for _, runs := range v.levels {
		for _, r := range runs {
			for _, h := range r {
				rts = append(rts, h.r.RangeTombstones...)
			}
			inputs = append(inputs, &runIter{files: r, start: start, end: end, low: start})
		}
	}

	merged := compaction.NewMergeIter(compaction.MergeConfig{RangeTombstones: rts}, inputs...)
	return &ScanIter{start: start, end: end, merged: merged, onClose: onClose}
}

// Next returns the next live entry, skipping tombstones. It implements
// compaction.Iterator.
func (it *ScanIter) Next() (base.Entry, bool) {
	if it.closed {
		return base.Entry{}, false
	}
	for {
		e, ok := it.merged.Next()
		if !ok {
			return base.Entry{}, false
		}
		if e.Key.Kind() != base.KindSet {
			continue // point tombstone
		}
		return e, true
	}
}

// SeekGE repositions the scan so the next Next returns the first live entry
// with key >= key. Seeks are absolute within the scan bounds: the key is
// clamped to [start, end), so seeking backward past start restarts at start
// and seeking at or past end exhausts the iterator. It implements
// compaction.Seeker.
func (it *ScanIter) SeekGE(key []byte) {
	if it.closed {
		return
	}
	if it.start != nil && base.CompareUserKeys(key, it.start) < 0 {
		key = it.start
	}
	it.merged.SeekGE(key)
}

// Error reports the first error the merge encountered. It implements
// compaction.Iterator.
func (it *ScanIter) Error() error { return it.merged.Error() }

// Close releases the pinned read state. It is idempotent and returns the
// iterator's error state.
func (it *ScanIter) Close() error {
	if !it.closed {
		it.closed = true
		if it.onClose != nil {
			if err := it.onClose(); err != nil && it.merged.Error() == nil {
				return err
			}
		}
	}
	return it.merged.Error()
}

// runIter streams one sorted run lazily: files are S-ordered and disjoint,
// so it opens file i+1's block iterator only after file i is exhausted, and
// stops early at the end bound. At most one sstable iterator (one decoded
// tile) is live per run at any moment — the property that keeps unbounded
// scans' memory bounded.
type runIter struct {
	files      run
	start, end []byte
	// low is the current lower bound: start at construction, the seek key
	// after a SeekGE. Newly opened files position at low; files whose MaxS
	// precedes it are skipped without I/O.
	low  []byte
	idx  int // next file to consider opening
	cur  *sstable.Iter
	err  error
	done bool
}

// openNext advances to the next file overlapping [low, end), opening its
// iterator positioned at low. It returns false when the run is exhausted.
func (r *runIter) openNext() bool {
	for r.idx < len(r.files) {
		h := r.files[r.idx]
		r.idx++
		m := h.meta
		if r.low != nil && len(m.MaxS) > 0 && base.CompareUserKeys(m.MaxS, r.low) < 0 {
			continue // wholly before the bound: skip without I/O
		}
		if r.end != nil && len(m.MinS) > 0 && base.CompareUserKeys(m.MinS, r.end) >= 0 {
			// Files are S-ordered: everything later is out of range too.
			r.idx = len(r.files)
			return false
		}
		it := h.r.NewIter()
		if r.low != nil {
			it.SeekGE(r.low)
		}
		r.cur = it
		return true
	}
	return false
}

// Next implements compaction.Iterator.
func (r *runIter) Next() (base.Entry, bool) {
	for r.err == nil && !r.done {
		if r.cur == nil {
			if !r.openNext() {
				r.done = true
				return base.Entry{}, false
			}
		}
		e, ok := r.cur.Next()
		if !ok {
			if err := r.cur.Error(); err != nil {
				r.err = err
				return base.Entry{}, false
			}
			r.cur = nil
			continue
		}
		if r.end != nil && base.CompareUserKeys(e.Key.UserKey, r.end) >= 0 {
			// The run is sorted: nothing further qualifies.
			r.done = true
			r.cur = nil
			return base.Entry{}, false
		}
		return e, true
	}
	return base.Entry{}, false
}

// SeekGE implements compaction.Seeker: absolute repositioning, clamped below
// by the scan's start bound.
func (r *runIter) SeekGE(key []byte) {
	if r.err != nil {
		return
	}
	if r.start != nil && base.CompareUserKeys(key, r.start) < 0 {
		key = r.start
	}
	r.low = key
	r.idx = 0
	r.cur = nil
	r.done = r.end != nil && base.CompareUserKeys(key, r.end) >= 0
}

// Error implements compaction.Iterator.
func (r *runIter) Error() error { return r.err }

// SecondaryRangeScan returns the live entries whose delete key D falls in
// [lo, hi). KiWi serves it from the delete fences: only pages whose D fence
// overlaps the range are read (§4.2.5 "Secondary Range Lookups"), instead of
// scanning the whole tree. Candidates are verified against the primary read
// path of the same pinned state, so only versions current as of the scan's
// snapshot are returned. Like Get and Scan, it runs outside db.mu. The
// result order is unspecified at this layer; the public API sorts it.
func (db *DB) SecondaryRangeScan(lo, hi base.DeleteKey) ([]base.Entry, error) {
	rs, err := db.acquireReadState()
	if err != nil {
		return nil, err
	}
	defer rs.release()
	return secondaryRangeScanViews(rs.memtables(), rs.v, lo, hi)
}

// secondaryRangeScanViews is the scan core shared by the live path and
// Snapshot.SecondaryRangeScan: collect candidates from the views and the
// pinned version's delete fences, then verify each against the same state.
func secondaryRangeScanViews(views []memView, v *version, lo, hi base.DeleteKey) ([]base.Entry, error) {
	var candidates []base.Entry
	for _, mt := range views {
		mt.Iter(func(e base.Entry) bool {
			if e.Key.Kind() == base.KindSet && e.DKey >= lo && e.DKey < hi {
				candidates = append(candidates, e)
			}
			return true
		})
	}
	for _, runs := range v.levels {
		for _, r := range runs {
			for _, h := range r {
				m := h.r.MetaCopy()
				if m.MaxD < lo || m.MinD >= hi {
					continue
				}
				got, err := h.r.CollectByDeleteKey(lo, hi)
				if err != nil {
					return nil, err
				}
				candidates = append(candidates, got...)
			}
		}
	}

	// Verify candidates: only the newest live version of each key counts,
	// judged against the same pinned state the candidates came from.
	var out []base.Entry
	seen := map[string]bool{}
	for _, c := range candidates {
		k := string(c.Key.UserKey)
		if seen[k] {
			continue
		}
		seen[k] = true
		e, ok, err := getEntry(views, v, c.Key.UserKey)
		if err != nil {
			return nil, err
		}
		if !ok || e.Key.Kind() != base.KindSet {
			continue
		}
		if e.DKey >= lo && e.DKey < hi {
			out = append(out, base.MakeEntry(c.Key.UserKey, 0, base.KindSet, e.DKey,
				append([]byte(nil), e.Value...)))
		}
	}
	return out, nil
}
