package lsm

import (
	"lethe/internal/base"
	"lethe/internal/compaction"
)

// ErrNotFound is returned by Get when the key does not exist (or has been
// deleted).
var ErrNotFound = errNotFound{}

type errNotFound struct{}

func (errNotFound) Error() string { return "lsm: key not found" }

// Get returns the current value and delete key for key. The search order is
// the paper's (§2, §4.2.5): memory buffers (mutable first, then the
// immutable-flush queue newest first), then disk levels shallow to deep,
// within a level newest run first; inside a file, tile fence pointers then
// per-page Bloom filters guard page reads. Range tombstones at any level
// shadow older entries.
//
// Get holds db.mu only long enough to snapshot the read state; the lookup
// itself runs outside the lock and is never blocked by a flush or compaction
// in flight.
func (db *DB) Get(key []byte) ([]byte, base.DeleteKey, error) {
	rs, err := db.acquireReadState()
	if err != nil {
		return nil, 0, err
	}
	defer rs.release()
	e, ok, err := getEntry(rs, key)
	if err != nil {
		return nil, 0, err
	}
	if !ok || e.Key.Kind() != base.KindSet {
		return nil, 0, ErrNotFound
	}
	return append([]byte(nil), e.Value...), e.DKey, nil
}

// getEntry performs the versioned lookup, returning the newest entry for key
// (possibly a tombstone) with range-tombstone shadowing applied.
func getEntry(rs readState, key []byte) (base.Entry, bool, error) {
	// maxRTSeq carries the newest covering range tombstone seen so far in
	// the descent. Per-key versions are depth-ordered (shallower = newer),
	// so a tombstone found at or above the entry's level decides.
	var maxRTSeq base.SeqNum
	// Each buffer resolves its own range tombstones; tombstones from newer
	// buffers shadow entries found in older ones.
	for _, mt := range rs.memtables() {
		if e, ok := mt.Get(key); ok {
			if e.Key.SeqNum() < maxRTSeq {
				return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
			}
			return e, true, nil
		}
		for _, rt := range mt.RangeTombstones() {
			if rt.Contains(key) && rt.Seq > maxRTSeq {
				maxRTSeq = rt.Seq
			}
		}
	}
	for _, runs := range rs.v.levels {
		for _, r := range runs {
			for _, h := range r {
				if !handleCoversKey(h, key) {
					continue
				}
				for _, rt := range h.r.RangeTombstones {
					if rt.Contains(key) && rt.Seq > maxRTSeq {
						maxRTSeq = rt.Seq
					}
				}
				e, ok, err := h.r.Get(key)
				if err != nil {
					return base.Entry{}, false, err
				}
				if !ok {
					continue
				}
				if e.Key.SeqNum() < maxRTSeq {
					// A newer range tombstone shadows this entry — and, by
					// the depth invariant, every deeper version too.
					return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
				}
				return e, true, nil
			}
		}
	}
	if maxRTSeq > 0 {
		return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
	}
	return base.Entry{}, false, nil
}

// Scan calls fn for every live key-value pair with start <= key < end (nil
// end = unbounded), in ascending key order, until fn returns false. It
// merges the buffers and every run, applying tombstones, exactly as the
// paper's range lookup does ("sort-merging the qualifying key ranges across
// all runs in the tree"). Like Get, it snapshots the read state under a
// brief db.mu critical section and then streams outside the lock: the
// version pins every file, so compactions finishing mid-scan cannot pull
// pages out from under it.
func (db *DB) Scan(start, end []byte, fn func(key []byte, dkey base.DeleteKey, value []byte) bool) error {
	it, err := db.NewScanIter(start, end)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if !fn(e.Key.UserKey, e.DKey, e.Value) {
			break
		}
	}
	return it.Error()
}

// ScanIter is the pull-based form of Scan: a lazy, merged stream of the live
// entries in [start, end), tombstones already applied, yielding only KindSet
// entries in ascending key order. It pins a read state for its lifetime —
// callers must Close it to release the snapshot. It satisfies
// compaction.Iterator, so higher layers (the sharded engine's cross-shard
// merge) can feed ScanIters straight into the merging machinery.
type ScanIter struct {
	rs     readState
	pinned bool
	merged compaction.Iterator
	closed bool
}

// NewScanIter opens a streaming scan over [start, end). A degenerate range
// (start >= end, both bounds set) yields an empty, already-released iterator
// rather than pinning any state.
func (db *DB) NewScanIter(start, end []byte) (*ScanIter, error) {
	if start != nil && end != nil && base.CompareUserKeys(start, end) >= 0 {
		return &ScanIter{merged: compaction.NewSliceIter(nil)}, nil
	}
	rs, err := db.acquireReadState()
	if err != nil {
		return nil, err
	}

	var inputs []compaction.Iterator
	var rts []base.RangeTombstone

	// The buffers go first (newest sources first).
	for _, mt := range rs.memtables() {
		var memEntries []base.Entry
		mt.Iter(func(e base.Entry) bool {
			if start != nil && base.CompareUserKeys(e.Key.UserKey, start) < 0 {
				return true
			}
			if end != nil && base.CompareUserKeys(e.Key.UserKey, end) >= 0 {
				return false
			}
			memEntries = append(memEntries, e)
			return true
		})
		inputs = append(inputs, compaction.NewSliceIter(memEntries))
		rts = append(rts, mt.RangeTombstones()...)
	}

	for _, runs := range rs.v.levels {
		for _, r := range runs {
			for _, h := range r {
				rts = append(rts, h.r.RangeTombstones...)
				if end != nil && len(h.meta.MinS) > 0 && base.CompareUserKeys(h.meta.MinS, end) >= 0 {
					continue
				}
				if start != nil && len(h.meta.MaxS) > 0 && base.CompareUserKeys(h.meta.MaxS, start) < 0 {
					continue
				}
				it := h.r.NewIter()
				if start != nil {
					it.SeekGE(start)
				}
				inputs = append(inputs, &boundedIter{it: it, end: end})
			}
		}
	}

	merged := compaction.NewMergeIter(compaction.MergeConfig{RangeTombstones: rts}, inputs...)
	return &ScanIter{rs: rs, pinned: true, merged: merged}, nil
}

// Next returns the next live entry, skipping tombstones. It implements
// compaction.Iterator.
func (it *ScanIter) Next() (base.Entry, bool) {
	if it.closed {
		return base.Entry{}, false
	}
	for {
		e, ok := it.merged.Next()
		if !ok {
			return base.Entry{}, false
		}
		if e.Key.Kind() != base.KindSet {
			continue // point tombstone
		}
		return e, true
	}
}

// Error reports the first error the merge encountered. It implements
// compaction.Iterator.
func (it *ScanIter) Error() error { return it.merged.Error() }

// Close releases the pinned read state. It is idempotent and returns the
// iterator's error state.
func (it *ScanIter) Close() error {
	if !it.closed {
		it.closed = true
		if it.pinned {
			it.rs.release()
		}
	}
	return it.merged.Error()
}

// boundedIter adapts an sstable iterator to stop at an exclusive end bound.
type boundedIter struct {
	it interface {
		Next() (base.Entry, bool)
		Error() error
	}
	end  []byte
	done bool
}

// Next implements compaction.Iterator.
func (b *boundedIter) Next() (base.Entry, bool) {
	if b.done {
		return base.Entry{}, false
	}
	e, ok := b.it.Next()
	if !ok {
		b.done = true
		return base.Entry{}, false
	}
	if b.end != nil && base.CompareUserKeys(e.Key.UserKey, b.end) >= 0 {
		b.done = true
		return base.Entry{}, false
	}
	return e, true
}

// Error implements compaction.Iterator.
func (b *boundedIter) Error() error { return b.it.Error() }

// SecondaryRangeScan returns the live entries whose delete key D falls in
// [lo, hi). KiWi serves it from the delete fences: only pages whose D fence
// overlaps the range are read (§4.2.5 "Secondary Range Lookups"), instead of
// scanning the whole tree. Results are verified against the primary read
// path so only current, undeleted versions are returned. Like Get and Scan,
// it runs outside db.mu on a pinned snapshot.
func (db *DB) SecondaryRangeScan(lo, hi base.DeleteKey) ([]base.Entry, error) {
	rs, err := db.acquireReadState()
	if err != nil {
		return nil, err
	}
	var candidates []base.Entry
	for _, mt := range rs.memtables() {
		mt.Iter(func(e base.Entry) bool {
			if e.Key.Kind() == base.KindSet && e.DKey >= lo && e.DKey < hi {
				candidates = append(candidates, e)
			}
			return true
		})
	}
	for _, runs := range rs.v.levels {
		for _, r := range runs {
			for _, h := range r {
				m := h.r.MetaCopy()
				if m.MaxD < lo || m.MinD >= hi {
					continue
				}
				got, err := h.r.CollectByDeleteKey(lo, hi)
				if err != nil {
					rs.release()
					return nil, err
				}
				candidates = append(candidates, got...)
			}
		}
	}
	rs.release()

	// Verify candidates: only the newest live version of each key counts.
	var out []base.Entry
	seen := map[string]bool{}
	for _, c := range candidates {
		k := string(c.Key.UserKey)
		if seen[k] {
			continue
		}
		seen[k] = true
		value, dkey, err := db.Get(c.Key.UserKey)
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		if dkey >= lo && dkey < hi {
			out = append(out, base.MakeEntry(c.Key.UserKey, 0, base.KindSet, dkey, value))
		}
	}
	return out, nil
}
