package lsm

import (
	"sync"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/sstable"
)

// ErrNotFound is returned by Get when the key does not exist (or has been
// deleted).
var ErrNotFound = errNotFound{}

type errNotFound struct{}

func (errNotFound) Error() string { return "lsm: key not found" }

// Get returns the current value and delete key for key. The search order is
// the paper's (§2, §4.2.5): memory buffers (mutable first, then the
// immutable-flush queue newest first), then disk levels shallow to deep,
// within a level newest run first; inside a file, tile fence pointers then
// per-page Bloom filters guard page reads. Range tombstones at any level
// shadow older entries.
//
// Get rides the cached read handle (version.go): the probe stack is built
// once per read-state transition and shared by every Get until the next
// buffer seal or version install, so the steady-state lookup re-pins nothing
// and allocates only the returned value copy. The lookup itself runs outside
// db.mu and is never blocked by a flush or compaction in flight.
func (db *DB) Get(key []byte) ([]byte, base.DeleteKey, error) {
	rh, err := db.acquireReadHandle()
	if err != nil {
		return nil, 0, err
	}
	defer rh.release()
	e, ok, err := getEntry(rh.views, rh.v, key)
	if err != nil {
		return nil, 0, err
	}
	if !ok || e.Key.Kind() != base.KindSet {
		return nil, 0, ErrNotFound
	}
	// Copy-out boundary: e.Value may alias a decoded sstable page or a
	// memtable node; the caller gets bytes it owns.
	return append([]byte(nil), e.Value...), e.DKey, nil
}

// getEntry performs the versioned lookup over a set of memory views and a
// pinned version, returning the newest entry for key (possibly a tombstone)
// with range-tombstone shadowing applied. Both the live read path (views off
// the cached read handle) and Snapshot.Get (frozen views) funnel here.
//
// The returned entry is a view: its bytes may alias a memtable node or a
// decoded sstable page and stay valid only as long as the pinned state is
// held. Callers that hand data across an API boundary copy there.
func getEntry(views []memView, v *version, key []byte) (base.Entry, bool, error) {
	// maxRTSeq carries the newest covering range tombstone seen so far in
	// the descent. Per-key versions are depth-ordered (shallower = newer),
	// so a tombstone found at or above the entry's level decides.
	var maxRTSeq base.SeqNum
	// Each buffer resolves its own range tombstones; tombstones from newer
	// buffers shadow entries found in older ones.
	for _, mt := range views {
		if e, ok := mt.Get(key); ok {
			if e.Key.SeqNum() < maxRTSeq {
				return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
			}
			return e, true, nil
		}
		for _, rt := range mt.RangeTombstones() {
			if rt.Contains(key) && rt.Seq > maxRTSeq {
				maxRTSeq = rt.Seq
			}
		}
	}
	for _, runs := range v.levels {
		for _, r := range runs {
			for _, h := range r {
				if !handleCoversKey(h, key) {
					continue
				}
				for _, rt := range h.r.RangeTombstones {
					if rt.Contains(key) && rt.Seq > maxRTSeq {
						maxRTSeq = rt.Seq
					}
				}
				e, ok, err := h.r.Get(key)
				if err != nil {
					return base.Entry{}, false, err
				}
				if !ok {
					continue
				}
				if e.Key.SeqNum() < maxRTSeq {
					// A newer range tombstone shadows this entry — and, by
					// the depth invariant, every deeper version too.
					return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
				}
				return e, true, nil
			}
		}
	}
	if maxRTSeq > 0 {
		return base.MakeEntry(key, maxRTSeq, base.KindDelete, 0, nil), true, nil
	}
	return base.Entry{}, false, nil
}

// Scan calls fn for every live key-value pair with start <= key < end (nil
// end = unbounded), in ascending key order, until fn returns false. It
// merges the buffers and every run, applying tombstones, exactly as the
// paper's range lookup does ("sort-merging the qualifying key ranges across
// all runs in the tree"). Like Get, it snapshots the read state under a
// brief db.mu critical section and then streams outside the lock: the
// version pins every file, so compactions finishing mid-scan cannot pull
// pages out from under it.
func (db *DB) Scan(start, end []byte, fn func(key []byte, dkey base.DeleteKey, value []byte) bool) error {
	it, err := db.NewScanIter(start, end)
	if err != nil {
		return err
	}
	defer it.Close()
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if !fn(e.Key.UserKey, e.DKey, e.Value) {
			break
		}
	}
	return it.Error()
}

// ScanIter is the pull-based form of Scan: a lazy, merged stream of the live
// entries in [start, end), tombstones already applied, yielding only KindSet
// entries in ascending key order. It pins a read state for its lifetime —
// callers must Close it to release the snapshot. Memory stays bounded
// regardless of range size: the in-memory buffers contribute a bounded copy
// of the scanned range, and each disk run streams through one open file at
// a time (runIter), so iterating the first K entries of an unbounded scan
// costs K entries' worth of pages plus one tile per run, not the range.
//
// ScanIters are pooled, with Close as the recycle point: the merge heap, the
// per-run frames (each embedding a reusable sstable iterator), the bounded
// buffer copies, and the tombstone scratch all survive into the next scan,
// so opening and draining a scan in the steady state allocates almost
// nothing. Consequently a ScanIter must be Closed exactly once and never
// used afterwards; entries it returned are views whose bytes remain valid
// (they alias pinned pages or memtable nodes), but the iterator itself is
// recycled.
//
// ScanIter satisfies compaction.Iterator and compaction.Seeker, so higher
// layers (the sharded engine's cross-shard cursor) can feed ScanIters
// straight into the merging machinery and seek them.
type ScanIter struct {
	start, end []byte
	merged     compaction.MergeIter
	// pin is the version reference Close releases (nil for an empty
	// iterator). The views need no separate pin: memtables are reachable
	// until scanning ends, and frozen views belong to a Snapshot with its
	// own lifetime.
	pin    *version
	closed bool
	err    error // result of Close, sticky for late Error calls

	// Reusable construction state. Frames are index-addressed so the
	// pointers handed to the merge stay stable; capacities survive
	// recycling through scanIterPool.
	views      []memView
	inputs     []compaction.Iterator
	rts        []base.RangeTombstone
	sliceIters []compaction.SliceIter
	runIters   []runIter
	memScratch [][]base.Entry
}

var scanIterPool = sync.Pool{New: func() interface{} { return new(ScanIter) }}

// emptyScanIter returns an exhausted iterator pinning nothing.
func emptyScanIter() *ScanIter {
	it := scanIterPool.Get().(*ScanIter)
	it.init(nil, nil, nil, nil, nil)
	return it
}

// NewScanIter opens a streaming scan over [start, end). A degenerate range
// (start >= end, both bounds set) yields an empty, already-released iterator
// rather than pinning any state.
func (db *DB) NewScanIter(start, end []byte) (*ScanIter, error) {
	if start != nil && end != nil && base.CompareUserKeys(start, end) >= 0 {
		return emptyScanIter(), nil
	}
	it := scanIterPool.Get().(*ScanIter)
	views, v, err := db.acquireReadViews(it.views)
	if err != nil {
		scanIterPool.Put(it)
		return nil, err
	}
	it.views = views
	it.init(views, v, start, end, v)
	return it, nil
}

// init (re)builds the merged stream in place: one bounded in-memory copy per
// buffer view (newest sources first) and one lazy runIter per disk run. pin
// is the version reference Close releases (exactly once). A nil v builds an
// empty, exhausted iterator.
func (it *ScanIter) init(views []memView, v *version, start, end []byte, pin *version) {
	it.start, it.end = start, end
	it.pin = pin
	it.closed = false
	it.err = nil
	it.inputs = it.inputs[:0]
	it.rts = it.rts[:0]

	nViews := len(views)
	if cap(it.sliceIters) < nViews {
		it.sliceIters = make([]compaction.SliceIter, nViews)
	} else {
		it.sliceIters = it.sliceIters[:nViews]
	}
	if cap(it.memScratch) < nViews {
		grown := make([][]base.Entry, nViews)
		copy(grown, it.memScratch[:cap(it.memScratch)])
		it.memScratch = grown
	} else {
		it.memScratch = it.memScratch[:nViews]
	}

	// The buffers go first (newest sources first). Copying just the scanned
	// range keeps the cost proportional to the range, bounded above by the
	// buffer capacity; a frozen view is already an immutable sorted slice,
	// so it is sub-sliced in place rather than copied again.
	for i, mt := range views {
		si := &it.sliceIters[i]
		if f, ok := mt.(*frozenMem); ok {
			si.Reset(f.slice(start, end))
			it.rts = append(it.rts, f.rts...)
		} else {
			buf := mt.AppendRange(start, end, it.memScratch[i][:0])
			it.memScratch[i] = buf
			si.Reset(buf)
			it.rts = append(it.rts, mt.RangeTombstones()...)
		}
		it.inputs = append(it.inputs, si)
	}

	// One lazy iterator per run: files within a run are S-ordered and
	// disjoint, so the run streams them one at a time — the merge holds
	// open one file per run, independent of how many files the range
	// covers. Range tombstones are collected from every file up front
	// (metadata only; a tombstone anchored outside the scanned point-key
	// range can still cover keys inside it).
	nRuns := 0
	if v != nil {
		for _, runs := range v.levels {
			nRuns += len(runs)
		}
	}
	if cap(it.runIters) < nRuns {
		it.runIters = make([]runIter, nRuns)
	} else {
		it.runIters = it.runIters[:nRuns]
	}
	if v != nil {
		ri := 0
		for _, runs := range v.levels {
			for _, r := range runs {
				for _, h := range r {
					it.rts = append(it.rts, h.r.RangeTombstones...)
				}
				f := &it.runIters[ri]
				ri++
				f.init(r, start, end)
				it.inputs = append(it.inputs, f)
			}
		}
	}

	it.merged.Init(compaction.MergeConfig{RangeTombstones: it.rts}, it.inputs)
}

// Next returns the next live entry, skipping tombstones. It implements
// compaction.Iterator.
func (it *ScanIter) Next() (base.Entry, bool) {
	if it.closed {
		return base.Entry{}, false
	}
	for {
		e, ok := it.merged.Next()
		if !ok {
			return base.Entry{}, false
		}
		if e.Key.Kind() != base.KindSet {
			continue // point tombstone
		}
		return e, true
	}
}

// SeekGE repositions the scan so the next Next returns the first live entry
// with key >= key. Seeks are absolute within the scan bounds: the key is
// clamped to [start, end), so seeking backward past start restarts at start
// and seeking at or past end exhausts the iterator. It implements
// compaction.Seeker.
func (it *ScanIter) SeekGE(key []byte) {
	if it.closed {
		return
	}
	if it.start != nil && base.CompareUserKeys(key, it.start) < 0 {
		key = it.start
	}
	it.merged.SeekGE(key)
}

// Error reports the first error the merge encountered. It implements
// compaction.Iterator.
func (it *ScanIter) Error() error {
	if it.closed {
		return it.err
	}
	return it.merged.Error()
}

// Close releases the pinned read state and recycles the iterator into the
// pool, returning the scan's error state. It must be called exactly once:
// after Close the iterator may already be serving another scan.
func (it *ScanIter) Close() error {
	if it.closed {
		return it.err
	}
	it.closed = true
	err := it.merged.Error()
	if it.pin != nil {
		if uerr := it.pin.unref(); uerr != nil && err == nil {
			err = uerr
		}
		it.pin = nil
	}
	it.err = err
	it.recycle()
	return err
}

// recycle drops every reference the scan accumulated — pinned entries,
// frames, views — keeping the allocated capacity, and returns the iterator
// to the pool.
func (it *ScanIter) recycle() {
	it.merged.Reset()
	for i := range it.inputs {
		it.inputs[i] = nil
	}
	it.inputs = it.inputs[:0]
	for i := range it.rts {
		it.rts[i] = base.RangeTombstone{}
	}
	it.rts = it.rts[:0]
	for i := range it.sliceIters {
		it.sliceIters[i].Reset(nil)
	}
	for i := range it.runIters {
		it.runIters[i].release()
	}
	for i := range it.memScratch {
		sc := it.memScratch[i]
		for j := range sc {
			sc[j] = base.Entry{}
		}
		it.memScratch[i] = sc[:0]
	}
	for i := range it.views {
		it.views[i] = nil
	}
	it.views = it.views[:0]
	it.start, it.end = nil, nil
	scanIterPool.Put(it)
}

// runIter streams one sorted run lazily: files are S-ordered and disjoint,
// so it opens file i+1's block iterator only after file i is exhausted, and
// stops early at the end bound. At most one sstable iterator (one decoded
// tile) is live per run at any moment — the property that keeps unbounded
// scans' memory bounded. The frame is reused across the run's files (and,
// through the ScanIter pool, across scans): opening the next file Resets it
// in place instead of allocating a fresh iterator.
type runIter struct {
	files      run
	start, end []byte
	// low is the current lower bound: start at construction, the seek key
	// after a SeekGE. Newly opened files position at low; files whose MaxS
	// precedes it are skipped without I/O.
	low  []byte
	idx  int // next file to consider opening
	cur  *sstable.Iter
	err  error
	done bool
	// frame is the reusable sstable iterator backing cur.
	frame sstable.Iter
}

// init points the iterator at a run, retaining the frame's buffer capacity.
func (r *runIter) init(files run, start, end []byte) {
	r.files = files
	r.start, r.end = start, end
	r.low = start
	r.idx = 0
	r.cur = nil
	r.err = nil
	r.done = false
}

// release drops every reference so a pooled frame does not pin files or
// decoded pages between scans.
func (r *runIter) release() {
	r.files = nil
	r.start, r.end, r.low = nil, nil, nil
	r.idx = 0
	r.cur = nil
	r.err = nil
	r.done = false
	r.frame.Reset(nil)
}

// openNext advances to the next file overlapping [low, end), re-targeting
// the reusable frame at it positioned at low. It returns false when the run
// is exhausted.
func (r *runIter) openNext() bool {
	for r.idx < len(r.files) {
		h := r.files[r.idx]
		r.idx++
		m := h.meta
		if r.low != nil && len(m.MaxS) > 0 && base.CompareUserKeys(m.MaxS, r.low) < 0 {
			continue // wholly before the bound: skip without I/O
		}
		if r.end != nil && len(m.MinS) > 0 && base.CompareUserKeys(m.MinS, r.end) >= 0 {
			// Files are S-ordered: everything later is out of range too.
			r.idx = len(r.files)
			return false
		}
		r.frame.Reset(h.r)
		if r.low != nil {
			r.frame.SeekGE(r.low)
		}
		r.cur = &r.frame
		return true
	}
	return false
}

// Next implements compaction.Iterator.
func (r *runIter) Next() (base.Entry, bool) {
	for r.err == nil && !r.done {
		if r.cur == nil {
			if !r.openNext() {
				r.done = true
				return base.Entry{}, false
			}
		}
		e, ok := r.cur.Next()
		if !ok {
			if err := r.cur.Error(); err != nil {
				r.err = err
				return base.Entry{}, false
			}
			r.cur = nil
			continue
		}
		if r.end != nil && base.CompareUserKeys(e.Key.UserKey, r.end) >= 0 {
			// The run is sorted: nothing further qualifies.
			r.done = true
			r.cur = nil
			return base.Entry{}, false
		}
		return e, true
	}
	return base.Entry{}, false
}

// SeekGE implements compaction.Seeker: absolute repositioning, clamped below
// by the scan's start bound.
func (r *runIter) SeekGE(key []byte) {
	if r.err != nil {
		return
	}
	if r.start != nil && base.CompareUserKeys(key, r.start) < 0 {
		key = r.start
	}
	r.low = key
	r.idx = 0
	r.cur = nil
	r.done = r.end != nil && base.CompareUserKeys(key, r.end) >= 0
}

// Error implements compaction.Iterator.
func (r *runIter) Error() error { return r.err }

// SecondaryRangeScan returns the live entries whose delete key D falls in
// [lo, hi). KiWi serves it from the delete fences: only pages whose D fence
// overlaps the range are read (§4.2.5 "Secondary Range Lookups"), instead of
// scanning the whole tree. Candidates are verified against the primary read
// path of the same pinned state, so only versions current as of the scan's
// snapshot are returned. Like Get and Scan, it runs outside db.mu. The
// result order is unspecified at this layer; the public API sorts it.
func (db *DB) SecondaryRangeScan(lo, hi base.DeleteKey) ([]base.Entry, error) {
	rs, err := db.acquireReadState()
	if err != nil {
		return nil, err
	}
	defer rs.release()
	return secondaryRangeScanViews(rs.memtables(), rs.v, lo, hi)
}

// secondaryRangeScanViews is the scan core shared by the live path and
// Snapshot.SecondaryRangeScan: collect candidates from the views and the
// pinned version's delete fences, then verify each against the same state.
func secondaryRangeScanViews(views []memView, v *version, lo, hi base.DeleteKey) ([]base.Entry, error) {
	var candidates []base.Entry
	for _, mt := range views {
		mt.Iter(func(e base.Entry) bool {
			if e.Key.Kind() == base.KindSet && e.DKey >= lo && e.DKey < hi {
				candidates = append(candidates, e)
			}
			return true
		})
	}
	for _, runs := range v.levels {
		for _, r := range runs {
			for _, h := range r {
				m := h.r.MetaCopy()
				if m.MaxD < lo || m.MinD >= hi {
					continue
				}
				got, err := h.r.CollectByDeleteKey(lo, hi)
				if err != nil {
					return nil, err
				}
				candidates = append(candidates, got...)
			}
		}
	}

	// Verify candidates: only the newest live version of each key counts,
	// judged against the same pinned state the candidates came from.
	var out []base.Entry
	seen := map[string]bool{}
	for _, c := range candidates {
		k := string(c.Key.UserKey)
		if seen[k] {
			continue
		}
		seen[k] = true
		e, ok, err := getEntry(views, v, c.Key.UserKey)
		if err != nil {
			return nil, err
		}
		if !ok || e.Key.Kind() != base.KindSet {
			continue
		}
		if e.DKey >= lo && e.DKey < hi {
			out = append(out, base.MakeEntry(c.Key.UserKey, 0, base.KindSet, e.DKey,
				append([]byte(nil), e.Value...)))
		}
	}
	return out, nil
}
