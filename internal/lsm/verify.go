package lsm

import (
	"errors"
	"fmt"

	"lethe/internal/sstable"
)

// VerifyResult totals an integrity walk over the live sstables of one engine
// instance.
type VerifyResult struct {
	// Files is the number of live sstables visited.
	Files int
	// Blocks and DroppedBlocks count the data blocks checked and the
	// secondary-range-delete drops skipped.
	Blocks        int
	DroppedBlocks int
	// Entries is the total number of entries decoded and order-checked.
	Entries int
	// Bytes is the total sealed block bytes whose checksums were verified.
	Bytes int64
	// CorruptFiles counts files that failed verification; the joined error
	// returned alongside names each one.
	CorruptFiles int
}

// VerifyTables walks every live sstable on a pinned snapshot and verifies it
// end to end: footer and metadata checksums, per-block CRCs, index/fence
// ordering, and full block decodes (see sstable.VerifyIntegrity). It keeps
// going after a corrupt file so one bad table doesn't mask others; the
// returned error joins one entry per corrupt file. Reads proceed concurrently
// — verification takes no engine-wide lock.
func (db *DB) VerifyTables() (VerifyResult, error) {
	rs, err := db.acquireReadState()
	if err != nil {
		return VerifyResult{}, err
	}
	defer rs.release()

	var vr VerifyResult
	var errs []error
	for _, runs := range rs.v.levels {
		for _, r := range runs {
			for _, h := range r {
				vr.Files++
				vs, err := h.r.VerifyIntegrity()
				vr.Blocks += vs.Blocks
				vr.DroppedBlocks += vs.DroppedBlocks
				vr.Entries += vs.Entries
				vr.Bytes += vs.Bytes
				if err != nil {
					vr.CorruptFiles++
					errs = append(errs, fmt.Errorf("%s: %w", h.name, err))
				}
			}
		}
	}
	return vr, errors.Join(errs...)
}

// ErrCorruption is the typed error every integrity failure wraps.
var ErrCorruption = sstable.ErrCorruption
