package lsm

import (
	"sync/atomic"

	"lethe/internal/memtable"
	"lethe/internal/sstable"
	"lethe/internal/vfs"
)

// fileHandle pairs a file's metadata with an open reader and a reference
// count. The reader's Meta pointer is shared so secondary range deletes keep
// both views consistent.
//
// Lifecycle: every version containing the handle holds one reference. When
// the last referencing version is released the reader is closed, and — if a
// compaction has marked the file obsolete — the file is removed from the
// filesystem. Readers therefore never observe a file disappearing under
// them: a version they hold pins every file it references.
type fileHandle struct {
	meta *sstable.Meta
	r    *sstable.Reader

	refs     atomic.Int32
	obsolete atomic.Bool
	// fs is the filesystem the file physically lives on — the concrete
	// tier, so an obsolete remote file is removed from the remote device.
	fs   vfs.FS
	name string
	// remote records the file's storage tier. It is fixed at handle
	// creation: a migration across the tier boundary installs a new handle
	// (over a copied file) rather than mutating this one.
	remote bool
}

func (h *fileHandle) ref() { h.refs.Add(1) }

// unref drops one reference, closing the reader (and deleting an obsolete
// file) when the count drains. It returns the first error encountered;
// callers on read paths may ignore it (a leaked file is benign, and the
// in-memory filesystems the experiments run on do not fail here).
func (h *fileHandle) unref() error {
	n := h.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		panic("lsm: fileHandle refcount underflow")
	}
	err := h.r.Close()
	if h.obsolete.Load() {
		if rmErr := h.fs.Remove(h.name); rmErr != nil && err == nil {
			err = rmErr
		}
	}
	return err
}

// run is a sequence of S-ordered files forming one sorted run.
type run []*fileHandle

// version is an immutable snapshot of the tree's disk structure: the runs of
// every level plus the file handles backing them. Readers acquire the
// current version under a brief db.mu critical section and then serve
// lookups and scans entirely outside the lock; flushes and compactions
// install new versions atomically.
type version struct {
	// levels[l] holds the runs of disk level l+1 (paper numbering), newest
	// run first.
	levels [][]run
	refs   atomic.Int32
}

// ref acquires one reference and returns v for chaining.
func (v *version) ref() *version {
	v.refs.Add(1)
	return v
}

// unref releases one reference, releasing every file handle when the version
// is no longer held by anyone.
func (v *version) unref() error {
	n := v.refs.Add(-1)
	if n > 0 {
		return nil
	}
	if n < 0 {
		panic("lsm: version refcount underflow")
	}
	var first error
	for _, runs := range v.levels {
		for _, r := range runs {
			for _, h := range r {
				if err := h.unref(); err != nil && first == nil {
					first = err
				}
			}
		}
	}
	return first
}

// forEach calls fn for every file handle in the version.
func (v *version) forEach(fn func(h *fileHandle)) {
	for _, runs := range v.levels {
		for _, r := range runs {
			for _, h := range r {
				fn(h)
			}
		}
	}
}

// cloneLevels returns level and run slices safe to mutate without touching
// v. The fileHandle pointers themselves are shared.
func (v *version) cloneLevels() [][]run {
	out := make([][]run, len(v.levels))
	for l, runs := range v.levels {
		out[l] = make([]run, len(runs))
		for i, r := range runs {
			out[l][i] = append(run(nil), r...)
		}
	}
	return out
}

// withoutFiles returns the levels of v minus the files in drop, with runs
// that become empty removed.
func (v *version) withoutFiles(drop map[uint64]bool) [][]run {
	out := make([][]run, len(v.levels))
	for l, runs := range v.levels {
		var kept []run
		for _, r := range runs {
			var keptRun run
			for _, h := range r {
				if !drop[h.meta.FileNum] {
					keptRun = append(keptRun, h)
				}
			}
			if len(keptRun) > 0 {
				kept = append(kept, keptRun)
			}
		}
		out[l] = kept
	}
	return out
}

// installVersionLocked makes v the current version, transferring handle
// references: every handle in v is referenced, then the previous version is
// released (so handles present in both keep a stable count). The cached
// point-lookup read handle is retired — it pins the outgoing version — and
// is rebuilt lazily by the next Get. Callers hold db.mu.
func (db *DB) installVersionLocked(v *version) {
	v.refs.Store(1)
	v.forEach(func(h *fileHandle) { h.ref() })
	db.invalidateReadHandleLocked()
	old := db.current
	db.current = v
	if old != nil {
		// Ignore close errors on drained obsolete files: the manifest no
		// longer references them and a leaked file is benign.
		_ = old.unref()
	}
}

// readHandle is the cached lookup stack point Gets ride: the memory views in
// probe order plus the pinned version, built once per read-state transition
// instead of once per Get. The DB holds one reference for as long as the
// handle is current; each in-flight Get holds one more, so a handle retired
// mid-lookup stays valid until the lookup finishes.
type readHandle struct {
	views []memView
	v     *version
	refs  atomic.Int32
}

// release drops one reference, unpinning the version when the count drains.
func (rh *readHandle) release() {
	n := rh.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("lsm: readHandle refcount underflow")
	}
	_ = rh.v.unref()
}

// acquireReadHandle returns the cached read handle with a reference held,
// building it under db.mu if no current one exists. The caller must release
// it. Unlike acquireReadState, the steady state allocates nothing: every Get
// between two read-state transitions (buffer seal, version install) shares
// one handle.
func (db *DB) acquireReadHandle() (*readHandle, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	rh := db.rh
	if rh == nil {
		rh = &readHandle{v: db.current.ref()}
		rh.views = append(rh.views, db.mem)
		for i := len(db.imm) - 1; i >= 0; i-- {
			rh.views = append(rh.views, db.imm[i].mem)
		}
		rh.refs.Store(1) // the DB's own reference
		db.rh = rh
	}
	rh.refs.Add(1)
	return rh, nil
}

// invalidateReadHandleLocked retires the cached read handle after a
// read-state transition, dropping the DB's reference. In-flight Gets keep
// theirs; the next Get rebuilds. Callers hold db.mu.
func (db *DB) invalidateReadHandleLocked() {
	if rh := db.rh; rh != nil {
		db.rh = nil
		rh.release()
	}
}

// acquireReadViews appends the memory views in probe order (mutable buffer
// first, then sealed buffers newest first) to buf and pins the current
// version — the scan path's read-state capture, reusing the caller's scratch
// so steady-state scans allocate nothing here.
func (db *DB) acquireReadViews(buf []memView) ([]memView, *version, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, nil, ErrClosed
	}
	buf = append(buf[:0], db.mem)
	for i := len(db.imm) - 1; i >= 0; i-- {
		buf = append(buf, db.imm[i].mem)
	}
	return buf, db.current.ref(), nil
}

// readState is a consistent snapshot of everything a read needs: the
// mutable buffer, the immutable flush queue (oldest first), and the current
// version with a reference held. Reads run entirely outside db.mu.
type readState struct {
	mem *memtable.Memtable
	imm []*flushable
	v   *version
}

// memtables returns the buffer plus queued immutable tables, newest first —
// the order lookups must probe them in. The views are live: the mutable
// buffer keeps moving under them. Snapshots freeze the head view instead
// (snapshot.go).
func (rs readState) memtables() []memView {
	out := make([]memView, 0, len(rs.imm)+1)
	out = append(out, rs.mem)
	for i := len(rs.imm) - 1; i >= 0; i-- {
		out = append(out, rs.imm[i].mem)
	}
	return out
}

func (rs readState) release() {
	_ = rs.v.unref()
}

// acquireReadState snapshots the read view under a brief db.mu critical
// section.
func (db *DB) acquireReadState() (readState, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return readState{}, ErrClosed
	}
	return readState{
		mem: db.mem,
		imm: append([]*flushable(nil), db.imm...),
		v:   db.current.ref(),
	}, nil
}

// flushable is one sealed memtable waiting for a background flush, paired
// with the WAL segment that made it durable.
type flushable struct {
	mem *memtable.Memtable
	// sealedWAL is the rotated segment to release once the flush commits
	// ("" when the WAL is disabled).
	sealedWAL string
}
