package lsm

import (
	"lethe/internal/base"
	"lethe/internal/sstable"
)

// SecondaryRangeDelete deletes every entry whose delete key D falls in
// [lo, hi) — the paper's headline secondary range delete ("delete all
// entries older than D days", §4.2.2). With KiWi it touches only the pages
// the delete fences implicate: fully covered pages are dropped without I/O,
// edge pages are filtered in place. The buffers (mutable and queued) are
// filtered in memory. No full-tree compaction occurs. Aggregate per-file
// statistics are returned.
//
// Concurrency: background flushes and compactions are paused for the
// duration (a compaction merging a file while its pages are dropped could
// resurrect deleted entries in its output), and db.mu is held, so no new
// commit group is admitted while the delete runs; in-flight group applies
// already admitted to the buffer are drained first (WaitApplies below), so
// the in-memory filter sees every acknowledged write. Writes enqueued but
// not yet admitted are concurrent with the delete and commit after it.
// Concurrent reads are not blocked: they synchronize per file on the
// reader's internal lock and observe each page either before or after its
// drop.
//
// Semantics: the deletion is physical, matching the paper's design. It
// removes every stored version whose D qualifies; it does not write
// tombstones. In the paper's target workloads the delete key is a creation
// timestamp and keys are written once (updates are modeled as delete +
// re-insert, §1), so a key has exactly one version and the operation is
// exact. If an application overwrites keys with changing delete keys, an
// older version whose D lies outside [lo, hi) can become visible again —
// use Delete or RangeDelete for such data.
func (db *DB) SecondaryRangeDelete(lo, hi base.DeleteKey) (sstable.SRDStats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var agg sstable.SRDStats
	if db.closed {
		return agg, ErrClosed
	}
	db.pauseBackgroundLocked()
	defer db.resumeBackgroundLocked()

	// Drain in-flight commit-pipeline applies: holding db.mu keeps new
	// groups from being admitted, so after this the buffer is stable and
	// the filter below cannot miss an acknowledged entry.
	db.mem.WaitApplies()

	agg.EntriesDropped += db.mem.DeleteSecondaryRange(lo, hi)
	for _, fl := range db.imm {
		agg.EntriesDropped += fl.mem.DeleteSecondaryRange(lo, hi)
	}

	var firstErr error
	db.current.forEach(func(h *fileHandle) {
		if firstErr != nil {
			return
		}
		if h.meta.NumEntries == 0 || h.meta.MaxD < lo || h.meta.MinD >= hi {
			return
		}
		st, _, err := h.r.ApplySecondaryRangeDelete(lo, hi, db.opts.BloomBitsPerKey)
		if err != nil {
			firstErr = err
			return
		}
		agg.FullDrops += st.FullDrops
		agg.PartialDrops += st.PartialDrops
		agg.EntriesDropped += st.EntriesDropped
		agg.PagesUntouched += st.PagesUntouched
	})
	if firstErr != nil {
		return agg, firstErr
	}
	db.m.fullPageDrops.Add(int64(agg.FullDrops))
	db.m.partialPageDrops.Add(int64(agg.PartialDrops))
	db.m.srdEntriesDropped.Add(int64(agg.EntriesDropped))
	return agg, nil
}
