package lsm

import (
	"lethe/internal/base"
	"lethe/internal/sstable"
)

// SecondaryRangeDelete deletes every entry whose delete key D falls in
// [lo, hi) — the paper's headline secondary range delete ("delete all
// entries older than D days", §4.2.2). With KiWi it touches only the pages
// the delete fences implicate: fully covered pages are dropped without I/O,
// edge pages are filtered in place. The buffer is filtered in memory. No
// full-tree compaction occurs. Aggregate per-file statistics are returned.
//
// Semantics: the deletion is physical, matching the paper's design. It
// removes every stored version whose D qualifies; it does not write
// tombstones. In the paper's target workloads the delete key is a creation
// timestamp and keys are written once (updates are modeled as delete +
// re-insert, §1), so a key has exactly one version and the operation is
// exact. If an application overwrites keys with changing delete keys, an
// older version whose D lies outside [lo, hi) can become visible again —
// use Delete or RangeDelete for such data.
func (db *DB) SecondaryRangeDelete(lo, hi base.DeleteKey) (sstable.SRDStats, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	var agg sstable.SRDStats
	if db.closed {
		return agg, ErrClosed
	}
	memDropped := db.mem.DeleteSecondaryRange(lo, hi)
	agg.EntriesDropped += memDropped

	for _, runs := range db.levels {
		for _, r := range runs {
			for _, h := range r {
				if h.meta.NumEntries == 0 || h.meta.MaxD < lo || h.meta.MinD >= hi {
					continue
				}
				st, _, err := h.r.ApplySecondaryRangeDelete(lo, hi, db.opts.BloomBitsPerKey)
				if err != nil {
					return agg, err
				}
				agg.FullDrops += st.FullDrops
				agg.PartialDrops += st.PartialDrops
				agg.EntriesDropped += st.EntriesDropped
				agg.PagesUntouched += st.PagesUntouched
			}
		}
	}
	db.m.fullPageDrops.Add(int64(agg.FullDrops))
	db.m.partialPageDrops.Add(int64(agg.PartialDrops))
	db.m.srdEntriesDropped.Add(int64(agg.EntriesDropped))
	return agg, nil
}
