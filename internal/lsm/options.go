// Package lsm implements the LSM-tree engine: buffering, flushing, FADE
// compaction orchestration, reads, primary and secondary deletes, recovery,
// and the statistics the paper's evaluation measures.
//
// The engine has two execution models. In background mode (the default with
// a wall clock) maintenance is pipelined: full buffers are sealed onto an
// immutable-flush queue, FADE's triggers are evaluated on demand, and both
// kinds of work execute on a shared maintenance runtime's worker pool
// (internal/runtime) that spans every engine instance registered with it —
// readers run against immutable refcounted version snapshots without
// blocking behind either. In synchronous mode
// (DisableBackgroundMaintenance, forced with a manual clock) flushes and
// compactions run inline in the writing goroutine, byte-for-byte matching
// the paper's single-threaded experiments.
package lsm

import (
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/runtime"
	"lethe/internal/sstable"
	"lethe/internal/vfs"
)

// WALSyncPolicy controls when the engine makes write-ahead-log records
// durable on the commit path.
type WALSyncPolicy int

const (
	// SyncGrouped is the default: commits flow through the group-commit
	// pipeline, and the leader issues one Sync covering the whole group
	// before any member is acknowledged. Every acknowledged write is durable
	// (same guarantee as SyncAlways) but the sync cost is amortized across
	// all writers in the group.
	SyncGrouped WALSyncPolicy = iota
	// SyncAlways appends and syncs every commit individually before it
	// returns, bypassing the group-commit pipeline entirely — the serialized
	// pre-pipeline write path. It is the baseline the group-commit
	// benchmarks compare against; throughput collapses under concurrency.
	SyncAlways
	// SyncNever skips the commit-path Sync. Group records are still written
	// to the file on every commit (and sealed segments sync on rotation), so
	// on a crash the OS decides how much of the live segment's tail
	// survives; replay drops whole groups at the torn point, never a prefix
	// of one.
	SyncNever
)

// String implements fmt.Stringer.
func (p WALSyncPolicy) String() string {
	switch p {
	case SyncGrouped:
		return "grouped"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return "unknown"
}

// Options configures a DB. The zero value is completed by withDefaults; the
// defaults mirror the paper's Table 1 reference configuration where
// practical.
type Options struct {
	// FS is the filesystem holding all engine files. Wrap it in a
	// vfs.CountingFS to measure I/O. Required. The engine treats FS as its
	// private namespace — a sharded database hands each instance a
	// vfs.PrefixFS so every shard's sstables, WAL segments, and manifest
	// live in their own directory of one shared filesystem.
	FS vfs.FS
	// RemoteFS, when non-nil, enables tiered placement: levels at or past
	// Placement.LocalLevels keep their sstables on this (slower, cheaper)
	// filesystem while everything else — the WAL, the manifest, and the hot
	// levels — stays on FS. Wrap it in a vfs.RemoteFS to model a remote
	// device's latency and bandwidth. A sharded database hands each
	// instance a vfs.PrefixFS over it, mirroring FS.
	RemoteFS vfs.FS
	// Placement assigns levels to storage tiers; meaningful only with a
	// RemoteFS.
	Placement PlacementPolicy
	// Clock drives tombstone ages and TTL expiry. Defaults to the wall
	// clock; experiments inject a base.ManualClock.
	Clock base.Clock
	// SizeRatio is T, the capacity ratio between adjacent levels (Table 1:
	// 10).
	SizeRatio int
	// BufferBytes is M, the memory buffer capacity in bytes (Table 1:
	// M = P·B·E).
	BufferBytes int
	// PageSize is the disk page size in bytes.
	PageSize int
	// FilePages is the target number of data pages per sstable (the paper's
	// experiments use 256-page files).
	FilePages int
	// TilePages is h, the pages per delete tile. 1 = classical layout.
	TilePages int
	// BlockSizeBytes is the target encoded size of a format-v2 data block
	// (PageSize when zero, so the tile geometry — h blocks per delete tile —
	// and per-read block cost match the fixed-page layout by default).
	BlockSizeBytes int
	// SSTableFormat pins the sstable format version new files are written
	// with (sstable.FormatV2 when zero). Only mixed-version and
	// backward-compat tests set it; readers always open both formats.
	SSTableFormat int
	// BloomBitsPerKey sizes Bloom filters (Table 1: 10 bits/entry).
	BloomBitsPerKey int
	// Mode selects the compaction policy family (baseline vs Lethe).
	Mode compaction.Mode
	// Dth is the delete persistence threshold. Zero disables TTL-driven
	// compaction (the baseline has no persistence guarantee).
	Dth time.Duration
	// Tiering switches levels to tiered merging (T runs per level before a
	// merge) instead of leveling. The paper's experiments use leveling.
	Tiering bool
	// SuppressBlindDeletes enables FADE's filter pre-probe on Delete
	// (§4.1.5): a tombstone is inserted only if some component may contain
	// the key.
	SuppressBlindDeletes bool
	// DisableWAL skips write-ahead logging (the paper's experiments run
	// with the WAL disabled).
	DisableWAL bool
	// WALSync selects the commit-path durability policy: SyncGrouped (the
	// default) amortizes one Sync per commit group, SyncAlways serializes
	// an individual append+Sync per commit, SyncNever defers durability to
	// the OS and segment rotation. Ignored when DisableWAL is set.
	WALSync WALSyncPolicy
	// CoverageEstimator estimates what fraction of the key domain a range
	// [start, end) covers, standing in for the system-wide histogram used
	// to estimate rd_f. Nil disables range-tombstone weight in b_f.
	CoverageEstimator func(start, end []byte) float64
	// CacheBytes bounds the shared decoded-page cache (the block cache the
	// paper's experiments enable). Zero disables caching. Ignored when
	// Runtime is set — the shared runtime's cache (sized by its own
	// CacheBytes) is the whole-database budget.
	CacheBytes int64
	// Seed makes memtable skiplist towers deterministic.
	Seed int64
	// DisableBackgroundMaintenance runs flushes and compactions inline
	// inside the writing goroutine — the paper's synchronous, deterministic
	// execution model. It is forced on when Clock is a *base.ManualClock,
	// since background workers racing a manually advanced clock would make
	// experiments unrepeatable.
	DisableBackgroundMaintenance bool
	// HoldMaintenance opens the instance with background maintenance
	// paused: the shared runtime will not claim flush or compaction jobs
	// from it until ResumeMaintenance is called. Resharding uses it so a
	// freshly installed shard cannot start compacting before its routing
	// epoch commits. Ignored in synchronous mode.
	HoldMaintenance bool
	// MaxImmutableBuffers bounds the immutable-memtable flush queue in
	// background mode; writers stall when it is full (default 2).
	MaxImmutableBuffers int
	// CompactionWorkers sizes the shared maintenance pool: the total number
	// of goroutines executing flushes and compactions (default 1). When
	// Runtime is set the pool belongs to the runtime and this field is
	// ignored. Ignored in synchronous mode.
	CompactionWorkers int
	// Subcompactions caps how many key-range subcompactions one compaction
	// (or tier-migration) job may fan out into (default 1: serial jobs). The
	// extra pipelines borrow slots from the shared worker pool, so total
	// merge parallelism across all instances never exceeds the pool's worker
	// count; under pressure a job shrinks its fan-out rather than
	// oversubscribe. Ignored in synchronous mode, which stays strictly
	// serial and deterministic.
	Subcompactions int
	// Runtime attaches this instance to a shared maintenance runtime: one
	// worker pool, page cache, memory budget, and I/O rate limiter spanning
	// every instance registered with it (the shards of one database). Nil in
	// background mode creates a private runtime sized from the options
	// above; synchronous mode never uses one.
	Runtime *runtime.Runtime
	// Cache shares an existing page cache (via a fresh namespace handle)
	// instead of building one from CacheBytes. A sharded database reopened
	// in synchronous mode uses it so the whole-database CacheBytes budget
	// holds without a runtime. Ignored when Runtime is set.
	Cache *sstable.PageCache
	// MemoryBudget bounds total memtable bytes (mutable plus sealed) for a
	// private runtime; writers stall above it. Zero disables the budget.
	// Ignored when Runtime is set or in synchronous mode.
	MemoryBudget int64
	// CompactionRateBytes caps maintenance write I/O (flush and compaction
	// sstable builds) in bytes/second for a private runtime. Zero means
	// unlimited. Ignored when Runtime is set or in synchronous mode.
	CompactionRateBytes int64
}

// PlacementPolicy decides which levels of the tree live on the local
// filesystem and which on the remote tier.
type PlacementPolicy struct {
	// LocalLevels is the number of leading disk levels kept local; level
	// indexes at or past it place their runs on the remote FS. Flush output
	// (level 0) is always local, so the value is clamped to at least 1 when
	// a RemoteFS is configured. Zero defaults to 1 — only the first level
	// local, everything colder remote.
	LocalLevels int
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = base.RealClock{}
	}
	if o.RemoteFS != nil && o.Placement.LocalLevels < 1 {
		o.Placement.LocalLevels = 1
	}
	if _, manual := o.Clock.(*base.ManualClock); manual {
		o.DisableBackgroundMaintenance = true
	}
	if o.MaxImmutableBuffers == 0 {
		o.MaxImmutableBuffers = 2
	}
	if o.CompactionWorkers == 0 {
		o.CompactionWorkers = 1
	}
	if o.Subcompactions == 0 {
		o.Subcompactions = 1
	}
	if o.SizeRatio == 0 {
		o.SizeRatio = 10
	}
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.BufferBytes == 0 {
		o.BufferBytes = 512 * o.PageSize // Table 1: P = 512 pages
	}
	if o.FilePages == 0 {
		o.FilePages = 256
	}
	if o.TilePages == 0 {
		o.TilePages = 1
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 10
	}
	if o.BlockSizeBytes == 0 {
		// Default the block target to the page size: compression then shrinks
		// the disk footprint while a delete tile keeps costing h page-sized
		// reads, so scan and point-read work match the fixed-page layout.
		// Larger blocks (e.g. sstable.DefaultBlockSize) are an explicit
		// opt-in for scan-heavy workloads; see "Block size" in tuning.go.
		o.BlockSizeBytes = o.PageSize
	}
	if o.SSTableFormat == 0 {
		o.SSTableFormat = sstable.FormatV2
	}
	return o
}
