package lsm

import (
	"fmt"
	"sort"

	"lethe/internal/base"
	"lethe/internal/memtable"
	"lethe/internal/sstable"
)

// Put inserts or updates a key. dkey is the secondary delete key D (for
// instance a creation timestamp) that secondary range deletes select on.
func (db *DB) Put(key []byte, dkey base.DeleteKey, value []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.seq++
	e := base.MakeEntry(key, db.seq, base.KindSet, dkey, value)
	db.m.userBytesWritten.Add(int64(e.Size()))
	return db.applyLocked(e)
}

// Delete inserts a point tombstone for key. With SuppressBlindDeletes
// enabled, the engine first probes the buffer and every file's Bloom
// filters; if no component can contain the key, the tombstone is skipped
// entirely (§4.1.5 "Blind Deletes") — the probe costs hashing but no I/O.
func (db *DB) Delete(key []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.opts.SuppressBlindDeletes && !db.mayContainLocked(key) {
		db.m.blindDeletesSuppressed.Add(1)
		return nil
	}
	db.seq++
	e := base.MakeEntry(key, db.seq, base.KindDelete,
		base.DeleteKey(db.opts.Clock.Now().UnixNano()), nil)
	db.m.userBytesWritten.Add(int64(e.Size()))
	return db.applyLocked(e)
}

// RangeDelete inserts a range tombstone deleting every key in [start, end).
func (db *DB) RangeDelete(start, end []byte) error {
	if base.CompareUserKeys(start, end) >= 0 {
		return fmt.Errorf("lsm: invalid range [%q, %q)", start, end)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.seq++
	e := base.MakeEntry(start, db.seq, base.KindRangeDelete,
		base.DeleteKey(db.opts.Clock.Now().UnixNano()), end)
	db.m.userBytesWritten.Add(int64(e.Size()))
	return db.applyLocked(e)
}

// mayContainLocked reports whether any component of the tree may hold key:
// the memtable, or any file whose tile filters answer positive.
func (db *DB) mayContainLocked(key []byte) bool {
	if _, ok := db.mem.Get(key); ok {
		return true
	}
	for _, runs := range db.levels {
		for _, r := range runs {
			for _, h := range r {
				if !handleCoversKey(h, key) {
					continue
				}
				if readerMayContain(h.r, key) {
					return true
				}
			}
		}
	}
	return false
}

// readerMayContain probes the per-page Bloom filters of the tile covering
// key — CPU only, no I/O.
func readerMayContain(r *sstable.Reader, key []byte) bool {
	for ti := range r.Tiles {
		tile := &r.Tiles[ti]
		if base.CompareUserKeys(key, tile.MinS) < 0 || base.CompareUserKeys(key, tile.MaxS) > 0 {
			continue
		}
		for pi := range tile.Pages {
			pm := &tile.Pages[pi]
			if pm.Dropped {
				continue
			}
			if pm.Filter.MayContain(key) {
				return true
			}
		}
	}
	// Range tombstones don't matter for blind-delete suppression: deleting
	// an already-range-deleted key is itself blind.
	return false
}

func handleCoversKey(h *fileHandle, key []byte) bool {
	m := h.meta
	if len(m.MinS) == 0 && len(m.MaxS) == 0 {
		return false
	}
	return base.CompareUserKeys(m.MinS, key) <= 0 && base.CompareUserKeys(key, m.MaxS) <= 0
}

// applyLocked logs and buffers an entry, flushing when the buffer fills.
func (db *DB) applyLocked(e base.Entry) error {
	if db.wal != nil {
		if err := db.wal.Append(e); err != nil {
			return err
		}
	}
	db.mem.Apply(e)
	if db.mem.ApproxBytes() >= db.opts.BufferBytes {
		if err := db.flushLocked(); err != nil {
			return err
		}
		return db.maintainLocked()
	}
	return nil
}

// Flush forces the memory buffer to disk.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushLocked()
}

// flushLocked writes the buffer as a new run at the first disk level. The
// run is split into files of FilePages pages each. Per §4.1.3, file
// metadata (a_max, tombstone counts) is assigned at flush time by the
// sstable writer.
func (db *DB) flushLocked() error {
	if db.mem.Empty() {
		return nil
	}
	entries := db.mem.All()
	rts := db.mem.RangeTombstones()

	var sealedWAL string
	if db.wal != nil {
		var err error
		if sealedWAL, err = db.wal.Rotate(); err != nil {
			return err
		}
	}

	newRun, maxSeq, err := db.writeRun(entries, rts)
	if err != nil {
		return err
	}
	if len(db.levels) == 0 {
		db.levels = append(db.levels, nil)
	}
	// Newest run first.
	db.levels[0] = append([]run{newRun}, db.levels[0]...)
	if maxSeq > db.flushedSeq {
		db.flushedSeq = maxSeq
	}
	db.m.flushes.Add(1)
	for _, h := range newRun {
		db.m.bytesFlushed.Add(h.meta.Size)
	}
	if err := db.commitManifest(); err != nil {
		return err
	}
	if db.wal != nil {
		if err := db.wal.Release(sealedWAL); err != nil {
			return err
		}
	}
	db.memSeed++
	db.mem = memtable.New(db.memSeed)
	// §4.1.2: "FADE re-calculates d_i after every buffer flush."
	db.recomputeTTLs()
	return nil
}

// writeRun writes sorted entries (plus range tombstones attached to the
// first output file) as a sequence of files and returns the new handles.
func (db *DB) writeRun(entries []base.Entry, rts []base.RangeTombstone) (run, base.SeqNum, error) {
	var out run
	var maxSeq base.SeqNum
	targetBytes := db.opts.FilePages * db.opts.PageSize

	i := 0
	first := true
	for i < len(entries) || (first && len(rts) > 0) {
		num := db.nextFileNum
		db.nextFileNum++
		f, err := db.opts.FS.Create(db.fileName(num))
		if err != nil {
			return nil, 0, fmt.Errorf("lsm: create sstable: %w", err)
		}
		w := sstable.NewWriter(f, sstable.WriterOptions{
			FileNum:           num,
			PageSize:          db.opts.PageSize,
			TilePages:         db.opts.TilePages,
			BloomBitsPerKey:   db.opts.BloomBitsPerKey,
			Clock:             db.opts.Clock,
			CoverageEstimator: db.opts.CoverageEstimator,
		})
		written := 0
		for i < len(entries) && written < targetBytes {
			e := entries[i]
			if err := w.Add(e); err != nil {
				f.Close()
				return nil, 0, err
			}
			if s := e.Key.SeqNum(); s > maxSeq {
				maxSeq = s
			}
			written += e.Size()
			i++
		}
		if first {
			for _, rt := range rts {
				if err := w.AddRangeTombstone(rt); err != nil {
					f.Close()
					return nil, 0, err
				}
				if rt.Seq > maxSeq {
					maxSeq = rt.Seq
				}
			}
			first = false
		}
		if _, err := w.Finish(); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Close(); err != nil {
			return nil, 0, err
		}
		h, err := db.openFile(num)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool {
		return base.CompareUserKeys(out[a].meta.MinS, out[b].meta.MinS) < 0
	})
	return out, maxSeq, nil
}
