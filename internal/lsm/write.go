package lsm

import (
	"fmt"
	"sort"
	"time"

	"lethe/internal/base"
	"lethe/internal/memtable"
	"lethe/internal/sstable"
	"lethe/internal/vfs"
)

// Put inserts or updates a key. dkey is the secondary delete key D (for
// instance a creation timestamp) that secondary range deletes select on.
// The sequence number is assigned at commit-pipeline enqueue (commit.go).
func (db *DB) Put(key []byte, dkey base.DeleteKey, value []byte) error {
	e := base.MakeEntry(key, 0, base.KindSet, dkey, value)
	return db.commit([]base.Entry{e})
}

// Delete inserts a point tombstone for key. With SuppressBlindDeletes
// enabled, the engine first probes the buffer and every file's Bloom
// filters; if no component can contain the key, the tombstone is skipped
// entirely (§4.1.5 "Blind Deletes") — the probe costs hashing but no I/O.
func (db *DB) Delete(key []byte) error {
	if db.usePipeline() {
		if db.opts.SuppressBlindDeletes {
			// Check engine health before the probe: a suppressed delete on
			// a closed or poisoned engine must surface the error, not
			// report success.
			if err := db.writeErr(); err != nil {
				return err
			}
			if !db.mayContainPinned(key) {
				db.m.blindDeletesSuppressed.Add(1)
				return nil
			}
		}
		e := base.MakeEntry(key, 0, base.KindDelete,
			base.DeleteKey(db.opts.Clock.Now().UnixNano()), nil)
		return db.commitPipeline([]base.Entry{e})
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writableLocked(); err != nil {
		return err
	}
	if db.opts.SuppressBlindDeletes && !db.mayContainLocked(key) {
		db.m.blindDeletesSuppressed.Add(1)
		return nil
	}
	e := base.MakeEntry(key, 0, base.KindDelete,
		base.DeleteKey(db.opts.Clock.Now().UnixNano()), nil)
	return db.commitInlineLocked([]base.Entry{e})
}

// RangeDelete inserts a range tombstone deleting every key in [start, end).
func (db *DB) RangeDelete(start, end []byte) error {
	if base.CompareUserKeys(start, end) >= 0 {
		return fmt.Errorf("lsm: invalid range [%q, %q)", start, end)
	}
	e := base.MakeEntry(start, 0, base.KindRangeDelete,
		base.DeleteKey(db.opts.Clock.Now().UnixNano()), end)
	return db.commit([]base.Entry{e})
}

// writableLocked gates the write path: it rejects writes on a closed DB,
// surfaces a background maintenance failure, and — in background mode —
// stalls the writer while the immutable-flush queue is at capacity, counting
// the stall and its duration. Callers hold db.mu.
func (db *DB) writableLocked() error {
	if db.closed {
		return ErrClosed
	}
	if db.bgErr != nil {
		return db.bgErr
	}
	if !db.bgStarted {
		return nil
	}
	stalled := false
	var stallStart time.Time
	for len(db.imm) >= db.opts.MaxImmutableBuffers && !db.closed && db.bgErr == nil {
		if !stalled {
			stalled = true
			stallStart = time.Now()
			db.m.writeStalls.Add(1)
			db.kickMaintenance()
		}
		db.bgCond.Wait()
	}
	if stalled {
		db.m.writeStallNanos.Add(time.Since(stallStart).Nanoseconds())
	}
	if db.closed {
		return ErrClosed
	}
	return db.bgErr
}

// mayContain reports whether any of the given components may hold key: a
// buffer, or any file of v whose tile filters answer positive. It is the
// blind-delete probe core shared by both Delete paths.
func mayContain(mems []memView, v *version, key []byte) bool {
	for _, mt := range mems {
		if _, ok := mt.Get(key); ok {
			return true
		}
	}
	for _, runs := range v.levels {
		for _, r := range runs {
			for _, h := range r {
				if handleCoversKey(h, key) && h.r.MayContainKey(key) {
					return true
				}
			}
		}
	}
	return false
}

// mayContainLocked probes the live engine state. Callers hold db.mu.
func (db *DB) mayContainLocked(key []byte) bool {
	mems := make([]memView, 0, 1+len(db.imm))
	mems = append(mems, db.mem)
	for _, fl := range db.imm {
		mems = append(mems, fl.mem)
	}
	return mayContain(mems, db.current, key)
}

func handleCoversKey(h *fileHandle, key []byte) bool {
	m := h.meta
	if len(m.MinS) == 0 && len(m.MaxS) == 0 {
		return false
	}
	return base.CompareUserKeys(m.MinS, key) <= 0 && base.CompareUserKeys(key, m.MaxS) <= 0
}

// writeErr reports whether the engine can accept writes at all (closed or
// poisoned), without the stall wait writableLocked performs.
func (db *DB) writeErr() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.bgErr
}

// mayContainPinned is the pipeline-mode blind-delete probe: it pins a read
// state and checks the same components as mayContainLocked, but outside
// db.mu, so the probe never serializes against the commit pipeline. A probe
// racing a concurrent insert of the same key may insert a redundant
// tombstone (safe) — the suppression is an optimization, not a guarantee.
func (db *DB) mayContainPinned(key []byte) bool {
	rs, err := db.acquireReadState()
	if err != nil {
		return true // fail open: keep the tombstone
	}
	defer rs.release()
	return mayContain(rs.memtables(), rs.v, key)
}

// maybeRotateBufferLocked turns over a full buffer: background mode seals it
// onto the flush queue for the worker; synchronous mode flushes and
// maintains inline. Callers hold db.mu.
func (db *DB) maybeRotateBufferLocked() error {
	if db.mem.ApproxBytes() < db.opts.BufferBytes {
		return nil
	}
	if db.bgStarted {
		if err := db.sealMemtableLocked(); err != nil {
			return err
		}
		db.kickMaintenance()
		return nil
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	return db.maintainLocked()
}

// Flush forces the memory buffer to disk. In background mode it seals the
// buffer and waits for the shared pool to drain the queue, so the buffer is
// durable in sstables when Flush returns.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.bgStarted {
		return db.flushLocked()
	}
	if err := db.sealMemtableLocked(); err != nil {
		return err
	}
	db.kickMaintenance()
	for len(db.imm) > 0 && !db.closed && db.bgErr == nil {
		db.bgCond.Wait()
	}
	if db.closed {
		return ErrClosed
	}
	return db.bgErr
}

// sealMemtableLocked moves a non-empty buffer onto the immutable-flush
// queue, rotating the WAL so the sealed buffer's records live in their own
// segment, and starts a fresh buffer. It first waits for in-flight commit-
// pipeline applies targeting the buffer — appliers never need db.mu, so the
// wait terminates — ensuring the buffer flushed to disk contains every
// committed group whose records precede the rotation point. Callers hold
// db.mu.
func (db *DB) sealMemtableLocked() error {
	db.mem.WaitApplies()
	if db.mem.Empty() {
		return nil
	}
	var sealedWAL string
	if db.wal != nil {
		var err error
		if sealedWAL, err = db.wal.Rotate(); err != nil {
			return err
		}
	}
	db.imm = append(db.imm, &flushable{mem: db.mem, sealedWAL: sealedWAL})
	db.memSeed++
	db.mem = memtable.New(db.memSeed)
	// The buffer rotation changed the read view: retire the cached read
	// handle so the next Get rebuilds against the new stack.
	db.invalidateReadHandleLocked()
	db.updateMemoryUsageLocked()
	return nil
}

// flushLocked synchronously seals the buffer and drains the whole flush
// queue inline. It intentionally does not check db.closed: Close and
// FullTreeCompact use it for their final drains. Callers hold db.mu.
func (db *DB) flushLocked() error {
	if err := db.sealMemtableLocked(); err != nil {
		return err
	}
	return db.flushQueueLocked()
}

// flushQueueLocked flushes queued immutable buffers, oldest first, inline.
func (db *DB) flushQueueLocked() error {
	for len(db.imm) > 0 {
		fl := db.imm[0]
		newRun, maxSeq, err := db.buildFlushRun(fl, db.opts.FS)
		if err != nil {
			return err
		}
		if err := db.installFlushLocked(fl, newRun, maxSeq); err != nil {
			return err
		}
	}
	return nil
}

// buildFlushRun writes one sealed buffer as a new run at the first disk
// level, through fs (the rate-limited maintenance filesystem for background
// flushes; the raw one for foreground flushes — recovery, Close, Flush in
// synchronous mode — which must not be paced like maintenance). The run is
// split into files of FilePages pages each. Per §4.1.3, file metadata
// (a_max, tombstone counts) is assigned at flush time by the sstable
// writer. It performs only file I/O — no db.mu is required, so the
// background flush job calls it outside the lock.
func (db *DB) buildFlushRun(fl *flushable, fs vfs.FS) (run, base.SeqNum, error) {
	// Flush output is always local: level 0 is the hottest level, and the
	// placement policy clamps LocalLevels to at least 1.
	return db.writeRun(fl.mem.All(), fl.mem.RangeTombstones(), fs, false)
}

// installFlushLocked commits a flushed run: the manifest records the new
// structure, the version is installed, the flushed buffer leaves the queue,
// and its WAL segment is released. Callers hold db.mu.
func (db *DB) installFlushLocked(fl *flushable, newRun run, maxSeq base.SeqNum) error {
	levels := db.current.cloneLevels()
	if len(levels) == 0 {
		levels = append(levels, nil)
	}
	// Newest run first.
	levels[0] = append([]run{newRun}, levels[0]...)
	v := &version{levels: levels}

	if maxSeq > db.flushedSeq {
		db.flushedSeq = maxSeq
	}
	db.m.flushes.Add(1)
	for _, h := range newRun {
		db.m.bytesFlushed.Add(h.meta.Size)
	}
	if err := db.commitManifestLocked(v); err != nil {
		return err
	}
	db.installVersionLocked(v)
	if len(db.imm) == 0 || db.imm[0] != fl {
		panic("lsm: flush queue out of order")
	}
	db.imm = db.imm[1:]
	if fl.sealedWAL != "" {
		if err := db.wal.Release(fl.sealedWAL); err != nil {
			return err
		}
	}
	// §4.1.2: "FADE re-calculates d_i after every buffer flush."
	db.recomputeTTLs()
	db.updateMemoryUsageLocked()
	db.bgCond.Broadcast()
	return nil
}

// writeRun writes sorted entries (plus range tombstones attached to the
// first output file) as a sequence of files through fs and returns the new
// handles. Background jobs pass db.maintFS (or db.maintRemoteFS when remote)
// so a configured I/O rate limit paces the build; foreground callers
// (recovery, Close, FullTreeCompact, synchronous mode) pass the raw tier
// filesystem and are never throttled. remote records the tier the caller's
// fs writes to, so the handles and the placement registry stay consistent
// with where the bytes physically landed. File numbers come from an atomic
// counter, so concurrent background workers can build runs without holding
// db.mu.
func (db *DB) writeRun(entries []base.Entry, rts []base.RangeTombstone, fs vfs.FS, remote bool) (run, base.SeqNum, error) {
	var out run
	var maxSeq base.SeqNum
	targetBytes := db.opts.FilePages * db.opts.PageSize

	i := 0
	first := true
	for i < len(entries) || (first && len(rts) > 0) {
		num := db.nextFileNum.Add(1) - 1
		f, err := fs.Create(db.fileName(num))
		if err != nil {
			return nil, 0, fmt.Errorf("lsm: create sstable: %w", err)
		}
		w := sstable.NewWriter(f, sstable.WriterOptions{
			FileNum:           num,
			FormatVersion:     db.opts.SSTableFormat,
			PageSize:          db.opts.PageSize,
			BlockSizeBytes:    db.opts.BlockSizeBytes,
			TilePages:         db.opts.TilePages,
			BloomBitsPerKey:   db.opts.BloomBitsPerKey,
			Clock:             db.opts.Clock,
			CoverageEstimator: db.opts.CoverageEstimator,
		})
		written := 0
		for i < len(entries) && written < targetBytes {
			e := entries[i]
			if err := w.Add(e); err != nil {
				f.Close()
				return nil, 0, err
			}
			if s := e.Key.SeqNum(); s > maxSeq {
				maxSeq = s
			}
			written += e.Size()
			i++
		}
		if first {
			for _, rt := range rts {
				if err := w.AddRangeTombstone(rt); err != nil {
					f.Close()
					return nil, 0, err
				}
				if rt.Seq > maxSeq {
					maxSeq = rt.Seq
				}
			}
			first = false
		}
		if _, err := w.Finish(); err != nil {
			f.Close()
			return nil, 0, err
		}
		if err := f.Close(); err != nil {
			return nil, 0, err
		}
		h, err := db.openFileAt(num, remote)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool {
		return base.CompareUserKeys(out[a].meta.MinS, out[b].meta.MinS) < 0
	})
	return out, maxSeq, nil
}
