package lsm

import (
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
)

// LevelStats summarizes one disk level.
type LevelStats struct {
	// Runs is the number of sorted runs in the level.
	Runs int
	// Files is the number of files across those runs.
	Files int
	// LiveBytes is the level's live byte count (dropped pages excluded).
	LiveBytes int64
	// BytesOnDisk is the level's physical footprint: the summed file sizes,
	// dropped pages and dead (relocated) block bytes included. The gap to
	// LiveBytes is reclaimable-but-unreclaimed space.
	BytesOnDisk int64
	// Entries counts live entries, tombstones included.
	Entries int
	// PointTombstones counts live point tombstones.
	PointTombstones int
	// RangeTombstones counts live range tombstones.
	RangeTombstones int
}

// Stats is a snapshot of the engine's state and lifetime counters — the
// measurements §5 takes after each experiment, plus the background
// pipeline's health indicators.
type Stats struct {
	// Levels describes each disk level, shallowest first.
	Levels []LevelStats
	// TreeEntries is the total live entry count on disk.
	TreeEntries int
	// BufferEntries is the current memtable population (mutable buffer
	// only; queued immutable buffers are counted separately).
	BufferEntries int
	// LivePointTombstones counts tombstones still in the tree (Fig. 6E's
	// population).
	LivePointTombstones int
	// BytesOnDisk is the database's physical sstable footprint — the space
	// amplification denominator benchmarks report as bytes-on-disk.
	BytesOnDisk int64

	// Compactions counts compactions since open, split by trigger.
	Compactions           int64
	CompactionsTTL        int64
	CompactionsSaturation int64
	FullTreeCompactions   int64
	// TrivialMoves counts compactions satisfied by moving files without
	// I/O (no overlap in the target level).
	TrivialMoves int64
	// Flushes counts buffer flushes.
	Flushes int64
	// MaxCompactionBytes is the largest single compaction event (inputs +
	// outputs) — the latency-spike proxy of Fig. 1B.
	MaxCompactionBytes int64

	// BytesFlushed, CompactionBytesRead and CompactionBytesWritten feed the
	// write-amplification metrics: TotalBytesWritten = flushed + compaction
	// output (Fig. 6C/6F), UserBytesWritten is the application's payload.
	BytesFlushed           int64
	CompactionBytesRead    int64
	CompactionBytesWritten int64
	TotalBytesWritten      int64
	UserBytesWritten       int64

	// EntriesDroppedObsolete counts superseded versions consolidated away;
	// TombstonesDropped counts point tombstones persisted at the last
	// level; RangeCovered counts entries removed by range tombstones.
	EntriesDroppedObsolete int64
	TombstonesDropped      int64
	RangeCovered           int64

	// BlindDeletesSuppressed counts deletes skipped by the filter pre-probe.
	BlindDeletesSuppressed int64

	// FullPageDrops / PartialPageDrops / SRDEntriesDropped account KiWi's
	// secondary range delete work.
	FullPageDrops     int64
	PartialPageDrops  int64
	SRDEntriesDropped int64

	// Background pipeline health (all zero in synchronous mode).
	//
	// ImmutableBuffers is the current depth of the immutable-flush queue;
	// writers stall when it reaches Options.MaxImmutableBuffers.
	ImmutableBuffers int
	// MemtableBytes is the approximate in-memory footprint of the live
	// memtable plus the immutable-flush queue — a direct read of write
	// pressure, sampled by the reshard balancer.
	MemtableBytes int64
	// WriteStalls counts write operations that blocked on a full flush
	// queue; WriteStallTime is their cumulative wait.
	WriteStalls    int64
	WriteStallTime time.Duration
	// BackgroundFlushes and BackgroundCompactions count maintenance
	// executed by the background workers (as opposed to inline in the
	// writing goroutine).
	BackgroundFlushes     int64
	BackgroundCompactions int64
	// Subcompactions counts key-range merge pipelines run by fanned-out
	// compaction jobs (only jobs that actually split; serial jobs add
	// nothing). MaxMergeWidth is the widest fan-out one job achieved.
	Subcompactions int64
	MaxMergeWidth  int64
	// CompactionTime is the cumulative wall time spent inside mergeFiles;
	// CompactionThroughputMBps is (bytes read + bytes written) over that
	// time — the merge bandwidth the subcompaction fan-out is meant to
	// raise.
	CompactionTime           time.Duration
	CompactionThroughputMBps float64

	// Commit-pipeline health (group commit; see commit.go).
	//
	// CommitGroups counts leader-committed groups; CommitBatches counts the
	// writer batches inside them (CommitBatches/CommitGroups is the
	// grouping factor); CommitEntries counts individual entries committed.
	CommitGroups  int64
	CommitBatches int64
	CommitEntries int64
	// MaxCommitGroupBatches is the largest group (in batches) the leader
	// has committed at once.
	MaxCommitGroupBatches int64
	// CommitQueueDepth is the instantaneous pipeline depth: batches queued
	// behind the active leader at snapshot time.
	CommitQueueDepth int
	// WALSyncs counts commit-path WAL syncs. Under SyncGrouped it tracks
	// groups, not writes — far below CommitBatches when batching is
	// effective.
	WALSyncs int64
	// LastPublishedSeq is the ordered sequence-publication frontier: every
	// sequence at or below it has fully committed. Nondecreasing, gapless.
	LastPublishedSeq uint64

	// Page-cache accounting. The cache is shared across every shard of a
	// database (one CacheBytes budget total, not per shard), so these
	// fields report the same shared cache from every shard; a sharded
	// aggregation takes their maximum, never their sum.
	CacheCapacity int64
	CacheUsed     int64
	CacheHits     int64
	CacheMisses   int64

	// Tier describes tiered placement (all zero without a RemoteFS).
	Tier TierStats
}

// TierStats partitions the tree by storage tier and accounts cross-tier
// traffic.
type TierStats struct {
	// LocalFiles/LocalBytes and RemoteFiles/RemoteBytes split the current
	// version's sstables (physical sizes) by the device they live on.
	LocalFiles  int
	LocalBytes  int64
	RemoteFiles int
	RemoteBytes int64
	// Migrations counts completed cross-tier file migrations;
	// MigratedBytes the bytes those copies moved.
	Migrations    int64
	MigratedBytes int64
	// Remote device traffic since open: every read and write the engine
	// issued against the remote filesystem (scans, point reads, compaction
	// output builds, migration copies).
	RemoteReadOps      int64
	RemoteBytesRead    int64
	RemoteWriteOps     int64
	RemoteBytesWritten int64
	// MigrationTime is the cumulative wall time spent inside
	// executeMigration; MigrationMBps is MigratedBytes over that time — the
	// tier-repair bandwidth parallel copies are meant to raise.
	MigrationTime time.Duration
	MigrationMBps float64
}

// Stats returns a consistent snapshot.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	var s Stats
	for _, runs := range db.current.levels {
		ls := LevelStats{Runs: len(runs)}
		for _, r := range runs {
			ls.Files += len(r)
			for _, h := range r {
				ls.LiveBytes += h.r.LiveBytesOf()
				ls.BytesOnDisk += h.r.MetaCopy().Size
				ls.Entries += h.meta.NumEntries
				ls.PointTombstones += h.meta.NumPointTombstones
				ls.RangeTombstones += h.meta.NumRangeTombstones
			}
		}
		s.Levels = append(s.Levels, ls)
		s.TreeEntries += ls.Entries
		s.LivePointTombstones += ls.PointTombstones
		s.BytesOnDisk += ls.BytesOnDisk
	}
	s.BufferEntries = db.mem.Count()
	s.ImmutableBuffers = len(db.imm)
	s.MemtableBytes = int64(db.mem.ApproxBytes())
	for _, fl := range db.imm {
		s.MemtableBytes += int64(fl.mem.ApproxBytes())
	}

	s.Compactions = db.m.compactions.Load()
	s.CompactionsTTL = db.m.compactionsTTL.Load()
	s.CompactionsSaturation = db.m.compactionsSaturation.Load()
	s.FullTreeCompactions = db.m.fullTreeCompactions.Load()
	s.TrivialMoves = db.m.trivialMoves.Load()
	s.Flushes = db.m.flushes.Load()
	s.MaxCompactionBytes = db.m.maxCompactionBytes.Load()
	s.BytesFlushed = db.m.bytesFlushed.Load()
	s.CompactionBytesRead = db.m.compactionBytesIn.Load()
	s.CompactionBytesWritten = db.m.compactionBytesOut.Load()
	s.TotalBytesWritten = s.BytesFlushed + s.CompactionBytesWritten
	s.UserBytesWritten = db.m.userBytesWritten.Load()
	s.EntriesDroppedObsolete = db.m.entriesDroppedObsolete.Load()
	s.TombstonesDropped = db.m.tombstonesDropped.Load()
	s.RangeCovered = db.m.rangeCovered.Load()
	s.BlindDeletesSuppressed = db.m.blindDeletesSuppressed.Load()
	s.FullPageDrops = db.m.fullPageDrops.Load()
	s.PartialPageDrops = db.m.partialPageDrops.Load()
	s.SRDEntriesDropped = db.m.srdEntriesDropped.Load()
	s.WriteStalls = db.m.writeStalls.Load()
	s.WriteStallTime = time.Duration(db.m.writeStallNanos.Load())
	s.BackgroundFlushes = db.m.bgFlushes.Load()
	s.BackgroundCompactions = db.m.bgCompactions.Load()
	s.Subcompactions = db.m.subcompactions.Load()
	s.MaxMergeWidth = db.m.maxMergeWidth.Load()
	s.CompactionTime = time.Duration(db.m.compactionNanos.Load())
	if secs := s.CompactionTime.Seconds(); secs > 0 {
		s.CompactionThroughputMBps = float64(s.CompactionBytesRead+s.CompactionBytesWritten) / (1 << 20) / secs
	}
	s.CommitGroups = db.m.commitGroups.Load()
	s.CommitBatches = db.m.commitBatches.Load()
	s.CommitEntries = db.m.commitEntries.Load()
	s.MaxCommitGroupBatches = db.m.maxCommitGroup.Load()
	s.WALSyncs = db.m.walSyncs.Load()
	db.cq.mu.Lock()
	s.CommitQueueDepth = len(db.cq.pending)
	db.cq.mu.Unlock()
	s.LastPublishedSeq = uint64(db.PublishedSeq())
	if c := db.cache.Cache(); c != nil {
		s.CacheCapacity = c.Capacity()
		s.CacheUsed = c.UsedBytes()
		s.CacheHits = c.Hits.Load()
		s.CacheMisses = c.Misses.Load()
	}
	db.current.forEach(func(h *fileHandle) {
		size := h.r.MetaCopy().Size
		if h.remote {
			s.Tier.RemoteFiles++
			s.Tier.RemoteBytes += size
		} else {
			s.Tier.LocalFiles++
			s.Tier.LocalBytes += size
		}
	})
	s.Tier.Migrations = db.m.tierMigrations.Load()
	s.Tier.MigratedBytes = db.m.tierMigratedBytes.Load()
	s.Tier.MigrationTime = time.Duration(db.m.tierMigrateNanos.Load())
	if secs := s.Tier.MigrationTime.Seconds(); secs > 0 {
		s.Tier.MigrationMBps = float64(s.Tier.MigratedBytes) / (1 << 20) / secs
	}
	if db.remoteIO != nil {
		io := db.remoteIO.Stats.Snapshot()
		s.Tier.RemoteReadOps = io.ReadOps
		s.Tier.RemoteBytesRead = io.BytesRead
		s.Tier.RemoteWriteOps = io.WriteOps
		s.Tier.RemoteBytesWritten = io.BytesWritten
	}
	return s
}

// WriteAmplification returns total bytes written to disk divided by the
// application's payload bytes (§3.2.3's w_amp, measured rather than modeled).
func (s Stats) WriteAmplification() float64 {
	if s.UserBytesWritten == 0 {
		return 0
	}
	return float64(s.TotalBytesWritten) / float64(s.UserBytesWritten)
}

// TombstoneAgeBucket is one point of the Fig. 6E distribution: a file age
// and how many point tombstones live in files of that age.
type TombstoneAgeBucket struct {
	Age        time.Duration
	Tombstones int
}

// TombstoneAges returns, for every file containing point tombstones, the
// file's a_max (age of its oldest tombstone) and its tombstone count, oldest
// first. Fig. 6E accumulates these into its CDF.
func (db *DB) TombstoneAges() []TombstoneAgeBucket {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.opts.Clock.Now()
	var out []TombstoneAgeBucket
	db.current.forEach(func(h *fileHandle) {
		if h.meta.NumPointTombstones == 0 {
			return
		}
		out = append(out, TombstoneAgeBucket{
			Age:        h.meta.AMax(now),
			Tombstones: h.meta.NumPointTombstones,
		})
	})
	return out
}

// MaxTombstoneAge returns the oldest tombstone age anywhere in the tree — an
// engine honoring Dth keeps this below Dth after maintenance.
func (db *DB) MaxTombstoneAge() time.Duration {
	var max time.Duration
	for _, b := range db.TombstoneAges() {
		if b.Age > max {
			max = b.Age
		}
	}
	return max
}

// SpaceAmp computes the paper's space amplification (§3.2.1):
// (csize(N) − csize(U)) / csize(U), where csize(N) is the byte size of all
// live entries in the tree and csize(U) the byte size of the newest live
// version of each key. It scans the tree on a pinned snapshot, so it is a
// measurement tool, not a hot-path call.
func (db *DB) SpaceAmp() (float64, error) {
	totalBytes, uniqueBytes, err := db.SpaceAmpParts()
	if err != nil {
		return 0, err
	}
	if uniqueBytes == 0 {
		return 0, nil
	}
	return float64(totalBytes-uniqueBytes) / float64(uniqueBytes), nil
}

// SpaceAmpParts returns the raw operands of SpaceAmp — csize(N) and csize(U)
// — so a sharded database can sum them across shards before forming the
// ratio (ratios of per-shard ratios would weight small shards incorrectly).
func (db *DB) SpaceAmpParts() (totalBytes, uniqueBytes int64, err error) {
	rs, err := db.acquireReadState()
	if err != nil {
		return 0, 0, err
	}
	defer rs.release()

	var iters []compaction.Iterator
	var rts []base.RangeTombstone
	for _, mt := range rs.memtables() {
		var memEntries []base.Entry
		mt.Iter(func(e base.Entry) bool {
			memEntries = append(memEntries, e)
			totalBytes += int64(e.Size())
			return true
		})
		iters = append(iters, compaction.NewSliceIter(memEntries))
		rts = append(rts, mt.RangeTombstones()...)
	}
	for _, runs := range rs.v.levels {
		for _, r := range runs {
			for _, h := range r {
				it := h.r.NewIter()
				iters = append(iters, &countingIter{it: it, total: &totalBytes})
				rts = append(rts, h.r.RangeTombstones...)
			}
		}
	}
	merged := compaction.NewMergeIter(compaction.MergeConfig{
		LastLevel:       true, // unique view: tombstones consume and vanish
		RangeTombstones: rts,
	}, iters...)
	for {
		e, ok := merged.Next()
		if !ok {
			break
		}
		uniqueBytes += int64(e.Size())
	}
	if err := merged.Error(); err != nil {
		return 0, 0, err
	}
	return totalBytes, uniqueBytes, nil
}

// countingIter sums the sizes of entries passing through it.
type countingIter struct {
	it    compaction.Iterator
	total *int64
}

// Next implements compaction.Iterator.
func (c *countingIter) Next() (base.Entry, bool) {
	e, ok := c.it.Next()
	if ok {
		*c.total += int64(e.Size())
	}
	return e, ok
}

// Error implements compaction.Iterator.
func (c *countingIter) Error() error { return c.it.Error() }
