package lsm

import (
	"sync"

	"lethe/internal/base"
	"lethe/internal/memtable"
)

// This file implements the group-commit write pipeline.
//
// Writers encode their operations into a commitBatch (a single Put, Delete,
// or RangeDelete becomes a one-entry batch) and enqueue it; sequence numbers
// are assigned at enqueue, in queue order. The first writer to find the
// pipeline idle becomes the leader: it repeatedly snatches everything queued
// behind it, performs the group's writability check and buffer capture under
// one brief db.mu critical section, writes the whole group to the WAL as a
// single CRC-framed multi-entry record, issues one Sync for the group (per
// Options.WALSync), and then wakes the group's followers. Each follower
// applies its own batch to the captured memtable concurrently — the skiplist
// has its own lock — and publishes its sequence range in enqueue order
// before returning. The leader commits exactly one group (the one carrying
// its own batch) and then hands leadership to the first batch still queued,
// so arrival bursts collapse into few WAL writes and syncs while no caller
// is ever stuck serving other writers' groups.
//
// db.mu is held only for the per-group writability check / buffer capture
// and for buffer rotation — never across WAL I/O or memtable inserts.
//
// Synchronous mode (DisableBackgroundMaintenance, forced under a manual
// clock) and SyncAlways never reach this path: they use commitInlineLocked,
// the serialized per-commit path, preserving the paper's deterministic
// execution.

// commitBatch is one writer's atomic set of entries traveling through the
// commit pipeline.
type commitBatch struct {
	entries []base.Entry
	// seqLo..seqHi is the contiguous sequence range assigned at enqueue.
	seqLo, seqHi base.SeqNum
	// mem is the buffer this batch applies into, captured by the leader
	// under db.mu together with the in-flight apply registration.
	mem *memtable.Memtable
	// wg tracks the whole group's applies; the leader waits on it before
	// checking buffer rotation.
	wg *sync.WaitGroup
	// err is the group's commit error, set before applyReady is closed.
	err error
	// applyReady is closed by the leader once the group is logged (or has
	// failed); a follower then applies its own entries and returns.
	applyReady chan struct{}
	// promote is closed by the outgoing leader to hand this (still-queued)
	// batch's goroutine the leadership; exactly one of applyReady and
	// promote fires first for any batch.
	promote chan struct{}
}

// usePipeline reports whether writes go through the group-commit pipeline.
// bgStarted and WALSync are immutable after Open, so this needs no lock.
func (db *DB) usePipeline() bool {
	return db.bgStarted && db.opts.WALSync != SyncAlways
}

// commit routes a writer's entries to the group-commit pipeline or, in
// synchronous mode and under SyncAlways, to the serialized inline path. The
// entries carry a zero sequence number; commit assigns real ones.
func (db *DB) commit(entries []base.Entry) error {
	if db.usePipeline() {
		return db.commitPipeline(entries)
	}
	if db.bgStarted {
		// Background mode on the serialized path (SyncAlways): gate on the
		// global memtable budget before taking db.mu, so a budget stall
		// never blocks the flush installs that resolve it.
		if err := db.admitMemory(); err != nil {
			return err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writableLocked(); err != nil {
		return err
	}
	return db.commitInlineLocked(entries)
}

// commitInlineLocked is the serialized commit path: assign sequence numbers,
// log the batch as one group record, sync per policy, apply, publish.
// Callers hold db.mu and have passed writableLocked.
func (db *DB) commitInlineLocked(entries []base.Entry) error {
	seqLo := db.seq + 1
	for i := range entries {
		db.seq++
		entries[i].Key.Trailer = base.MakeTrailer(db.seq, entries[i].Key.Kind())
		db.m.userBytesWritten.Add(int64(entries[i].Size()))
	}
	seqHi := db.seq
	if db.wal != nil {
		err := db.wal.AppendGroup(entries)
		if err == nil && db.opts.WALSync != SyncNever {
			if err = db.wal.Sync(); err == nil {
				db.m.walSyncs.Add(1)
			}
		}
		if err != nil {
			// Burn the range so the publication frontier stays gapless, and
			// poison the engine like the pipeline path does: the log may now
			// hold a torn record, and a later commit appended behind it
			// would be stranded beyond the corruption on replay.
			db.publishRange(seqLo, seqHi)
			db.setBackgroundErrLocked(err)
			return err
		}
	}
	db.mem.ApplyAll(entries)
	db.updateMemoryUsageLocked()
	db.m.commitGroups.Add(1)
	db.m.commitBatches.Add(1)
	db.m.commitEntries.Add(int64(len(entries)))
	db.publishRange(seqLo, seqHi)
	return db.maybeRotateBufferLocked()
}

// commitPipeline enqueues the entries as one batch and drives or joins the
// group-commit protocol described at the top of the file.
func (db *DB) commitPipeline(entries []base.Entry) error {
	// Cross-shard memory gate, before the batch takes a sequence number or
	// queue position: a writer stalled here holds nothing, so the shared
	// pool's flushes drain the backlog that releases it.
	if err := db.admitMemory(); err != nil {
		return err
	}
	b := &commitBatch{
		entries:    entries,
		applyReady: make(chan struct{}),
		promote:    make(chan struct{}),
	}
	db.cq.mu.Lock()
	b.seqLo = db.seq + 1
	for i := range entries {
		db.seq++
		entries[i].Key.Trailer = base.MakeTrailer(db.seq, entries[i].Key.Kind())
	}
	b.seqHi = db.seq
	db.cq.pending = append(db.cq.pending, b)
	leader := !db.cq.active
	if leader {
		db.cq.active = true
	}
	db.cq.mu.Unlock()

	var bytes int64
	for i := range entries {
		bytes += int64(entries[i].Size())
	}
	db.m.userBytesWritten.Add(bytes)

	if !leader {
		// Follower: wait to be committed as part of a leader's group — or
		// to be promoted to leader if the previous leader retires while
		// this batch is still queued.
		select {
		case <-b.applyReady:
			if b.err != nil {
				return b.err
			}
			db.applyCommitted(b)
			return nil
		case <-b.promote:
		}
	}
	return db.leadCommit(b)
}

// leadCommit runs the leader role for the group containing b: snatch
// everything queued, commit it as one group, then retire — handing
// leadership to the first still-queued batch, if any, so no caller ever
// serves more than its own group (bounded leader latency, RocksDB-style
// leader chaining).
func (db *DB) leadCommit(b *commitBatch) error {
	db.cq.mu.Lock()
	group := db.cq.pending
	db.cq.pending = nil
	db.cq.mu.Unlock()
	// group contains at least b: a batch is only promoted (or elected at
	// enqueue) while it sits in the queue.

	rerr := db.commitGroup(group, b)

	db.cq.mu.Lock()
	if len(db.cq.pending) == 0 {
		db.cq.active = false
		db.cq.idle.Broadcast()
	} else {
		close(db.cq.pending[0].promote)
	}
	db.cq.mu.Unlock()

	if b.err != nil {
		return b.err
	}
	// A rotation error is reported to the leader's caller; the group's
	// members have committed, and the failure also travels via bgErr.
	return rerr
}

// commitGroup commits one drained group: writability check and buffer
// capture under db.mu, one WAL group record, one Sync per policy, concurrent
// member applies, then a rotation check once the group has fully landed.
// self is the leader's own batch, always a member of group (it has no
// waiting goroutine, so the leader applies it here). The returned error is
// the rotation error, if any; commit errors travel on the batches.
func (db *DB) commitGroup(group []*commitBatch, self *commitBatch) error {
	db.mu.Lock()
	err := db.writableLocked()
	var mem *memtable.Memtable
	if err == nil {
		mem = db.mem
		mem.BeginApplies(len(group))
		// Re-sync the global budget with the buffer's growth since the last
		// group (applies run outside db.mu; this is the cheap sync point).
		db.updateMemoryUsageLocked()
	}
	db.mu.Unlock()

	if err == nil && db.wal != nil {
		all := db.groupScratch[:0]
		for _, b := range group {
			all = append(all, b.entries...)
		}
		if err = db.wal.AppendGroup(all); err == nil && db.opts.WALSync == SyncGrouped {
			if err = db.wal.Sync(); err == nil {
				db.m.walSyncs.Add(1)
			}
		}
		// Keep the scratch array's capacity but drop its references, so a
		// one-time large group does not pin its keys and values for the
		// DB's lifetime.
		for i := range all {
			all[i] = base.Entry{}
		}
		db.groupScratch = all[:0]
		if err != nil {
			// The group never became visible; un-register its applies and
			// poison the engine — the log may now hold a torn record, so
			// letting later commits append behind it would strand them
			// beyond the corruption on replay.
			for range group {
				mem.EndApply()
			}
			db.mu.Lock()
			db.setBackgroundErrLocked(err)
			db.mu.Unlock()
		}
	}

	if err != nil {
		// Burn the group's sequence numbers so publication stays gapless,
		// then fail every member.
		db.publishRange(group[0].seqLo, group[len(group)-1].seqHi)
		for _, b := range group {
			b.err = err
			close(b.applyReady)
		}
		return nil
	}

	db.m.commitGroups.Add(1)
	db.m.commitBatches.Add(int64(len(group)))
	var n int64
	for _, b := range group {
		n += int64(len(b.entries))
	}
	db.m.commitEntries.Add(n)
	if g := int64(len(group)); g > db.m.maxCommitGroup.Load() {
		db.m.maxCommitGroup.Set(g) // single leader at a time: no lost update
	}

	var wg sync.WaitGroup
	wg.Add(len(group))
	for _, b := range group {
		b.mem = mem
		b.wg = &wg
	}
	for _, b := range group {
		close(b.applyReady)
	}
	if self != nil {
		db.applyCommitted(self)
	}
	wg.Wait()

	// The whole group has landed in the buffer; now the rotation check is
	// safe. A rotation failure poisons the engine and is reported to the
	// leader's caller.
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed || db.bgErr != nil {
		return nil
	}
	if rerr := db.maybeRotateBufferLocked(); rerr != nil {
		db.setBackgroundErrLocked(rerr)
		return rerr
	}
	return nil
}

// applyCommitted performs one batch's memtable insert and ordered sequence
// publication — the follower half of the pipeline. It runs without db.mu.
func (db *DB) applyCommitted(b *commitBatch) {
	b.mem.ApplyAll(b.entries)
	b.mem.EndApply()
	b.wg.Done()
	db.publishRange(b.seqLo, b.seqHi)
}

// publishRange publishes the contiguous sequence range [lo, hi] in order:
// it blocks until every lower sequence number has been published, then
// advances the published frontier to hi. This is what makes sequence
// visibility ordered even though group members apply concurrently.
func (db *DB) publishRange(lo, hi base.SeqNum) {
	db.pubMu.Lock()
	for db.published != lo-1 {
		db.pubCond.Wait()
	}
	db.published = hi
	db.pubCond.Broadcast()
	db.pubMu.Unlock()
}

// PublishedSeq returns the current published-sequence frontier: every
// sequence number at or below it has fully committed (logged and applied, or
// failed and burned). It is nondecreasing and gapless.
func (db *DB) PublishedSeq() base.SeqNum {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	return db.published
}

// drainCommits blocks until the commit pipeline is idle: no leader active
// and nothing queued. Close uses it so the WAL is quiescent before it is
// closed; writers arriving afterwards fail their writability check without
// touching the log.
func (db *DB) drainCommits() {
	db.cq.mu.Lock()
	for db.cq.active {
		db.cq.idle.Wait()
	}
	db.cq.mu.Unlock()
}
