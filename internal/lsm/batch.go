package lsm

import (
	"fmt"

	"lethe/internal/base"
)

// BatchOp is one operation inside an atomic batch.
type BatchOp struct {
	// Kind is KindSet, KindDelete, or KindRangeDelete.
	Kind base.Kind
	// Key is the sort key (range deletes: the inclusive start).
	Key []byte
	// EndKey is the exclusive end of a range delete.
	EndKey []byte
	// DKey is the secondary delete key for puts.
	DKey base.DeleteKey
	// Value is the payload for puts.
	Value []byte
}

// ApplyBatch applies all operations atomically with respect to concurrent
// readers and crash recovery: the batch's records reach the WAL before any
// of them is visible, and sequence numbers are contiguous, so recovery
// replays either none or all of a synced batch's prefix.
func (db *DB) ApplyBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.writableLocked(); err != nil {
		return err
	}
	entries := make([]base.Entry, 0, len(ops))
	for _, op := range ops {
		db.seq++
		switch op.Kind {
		case base.KindSet:
			entries = append(entries, base.MakeEntry(op.Key, db.seq, base.KindSet, op.DKey, op.Value))
		case base.KindDelete:
			entries = append(entries, base.MakeEntry(op.Key, db.seq, base.KindDelete,
				base.DeleteKey(db.opts.Clock.Now().UnixNano()), nil))
		case base.KindRangeDelete:
			if base.CompareUserKeys(op.Key, op.EndKey) >= 0 {
				return fmt.Errorf("lsm: batch range delete [%q, %q) is empty", op.Key, op.EndKey)
			}
			entries = append(entries, base.MakeEntry(op.Key, db.seq, base.KindRangeDelete,
				base.DeleteKey(db.opts.Clock.Now().UnixNano()), op.EndKey))
		default:
			return fmt.Errorf("lsm: unsupported batch op kind %v", op.Kind)
		}
	}
	// Log first, then apply: a crash between the two replays the batch.
	if db.wal != nil {
		for _, e := range entries {
			if err := db.wal.Append(e); err != nil {
				return err
			}
		}
		if err := db.wal.Sync(); err != nil {
			return err
		}
	}
	for _, e := range entries {
		db.m.userBytesWritten.Add(int64(e.Size()))
		db.mem.Apply(e)
	}
	return db.maybeRotateBufferLocked()
}
