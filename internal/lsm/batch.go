package lsm

import (
	"fmt"

	"lethe/internal/base"
)

// BatchOp is one operation inside an atomic batch.
type BatchOp struct {
	// Kind is KindSet, KindDelete, or KindRangeDelete.
	Kind base.Kind
	// Key is the sort key (range deletes: the inclusive start).
	Key []byte
	// EndKey is the exclusive end of a range delete.
	EndKey []byte
	// DKey is the secondary delete key for puts.
	DKey base.DeleteKey
	// Value is the payload for puts.
	Value []byte
}

// ApplyBatch applies all operations atomically with respect to concurrent
// readers and crash recovery: the batch travels the commit pipeline as one
// unit, its records reach the WAL inside a single group record before any of
// them is visible, and sequence numbers are contiguous in submission order —
// so recovery replays either all of a batch's operations or none of them (a
// group torn mid-record is dropped whole).
func (db *DB) ApplyBatch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	entries := make([]base.Entry, 0, len(ops))
	for _, op := range ops {
		switch op.Kind {
		case base.KindSet:
			entries = append(entries, base.MakeEntry(op.Key, 0, base.KindSet, op.DKey, op.Value))
		case base.KindDelete:
			entries = append(entries, base.MakeEntry(op.Key, 0, base.KindDelete,
				base.DeleteKey(db.opts.Clock.Now().UnixNano()), nil))
		case base.KindRangeDelete:
			if base.CompareUserKeys(op.Key, op.EndKey) >= 0 {
				return fmt.Errorf("lsm: batch range delete [%q, %q) is empty", op.Key, op.EndKey)
			}
			entries = append(entries, base.MakeEntry(op.Key, 0, base.KindRangeDelete,
				base.DeleteKey(db.opts.Clock.Now().UnixNano()), op.EndKey))
		default:
			return fmt.Errorf("lsm: unsupported batch op kind %v", op.Kind)
		}
	}
	return db.commit(entries)
}
