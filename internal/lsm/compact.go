package lsm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/sstable"
	"lethe/internal/vfs"
)

// Compactions are split into three phases so the background workers can do
// the expensive part outside db.mu:
//
//   - prepareCompactionLocked resolves a picker decision against the current
//     version: which handles merge, where outputs land, whether the move is
//     trivial. It pins the version the decision was made against.
//   - execute performs the merge I/O. It touches no DB state beyond atomic
//     metrics and the atomic file-number counter, so it runs with or without
//     db.mu held.
//   - installCompactionLocked builds the successor version from the *current*
//     one (level 0 may have gained flushed runs in the meantime), commits the
//     manifest, installs, and marks consumed inputs obsolete — they are
//     physically deleted when the last version (or reader) referencing them
//     drains.
//
// Synchronous mode runs all three phases inline under db.mu, which preserves
// the seed engine's deterministic execution exactly.

// compactionKind discriminates the structural shapes a compaction can take.
type compactionKind int

const (
	// compactLeveled merges source files with the overlapping files of the
	// target level's single run (§2 "Partial Compaction").
	compactLeveled compactionKind = iota
	// compactTrivialMove reassigns files to the target level without I/O
	// (§4.1.3).
	compactTrivialMove
	// compactTiered merges all runs of the source level into one run
	// appended to the target level.
	compactTiered
	// compactRewriteLast rewrites TTL-expired last-level file(s) in place,
	// persisting their tombstones.
	compactRewriteLast
	// compactMigrate copies files across the tier boundary — a trivial move
	// whose destination level lives on the other tier, or a placement repair
	// for a file the policy no longer matches. The copy lands under the same
	// file number; the manifest commit naming the new tier is the durability
	// point, and the stale copy is deleted only after it.
	compactMigrate
	// compactNoop is a defensive empty decision (e.g. a tiered pick on an
	// empty level); it changes nothing.
	compactNoop
)

// compactionJob carries one compaction through its three phases.
type compactionJob struct {
	kind compactionKind
	d    compaction.Decision
	// fs is the filesystem the merge outputs are written through: the
	// rate-limited maintenance FS for scheduler-dispatched jobs (identical
	// to the raw FS in synchronous mode, which has no limiter).
	fs     vfs.FS
	v      *version // pinned snapshot the decision was resolved against
	src    int
	target int
	isLast bool
	// remote is the tier the job's outputs land on — the target level's
	// placement. fs is the matching tier's maintenance filesystem.
	remote     bool
	srcHandles run
	overlap    run // target-run files joining the merge (leveled only)
	outputs    run // filled by execute
	// levelAtPrepare records the files present in the target level when the
	// job was prepared (rewrite-last only): a run flushed to the level while
	// the merge ran must stay a separate, newer run at install rather than
	// be flattened into the rewrite's output run.
	levelAtPrepare map[uint64]bool
}

// inputs returns every file the job consumes.
func (job *compactionJob) inputs() run {
	return append(append(run{}, job.srcHandles...), job.overlap...)
}

// levelsTouched returns the levels a job structurally modifies, for the
// background scheduler's conflict rule.
func (job *compactionJob) levelsTouched() []int {
	if job.src == job.target {
		return []int{job.src}
	}
	return []int{job.src, job.target}
}

// release drops the job's pin on the version it was prepared against. Call
// without db.mu held.
func (job *compactionJob) release() { _ = job.v.unref() }

// Maintain runs compactions until no trigger fires: every TTL-expired file
// has been pushed onward and every level is within capacity. In synchronous
// mode it runs them inline, exactly as the paper's experiments do after
// advancing the simulated clock. In background mode it kicks the flush and
// compaction workers and blocks until the pipeline is quiescent with no
// trigger left.
func (db *DB) Maintain() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.bgStarted {
		return db.maintainLocked()
	}
	for {
		if db.closed {
			return ErrClosed
		}
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.quiescentLocked() {
			tree := db.pickerTreeLocked(nil)
			_, picked := compaction.Pick(tree, db.opts.Mode, db.ttls, db.opts.Clock.Now())
			if _, _, misplaced := db.findMisplacedLocked(nil); !picked && !misplaced {
				changed, err := db.walMaintenanceLocked()
				if err != nil {
					return err
				}
				if !changed {
					return nil
				}
			}
		}
		db.kickMaintenance()
		db.bgCond.Wait()
	}
}

// maintainLocked is the synchronous maintenance loop. Callers hold db.mu.
func (db *DB) maintainLocked() error {
	for {
		tree := db.pickerTreeLocked(nil)
		decision, ok := compaction.Pick(tree, db.opts.Mode, db.ttls, db.opts.Clock.Now())
		if !ok {
			break
		}
		if err := db.runCompactionLocked(decision); err != nil {
			return err
		}
	}
	// With the tree settled, repair placement: files whose tier no longer
	// matches their level (a policy change across a reopen, or a
	// FullTreeCompact output) are copied across the boundary one at a time.
	for {
		job := db.pickMigrationLocked(nil)
		if job == nil {
			break
		}
		err := db.executeCompaction(job)
		if err == nil {
			err = db.installCompactionLocked(job)
		}
		job.release()
		if err != nil {
			return err
		}
	}
	if _, err := db.walMaintenanceLocked(); err != nil {
		return err
	}
	return nil
}

// walMaintenanceLocked enforces Dth on the WAL (§4.1.5): tombstones may
// linger in the log past Dth if the buffer is quiet, so live segments older
// than Dth are rewritten keeping only records not yet durable in sstables,
// and an over-age live segment forces a flush (sealed inline in synchronous
// mode, queued in background mode). It reports whether it changed state
// that warrants another maintenance pass.
func (db *DB) walMaintenanceLocked() (bool, error) {
	if db.wal == nil || db.opts.Dth <= 0 {
		return false, nil
	}
	flushed := db.flushedSeq
	if _, err := db.wal.PurgeExpired(db.opts.Dth, func(e base.Entry) bool {
		return e.Key.SeqNum() > flushed
	}); err != nil {
		return false, err
	}
	if db.wal.LiveAge() > db.opts.Dth && !db.mem.Empty() {
		if !db.bgStarted {
			return true, db.flushLocked()
		}
		if err := db.sealMemtableLocked(); err != nil {
			return true, err
		}
		db.kickMaintenance()
		return true, nil
	}
	return false, nil
}

// runCompactionLocked executes one compaction inline (synchronous mode).
func (db *DB) runCompactionLocked(d compaction.Decision) error {
	job := db.prepareCompactionLocked(d)
	defer job.release()
	if err := db.executeCompaction(job); err != nil {
		return err
	}
	return db.installCompactionLocked(job)
}

// pickerTreeLocked builds the picker's read-only view of the current
// structure, excluding files claimed by in-flight background compactions
// (mask). Callers hold db.mu.
func (db *DB) pickerTreeLocked(mask map[uint64]bool) *compaction.Tree {
	v := db.current
	tree := &compaction.Tree{TreeEntries: treeEntries(v, mask)}
	if db.opts.Tiering {
		tree.TieredRunLimit = db.opts.SizeRatio
	}
	for l, runs := range v.levels {
		var lvl [][]*sstable.Meta
		for _, r := range runs {
			var metas []*sstable.Meta
			for _, h := range r {
				if mask[h.meta.FileNum] {
					continue
				}
				metas = append(metas, h.meta)
			}
			if len(metas) > 0 {
				lvl = append(lvl, metas)
			}
		}
		tree.Levels = append(tree.Levels, lvl)
		tree.CapacityBytes = append(tree.CapacityBytes, db.capacityBytes(l))
		tree.LiveBytes = append(tree.LiveBytes, liveBytes(v, l, mask))
	}
	return tree
}

// prepareCompactionLocked resolves a decision into a job. Callers hold
// db.mu; the returned job pins the current version until released.
//
// Leveling (§2 "Partial Compaction"): the chosen source file(s) merge with
// the overlapping files of the next level's single run; outputs replace the
// overlapped region. Tiering: the source level's runs merge into one new run
// appended to the next level. When the destination is the tree's last level
// and every run of that level participates, tombstones are discarded — the
// deletes persist (§3.1.1).
func (db *DB) prepareCompactionLocked(d compaction.Decision) *compactionJob {
	job := db.prepareCompactionShapeLocked(d)
	db.setJobTierLocked(job)
	return job
}

// setJobTierLocked finalizes a job's tier routing once its target level is
// known: outputs land on the target level's tier, written through that
// tier's maintenance filesystem. A trivial move whose inputs sit on the
// wrong side of the boundary becomes a migration — the bytes must change
// devices; tier membership is never reassigned in place. Callers hold db.mu.
func (db *DB) setJobTierLocked(job *compactionJob) {
	job.remote = db.remoteLevel(job.target)
	job.fs = db.maintTierFS(job.remote)
	if job.kind == compactTrivialMove {
		for _, h := range job.srcHandles {
			if h.remote != job.remote {
				job.kind = compactMigrate
				break
			}
		}
	}
}

// maintTierFS returns the maintenance (rate-limited in background mode)
// filesystem of a tier.
func (db *DB) maintTierFS(remote bool) vfs.FS {
	if remote {
		return db.maintRemoteFS
	}
	return db.maintFS
}

// prepareCompactionShapeLocked resolves the structural shape of a decision;
// prepareCompactionLocked layers tier routing on top.
func (db *DB) prepareCompactionShapeLocked(d compaction.Decision) *compactionJob {
	job := &compactionJob{d: d, fs: db.maintFS, v: db.current.ref(), src: d.Level}
	lv := job.v.levels

	if db.opts.Tiering {
		job.kind = compactTiered
		for _, r := range lv[job.src] {
			job.srcHandles = append(job.srcHandles, r...)
		}
		if len(job.srcHandles) == 0 {
			job.kind = compactNoop
			return job
		}
		job.target = job.src + 1
		newHeight := len(lv)
		if job.target >= newHeight {
			newHeight = job.target + 1
		}
		// Tombstones are discarded only when the destination is the last
		// level and holds no other runs — the only point where all older
		// versions are guaranteed to be in the merge.
		job.isLast = job.target == newHeight-1 &&
			(job.target >= len(lv) || len(lv[job.target]) == 0)
		return job
	}

	lastLevel := len(lv) - 1
	if job.src == lastLevel && d.Trigger == compaction.TriggerTTL {
		// A TTL-expired file already at the last level is rewritten in
		// place, discarding its tombstones and everything they shadow.
		// Point tombstones are safe to drop in a single-file rewrite (keys
		// are unique across a run), but a file carrying range tombstones may
		// shadow entries in sibling files, so the whole level joins the
		// merge in that case.
		job.kind = compactRewriteLast
		job.target = job.src
		job.isLast = true
		handles := refsToHandles(lv, d.Files)
		expand := false
		for _, h := range handles {
			if h.meta.NumRangeTombstones > 0 {
				expand = true
			}
		}
		if expand || len(lv[job.src]) > 1 {
			handles = nil
			for _, r := range lv[job.src] {
				handles = append(handles, r...)
			}
		}
		job.srcHandles = handles
		job.levelAtPrepare = make(map[uint64]bool)
		for _, r := range lv[job.src] {
			for _, h := range r {
				job.levelAtPrepare[h.meta.FileNum] = true
			}
		}
		return job
	}

	job.target = job.src + 1
	newHeight := len(lv)
	if job.target >= newHeight {
		newHeight = job.target + 1
	}
	job.isLast = job.target == newHeight-1
	job.srcHandles = refsToHandles(lv, d.Files)
	minS, maxS := keyRangeOf(job.srcHandles)
	if job.target < len(lv) && len(lv[job.target]) > 0 {
		for _, h := range lv[job.target][0] {
			if overlapsRange(h.meta, minS, maxS) {
				job.overlap = append(job.overlap, h)
			}
		}
	}
	if len(job.overlap) == 0 && !(job.isLast && anyTombstones(job.srcHandles)) && job.src != 0 {
		// Trivial move (§4.1.3: "when a compaction simply moves a file from
		// one disk level to the next without physical sort-merging"): no
		// overlapping keys below, so the file descends without I/O. Skipped
		// when tombstones reach the last level (they must be discarded,
		// which needs a rewrite) and for the multi-run first level.
		job.kind = compactTrivialMove
		return job
	}
	job.kind = compactLeveled
	return job
}

// executeCompaction performs the job's merge I/O, filling job.outputs.
// Safe to call with or without db.mu held.
func (db *DB) executeCompaction(job *compactionJob) error {
	if job.kind == compactTrivialMove || job.kind == compactNoop {
		return nil
	}
	if job.kind == compactMigrate {
		return db.executeMigration(job)
	}
	outputs, err := db.mergeFiles(job.srcHandles, job.overlap, job.isLast, job.d.Trigger, job.fs, job.remote)
	if err != nil {
		return err
	}
	job.outputs = outputs
	return nil
}

// executeMigration copies each misplaced input to the job's tier — same file
// number and name, different device — fsyncs the copy, and opens a fresh
// handle on it. The manifest is untouched until install, so a crash mid-copy
// leaves the original the only manifest-visible copy and the partial is
// collected as an orphan at the next open. Correctly-placed inputs pass
// through by handle with no I/O. Safe without db.mu: inputs are pinned by
// the job's version reference.
//
// In background mode a multi-file job copies files concurrently under merge
// slots borrowed from the shared worker pool, so a placement-repair wave
// overlaps several paced tier transfers instead of serializing them.
func (db *DB) executeMigration(job *compactionJob) error {
	began := time.Now()
	job.outputs = make(run, len(job.srcHandles))
	var pending []int
	for i, h := range job.srcHandles {
		if h.remote == job.remote {
			job.outputs[i] = h
			continue
		}
		pending = append(pending, i)
	}
	width := 1
	if db.rt != nil && len(pending) > 1 {
		want := len(pending) - 1
		if limit := db.mergeWidth() - 1; want > limit {
			want = limit
		}
		if want > 0 {
			granted := db.rt.AcquireMergeSlots(want)
			width = granted + 1
			if granted > 0 {
				defer db.rt.ReleaseMergeSlots(granted)
			}
		}
	}
	errs := make([]error, len(pending))
	copyAt := func(p int) {
		i := pending[p]
		errs[p] = db.migrateFile(job, i, job.srcHandles[i])
	}
	var wg sync.WaitGroup
	for g := 1; g < width; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for p := g; p < len(pending); p += width {
				copyAt(p)
			}
		}(g)
	}
	for p := 0; p < len(pending); p += width {
		copyAt(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Completed sibling copies are not in any manifest yet; the
			// orphan sweep reclaims them at the next open.
			return err
		}
	}
	db.m.tierMigrateNanos.Add(time.Since(began).Nanoseconds())
	return nil
}

// migrateFile copies one misplaced file across the tier boundary and installs
// the fresh handle at its slot in job.outputs. Concurrent-safe: each call
// touches a distinct index and the counters are atomic.
func (db *DB) migrateFile(job *compactionJob, i int, h *fileHandle) error {
	g, err := job.fs.Create(h.name)
	if err != nil {
		return fmt.Errorf("lsm: migrate %s: create copy: %w", h.name, err)
	}
	n, err := h.r.CopyTo(g)
	if err == nil {
		err = g.Sync()
	}
	if cerr := g.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("lsm: migrate %s: %w", h.name, err)
	}
	newH, err := db.openFileAt(h.meta.FileNum, job.remote)
	if err != nil {
		return fmt.Errorf("lsm: migrate %s: %w", h.name, err)
	}
	job.outputs[i] = newH
	db.m.tierMigrations.Add(1)
	db.m.tierMigratedBytes.Add(n)
	return nil
}

// installCompactionLocked builds the successor version from the current one,
// commits it, and installs. Callers hold db.mu.
func (db *DB) installCompactionLocked(job *compactionJob) error {
	if job.kind == compactNoop {
		return nil
	}
	if job.kind == compactTrivialMove {
		return db.installTrivialMoveLocked(job)
	}
	if job.kind == compactMigrate {
		return db.installMigrationLocked(job)
	}

	consumed := job.inputs()
	drop := make(map[uint64]bool, len(consumed))
	for _, h := range consumed {
		drop[h.meta.FileNum] = true
	}
	levels := db.current.withoutFiles(drop)
	for len(levels) <= job.target {
		levels = append(levels, nil)
	}

	switch job.kind {
	case compactTiered:
		// The merged run is newest relative to existing runs of the target.
		levels[job.target] = append([]run{job.outputs}, levels[job.target]...)
	case compactRewriteLast:
		// Outputs join the level's surviving prepare-time files as a single
		// run. Runs that landed after prepare (a background flush installing
		// at this level while the merge ran) overlap the rewrite's key space
		// and are newer — flattening them in would break the disjoint-run
		// invariant and could resurface stale values — so they stay separate
		// runs ahead of the rewritten one.
		var newer []run
		var survivors run
		for _, r := range levels[job.target] {
			preexisting := true
			for _, h := range r {
				if !job.levelAtPrepare[h.meta.FileNum] {
					preexisting = false
					break
				}
			}
			if preexisting {
				survivors = append(survivors, r...)
			} else {
				newer = append(newer, r)
			}
		}
		newRun := append(survivors, job.outputs...)
		sortRunByMinS(newRun)
		levels[job.target] = append(newer, newRun)
	default: // compactLeveled
		// Outputs join the survivors of the target run, in S order; any
		// older runs of the target level are preserved.
		var newRun run
		if len(levels[job.target]) > 0 {
			newRun = append(newRun, levels[job.target][0]...)
		}
		newRun = append(newRun, job.outputs...)
		sortRunByMinS(newRun)
		if len(levels[job.target]) > 0 {
			levels[job.target][0] = newRun
		} else {
			levels[job.target] = []run{newRun}
		}
	}

	v := &version{levels: levels}
	if err := db.commitManifestLocked(v); err != nil {
		return err
	}
	// Mark inputs obsolete BEFORE installing: installation may drain the old
	// version's last reference, and the handles must already know their
	// files are dead to delete them on that drain.
	for _, h := range consumed {
		h.obsolete.Store(true)
	}
	grew := len(v.levels) != len(db.current.levels)
	db.installVersionLocked(v)
	if grew {
		db.recomputeTTLs() // tree height changed (Fig. 4 step 1)
	}
	return nil
}

// installTrivialMoveLocked reassigns the job's files to the target level
// without I/O.
func (db *DB) installTrivialMoveLocked(job *compactionJob) error {
	drop := make(map[uint64]bool, len(job.srcHandles))
	for _, h := range job.srcHandles {
		drop[h.meta.FileNum] = true
	}
	levels := db.current.withoutFiles(drop)
	for len(levels) <= job.target {
		levels = append(levels, nil)
	}
	var newRun run
	if len(levels[job.target]) > 0 {
		newRun = append(newRun, levels[job.target][0]...)
	}
	newRun = append(newRun, job.srcHandles...)
	sortRunByMinS(newRun)
	if len(levels[job.target]) > 0 {
		levels[job.target][0] = newRun
	} else {
		levels[job.target] = []run{newRun}
	}

	v := &version{levels: levels}
	db.m.compactions.Add(1)
	db.m.trivialMoves.Add(1)
	if job.d.Trigger == compaction.TriggerTTL {
		db.m.compactionsTTL.Add(1)
	} else {
		db.m.compactionsSaturation.Add(1)
	}
	if err := db.commitManifestLocked(v); err != nil {
		return err
	}
	grew := len(v.levels) != len(db.current.levels)
	db.installVersionLocked(v)
	if grew {
		db.recomputeTTLs()
	}
	return nil
}

// installMigrationLocked swaps migrated handles into the tree and commits:
// the manifest commit naming the files on their new tier is the migration's
// durability point. The stale originals are marked obsolete, so they are
// removed from their old device once the last reader drains. Callers hold
// db.mu.
func (db *DB) installMigrationLocked(job *compactionJob) error {
	var levels [][]run
	if job.src == job.target {
		// Placement repair: each migrated handle replaces its original at
		// the same run position, preserving recency order within the level
		// (tiered levels hold several runs whose order shadows entries).
		byNum := make(map[uint64]*fileHandle, len(job.outputs))
		for _, nh := range job.outputs {
			byNum[nh.meta.FileNum] = nh
		}
		levels = db.current.cloneLevels()
		for ri, r := range levels[job.target] {
			for fi, h := range r {
				if nh, ok := byNum[h.meta.FileNum]; ok {
					levels[job.target][ri][fi] = nh
				}
			}
		}
	} else {
		// A trivial move that crossed the tier boundary: the copies join the
		// target level exactly as the move would have placed the originals.
		drop := make(map[uint64]bool, len(job.srcHandles))
		for _, h := range job.srcHandles {
			drop[h.meta.FileNum] = true
		}
		levels = db.current.withoutFiles(drop)
		for len(levels) <= job.target {
			levels = append(levels, nil)
		}
		var newRun run
		if len(levels[job.target]) > 0 {
			newRun = append(newRun, levels[job.target][0]...)
		}
		newRun = append(newRun, job.outputs...)
		sortRunByMinS(newRun)
		if len(levels[job.target]) > 0 {
			levels[job.target][0] = newRun
		} else {
			levels[job.target] = []run{newRun}
		}
		// The move resolves a picker decision; count it like the trivial
		// move it structurally is.
		db.m.compactions.Add(1)
		db.m.trivialMoves.Add(1)
		if job.d.Trigger == compaction.TriggerTTL {
			db.m.compactionsTTL.Add(1)
		} else {
			db.m.compactionsSaturation.Add(1)
		}
	}

	v := &version{levels: levels}
	if err := db.commitManifestLocked(v); err != nil {
		return err
	}
	for _, h := range job.srcHandles {
		if h.remote != job.remote {
			h.obsolete.Store(true)
		}
	}
	grew := len(v.levels) != len(db.current.levels)
	db.installVersionLocked(v)
	if grew {
		db.recomputeTTLs()
	}
	return nil
}

// findMisplacedLocked returns a file whose tier disagrees with its level's
// placement (the policy changed across a reopen, or FullTreeCompact wrote
// the last level locally), skipping files claimed by in-flight jobs.
// Callers hold db.mu.
func (db *DB) findMisplacedLocked(mask map[uint64]bool) (*fileHandle, int, bool) {
	if db.remoteFS == nil {
		return nil, 0, false
	}
	for l, runs := range db.current.levels {
		want := db.remoteLevel(l)
		for _, r := range runs {
			for _, h := range r {
				if !mask[h.meta.FileNum] && h.remote != want {
					return h, l, true
				}
			}
		}
	}
	return nil, 0, false
}

// pickMigrationLocked builds a placement-repair job, or nil when every file
// sits on its level's tier. In synchronous mode it repairs one file per job,
// keeping the manifest history identical to the seed engine's; in background
// mode it batches up to mergeWidth misplaced files of the same level into one
// job so executeMigration can overlap their copies. Each job claims only its
// own files, installs quickly, and yields the scheduler between waves.
// Callers hold db.mu; the job pins the current version until released.
func (db *DB) pickMigrationLocked(mask map[uint64]bool) *compactionJob {
	h, l, ok := db.findMisplacedLocked(mask)
	if !ok {
		return nil
	}
	want := db.remoteLevel(l)
	handles := run{h}
	if limit := db.mergeWidth(); db.bgStarted && limit > 1 {
	scan:
		for _, r := range db.current.levels[l] {
			for _, h2 := range r {
				if len(handles) >= limit {
					break scan
				}
				if h2 != h && !mask[h2.meta.FileNum] && h2.remote != want {
					handles = append(handles, h2)
				}
			}
		}
	}
	return &compactionJob{
		kind:       compactMigrate,
		fs:         db.maintTierFS(want),
		v:          db.current.ref(),
		src:        l,
		target:     l,
		remote:     want,
		srcHandles: handles,
	}
}

// mergeWidth returns the per-job fan-out cap: Subcompactions clamped to the
// shared worker pool, and 1 in synchronous mode (the paper harness stays
// strictly serial and bit-for-bit deterministic).
func (db *DB) mergeWidth() int {
	if db.rt == nil {
		return 1
	}
	k := db.opts.Subcompactions
	if k < 1 {
		k = 1
	}
	if w := db.rt.Workers(); k > w {
		k = w
	}
	return k
}

// partitionInputs collects the inputs' delete-tile index boundaries and cuts
// the job's key space into at most k byte-balanced subranges. Metadata only —
// no data pages are read.
func partitionInputs(inputs run, k int) [][]byte {
	var bounds []compaction.Boundary
	for _, h := range inputs {
		for _, sp := range h.r.TileSpans() {
			bounds = append(bounds, compaction.Boundary{Key: sp.MinS, Bytes: sp.Bytes})
		}
	}
	return compaction.PartitionKeys(bounds, k)
}

// boundedIter trims an sstable iterator to user keys strictly below end.
// Subcompaction cuts are user-key boundaries, so every version of a key stays
// within one subrange and the merge rules see the same neighborhoods they
// would serially.
type boundedIter struct {
	it  *sstable.Iter
	end []byte
}

func (b *boundedIter) Next() (base.Entry, bool) {
	e, ok := b.it.Next()
	if !ok || base.CompareUserKeys(e.Key.UserKey, b.end) >= 0 {
		return base.Entry{}, false
	}
	return e, true
}

func (b *boundedIter) Error() error { return b.it.Error() }

// mergeRange runs one merge pipeline over the inputs restricted to
// [start, end) — nil meaning unbounded on that side — writing its own output
// files. rts is the full tombstone set (shadowing must see every range
// tombstone regardless of the cut); keepRTs is what the caller wants attached
// to this range's output run, non-nil for exactly one subrange so the
// surviving tombstones are installed once.
func (db *DB) mergeRange(inputs run, rts []base.RangeTombstone, start, end []byte, lastLevel bool, keepRTs []base.RangeTombstone, fs vfs.FS, remote bool) (run, compaction.MergeStats, error) {
	var iters []compaction.Iterator
	for _, h := range inputs {
		it := h.r.NewIter()
		if start != nil {
			it.SeekGE(start)
		}
		if end != nil {
			iters = append(iters, &boundedIter{it: it, end: end})
		} else {
			iters = append(iters, it)
		}
	}
	merged := compaction.NewMergeIter(compaction.MergeConfig{
		LastLevel:       lastLevel,
		RangeTombstones: rts,
	}, iters...)

	var entries []base.Entry
	for {
		e, ok := merged.Next()
		if !ok {
			break
		}
		entries = append(entries, e.Clone())
	}
	if err := merged.Error(); err != nil {
		return nil, compaction.MergeStats{}, fmt.Errorf("lsm: compaction merge: %w", err)
	}

	outputs, _, err := db.writeRun(entries, keepRTs, fs, remote)
	if err != nil {
		return nil, compaction.MergeStats{}, err
	}
	return outputs, merged.Stats(), nil
}

// mergeFiles sort-merges upper (newer) and lower (older) inputs into new
// files at the configured file size, applying the merge rules; outputs are
// written through fs (rate-limited for background jobs, raw for foreground
// callers). It updates the engine's (atomic) compaction counters. Safe
// without db.mu: inputs are pinned by the job's version reference and file
// numbers are allocated atomically.
//
// In background mode the job may fan out into disjoint key-range
// subcompactions: the input key space is cut at existing delete-tile
// boundaries into byte-balanced subranges, each merged by its own pipeline
// writing its own outputs, concatenated in key order afterwards. Parallelism
// is borrowed from the shared worker pool via merge slots, so total merge
// concurrency across all shards never exceeds CompactionWorkers. With no cuts
// (tiny job, skewed inputs, synchronous mode) the serial path below runs the
// exact pipeline this function always ran.
func (db *DB) mergeFiles(upper, lower run, lastLevel bool, trigger compaction.TriggerKind, fs vfs.FS, remote bool) (run, error) {
	began := time.Now()
	inputs := append(append(run{}, upper...), lower...)
	var rts []base.RangeTombstone
	var bytesIn int64
	for _, h := range inputs {
		rts = append(rts, h.r.RangeTombstones...)
		bytesIn += h.r.LiveBytesOf()
	}
	// Range tombstones survive the merge unless this was a last-level
	// compaction.
	var keepRTs []base.RangeTombstone
	if !lastLevel {
		keepRTs = rts
	}

	var cuts [][]byte
	if k := db.mergeWidth(); k > 1 {
		cuts = partitionInputs(inputs, k)
		if len(cuts) > 0 {
			// Borrow worker slots for the extra pipelines; under pressure the
			// grant shrinks, and the job re-partitions to the width it got
			// rather than oversubscribe the pool.
			granted := db.rt.AcquireMergeSlots(len(cuts))
			if granted < len(cuts) {
				cuts = partitionInputs(inputs, granted+1)
				if len(cuts) > granted {
					cuts = cuts[:granted]
				}
				db.rt.ReleaseMergeSlots(granted - len(cuts))
				granted = len(cuts)
			}
			if granted > 0 {
				defer db.rt.ReleaseMergeSlots(granted)
			}
		}
	}

	var st compaction.MergeStats
	var outputs run
	if len(cuts) == 0 {
		var err error
		outputs, st, err = db.mergeRange(inputs, rts, nil, nil, lastLevel, keepRTs, fs, remote)
		if err != nil {
			return nil, err
		}
	} else {
		type subResult struct {
			outputs run
			st      compaction.MergeStats
			err     error
		}
		results := make([]subResult, len(cuts)+1)
		var wg sync.WaitGroup
		for i := 1; i <= len(cuts); i++ {
			start := cuts[i-1]
			var end []byte
			if i < len(cuts) {
				end = cuts[i]
			}
			wg.Add(1)
			go func(i int, start, end []byte) {
				defer wg.Done()
				r := &results[i]
				r.outputs, r.st, r.err = db.mergeRange(inputs, rts, start, end, lastLevel, nil, fs, remote)
			}(i, start, end)
		}
		// The first subrange runs on the calling goroutine (it holds the
		// job's implicit worker slot) and carries the surviving range
		// tombstones.
		r0 := &results[0]
		r0.outputs, r0.st, r0.err = db.mergeRange(inputs, rts, nil, cuts[0], lastLevel, keepRTs, fs, remote)
		wg.Wait()
		db.rt.CountSubcompactions(len(cuts) + 1)
		db.m.subcompactions.Add(int64(len(cuts) + 1))
		if w := int64(len(cuts) + 1); w > db.m.maxMergeWidth.Load() {
			db.m.maxMergeWidth.Set(w)
		}
		for i := range results {
			if err := results[i].err; err != nil {
				// Sibling subranges may have written files already; they are
				// unreferenced by any manifest and are swept as local orphans
				// at the next open.
				return nil, err
			}
		}
		// Cuts ascend, so concatenating per-subrange outputs (each internally
		// sorted by writeRun) yields the run in key order.
		for i := range results {
			outputs = append(outputs, results[i].outputs...)
			st.EntriesIn += results[i].st.EntriesIn
			st.EntriesOut += results[i].st.EntriesOut
			st.ObsoleteDropped += results[i].st.ObsoleteDropped
			st.TombstonesDropped += results[i].st.TombstonesDropped
			st.RangeCovered += results[i].st.RangeCovered
		}
	}

	var eventBytes int64 = bytesIn
	for _, h := range outputs {
		eventBytes += h.meta.Size
	}
	if eventBytes > db.m.maxCompactionBytes.Load() {
		db.m.maxCompactionBytes.Set(eventBytes)
	}
	db.m.compactions.Add(1)
	if trigger == compaction.TriggerTTL {
		db.m.compactionsTTL.Add(1)
	} else {
		db.m.compactionsSaturation.Add(1)
	}
	db.m.compactionBytesIn.Add(bytesIn)
	for _, h := range outputs {
		db.m.compactionBytesOut.Add(h.meta.Size)
	}
	db.m.entriesDroppedObsolete.Add(int64(st.ObsoleteDropped))
	db.m.tombstonesDropped.Add(int64(st.TombstonesDropped))
	db.m.rangeCovered.Add(int64(st.RangeCovered))
	db.m.compactionNanos.Add(time.Since(began).Nanoseconds())
	return outputs, nil
}

// FullTreeCompact merges the entire tree (buffer included) into a single run
// at the last level — the state of the art's only way to bound delete
// persistence latency and to execute secondary range deletes (§3.1.3). It
// stalls everything else while it runs (background maintenance is paused and
// db.mu is held throughout), which is exactly the behavior the paper's
// baseline exhibits.
func (db *DB) FullTreeCompact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.pauseBackgroundLocked()
	defer db.resumeBackgroundLocked()
	if err := db.flushLocked(); err != nil {
		return err
	}
	var inputs run
	db.current.forEach(func(h *fileHandle) { inputs = append(inputs, h) })
	if len(inputs) == 0 {
		return nil
	}
	// FullTreeCompact blocks every operation while it runs (db.mu is held
	// throughout): pace it like maintenance and the stall multiplies, so it
	// writes through the raw local filesystem. The output level is unknown
	// until the merged size is — if placement puts it on the remote tier,
	// the next maintenance pass migrates the files there.
	outputs, err := db.mergeFiles(inputs, nil, true, compaction.TriggerSaturation, db.opts.FS, false)
	if err != nil {
		return err
	}
	db.m.fullTreeCompactions.Add(1)

	// Size the tree so the merged data sits in its last level.
	numLevels := 1
	var outBytes int64
	for _, h := range outputs {
		outBytes += h.meta.Size
	}
	for db.capacityBytes(numLevels-1) < outBytes {
		numLevels++
	}
	levels := make([][]run, numLevels)
	levels[numLevels-1] = []run{outputs}
	v := &version{levels: levels}
	if err := db.commitManifestLocked(v); err != nil {
		return err
	}
	for _, h := range inputs {
		h.obsolete.Store(true)
	}
	db.installVersionLocked(v)
	db.recomputeTTLs()
	return nil
}

func anyTombstones(handles run) bool {
	for _, h := range handles {
		if h.meta.HasTombstones() {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Helpers

func sortRunByMinS(r run) {
	sort.Slice(r, func(i, j int) bool {
		return base.CompareUserKeys(r[i].meta.MinS, r[j].meta.MinS) < 0
	})
}

// refsToHandles resolves picker file refs against a level structure. Files
// are matched by number across the whole level rather than by run index: the
// background scheduler picks on a tree with in-flight files masked out, so
// run indices in the decision need not line up with the version's.
func refsToHandles(levels [][]run, refs []compaction.FileRef) run {
	var out run
	for _, ref := range refs {
		for _, r := range levels[ref.Level] {
			for _, h := range r {
				if h.meta.FileNum == ref.Meta.FileNum {
					out = append(out, h)
				}
			}
		}
	}
	return out
}

func keyRangeOf(handles run) (minS, maxS []byte) {
	for _, h := range handles {
		if len(h.meta.MinS) == 0 && len(h.meta.MaxS) == 0 {
			continue
		}
		if minS == nil || base.CompareUserKeys(h.meta.MinS, minS) < 0 {
			minS = h.meta.MinS
		}
		if maxS == nil || base.CompareUserKeys(h.meta.MaxS, maxS) > 0 {
			maxS = h.meta.MaxS
		}
	}
	return minS, maxS
}

func overlapsRange(m *sstable.Meta, minS, maxS []byte) bool {
	if minS == nil {
		return false
	}
	if len(m.MinS) == 0 && len(m.MaxS) == 0 {
		return false
	}
	return base.CompareUserKeys(m.MinS, maxS) <= 0 && base.CompareUserKeys(minS, m.MaxS) <= 0
}
