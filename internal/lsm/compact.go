package lsm

import (
	"fmt"
	"sort"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/sstable"
)

// Maintain runs compactions until no trigger fires: every TTL-expired file
// has been pushed onward and every level is within capacity. It is invoked
// automatically after buffer flushes; experiments also call it after
// advancing the simulated clock.
func (db *DB) Maintain() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.maintainLocked()
}

func (db *DB) maintainLocked() error {
	for {
		tree := db.pickerTree()
		decision, ok := compaction.Pick(tree, db.opts.Mode, db.ttls, db.opts.Clock.Now())
		if !ok {
			break
		}
		if err := db.runCompactionLocked(decision); err != nil {
			return err
		}
	}
	// §4.1.5: tombstones may linger in the WAL past Dth if the buffer is
	// quiet. The dedicated routine rewrites any live segment older than Dth,
	// keeping only records not yet durable in sstables.
	if db.wal != nil && db.opts.Dth > 0 {
		flushed := db.flushedSeq
		if _, err := db.wal.PurgeExpired(db.opts.Dth, func(e base.Entry) bool {
			return e.Key.SeqNum() > flushed
		}); err != nil {
			return err
		}
		// The live segment itself may have outlived Dth while the buffer
		// sat below its flush threshold: flush to seal and release it.
		if db.wal.LiveAge() > db.opts.Dth && !db.mem.Empty() {
			if err := db.flushLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// pickerTree builds the picker's read-only view of the current structure.
func (db *DB) pickerTree() *compaction.Tree {
	tree := &compaction.Tree{TreeEntries: db.treeEntries()}
	if db.opts.Tiering {
		tree.TieredRunLimit = db.opts.SizeRatio
	}
	for l, runs := range db.levels {
		var lvl [][]*sstable.Meta
		for _, r := range runs {
			var metas []*sstable.Meta
			for _, h := range r {
				metas = append(metas, h.meta)
			}
			lvl = append(lvl, metas)
		}
		tree.Levels = append(tree.Levels, lvl)
		tree.CapacityBytes = append(tree.CapacityBytes, db.capacityBytes(l))
		tree.LiveBytes = append(tree.LiveBytes, db.liveBytes(l))
	}
	return tree
}

// runCompactionLocked executes one compaction decided by the picker.
//
// Leveling (§2 "Partial Compaction"): the chosen source file(s) merge with
// the overlapping files of the next level's single run; outputs replace the
// overlapped region. Tiering: the source level's runs merge into one new run
// appended to the next level. When the destination is the tree's last level
// and every run of that level participates, tombstones are discarded — the
// deletes persist (§3.1.1).
func (db *DB) runCompactionLocked(d compaction.Decision) error {
	src := d.Level
	if db.opts.Tiering {
		return db.runTieredCompactionLocked(d)
	}

	lastLevel := len(db.levels) - 1
	if src == lastLevel && d.Trigger == compaction.TriggerTTL {
		// A TTL-expired file already at the last level is rewritten in
		// place, discarding its tombstones and everything they shadow.
		return db.rewriteLastLevelFileLocked(d)
	}

	target := src + 1
	if target >= len(db.levels) {
		db.levels = append(db.levels, nil)
		db.recomputeTTLs() // tree height changed (Fig. 4 step 1)
	}
	if len(db.levels[target]) == 0 {
		db.levels[target] = []run{nil}
	}

	srcHandles := db.refsToHandles(d.Files)
	minS, maxS := keyRangeOf(srcHandles)
	targetRun := db.levels[target][0]
	var overlap, keep run
	for _, h := range targetRun {
		if overlapsRange(h.meta, minS, maxS) {
			overlap = append(overlap, h)
		} else {
			keep = append(keep, h)
		}
	}

	isLast := target == len(db.levels)-1
	if len(overlap) == 0 && !(isLast && anyTombstones(srcHandles)) && src != 0 {
		// Trivial move (§4.1.3: "when a compaction simply moves a file from
		// one disk level to the next without physical sort-merging"): no
		// overlapping keys below, so the file descends without I/O. Skipped
		// when tombstones reach the last level (they must be discarded,
		// which needs a rewrite) and for the multi-run first level.
		return db.trivialMoveLocked(d, srcHandles, target)
	}
	outputs, err := db.mergeFilesLocked(srcHandles, overlap, isLast, d.Trigger)
	if err != nil {
		return err
	}

	// Install: outputs join the survivors of the target run, in S order.
	newRun := append(keep, outputs...)
	sort.Slice(newRun, func(i, j int) bool {
		return base.CompareUserKeys(newRun[i].meta.MinS, newRun[j].meta.MinS) < 0
	})
	db.levels[target][0] = newRun
	db.removeHandlesLocked(d.Files)
	if err := db.commitManifest(); err != nil {
		return err
	}
	return db.deleteFilesLocked(append(srcHandles, overlap...))
}

// runTieredCompactionLocked merges all runs of the source level into a
// single run appended to the next level (classic tiering: a level
// accumulates T runs, then they sort-merge into one run of the level below,
// growing the tree from the last level). Tombstones are discarded only when
// the destination is the last level and holds no other runs — the only
// point where all older versions are guaranteed to be in the merge.
func (db *DB) runTieredCompactionLocked(d compaction.Decision) error {
	src := d.Level
	var inputs run
	for _, r := range db.levels[src] {
		inputs = append(inputs, r...)
	}
	if len(inputs) == 0 {
		return nil
	}
	target := src + 1
	if target >= len(db.levels) {
		db.levels = append(db.levels, nil)
		db.recomputeTTLs()
	}
	isLast := target == len(db.levels)-1 && len(db.levels[target]) == 0
	outputs, err := db.mergeFilesLocked(inputs, nil, isLast, d.Trigger)
	if err != nil {
		return err
	}
	// The merged run is newest relative to existing runs of the target.
	db.levels[target] = append([]run{outputs}, db.levels[target]...)
	db.levels[src] = nil
	if err := db.commitManifest(); err != nil {
		return err
	}
	return db.deleteFilesLocked(inputs)
}

// rewriteLastLevelFileLocked compacts the chosen last-level file(s) with
// themselves, persisting their tombstones. Point tombstones are safe to
// drop in a single-file rewrite (keys are unique across a run), but a file
// carrying range tombstones may shadow entries in sibling files, so the
// whole level joins the merge in that case.
func (db *DB) rewriteLastLevelFileLocked(d compaction.Decision) error {
	handles := db.refsToHandles(d.Files)
	l := d.Level
	expand := false
	for _, h := range handles {
		if h.meta.NumRangeTombstones > 0 {
			expand = true
		}
	}
	if expand || len(db.levels[l]) > 1 {
		handles = nil
		for _, r := range db.levels[l] {
			handles = append(handles, r...)
		}
	}
	outputs, err := db.mergeFilesLocked(handles, nil, true, d.Trigger)
	if err != nil {
		return err
	}
	var newRun run
	drop := map[uint64]bool{}
	for _, h := range handles {
		drop[h.meta.FileNum] = true
	}
	for _, r := range db.levels[l] {
		for _, h := range r {
			if !drop[h.meta.FileNum] {
				newRun = append(newRun, h)
			}
		}
	}
	newRun = append(newRun, outputs...)
	sort.Slice(newRun, func(i, j int) bool {
		return base.CompareUserKeys(newRun[i].meta.MinS, newRun[j].meta.MinS) < 0
	})
	db.levels[l] = []run{newRun}
	if err := db.commitManifest(); err != nil {
		return err
	}
	return db.deleteFilesLocked(handles)
}

// mergeFilesLocked sort-merges upper (newer) and lower (older) inputs into
// new files at the configured file size, applying the merge rules. It
// updates the engine's compaction counters.
func (db *DB) mergeFilesLocked(upper, lower run, lastLevel bool, trigger compaction.TriggerKind) (run, error) {
	var iters []compaction.Iterator
	var rts []base.RangeTombstone
	var bytesIn int64
	for _, h := range append(append(run{}, upper...), lower...) {
		iters = append(iters, h.r.NewIter())
		rts = append(rts, h.r.RangeTombstones...)
		bytesIn += h.r.LiveBytesOf()
	}
	merged := compaction.NewMergeIter(compaction.MergeConfig{
		LastLevel:       lastLevel,
		RangeTombstones: rts,
	}, iters...)

	var entries []base.Entry
	for {
		e, ok := merged.Next()
		if !ok {
			break
		}
		entries = append(entries, e.Clone())
	}
	if err := merged.Error(); err != nil {
		return nil, fmt.Errorf("lsm: compaction merge: %w", err)
	}

	// Range tombstones survive the merge unless this was a last-level
	// compaction.
	var keepRTs []base.RangeTombstone
	if !lastLevel {
		keepRTs = rts
	}

	outputs, _, err := db.writeRun(entries, keepRTs)
	if err != nil {
		return nil, err
	}

	st := merged.Stats()
	var eventBytes int64 = bytesIn
	for _, h := range outputs {
		eventBytes += h.meta.Size
	}
	if eventBytes > db.m.maxCompactionBytes.Load() {
		db.m.maxCompactionBytes.Set(eventBytes)
	}
	db.m.compactions.Add(1)
	if trigger == compaction.TriggerTTL {
		db.m.compactionsTTL.Add(1)
	} else {
		db.m.compactionsSaturation.Add(1)
	}
	db.m.compactionBytesIn.Add(bytesIn)
	for _, h := range outputs {
		db.m.compactionBytesOut.Add(h.meta.Size)
	}
	db.m.entriesDroppedObsolete.Add(int64(st.ObsoleteDropped))
	db.m.tombstonesDropped.Add(int64(st.TombstonesDropped))
	db.m.rangeCovered.Add(int64(st.RangeCovered))
	return outputs, nil
}

// FullTreeCompact merges the entire tree (buffer included) into a single run
// at the last level — the state of the art's only way to bound delete
// persistence latency and to execute secondary range deletes (§3.1.3). It
// stalls everything else, which is exactly the behavior the paper's baseline
// exhibits.
func (db *DB) FullTreeCompact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.flushLocked(); err != nil {
		return err
	}
	var inputs run
	for _, runs := range db.levels {
		for _, r := range runs {
			inputs = append(inputs, r...)
		}
	}
	if len(inputs) == 0 {
		return nil
	}
	outputs, err := db.mergeFilesLocked(inputs, nil, true, compaction.TriggerSaturation)
	if err != nil {
		return err
	}
	db.m.fullTreeCompactions.Add(1)

	// Size the tree so the merged data sits in its last level.
	levels := 1
	var outBytes int64
	for _, h := range outputs {
		outBytes += h.meta.Size
	}
	for db.capacityBytes(levels-1) < outBytes {
		levels++
	}
	db.levels = make([][]run, levels)
	for l := 0; l < levels-1; l++ {
		db.levels[l] = nil
	}
	db.levels[levels-1] = []run{outputs}
	db.recomputeTTLs()
	if err := db.commitManifest(); err != nil {
		return err
	}
	return db.deleteFilesLocked(inputs)
}

// trivialMoveLocked reassigns files to the target level without I/O.
func (db *DB) trivialMoveLocked(d compaction.Decision, handles run, target int) error {
	db.removeHandlesLocked(d.Files)
	if len(db.levels[target]) == 0 {
		db.levels[target] = []run{nil}
	}
	newRun := append(append(run{}, db.levels[target][0]...), handles...)
	sort.Slice(newRun, func(i, j int) bool {
		return base.CompareUserKeys(newRun[i].meta.MinS, newRun[j].meta.MinS) < 0
	})
	db.levels[target][0] = newRun
	db.m.compactions.Add(1)
	db.m.trivialMoves.Add(1)
	if d.Trigger == compaction.TriggerTTL {
		db.m.compactionsTTL.Add(1)
	} else {
		db.m.compactionsSaturation.Add(1)
	}
	return db.commitManifest()
}

func anyTombstones(handles run) bool {
	for _, h := range handles {
		if h.meta.HasTombstones() {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Helpers

func (db *DB) refsToHandles(refs []compaction.FileRef) run {
	var out run
	for _, ref := range refs {
		for _, h := range db.levels[ref.Level][ref.Run] {
			if h.meta.FileNum == ref.Meta.FileNum {
				out = append(out, h)
			}
		}
	}
	return out
}

// removeHandlesLocked detaches the given refs from the level structure,
// dropping runs that become empty.
func (db *DB) removeHandlesLocked(refs []compaction.FileRef) {
	drop := map[uint64]bool{}
	for _, ref := range refs {
		drop[ref.Meta.FileNum] = true
	}
	for l := range db.levels {
		var runs []run
		for _, r := range db.levels[l] {
			var kept run
			for _, h := range r {
				if !drop[h.meta.FileNum] {
					kept = append(kept, h)
				}
			}
			if len(kept) > 0 {
				runs = append(runs, kept)
			}
		}
		db.levels[l] = runs
	}
}

// deleteFilesLocked closes and removes obsolete files after the manifest no
// longer references them.
func (db *DB) deleteFilesLocked(handles run) error {
	for _, h := range handles {
		if err := h.r.Close(); err != nil {
			return err
		}
		if err := db.opts.FS.Remove(db.fileName(h.meta.FileNum)); err != nil {
			return err
		}
	}
	return nil
}

func keyRangeOf(handles run) (minS, maxS []byte) {
	for _, h := range handles {
		if len(h.meta.MinS) == 0 && len(h.meta.MaxS) == 0 {
			continue
		}
		if minS == nil || base.CompareUserKeys(h.meta.MinS, minS) < 0 {
			minS = h.meta.MinS
		}
		if maxS == nil || base.CompareUserKeys(h.meta.MaxS, maxS) > 0 {
			maxS = h.meta.MaxS
		}
	}
	return minS, maxS
}

func overlapsRange(m *sstable.Meta, minS, maxS []byte) bool {
	if minS == nil {
		return false
	}
	if len(m.MinS) == 0 && len(m.MaxS) == 0 {
		return false
	}
	return base.CompareUserKeys(m.MinS, maxS) <= 0 && base.CompareUserKeys(minS, m.MaxS) <= 0
}
