package lsm

import (
	"errors"
	"fmt"
	"strings"

	"lethe/internal/base"
	"lethe/internal/wal"
)

// walStartNum returns a WAL segment number above any segment currently on
// disk so a fresh manager never collides with surviving segments.
func (db *DB) walStartNum() int {
	segs, err := wal.ListSegments(db.opts.FS, "wal")
	if err != nil || len(segs) == 0 {
		return 0
	}
	last := segs[len(segs)-1]
	var n int
	fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(last, "wal-"), ".wal"), "%06d", &n)
	return n + 1
}

// recoverWAL replays surviving WAL segments into the buffer, flushes the
// recovered data, and removes the segments. Records already durable in
// sstables (seq <= flushedSeq) are skipped; a torn tail ends a segment's
// replay without failing recovery.
func (db *DB) recoverWAL() error {
	if db.opts.DisableWAL {
		return nil
	}
	segs, err := wal.ListSegments(db.opts.FS, "wal")
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return nil
	}
	maxSeq := db.seq
	for _, seg := range segs {
		err := wal.Replay(db.opts.FS, seg, func(e base.Entry) error {
			if e.Key.SeqNum() <= db.flushedSeq {
				return nil
			}
			db.mem.Apply(e)
			if s := e.Key.SeqNum(); s > maxSeq {
				maxSeq = s
			}
			return nil
		})
		if err != nil && !errors.Is(err, wal.ErrCorruptTail) {
			return fmt.Errorf("lsm: recover %s: %w", seg, err)
		}
	}
	db.seq = maxSeq
	if !db.mem.Empty() {
		if err := db.flushLocked(); err != nil {
			return err
		}
	}
	for _, seg := range segs {
		if err := db.opts.FS.Remove(seg); err != nil {
			return err
		}
	}
	return nil
}
