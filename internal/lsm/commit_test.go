package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

// TestCommitPipelineStress hammers the group-commit pipeline with concurrent
// writers (single puts, deletes, and multi-op batches) and readers, under
// -race. It asserts the pipeline's core invariants: the published-sequence
// frontier is nondecreasing and ends gapless at the total entry count, every
// acknowledged write is readable, grouping actually happened, and a reopen
// over the same filesystem replays the multi-entry group records exactly.
func TestCommitPipelineStress(t *testing.T) {
	fs := vfs.NewMem()
	opts := Options{
		FS:          fs,
		BufferBytes: 8 << 10,
		PageSize:    512,
		FilePages:   4,
		SizeRatio:   4,
		WALSync:     SyncGrouped,
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !db.usePipeline() {
		t.Fatal("wall-clock grouped DB must use the commit pipeline")
	}

	const (
		writers   = 8
		perWriter = 300
	)
	wkey := func(w, i int) []byte { return []byte(fmt.Sprintf("w%02d-%05d", w, i)) }
	wval := func(w, i int) []byte { return []byte(fmt.Sprintf("v%02d-%05d", w, i)) }

	// Publication monitor: PublishedSeq must never decrease.
	stopMon := make(chan struct{})
	var monWG sync.WaitGroup
	var monErr atomic.Value
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		var last base.SeqNum
		for {
			select {
			case <-stopMon:
				return
			default:
			}
			s := db.PublishedSeq()
			if s < last {
				monErr.Store(fmt.Errorf("published seq went backwards: %d after %d", s, last))
				return
			}
			last = s
		}
	}()

	var wg sync.WaitGroup
	errC := make(chan error, writers)
	var totalEntries atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				switch i % 10 {
				case 3:
					// A multi-op batch: contiguous sequence range, atomic.
					ops := []BatchOp{
						{Kind: base.KindSet, Key: wkey(w, i), DKey: base.DeleteKey(i), Value: wval(w, i)},
						{Kind: base.KindSet, Key: append(wkey(w, i), 'b'), DKey: base.DeleteKey(i), Value: wval(w, i)},
					}
					if err := db.ApplyBatch(ops); err != nil {
						errC <- err
						return
					}
					totalEntries.Add(2)
				case 7:
					if err := db.Delete(wkey(w, i-1)); err != nil {
						errC <- err
						return
					}
					totalEntries.Add(1)
				default:
					if err := db.Put(wkey(w, i), base.DeleteKey(i), wval(w, i)); err != nil {
						errC <- err
						return
					}
					totalEntries.Add(1)
				}
				// Interleave reads of this writer's own earlier keys.
				if i%17 == 0 && i > 0 && i%10 != 8 {
					if _, _, err := db.Get(wkey(w, i-1)); err != nil && err != ErrNotFound {
						errC <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopMon)
	monWG.Wait()
	select {
	case err := <-errC:
		t.Fatal(err)
	default:
	}
	if err, _ := monErr.Load().(error); err != nil {
		t.Fatal(err)
	}

	// Publication must be gapless: the frontier equals the entry count.
	want := base.SeqNum(totalEntries.Load())
	if got := db.PublishedSeq(); got != want {
		t.Fatalf("published seq %d, want %d (gap or lost publication)", got, want)
	}

	st := db.Stats()
	if st.CommitBatches == 0 || st.CommitGroups == 0 {
		t.Fatalf("pipeline accounted no commits: %+v", st)
	}
	if st.CommitGroups > st.CommitBatches {
		t.Fatalf("groups %d exceed batches %d", st.CommitGroups, st.CommitBatches)
	}
	if st.WALSyncs > st.CommitGroups {
		t.Fatalf("syncs %d exceed groups %d under SyncGrouped", st.WALSyncs, st.CommitGroups)
	}

	// Every surviving key reads back correctly (deletes removed i-1 at i%10==7).
	deleted := func(i int) bool { return (i+1)%10 == 7 }
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if i%10 == 7 {
				continue // never written
			}
			v, _, err := db.Get(wkey(w, i))
			if deleted(i) {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("w%d i%d: want deleted, got %q err=%v", w, i, v, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(v, wval(w, i)) {
				t.Fatalf("w%d i%d: got %q err=%v", w, i, v, err)
			}
		}
	}

	// Crash: abandon the handle and reopen over the same filesystem. The
	// recovered state must match — this replays the multi-entry group
	// records end to end.
	db2, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 13 {
			if i%10 == 7 || deleted(i) {
				continue
			}
			v, _, err := db2.Get(wkey(w, i))
			if err != nil || !bytes.Equal(v, wval(w, i)) {
				t.Fatalf("after reopen w%d i%d: got %q err=%v", w, i, v, err)
			}
		}
	}
}

// TestCommitPipelineGroups forces commit grouping by making WAL syncs slow:
// while the leader is inside a sync, other writers pile onto the queue and
// must be committed as one group with one sync. The serialized SyncAlways
// path, by contrast, must issue one sync per put.
func TestCommitPipelineGroups(t *testing.T) {
	slowSync := func(op vfs.Op, name string) error {
		if op == vfs.OpSync && strings.HasPrefix(name, "wal") {
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	const (
		writers   = 8
		perWriter = 25
	)
	run := func(t *testing.T, policy WALSyncPolicy) Stats {
		db, err := Open(Options{
			FS:          vfs.NewInject(vfs.NewMem(), slowSync),
			BufferBytes: 1 << 20,
			PageSize:    512,
			FilePages:   4,
			SizeRatio:   4,
			WALSync:     policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWriter; i++ {
					if err := db.Put([]byte(fmt.Sprintf("k%d-%d", w, i)), 0, []byte("v")); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		return db.Stats()
	}

	t.Run("grouped", func(t *testing.T) {
		st := run(t, SyncGrouped)
		if st.CommitBatches != writers*perWriter {
			t.Fatalf("batches %d, want %d", st.CommitBatches, writers*perWriter)
		}
		// With 2ms syncs and 8 concurrent writers, grouping is guaranteed:
		// a full round of puts lands while one group syncs.
		if st.CommitGroups >= st.CommitBatches {
			t.Fatalf("no grouping: %d groups for %d batches", st.CommitGroups, st.CommitBatches)
		}
		if st.MaxCommitGroupBatches < 2 {
			t.Fatalf("max group %d, want >= 2", st.MaxCommitGroupBatches)
		}
		if st.WALSyncs >= int64(writers*perWriter) {
			t.Fatalf("sync count %d not amortized over %d puts", st.WALSyncs, writers*perWriter)
		}
	})
	t.Run("always", func(t *testing.T) {
		st := run(t, SyncAlways)
		if st.WALSyncs != int64(writers*perWriter) {
			t.Fatalf("SyncAlways must sync per put: %d syncs for %d puts", st.WALSyncs, writers*perWriter)
		}
		if st.CommitGroups != st.CommitBatches {
			t.Fatalf("SyncAlways must not group: %d groups, %d batches", st.CommitGroups, st.CommitBatches)
		}
	})
}

// TestWALSyncFailureSurfaces is the durability-gap regression test: before
// the WALSync policy existed, single-entry Put/Delete never called Sync, so
// a sync-boundary failure was invisible and an acknowledged write could be
// lost. Now a failing sync must surface as a commit error under SyncGrouped
// and SyncAlways (in both execution modes), must NOT be touched under
// SyncNever, and every write acknowledged before the fault must survive a
// reopen.
func TestWALSyncFailureSurfaces(t *testing.T) {
	boom := errors.New("sync fault")
	for _, tc := range []struct {
		name     string
		policy   WALSyncPolicy
		syncMode bool // DisableBackgroundMaintenance (inline path)
		wantErr  bool
	}{
		{"grouped-pipeline", SyncGrouped, false, true},
		{"grouped-inline", SyncGrouped, true, true},
		{"always", SyncAlways, false, true},
		{"never", SyncNever, false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mem := vfs.NewMem()
			var failing atomic.Bool
			inj := vfs.NewInject(mem, func(op vfs.Op, name string) error {
				if op == vfs.OpSync && strings.HasPrefix(name, "wal") && failing.Load() {
					return boom
				}
				return nil
			})
			opts := Options{
				FS:          inj,
				BufferBytes: 1 << 20,
				PageSize:    512,
				FilePages:   4,
				SizeRatio:   4,
				WALSync:     tc.policy,

				DisableBackgroundMaintenance: tc.syncMode,
			}
			db, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			// Acknowledged before the fault: must survive the crash below.
			for i := 0; i < 10; i++ {
				if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
					t.Fatal(err)
				}
			}
			failing.Store(true)
			err = db.Put(key(99), 0, value(99))
			if tc.wantErr {
				if !errors.Is(err, boom) {
					t.Fatalf("put with failing sync: err=%v, want %v (sync not on the commit path?)", err, boom)
				}
			} else if err != nil {
				t.Fatalf("SyncNever put must not touch sync: %v", err)
			}

			// Crash (abandon handle) and recover on the healthy filesystem.
			opts.FS = mem
			db2, err := Open(opts)
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer db2.Close()
			for i := 0; i < 10; i++ {
				v, _, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(v, value(i)) {
					t.Fatalf("acked key %d lost: %q %v", i, v, err)
				}
			}
		})
	}
}

// TestWALSyncFailurePoisonsPipeline checks that a group-commit WAL failure
// poisons the engine: the log may hold a torn record, so later commits must
// fail rather than append behind the corruption.
func TestWALSyncFailurePoisonsPipeline(t *testing.T) {
	boom := errors.New("sync fault")
	var failing atomic.Bool
	inj := vfs.NewInject(vfs.NewMem(), func(op vfs.Op, name string) error {
		if op == vfs.OpSync && strings.HasPrefix(name, "wal") && failing.Load() {
			return boom
		}
		return nil
	})
	db, err := Open(Options{
		FS:          inj,
		BufferBytes: 1 << 20,
		PageSize:    512,
		FilePages:   4,
		SizeRatio:   4,
		WALSync:     SyncGrouped,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(key(0), 0, value(0)); err != nil {
		t.Fatal(err)
	}
	failing.Store(true)
	if err := db.Put(key(1), 0, value(1)); !errors.Is(err, boom) {
		t.Fatalf("want sync fault, got %v", err)
	}
	failing.Store(false)
	if err := db.Put(key(2), 0, value(2)); !errors.Is(err, boom) {
		t.Fatalf("engine must stay poisoned after a WAL failure, got %v", err)
	}
}

// TestBatchAtomicReplay verifies batch atomicity across the group record: a
// crash after a synced batch replays the whole batch, never a prefix.
func TestBatchAtomicReplay(t *testing.T) {
	fs := vfs.NewMem()
	opts := Options{
		FS:          fs,
		BufferBytes: 1 << 20,
		PageSize:    512,
		FilePages:   4,
		SizeRatio:   4,
		WALSync:     SyncGrouped,
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ops := make([]BatchOp, 20)
	for i := range ops {
		ops[i] = BatchOp{Kind: base.KindSet, Key: key(i), DKey: base.DeleteKey(i), Value: value(i)}
	}
	if err := db.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	// Crash without Close; reopen and expect all 20 operations.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := range ops {
		v, _, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("batch member %d not recovered: %q %v", i, v, err)
		}
	}
}

// TestInlineWALFailureDoesNotStallPublication regression-tests a pipeline
// bookkeeping hazard on the serialized path: a failed WAL append consumed
// sequence numbers, and if the range were not burned, the next commit's
// ordered publication would wait forever for the gap to fill.
func TestInlineWALFailureDoesNotStallPublication(t *testing.T) {
	boom := errors.New("write fault")
	var failing atomic.Bool
	inj := vfs.NewInject(vfs.NewMem(), func(op vfs.Op, name string) error {
		if op == vfs.OpWrite && strings.HasPrefix(name, "wal") && failing.Load() {
			return boom
		}
		return nil
	})
	clock := base.NewManualClock(time.Unix(0, 0))
	opts := smallOpts(inj, clock)
	opts.BufferBytes = 1 << 20
	db := mustOpen(t, opts)
	defer db.Close()
	if db.usePipeline() {
		t.Fatal("manual clock must force the inline path")
	}
	failing.Store(true)
	if err := db.Put(key(0), 0, value(0)); !errors.Is(err, boom) {
		t.Fatalf("want write fault, got %v", err)
	}
	failing.Store(false)
	// The engine is poisoned (the log may hold a torn record), so the next
	// put must fail promptly with the original fault — not hang waiting for
	// the failed commit's sequence range to publish.
	done := make(chan error, 1)
	go func() { done <- db.Put(key(1), 0, value(1)) }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("want poisoned engine to surface %v, got %v", boom, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("put deadlocked on the burned sequence gap")
	}
	if got := db.PublishedSeq(); got != 1 {
		t.Fatalf("published seq %d, want 1 (the burned range)", got)
	}
}
