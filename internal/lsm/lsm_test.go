package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/vfs"
)

// smallOpts returns a configuration scaled down so a few hundred writes
// exercise multi-level behavior.
func smallOpts(fs vfs.FS, clock base.Clock) Options {
	return Options{
		FS:        fs,
		Clock:     clock,
		SizeRatio: 4,
		PageSize:  256,
		// Tests reason in page-sized units; keep v2 blocks at page size so
		// the tile and file geometry matches the fixed-page layout.
		BlockSizeBytes: 256,
		BufferBytes:    2 * 1024,
		FilePages:      4,
		TilePages:      2,
		Mode:           compaction.ModeLethe,
		Dth:            time.Hour,
		Seed:           1,
	}
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%06d", i)) }

func mustOpen(t *testing.T, opts Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBasicPutGetDelete(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	if err := db.Put(key(1), 100, value(1)); err != nil {
		t.Fatal(err)
	}
	v, d, err := db.Get(key(1))
	if err != nil || !bytes.Equal(v, value(1)) || d != 100 {
		t.Fatalf("get: %q %d %v", v, d, err)
	}
	if _, _, err := db.Get(key(2)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := db.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get(key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key visible: %v", err)
	}
	// Re-insert after delete.
	if err := db.Put(key(1), 7, value(2)); err != nil {
		t.Fatal(err)
	}
	if v, _, err := db.Get(key(1)); err != nil || !bytes.Equal(v, value(2)) {
		t.Fatalf("reinsert: %q %v", v, err)
	}
}

func TestPersistenceAcrossFlushes(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	const n = 500
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Millisecond)
	}
	if db.NumLevels() == 0 {
		t.Fatal("expected flushed levels")
	}
	for i := 0; i < n; i++ {
		v, d, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if !bytes.Equal(v, value(i)) || d != base.DeleteKey(i) {
			t.Fatalf("key %d: got %q/%d", i, v, d)
		}
	}
}

func TestUpdatesAcrossLevels(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	// Three write waves over the same keys: the newest version must win
	// regardless of which level each version reached.
	for wave := 0; wave < 3; wave++ {
		for i := 0; i < 200; i++ {
			v := []byte(fmt.Sprintf("wave-%d-%d", wave, i))
			if err := db.Put(key(i), base.DeleteKey(wave), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 200; i++ {
		v, _, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		want := fmt.Sprintf("wave-2-%d", i)
		if string(v) != want {
			t.Fatalf("key %d: got %q want %q", i, v, want)
		}
	}
}

func TestDeletesPropagate(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	for i := 0; i < 300; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete every third key, then bury the tombstones under more data.
	for i := 0; i < 300; i += 3 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 300; i < 600; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		_, _, err := db.Get(key(i))
		if i%3 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("key %d must be deleted, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("key %d must exist: %v", i, err)
		}
	}
}

func TestRangeDelete(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	for i := 0; i < 400; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RangeDelete(key(100), key(200)); err != nil {
		t.Fatal(err)
	}
	// More writes push the tombstone down through compactions.
	for i := 400; i < 700; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 400; i++ {
		_, _, err := db.Get(key(i))
		if i >= 100 && i < 200 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("key %d in deleted range, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("key %d outside range must exist: %v", i, err)
		}
	}
	// Writes after the range delete are visible.
	if err := db.Put(key(150), 0, []byte("resurrected")); err != nil {
		t.Fatal(err)
	}
	if v, _, err := db.Get(key(150)); err != nil || string(v) != "resurrected" {
		t.Fatalf("post-tombstone write: %q %v", v, err)
	}
	if err := db.RangeDelete(key(5), key(5)); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestScan(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	for i := 0; i < 300; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 50; i < 60; i++ {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.RangeDelete(key(100), key(110)); err != nil {
		t.Fatal(err)
	}

	var got []int
	err := db.Scan(key(40), key(130), func(k []byte, _ base.DeleteKey, v []byte) bool {
		var i int
		fmt.Sscanf(string(k), "key-%06d", &i)
		got = append(got, i)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 40; i < 130; i++ {
		if (i >= 50 && i < 60) || (i >= 100 && i < 110) {
			continue
		}
		want = append(want, i)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan: got %v want %v", got, want)
	}

	// Early termination.
	count := 0
	db.Scan(nil, nil, func([]byte, base.DeleteKey, []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop: %d", count)
	}
}

func TestDeletePersistenceWithinDth(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	fs := vfs.NewMem()
	opts := smallOpts(fs, clock)
	opts.Dth = 10 * time.Minute
	db := mustOpen(t, opts)
	defer db.Close()

	// Build a settled tree first, then add a small batch of deletes that
	// does NOT saturate any level: without FADE these tombstones would sit
	// at the top of the tree indefinitely.
	for i := 0; i < 400; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i += 20 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().LivePointTombstones == 0 {
		t.Fatal("setup: tombstones must rest on disk without saturation")
	}

	// FADE invariant: after Dth elapses (with maintenance), every tombstone
	// has been persisted — none remain anywhere in the tree older than Dth.
	for step := 0; step < 12; step++ {
		clock.Advance(time.Minute)
		if err := db.Maintain(); err != nil {
			t.Fatal(err)
		}
	}
	if age := db.MaxTombstoneAge(); age > opts.Dth {
		t.Fatalf("tombstone of age %v exceeds Dth %v", age, opts.Dth)
	}
	st := db.Stats()
	if st.CompactionsTTL == 0 {
		t.Fatal("TTL-driven compactions must have fired")
	}
	if st.TombstonesDropped == 0 {
		t.Fatal("tombstones must have been persisted at the last level")
	}
	// The deleted keys stay deleted.
	for i := 0; i < 400; i += 20 {
		if _, _, err := db.Get(key(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("key %d resurrected: %v", i, err)
		}
	}
}

func TestBaselineIgnoresDth(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.Mode = compaction.ModeBaseline
	opts.Dth = 0
	// Keep the whole workload under level 0's saturation threshold (the v2
	// block format compresses files enough that the old geometry would merge
	// everything — tombstones included — straight into the last level): with
	// no trigger firing, the baseline must leave tombstones untouched.
	opts.SizeRatio = 8
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 200; i++ {
		db.Put(key(i), 0, value(i))
	}
	for i := 0; i < 200; i += 2 {
		db.Delete(key(i))
	}
	db.Flush()
	clock.Advance(24 * time.Hour)
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.CompactionsTTL != 0 {
		t.Fatal("baseline must never fire TTL compactions")
	}
	// Tombstones linger arbitrarily long — the motivation for FADE.
	if db.MaxTombstoneAge() < 24*time.Hour {
		t.Fatal("baseline should retain old tombstones")
	}

	// FullTreeCompact is the baseline's recourse: afterwards no tombstones
	// remain at all.
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().LivePointTombstones; got != 0 {
		t.Fatalf("%d tombstones survive a full-tree compaction", got)
	}
	for i := 0; i < 200; i++ {
		_, _, err := db.Get(key(i))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("key %d must stay deleted", i)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("key %d must survive: %v", i, err)
		}
	}
}

func TestSecondaryRangeDeleteEngine(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.TilePages = 4
	db := mustOpen(t, opts)
	defer db.Close()

	// dkey = i: "timestamped" data.
	const n = 600
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := db.SecondaryRangeDelete(0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EntriesDropped != 200 {
		t.Fatalf("dropped %d entries, want 200", stats.EntriesDropped)
	}
	for i := 0; i < n; i++ {
		_, _, err := db.Get(key(i))
		if i < 200 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("key %d (D=%d) must be gone: %v", i, i, err)
			}
		} else if err != nil {
			t.Fatalf("key %d must survive: %v", i, err)
		}
	}
	// No full-tree compaction was used.
	if db.Stats().FullTreeCompactions != 0 {
		t.Fatal("SRD must not full-tree compact")
	}
	// Scans agree.
	count := 0
	db.Scan(nil, nil, func([]byte, base.DeleteKey, []byte) bool { count++; return true })
	if count != 400 {
		t.Fatalf("scan sees %d live keys", count)
	}
}

func TestSecondaryRangeScanEngine(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.TilePages = 4
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 300; i++ {
		if err := db.Put(key(i), base.DeleteKey(i%100), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.SecondaryRangeScan(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 300; i++ {
		if d := i % 100; d >= 10 && d < 20 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("secondary scan: %d results, want %d", len(got), want)
	}
	for _, e := range got {
		if e.DKey < 10 || e.DKey >= 20 {
			t.Fatalf("result outside range: %v", e)
		}
	}
}

func TestBlindDeleteSuppression(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.SuppressBlindDeletes = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 100; i++ {
		db.Put(key(i), 0, value(i))
	}
	// Deletes on keys that never existed.
	for i := 1000; i < 1100; i++ {
		if err := db.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.BlindDeletesSuppressed < 90 {
		t.Fatalf("suppressed only %d blind deletes", st.BlindDeletesSuppressed)
	}
	// Deletes on real keys must not be suppressed.
	if err := db.Delete(key(5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Get(key(5)); !errors.Is(err, ErrNotFound) {
		t.Fatal("real delete suppressed")
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	fs := vfs.NewMem()
	opts := smallOpts(fs, clock)
	db := mustOpen(t, opts)
	for i := 0; i < 50; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Delete(key(7))
	// Simulate a crash: no Close, just reopen over the same FS.
	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < 50; i++ {
		v, _, err := db2.Get(key(i))
		if i == 7 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key recovered: %v", err)
			}
			continue
		}
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("key %d after recovery: %q %v", i, v, err)
		}
	}
}

func TestRecoveryAfterCleanClose(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	fs := vfs.NewMem()
	opts := smallOpts(fs, clock)
	db := mustOpen(t, opts)
	for i := 0; i < 300; i++ {
		db.Put(key(i), base.DeleteKey(i), value(i))
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); !errors.Is(err, ErrClosed) {
		t.Fatal("double close")
	}

	db2 := mustOpen(t, opts)
	defer db2.Close()
	for i := 0; i < 300; i++ {
		v, _, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("key %d: %q %v", i, v, err)
		}
	}
	// Writes continue with fresh sequence numbers.
	if err := db2.Put(key(0), 9, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db2.Get(key(0)); string(v) != "new" {
		t.Fatal("post-recovery write lost")
	}
}

func TestOperationsAfterClose(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	db.Close()
	if err := db.Put(key(1), 0, nil); !errors.Is(err, ErrClosed) {
		t.Fatal("put after close")
	}
	if _, _, err := db.Get(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatal("get after close")
	}
	if err := db.Delete(key(1)); !errors.Is(err, ErrClosed) {
		t.Fatal("delete after close")
	}
	if _, err := db.SecondaryRangeDelete(0, 1); !errors.Is(err, ErrClosed) {
		t.Fatal("srd after close")
	}
	if err := db.Maintain(); !errors.Is(err, ErrClosed) {
		t.Fatal("maintain after close")
	}
}

func TestTiering(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.Tiering = true
	db := mustOpen(t, opts)
	defer db.Close()

	for i := 0; i < 800; i++ {
		if err := db.Put(key(i%300), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		v, _, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("tiering key %d: %v", i, err)
		}
		// The newest wave that wrote key i.
		last := i
		for w := i; w < 800; w += 300 {
			last = w
		}
		if !bytes.Equal(v, value(last)) {
			t.Fatalf("tiering key %d: got %q want %q", i, v, value(last))
		}
	}
	// Deletes persist through tiered merges too.
	for i := 0; i < 300; i += 5 {
		db.Delete(key(i))
	}
	for i := 0; i < 500; i++ {
		db.Put(key(1000+i), 0, value(i))
	}
	for i := 0; i < 300; i += 5 {
		if _, _, err := db.Get(key(i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("tiered delete lost for key %d: %v", i, err)
		}
	}
}

func TestStatsAndSpaceAmp(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	db := mustOpen(t, smallOpts(vfs.NewMem(), clock))
	defer db.Close()

	for i := 0; i < 300; i++ {
		db.Put(key(i), 0, value(i))
	}
	// Update half the keys: duplicates inflate space amplification.
	for i := 0; i < 150; i++ {
		db.Put(key(i), 0, value(i+1000))
	}
	db.Flush()
	st := db.Stats()
	if st.Flushes == 0 || st.TreeEntries == 0 || st.TotalBytesWritten == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.WriteAmplification() <= 0 {
		t.Fatal("write amp must be positive")
	}
	samp, err := db.SpaceAmp()
	if err != nil {
		t.Fatal(err)
	}
	if samp < 0 {
		t.Fatalf("space amp = %f", samp)
	}
	// Full-tree compaction collapses duplicates: space amp drops to ~0.
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	samp2, err := db.SpaceAmp()
	if err != nil {
		t.Fatal(err)
	}
	if samp2 > samp && samp > 0 {
		t.Fatalf("space amp must not grow after full compaction: %f -> %f", samp, samp2)
	}
}

// TestModelEquivalence drives the engine and an in-memory model with the
// same random operation stream — puts, updates, point deletes, range
// deletes, secondary range deletes, flushes, maintenance, clock advances —
// then verifies every key agrees.
func TestModelEquivalence(t *testing.T) {
	for _, cfg := range []struct {
		name string
		mod  func(*Options)
	}{
		{"lethe-h2", func(o *Options) {}},
		{"baseline-h1", func(o *Options) { o.Mode = compaction.ModeBaseline; o.Dth = 0; o.TilePages = 1 }},
		{"lethe-h8", func(o *Options) { o.TilePages = 8 }},
		{"tiering", func(o *Options) { o.Tiering = true }},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			clock := base.NewManualClock(time.Unix(1e6, 0))
			opts := smallOpts(vfs.NewMem(), clock)
			cfg.mod(&opts)
			db := mustOpen(t, opts)
			defer db.Close()

			type modelVal struct {
				dkey  base.DeleteKey
				value []byte
			}
			model := map[string]modelVal{}
			rng := rand.New(rand.NewSource(99))
			const keySpace = 400

			for op := 0; op < 4000; op++ {
				switch r := rng.Intn(100); {
				case r < 55: // put/update
					i := rng.Intn(keySpace)
					d := base.DeleteKey(rng.Intn(1000))
					v := []byte(fmt.Sprintf("v-%d-%d", op, i))
					if err := db.Put(key(i), d, v); err != nil {
						t.Fatal(err)
					}
					model[string(key(i))] = modelVal{d, v}
				case r < 70: // point delete
					i := rng.Intn(keySpace)
					if err := db.Delete(key(i)); err != nil {
						t.Fatal(err)
					}
					delete(model, string(key(i)))
				case r < 78: // primary range delete
					lo := rng.Intn(keySpace)
					hi := lo + 1 + rng.Intn(20)
					if err := db.RangeDelete(key(lo), key(hi)); err != nil {
						t.Fatal(err)
					}
					for i := lo; i < hi && i < keySpace; i++ {
						delete(model, string(key(i)))
					}
				case r < 90: // clock advance + maintenance
					clock.Advance(time.Duration(rng.Intn(120)) * time.Second)
					if err := db.Maintain(); err != nil {
						t.Fatal(err)
					}
				default: // flush
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Verify all keys.
			for i := 0; i < keySpace; i++ {
				k := key(i)
				want, exists := model[string(k)]
				v, d, err := db.Get(k)
				if !exists {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("key %d: want not-found, got v=%q err=%v", i, v, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("key %d: want %q, got err %v", i, want.value, err)
				}
				if !bytes.Equal(v, want.value) || d != want.dkey {
					t.Fatalf("key %d: got %q/%d want %q/%d", i, v, d, want.value, want.dkey)
				}
			}

			// Scan agrees with the model.
			got := map[string]string{}
			err := db.Scan(nil, nil, func(k []byte, _ base.DeleteKey, v []byte) bool {
				got[string(k)] = string(v)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(model) {
				t.Fatalf("scan size %d != model %d", len(got), len(model))
			}
			for k, mv := range model {
				if got[k] != string(mv.value) {
					t.Fatalf("scan %q: got %q want %q", k, got[k], mv.value)
				}
			}
		})
	}
}

// TestModelEquivalenceSRD exercises secondary range deletes under the
// paper's usage model (DComp, §1): the delete key is assigned at insertion
// and keys are never overwritten in place — updates are delete + re-insert.
// Under that discipline physical secondary deletes are exact, and the engine
// must agree with a map model.
func TestModelEquivalenceSRD(t *testing.T) {
	for _, h := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("h=%d", h), func(t *testing.T) {
			clock := base.NewManualClock(time.Unix(1e6, 0))
			opts := smallOpts(vfs.NewMem(), clock)
			opts.TilePages = h
			db := mustOpen(t, opts)
			defer db.Close()

			type modelVal struct {
				dkey  base.DeleteKey
				value []byte
			}
			model := map[int]modelVal{}
			rng := rand.New(rand.NewSource(7))
			const keySpace = 500
			nextKey := 0

			for op := 0; op < 3000; op++ {
				switch r := rng.Intn(100); {
				case r < 60: // insert a fresh key (write-once discipline)
					i := nextKey % keySpace
					nextKey++
					if _, live := model[i]; live {
						// Re-inserting a live key would overwrite: model it
						// as the paper does, delete + insert.
						if err := db.Delete(key(i)); err != nil {
							t.Fatal(err)
						}
					}
					d := base.DeleteKey(rng.Intn(1000))
					v := []byte(fmt.Sprintf("v-%d", op))
					if err := db.Put(key(i), d, v); err != nil {
						t.Fatal(err)
					}
					model[i] = modelVal{d, v}
				case r < 72: // point delete
					i := rng.Intn(keySpace)
					if err := db.Delete(key(i)); err != nil {
						t.Fatal(err)
					}
					delete(model, i)
				case r < 85: // secondary range delete
					lo := base.DeleteKey(rng.Intn(900))
					hi := lo + base.DeleteKey(1+rng.Intn(150))
					if _, err := db.SecondaryRangeDelete(lo, hi); err != nil {
						t.Fatal(err)
					}
					for i, mv := range model {
						if mv.dkey >= lo && mv.dkey < hi {
							delete(model, i)
						}
					}
				case r < 93:
					clock.Advance(time.Duration(rng.Intn(90)) * time.Second)
					if err := db.Maintain(); err != nil {
						t.Fatal(err)
					}
				default:
					if err := db.Flush(); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := 0; i < keySpace; i++ {
				want, live := model[i]
				v, d, err := db.Get(key(i))
				if !live {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("key %d: want gone, got %q err=%v", i, v, err)
					}
					continue
				}
				if err != nil || !bytes.Equal(v, want.value) || d != want.dkey {
					t.Fatalf("key %d: got %q/%d err=%v, want %q/%d", i, v, d, err, want.value, want.dkey)
				}
			}
		})
	}
}

func TestFlushFailureSurfacesError(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	mem := vfs.NewMem()
	boom := errors.New("disk full")
	var failing bool
	inj := vfs.NewInject(mem, func(op vfs.Op, name string) error {
		if failing && op == vfs.OpCreate {
			return boom
		}
		return nil
	})
	opts := smallOpts(inj, clock)
	db := mustOpen(t, opts)
	for i := 0; i < 10; i++ {
		if err := db.Put(key(i), 0, value(i)); err != nil {
			t.Fatal(err)
		}
	}
	failing = true
	if err := db.Flush(); !errors.Is(err, boom) {
		t.Fatalf("flush must surface injected error, got %v", err)
	}
	failing = false
	// The engine remains usable: buffered data still readable and flushable.
	if v, _, err := db.Get(key(3)); err != nil || !bytes.Equal(v, value(3)) {
		t.Fatalf("data lost after failed flush: %q %v", v, err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTTLsRecomputedOnGrowth(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	opts := smallOpts(vfs.NewMem(), clock)
	opts.Dth = time.Hour
	db := mustOpen(t, opts)
	defer db.Close()

	db.Put(key(0), 0, value(0))
	db.Flush()
	ttls1 := db.TTLs()
	if len(ttls1) == 0 {
		t.Fatal("no TTLs with Dth set")
	}
	if ttls1[len(ttls1)-1] != opts.Dth {
		t.Fatalf("cumulative TTL must end at Dth: %v", ttls1)
	}
	// Grow the tree; the TTL vector must grow with it.
	for i := 0; i < 2000; i++ {
		db.Put(key(i), 0, value(i))
	}
	ttls2 := db.TTLs()
	if len(ttls2) <= len(ttls1) {
		t.Fatalf("TTLs must track tree height: %d -> %d levels", len(ttls1), len(ttls2))
	}
	if ttls2[len(ttls2)-1] != opts.Dth {
		t.Fatalf("cumulative TTL must still end at Dth: %v", ttls2)
	}
}
