package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

// TestCrashRecoveryProperty drives random operations, "crashes" at random
// points (abandoning the handle, reopening over the same filesystem), and
// verifies the recovered state matches the model after every crash. With
// MemFS every acknowledged write is durable, so recovery must be exact.
func TestCrashRecoveryProperty(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 7919))
			clock := base.NewManualClock(time.Unix(1e6, 0))
			fs := vfs.NewMem()
			opts := smallOpts(fs, clock)
			opts.DisableWAL = false

			type modelVal struct {
				dkey  base.DeleteKey
				value []byte
			}
			model := map[string]modelVal{}
			db := mustOpen(t, opts)
			const keySpace = 150

			for epoch := 0; epoch < 4; epoch++ {
				nOps := 100 + rng.Intn(300)
				for op := 0; op < nOps; op++ {
					i := rng.Intn(keySpace)
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4, 5:
						v := []byte(fmt.Sprintf("v-%d-%d", epoch, op))
						d := base.DeleteKey(rng.Intn(1000))
						if err := db.Put(key(i), d, v); err != nil {
							t.Fatal(err)
						}
						model[string(key(i))] = modelVal{d, v}
					case 6, 7:
						if err := db.Delete(key(i)); err != nil {
							t.Fatal(err)
						}
						delete(model, string(key(i)))
					case 8:
						hi := i + 1 + rng.Intn(10)
						if err := db.RangeDelete(key(i), key(hi)); err != nil {
							t.Fatal(err)
						}
						for j := i; j < hi && j < keySpace; j++ {
							delete(model, string(key(j)))
						}
					case 9:
						clock.Advance(time.Duration(rng.Intn(30)) * time.Second)
						if err := db.Maintain(); err != nil {
							t.Fatal(err)
						}
					}
				}
				// Crash: abandon the handle, reopen the same filesystem.
				db = mustOpen(t, opts)

				for i := 0; i < keySpace; i++ {
					want, live := model[string(key(i))]
					v, d, err := db.Get(key(i))
					if !live {
						if !errors.Is(err, ErrNotFound) {
							t.Fatalf("epoch %d key %d: want gone, got %q err=%v", epoch, i, v, err)
						}
						continue
					}
					if err != nil || !bytes.Equal(v, want.value) || d != want.dkey {
						t.Fatalf("epoch %d key %d: got %q/%d err=%v want %q/%d",
							epoch, i, v, d, err, want.value, want.dkey)
					}
				}
			}
			db.Close()
		})
	}
}

// TestCrashDuringCompactionLeavesConsistentState injects failures at varying
// operation counts and verifies every surviving database opens cleanly with
// all previously acknowledged, flushed data intact.
func TestCrashDuringCompactionLeavesConsistentState(t *testing.T) {
	for _, failAt := range []int64{20, 50, 100, 200, 400} {
		failAt := failAt
		t.Run(fmt.Sprintf("failAt-%d", failAt), func(t *testing.T) {
			clock := base.NewManualClock(time.Unix(1e6, 0))
			mem := vfs.NewMem()
			boom := errors.New("crash")
			hook := vfs.FailAfter(failAt, boom)
			inj := vfs.NewInject(mem, func(op vfs.Op, name string) error {
				// Reads never fail: we model a write-path crash.
				if op == vfs.OpRead || op == vfs.OpOpen || op == vfs.OpList || op == vfs.OpClose {
					return nil
				}
				return hook(op, name)
			})
			opts := smallOpts(inj, clock)
			opts.DisableWAL = false
			db, err := Open(opts)
			if err != nil {
				// The injection can fire during Open itself; that's a valid
				// crash point — recovery below must still work.
				t.Logf("open failed at injection: %v", err)
			}

			acked := 0
			if db != nil {
				for i := 0; i < 500; i++ {
					if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
						break
					}
					acked++
				}
			}

			// Recover on the raw filesystem (the device works again).
			opts2 := smallOpts(mem, clock)
			opts2.DisableWAL = false
			db2, err := Open(opts2)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer db2.Close()
			// Every acknowledged write must be present (MemFS writes are
			// durable at acknowledgement).
			for i := 0; i < acked; i++ {
				v, _, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(v, value(i)) {
					t.Fatalf("acked key %d lost after crash at op %d: %q %v", i, failAt, v, err)
				}
			}
		})
	}
}
