//go:build race

package lsm

// raceEnabled reports whether the race detector is active; wall-clock
// utilization assertions skip under it because instrumentation slows the
// CPU side of the pipeline several-fold.
const raceEnabled = true
