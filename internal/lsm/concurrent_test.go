package lsm

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/compaction"
	"lethe/internal/vfs"
)

// TestConcurrentStress hammers a background-maintenance DB with parallel
// writers, readers, scanners, secondary range deletes, and flushes. Run
// under -race it checks the pipeline for data races; functionally it
// verifies that (a) reads complete while compactions are demonstrably in
// flight — the non-blocking-read property the versioned refactor exists
// for — and (b) the data read back is always consistent with what writers
// wrote.
func TestConcurrentStress(t *testing.T) {
	// Slow down sstable creation so flushes and compactions stay in flight
	// long enough for readers to overlap them deterministically.
	slow := vfs.NewInject(vfs.NewMem(), func(op vfs.Op, name string) error {
		if op == vfs.OpCreate && strings.HasSuffix(name, ".sst") {
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	})
	db, err := Open(Options{
		FS:          slow,
		BufferBytes: 4 << 10,
		PageSize:    512,
		FilePages:   4,
		SizeRatio:   4,
		TilePages:   2,
		// A short Dth under the wall clock keeps FADE's TTL triggers —
		// including last-level rewrites — firing throughout the run.
		Mode:              compaction.ModeLethe,
		Dth:               200 * time.Millisecond,
		CompactionWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers = 2
		readers = 3
		keys    = 4000
	)
	key := func(i int) []byte { return []byte(fmt.Sprintf("k%05d", i%keys)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("v%05d", i%keys)) }

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errC := make(chan error, writers+readers+3)
	fail := func(err error) {
		select {
		case errC <- err:
		default:
		}
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := w; ; i += writers {
				select {
				case <-stop:
					return
				default:
				}
				switch rng.Intn(10) {
				case 0:
					if err := db.Delete(key(rng.Intn(keys))); err != nil {
						fail(err)
						return
					}
				case 1:
					lo := rng.Intn(keys - 10)
					if err := db.RangeDelete(key(lo), key(lo+3)); err != nil {
						fail(err)
						return
					}
				default:
					if err := db.Put(key(i), base.DeleteKey(i%keys), val(i)); err != nil {
						fail(err)
						return
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(keys)
				v, _, err := db.Get(key(i))
				switch {
				case err == ErrNotFound:
				case err != nil:
					fail(err)
					return
				case string(v) != string(val(i)):
					fail(fmt.Errorf("key %s read %q, want %q", key(i), v, val(i)))
					return
				}
				if rng.Intn(20) == 0 {
					lo := rng.Intn(keys - 50)
					prev := ""
					err := db.Scan(key(lo), key(lo+50), func(k []byte, _ base.DeleteKey, _ []byte) bool {
						if prev != "" && string(k) <= prev {
							fail(fmt.Errorf("scan out of order: %q after %q", k, prev))
						}
						prev = string(k)
						return true
					})
					if err != nil {
						fail(err)
						return
					}
				}
			}
		}(r)
	}

	// Secondary range deletes and explicit flushes, occasionally.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			lo := base.DeleteKey(rng.Intn(keys))
			if _, err := db.SecondaryRangeDelete(lo, lo+5); err != nil {
				fail(err)
				return
			}
			if rng.Intn(4) == 0 {
				if err := db.Flush(); err != nil {
					fail(err)
					return
				}
			}
		}
	}()

	// The overlap prober: whenever a background compaction is observed in
	// flight, issue a Get; count it only if the compaction is still in
	// flight afterwards — proof the read completed inside a compaction's
	// execution window.
	var readsDuringCompaction atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
			}
			db.mu.Lock()
			busy := db.inflight > 0
			db.mu.Unlock()
			if !busy {
				time.Sleep(time.Millisecond)
				continue
			}
			i := rng.Intn(keys)
			if _, _, err := db.Get(key(i)); err != nil && err != ErrNotFound {
				fail(err)
				return
			}
			db.mu.Lock()
			stillBusy := db.inflight > 0
			db.mu.Unlock()
			if stillBusy {
				readsDuringCompaction.Add(1)
			}
		}
	}()

	deadline := time.After(20 * time.Second)
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
wait:
	for {
		select {
		case err := <-errC:
			close(stop)
			wg.Wait()
			t.Fatal(err)
		case <-deadline:
			break wait
		case <-tick.C:
			if readsDuringCompaction.Load() >= 25 {
				break wait
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errC:
		t.Fatal(err)
	default:
	}

	if got := readsDuringCompaction.Load(); got < 25 {
		t.Errorf("only %d reads completed during in-flight compactions; "+
			"reads appear to block behind compaction", got)
	}

	// Quiesce and check pipeline accounting.
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.BackgroundCompactions == 0 {
		t.Error("no background compactions ran")
	}
	if st.BackgroundFlushes == 0 {
		t.Error("no background flushes ran")
	}
	if st.ImmutableBuffers != 0 {
		t.Errorf("flush queue not drained: %d", st.ImmutableBuffers)
	}

	// Post-quiescence writes and reads still work.
	if err := db.Put([]byte("sentinel"), 1, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if v, _, err := db.Get([]byte("sentinel")); err != nil || string(v) != "alive" {
		t.Fatalf("sentinel: %q %v", v, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("x"), 0, nil); err != ErrClosed {
		t.Fatalf("write after close: %v", err)
	}
}

// TestBackgroundMaintainBarrier checks that Maintain acts as a quiescence
// barrier in background mode: after it returns, no trigger fires and the
// flush queue is empty.
func TestBackgroundMaintainBarrier(t *testing.T) {
	db, err := Open(Options{
		FS:          vfs.NewMem(),
		BufferBytes: 2 << 10,
		PageSize:    512,
		FilePages:   4,
		SizeRatio:   4,
		DisableWAL:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if !db.bgStarted {
		t.Fatal("wall-clock DB must run background maintenance")
	}
	for i := 0; i < 3000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%05d", i)), base.DeleteKey(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.imm) != 0 || db.flushActive || db.inflight > 0 {
		t.Fatalf("not quiescent: imm=%d flushActive=%v inflight=%d",
			len(db.imm), db.flushActive, db.inflight)
	}
}

// TestObsoleteFilesDeleted verifies the refcounted file lifecycle deletes
// compaction inputs once nothing references them: after maintenance
// quiesces, the filesystem must hold exactly the sstables of the current
// version — no leaked inputs.
func TestObsoleteFilesDeleted(t *testing.T) {
	for _, bg := range []bool{false, true} {
		name := "sync"
		if bg {
			name = "background"
		}
		t.Run(name, func(t *testing.T) {
			fs := vfs.NewMem()
			opts := Options{
				FS:          fs,
				BufferBytes: 2 << 10,
				PageSize:    512,
				FilePages:   4,
				SizeRatio:   4,
				DisableWAL:  true,
			}
			if !bg {
				opts.Clock = base.NewManualClock(time.Unix(0, 0))
			}
			db, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			for i := 0; i < 4000; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%05d", i%1500)), 0, []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := db.Maintain(); err != nil {
				t.Fatal(err)
			}

			db.mu.Lock()
			live := map[string]bool{}
			db.current.forEach(func(h *fileHandle) { live[h.name] = true })
			db.mu.Unlock()
			names, err := fs.List()
			if err != nil {
				t.Fatal(err)
			}
			var onDisk []string
			for _, n := range names {
				if strings.HasSuffix(n, ".sst") {
					onDisk = append(onDisk, n)
				}
			}
			if len(onDisk) != len(live) {
				t.Fatalf("file leak: %d sstables on disk, %d referenced by the current version\ndisk: %v",
					len(onDisk), len(live), onDisk)
			}
			for _, n := range onDisk {
				if !live[n] {
					t.Errorf("orphan sstable %s", n)
				}
			}
			st := db.Stats()
			if st.Compactions == 0 {
				t.Fatal("workload did not trigger compactions")
			}
		})
	}
}

// TestManualClockDisablesBackground pins the determinism contract: injecting
// a manual clock must force synchronous maintenance.
func TestManualClockDisablesBackground(t *testing.T) {
	db, err := Open(Options{
		FS:         vfs.NewMem(),
		Clock:      base.NewManualClock(time.Unix(0, 0)),
		DisableWAL: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.bgStarted {
		t.Fatal("manual clock must disable background maintenance")
	}
}
