package lsm

import (
	"lethe/internal/compaction"
	"lethe/internal/runtime"
)

// Background maintenance executes on the shared runtime's worker pool: the
// DB implements runtime.Source, and the pool's workers poll every registered
// instance for its best ready job — a flush (always preferred) or the top
// FADE-scored compaction — so a sharded database runs all maintenance on one
// globally bounded set of CompactionWorkers goroutines instead of a worker
// set per shard, and compaction urgency is compared across shards rather
// than within one picker's view.

// ttlPriorityBase lifts every TTL-expired pick above every saturation pick:
// FADE's delete-driven trigger preempts saturation (§4.1.4), globally.
const ttlPriorityBase = 1 << 20

// startBackground registers the DB with the maintenance runtime. Called
// once from Open, before the DB is shared (though runtime workers may poll
// the instance as soon as Register returns).
func (db *DB) startBackground() {
	db.bgStarted = true
	db.busyFiles = make(map[uint64]bool)
	db.busyLevels = make(map[int]int)
	db.srcID = db.rt.Register(db)
	// Seed the global memory budget with what WAL replay left in the
	// buffer: registration starts the shard at zero, and without this the
	// budget understates the footprint until the shard's first commit.
	db.mu.Lock()
	db.updateMemoryUsageLocked()
	db.mu.Unlock()
}

// kickMaintenance nudges the shared worker pool without blocking. Safe to
// call with or without db.mu held.
func (db *DB) kickMaintenance() {
	if db.rt != nil {
		db.rt.Notify()
	}
}

// quiescentLocked reports whether no background work is running or queued.
// Callers hold db.mu.
func (db *DB) quiescentLocked() bool {
	return len(db.imm) == 0 && !db.flushActive && db.inflight == 0
}

// pauseBackgroundLocked stops new background work from starting and waits
// for in-flight flushes and compactions to finish. It does not drain the
// immutable queue — callers that need an empty queue (FullTreeCompact)
// flush inline afterwards. Callers hold db.mu; pair with
// resumeBackgroundLocked.
func (db *DB) pauseBackgroundLocked() {
	db.pauseBG++
	for db.flushActive || db.inflight > 0 {
		db.bgCond.Wait()
	}
}

// resumeBackgroundLocked reverses pauseBackgroundLocked and re-kicks the
// pool, since triggers may have accumulated while paused.
func (db *DB) resumeBackgroundLocked() {
	db.pauseBG--
	if db.pauseBG == 0 {
		db.kickMaintenance()
	}
	db.bgCond.Broadcast()
}

// setBackgroundErrLocked records the first background failure; it poisons
// subsequent writes and Maintain calls, mirroring how production engines
// surface background I/O errors rather than losing them. Budget-stalled
// writers are woken so their progress callback observes the poison — the
// failed flush that set it will never shrink the usage that would
// otherwise release them.
func (db *DB) setBackgroundErrLocked(err error) {
	if err != nil && db.bgErr == nil {
		db.bgErr = err
		if db.rt != nil {
			db.rt.WakeMemoryWaiters()
		}
	}
}

// OfferJob implements runtime.Source: it claims and returns this instance's
// best ready maintenance job. Flushes come first — a backed-up immutable
// queue stalls writers — then the FADE pick, scored for cross-shard
// comparison. The claim (flushActive, or busy files/levels plus inflight)
// is taken here so a job conflicting with the offer is not offered to
// another worker; exactly one of Run and Cancel releases it.
//
// The poll must not block behind a long db.mu hold (FullTreeCompact runs
// its whole merge under it): the runtime polls every source while holding
// its own dispatch lock, so blocking here would stall every other shard's
// maintenance. TryLock skips this source for the round instead, reporting
// retry so the runtime re-polls shortly — the contender may have been the
// very kick that triggered this poll, with no later event coming.
func (db *DB) OfferJob(flushOnly bool) (*runtime.Job, bool) {
	if !db.mu.TryLock() {
		return nil, true
	}
	if db.closed || db.pauseBG > 0 || db.bgErr != nil {
		db.mu.Unlock()
		return nil, false
	}
	if !db.flushActive && len(db.imm) > 0 {
		fl := db.imm[0]
		db.flushActive = true
		db.mu.Unlock()
		return &runtime.Job{
			Kind:   runtime.JobFlush,
			Run:    func() { db.runBackgroundFlush(fl) },
			Cancel: func() { db.cancelFlush() },
		}, false
	}
	if flushOnly {
		// The flush lane never compacts; skip the pick entirely rather
		// than claim-and-cancel it.
		db.mu.Unlock()
		return nil, false
	}
	tree := db.pickerTreeLocked(db.busyFiles)
	d, ok := compaction.Pick(tree, db.opts.Mode, db.ttls, db.opts.Clock.Now())
	var job *compactionJob
	if ok {
		job = db.prepareCompactionLocked(d)
	} else if job = db.pickMigrationLocked(db.busyFiles); job == nil {
		// No compaction trigger and placement is satisfied — migrations run
		// only when the picker is quiet, so tier repair never delays a
		// saturated or TTL-expired level.
		db.mu.Unlock()
		return nil, false
	}
	if job.kind == compactNoop || db.conflictsLocked(job) {
		// The picker is deterministic, so re-picking now would return the
		// same decision; offer nothing until an in-flight job finishes.
		db.mu.Unlock()
		job.release()
		return nil, false
	}
	db.claimLocked(job)
	db.inflight++
	var prio float64
	if ok {
		prio = db.compactionPriorityLocked(d)
	}
	db.mu.Unlock()
	return &runtime.Job{
		Kind:     runtime.JobCompaction,
		Priority: prio,
		Run:      func() { db.runBackgroundCompaction(job) },
		Cancel:   func() { db.cancelCompaction(job) },
	}, false
}

// MaintenanceTick implements runtime.Source: when the pipeline is fully
// idle, enforce Dth on the WAL (§4.1.5) — sealing an over-age live segment
// queues a flush the next OfferJob returns. Best-effort under TryLock (the
// ticker must not stall on one shard's long critical section); the next
// tick retries.
func (db *DB) MaintenanceTick() {
	if !db.mu.TryLock() {
		return
	}
	defer db.mu.Unlock()
	if db.pauseBG > 0 || db.closed || db.bgErr != nil || !db.quiescentLocked() {
		return
	}
	if _, err := db.walMaintenanceLocked(); err != nil {
		db.setBackgroundErrLocked(err)
	}
}

// PendingJobs implements runtime.Source: sealed buffers awaiting a flush
// claim plus an armed compaction trigger, for queue-depth reporting.
// Best-effort under TryLock — a contended shard reports 0 for the snapshot
// rather than blocking the stats caller.
func (db *DB) PendingJobs() int {
	if !db.mu.TryLock() {
		return 0
	}
	defer db.mu.Unlock()
	if db.closed || db.pauseBG > 0 || db.bgErr != nil {
		return 0
	}
	n := len(db.imm)
	if db.flushActive && n > 0 {
		n-- // the head buffer is being flushed, not queued
	}
	tree := db.pickerTreeLocked(db.busyFiles)
	if _, ok := compaction.Pick(tree, db.opts.Mode, db.ttls, db.opts.Clock.Now()); ok {
		n++
	} else if _, _, misplaced := db.findMisplacedLocked(db.busyFiles); misplaced {
		n++
	}
	return n
}

// compactionPriorityLocked scores a pick for the global queue: TTL-expired
// picks rank by how far past the level's TTL the oldest tombstone is (all
// above ttlPriorityBase), saturation picks by the triggering level's
// overflow ratio — so the pool drains the most overdue delete debt and the
// most saturated level anywhere in the database first. Callers hold db.mu.
func (db *DB) compactionPriorityLocked(d compaction.Decision) float64 {
	if d.Trigger == compaction.TriggerTTL {
		now := db.opts.Clock.Now()
		var over float64
		for _, f := range d.Files {
			age := f.Meta.AMax(now)
			if d.Level < len(db.ttls) {
				if o := (age - db.ttls[d.Level]).Seconds(); o > over {
					over = o
				}
			}
		}
		return ttlPriorityBase + over
	}
	l := d.Level
	if l >= len(db.current.levels) {
		return 0
	}
	if db.opts.Tiering {
		if db.opts.SizeRatio <= 0 {
			return 0
		}
		return float64(len(db.current.levels[l])) / float64(db.opts.SizeRatio)
	}
	cap := db.capacityBytes(l)
	if cap <= 0 {
		return 0
	}
	return float64(liveBytes(db.current, l, nil)) / float64(cap)
}

// cancelFlush releases an offered-but-not-run flush claim.
func (db *DB) cancelFlush() {
	db.mu.Lock()
	db.flushActive = false
	db.bgCond.Broadcast()
	db.mu.Unlock()
}

// cancelCompaction releases an offered-but-not-run compaction claim.
func (db *DB) cancelCompaction(job *compactionJob) {
	db.mu.Lock()
	db.unclaimLocked(job)
	db.inflight--
	db.bgCond.Broadcast()
	db.mu.Unlock()
	job.release()
}

// runBackgroundFlush executes one claimed flush: build the run outside
// db.mu, install it under the lock, release the sealed WAL segment.
func (db *DB) runBackgroundFlush(fl *flushable) {
	newRun, maxSeq, err := db.buildFlushRun(fl, db.maintFS)

	db.mu.Lock()
	if err == nil {
		err = db.installFlushLocked(fl, newRun, maxSeq)
	}
	if err == nil {
		db.m.bgFlushes.Add(1)
	}
	db.flushActive = false
	db.setBackgroundErrLocked(err)
	db.updateMemoryUsageLocked()
	db.bgCond.Broadcast()
	db.mu.Unlock()
	// The install freed budget and may have armed compaction triggers (or
	// left more sealed buffers queued).
	db.kickMaintenance()
}

// conflictsLocked reports whether the job touches a level an in-flight
// compaction is already modifying.
func (db *DB) conflictsLocked(job *compactionJob) bool {
	for _, l := range job.levelsTouched() {
		if db.busyLevels[l] > 0 {
			return true
		}
	}
	return false
}

func (db *DB) claimLocked(job *compactionJob) {
	for _, l := range job.levelsTouched() {
		db.busyLevels[l]++
	}
	for _, h := range job.inputs() {
		db.busyFiles[h.meta.FileNum] = true
	}
}

func (db *DB) unclaimLocked(job *compactionJob) {
	for _, l := range job.levelsTouched() {
		db.busyLevels[l]--
	}
	for _, h := range job.inputs() {
		delete(db.busyFiles, h.meta.FileNum)
	}
}

// runBackgroundCompaction executes one dispatched job: merge outside db.mu,
// install under it.
func (db *DB) runBackgroundCompaction(job *compactionJob) {
	err := db.executeCompaction(job)

	db.mu.Lock()
	if err == nil {
		err = db.installCompactionLocked(job)
	}
	if err == nil {
		db.m.bgCompactions.Add(1)
	}
	db.unclaimLocked(job)
	db.inflight--
	db.setBackgroundErrLocked(err)
	db.bgCond.Broadcast()
	db.mu.Unlock()

	job.release()
	// The install may have armed new triggers (or unblocked a conflicting
	// pick).
	db.kickMaintenance()
}

// updateMemoryUsageLocked reports this instance's memtable footprint
// (mutable buffer plus sealed queue) to the runtime's global budget.
// Callers hold db.mu.
func (db *DB) updateMemoryUsageLocked() {
	if db.rt == nil {
		return
	}
	total := int64(db.mem.ApproxBytes())
	for _, fl := range db.imm {
		total += int64(fl.mem.ApproxBytes())
	}
	db.rt.SetMemoryUsage(db.srcID, total)
}

// admitMemory gates a writer on the runtime's global memtable budget before
// it enters the commit path (no engine locks are held, so flush installs
// proceed while the writer waits). The progress callback seals this
// instance's buffer so the shared pool has something to drain — without it
// a hot shard whose bytes sit entirely in the mutable buffer below
// BufferBytes would stall forever — and aborts the wait on close or on a
// poisoned engine.
func (db *DB) admitMemory() error {
	if db.rt == nil {
		return nil
	}
	return db.rt.AdmitMemory(db.srcID, func() error {
		db.mu.Lock()
		if db.closed {
			db.mu.Unlock()
			return ErrClosed
		}
		if db.bgErr != nil {
			err := db.bgErr
			db.mu.Unlock()
			return err
		}
		if err := db.sealMemtableLocked(); err != nil {
			db.mu.Unlock()
			return err
		}
		db.updateMemoryUsageLocked()
		db.mu.Unlock()
		db.kickMaintenance()
		return nil
	})
}

// RuntimeStats returns the shared maintenance runtime's statistics (pool,
// global queue, memory budget, rate limiter, cache); ok is false in
// synchronous mode, which has no runtime.
func (db *DB) RuntimeStats() (runtime.Stats, bool) {
	if db.rt == nil {
		return runtime.Stats{}, false
	}
	return db.rt.Stats(), true
}
