package lsm

import (
	"time"

	"lethe/internal/compaction"
)

// backgroundTickInterval bounds how long the compaction scheduler sleeps
// between trigger re-evaluations. With a wall clock, TTL triggers (§4.1.2)
// and WAL tombstone expiry fire as time passes even while the write path is
// idle, so the scheduler cannot rely on write-side kicks alone.
const backgroundTickInterval = 500 * time.Millisecond

// startBackground launches the flush worker and the compaction scheduler.
// Called once from Open, before the DB is shared.
func (db *DB) startBackground() {
	db.bgStarted = true
	db.flushC = make(chan struct{}, 1)
	db.compactC = make(chan struct{}, 1)
	db.quit = make(chan struct{})
	db.busyFiles = make(map[uint64]bool)
	db.busyLevels = make(map[int]int)
	db.bg.Add(2)
	go db.flushWorker()
	go db.compactionScheduler()
}

// kickFlush nudges the flush worker without blocking.
func (db *DB) kickFlush() {
	if db.flushC == nil {
		return
	}
	select {
	case db.flushC <- struct{}{}:
	default:
	}
}

// kickCompact nudges the compaction scheduler without blocking.
func (db *DB) kickCompact() {
	if db.compactC == nil {
		return
	}
	select {
	case db.compactC <- struct{}{}:
	default:
	}
}

// quiescentLocked reports whether no background work is running or queued.
// Callers hold db.mu.
func (db *DB) quiescentLocked() bool {
	return len(db.imm) == 0 && !db.flushActive && db.inflight == 0
}

// pauseBackgroundLocked stops new background work from starting and waits
// for in-flight flushes and compactions to finish. It does not drain the
// immutable queue — callers that need an empty queue (FullTreeCompact)
// flush inline afterwards. Callers hold db.mu; pair with
// resumeBackgroundLocked.
func (db *DB) pauseBackgroundLocked() {
	db.pauseBG++
	for db.flushActive || db.inflight > 0 {
		db.bgCond.Wait()
	}
}

// resumeBackgroundLocked reverses pauseBackgroundLocked and re-kicks the
// workers, since triggers may have accumulated while paused.
func (db *DB) resumeBackgroundLocked() {
	db.pauseBG--
	if db.pauseBG == 0 {
		db.kickFlush()
		db.kickCompact()
	}
	db.bgCond.Broadcast()
}

// setBackgroundErrLocked records the first background failure; it poisons
// subsequent writes and Maintain calls, mirroring how production engines
// surface background I/O errors rather than losing them.
func (db *DB) setBackgroundErrLocked(err error) {
	if err != nil && db.bgErr == nil {
		db.bgErr = err
	}
}

// flushWorker drains the immutable-memtable queue: build the run outside
// db.mu, install it under the lock, release the sealed WAL segment.
func (db *DB) flushWorker() {
	defer db.bg.Done()
	for {
		select {
		case <-db.quit:
			return
		case <-db.flushC:
		}
		for {
			db.mu.Lock()
			if db.closed || db.pauseBG > 0 || db.bgErr != nil || len(db.imm) == 0 {
				db.mu.Unlock()
				break
			}
			fl := db.imm[0]
			db.flushActive = true
			db.mu.Unlock()

			newRun, maxSeq, err := db.buildFlushRun(fl)

			db.mu.Lock()
			if err == nil {
				err = db.installFlushLocked(fl, newRun, maxSeq)
			}
			if err == nil {
				db.m.bgFlushes.Add(1)
			}
			db.flushActive = false
			db.setBackgroundErrLocked(err)
			db.bgCond.Broadcast()
			db.mu.Unlock()
			if err != nil {
				return
			}
			db.kickCompact()
		}
	}
}

// compactionScheduler evaluates FADE's triggers against the current version
// (masking files claimed by in-flight compactions) and dispatches jobs to up
// to CompactionWorkers concurrent goroutines. Two jobs never touch the same
// level: a conservative conflict rule that keeps concurrent installs
// composable.
func (db *DB) compactionScheduler() {
	defer db.bg.Done()
	ticker := time.NewTicker(backgroundTickInterval)
	defer ticker.Stop()
	for {
		db.mu.Lock()
		undispatched := db.dispatchCompactionsLocked()
		if db.pauseBG == 0 && !db.closed && db.bgErr == nil && db.quiescentLocked() {
			// Fully idle: enforce Dth on the WAL (sealing an over-age live
			// segment queues a flush and wakes us again via the worker).
			if _, err := db.walMaintenanceLocked(); err != nil {
				db.setBackgroundErrLocked(err)
			}
			db.kickFlush()
		}
		db.mu.Unlock()
		if undispatched != nil {
			undispatched.release()
		}
		select {
		case <-db.quit:
			return
		case <-db.compactC:
		case <-ticker.C:
		}
	}
}

// dispatchCompactionsLocked starts as many non-conflicting compactions as
// worker slots allow. Callers hold db.mu. A prepared job that could not be
// dispatched is returned for the caller to release outside the lock.
func (db *DB) dispatchCompactionsLocked() *compactionJob {
	if db.pauseBG > 0 || db.closed || db.bgErr != nil {
		return nil
	}
	for db.inflight < db.opts.CompactionWorkers {
		tree := db.pickerTreeLocked(db.busyFiles)
		d, ok := compaction.Pick(tree, db.opts.Mode, db.ttls, db.opts.Clock.Now())
		if !ok {
			return nil
		}
		job := db.prepareCompactionLocked(d)
		if job.kind == compactNoop || db.conflictsLocked(job) {
			// The picker is deterministic, so re-picking now would return
			// the same decision; wait for an in-flight job to finish.
			return job
		}
		db.claimLocked(job)
		db.inflight++
		db.bg.Add(1)
		go db.runBackgroundCompaction(job)
	}
	return nil
}

// conflictsLocked reports whether the job touches a level an in-flight
// compaction is already modifying.
func (db *DB) conflictsLocked(job *compactionJob) bool {
	for _, l := range job.levelsTouched() {
		if db.busyLevels[l] > 0 {
			return true
		}
	}
	return false
}

func (db *DB) claimLocked(job *compactionJob) {
	for _, l := range job.levelsTouched() {
		db.busyLevels[l]++
	}
	for _, h := range job.inputs() {
		db.busyFiles[h.meta.FileNum] = true
	}
}

func (db *DB) unclaimLocked(job *compactionJob) {
	for _, l := range job.levelsTouched() {
		db.busyLevels[l]--
	}
	for _, h := range job.inputs() {
		delete(db.busyFiles, h.meta.FileNum)
	}
}

// runBackgroundCompaction executes one dispatched job: merge outside db.mu,
// install under it.
func (db *DB) runBackgroundCompaction(job *compactionJob) {
	defer db.bg.Done()
	err := db.executeCompaction(job)

	db.mu.Lock()
	if err == nil {
		err = db.installCompactionLocked(job)
	}
	if err == nil {
		db.m.bgCompactions.Add(1)
	}
	db.unclaimLocked(job)
	db.inflight--
	db.setBackgroundErrLocked(err)
	db.bgCond.Broadcast()
	db.mu.Unlock()

	job.release()
	// The install may have armed new triggers (or unblocked a conflicting
	// pick).
	db.kickCompact()
}
