package lsm

// Shard handoff: the primitives the resharding orchestrator (package lethe)
// uses to move a frozen instance's sstables into new shard directories
// without rewriting them.
//
// The protocol is: the router freezes the shard (no new writes), Flush
// drains its buffers, PauseMaintenance waits out in-flight background work,
// ExportHandoff snapshots the now-quiescent tree's file layout, and the
// orchestrator either renames whole files into the child directories
// (sstable-level handoff — the common case, since tiles already partition a
// run's key space) or calls RewriteClip on the few files that straddle the
// cut. The donor instance is then closed; because handed-off files were
// renamed away before Close, and their handles never carry the obsolete
// flag, Close drops the readers without deleting the data.

import (
	"fmt"

	"lethe/internal/base"
	"lethe/internal/sstable"
	"lethe/internal/vfs"
)

// PauseMaintenance stops new background flushes and compactions from
// starting on this instance and waits for in-flight ones to finish. It
// nests; pair each call with ResumeMaintenance. No-op in synchronous mode,
// where there is no background work to pause.
func (db *DB) PauseMaintenance() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.bgStarted {
		return
	}
	db.pauseBackgroundLocked()
}

// ResumeMaintenance reverses PauseMaintenance (and the Options.HoldMaintenance
// open-time hold) and re-kicks the maintenance pool.
func (db *DB) ResumeMaintenance() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.bgStarted {
		return
	}
	db.resumeBackgroundLocked()
}

// HandoffFile describes one immutable sstable offered for handoff: enough
// metadata for the orchestrator to decide which side of a cut the file
// belongs to (entry bounds and range tombstone spans) and to pick a cut at
// an existing tile boundary (Tiles).
type HandoffFile struct {
	Num        uint64
	Remote     bool
	Size       int64
	NumEntries int
	// MinS/MaxS bound the file's entries on the sort key; nil/empty for a
	// file that carries only range tombstones.
	MinS, MaxS      []byte
	RangeTombstones []base.RangeTombstone
	Tiles           []sstable.TileSpan
}

// Handoff is a consistent snapshot of a quiescent instance's file layout:
// Levels[l][r] lists run r of disk level l in the same order the manifest
// records. All byte slices are deep copies and safe to retain.
type Handoff struct {
	Levels      [][][]HandoffFile
	LastSeq     uint64
	NextFileNum uint64
}

// ExportHandoff snapshots the current version's file layout for a shard
// split or merge. The instance must be quiescent: buffers flushed (the
// caller froze writes and called Flush) and background work paused —
// otherwise a concurrent flush or compaction could install files the
// snapshot misses.
func (db *DB) ExportHandoff() (Handoff, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return Handoff{}, ErrClosed
	}
	if db.mem.Count() > 0 || len(db.imm) > 0 {
		return Handoff{}, fmt.Errorf("lsm: handoff requires flushed buffers (%d live, %d immutable entries pending)", db.mem.Count(), len(db.imm))
	}
	if db.flushActive || db.inflight > 0 {
		return Handoff{}, fmt.Errorf("lsm: handoff requires paused maintenance (background work in flight)")
	}
	h := Handoff{
		Levels:      make([][][]HandoffFile, len(db.current.levels)),
		LastSeq:     uint64(db.flushedSeq),
		NextFileNum: db.nextFileNum.Load(),
	}
	for l, runs := range db.current.levels {
		h.Levels[l] = make([][]HandoffFile, len(runs))
		for ri, r := range runs {
			files := make([]HandoffFile, 0, len(r))
			for _, fh := range r {
				m := fh.r.MetaCopy()
				hf := HandoffFile{
					Num:        fh.meta.FileNum,
					Remote:     fh.remote,
					Size:       m.Size,
					NumEntries: m.NumEntries,
					MinS:       append([]byte(nil), m.MinS...),
					MaxS:       append([]byte(nil), m.MaxS...),
				}
				for _, rt := range fh.r.RangeTombstones {
					hf.RangeTombstones = append(hf.RangeTombstones, base.RangeTombstone{
						Start: append([]byte(nil), rt.Start...),
						End:   append([]byte(nil), rt.End...),
						Seq:   rt.Seq,
						DKey:  rt.DKey,
					})
				}
				for _, ts := range fh.r.TileSpans() {
					hf.Tiles = append(hf.Tiles, sstable.TileSpan{
						MinS:  append([]byte(nil), ts.MinS...),
						Bytes: ts.Bytes,
					})
				}
				files = append(files, hf)
			}
			h.Levels[l][ri] = files
		}
	}
	return h, nil
}

// RewriteClip copies the live entries and range tombstones of file num,
// restricted to the user-key range [lo, hi) (nil means unbounded), into a
// new sstable named dstName with file number dstNum, created through
// dst.Create. Range tombstones are clipped to the range; ones that clip to
// empty are dropped. When nothing of the source survives the clip, no file
// is created and written is false.
//
// The caller must hold the instance quiescent (frozen + paused), so the
// source file cannot be compacted away mid-read; the read still pins the
// file handle for safety. The output is written wherever dst points —
// always the local tier during resharding, even for a remote source (the
// placement policy re-migrates later if the child's level calls for it).
func (db *DB) RewriteClip(num uint64, lo, hi []byte, dst vfs.FS, dstName string, dstNum uint64) (bytes int64, written bool, err error) {
	db.mu.Lock()
	var src *fileHandle
	db.current.forEach(func(h *fileHandle) {
		if h.meta.FileNum == num {
			src = h
		}
	})
	if src == nil {
		db.mu.Unlock()
		return 0, false, fmt.Errorf("lsm: rewrite clip: file %06d not in current version", num)
	}
	src.ref()
	db.mu.Unlock()
	defer src.unref()

	// Clip the range tombstone block first — it is cheap and lets an
	// entries-empty, tombstones-empty result skip file creation.
	var rts []base.RangeTombstone
	for _, rt := range src.r.RangeTombstones {
		s, e := rt.Start, rt.End
		if lo != nil && base.CompareUserKeys(s, lo) < 0 {
			s = lo
		}
		if hi != nil && (e == nil || base.CompareUserKeys(e, hi) > 0) {
			e = hi
		}
		if e != nil && base.CompareUserKeys(s, e) >= 0 {
			continue
		}
		rts = append(rts, base.RangeTombstone{
			Start: append([]byte(nil), s...),
			End:   append([]byte(nil), e...),
			Seq:   rt.Seq,
			DKey:  rt.DKey,
		})
	}

	it := src.r.NewIter()
	if lo != nil {
		it.SeekGE(lo)
	}
	var entries []base.Entry
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if hi != nil && base.CompareUserKeys(e.Key.UserKey, hi) >= 0 {
			break
		}
		entries = append(entries, e)
	}
	if err := it.Error(); err != nil {
		return 0, false, err
	}
	if len(entries) == 0 && len(rts) == 0 {
		return 0, false, nil
	}

	f, err := dst.Create(dstName)
	if err != nil {
		return 0, false, err
	}
	w := sstable.NewWriter(f, sstable.WriterOptions{
		FileNum:           dstNum,
		FormatVersion:     db.opts.SSTableFormat,
		PageSize:          db.opts.PageSize,
		BlockSizeBytes:    db.opts.BlockSizeBytes,
		TilePages:         db.opts.TilePages,
		BloomBitsPerKey:   db.opts.BloomBitsPerKey,
		Clock:             db.opts.Clock,
		CoverageEstimator: db.opts.CoverageEstimator,
	})
	for _, e := range entries {
		if err := w.Add(e); err != nil {
			f.Close()
			return 0, false, err
		}
	}
	for _, rt := range rts {
		if err := w.AddRangeTombstone(rt); err != nil {
			f.Close()
			return 0, false, err
		}
	}
	meta, err := w.Finish()
	if err != nil {
		f.Close()
		return 0, false, err
	}
	if err := f.Close(); err != nil {
		return 0, false, err
	}
	return meta.Size, true, nil
}
