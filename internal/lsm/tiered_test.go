package lsm

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"lethe/internal/base"
	"lethe/internal/vfs"
)

// tieredOpts is smallOpts plus a remote tier: everything at or past level
// LocalLevels lives on the returned remote filesystem.
func tieredOpts(local, remote vfs.FS, clock base.Clock, localLevels int) Options {
	o := smallOpts(local, clock)
	o.RemoteFS = remote
	o.Placement = PlacementPolicy{LocalLevels: localLevels}
	return o
}

// tierByFile snapshots the current version's file-number → tier map.
func tierByFile(db *DB) map[uint64]bool {
	out := make(map[uint64]bool)
	db.mu.Lock()
	db.current.forEach(func(h *fileHandle) { out[h.meta.FileNum] = h.remote })
	db.mu.Unlock()
	return out
}

// fillTiered writes n keys and maintains until placement is quiescent.
func fillTiered(t *testing.T, db *DB, clock *base.ManualClock, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
		clock.Advance(time.Second)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredPlacementFollowsLevels checks the core invariant: after
// maintenance reaches quiescence, every file's tier matches its level's
// placement, and remote files physically live on the remote filesystem.
func TestTieredPlacementFollowsLevels(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	local, remote := vfs.NewMem(), vfs.NewMem()
	db := mustOpen(t, tieredOpts(local, remote, clock, 1))
	defer db.Close()
	fillTiered(t, db, clock, 600)

	var localFiles, remoteFiles int
	db.mu.Lock()
	for l, lvl := range db.current.levels {
		for _, r := range lvl {
			for _, h := range r {
				wantRemote := l >= db.opts.Placement.LocalLevels
				if h.remote != wantRemote {
					db.mu.Unlock()
					t.Fatalf("level %d file %06d: remote=%v, placement wants %v",
						l, h.meta.FileNum, h.remote, wantRemote)
				}
				if h.remote {
					remoteFiles++
				} else {
					localFiles++
				}
			}
		}
	}
	db.mu.Unlock()
	if remoteFiles == 0 {
		t.Fatal("no files migrated to the remote tier")
	}
	// The physical bytes must be on the tier the handle claims.
	remoteNames, err := remote.List()
	if err != nil {
		t.Fatal(err)
	}
	nRemoteSSTs := 0
	for _, n := range remoteNames {
		if strings.HasSuffix(n, ".sst") {
			nRemoteSSTs++
		}
	}
	if nRemoteSSTs != remoteFiles {
		t.Fatalf("remote device holds %d sstables, version claims %d", nRemoteSSTs, remoteFiles)
	}
	st := db.Stats()
	if st.Tier.RemoteFiles != remoteFiles || st.Tier.LocalFiles != localFiles {
		t.Fatalf("TierStats %d/%d local/remote, version %d/%d",
			st.Tier.LocalFiles, st.Tier.RemoteFiles, localFiles, remoteFiles)
	}
	if st.Tier.RemoteBytesWritten == 0 {
		t.Fatal("remote files exist but no bytes were accounted against the remote device")
	}

	// FullTreeCompact writes its output locally (the output level is not
	// known until the merge finishes); the placement-repair pass must then
	// migrate the result across the tier boundary and count it.
	if err := db.FullTreeCompact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.Tier.Migrations == 0 {
		t.Fatal("placement repair after FullTreeCompact performed no migrations")
	}
	if st.Tier.MigratedBytes == 0 {
		t.Fatal("migrations counted but no bytes")
	}
	for num, remoteTier := range tierByFile(db) {
		if !remoteTier {
			// Everything sits in the last level now, which is remote.
			t.Fatalf("file %06d still local after placement repair", num)
		}
	}
}

// TestTieredPlacementSurvivesReopen writes a tiered tree, reopens it, and
// asserts the manifest reproduced every file's tier exactly — and that the
// data is still fully readable afterwards.
func TestTieredPlacementSurvivesReopen(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	local, remote := vfs.NewMem(), vfs.NewMem()
	db := mustOpen(t, tieredOpts(local, remote, clock, 1))
	const n = 600
	fillTiered(t, db, clock, n)
	before := tierByFile(db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := mustOpen(t, tieredOpts(local, remote, clock, 1))
	defer db2.Close()
	after := tierByFile(db2)
	if len(after) != len(before) {
		t.Fatalf("reopen changed file population: %d -> %d files", len(before), len(after))
	}
	for num, remoteTier := range before {
		got, ok := after[num]
		if !ok {
			t.Fatalf("file %06d lost across reopen", num)
		}
		if got != remoteTier {
			t.Fatalf("file %06d: tier flipped across reopen (was remote=%v)", num, remoteTier)
		}
	}
	for i := 0; i < n; i++ {
		v, _, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("get %d after reopen: %q %v", i, v, err)
		}
	}
}

// TestTieredReopenWithoutRemoteFS: a manifest that records remote files must
// refuse to open without a remote filesystem rather than serve a tree with
// holes in it.
func TestTieredReopenWithoutRemoteFS(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	local, remote := vfs.NewMem(), vfs.NewMem()
	db := mustOpen(t, tieredOpts(local, remote, clock, 1))
	fillTiered(t, db, clock, 600)
	remoteFiles := db.Stats().Tier.RemoteFiles
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if remoteFiles == 0 {
		t.Fatal("setup built no remote files")
	}
	if _, err := Open(smallOpts(local, clock)); err == nil {
		t.Fatal("open without RemoteFS succeeded despite remote-tier manifest entries")
	}
}

// TestTieredMigrationCrashKeepsRun injects write failures on the remote
// device so every migration copy dies mid-stream, and checks the invariant
// the manifest protocol guarantees: the source run stays authoritative (all
// data readable), and a reopen cleans the partial remote copies up as
// orphans instead of trusting them.
func TestTieredMigrationCrashKeepsRun(t *testing.T) {
	clock := base.NewManualClock(time.Unix(1e6, 0))
	local, remoteMem := vfs.NewMem(), vfs.NewMem()
	var failRemote sync.Map // name -> struct{} once it has taken one write
	remote := vfs.NewInject(remoteMem, func(op vfs.Op, name string) error {
		if op == vfs.OpWrite && strings.HasSuffix(name, ".sst") {
			// Let the first write through so a partial file exists, then
			// fail: a torn copy, not a clean absence.
			if _, loaded := failRemote.LoadOrStore(name, struct{}{}); loaded {
				return fmt.Errorf("injected remote write failure on %s", name)
			}
		}
		return nil
	})
	db := mustOpen(t, tieredOpts(local, remote, clock, 1))
	const n = 600
	sawFault := false
	for i := 0; i < n; i++ {
		// Synchronous mode runs maintenance inline inside Put, so the
		// injected remote faults surface here; the write itself (buffer
		// insert, local flush) has already succeeded when they do.
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			if !strings.Contains(err.Error(), "injected") {
				t.Fatal(err)
			}
			sawFault = true
		}
		clock.Advance(time.Second)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Maintenance keeps attempting cross-tier work and failing; the error
	// surfaces but the tree must stay intact.
	if err := db.Maintain(); err != nil {
		sawFault = true
	}
	if !sawFault {
		t.Fatal("expected remote faults from the injected failures")
	}
	for _, tier := range tierByFile(db) {
		if tier {
			t.Fatal("a file was installed remote despite every copy failing")
		}
	}
	for i := 0; i < n; i++ {
		v, _, err := db.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("get %d after failed migration: %q %v", i, v, err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen against the real (no longer failing) remote device: the torn
	// partial copies are orphans the manifest never admitted — they must be
	// swept, and the data must still come from the local originals.
	db2 := mustOpen(t, tieredOpts(local, remoteMem, clock, 1))
	defer db2.Close()
	names, err := remoteMem.List()
	if err != nil {
		t.Fatal(err)
	}
	st := db2.Stats()
	orphanBudget := 0
	for _, name := range names {
		if strings.HasSuffix(name, ".sst") {
			orphanBudget++
		}
	}
	if orphanBudget > st.Tier.RemoteFiles {
		t.Fatalf("%d sstables on remote device but only %d admitted by the manifest — orphans not cleaned",
			orphanBudget, st.Tier.RemoteFiles)
	}
	for i := 0; i < n; i++ {
		v, _, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("get %d after reopen: %q %v", i, v, err)
		}
	}
}

// TestTieredConcurrentReadsDuringMigration is the -race stress: background
// maintenance migrates runs to the remote tier while readers hammer Gets.
// Every read must see its key regardless of which side of a migration it
// lands on.
func TestTieredConcurrentReadsDuringMigration(t *testing.T) {
	local, remote := vfs.NewMem(), vfs.NewMem()
	o := Options{
		FS:             local,
		RemoteFS:       remote,
		Placement:      PlacementPolicy{LocalLevels: 1},
		SizeRatio:      4,
		PageSize:       256,
		BlockSizeBytes: 256,
		BufferBytes:    2 * 1024,
		FilePages:      4,
		TilePages:      2,
		Dth:            time.Hour,
		Seed:           1,
	}
	db := mustOpen(t, o)
	defer db.Close()

	const n = 400
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), base.DeleteKey(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := i % n
				v, _, err := db.Get(key(k))
				if err != nil || !bytes.Equal(v, value(k)) {
					select {
					case errCh <- fmt.Errorf("get %d during migration: %q %w", k, v, err):
					default:
					}
					return
				}
				i += 7
			}
		}(g)
	}
	// Keep writing so flushes, compactions, and migrations all overlap the
	// readers, then drain maintenance to quiescence.
	for i := n; i < 3*n; i++ {
		if err := db.Put(key(i%n), base.DeleteKey(i), value(i%n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Maintain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if db.Stats().Tier.RemoteFiles == 0 {
		t.Fatal("stress run never placed a file on the remote tier")
	}
}
