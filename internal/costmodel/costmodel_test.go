package costmodel

import (
	"strings"
	"testing"
)

// TestTable2Orderings asserts the ▲/▼/• relations of Table 2: for every
// metric, the direction in which each design differs from the state of the
// art matches the paper's annotations.
func TestTable2Orderings(t *testing.T) {
	p := Reference()
	for _, pol := range []Policy{Leveling, Tiering} {
		// Entries in tree: FADE/Lethe better (smaller), KiWi same.
		if !(p.EntriesInTree(FADE, pol) < p.EntriesInTree(SoA, pol)) {
			t.Errorf("%v: FADE must hold fewer entries", pol)
		}
		if p.EntriesInTree(KiWi, pol) != p.EntriesInTree(SoA, pol) {
			t.Errorf("%v: KiWi entry count must match SoA", pol)
		}

		// Space amp with deletes: FADE/Lethe dramatically better.
		if !(p.SpaceAmpWithDeletes(FADE, pol) < p.SpaceAmpWithDeletes(SoA, pol)) {
			t.Errorf("%v: FADE space amp must improve", pol)
		}
		if p.SpaceAmpWithDeletes(KiWi, pol) > p.SpaceAmpWithDeletes(SoA, pol) {
			t.Errorf("%v: KiWi must not worsen space amp", pol)
		}
		// Space amp without deletes: all equal.
		for _, d := range []Design{FADE, KiWi, Lethe} {
			if p.SpaceAmpNoDeletes(d, pol) != p.SpaceAmpNoDeletes(SoA, pol) {
				t.Errorf("%v/%v: no-delete space amp must be unchanged", pol, d)
			}
		}

		// Delete persistence: FADE/Lethe bounded by Dth; KiWi unbounded.
		if p.DeletePersistenceLatency(FADE, pol) != p.DthSeconds {
			t.Errorf("%v: FADE persistence must be Dth", pol)
		}
		if p.DeletePersistenceLatency(KiWi, pol) != p.DeletePersistenceLatency(SoA, pol) {
			t.Errorf("%v: KiWi persistence must match SoA", pol)
		}

		// Lookups: KiWi pays h×; FADE gains from the smaller tree.
		if !(p.ZeroResultLookupCost(KiWi, pol) > p.ZeroResultLookupCost(SoA, pol)) {
			t.Errorf("%v: KiWi zero-result lookups must cost more", pol)
		}
		if !(p.ZeroResultLookupCost(FADE, pol) < p.ZeroResultLookupCost(SoA, pol)) {
			t.Errorf("%v: FADE zero-result lookups must cost less", pol)
		}
		if !(p.ShortRangeLookupCost(KiWi, pol) > p.ShortRangeLookupCost(SoA, pol)) {
			t.Errorf("%v: KiWi short ranges must cost more", pol)
		}
		// Long ranges: KiWi same as SoA (amortized), FADE better.
		if p.LongRangeLookupCost(KiWi, pol) != p.LongRangeLookupCost(SoA, pol) {
			t.Errorf("%v: KiWi long ranges must match SoA", pol)
		}
		if !(p.LongRangeLookupCost(FADE, pol) < p.LongRangeLookupCost(SoA, pol)) {
			t.Errorf("%v: FADE long ranges must cost less", pol)
		}

		// Secondary range deletes: the woven layout wins by h.
		soa := p.SecondaryRangeDeleteCost(SoA, pol)
		kiwi := p.SecondaryRangeDeleteCost(KiWi, pol)
		if kiwi >= soa {
			t.Errorf("%v: KiWi SRD must be cheaper: %f vs %f", pol, kiwi, soa)
		}
		ratio := soa / kiwi
		if ratio < p.H*0.99 || ratio > p.H*1.01 {
			t.Errorf("%v: SRD speedup must be ≈h: %f", pol, ratio)
		}

		// Memory: KiWi's per-tile S fences + per-page D fences ≈ SoA when
		// sizeof(S) = sizeof(D); strictly less when D is smaller.
		small := p
		small.DKeyBytes = 4
		if !(small.MemoryFootprintBits(KiWi, pol) < small.MemoryFootprintBits(SoA, pol)) {
			t.Errorf("%v: smaller D keys must shrink KiWi metadata", pol)
		}
	}
}

func TestLevelingVsTiering(t *testing.T) {
	p := Reference()
	// Writes: leveling costs T× more; reads: tiering costs T× more.
	if !(p.WriteAmp(SoA, Leveling) > p.WriteAmp(SoA, Tiering)) {
		t.Error("leveling write amp must exceed tiering")
	}
	if !(p.ZeroResultLookupCost(SoA, Tiering) > p.ZeroResultLookupCost(SoA, Leveling)) {
		t.Error("tiering lookups must exceed leveling")
	}
	if !(p.DeletePersistenceLatency(SoA, Tiering) > p.DeletePersistenceLatency(SoA, Leveling)) {
		t.Error("tiering persistence latency must exceed leveling")
	}
}

func TestFPRMatchesFormula(t *testing.T) {
	p := Reference()
	// 10MB of filters over 2^20 entries = 80 bits/entry → tiny FPR; over
	// fewer entries (N_δ) the FPR only improves.
	if !(p.fpr(FADE) <= p.fpr(SoA)) {
		t.Error("FADE's FPR must not exceed SoA's")
	}
	if p.fpr(SoA) <= 0 || p.fpr(SoA) >= 1 {
		t.Errorf("FPR out of range: %g", p.fpr(SoA))
	}
}

func TestTable2Render(t *testing.T) {
	p := Reference()
	rows := p.Table2(Leveling)
	if len(rows) != 13 {
		t.Fatalf("Table 2 must have 13 rows, got %d", len(rows))
	}
	out := Format(Leveling, rows)
	for _, want := range []string{"space amp", "secondary range delete", "Lethe", "FADE"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if Leveling.String() != "leveling" || Tiering.String() != "tiering" {
		t.Fatal("policy names")
	}
	if SoA.String() == "" || Lethe.String() == "" {
		t.Fatal("design names")
	}
}

func TestLetheCombinesBoth(t *testing.T) {
	p := Reference()
	for _, pol := range []Policy{Leveling, Tiering} {
		// Lethe = FADE's tree size + KiWi's layout.
		if p.EntriesInTree(Lethe, pol) != p.EntriesInTree(FADE, pol) {
			t.Error("Lethe entry count must match FADE")
		}
		if p.SecondaryRangeDeleteCost(Lethe, pol) > p.SecondaryRangeDeleteCost(KiWi, pol) {
			t.Error("Lethe SRD must be at least as good as KiWi")
		}
		if p.DeletePersistenceLatency(Lethe, pol) != p.DthSeconds {
			t.Error("Lethe persistence must be Dth")
		}
	}
}
