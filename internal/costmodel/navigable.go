package costmodel

// This file implements §4.2.6's navigable-design analysis: Eq. 1 compares a
// whole workload's cost under Lethe's woven layout against the state of the
// art, and Eq. 2/3 solve it for the largest beneficial delete-tile
// granularity. The public package re-exposes the Eq. 3 solver as
// lethe.OptimalTileSize; this model-level version exists so the analytical
// table and the engine agree on one formula and can be cross-checked.

// Workload holds the §4.2.6 operation frequencies: f_EPQ, f_PQ, f_SRQ,
// f_LRQ, f_SRD, f_I. Only ratios matter.
type Workload struct {
	EmptyPointQueries     float64 // f_EPQ
	PointQueries          float64 // f_PQ
	ShortRangeQueries     float64 // f_SRQ
	LongRangeQueries      float64 // f_LRQ
	SecondaryRangeDeletes float64 // f_SRD
	Inserts               float64 // f_I
}

// WorkloadCost evaluates the left side of Eq. 1: the expected I/O cost of
// one workload unit under the given design with delete-tile granularity h
// (h is p.H for woven designs, 1 otherwise; pass a Params with the H you
// want to evaluate).
func (p Params) WorkloadCost(d Design, pol Policy, w Workload) float64 {
	return w.EmptyPointQueries*p.ZeroResultLookupCost(d, pol) +
		w.PointQueries*p.NonZeroResultLookupCost(d, pol) +
		w.ShortRangeQueries*p.ShortRangeLookupCost(d, pol) +
		w.LongRangeQueries*p.LongRangeLookupCost(d, pol) +
		w.SecondaryRangeDeletes*p.SecondaryRangeDeleteCost(d, pol) +
		w.Inserts*p.InsertUpdateCost(d, pol)
}

// LetheBeatsSoA evaluates Eq. 1's inequality: does the woven layout with
// p.H pages per tile cost no more than the classical layout for this
// workload?
func (p Params) LetheBeatsSoA(pol Policy, w Workload) bool {
	return p.WorkloadCost(Lethe, pol, w) <= p.WorkloadCost(SoA, pol, w)
}

// OptimalH solves Eq. 3 for the largest h whose lookup penalty the
// secondary-range-delete savings still cover:
//
//	h ≤ (N/B) / ( (f_EPQ+f_PQ)/f_SRD · FPR + f_SRQ/f_SRD · L )
//
// It returns at least 1. This is the same formula the public
// lethe.OptimalTileSize exposes; tests assert the two agree.
func (p Params) OptimalH(w Workload) float64 {
	if w.SecondaryRangeDeletes <= 0 {
		return 1
	}
	denom := (w.EmptyPointQueries+w.PointQueries)/w.SecondaryRangeDeletes*p.fpr(SoA) +
		w.ShortRangeQueries/w.SecondaryRangeDeletes*p.L
	if denom <= 0 {
		return p.N / p.B
	}
	h := p.N / p.B / denom
	if h < 1 {
		return 1
	}
	return h
}
