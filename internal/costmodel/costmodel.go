// Package costmodel implements the analytical model of §3.2 and Table 2:
// closed-form (dominant-term) costs for the state of the art, FADE, KiWi,
// and Lethe, under both leveling and tiering. The benchmark harness prints
// the model next to measured values; tests assert the orderings the paper's
// ▲/▼/• annotations encode.
package costmodel

import (
	"fmt"
	"math"
	"strings"
)

// Params are the model inputs, following Table 1's notation.
type Params struct {
	// N is the number of entries inserted (tombstones included).
	N float64
	// NDelta (N_δ) is the entry count once deletes are persisted.
	NDelta float64
	// T is the size ratio.
	T float64
	// L is the number of disk levels holding N entries; LDelta holds NDelta.
	L, LDelta float64
	// P is the buffer size in pages, B entries per page, E bytes per entry.
	P, B, E float64
	// Lambda (λ) is tombstone size / key-value size.
	Lambda float64
	// I is the unique-insert rate (entries/second).
	I float64
	// MBits is the total memory allotted to Bloom filters, in bits.
	MBits float64
	// H is KiWi's pages per delete tile.
	H float64
	// S is the selectivity of a long range lookup.
	S float64
	// DthSeconds is the delete persistence threshold.
	DthSeconds float64
	// KeyBytes and DKeyBytes size the fence-pointer metadata.
	KeyBytes, DKeyBytes float64
}

// Reference returns Table 1's reference configuration.
func Reference() Params {
	n := math.Pow(2, 20)
	return Params{
		N: n, NDelta: 0.9 * n,
		T: 10, L: 3, LDelta: 3,
		P: 512, B: 4, E: 1024,
		Lambda: 0.1, I: 1024,
		MBits: 10 * 1024 * 1024 * 8, // Table 1: m = 10MB of filters
		H:     16, S: 0.001, DthSeconds: 3600,
		KeyBytes: 8, DKeyBytes: 8,
	}
}

// Design identifies a column of Table 2.
type Design int

// The four designs Table 2 compares.
const (
	SoA Design = iota
	FADE
	KiWi
	Lethe
)

// String implements fmt.Stringer.
func (d Design) String() string {
	return [...]string{"state-of-the-art", "FADE", "KiWi", "Lethe"}[d]
}

func (d Design) timely() bool { return d == FADE || d == Lethe } // bounded persistence
func (d Design) woven() bool  { return d == KiWi || d == Lethe } // delete-tile layout

// Policy selects leveling or tiering columns.
type Policy int

// The two merge policies.
const (
	Leveling Policy = iota
	Tiering
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Tiering {
		return "tiering"
	}
	return "leveling"
}

// n and l return the effective entry count and level count: designs with
// timely persistence operate on the smaller N_δ tree.
func (p Params) n(d Design) float64 {
	if d.timely() {
		return p.NDelta
	}
	return p.N
}

func (p Params) l(d Design) float64 {
	if d.timely() {
		return p.LDelta
	}
	return p.L
}

func (p Params) h(d Design) float64 {
	if d.woven() {
		return p.H
	}
	return 1
}

// fpr is the Bloom filter false positive rate e^(−(m/n)·ln2²) (§3.2.2).
func (p Params) fpr(d Design) float64 {
	return math.Exp(-p.MBits / p.n(d) * math.Ln2 * math.Ln2)
}

// EntriesInTree returns the live entry count (Table 2 row 1).
func (p Params) EntriesInTree(d Design, _ Policy) float64 { return p.n(d) }

// SpaceAmpNoDeletes returns s_amp for an insert/update-only workload:
// O(1/T) leveling, O(T) tiering (§3.2.1).
func (p Params) SpaceAmpNoDeletes(_ Design, pol Policy) float64 {
	if pol == Tiering {
		return p.T
	}
	return 1 / p.T
}

// SpaceAmpWithDeletes returns s_amp with deletes: the state of the art keeps
// invalidated entries — O(((1−λ)N+1)/(λT)) leveling, O(N/(1−λ)) tiering —
// while timely designs return to the no-delete bound (§3.2.1, §4.1.5).
func (p Params) SpaceAmpWithDeletes(d Design, pol Policy) float64 {
	if d.timely() {
		return p.SpaceAmpNoDeletes(d, pol)
	}
	if pol == Tiering {
		return p.N / (1 - p.Lambda)
	}
	return ((1-p.Lambda)*p.N + 1) / (p.Lambda * p.T)
}

// TotalBytesWritten returns O(N·E·L·T) for leveling, O(N·E·L) for tiering
// (Table 2 row 4), on the effective tree.
func (p Params) TotalBytesWritten(d Design, pol Policy) float64 {
	base := p.n(d) * p.E * p.l(d)
	if pol == Leveling {
		base *= p.T
	}
	return base
}

// WriteAmp returns O(L·T) leveling / O(L) tiering (§3.2.3).
func (p Params) WriteAmp(d Design, pol Policy) float64 {
	if pol == Tiering {
		return p.l(d)
	}
	return p.l(d) * p.T
}

// DeletePersistenceLatency returns the worst-case seconds until a delete is
// persistent: unbounded-by-data for the state of the art — O(T^(L−1)·P·B/I)
// leveling, O(T^L·P·B/I) tiering — and Dth for FADE/Lethe (§3.2.4, §4.1.5).
func (p Params) DeletePersistenceLatency(d Design, pol Policy) float64 {
	if d.timely() {
		return p.DthSeconds
	}
	exp := p.L - 1
	if pol == Tiering {
		exp = p.L
	}
	return math.Pow(p.T, exp) * p.P * p.B / p.I
}

// ZeroResultLookupCost returns expected I/Os for a lookup on a missing key:
// O(h·e^(−m/N)) leveling, ×T tiering (Table 2 row 7).
func (p Params) ZeroResultLookupCost(d Design, pol Policy) float64 {
	c := p.h(d) * p.fpr(d)
	if pol == Tiering {
		c *= p.T
	}
	return c
}

// NonZeroResultLookupCost returns expected I/Os for a lookup on an existing
// key: 1 + the zero-result cost (Table 2 row 8).
func (p Params) NonZeroResultLookupCost(d Design, pol Policy) float64 {
	return 1 + p.ZeroResultLookupCost(d, pol)
}

// ShortRangeLookupCost returns O(h·L) leveling / O(h·L·T) tiering I/Os.
func (p Params) ShortRangeLookupCost(d Design, pol Policy) float64 {
	c := p.h(d) * p.l(d)
	if pol == Tiering {
		c *= p.T
	}
	return c
}

// LongRangeLookupCost returns O(s·N/B) leveling / O(T·s·N/B) tiering I/Os —
// tile weaving amortizes out for long ranges (§4.2.5).
func (p Params) LongRangeLookupCost(d Design, pol Policy) float64 {
	c := p.S * p.n(d) / p.B
	if pol == Tiering {
		c *= p.T
	}
	return c
}

// InsertUpdateCost returns the amortized I/O per insert: O(L·T/B) leveling,
// O(L/B) tiering (Table 2 row 11).
func (p Params) InsertUpdateCost(d Design, pol Policy) float64 {
	c := p.l(d) / p.B
	if pol == Leveling {
		c *= p.T
	}
	return c
}

// SecondaryRangeDeleteCost returns O(N/B) page I/Os for the state of the
// art (a full-tree rewrite regardless of selectivity, §3.3) and O(N/(B·h))
// with the woven layout (§4.2.5).
func (p Params) SecondaryRangeDeleteCost(d Design, _ Policy) float64 {
	return p.n(d) / (p.B * p.h(d))
}

// MemoryFootprintBits returns filter memory plus fence-pointer metadata
// (Table 2 row 13): classical designs keep one fence per page (N/B keys);
// KiWi keeps one S fence per tile (N/(B·h)) plus one D fence per page (N/B).
func (p Params) MemoryFootprintBits(d Design, _ Policy) float64 {
	bits := p.MBits
	if d.woven() {
		bits += p.n(d) / (p.B * p.h(d)) * p.KeyBytes * 8 // S fences per tile
		bits += p.n(d) / p.B * p.DKeyBytes * 8           // delete fences per page
	} else {
		bits += p.n(d) / p.B * p.KeyBytes * 8 // S fences per page
	}
	return bits
}

// Row is one rendered line of Table 2.
type Row struct {
	Metric string
	Values [4]float64 // indexed by Design
}

// Table2 evaluates every row of Table 2 for the given policy.
func (p Params) Table2(pol Policy) []Row {
	metrics := []struct {
		name string
		fn   func(Design, Policy) float64
	}{
		{"entries in tree", p.EntriesInTree},
		{"space amp (no deletes)", p.SpaceAmpNoDeletes},
		{"space amp (with deletes)", p.SpaceAmpWithDeletes},
		{"total bytes written", p.TotalBytesWritten},
		{"write amplification", p.WriteAmp},
		{"delete persistence latency (s)", p.DeletePersistenceLatency},
		{"zero-result point lookup (I/O)", p.ZeroResultLookupCost},
		{"non-zero point lookup (I/O)", p.NonZeroResultLookupCost},
		{"short range lookup (I/O)", p.ShortRangeLookupCost},
		{"long range lookup (I/O)", p.LongRangeLookupCost},
		{"insert/update cost (I/O)", p.InsertUpdateCost},
		{"secondary range delete (I/O)", p.SecondaryRangeDeleteCost},
		{"memory footprint (bits)", p.MemoryFootprintBits},
	}
	rows := make([]Row, len(metrics))
	for i, m := range metrics {
		rows[i].Metric = m.name
		for _, d := range []Design{SoA, FADE, KiWi, Lethe} {
			rows[i].Values[d] = m.fn(d, pol)
		}
	}
	return rows
}

// Format renders the table for terminal output.
func Format(pol Policy, rows []Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 2 (%s): analytical costs\n", pol)
	fmt.Fprintf(&sb, "%-34s %14s %14s %14s %14s\n", "metric", "state-of-art", "FADE", "KiWi", "Lethe")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-34s %14.4g %14.4g %14.4g %14.4g\n",
			r.Metric, r.Values[SoA], r.Values[FADE], r.Values[KiWi], r.Values[Lethe])
	}
	return sb.String()
}
