package costmodel

import (
	"testing"

	"lethe"
)

func TestWorkloadCostComponents(t *testing.T) {
	p := Reference()
	// A pure-insert workload costs exactly the insert term.
	w := Workload{Inserts: 10}
	if got, want := p.WorkloadCost(SoA, Leveling, w), 10*p.InsertUpdateCost(SoA, Leveling); got != want {
		t.Fatalf("insert-only: %f want %f", got, want)
	}
	// Adding SRDs increases SoA cost far more than Lethe's.
	w.SecondaryRangeDeletes = 1
	soa := p.WorkloadCost(SoA, Leveling, w)
	leth := p.WorkloadCost(Lethe, Leveling, w)
	if !(leth < soa) {
		t.Fatalf("SRD-bearing workload must favor Lethe: %f vs %f", leth, soa)
	}
}

func TestEq1Crossover(t *testing.T) {
	p := Reference() // H = 16
	// SRD-heavy: the weave wins.
	heavy := Workload{PointQueries: 1000, SecondaryRangeDeletes: 1}
	if !p.LetheBeatsSoA(Leveling, heavy) {
		t.Fatal("SRD-heavy workload must favor the weave")
	}
	// Read-only: the weave only costs.
	readOnly := Workload{PointQueries: 1e9, ShortRangeQueries: 1e7}
	if p.LetheBeatsSoA(Leveling, readOnly) {
		t.Fatal("read-only workload must favor the classical layout")
	}
	// There is a crossover in between: increasing the lookups-per-SRD ratio
	// flips the verdict exactly once.
	flips := 0
	prev := true
	for ratio := 1.0; ratio <= 1e12; ratio *= 10 {
		w := Workload{PointQueries: ratio, ShortRangeQueries: ratio / 1000, SecondaryRangeDeletes: 1}
		cur := p.LetheBeatsSoA(Leveling, w)
		if cur != prev {
			flips++
			if cur {
				t.Fatal("verdict must flip from Lethe to SoA, not back")
			}
		}
		prev = cur
	}
	if flips != 1 {
		t.Fatalf("expected exactly one crossover, got %d", flips)
	}
}

func TestOptimalHMatchesPublicAPI(t *testing.T) {
	p := Reference()
	w := Workload{
		EmptyPointQueries:     25e6,
		PointQueries:          25e6,
		ShortRangeQueries:     1e4,
		SecondaryRangeDeletes: 1,
	}
	modelH := p.OptimalH(w)
	apiH := lethe.OptimalTileSize(lethe.TuningParams{
		Entries:           p.N,
		EntriesPerPage:    p.B,
		FalsePositiveRate: p.fpr(SoA),
		Levels:            p.L,
	}, lethe.WorkloadProfile{
		EmptyPointLookups:     w.EmptyPointQueries,
		PointLookups:          w.PointQueries,
		ShortRangeLookups:     w.ShortRangeQueries,
		SecondaryRangeDeletes: w.SecondaryRangeDeletes,
	})
	if int(modelH) != apiH {
		t.Fatalf("model h=%f vs API h=%d must agree", modelH, apiH)
	}
	// Degenerate cases.
	if p.OptimalH(Workload{PointQueries: 1}) != 1 {
		t.Fatal("no SRDs → h=1")
	}
	if got := p.OptimalH(Workload{SecondaryRangeDeletes: 1}); got != p.N/p.B {
		t.Fatalf("read-free → page count, got %f", got)
	}
}
