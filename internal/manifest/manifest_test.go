package manifest

import (
	"errors"
	"testing"

	"lethe/internal/vfs"
)

func TestCommitLoadRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	store := NewStore(fs, "MANIFEST")

	s, existed, err := store.Load()
	if err != nil || existed {
		t.Fatalf("fresh load: %v existed=%v", err, existed)
	}
	if s.NextFileNum != 1 {
		t.Fatalf("fresh NextFileNum = %d", s.NextFileNum)
	}

	s = &State{
		NextFileNum: 10,
		LastSeq:     42,
		Levels: [][][]uint64{
			{{1, 2}, {3}}, // level 1: two runs
			{{4, 5, 6}},   // level 2: one run
		},
	}
	if err := store.Commit(s); err != nil {
		t.Fatal(err)
	}
	got, existed, err := store.Load()
	if err != nil || !existed {
		t.Fatalf("load: %v existed=%v", err, existed)
	}
	if got.NextFileNum != 10 || got.LastSeq != 42 {
		t.Fatalf("scalars: %+v", got)
	}
	if got.FileCount() != 6 {
		t.Fatalf("FileCount = %d", got.FileCount())
	}
	if len(got.Levels) != 2 || len(got.Levels[0]) != 2 || got.Levels[1][0][2] != 6 {
		t.Fatalf("levels: %+v", got.Levels)
	}
}

func TestRemoteTierRoundTripAndValidation(t *testing.T) {
	fs := vfs.NewMem()
	store := NewStore(fs, "MANIFEST")
	s := &State{
		NextFileNum: 10,
		Levels:      [][][]uint64{{{1, 2}}, {{4, 5}}},
		Remote:      []uint64{4, 5},
	}
	if err := store.Commit(s); err != nil {
		t.Fatal(err)
	}
	got, _, err := store.Load()
	if err != nil {
		t.Fatal(err)
	}
	set := got.RemoteSet()
	if len(set) != 2 || !set[4] || !set[5] || set[1] {
		t.Fatalf("RemoteSet = %v", set)
	}
	if c := s.Clone(); len(c.Remote) != 2 || c.Remote[0] != 4 {
		t.Fatalf("Clone dropped remote list: %+v", c.Remote)
	}

	if err := (&State{NextFileNum: 10, Levels: [][][]uint64{{{1}}}, Remote: []uint64{2}}).Validate(); err == nil {
		t.Fatal("remote entry for unknown file passed Validate")
	}
	if err := (&State{NextFileNum: 10, Levels: [][][]uint64{{{1}}}, Remote: []uint64{1, 1}}).Validate(); err == nil {
		t.Fatal("duplicate remote entry passed Validate")
	}
}

func TestCommitReplacesAtomically(t *testing.T) {
	fs := vfs.NewMem()
	store := NewStore(fs, "MANIFEST")
	for i := uint64(1); i <= 5; i++ {
		if err := store.Commit(&State{NextFileNum: i}); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := store.Load()
	if err != nil || got.NextFileNum != 5 {
		t.Fatalf("got %+v err %v", got, err)
	}
	names, _ := fs.List()
	if len(names) != 1 {
		t.Fatalf("leftover files: %v", names)
	}
}

func TestValidateRejectsDuplicates(t *testing.T) {
	s := &State{NextFileNum: 10, Levels: [][][]uint64{{{1, 2}}, {{2}}}}
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate file number accepted")
	}
	s2 := &State{NextFileNum: 2, Levels: [][][]uint64{{{5}}}}
	if err := s2.Validate(); err == nil {
		t.Fatal("file number beyond NextFileNum accepted")
	}
	store := NewStore(vfs.NewMem(), "M")
	if err := store.Commit(s); err == nil {
		t.Fatal("commit must validate")
	}
}

func TestLoadCorruptManifest(t *testing.T) {
	fs := vfs.NewMem()
	f, _ := fs.Create("MANIFEST")
	f.Write([]byte("{not json"))
	f.Close()
	if _, _, err := NewStore(fs, "MANIFEST").Load(); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestCommitFailurePreservesOld(t *testing.T) {
	mem := vfs.NewMem()
	store := NewStore(mem, "MANIFEST")
	if err := store.Commit(&State{NextFileNum: 7}); err != nil {
		t.Fatal(err)
	}
	// Inject failure on the rename of the next commit.
	boom := errors.New("boom")
	inj := vfs.NewInject(mem, func(op vfs.Op, name string) error {
		if op == vfs.OpRename {
			return boom
		}
		return nil
	})
	store2 := NewStore(inj, "MANIFEST")
	if err := store2.Commit(&State{NextFileNum: 99}); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	got, _, err := store.Load()
	if err != nil || got.NextFileNum != 7 {
		t.Fatalf("old manifest lost: %+v %v", got, err)
	}
}

func TestClone(t *testing.T) {
	s := &State{NextFileNum: 3, Levels: [][][]uint64{{{1, 2}}}}
	c := s.Clone()
	c.Levels[0][0][0] = 99
	if s.Levels[0][0][0] != 1 {
		t.Fatal("clone aliases source")
	}
}
